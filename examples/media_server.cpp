/**
 * @file
 * Domain scenario from the paper's introduction: a media-management
 * workload ("LFU is ideal for separating large regions of blocks that
 * are only used once from commonly accessed data"). We model a media
 * server that decodes streams (one-touch data) while consulting hot
 * codec tables, run it through the full system (out-of-order core +
 * cache hierarchy), and report end-to-end CPI for LRU, LFU and the
 * adaptive L2.
 *
 *   $ ./media_server [instructions]
 */

#include <cstdio>
#include <cstdlib>

#include "sim/system.hh"
#include "workloads/workload.hh"

using namespace adcache;

namespace
{

WorkloadSpec
mediaServer()
{
    WorkloadSpec spec;
    spec.name = "media-server";
    spec.seed = 2024;

    PhaseSpec p;
    p.instructions = 1'000'000;
    p.loadFrac = 0.28;
    p.storeFrac = 0.10;
    p.branchFrac = 0.10;
    p.fpAddFrac = 0.05;
    p.codeFootprint = 16 * 1024;
    p.depWindow = 20;

    // Codec tables: 320KB, reused constantly in decode bursts;
    // stream buffers: effectively infinite, touched once, word by
    // word.
    auto decode = KernelSpec::burstyHotCold(
        0x1000'0000, 320 * 1024, 16 * 1024 * 1024, 16'000, 49'152, 8,
        0.5);
    decode.hotSequential = true;
    decode.weight = 0.35;
    p.kernels.push_back(decode);

    // Session state: small and very hot.
    auto session = KernelSpec::zipf(0x8000'0000, 16 * 1024, 1.2);
    session.weight = 0.65;
    p.kernels.push_back(session);

    spec.phases.push_back(p);
    return spec;
}

} // namespace

int
main(int argc, char **argv)
{
    const InstCount instrs =
        argc > 1 ? InstCount(std::atoll(argv[1])) : 3'000'000;

    std::printf("media server scenario, %llu instructions\n\n",
                static_cast<unsigned long long>(instrs));
    std::printf("%-48s %8s %8s\n", "L2 organisation", "CPI",
                "L2 MPKI");

    const L2Spec variants[] = {
        L2Spec::lru(),
        L2Spec::policy(PolicyType::LFU),
        L2Spec::adaptiveLruLfu(8),
    };
    double lru_cpi = 0;
    for (const auto &l2 : variants) {
        SystemConfig cfg;
        cfg.l2 = l2;
        System sys(cfg);
        WorkloadGenerator gen(mediaServer());
        const auto res = sys.runTimed(gen, instrs);
        std::printf("%-48s %8.3f %8.2f\n", res.l2Label.c_str(),
                    res.cpi, res.l2Mpki);
        if (lru_cpi == 0)
            lru_cpi = res.cpi;
        else if (&l2 == &variants[2])
            std::printf("\nadaptive speedup over LRU: %.1f%%\n",
                        100.0 * (lru_cpi - res.cpi) / lru_cpi);
    }
    return 0;
}
