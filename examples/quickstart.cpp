/**
 * @file
 * Quickstart: build an adaptive cache, feed it a reference stream,
 * and compare it against its component policies — the library's
 * three core concepts (CacheModel, AdaptiveCache, ShadowCache) in
 * thirty lines of user code.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "cache/cache.hh"
#include "core/adaptive_cache.hh"

using namespace adcache;

int
main()
{
    // A 64KB 8-way cache adapting between LRU and LFU, with the
    // paper's 8-bit partial shadow tags.
    AdaptiveConfig config = AdaptiveConfig::dual(
        PolicyType::LRU, PolicyType::LFU, 64 * 1024, 8, 64);
    config.partialTagBits = 8;
    AdaptiveCache cache(config);

    // Baselines with the same geometry.
    CacheConfig base;
    base.sizeBytes = 64 * 1024;
    base.assoc = 8;
    Cache lru(base);
    base.policy = PolicyType::LFU;
    Cache lfu(base);

    // A media-like stream: a reused 32KB table interleaved with a
    // long one-touch scan. LRU keeps getting its table flushed; LFU
    // pins it; the adaptive cache figures that out on its own.
    Rng rng(1);
    for (int i = 0; i < 2'000'000; ++i) {
        Addr addr;
        if (rng.chance(0.5))
            addr = rng.below(512) * 64;             // hot table
        else
            addr = (512 + (Addr(i) % 65536)) * 64;  // scan
        cache.access(addr, false);
        lru.access(addr, false);
        lfu.access(addr, false);
    }

    std::printf("%-45s miss rate %.2f%%\n", lru.describe().c_str(),
                100.0 * lru.stats().missRate());
    std::printf("%-45s miss rate %.2f%%\n", lfu.describe().c_str(),
                100.0 * lfu.stats().missRate());
    std::printf("%-45s miss rate %.2f%%\n", cache.describe().c_str(),
                100.0 * cache.stats().missRate());
    std::printf("\ncomponent misses seen by the shadows: LRU %llu, "
                "LFU %llu\n",
                static_cast<unsigned long long>(cache.shadowMisses(0)),
                static_cast<unsigned long long>(cache.shadowMisses(1)));
    return 0;
}
