/**
 * @file
 * Duel any two replacement policies on any suite benchmark: runs the
 * two conventional caches and the adaptive combination side by side
 * and reports MPKI (plus CPI with --timed). Useful for exploring the
 * design space beyond the paper's LRU/LFU headline pair. Honours
 * ADCACHE_REPORT: json/csv emit the full stat registry per variant.
 *
 *   $ ./policy_duel mcf lru lfu
 *   $ ./policy_duel art-1 fifo mru --timed
 *   $ ADCACHE_REPORT=json ./policy_duel mcf lru lfu
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common.hh"

using namespace adcache;

int
main(int argc, char **argv)
{
    if (argc < 4) {
        std::fprintf(stderr,
                     "usage: %s <benchmark> <policyA> <policyB> "
                     "[--timed]\n"
                     "policies: lru lfu fifo mru random plru srrip\n",
                     argv[0]);
        return 1;
    }
    const auto *bench = findBenchmark(argv[1]);
    if (!bench) {
        std::fprintf(stderr, "unknown benchmark '%s'\n", argv[1]);
        return 1;
    }
    const PolicyType a = parsePolicyType(argv[2]);
    const PolicyType b = parsePolicyType(argv[3]);
    const bool timed = argc > 4 && !std::strcmp(argv[4], "--timed");

    const std::vector<L2Spec> variants = {
        L2Spec::policy(a),
        L2Spec::policy(b),
        L2Spec::adaptiveDual(a, b),
    };
    const auto rows =
        runSuite({bench}, variants, instrBudget(), timed);

    if (!bench::textMode()) {
        ReportGrid grid = gridFromSuite("policy duel", rows, {});
        grid.addMeta("instr_budget", std::to_string(instrBudget()));
        grid.addMeta("timed", timed ? "true" : "false");
        bench::report(grid);
        return 0;
    }

    std::printf("%s, %llu instructions%s\n\n", bench->name.c_str(),
                static_cast<unsigned long long>(instrBudget()),
                timed ? " (timed)" : "");
    for (const auto &res : rows[0].results) {
        std::printf("%-52s MPKI %7.2f", res.l2Label.c_str(),
                    res.l2Mpki);
        if (timed)
            std::printf("  CPI %7.3f", res.cpi);
        std::printf("\n");
    }

    const double best = std::min(rows[0].results[0].l2Mpki,
                                 rows[0].results[1].l2Mpki);
    const double adaptive = rows[0].results[2].l2Mpki;
    if (best > 0)
        std::printf("\nadaptive vs better component: %+.1f%% misses\n",
                    100.0 * (adaptive - best) / best);
    return 0;
}
