/**
 * @file
 * kv_top: the `top`-style admin client of the serving subsystem.
 * Polls a running kv_server over the wire protocol's Stats-v2
 * opcode (one request per refresh, ~a few hundred bytes back) and
 * renders the adaptation picture live: per-shard hit rate, current
 * winner, winner-flip and differentiating-miss rates, plus the
 * service-wide request rate and latency percentiles.
 *
 *   ./kv_top --port 4150              # refresh every second
 *   ./kv_top --port 4150 --once      # one decoded dump, no screen
 *
 * Rates are per-second deltas between consecutive polls; the first
 * frame shows cumulative values. Winners are component ordinals —
 * GET /metrics on the server's --metrics-port carries the ordinal →
 * policy decoder ring (adcache_kv_component_info).
 */

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hh"
#include "net/stats_v2.hh"

using namespace adcache;
using net::StatSample;
using net::StatTag;

namespace
{

/** One poll, indexed for rendering: samples[tag][shard] = value
 *  (shard kStatsGlobalShard = the global row). */
struct Frame
{
    std::uint16_t shards = 0;
    std::map<std::uint16_t, std::map<std::uint16_t, std::uint64_t>>
        at;

    std::uint64_t
    global(StatTag tag) const
    {
        return shard(tag, net::kStatsGlobalShard);
    }

    std::uint64_t
    shard(StatTag tag, std::uint16_t s) const
    {
        const auto byTag = at.find(std::uint16_t(tag));
        if (byTag == at.end())
            return 0;
        const auto v = byTag->second.find(s);
        return v == byTag->second.end() ? 0 : v->second;
    }
};

bool
poll(net::KvClient &client, Frame *frame)
{
    std::vector<StatSample> samples;
    if (!client.stats2(&frame->shards, &samples))
        return false;
    frame->at.clear();
    for (const StatSample &s : samples)
        frame->at[std::uint16_t(s.tag)][s.shard] = s.value;
    return true;
}

double
perSec(std::uint64_t now, std::uint64_t before, double seconds)
{
    if (seconds <= 0 || now < before)
        return 0;
    return double(now - before) / seconds;
}

void
render(const Frame &f, const Frame &prev, double dt, bool clear)
{
    if (clear)
        std::printf("\033[H\033[2J");

    const std::uint64_t reqs = f.global(StatTag::Requests);
    const std::uint64_t hits = f.global(StatTag::Hits);
    const std::uint64_t misses = f.global(StatTag::Misses);
    const std::uint64_t lookups = hits + misses;
    std::printf(
        "kv_top  %u shards  %.0f req/s  hit %5.2f%%  "
        "p50 %.1fus p99 %.1fus  err/s %.0f\n",
        unsigned(f.shards),
        perSec(reqs, prev.global(StatTag::Requests), dt),
        lookups ? 100.0 * double(hits) / double(lookups) : 0.0,
        double(f.global(StatTag::RequestP50Ns)) / 1e3,
        double(f.global(StatTag::RequestP99Ns)) / 1e3,
        perSec(f.global(StatTag::Errors),
               prev.global(StatTag::Errors), dt));
    std::printf(
        "        size %" PRIu64 "/%" PRIu64 "  conns %" PRIu64
        "  frames/s %.0f  in %.1f MB out %.1f MB  drops %" PRIu64
        "\n",
        f.global(StatTag::Size), f.global(StatTag::Capacity),
        f.global(StatTag::Connections),
        perSec(f.global(StatTag::FramesIn),
               prev.global(StatTag::FramesIn), dt),
        double(f.global(StatTag::BytesIn)) / 1e6,
        double(f.global(StatTag::BytesOut)) / 1e6,
        f.global(StatTag::TraceDrops));

    std::printf("%5s %9s %7s %6s %8s %9s %9s\n", "shard", "ops/s",
                "hit%", "win", "flips/s", "dmiss/s", "size");
    for (std::uint16_t s = 0; s < f.shards; ++s) {
        const std::uint64_t h = f.shard(StatTag::Hits, s);
        const std::uint64_t m = f.shard(StatTag::Misses, s);
        std::printf(
            "%5u %9.0f %6.2f%% %6" PRIu64 " %8.2f %9.2f %9" PRIu64
            "\n",
            unsigned(s),
            perSec(f.shard(StatTag::References, s) +
                       f.shard(StatTag::Gets, s),
                   prev.shard(StatTag::References, s) +
                       prev.shard(StatTag::Gets, s),
                   dt),
            h + m ? 100.0 * double(h) / double(h + m) : 0.0,
            f.shard(StatTag::Winner, s),
            perSec(f.shard(StatTag::SelectionFlips, s),
                   prev.shard(StatTag::SelectionFlips, s), dt),
            perSec(f.shard(StatTag::DiffMisses, s),
                   prev.shard(StatTag::DiffMisses, s), dt),
            f.shard(StatTag::Size, s));
    }
    std::fflush(stdout);
}

/** --once: every sample on its own line, tag names resolved —
 *  the scriptable / test-harness output mode. */
void
dump(const Frame &f)
{
    for (const auto &[tag, byShard] : f.at)
        for (const auto &[shard, value] : byShard) {
            if (shard == net::kStatsGlobalShard)
                std::printf("%s %" PRIu64 "\n",
                            net::statTagName(net::StatTag(tag)),
                            value);
            else
                std::printf("%s[%u] %" PRIu64 "\n",
                            net::statTagName(net::StatTag(tag)),
                            unsigned(shard), value);
        }
    std::fflush(stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 4150;
    unsigned interval_ms = 1000;
    bool once = false;
    bool clear = true;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_next = i + 1 < argc;
        if (arg == "--host" && has_next) {
            host = argv[++i];
        } else if (arg == "--port" && has_next) {
            port = std::uint16_t(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--interval-ms" && has_next) {
            interval_ms =
                unsigned(std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--once") {
            once = true;
        } else if (arg == "--no-clear") {
            clear = false;
        } else {
            std::fprintf(stderr,
                         "usage: kv_top [--host H] [--port P] "
                         "[--interval-ms N] [--once] [--no-clear]\n");
            return 2;
        }
    }

    net::KvClient client;
    if (!client.connect(host, port)) {
        std::fprintf(stderr, "kv_top: connect %s:%u: %s\n",
                     host.c_str(), unsigned(port),
                     client.lastError().c_str());
        return 1;
    }

    Frame prev;
    if (once) {
        Frame f;
        if (!poll(client, &f)) {
            std::fprintf(stderr,
                         "kv_top: stats2 failed (pre-v2 server?): "
                         "%s\n",
                         client.lastError().c_str());
            return 1;
        }
        dump(f);
        return 0;
    }

    const double dt = double(interval_ms) / 1e3;
    for (bool first = true;; first = false) {
        Frame f;
        if (!poll(client, &f)) {
            std::fprintf(stderr, "kv_top: server went away: %s\n",
                         client.lastError().c_str());
            return 1;
        }
        render(f, first ? Frame{} : prev, first ? 0 : dt, clear);
        prev = std::move(f);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(interval_ms));
    }
}
