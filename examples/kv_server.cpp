/**
 * @file
 * Standalone adaptive-KV server: hosts an AdaptiveKvCache behind the
 * wire protocol on a real TCP socket. Pair it with `kv_ycsb
 * --transport socket` in another terminal, or poke it by hand:
 *
 *   ./kv_server --port 4150 --workers 4
 *
 * GET misses are served read-through (the deterministic loader
 * stands in for a backing store), so the cache's adaptive machinery
 * — selection, admission, lock-free reads — is always exercised.
 * SIGINT/SIGTERM shut the server down gracefully: accepting stops,
 * in-flight responses flush, workers join.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "net/server.hh"
#include "net/service.hh"

using namespace adcache;

namespace
{

std::atomic<bool> g_stop{false};

void
onSignal(int)
{
    g_stop.store(true, std::memory_order_seq_cst);
}

} // namespace

int
main(int argc, char **argv)
{
    net::KvServerConfig server_conf;
    server_conf.port = 4150;
    net::KvServiceConfig service_conf;
    std::uint32_t stats_every_s = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_next = i + 1 < argc;
        if (arg == "--port" && has_next) {
            server_conf.port = std::uint16_t(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--host" && has_next) {
            server_conf.host = argv[++i];
        } else if (arg == "--workers" && has_next) {
            server_conf.workers =
                unsigned(std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--capacity" && has_next) {
            service_conf.cache.capacity =
                std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--no-read-through") {
            service_conf.readThrough = false;
        } else if (arg == "--ttl" && has_next) {
            service_conf.loaderTtl = std::uint32_t(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--stats-every" && has_next) {
            stats_every_s = std::uint32_t(
                std::strtoul(argv[++i], nullptr, 10));
        } else {
            std::fprintf(
                stderr,
                "usage: kv_server [--host H] [--port P] "
                "[--workers N] [--capacity N]\n"
                "                 [--no-read-through] [--ttl T] "
                "[--stats-every SECONDS]\n");
            return 2;
        }
    }

    net::KvService service(service_conf);
    net::KvServer server(service, server_conf);
    if (!server.start()) {
        std::fprintf(stderr, "kv_server: %s\n",
                     server.lastError().c_str());
        return 1;
    }
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::printf("kv_server: serving on %s:%u (%u workers, capacity "
                "%llu, read-through %s)\n",
                server_conf.host.c_str(), unsigned(server.port()),
                server_conf.workers,
                static_cast<unsigned long long>(
                    service.cache().capacity()),
                service_conf.readThrough ? "on" : "off");

    std::uint32_t since_stats = 0;
    while (!g_stop.load(std::memory_order_seq_cst)) {
        std::this_thread::sleep_for(std::chrono::seconds(1));
        // TTLs tick in wall-clock seconds in the standalone server.
        service.cache().clockAdvance();
        if (stats_every_s && ++since_stats >= stats_every_s) {
            since_stats = 0;
            std::printf("---- %llu requests, %llu connections\n%s",
                        static_cast<unsigned long long>(
                            service.requestsServed()),
                        static_cast<unsigned long long>(
                            server.connectionsAccepted()),
                        service.statsText().c_str());
            std::fflush(stdout);
        }
    }
    std::printf("kv_server: shutting down\n");
    server.stop();
    return 0;
}
