/**
 * @file
 * Standalone adaptive-KV server: hosts an AdaptiveKvCache behind the
 * wire protocol on a real TCP socket. Pair it with `kv_ycsb
 * --transport socket` in another terminal, or poke it by hand:
 *
 *   ./kv_server --port 4150 --workers 4
 *
 * GET misses are served read-through (the deterministic loader
 * stands in for a backing store), so the cache's adaptive machinery
 * — selection, admission, lock-free reads — is always exercised.
 * SIGINT/SIGTERM shut the server down gracefully: accepting stops,
 * in-flight responses flush, workers join.
 *
 * Live telemetry (docs/OBSERVABILITY.md): --metrics-port starts a
 * Prometheus exposition endpoint (GET /metrics, GET /healthz) plus
 * the TelemetryPump — drift EWMAs per shard, kv_drift crossings to
 * stderr — and --slow-budget-us arms the slow-request log. The
 * Stats-v2 opcode (kv_top's feed) always answers, metrics or not.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "net/server.hh"
#include "net/service.hh"
#include "obs/metrics.hh"
#include "obs/metrics_http.hh"
#include "obs/pump.hh"

using namespace adcache;

namespace
{

std::atomic<bool> g_stop{false};

void
onSignal(int)
{
    g_stop.store(true, std::memory_order_seq_cst);
}

} // namespace

int
main(int argc, char **argv)
{
    net::KvServerConfig server_conf;
    server_conf.port = 4150;
    net::KvServiceConfig service_conf;
    std::uint32_t stats_every_s = 0;
    int metrics_port = -1; //!< -1 = no metrics endpoint

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_next = i + 1 < argc;
        if (arg == "--port" && has_next) {
            server_conf.port = std::uint16_t(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--host" && has_next) {
            server_conf.host = argv[++i];
        } else if (arg == "--workers" && has_next) {
            server_conf.workers =
                unsigned(std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--capacity" && has_next) {
            service_conf.cache.capacity =
                std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--no-read-through") {
            service_conf.readThrough = false;
        } else if (arg == "--ttl" && has_next) {
            service_conf.loaderTtl = std::uint32_t(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--stats-every" && has_next) {
            stats_every_s = std::uint32_t(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--metrics-port" && has_next) {
            metrics_port =
                int(std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--slow-budget-us" && has_next) {
            service_conf.slowRequestBudgetNs =
                std::strtoull(argv[++i], nullptr, 10) * 1000;
        } else {
            std::fprintf(
                stderr,
                "usage: kv_server [--host H] [--port P] "
                "[--workers N] [--capacity N]\n"
                "                 [--no-read-through] [--ttl T] "
                "[--stats-every SECONDS]\n"
                "                 [--metrics-port P] "
                "[--slow-budget-us N]\n");
            return 2;
        }
    }

    net::KvService service(service_conf);
    net::KvServer server(service, server_conf);
    server.installStatsProvider(); // Stats v2 carries transport rows
    if (!server.start()) {
        std::fprintf(stderr, "kv_server: %s\n",
                     server.lastError().c_str());
        return 1;
    }

    // Live telemetry: registry + /metrics endpoint + pump.
    obs::MetricsRegistry registry;
    std::unique_ptr<obs::MetricsHttpServer> metrics_http;
    std::unique_ptr<obs::TelemetryPump> pump;
    if (metrics_port >= 0) {
        service.registerMetrics(registry); // includes the cache
        server.registerMetrics(registry);
        obs::registerTraceMetrics(registry);

        obs::MetricsHttpConfig http_conf;
        http_conf.host = server_conf.host;
        http_conf.port = std::uint16_t(metrics_port);
        metrics_http = std::make_unique<obs::MetricsHttpServer>(
            registry, http_conf);
        if (!metrics_http->start()) {
            std::fprintf(stderr, "kv_server: metrics: %s\n",
                         metrics_http->lastError().c_str());
            server.stop();
            return 1;
        }

        obs::TelemetryPumpConfig pump_conf;
        pump_conf.metrics = &registry;
        pump_conf.driftSampler =
            [&service]() -> std::vector<obs::DriftShardSample> {
            std::vector<obs::DriftShardSample> out;
            for (const auto &t : service.cache().shardTelemetry())
                out.push_back(
                    {t.selectionFlips, t.diffMisses, t.ops()});
            return out;
        };
        pump = std::make_unique<obs::TelemetryPump>(
            std::move(pump_conf));
        pump->start();
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::printf("kv_server: serving on %s:%u (%u workers, capacity "
                "%llu, read-through %s)\n",
                server_conf.host.c_str(), unsigned(server.port()),
                server_conf.workers,
                static_cast<unsigned long long>(
                    service.cache().capacity()),
                service_conf.readThrough ? "on" : "off");
    if (metrics_http)
        std::printf("kv_server: metrics on http://%s:%u/metrics\n",
                    server_conf.host.c_str(),
                    unsigned(metrics_http->port()));
    std::fflush(stdout);

    std::uint32_t since_stats = 0;
    while (!g_stop.load(std::memory_order_seq_cst)) {
        std::this_thread::sleep_for(std::chrono::seconds(1));
        // TTLs tick in wall-clock seconds in the standalone server.
        service.cache().clockAdvance();
        if (stats_every_s && ++since_stats >= stats_every_s) {
            since_stats = 0;
            std::printf("---- %llu requests, %llu connections\n%s",
                        static_cast<unsigned long long>(
                            service.requestsServed()),
                        static_cast<unsigned long long>(
                            server.connectionsAccepted()),
                        service.statsText().c_str());
            std::fflush(stdout);
        }
    }
    std::printf("kv_server: shutting down\n");
    if (pump)
        pump->stop();
    if (metrics_http)
        metrics_http->stop();
    server.stop();
    return 0;
}
