/**
 * @file
 * Guided tour of the adaptive key-value cache (src/kv): read-through
 * fetches against a slow "database", pinning, a workload shift that
 * makes the selector change its mind, and the stats that show it
 * happening. Run it with no arguments.
 */

#include <cstdio>
#include <string>

#include "kv/adaptive_kv_cache.hh"
#include "util/stat_registry.hh"
#include "workloads/key_stream.hh"

using namespace adcache;
using namespace adcache::kv;

namespace
{

/** Pretend backing store: slow, so we want a high hit rate. */
std::string
databaseLookup(KvKey key)
{
    return "row-" + std::to_string(key);
}

void
printStats(const AdaptiveKvCache &cache, const char *when)
{
    StatRegistry reg;
    cache.registerStats(reg, "");
    std::printf("--- %s ---\n", when);
    std::printf("  hit rate            %.3f\n", reg.numeric("hit_rate"));
    std::printf("  evictions           %.0f (directed %.0f, "
                "fallback %.0f)\n",
                reg.numeric("evictions"),
                reg.numeric("directed_evictions"),
                reg.numeric("fallback_evictions"));
    std::printf("  decisions lru/lfu   %.0f / %.0f\n",
                reg.numeric("decisions.lru"),
                reg.numeric("decisions.lfu"));
    std::printf("  selection flips     %.0f\n",
                reg.numeric("selection_flips"));
}

} // namespace

int
main()
{
    KvConfig config;
    config.capacity = 2'048;
    config.numShards = 4;
    config.numBuckets = 512;
    config.bucketWays = 4;
    config.leaderEvery = 8;
    config.shadowTagBits = 16;
    AdaptiveKvCache cache(config);
    std::printf("%s\n\n", cache.describe().c_str());

    // A pinned configuration row that must never be evicted.
    cache.put(0xC0FFEE, "config-row", /*pinned=*/true);

    // Phase 1: skewed popularity — a few keys dominate.
    KeyStreamSpec hot;
    hot.pattern = KeyPattern::Zipf;
    hot.keySpace = 32'768;
    hot.skew = 1.1;
    hot.seed = 7;
    KeyStream stream(hot);
    for (int i = 0; i < 150'000; ++i) {
        const KvKey key = stream.next();
        cache.fetch(key, [&] { return databaseLookup(key); });
    }
    printStats(cache, "after skewed phase");

    // Phase 2: a scan sweeps through, four times the capacity.
    KeyStreamSpec scan;
    scan.pattern = KeyPattern::Scan;
    scan.keySpace = 32'768;
    scan.scanSpan = 8'192;
    scan.seed = 8;
    KeyStream sweep(scan);
    for (int i = 0; i < 150'000; ++i) {
        const KvKey key = sweep.next();
        cache.fetch(key, [&] { return databaseLookup(key); });
    }
    printStats(cache, "after scan phase");

    const auto pinned = cache.get(0xC0FFEE);
    std::printf("\npinned row survived both phases: %s\n",
                pinned ? pinned->c_str() : "(LOST!)");
    std::printf("resident entries: %zu of %llu\n", cache.size(),
                static_cast<unsigned long long>(cache.capacity()));
    return pinned.has_value() ? 0 : 1;
}
