/**
 * @file
 * Trace capture and replay: record any suite benchmark to the binary
 * trace format, inspect a trace, or replay one through a chosen L2
 * organisation. Demonstrates the trace substrate a user would need
 * to plug in their own (e.g. Pin- or gem5-derived) traces.
 *
 *   $ ./trace_tool record art-1 200000 art.trc
 *   $ ./trace_tool info art.trc
 *   $ ./trace_tool replay art.trc adaptive
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "sim/experiment.hh"
#include "trace/trace_io.hh"

using namespace adcache;

namespace
{

int
record(const char *bench_name, InstCount count, const char *path)
{
    const auto *bench = findBenchmark(bench_name);
    if (!bench) {
        std::fprintf(stderr, "unknown benchmark '%s'\n", bench_name);
        return 1;
    }
    auto gen = makeBenchmark(*bench);
    const auto instrs = drain(*gen, count);
    if (!writeTrace(path, instrs)) {
        std::fprintf(stderr, "cannot write '%s'\n", path);
        return 1;
    }
    std::printf("wrote %zu instructions of %s to %s\n", instrs.size(),
                bench_name, path);
    return 0;
}

int
info(const char *path)
{
    FileTraceSource src(path);
    std::map<InstrClass, std::uint64_t> mix;
    TraceInstr instr;
    Addr min_addr = ~Addr(0), max_addr = 0;
    while (src.next(instr)) {
        ++mix[instr.cls];
        if (instr.isMem()) {
            min_addr = std::min(min_addr, instr.memAddr);
            max_addr = std::max(max_addr, instr.memAddr);
        }
    }
    std::printf("%s: %llu instructions\n", path,
                static_cast<unsigned long long>(src.recordCount()));
    for (const auto &[cls, count] : mix)
        std::printf("  %-8s %10llu (%.1f%%)\n", instrClassName(cls),
                    static_cast<unsigned long long>(count),
                    100.0 * double(count) /
                        double(src.recordCount()));
    if (max_addr >= min_addr)
        std::printf("  data range: 0x%llx .. 0x%llx\n",
                    static_cast<unsigned long long>(min_addr),
                    static_cast<unsigned long long>(max_addr));
    return 0;
}

int
replay(const char *path, const char *l2_kind)
{
    L2Spec l2;
    if (!std::strcmp(l2_kind, "adaptive"))
        l2 = L2Spec::adaptiveLruLfu();
    else if (!std::strcmp(l2_kind, "sbar"))
        l2 = L2Spec::fromSbar(SbarConfig{});
    else
        l2 = L2Spec::policy(parsePolicyType(l2_kind));

    SystemConfig cfg;
    cfg.l2 = l2;
    System sys(cfg);
    FileTraceSource src(path);
    const auto res = sys.runTimed(src, UINT64_MAX);
    std::printf("replayed %llu instructions on %s\n",
                static_cast<unsigned long long>(
                    res.core.instructions),
                res.l2Label.c_str());
    std::printf("  CPI %.3f, L2 MPKI %.2f, L1D MPKI %.2f, branch "
                "accuracy %.1f%%\n",
                res.cpi, res.l2Mpki, res.l1dMpki,
                100.0 * res.core.predictor.accuracy());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 5 && !std::strcmp(argv[1], "record"))
        return record(argv[2], InstCount(std::atoll(argv[3])),
                      argv[4]);
    if (argc >= 3 && !std::strcmp(argv[1], "info"))
        return info(argv[2]);
    if (argc >= 4 && !std::strcmp(argv[1], "replay"))
        return replay(argv[2], argv[3]);
    std::fprintf(stderr,
                 "usage:\n"
                 "  %s record <benchmark> <count> <file>\n"
                 "  %s info <file>\n"
                 "  %s replay <file> <lru|lfu|...|adaptive|sbar>\n",
                 argv[0], argv[0], argv[0]);
    return 1;
}
