/**
 * @file
 * Interactive-style exploration of adaptivity decisions: run any
 * suite benchmark on the adaptive L2 and watch, quantum by quantum,
 * which component each region of the cache imitates and how the
 * cumulative miss rates evolve — the mechanics behind Fig. 7. With
 * ADCACHE_REPORT=json|csv the per-quantum rows are emitted as a
 * structured grid instead of the ASCII rendering.
 *
 *   $ ./phase_explorer [benchmark] [instructions] [quanta]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common.hh"
#include "core/adaptive_cache.hh"

using namespace adcache;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "ammp";
    const InstCount instrs =
        argc > 2 ? InstCount(std::atoll(argv[2])) : 3'000'000;
    const unsigned quanta = argc > 3 ? unsigned(std::atoi(argv[3]))
                                     : 24u;

    const auto *def = findBenchmark(name);
    if (!def) {
        std::fprintf(stderr,
                     "unknown benchmark '%s'; available:\n",
                     name.c_str());
        for (const auto *b : allBenchmarks())
            std::fprintf(stderr, "  %s\n", b->name.c_str());
        return 1;
    }

    SystemConfig cfg;
    cfg.l2 = L2Spec::adaptiveLruLfu();
    System sys(cfg);
    auto &l2 = dynamic_cast<AdaptiveCache &>(sys.l2());
    auto source = makeBenchmark(*def);

    const unsigned sets = l2.geometry().numSets;
    const unsigned groups = 16;
    const InstCount quantum = instrs / quanta;

    ReportGrid grid;
    grid.experiment = "phase explorer";
    grid.variantHeader = "quantum";
    grid.addMeta("instructions", std::to_string(instrs));
    grid.addMeta("quanta", std::to_string(quanta));
    grid.addMeta("l2", l2.describe());

    if (bench::textMode()) {
        std::printf("%s on %s\n", def->name.c_str(),
                    l2.describe().c_str());
        std::printf("one row per quantum of %llu instructions; one "
                    "column per group of %u sets ('L' imitating LRU, "
                    "'f' LFU, '.' idle)\n\n",
                    static_cast<unsigned long long>(quantum),
                    sets / groups);
        std::printf("%-10s %-*s %10s %10s\n", "instrs", int(groups),
                    "set map", "L2 misses", "missRate%");
    }

    std::uint64_t prev_misses = 0;
    for (unsigned q = 0; q < quanta; ++q) {
        sys.runFunctional(*source, quantum);
        std::string map(groups, '.');
        for (unsigned g = 0; g < groups; ++g) {
            std::uint64_t lru = 0, lfu = 0;
            const unsigned per = sets / groups;
            for (unsigned s = g * per; s < (g + 1) * per; ++s) {
                lru += l2.decisionsFor(s)[0];
                lfu += l2.decisionsFor(s)[1];
            }
            if (lru + lfu > 0)
                map[g] = lru >= lfu ? 'L' : 'f';
        }
        l2.clearDecisions();
        const auto &stats = l2.stats();
        if (bench::textMode()) {
            std::printf("%-10llu %-*s %10llu %9.2f%%\n",
                        static_cast<unsigned long long>((q + 1) *
                                                        quantum),
                        int(groups), map.c_str(),
                        static_cast<unsigned long long>(stats.misses -
                                                        prev_misses),
                        100.0 * stats.missRate());
        } else {
            ReportRow &row =
                grid.add(def->name, "q" + std::to_string(q));
            row.stats.text("map", map);
            row.stats.counter("instructions", (q + 1) * quantum);
            row.stats.counter("quantum_misses",
                              stats.misses - prev_misses);
            row.stats.value("cumulative_miss_rate",
                            stats.missRate());
        }
        prev_misses = stats.misses;
    }

    if (!bench::textMode()) {
        bench::report(grid);
        return 0;
    }

    std::printf("\ntotals: %llu accesses, %llu misses; component "
                "shadows: LRU %llu misses, LFU %llu misses\n",
                static_cast<unsigned long long>(l2.stats().accesses),
                static_cast<unsigned long long>(l2.stats().misses),
                static_cast<unsigned long long>(l2.shadowMisses(0)),
                static_cast<unsigned long long>(l2.shadowMisses(1)));
    return 0;
}
