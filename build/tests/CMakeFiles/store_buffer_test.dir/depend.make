# Empty dependencies file for store_buffer_test.
# This may be replaced when dependencies are built.
