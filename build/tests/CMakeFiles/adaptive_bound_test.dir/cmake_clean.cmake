file(REMOVE_RECURSE
  "CMakeFiles/adaptive_bound_test.dir/core/adaptive_bound_test.cc.o"
  "CMakeFiles/adaptive_bound_test.dir/core/adaptive_bound_test.cc.o.d"
  "adaptive_bound_test"
  "adaptive_bound_test.pdb"
  "adaptive_bound_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_bound_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
