# Empty dependencies file for adaptive_bound_test.
# This may be replaced when dependencies are built.
