# Empty dependencies file for shadow_cache_test.
# This may be replaced when dependencies are built.
