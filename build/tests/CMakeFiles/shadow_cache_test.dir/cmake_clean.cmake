file(REMOVE_RECURSE
  "CMakeFiles/shadow_cache_test.dir/core/shadow_cache_test.cc.o"
  "CMakeFiles/shadow_cache_test.dir/core/shadow_cache_test.cc.o.d"
  "shadow_cache_test"
  "shadow_cache_test.pdb"
  "shadow_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shadow_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
