# Empty dependencies file for multi_policy_test.
# This may be replaced when dependencies are built.
