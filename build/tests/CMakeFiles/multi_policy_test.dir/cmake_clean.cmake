file(REMOVE_RECURSE
  "CMakeFiles/multi_policy_test.dir/core/multi_policy_test.cc.o"
  "CMakeFiles/multi_policy_test.dir/core/multi_policy_test.cc.o.d"
  "multi_policy_test"
  "multi_policy_test.pdb"
  "multi_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
