# Empty dependencies file for sbar_cache_test.
# This may be replaced when dependencies are built.
