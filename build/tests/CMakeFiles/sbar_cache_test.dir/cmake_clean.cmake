file(REMOVE_RECURSE
  "CMakeFiles/sbar_cache_test.dir/core/sbar_cache_test.cc.o"
  "CMakeFiles/sbar_cache_test.dir/core/sbar_cache_test.cc.o.d"
  "sbar_cache_test"
  "sbar_cache_test.pdb"
  "sbar_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbar_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
