file(REMOVE_RECURSE
  "CMakeFiles/miss_history_test.dir/core/miss_history_test.cc.o"
  "CMakeFiles/miss_history_test.dir/core/miss_history_test.cc.o.d"
  "miss_history_test"
  "miss_history_test.pdb"
  "miss_history_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miss_history_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
