# Empty compiler generated dependencies file for miss_history_test.
# This may be replaced when dependencies are built.
