file(REMOVE_RECURSE
  "CMakeFiles/partial_tags_test.dir/core/partial_tags_test.cc.o"
  "CMakeFiles/partial_tags_test.dir/core/partial_tags_test.cc.o.d"
  "partial_tags_test"
  "partial_tags_test.pdb"
  "partial_tags_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_tags_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
