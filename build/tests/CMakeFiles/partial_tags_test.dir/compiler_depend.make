# Empty compiler generated dependencies file for partial_tags_test.
# This may be replaced when dependencies are built.
