# Empty dependencies file for prefetch_system_test.
# This may be replaced when dependencies are built.
