file(REMOVE_RECURSE
  "CMakeFiles/prefetch_system_test.dir/sim/prefetch_system_test.cc.o"
  "CMakeFiles/prefetch_system_test.dir/sim/prefetch_system_test.cc.o.d"
  "prefetch_system_test"
  "prefetch_system_test.pdb"
  "prefetch_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefetch_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
