file(REMOVE_RECURSE
  "CMakeFiles/tag_array_test.dir/cache/tag_array_test.cc.o"
  "CMakeFiles/tag_array_test.dir/cache/tag_array_test.cc.o.d"
  "tag_array_test"
  "tag_array_test.pdb"
  "tag_array_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tag_array_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
