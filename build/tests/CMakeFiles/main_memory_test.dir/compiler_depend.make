# Empty compiler generated dependencies file for main_memory_test.
# This may be replaced when dependencies are built.
