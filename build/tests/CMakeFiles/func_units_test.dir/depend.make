# Empty dependencies file for func_units_test.
# This may be replaced when dependencies are built.
