file(REMOVE_RECURSE
  "CMakeFiles/func_units_test.dir/cpu/func_units_test.cc.o"
  "CMakeFiles/func_units_test.dir/cpu/func_units_test.cc.o.d"
  "func_units_test"
  "func_units_test.pdb"
  "func_units_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/func_units_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
