file(REMOVE_RECURSE
  "CMakeFiles/adaptive_cache_test.dir/core/adaptive_cache_test.cc.o"
  "CMakeFiles/adaptive_cache_test.dir/core/adaptive_cache_test.cc.o.d"
  "adaptive_cache_test"
  "adaptive_cache_test.pdb"
  "adaptive_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
