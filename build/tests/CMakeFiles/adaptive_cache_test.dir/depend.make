# Empty dependencies file for adaptive_cache_test.
# This may be replaced when dependencies are built.
