# Empty compiler generated dependencies file for policy_duel.
# This may be replaced when dependencies are built.
