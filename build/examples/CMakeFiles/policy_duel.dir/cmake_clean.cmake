file(REMOVE_RECURSE
  "CMakeFiles/policy_duel.dir/policy_duel.cpp.o"
  "CMakeFiles/policy_duel.dir/policy_duel.cpp.o.d"
  "policy_duel"
  "policy_duel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_duel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
