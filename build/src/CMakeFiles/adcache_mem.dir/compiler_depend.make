# Empty compiler generated dependencies file for adcache_mem.
# This may be replaced when dependencies are built.
