file(REMOVE_RECURSE
  "libadcache_mem.a"
)
