file(REMOVE_RECURSE
  "CMakeFiles/adcache_mem.dir/mem/bus.cc.o"
  "CMakeFiles/adcache_mem.dir/mem/bus.cc.o.d"
  "CMakeFiles/adcache_mem.dir/mem/main_memory.cc.o"
  "CMakeFiles/adcache_mem.dir/mem/main_memory.cc.o.d"
  "libadcache_mem.a"
  "libadcache_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adcache_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
