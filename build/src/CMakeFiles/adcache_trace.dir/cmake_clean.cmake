file(REMOVE_RECURSE
  "CMakeFiles/adcache_trace.dir/trace/source.cc.o"
  "CMakeFiles/adcache_trace.dir/trace/source.cc.o.d"
  "CMakeFiles/adcache_trace.dir/trace/trace_io.cc.o"
  "CMakeFiles/adcache_trace.dir/trace/trace_io.cc.o.d"
  "libadcache_trace.a"
  "libadcache_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adcache_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
