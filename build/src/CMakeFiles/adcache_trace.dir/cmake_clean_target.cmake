file(REMOVE_RECURSE
  "libadcache_trace.a"
)
