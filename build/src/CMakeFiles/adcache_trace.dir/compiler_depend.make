# Empty compiler generated dependencies file for adcache_trace.
# This may be replaced when dependencies are built.
