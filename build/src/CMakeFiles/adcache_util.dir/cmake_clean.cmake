file(REMOVE_RECURSE
  "CMakeFiles/adcache_util.dir/util/logging.cc.o"
  "CMakeFiles/adcache_util.dir/util/logging.cc.o.d"
  "CMakeFiles/adcache_util.dir/util/rng.cc.o"
  "CMakeFiles/adcache_util.dir/util/rng.cc.o.d"
  "CMakeFiles/adcache_util.dir/util/stats.cc.o"
  "CMakeFiles/adcache_util.dir/util/stats.cc.o.d"
  "CMakeFiles/adcache_util.dir/util/table.cc.o"
  "CMakeFiles/adcache_util.dir/util/table.cc.o.d"
  "libadcache_util.a"
  "libadcache_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adcache_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
