file(REMOVE_RECURSE
  "libadcache_sim.a"
)
