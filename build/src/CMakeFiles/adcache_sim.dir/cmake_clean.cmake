file(REMOVE_RECURSE
  "CMakeFiles/adcache_sim.dir/sim/config.cc.o"
  "CMakeFiles/adcache_sim.dir/sim/config.cc.o.d"
  "CMakeFiles/adcache_sim.dir/sim/experiment.cc.o"
  "CMakeFiles/adcache_sim.dir/sim/experiment.cc.o.d"
  "CMakeFiles/adcache_sim.dir/sim/multicore.cc.o"
  "CMakeFiles/adcache_sim.dir/sim/multicore.cc.o.d"
  "CMakeFiles/adcache_sim.dir/sim/system.cc.o"
  "CMakeFiles/adcache_sim.dir/sim/system.cc.o.d"
  "libadcache_sim.a"
  "libadcache_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adcache_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
