# Empty compiler generated dependencies file for adcache_sim.
# This may be replaced when dependencies are built.
