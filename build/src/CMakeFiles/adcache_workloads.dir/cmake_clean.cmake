file(REMOVE_RECURSE
  "CMakeFiles/adcache_workloads.dir/workloads/kernels.cc.o"
  "CMakeFiles/adcache_workloads.dir/workloads/kernels.cc.o.d"
  "CMakeFiles/adcache_workloads.dir/workloads/suite.cc.o"
  "CMakeFiles/adcache_workloads.dir/workloads/suite.cc.o.d"
  "CMakeFiles/adcache_workloads.dir/workloads/workload.cc.o"
  "CMakeFiles/adcache_workloads.dir/workloads/workload.cc.o.d"
  "libadcache_workloads.a"
  "libadcache_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adcache_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
