# Empty dependencies file for adcache_workloads.
# This may be replaced when dependencies are built.
