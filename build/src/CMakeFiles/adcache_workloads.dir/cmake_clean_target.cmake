file(REMOVE_RECURSE
  "libadcache_workloads.a"
)
