# Empty dependencies file for adcache_cpu.
# This may be replaced when dependencies are built.
