
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/branch_predictor.cc" "src/CMakeFiles/adcache_cpu.dir/cpu/branch_predictor.cc.o" "gcc" "src/CMakeFiles/adcache_cpu.dir/cpu/branch_predictor.cc.o.d"
  "/root/repo/src/cpu/btb.cc" "src/CMakeFiles/adcache_cpu.dir/cpu/btb.cc.o" "gcc" "src/CMakeFiles/adcache_cpu.dir/cpu/btb.cc.o.d"
  "/root/repo/src/cpu/func_units.cc" "src/CMakeFiles/adcache_cpu.dir/cpu/func_units.cc.o" "gcc" "src/CMakeFiles/adcache_cpu.dir/cpu/func_units.cc.o.d"
  "/root/repo/src/cpu/ooo_core.cc" "src/CMakeFiles/adcache_cpu.dir/cpu/ooo_core.cc.o" "gcc" "src/CMakeFiles/adcache_cpu.dir/cpu/ooo_core.cc.o.d"
  "/root/repo/src/cpu/store_buffer.cc" "src/CMakeFiles/adcache_cpu.dir/cpu/store_buffer.cc.o" "gcc" "src/CMakeFiles/adcache_cpu.dir/cpu/store_buffer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adcache_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adcache_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adcache_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
