file(REMOVE_RECURSE
  "CMakeFiles/adcache_cpu.dir/cpu/branch_predictor.cc.o"
  "CMakeFiles/adcache_cpu.dir/cpu/branch_predictor.cc.o.d"
  "CMakeFiles/adcache_cpu.dir/cpu/btb.cc.o"
  "CMakeFiles/adcache_cpu.dir/cpu/btb.cc.o.d"
  "CMakeFiles/adcache_cpu.dir/cpu/func_units.cc.o"
  "CMakeFiles/adcache_cpu.dir/cpu/func_units.cc.o.d"
  "CMakeFiles/adcache_cpu.dir/cpu/ooo_core.cc.o"
  "CMakeFiles/adcache_cpu.dir/cpu/ooo_core.cc.o.d"
  "CMakeFiles/adcache_cpu.dir/cpu/store_buffer.cc.o"
  "CMakeFiles/adcache_cpu.dir/cpu/store_buffer.cc.o.d"
  "libadcache_cpu.a"
  "libadcache_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adcache_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
