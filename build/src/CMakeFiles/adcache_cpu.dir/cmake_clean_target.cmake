file(REMOVE_RECURSE
  "libadcache_cpu.a"
)
