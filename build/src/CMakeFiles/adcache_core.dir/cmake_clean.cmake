file(REMOVE_RECURSE
  "CMakeFiles/adcache_core.dir/core/adaptive_cache.cc.o"
  "CMakeFiles/adcache_core.dir/core/adaptive_cache.cc.o.d"
  "CMakeFiles/adcache_core.dir/core/miss_history.cc.o"
  "CMakeFiles/adcache_core.dir/core/miss_history.cc.o.d"
  "CMakeFiles/adcache_core.dir/core/overhead.cc.o"
  "CMakeFiles/adcache_core.dir/core/overhead.cc.o.d"
  "CMakeFiles/adcache_core.dir/core/prefetcher.cc.o"
  "CMakeFiles/adcache_core.dir/core/prefetcher.cc.o.d"
  "CMakeFiles/adcache_core.dir/core/sbar_cache.cc.o"
  "CMakeFiles/adcache_core.dir/core/sbar_cache.cc.o.d"
  "CMakeFiles/adcache_core.dir/core/shadow_cache.cc.o"
  "CMakeFiles/adcache_core.dir/core/shadow_cache.cc.o.d"
  "libadcache_core.a"
  "libadcache_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adcache_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
