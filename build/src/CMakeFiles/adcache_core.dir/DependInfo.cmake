
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive_cache.cc" "src/CMakeFiles/adcache_core.dir/core/adaptive_cache.cc.o" "gcc" "src/CMakeFiles/adcache_core.dir/core/adaptive_cache.cc.o.d"
  "/root/repo/src/core/miss_history.cc" "src/CMakeFiles/adcache_core.dir/core/miss_history.cc.o" "gcc" "src/CMakeFiles/adcache_core.dir/core/miss_history.cc.o.d"
  "/root/repo/src/core/overhead.cc" "src/CMakeFiles/adcache_core.dir/core/overhead.cc.o" "gcc" "src/CMakeFiles/adcache_core.dir/core/overhead.cc.o.d"
  "/root/repo/src/core/prefetcher.cc" "src/CMakeFiles/adcache_core.dir/core/prefetcher.cc.o" "gcc" "src/CMakeFiles/adcache_core.dir/core/prefetcher.cc.o.d"
  "/root/repo/src/core/sbar_cache.cc" "src/CMakeFiles/adcache_core.dir/core/sbar_cache.cc.o" "gcc" "src/CMakeFiles/adcache_core.dir/core/sbar_cache.cc.o.d"
  "/root/repo/src/core/shadow_cache.cc" "src/CMakeFiles/adcache_core.dir/core/shadow_cache.cc.o" "gcc" "src/CMakeFiles/adcache_core.dir/core/shadow_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adcache_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adcache_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
