file(REMOVE_RECURSE
  "CMakeFiles/adcache_cache.dir/cache/cache.cc.o"
  "CMakeFiles/adcache_cache.dir/cache/cache.cc.o.d"
  "CMakeFiles/adcache_cache.dir/cache/policies.cc.o"
  "CMakeFiles/adcache_cache.dir/cache/policies.cc.o.d"
  "CMakeFiles/adcache_cache.dir/cache/replacement.cc.o"
  "CMakeFiles/adcache_cache.dir/cache/replacement.cc.o.d"
  "CMakeFiles/adcache_cache.dir/cache/tag_array.cc.o"
  "CMakeFiles/adcache_cache.dir/cache/tag_array.cc.o.d"
  "libadcache_cache.a"
  "libadcache_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adcache_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
