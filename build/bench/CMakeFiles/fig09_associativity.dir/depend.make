# Empty dependencies file for fig09_associativity.
# This may be replaced when dependencies are built.
