file(REMOVE_RECURSE
  "CMakeFiles/fig09_associativity.dir/fig09_associativity.cc.o"
  "CMakeFiles/fig09_associativity.dir/fig09_associativity.cc.o.d"
  "fig09_associativity"
  "fig09_associativity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_associativity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
