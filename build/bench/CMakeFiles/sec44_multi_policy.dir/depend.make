# Empty dependencies file for sec44_multi_policy.
# This may be replaced when dependencies are built.
