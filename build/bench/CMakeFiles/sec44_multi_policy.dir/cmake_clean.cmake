file(REMOVE_RECURSE
  "CMakeFiles/sec44_multi_policy.dir/sec44_multi_policy.cc.o"
  "CMakeFiles/sec44_multi_policy.dir/sec44_multi_policy.cc.o.d"
  "sec44_multi_policy"
  "sec44_multi_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec44_multi_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
