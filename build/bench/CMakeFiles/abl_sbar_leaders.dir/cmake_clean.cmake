file(REMOVE_RECURSE
  "CMakeFiles/abl_sbar_leaders.dir/abl_sbar_leaders.cc.o"
  "CMakeFiles/abl_sbar_leaders.dir/abl_sbar_leaders.cc.o.d"
  "abl_sbar_leaders"
  "abl_sbar_leaders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sbar_leaders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
