# Empty compiler generated dependencies file for abl_sbar_leaders.
# This may be replaced when dependencies are built.
