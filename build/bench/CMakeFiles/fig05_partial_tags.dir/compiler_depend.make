# Empty compiler generated dependencies file for fig05_partial_tags.
# This may be replaced when dependencies are built.
