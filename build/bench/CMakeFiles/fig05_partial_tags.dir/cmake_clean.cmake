file(REMOVE_RECURSE
  "CMakeFiles/fig05_partial_tags.dir/fig05_partial_tags.cc.o"
  "CMakeFiles/fig05_partial_tags.dir/fig05_partial_tags.cc.o.d"
  "fig05_partial_tags"
  "fig05_partial_tags.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_partial_tags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
