file(REMOVE_RECURSE
  "CMakeFiles/fig10_store_buffer.dir/fig10_store_buffer.cc.o"
  "CMakeFiles/fig10_store_buffer.dir/fig10_store_buffer.cc.o.d"
  "fig10_store_buffer"
  "fig10_store_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_store_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
