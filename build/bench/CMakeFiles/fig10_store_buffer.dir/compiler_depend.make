# Empty compiler generated dependencies file for fig10_store_buffer.
# This may be replaced when dependencies are built.
