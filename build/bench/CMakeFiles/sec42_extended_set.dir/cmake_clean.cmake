file(REMOVE_RECURSE
  "CMakeFiles/sec42_extended_set.dir/sec42_extended_set.cc.o"
  "CMakeFiles/sec42_extended_set.dir/sec42_extended_set.cc.o.d"
  "sec42_extended_set"
  "sec42_extended_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec42_extended_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
