# Empty dependencies file for sec42_extended_set.
# This may be replaced when dependencies are built.
