# Empty compiler generated dependencies file for fig06_vs_bigger.
# This may be replaced when dependencies are built.
