file(REMOVE_RECURSE
  "CMakeFiles/fig06_vs_bigger.dir/fig06_vs_bigger.cc.o"
  "CMakeFiles/fig06_vs_bigger.dir/fig06_vs_bigger.cc.o.d"
  "fig06_vs_bigger"
  "fig06_vs_bigger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_vs_bigger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
