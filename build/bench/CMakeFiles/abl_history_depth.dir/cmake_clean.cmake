file(REMOVE_RECURSE
  "CMakeFiles/abl_history_depth.dir/abl_history_depth.cc.o"
  "CMakeFiles/abl_history_depth.dir/abl_history_depth.cc.o.d"
  "abl_history_depth"
  "abl_history_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_history_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
