# Empty dependencies file for abl_history_depth.
# This may be replaced when dependencies are built.
