# Empty dependencies file for abl_tag_hash.
# This may be replaced when dependencies are built.
