file(REMOVE_RECURSE
  "CMakeFiles/abl_tag_hash.dir/abl_tag_hash.cc.o"
  "CMakeFiles/abl_tag_hash.dir/abl_tag_hash.cc.o.d"
  "abl_tag_hash"
  "abl_tag_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_tag_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
