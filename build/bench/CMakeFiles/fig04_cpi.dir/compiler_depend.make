# Empty compiler generated dependencies file for fig04_cpi.
# This may be replaced when dependencies are built.
