file(REMOVE_RECURSE
  "CMakeFiles/fig04_cpi.dir/fig04_cpi.cc.o"
  "CMakeFiles/fig04_cpi.dir/fig04_cpi.cc.o.d"
  "fig04_cpi"
  "fig04_cpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_cpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
