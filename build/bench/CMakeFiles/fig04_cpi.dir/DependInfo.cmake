
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig04_cpi.cc" "bench/CMakeFiles/fig04_cpi.dir/fig04_cpi.cc.o" "gcc" "bench/CMakeFiles/fig04_cpi.dir/fig04_cpi.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adcache_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adcache_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adcache_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adcache_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adcache_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adcache_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adcache_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adcache_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
