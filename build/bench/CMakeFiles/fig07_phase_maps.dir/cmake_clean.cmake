file(REMOVE_RECURSE
  "CMakeFiles/fig07_phase_maps.dir/fig07_phase_maps.cc.o"
  "CMakeFiles/fig07_phase_maps.dir/fig07_phase_maps.cc.o.d"
  "fig07_phase_maps"
  "fig07_phase_maps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_phase_maps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
