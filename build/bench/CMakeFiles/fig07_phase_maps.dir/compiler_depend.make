# Empty compiler generated dependencies file for fig07_phase_maps.
# This may be replaced when dependencies are built.
