# Empty compiler generated dependencies file for fig03_mpki.
# This may be replaced when dependencies are built.
