file(REMOVE_RECURSE
  "CMakeFiles/fig03_mpki.dir/fig03_mpki.cc.o"
  "CMakeFiles/fig03_mpki.dir/fig03_mpki.cc.o.d"
  "fig03_mpki"
  "fig03_mpki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_mpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
