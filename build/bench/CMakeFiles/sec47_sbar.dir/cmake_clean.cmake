file(REMOVE_RECURSE
  "CMakeFiles/sec47_sbar.dir/sec47_sbar.cc.o"
  "CMakeFiles/sec47_sbar.dir/sec47_sbar.cc.o.d"
  "sec47_sbar"
  "sec47_sbar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec47_sbar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
