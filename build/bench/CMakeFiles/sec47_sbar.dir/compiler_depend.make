# Empty compiler generated dependencies file for sec47_sbar.
# This may be replaced when dependencies are built.
