file(REMOVE_RECURSE
  "CMakeFiles/sec46_l1_adaptive.dir/sec46_l1_adaptive.cc.o"
  "CMakeFiles/sec46_l1_adaptive.dir/sec46_l1_adaptive.cc.o.d"
  "sec46_l1_adaptive"
  "sec46_l1_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec46_l1_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
