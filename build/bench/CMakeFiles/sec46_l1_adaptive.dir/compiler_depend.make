# Empty compiler generated dependencies file for sec46_l1_adaptive.
# This may be replaced when dependencies are built.
