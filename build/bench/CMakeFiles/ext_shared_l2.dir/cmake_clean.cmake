file(REMOVE_RECURSE
  "CMakeFiles/ext_shared_l2.dir/ext_shared_l2.cc.o"
  "CMakeFiles/ext_shared_l2.dir/ext_shared_l2.cc.o.d"
  "ext_shared_l2"
  "ext_shared_l2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_shared_l2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
