# Empty compiler generated dependencies file for ext_shared_l2.
# This may be replaced when dependencies are built.
