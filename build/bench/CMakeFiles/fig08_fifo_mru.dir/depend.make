# Empty dependencies file for fig08_fifo_mru.
# This may be replaced when dependencies are built.
