file(REMOVE_RECURSE
  "CMakeFiles/fig08_fifo_mru.dir/fig08_fifo_mru.cc.o"
  "CMakeFiles/fig08_fifo_mru.dir/fig08_fifo_mru.cc.o.d"
  "fig08_fifo_mru"
  "fig08_fifo_mru.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_fifo_mru.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
