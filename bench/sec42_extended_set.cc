/**
 * @file
 * Sec. 4.2, extended-set stability: over all ~100 programs the
 * average miss reduction dilutes (paper: 18.6 % misses, 8.4 % CPI —
 * many traces fit in the 512KB L2) but adaptivity must never hurt
 * noticeably: no program loses more than ~2.7 % misses (tigr) or
 * ~1.2 % CPI (unepic).
 */

#include "common.hh"

using namespace adcache;

int
main()
{
    bench::Experiment e;
    e.title = "Sec. 4.2 - extended evaluation set";
    e.benchmarks = allBenchmarks();
    e.variants = {L2Spec::lru(), L2Spec::adaptiveLruLfu()};
    e.variantNames = {"LRU", "Adaptive"};
    e.timed = true;
    if (bench::textMode())
        std::printf("running %zu benchmarks x 2 configurations "
                    "(timed)\n",
                    e.benchmarks.size());
    const auto rows = bench::runAndReport(e);
    if (!bench::textMode())
        return 0;

    const auto mpki = averageOf(rows, metricL2Mpki);
    const auto cpi = averageOf(rows, metricCpi);
    std::printf("\naverages over %zu programs:\n", rows.size());
    std::printf("  MPKI: LRU %.2f -> adaptive %.2f\n", mpki[0],
                mpki[1]);
    std::printf("  CPI : LRU %.3f -> adaptive %.3f\n", cpi[0], cpi[1]);

    bench::paperVsMeasured("extended-set avg miss reduction", "18.6%",
                           percentImprovement(mpki[0], mpki[1]), "%");
    bench::paperVsMeasured("extended-set avg CPI improvement", "8.4%",
                           percentImprovement(cpi[0], cpi[1]), "%");

    const auto [mb, mworst] =
        bench::worstDeterioration(rows, 0, 1, metricL2Mpki);
    const auto [cb, cworst] =
        bench::worstDeterioration(rows, 0, 1, metricCpi);
    std::printf("worst miss increase: %+.2f%% (%s); paper: +2.7%% "
                "(tigr)\n",
                mworst, mb.c_str());
    std::printf("worst CPI increase : %+.2f%% (%s); paper: +1.2%% "
                "(unepic)\n",
                cworst, cb.c_str());

    // Show the tail of the distribution: every program that loses
    // anything at all.
    std::printf("\nprograms with any CPI deterioration:\n");
    for (const auto &row : rows) {
        const double delta =
            percentDelta(row.results[0].cpi, row.results[1].cpi);
        if (delta > 0.05)
            std::printf("  %-16s %+.2f%%\n", row.benchmark.c_str(),
                        delta);
    }
    return 0;
}
