/**
 * @file
 * Sec. 4.4: generalised adaptivity over five policies (LRU, LFU,
 * FIFO, MRU, Random). Paper: despite the much higher hardware cost,
 * the five-policy combination is not clearly superior — cumulative
 * CPI is virtually identical to LRU/LFU adaptivity, with individual
 * benchmarks moving up to ~1 % either way.
 */

#include "common.hh"

using namespace adcache;

int
main()
{
    // Sketch-based rows ride the same matrix: CMS-LFU replaces the
    // exact-LFU component, and TinyLFU admission gates the fills of
    // the LFU component of the headline dual.
    AdaptiveConfig cms = AdaptiveConfig::dual(
        PolicyType::LRU, PolicyType::CmsLfu, 512 * 1024, 8);
    AdaptiveConfig admit = AdaptiveConfig::dual(
        PolicyType::LRU, PolicyType::LFU, 512 * 1024, 8);
    admit.admission = {0, 1};

    bench::Experiment e;
    e.title = "Sec. 4.4 - five-policy adaptivity";
    e.benchmarks = primaryBenchmarks();
    e.variants = {
        L2Spec::fromAdaptive(AdaptiveConfig::fivePolicy()),
        L2Spec::adaptiveLruLfu(),
        L2Spec::fromAdaptive(cms),
        L2Spec::fromAdaptive(admit),
        L2Spec::lru(),
    };
    e.variantNames = {"Adapt5", "Adapt2", "Adapt2cms", "Adapt2adm",
                      "LRU"};
    e.timed = true;
    e.metrics = {{"CPI", metricCpi, 3}};
    const auto rows = bench::runAndReport(e);
    if (!bench::textMode())
        return 0;

    const auto cpi = averageOf(rows, metricCpi);
    const auto mpki = averageOf(rows, metricL2Mpki);
    std::printf("\navg MPKI: five-policy %.2f, LRU+LFU %.2f, "
                "LRU+CMS-LFU %.2f, LRU+LFU/adm %.2f, LRU %.2f\n",
                mpki[0], mpki[1], mpki[2], mpki[3], mpki[4]);
    bench::paperVsMeasured(
        "five-policy vs LRU+LFU cumulative CPI delta", "~0%",
        percentDelta(cpi[1], cpi[0]), "%");

    double best_gain = 0, worst_loss = 0;
    for (const auto &row : rows) {
        const double delta =
            percentDelta(row.results[1].cpi, row.results[0].cpi);
        best_gain = std::min(best_gain, delta);
        worst_loss = std::max(worst_loss, delta);
    }
    std::printf("per-benchmark CPI delta of five-policy vs dual: best "
                "%.2f%%, worst %+.2f%% (paper: ~+-1%%)\n",
                best_gain, worst_loss);
    return 0;
}
