/**
 * @file
 * Extension (paper future work, Sec. 6): the adaptivity scheme
 * applied to hybrid hardware prefetchers, with "hit/miss replaced by
 * useful/not-useful prefetch". Compares no prefetching, each
 * component alone, and the adaptive hybrid on demand L2 MPKI.
 */

#include "common.hh"

using namespace adcache;

int
main()
{
    printConfigBanner(
        SystemConfig{},
        "Extension - adaptive hybrid prefetching at the L2");

    const PrefetcherType kinds[] = {
        PrefetcherType::None, PrefetcherType::NextLine,
        PrefetcherType::Stride, PrefetcherType::AdaptiveHybrid};

    TextTable table({"prefetcher", "demand MPKI", "red vs none %",
                     "prefetches/kI"});
    double none_mpki = 0;
    for (const auto kind : kinds) {
        RunningStat mpki_stat, pf_stat;
        for (const auto *bench : primaryBenchmarks()) {
            SystemConfig cfg;
            cfg.l2Prefetcher = kind;
            System sys(cfg);
            auto src = makeBenchmark(*bench);
            const auto res = sys.runFunctional(*src, instrBudget());
            mpki_stat.add(res.l2DemandMpki);
            pf_stat.add(1000.0 * double(res.prefetchesIssued) /
                        double(res.core.instructions));
        }
        if (kind == PrefetcherType::None)
            none_mpki = mpki_stat.mean();
        table.addRow({prefetcherName(kind),
                      TextTable::num(mpki_stat.mean(), 2),
                      TextTable::num(percentImprovement(
                                         none_mpki, mpki_stat.mean()),
                                     2),
                      TextTable::num(pf_stat.mean(), 2)});
        std::printf("... %s done\n", prefetcherName(kind));
    }
    table.print();
    std::printf("\n(the adaptive hybrid should track the better "
                "component per program, as the cache does for "
                "replacement)\n");

    // Combine with the adaptive cache: does prefetching stack?
    RunningStat combined;
    for (const auto *bench : primaryBenchmarks()) {
        SystemConfig cfg;
        cfg.l2 = L2Spec::adaptiveLruLfu();
        cfg.l2Prefetcher = PrefetcherType::AdaptiveHybrid;
        System sys(cfg);
        auto src = makeBenchmark(*bench);
        combined.add(
            sys.runFunctional(*src, instrBudget()).l2DemandMpki);
    }
    std::printf("adaptive cache + adaptive prefetcher: demand MPKI "
                "%.2f (vs %.2f without either)\n",
                combined.mean(), none_mpki);
    return 0;
}
