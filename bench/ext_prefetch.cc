/**
 * @file
 * Extension (paper future work, Sec. 6): the adaptivity scheme
 * applied to hybrid hardware prefetchers, with "hit/miss replaced by
 * useful/not-useful prefetch". Compares no prefetching, each
 * component alone, and the adaptive hybrid on demand L2 MPKI, plus
 * the adaptive-cache + adaptive-prefetcher combination.
 */

#include "common.hh"

using namespace adcache;

int
main()
{
    const PrefetcherType kinds[] = {
        PrefetcherType::None, PrefetcherType::NextLine,
        PrefetcherType::Stride, PrefetcherType::AdaptiveHybrid};

    bench::Experiment e;
    e.title = "Extension - adaptive hybrid prefetching at the L2";
    e.benchmarks = primaryBenchmarks();
    for (const auto kind : kinds) {
        SystemConfig cfg;
        cfg.l2Prefetcher = kind;
        e.configs.push_back({prefetcherName(kind), cfg});
    }
    {
        SystemConfig cfg;
        cfg.l2 = L2Spec::adaptiveLruLfu();
        cfg.l2Prefetcher = PrefetcherType::AdaptiveHybrid;
        e.configs.push_back({"adaptive-cache+hybrid", cfg});
    }
    const auto rows = bench::runAndReport(e);
    if (!bench::textMode())
        return 0;

    const auto mpki = averageOf(rows, metricL2DemandMpki);
    const double none_mpki = mpki[0];

    TextTable table({"prefetcher", "demand MPKI", "red vs none %",
                     "prefetches/kI"});
    for (std::size_t v = 0; v < e.configs.size(); ++v) {
        RunningStat pf_stat;
        for (const auto &row : rows)
            pf_stat.add(1000.0 *
                        double(row.results[v].prefetchesIssued) /
                        double(row.results[v].core.instructions));
        table.addRow({e.configs[v].label,
                      TextTable::num(mpki[v], 2),
                      TextTable::num(
                          percentImprovement(none_mpki, mpki[v]), 2),
                      TextTable::num(pf_stat.mean(), 2)});
    }
    table.print();
    std::printf("\n(the adaptive hybrid should track the better "
                "component per program, as the cache does for "
                "replacement)\n");
    std::printf("adaptive cache + adaptive prefetcher: demand MPKI "
                "%.2f (vs %.2f without either)\n",
                mpki.back(), none_mpki);
    return 0;
}
