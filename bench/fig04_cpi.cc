/**
 * @file
 * Figure 4: cycles-per-instruction for every primary-set benchmark
 * under adaptive LRU/LFU replacement and its components. Paper
 * headline: 12.9 % average CPI improvement over LRU; no benchmark
 * hurt by more than ~1.2 % (unepic).
 */

#include "common.hh"

using namespace adcache;

int
main()
{
    bench::Experiment e;
    e.title = "Fig. 4 - CPI, adaptive vs LRU vs LFU";
    e.benchmarks = primaryBenchmarks();
    e.variants = {
        L2Spec::adaptiveLruLfu(),
        L2Spec::policy(PolicyType::LFU),
        L2Spec::lru(),
    };
    e.variantNames = {"Adaptive", "LFU", "LRU"};
    e.timed = true;
    e.metrics = {{"CPI", metricCpi, 3}};
    const auto rows = bench::runAndReport(e);
    if (!bench::textMode())
        return 0;

    const auto avg = averageOf(rows, metricCpi);
    bench::paperVsMeasured(
        "avg CPI improvement, adaptive vs LRU (primary set)", "12.9%",
        percentImprovement(avg[2], avg[0]), "%");

    const auto [bench_name, worst] =
        bench::worstDeterioration(rows, 2, 0, metricCpi);
    std::printf("worst CPI deterioration vs LRU: %+.2f%% (%s); paper: "
                "+1.2%% (unepic)\n",
                worst, bench_name.c_str());

    // Count benchmarks with a >= 4% CPI improvement (paper: ten runs
    // between 4%% and 60%%).
    int big_winners = 0;
    for (const auto &row : rows)
        if (percentImprovement(row.results[2].cpi,
                               row.results[0].cpi) >= 4.0)
            ++big_winners;
    std::printf("benchmarks with >=4%% CPI improvement: %d (paper: "
                "10)\n",
                big_winners);
    return 0;
}
