/**
 * @file
 * Hot-path throughput regression gate. Runs a fixed matrix of cache
 * organisations (conventional, adaptive full/partial-tag, SBAR, KV
 * shard) over seeded access streams that are decoded once into chunk
 * buffers before any timing starts, measures wall-clock accesses/sec
 * and ns/access per organisation, and emits the results as a
 * ReportGrid JSON document (BENCH_hotpath.json). Two additional rows
 * (kv-read-1t, kv-read-mt) drive the kv cache's lock-free read path
 * with a Zipf(0.99) read-mostly mix, single-threaded and with 4 real
 * threads; --check enforces a hardware-concurrency-aware scaling
 * floor between them on top of the per-row ns/access envelope. The
 * batched hot-path rows time getMany batches against their serial
 * twin (kv-mget), MGet pipelining over real TCP against one-get
 * round trips (serve-pipeline), and the same pair over the
 * syscall-free loopback transport (serve-pipeline-loopback);
 * --check demands getMany stay within noise of serial gets
 * (>= 0.90x), socket pipelining win >= 2x, and loopback pipelining
 * win >= 1.15x.
 *
 * Modes:
 *   perf_regress                    measure and write the JSON
 *   perf_regress --check <base>     also compare against a committed
 *                                   baseline; exit 1 if any
 *                                   organisation's ns/access
 *                                   regressed by more than 10%
 *   perf_regress --smoke            short run that validates JSON
 *                                   emission (no thresholds); wired
 *                                   to ctest label perf_smoke
 *   perf_regress --slo <base>       serving SLO gate: run a YCSB B
 *                                   mix through the loopback
 *                                   transport and fail (closed)
 *                                   unless read p99 stays within the
 *                                   budget committed in the
 *                                   baseline's kv-slo row;
 *                                   --slo-slowdown-us N arms the
 *                                   backend-slowdown scenario to
 *                                   demonstrate the gate trips
 *   perf_regress --trace-overhead   prove the compiled-in-but-
 *                                   disabled tracing hooks cost less
 *                                   than 1% of adaptive-full's
 *                                   ns/access: measures the cost of
 *                                   one disabled gate check, counts
 *                                   how often gates execute on a
 *                                   replay (misses + shadow misses
 *                                   per access — gates live off the
 *                                   hit path), and fails closed on
 *                                   degenerate measurements
 *   perf_regress --metrics-overhead prove the live metrics plane
 *                                   costs less than 1% of the kv
 *                                   read hot path: the kv cache
 *                                   registers via scrape-time
 *                                   collectors (zero per-access
 *                                   work), so the enabled cost is
 *                                   one scrape + Prometheus render
 *                                   per second — measured against a
 *                                   live-shaped registry and
 *                                   amortised at 1 Hz against
 *                                   kv-read-1t; also bounds the
 *                                   marginal Counter::inc the
 *                                   handle-style serving counters
 *                                   pay per op, and fails closed on
 *                                   degenerate measurements
 *
 * Baselines live in bench/baselines/BENCH_hotpath.json and are only
 * meaningful for Release builds on the machine that recorded them
 * (see docs/PERFORMANCE.md for the update procedure).
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cache/cache.hh"
#include "core/adaptive_cache.hh"
#include "core/sbar_cache.hh"
#include "kv/adaptive_kv_cache.hh"
#include "net/client.hh"
#include "net/loopback.hh"
#include "net/server.hh"
#include "net/service.hh"
#include "obs/metrics.hh"
#include "obs/run_meta.hh"
#include "obs/trace.hh"
#include "sim/report.hh"
#include "util/rng.hh"
#include "workloads/key_stream.hh"
#include "ycsb/ycsb.hh"

using namespace adcache;

namespace
{

/**
 * A pre-decoded access stream: addresses and write flags expanded
 * into flat chunk buffers up front so the timed loop touches no
 * generator or decoder state.
 */
struct Stream
{
    std::vector<Addr> addrs;
    std::vector<std::uint8_t> writes;
};

/**
 * Seeded mixed stream: uniform reuse over a working set, interleaved
 * with strided scan bursts (the motif mix perf_micro's random stream
 * lacks; scans are what stress victim search and the packed probe).
 */
Stream
makeStream(std::size_t n, std::uint64_t seed)
{
    Stream s;
    s.addrs.reserve(n);
    s.writes.reserve(n);
    Rng rng(seed);
    Addr scan = 0;
    while (s.addrs.size() < n) {
        if (rng.chance(0.2)) {
            // Scan burst: 64 sequential lines.
            for (unsigned i = 0; i < 64 && s.addrs.size() < n; ++i) {
                s.addrs.push_back((scan++ & 0xFFFF) * 64);
                s.writes.push_back(0);
            }
        } else {
            s.addrs.push_back(rng.below(1 << 15) * 64);
            s.writes.push_back(rng.chance(0.3) ? 1 : 0);
        }
    }
    return s;
}

/** Wall-clock seconds for one full replay of @p s through @p fn. */
template <class Fn>
double
timedReplay(const Stream &s, Fn &&fn)
{
    constexpr std::size_t kChunk = 4096;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t base = 0; base < s.addrs.size(); base += kChunk) {
        const std::size_t end =
            std::min(base + kChunk, s.addrs.size());
        for (std::size_t i = base; i < end; ++i)
            fn(s.addrs[i], s.writes[i] != 0);
    }
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(stop - start).count();
}

/** Best-of-@p reps replay time for one organisation. */
template <class Fn>
double
bestOf(unsigned reps, const Stream &s, Fn &&fn)
{
    double best = 1e300;
    for (unsigned r = 0; r < reps; ++r)
        best = std::min(best, timedReplay(s, fn));
    return best;
}

struct Measurement
{
    std::string variant;
    double nsPerAccess = 0.0;
    double accessesPerSec = 0.0;
    double scalingVs1t = 0.0; //!< kv-read-mt only; 0 = not set
    /** Batched rows: ns/op of the serial twin measured in the same
     *  run divided by this row's ns/op (> 1 = batching wins). The
     *  stat is emitted under @c speedupStat when set. */
    double speedup = 0.0;
    const char *speedupStat = nullptr;
};

Measurement
record(const std::string &variant, double seconds, std::size_t n)
{
    Measurement m;
    m.variant = variant;
    m.nsPerAccess = seconds * 1e9 / double(n);
    m.accessesPerSec = double(n) / seconds;
    return m;
}

std::vector<Measurement>
runMatrix(std::size_t accesses, unsigned reps)
{
    const Stream s = makeStream(accesses, 42);
    std::vector<Measurement> out;

    {
        CacheConfig conf;
        conf.policy = PolicyType::LRU;
        Cache cache(conf);
        out.push_back(record(
            "conventional-lru",
            bestOf(reps, s,
                   [&](Addr a, bool w) { cache.access(a, w); }),
            s.addrs.size()));
    }
    {
        CacheConfig conf;
        conf.policy = PolicyType::LFU;
        Cache cache(conf);
        out.push_back(record(
            "conventional-lfu",
            bestOf(reps, s,
                   [&](Addr a, bool w) { cache.access(a, w); }),
            s.addrs.size()));
    }
    {
        AdaptiveCache cache(
            AdaptiveConfig::dual(PolicyType::LRU, PolicyType::LFU));
        out.push_back(record(
            "adaptive-full",
            bestOf(reps, s,
                   [&](Addr a, bool w) { cache.access(a, w); }),
            s.addrs.size()));
    }
    {
        AdaptiveConfig conf =
            AdaptiveConfig::dual(PolicyType::LRU, PolicyType::LFU);
        conf.partialTagBits = 8;
        AdaptiveCache cache(conf);
        out.push_back(record(
            "adaptive-partial8",
            bestOf(reps, s,
                   [&](Addr a, bool w) { cache.access(a, w); }),
            s.addrs.size()));
    }
    {
        // The sketch-backed adaptive path: CMS-LFU eviction plus a
        // TinyLFU admission filter — every new src/adapt hot-path
        // component (sketch probes, decay, admission verdicts) in one
        // organisation.
        AdaptiveConfig conf =
            AdaptiveConfig::dual(PolicyType::LRU, PolicyType::CmsLfu);
        conf.admission = {0, 1};
        AdaptiveCache cache(conf);
        out.push_back(record(
            "adaptive-sketch",
            bestOf(reps, s,
                   [&](Addr a, bool w) { cache.access(a, w); }),
            s.addrs.size()));
    }
    {
        SbarConfig conf;
        conf.partialTagBits = 8;
        SbarCache cache(conf);
        out.push_back(record(
            "sbar-partial8",
            bestOf(reps, s,
                   [&](Addr a, bool w) { cache.access(a, w); }),
            s.addrs.size()));
    }
    {
        kv::KvConfig conf;
        conf.capacity = 16 * 1024;
        conf.numShards = 1;  // single-threaded replay; lock uncontended
        conf.numBuckets = 2048;
        kv::AdaptiveKvCache cache(conf);
        const char value[8] = "v";
        out.push_back(record(
            "kv-shard",
            bestOf(reps, s,
                   [&](Addr a, bool) {
                       cache.reference(kv::KvKey(a), value);
                   }),
            s.addrs.size()));
    }
    return out;
}

/** Number of worker threads in the kv-read-mt row (fixed, so the
 *  committed baseline is comparable across runs; the --check floor
 *  adapts to the machine's core count instead). */
constexpr unsigned kKvReadThreads = 4;

/**
 * The lock-free read path rows: a prepopulated 16-shard cache
 * driven by pre-generated Zipf(0.99) read-mostly streams (90% get /
 * 10% put), measured single-threaded and with kKvReadThreads real
 * std::threads released together off a spin barrier. Wall-clock
 * ns/op, best-of-@p reps; the same cache instance is reused across
 * reps so every rep measures the steady state.
 */
std::vector<Measurement>
runKvReadRows(std::size_t total_ops, unsigned reps)
{
    kv::KvConfig conf;
    conf.capacity = 16 * 1024;
    conf.numShards = 16;
    conf.numBuckets = 256;
    kv::AdaptiveKvCache cache(conf);

    // The shared workload shape: every thread draws the same full
    // Zipf distribution from its own salted seed (forClient,
    // non-disjoint) — the thread-key-partitioning helper the kv
    // drivers share instead of hand-rolled "seed + thread" copies.
    KeyStreamSpec base;
    base.pattern = KeyPattern::Zipf;
    base.keySpace = 1 << 17;
    base.skew = 0.99;
    base.seed = 71;
    {
        KeyStreamSpec warm = base;
        warm.seed = 7;
        KeyStream stream(warm);
        for (std::uint64_t i = 0; i < 2 * conf.capacity; ++i)
            cache.put(stream.next(), "v");
    }

    // Pre-generated per-thread programs: no sampler in the timed
    // loop, mirroring the decoded streams of the cache matrix.
    const std::size_t per_thread = total_ops / kKvReadThreads;
    std::vector<std::vector<kv::KvKey>> keys(kKvReadThreads);
    std::vector<std::vector<std::uint8_t>> puts(kKvReadThreads);
    for (unsigned t = 0; t < kKvReadThreads; ++t) {
        KeyStream stream(base.forClient(t, kKvReadThreads));
        keys[t].reserve(per_thread);
        puts[t].reserve(per_thread);
        for (std::size_t i = 0; i < per_thread; ++i) {
            keys[t].push_back(stream.next());
            puts[t].push_back(i % 10 == 0 ? 1 : 0);
        }
    }

    auto runThread = [&cache](const std::vector<kv::KvKey> &ks,
                              const std::vector<std::uint8_t> &ps) {
        for (std::size_t i = 0; i < ks.size(); ++i) {
            if (ps[i])
                cache.put(ks[i], "v");
            else
                cache.get(ks[i]);
        }
    };

    auto timedRound = [&](unsigned threads) {
        if (threads == 1) {
            const auto start = std::chrono::steady_clock::now();
            for (unsigned t = 0; t < kKvReadThreads; ++t)
                runThread(keys[t], puts[t]);
            return std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                .count();
        }
        std::atomic<unsigned> arrived{0};
        std::atomic<bool> go{false};
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back([&, t] {
                arrived.fetch_add(1);
                while (!go.load(std::memory_order_acquire)) {
                }
                runThread(keys[t], puts[t]);
            });
        while (arrived.load() < threads) {
        }
        const auto start = std::chrono::steady_clock::now();
        go.store(true, std::memory_order_release);
        for (auto &th : pool)
            th.join();
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };

    const std::size_t n = per_thread * kKvReadThreads;
    std::vector<Measurement> out;
    double best_1t = 1e300, best_mt = 1e300;
    for (unsigned r = 0; r < reps; ++r)
        best_1t = std::min(best_1t, timedRound(1));
    for (unsigned r = 0; r < reps; ++r)
        best_mt = std::min(best_mt, timedRound(kKvReadThreads));

    out.push_back(record("kv-read-1t", best_1t, n));
    out.push_back(record("kv-read-mt", best_mt, n));
    out.back().scalingVs1t = best_1t / best_mt;
    return out;
}

/** Keys getMany/MGet rows batch per call. */
constexpr std::size_t kBatchDepth = 16;

/**
 * The shard-grouped multi-get row: the kv-read workload shape (same
 * Zipf(0.99) key population) driven single-threaded as getMany
 * batches of kBatchDepth, with the serial get loop over the
 * identical key program measured in the same run — the
 * speedup_vs_serial stat and the --check floor come from that
 * in-run pair, so they hold on any machine. Four shards, not the
 * kv-read rows' sixteen: the batch path amortises per-group work
 * (epoch guard, timer, possible mutex window), so its win scales
 * with keys-per-group — a depth-16 batch over 16 shards degenerates
 * to one key per group and only pays the grouping overhead.
 */
std::vector<Measurement>
runKvMgetRow(std::size_t total_ops, unsigned reps)
{
    kv::KvConfig conf;
    conf.capacity = 16 * 1024;
    conf.numShards = 4;
    conf.numBuckets = 1024;
    kv::AdaptiveKvCache cache(conf);

    KeyStreamSpec base;
    base.pattern = KeyPattern::Zipf;
    base.keySpace = 1 << 17;
    base.skew = 0.99;
    base.seed = 71;
    {
        KeyStreamSpec warm = base;
        warm.seed = 7;
        KeyStream stream(warm);
        for (std::uint64_t i = 0; i < 2 * conf.capacity; ++i)
            cache.put(stream.next(), "v");
    }

    const std::size_t n =
        (total_ops / kBatchDepth) * kBatchDepth;
    std::vector<kv::KvKey> keys;
    keys.reserve(n);
    {
        KeyStream stream(base.forClient(1, 2));
        for (std::size_t i = 0; i < n; ++i)
            keys.push_back(stream.next());
    }

    // Interleave the two sides of the pair (serial, batched,
    // serial, batched …) so both minima sample the same machine
    // weather; back-to-back phases let a host slow spell land
    // entirely on one side and skew the ratio.
    double best_serial = 1e300, best_batched = 1e300;
    std::vector<std::optional<std::string>> out(kBatchDepth);
    for (unsigned r = 0; r < reps; ++r) {
        auto start = std::chrono::steady_clock::now();
        for (const kv::KvKey key : keys)
            cache.get(key);
        best_serial = std::min(
            best_serial,
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count());
        start = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < n; i += kBatchDepth)
            cache.getMany(
                std::span<const kv::KvKey>(keys.data() + i,
                                           kBatchDepth),
                out.data());
        best_batched = std::min(
            best_batched,
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count());
    }

    std::vector<Measurement> rows;
    rows.push_back(record("kv-mget", best_batched, n));
    rows.back().speedup = best_serial / best_batched;
    rows.back().speedupStat = "speedup_vs_serial";
    return rows;
}

/**
 * The pipelined serving rows: a read-through KvService driven with
 * MGet batches of kBatchDepth keys per round trip, against the
 * one-get-per-round-trip loop over the identical key program
 * measured in the same run.
 *
 * Two transports, two rows, two very different honest floors:
 *
 * - "serve-pipeline" (TCP sockets, in-process server): a depth-1
 *   round trip pays two syscalls + a poll wakeup on each side, all
 *   of which depth-16 pipelining amortises — measured ~5-7x here,
 *   gated at >= 2x. This is the headline batching win.
 * - "serve-pipeline-loopback": no syscalls, so the only amortisable
 *   work is framing/dispatch (~200ns/round-trip) while the per-key
 *   work — probe, LRU/LFU promotion, value copy, per-entry
 *   encode/decode — dominates and is paid on both sides. Profiling
 *   puts the honest ceiling near 1.5x; the floor guards the
 *   contrast at 1.15x rather than pretending syscall-scale wins
 *   exist in a syscall-free transport.
 *
 * The key program draws uniformly from a warm set half the cache's
 * capacity, so the run is hit-served: these rows gate *transport*
 * amortisation, and a miss-heavy program would just measure the
 * read-through fill path — identical on both sides of the pair —
 * and dilute the contrast toward 1x. (The fill path has its own
 * rows: kv-shard for the locked reference cost, kv-slo for serving
 * tail latency.)
 */
std::vector<Measurement>
runServePipelineRows(std::size_t total_ops, unsigned reps)
{
    net::KvServiceConfig sc;
    sc.readThrough = true;
    sc.loaderValues = ValueSpec{64, 64};
    // Compact cache shape (entries + bucket arrays live in L2):
    // the pair being contrasted is the per-round-trip transport
    // work, and a DRAM-bound probe — identical on both sides —
    // would only dilute the ratio toward 1x.
    sc.cache.capacity = 8 * 1024;
    sc.cache.numShards = 4;
    sc.cache.numBuckets = 512;
    net::KvService service(sc);

    const std::uint64_t kWarmKeys =
        sc.cache.capacity / 2; // comfortably admitted, all resident

    const std::size_t n =
        (total_ops / kBatchDepth) * kBatchDepth;
    std::vector<std::uint64_t> keys;
    keys.reserve(n);
    {
        KeyStreamSpec spec;
        spec.pattern = KeyPattern::Uniform;
        spec.keySpace = kWarmKeys;
        spec.seed = 71;
        KeyStream stream(spec);
        for (std::uint64_t rank = 0; rank < kWarmKeys; ++rank) {
            const std::uint64_t key = stream.keyAt(rank);
            service.cache().put(key,
                                valueFor(key, sc.loaderValues));
        }
        for (std::size_t i = 0; i < n; ++i)
            keys.push_back(stream.next());
    }
    // Pre-chunked batches: the timed loop issues round trips only.
    std::vector<std::vector<std::uint64_t>> batches;
    batches.reserve(n / kBatchDepth);
    for (std::size_t i = 0; i < n; i += kBatchDepth)
        batches.emplace_back(keys.begin() + long(i),
                             keys.begin() + long(i + kBatchDepth));

    std::vector<Measurement> rows;

    {
        net::LoopbackConnection conn(service);
        // Interleaved pair: both minima sample the same machine
        // weather (see runKvMgetRow).
        double best_p1 = 1e300, best_p16 = 1e300;
        for (unsigned r = 0; r < reps; ++r) {
            auto start = std::chrono::steady_clock::now();
            for (const std::uint64_t key : keys)
                conn.get(key);
            best_p1 = std::min(
                best_p1,
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count());
            start = std::chrono::steady_clock::now();
            for (const auto &batch : batches)
                conn.mget(batch);
            best_p16 = std::min(
                best_p16,
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count());
        }
        rows.push_back(
            record("serve-pipeline-loopback", best_p16, n));
        rows.back().speedup = best_p1 / best_p16;
        rows.back().speedupStat = "speedup_vs_p1";
    }

    {
        // In-process TCP server: ephemeral port, one worker. The
        // socket key program is a prefix — depth-1 socket round
        // trips are ~100x slower than loopback ones, and the ratio
        // converges long before the full program would.
        net::KvServerConfig server_conf;
        net::KvServer server(service, server_conf);
        if (!server.start()) {
            std::fprintf(stderr, "perf_regress: serve-pipeline "
                                 "server failed to start\n");
            return rows;
        }
        net::KvClient client;
        if (!client.connect("127.0.0.1", server.port())) {
            std::fprintf(stderr, "perf_regress: serve-pipeline "
                                 "client failed to connect\n");
            server.stop();
            return rows;
        }
        const std::size_t sock_n = std::min<std::size_t>(
            n, 64 * std::size_t(1024));
        const std::size_t sock_batches = sock_n / kBatchDepth;
        double best_p1 = 1e300, best_p16 = 1e300;
        for (unsigned r = 0; r < reps; ++r) {
            auto start = std::chrono::steady_clock::now();
            for (std::size_t i = 0; i < sock_n; ++i)
                client.get(keys[i]);
            best_p1 = std::min(
                best_p1,
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count());
            start = std::chrono::steady_clock::now();
            for (std::size_t i = 0; i < sock_batches; ++i)
                client.mget(batches[i]);
            best_p16 = std::min(
                best_p16,
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count());
        }
        client.close();
        server.stop();
        rows.push_back(record("serve-pipeline", best_p16, sock_n));
        rows.back().speedup = best_p1 / best_p16;
        rows.back().speedupStat = "speedup_vs_p1";
    }
    return rows;
}

ReportGrid
toGrid(const std::vector<Measurement> &ms, std::size_t accesses,
       unsigned reps)
{
    ReportGrid grid;
    grid.experiment = "BENCH_hotpath";
    grid.variantHeader = "organisation";
    grid.addMeta("accesses", std::to_string(accesses));
    grid.addMeta("reps", std::to_string(reps));
#ifdef NDEBUG
    grid.addMeta("build", "release");
#else
    grid.addMeta("build", "debug");
#endif
    grid.addMeta("kv_read_mt_threads",
                 std::to_string(kKvReadThreads));
    grid.addMeta("hardware_concurrency",
                 std::to_string(std::thread::hardware_concurrency()));
    for (const auto &m : ms) {
        ReportRow &row = grid.add("hotpath", m.variant);
        // ns_per_access must stay the FIRST stat of every variant:
        // parseBaseline pairs each "variant" with the next
        // "ns_per_access" occurrence.
        row.stats.value("ns_per_access", m.nsPerAccess);
        row.stats.value("accesses_per_sec", m.accessesPerSec);
        if (m.scalingVs1t > 0.0)
            row.stats.value("scaling_vs_1t", m.scalingVs1t);
        if (m.speedupStat && m.speedup > 0.0)
            row.stats.value(m.speedupStat, m.speedup);
    }
    return grid;
}

/**
 * Pull "ns_per_access" per organisation out of a BENCH_hotpath.json
 * document (our own renderJson output: one row object per
 * organisation, "variant" preceding its "stats"). Returns false on
 * structural surprises so --check fails closed.
 */
bool
parseBaseline(const std::string &json,
              std::vector<Measurement> &out)
{
    std::size_t pos = 0;
    while (true) {
        const std::size_t v = json.find("\"variant\": \"", pos);
        if (v == std::string::npos)
            break;
        const std::size_t name_begin = v + std::strlen("\"variant\": \"");
        const std::size_t name_end = json.find('"', name_begin);
        if (name_end == std::string::npos)
            return false;
        const std::size_t stat =
            json.find("\"ns_per_access\": ", name_end);
        if (stat == std::string::npos)
            return false;
        Measurement m;
        m.variant = json.substr(name_begin, name_end - name_begin);
        m.nsPerAccess = std::strtod(
            json.c_str() + stat + std::strlen("\"ns_per_access\": "),
            nullptr);
        if (m.nsPerAccess <= 0.0)
            return false;
        out.push_back(m);
        pos = stat;
    }
    return !out.empty();
}

/** @return process exit code. */
int
check(const std::vector<Measurement> &measured,
      const std::string &baseline_path)
{
    std::ifstream in(baseline_path);
    if (!in) {
        std::fprintf(stderr, "perf_regress: cannot read baseline %s\n",
                     baseline_path.c_str());
        return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::vector<Measurement> base;
    if (!parseBaseline(text.str(), base)) {
        std::fprintf(stderr,
                     "perf_regress: malformed baseline %s\n",
                     baseline_path.c_str());
        return 1;
    }

    constexpr double kTolerance = 1.10;  // fail beyond +10% ns/access
    int failures = 0;
    for (const auto &m : measured) {
        const Measurement *b = nullptr;
        for (const auto &candidate : base)
            if (candidate.variant == m.variant)
                b = &candidate;
        if (!b) {
            std::fprintf(stderr,
                         "perf_regress: %-18s no baseline entry\n",
                         m.variant.c_str());
            ++failures;
            continue;
        }
        const double ratio = m.nsPerAccess / b->nsPerAccess;
        const bool bad = ratio > kTolerance;
        std::fprintf(stderr,
                     "perf_regress: %-18s %8.2f ns vs baseline "
                     "%8.2f ns (%+.1f%%)%s\n",
                     m.variant.c_str(), m.nsPerAccess, b->nsPerAccess,
                     100.0 * (ratio - 1.0), bad ? "  REGRESSION" : "");
        if (bad)
            ++failures;
    }

    // Multi-threaded read scaling gate: the kv-read rows share one
    // operation count, so throughput scaling is the ns/op ratio.
    // The floor adapts to this machine's core count — a 4-thread
    // 2.5x demand is physics on >= 4 cores and fiction on 1 — and
    // the rows are required, so a build that silently dropped them
    // fails closed.
    double kv_1t = 0.0, kv_mt = 0.0;
    for (const auto &m : measured) {
        if (m.variant == "kv-read-1t")
            kv_1t = m.nsPerAccess;
        else if (m.variant == "kv-read-mt")
            kv_mt = m.nsPerAccess;
    }
    if (kv_1t <= 0.0 || kv_mt <= 0.0) {
        std::fprintf(stderr,
                     "perf_regress: kv-read scaling rows missing "
                     "from the measurement — failing closed\n");
        ++failures;
    } else {
        const unsigned hw = std::thread::hardware_concurrency();
        // >= 4 cores: demand real parallel speedup. 2-3 cores:
        // partial. <= 1 core: threads time-slice; only bound the
        // synchronization overhead of the lock-free path.
        const double floor =
            hw >= 4 ? 2.5 : (hw >= 2 ? 1.2 : 0.40);
        const double scaling = kv_1t / kv_mt;
        const bool bad = scaling < floor;
        std::fprintf(stderr,
                     "perf_regress: kv-read-mt scaling %.2fx vs 1t "
                     "(floor %.2fx at hw=%u)%s\n",
                     scaling, floor, hw,
                     bad ? "  REGRESSION" : "");
        if (bad)
            ++failures;
    }

    // Batched hot-path gates. Like the scaling gate these compare
    // two measurements from THIS run (batched vs its serial twin),
    // so they hold on any machine; the per-row envelope above still
    // pins absolute ns/op to the committed baseline. Required rows:
    // a build that silently dropped them fails closed.
    const Measurement *mget = nullptr, *pipe = nullptr,
                      *pipe_loop = nullptr;
    for (const auto &m : measured) {
        if (m.variant == "kv-mget")
            mget = &m;
        else if (m.variant == "serve-pipeline")
            pipe = &m;
        else if (m.variant == "serve-pipeline-loopback")
            pipe_loop = &m;
    }
    if (!mget || !(mget->speedup > 0.0)) {
        std::fprintf(stderr,
                     "perf_regress: kv-mget row missing from the "
                     "measurement — failing closed\n");
        ++failures;
    } else {
        // Single-threaded, hit-dominated, uncontended: getMany's
        // structural win (one mutex window per shard group on the
        // slow path) is not exercised here, and what it saves per
        // key (epoch guard amortisation) roughly cancels against
        // the grouping bookkeeping. The floor demands parity within
        // the run-to-run noise envelope, not a win.
        constexpr double kMgetFloor = 0.90;
        const bool bad = mget->speedup < kMgetFloor;
        std::fprintf(stderr,
                     "perf_regress: kv-mget %.2fx vs serial gets "
                     "(floor %.2fx)%s\n",
                     mget->speedup, kMgetFloor,
                     bad ? "  REGRESSION" : "");
        if (bad)
            ++failures;
    }
    if (!pipe || !(pipe->speedup > 0.0)) {
        std::fprintf(stderr,
                     "perf_regress: serve-pipeline row missing from "
                     "the measurement — failing closed\n");
        ++failures;
    } else {
        // One MGet round trip answers kBatchDepth keys and pays the
        // per-round-trip syscalls once: pipelining must at least
        // halve the per-key cost (measured ~5-7x; the floor leaves
        // room for scheduler weather on shared hosts).
        constexpr double kPipeFloor = 2.0;
        const bool bad = pipe->speedup < kPipeFloor;
        std::fprintf(stderr,
                     "perf_regress: serve-pipeline %.2fx vs depth-1 "
                     "round trips (floor %.2fx)%s\n",
                     pipe->speedup, kPipeFloor,
                     bad ? "  REGRESSION" : "");
        if (bad)
            ++failures;
    }
    if (!pipe_loop || !(pipe_loop->speedup > 0.0)) {
        std::fprintf(stderr,
                     "perf_regress: serve-pipeline-loopback row "
                     "missing from the measurement — failing "
                     "closed\n");
        ++failures;
    } else {
        // Syscall-free transport: only framing/dispatch amortises,
        // per-key work dominates both sides (see the row comment).
        // The floor guards the contrast, not a syscall-scale win.
        constexpr double kPipeLoopFloor = 1.15;
        const bool bad = pipe_loop->speedup < kPipeLoopFloor;
        std::fprintf(stderr,
                     "perf_regress: serve-pipeline-loopback %.2fx "
                     "vs depth-1 round trips (floor %.2fx)%s\n",
                     pipe_loop->speedup, kPipeLoopFloor,
                     bad ? "  REGRESSION" : "");
        if (bad)
            ++failures;
    }
    return failures ? 1 : 0;
}

/**
 * Tracing-disabled overhead gate (see file comment). The disabled
 * cost of the hooks is gate_ns x gates-per-access; the gate count is
 * an upper bound (one diff-miss-block gate per access with at least
 * one shadow miss, one eviction-path gate per real eviction).
 * @return process exit code.
 */
int
traceOverheadCheck(const std::vector<Measurement> &measured,
                   std::size_t accesses)
{
    if (!obs::kTraceCompiled) {
        std::fprintf(stderr,
                     "perf_regress: trace-overhead: tracing compiled "
                     "out (ADCACHE_TRACE=OFF), overhead is zero by "
                     "construction\n");
        return 0;
    }

    const double gate_ns = obs::measureGateCostNs();

    double ns_per_access = 0.0;
    for (const auto &m : measured)
        if (m.variant == "adaptive-full")
            ns_per_access = m.nsPerAccess;
    if (!(ns_per_access > 0.0) || !(gate_ns >= 0.0)) {
        std::fprintf(stderr,
                     "perf_regress: trace-overhead: degenerate "
                     "measurement (ns/access %.3f, gate %.3f ns) — "
                     "failing closed\n",
                     ns_per_access, gate_ns);
        return 1;
    }

    // Replay the matrix stream untimed and count how often the
    // instrumented (off-hit-path) blocks run.
    const Stream s = makeStream(accesses, 42);
    AdaptiveCache cache(
        AdaptiveConfig::dual(PolicyType::LRU, PolicyType::LFU));
    for (std::size_t i = 0; i < s.addrs.size(); ++i)
        cache.access(s.addrs[i], s.writes[i] != 0);
    const CacheStats &st = cache.stats();
    if (st.accesses == 0) {
        std::fprintf(stderr, "perf_regress: trace-overhead: empty "
                             "replay — failing closed\n");
        return 1;
    }
    // One gate fires per access whose shadow block ran (at most one
    // check covers the diff-miss event and every shadow evict; an
    // access needs >= 1 shadow miss to reach it, so the sum over
    // components bounds that count from above) plus one per real
    // eviction. Hits test nothing.
    std::uint64_t shadow_misses = 0;
    for (unsigned k = 0; k < cache.numPolicies(); ++k)
        shadow_misses += cache.shadowMisses(k);
    const std::uint64_t gates =
        std::min<std::uint64_t>(st.accesses, shadow_misses) +
        st.evictions;
    const double gates_per_access =
        double(gates) / double(st.accesses);

    const double overhead_ns = gate_ns * gates_per_access;
    const double fraction = overhead_ns / ns_per_access;
    std::fprintf(stderr,
                 "perf_regress: trace-overhead: gate %.4f ns x %.3f "
                 "gates/access = %.4f ns (%.3f%% of %.2f ns/access, "
                 "budget 1%%)\n",
                 gate_ns, gates_per_access, overhead_ns,
                 100.0 * fraction, ns_per_access);
    if (!(fraction < 0.01)) {
        std::fprintf(stderr, "perf_regress: trace-overhead: "
                             "REGRESSION — disabled tracing costs "
                             ">= 1%%\n");
        return 1;
    }
    return 0;
}

/**
 * Live-metrics overhead gate (see file comment). The kv read hot
 * path registers into the MetricsRegistry via scrape-time collectors
 * only, so its enabled cost is the scrape + render a 1 Hz exporter
 * pays on the serving core: measure that against a registry shaped
 * like a live kv_server --metrics-port (served 16-shard cache, trace
 * plane, handle families with populated thread shards) and demand it
 * stay under 1% of a core-second — exactly the throughput fraction a
 * kv-read-1t loop sharing that core would lose. The handle path
 * (transport/YCSB counters, off the kv read path but on the serving
 * one) is bounded separately: one attached Counter::inc must stay
 * within kCounterBudgetNs. Degenerate measurements — missing
 * kv-read-1t row, an exposition that lost the kv families, negative
 * costs — fail closed.
 * @return process exit code.
 */
int
metricsOverheadCheck(const std::vector<Measurement> &measured)
{
    double ns_per_access = 0.0;
    for (const auto &m : measured)
        if (m.variant == "kv-read-1t")
            ns_per_access = m.nsPerAccess;
    if (!(ns_per_access > 0.0)) {
        std::fprintf(stderr,
                     "perf_regress: metrics-overhead: kv-read-1t row "
                     "missing from the measurement — failing "
                     "closed\n");
        return 1;
    }

    obs::MetricsRegistry reg;
    const double counter_ns = obs::measureCounterCostNs(reg);
    // The handle budget is a production-cost bound; sanitizer
    // instrumentation multiplies every atomic by an order of
    // magnitude, so under tsan/asan only the sign check applies (the
    // ratio-based scrape gate below still runs at full strength).
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
    constexpr bool enforce_budget = false;
#elif defined(__has_feature)
    constexpr bool enforce_budget = !(__has_feature(thread_sanitizer) ||
                                      __has_feature(address_sanitizer));
#else
    constexpr bool enforce_budget = true;
#endif
    constexpr double kCounterBudgetNs = 25.0;
    if (!(counter_ns >= 0.0) ||
        (enforce_budget && counter_ns > kCounterBudgetNs)) {
        std::fprintf(stderr,
                     "perf_regress: metrics-overhead: Counter::inc "
                     "%.3f ns exceeds the %.0f ns handle budget — "
                     "failing closed\n",
                     counter_ns, kCounterBudgetNs);
        return 1;
    }

    // Shape the registry like a live kv_server --metrics-port: a
    // served cache in the kv-read rows' 16-shard configuration, the
    // trace plane, and a driver-style histogram with non-empty
    // thread shards, with enough traffic behind it that the scrape
    // merges and renders real values.
    net::KvServiceConfig sc;
    sc.cache.capacity = 16 * 1024;
    sc.cache.numShards = 16;
    sc.cache.numBuckets = 256;
    net::KvService service(sc);
    service.registerMetrics(reg);
    obs::registerTraceMetrics(reg);
    obs::HistogramHandle lat =
        reg.histogram("bench_scrape_lat_ns", "scrape-cost scratch");
    {
        net::LoopbackConnection conn(service);
        for (std::uint64_t k = 0; k < 4096; ++k) {
            conn.put(k, "v");
            conn.get(k / 2);
            lat.observe(1000 + k);
        }
    }

    constexpr unsigned kScrapeReps = 7;
    double scrape_ns = 1e18;
    std::size_t exposition_bytes = 0;
    for (unsigned rep = 0; rep < kScrapeReps; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        const obs::MetricsSnapshot snap = reg.scrape();
        const std::string text = obs::renderPrometheus(snap);
        const double ns =
            std::chrono::duration<double, std::nano>(
                std::chrono::steady_clock::now() - start)
                .count();
        scrape_ns = std::min(scrape_ns, ns);
        exposition_bytes = text.size();
        if (text.find("adcache_kv_references_total") ==
                std::string::npos ||
            text.find("adcache_net_requests_total") ==
                std::string::npos) {
            std::fprintf(stderr,
                         "perf_regress: metrics-overhead: exposition "
                         "lost the kv/net families — failing "
                         "closed\n");
            return 1;
        }
    }
    if (!(scrape_ns > 0.0)) {
        std::fprintf(stderr,
                     "perf_regress: metrics-overhead: degenerate "
                     "scrape measurement (%.0f ns) — failing "
                     "closed\n",
                     scrape_ns);
        return 1;
    }

    // One scrape per second steals scrape_ns of every core-second,
    // so the hot path sharing that core loses scrape_ns/1e9 of its
    // throughput; per kv-read-1t op that is the same fraction of its
    // ns/access.
    const double fraction = scrape_ns / 1e9;
    const double per_op_ns = fraction * ns_per_access;
    std::fprintf(stderr,
                 "perf_regress: metrics-overhead: inc %.3f ns "
                 "(budget %.0f ns); scrape+render %.0f ns / %zu B "
                 "at 1 Hz = %.6f ns per kv-read-1t op (%.4f%% of "
                 "%.2f ns/access, budget 1%%)\n",
                 counter_ns, kCounterBudgetNs, scrape_ns,
                 exposition_bytes, per_op_ns, 100.0 * fraction,
                 ns_per_access);
    if (!(fraction < 0.01)) {
        std::fprintf(stderr, "perf_regress: metrics-overhead: "
                             "REGRESSION — a 1 Hz scrape costs >= 1%% "
                             "of the kv read hot path\n");
        return 1;
    }
    return 0;
}

/**
 * Serving SLO gate — fail-closed by construction. Serves a
 * read-heavy YCSB B mix through the in-process loopback transport
 * and demands the observed read p99 stay within the budget committed
 * in the baseline's "kv-slo" row (carried in its ns_per_access stat,
 * which parseBaseline requires to be the row's first stat). Missing
 * baseline, missing budget row, or a degenerate run all fail; with
 * @p slowdown_us nonzero the backend-slowdown scenario is armed from
 * the first op, which is the standing demonstration that a stalled
 * backend actually trips the gate.
 * @return process exit code.
 */
int
sloCheck(const std::string &baseline_path,
         std::uint32_t slowdown_us)
{
    std::ifstream in(baseline_path);
    if (!in) {
        std::fprintf(stderr,
                     "perf_regress: slo: cannot read baseline %s\n",
                     baseline_path.c_str());
        return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::vector<Measurement> base;
    if (!parseBaseline(text.str(), base)) {
        std::fprintf(stderr,
                     "perf_regress: slo: malformed baseline %s\n",
                     baseline_path.c_str());
        return 1;
    }
    double budget_ns = 0.0;
    for (const auto &b : base)
        if (b.variant == "kv-slo")
            budget_ns = b.nsPerAccess;
    if (!(budget_ns > 0.0)) {
        std::fprintf(stderr,
                     "perf_regress: slo: no kv-slo budget row in %s "
                     "— failing closed\n",
                     baseline_path.c_str());
        return 1;
    }

    net::KvServiceConfig sc;
    sc.readThrough = true;
    sc.loaderValues = ValueSpec{64, 64};
    net::KvService service(sc);

    ycsb::YcsbConfig yc;
    yc.workload = 'b';
    yc.records = 1 << 18;
    yc.opsPerClient = 40'000;
    yc.clients = 2;
    yc.seed = 9;
    if (slowdown_us) {
        yc.scenario = ycsb::Scenario::BackendSlowdown;
        yc.slowdownUs = slowdown_us;
        yc.scenarioAt = 0.0; // armed from the first op
    }
    ycsb::YcsbDriver driver(yc, &service, [&service](unsigned) {
        return ycsb::makeLoopbackConnection(service);
    });
    const ycsb::YcsbResult r = driver.run();

    const double p99 = r.readP99Ns();
    if (!(p99 > 0.0) || r.runOps == 0) {
        std::fprintf(stderr,
                     "perf_regress: slo: degenerate run (p99 %.0f, "
                     "ops %llu) — failing closed\n",
                     p99,
                     static_cast<unsigned long long>(r.runOps));
        return 1;
    }
    const bool bad = p99 > budget_ns;
    std::fprintf(stderr,
                 "perf_regress: slo: read p99 %.0f ns vs budget "
                 "%.0f ns over %llu ops (%.0f ops/s%s)%s\n",
                 p99, budget_ns,
                 static_cast<unsigned long long>(r.runOps),
                 r.opsPerSec(),
                 slowdown_us ? ", backend slowdown armed" : "",
                 bad ? "  SLO VIOLATION" : "");
    return bad ? 1 : 0;
}

/** Smoke self-check: the emitted JSON carries every organisation. */
int
validateJson(const std::string &json,
             const std::vector<Measurement> &ms)
{
    for (const auto &m : ms) {
        if (json.find("\"" + m.variant + "\"") == std::string::npos ||
            json.find("ns_per_access") == std::string::npos) {
            std::fprintf(stderr,
                         "perf_regress: JSON emission missing %s\n",
                         m.variant.c_str());
            return 1;
        }
    }
    std::vector<Measurement> roundtrip;
    if (!parseBaseline(json, roundtrip) ||
        roundtrip.size() != ms.size()) {
        std::fprintf(stderr,
                     "perf_regress: JSON does not round-trip through "
                     "the baseline parser\n");
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t accesses = 4'000'000;
    unsigned reps = 3;
    bool smoke = false;
    bool trace_overhead = false;
    bool metrics_overhead = false;
    std::string baseline_path;
    std::string slo_path;
    std::uint32_t slo_slowdown_us = 0;
    std::string out_path = "BENCH_hotpath.json";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
            accesses = 50'000;
            reps = 1;
        } else if (arg == "--trace-overhead") {
            trace_overhead = true;
        } else if (arg == "--metrics-overhead") {
            metrics_overhead = true;
        } else if (arg == "--check" && i + 1 < argc) {
            baseline_path = argv[++i];
        } else if (arg == "--slo" && i + 1 < argc) {
            slo_path = argv[++i];
        } else if (arg == "--slo-slowdown-us" && i + 1 < argc) {
            slo_slowdown_us = std::uint32_t(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--accesses" && i + 1 < argc) {
            accesses = std::strtoull(argv[++i], nullptr, 10);
        } else {
            std::fprintf(stderr,
                         "usage: perf_regress [--smoke] "
                         "[--trace-overhead] [--metrics-overhead] "
                         "[--check <baseline.json>] "
                         "[--slo <baseline.json>] "
                         "[--slo-slowdown-us N] [--out <path>] "
                         "[--accesses N]\n");
            return 2;
        }
    }

#ifndef NDEBUG
    std::fprintf(stderr,
                 "perf_regress: *** UNOPTIMIZED BUILD *** numbers are "
                 "meaningless for baselines; build Release "
                 "(cmake --preset release)\n");
    if (!baseline_path.empty() || !slo_path.empty()) {
        std::fprintf(stderr,
                     "perf_regress: refusing --check/--slo in a "
                     "debug build\n");
        return 1;
    }
#endif

    // The SLO gate is self-contained: it does not need the hot-path
    // matrix, so it runs (and exits) on its own.
    if (!slo_path.empty())
        return sloCheck(slo_path, slo_slowdown_us);

    auto measured = runMatrix(accesses, reps);
    {
        // The kv read rows use a quarter of the matrix budget: two
        // timed configurations x reps over a prepopulated cache.
        const auto kv_rows = runKvReadRows(accesses / 4, reps);
        measured.insert(measured.end(), kv_rows.begin(),
                        kv_rows.end());
        // The batched rows each time two configurations too (the
        // batch and its serial twin); smaller budgets keep the whole
        // run's wall clock in the same ballpark.
        const auto mget_rows = runKvMgetRow(accesses / 8, reps);
        measured.insert(measured.end(), mget_rows.begin(),
                        mget_rows.end());
        const auto serve_rows =
            runServePipelineRows(accesses / 16, reps);
        measured.insert(measured.end(), serve_rows.begin(),
                        serve_rows.end());
    }
    ReportGrid grid = toGrid(measured, accesses, reps);
    obs::appendRunMeta(grid); // artifact identifies its build
    const std::string json = renderJson(grid);

    {
        std::ofstream out(out_path);
        if (!out) {
            std::fprintf(stderr,
                         "perf_regress: cannot write %s\n",
                         out_path.c_str());
            return 1;
        }
        out << json;
    }
    for (const auto &m : measured)
        std::fprintf(stderr, "perf_regress: %-18s %10.2f ns/access  "
                             "%12.0f accesses/sec\n",
                     m.variant.c_str(), m.nsPerAccess,
                     m.accessesPerSec);
    std::fprintf(stderr, "perf_regress: wrote %s\n", out_path.c_str());

    int rc = 0;
    if (trace_overhead)
        rc = traceOverheadCheck(measured, accesses);
    if (!rc && metrics_overhead)
        rc = metricsOverheadCheck(measured);
    if (!rc && smoke)
        rc = validateJson(json, measured);
    if (!rc && !baseline_path.empty())
        rc = check(measured, baseline_path);
    return rc;
}
