/**
 * @file
 * Ablation: partial-tag hash function. Sec. 3.1 suggests "the
 * low-order bits of the tag or a combination (e.g., XOR of bit
 * groups)". This sweep compares the two at every width, plus the
 * adaptive fallback-eviction rate each induces (read back from the
 * registered "l2.fallback_evictions" statistic).
 */

#include "common.hh"

using namespace adcache;

int
main()
{
    const std::vector<unsigned> widths = {4u, 6u, 8u, 10u, 12u};

    bench::Experiment e;
    e.title = "Ablation - partial-tag hash (low bits vs XOR)";
    e.benchmarks = primaryBenchmarks();
    for (unsigned bits : widths) {
        for (bool xor_fold : {false, true}) {
            AdaptiveConfig c =
                AdaptiveConfig::dual(PolicyType::LRU, PolicyType::LFU);
            c.partialTagBits = bits;
            c.xorFoldTags = xor_fold;
            e.variants.push_back(L2Spec::fromAdaptive(c));
            e.variantNames.push_back((xor_fold ? "xor" : "low") +
                                     std::string("-") +
                                     std::to_string(bits) + "b");
        }
    }
    const auto rows = bench::runAndReport(e);
    if (!bench::textMode())
        return 0;

    // Aggregate per variant: average MPKI plus arbitrary-victim
    // fallbacks per million L2 accesses.
    const auto avg_mpki = averageOf(rows, metricL2Mpki);
    std::vector<double> fb_per_ma(e.variants.size(), 0.0);
    for (std::size_t v = 0; v < e.variants.size(); ++v) {
        std::uint64_t fallbacks = 0, accesses = 0;
        for (const auto &row : rows) {
            const auto &res = row.results[v];
            fallbacks += static_cast<std::uint64_t>(
                res.stats.numeric("l2.fallback_evictions"));
            accesses += res.l2.accesses;
        }
        fb_per_ma[v] = accesses ? 1e6 * double(fallbacks) /
                                      double(accesses)
                                : 0.0;
    }

    TextTable table({"bits", "low MPKI", "low fb/Ma", "xor MPKI",
                     "xor fb/Ma"});
    for (std::size_t i = 0; i < widths.size(); ++i) {
        const std::size_t low = 2 * i, xored = 2 * i + 1;
        table.addRow({std::to_string(widths[i]),
                      TextTable::num(avg_mpki[low], 2),
                      TextTable::num(fb_per_ma[low], 1),
                      TextTable::num(avg_mpki[xored], 2),
                      TextTable::num(fb_per_ma[xored], 1)});
    }
    table.print();
    std::printf("(fb/Ma = arbitrary-victim fallbacks per million L2 "
                "accesses, the Sec. 3.1 aliasing escape hatch)\n");
    return 0;
}
