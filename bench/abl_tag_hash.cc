/**
 * @file
 * Ablation: partial-tag hash function. Sec. 3.1 suggests "the
 * low-order bits of the tag or a combination (e.g., XOR of bit
 * groups)". This sweep compares the two at every width, plus the
 * adaptive fallback-eviction rate each induces.
 */

#include "common.hh"
#include "core/adaptive_cache.hh"

using namespace adcache;

namespace
{

struct HashResult
{
    double avgMpki = 0;
    double fallbacksPerMegaAccess = 0;
};

HashResult
runHash(unsigned bits, bool xor_fold)
{
    HashResult out;
    std::uint64_t fallbacks = 0, accesses = 0;
    RunningStat mpki_stat;
    for (const auto *bench : primaryBenchmarks()) {
        AdaptiveConfig c =
            AdaptiveConfig::dual(PolicyType::LRU, PolicyType::LFU);
        c.partialTagBits = bits;
        c.xorFoldTags = xor_fold;
        SystemConfig cfg;
        cfg.l2 = L2Spec::fromAdaptive(c);
        System sys(cfg);
        auto src = makeBenchmark(*bench);
        const auto res = sys.runFunctional(*src, instrBudget());
        mpki_stat.add(res.l2Mpki);
        auto &l2 = dynamic_cast<AdaptiveCache &>(sys.l2());
        fallbacks += l2.fallbackEvictions();
        accesses += res.l2.accesses;
    }
    out.avgMpki = mpki_stat.mean();
    out.fallbacksPerMegaAccess =
        accesses ? 1e6 * double(fallbacks) / double(accesses) : 0;
    return out;
}

} // namespace

int
main()
{
    printConfigBanner(SystemConfig{},
                      "Ablation - partial-tag hash (low bits vs XOR)");

    TextTable table({"bits", "low MPKI", "low fb/Ma", "xor MPKI",
                     "xor fb/Ma"});
    for (unsigned bits : {4u, 6u, 8u, 10u, 12u}) {
        const auto low = runHash(bits, false);
        const auto xored = runHash(bits, true);
        table.addRow({std::to_string(bits),
                      TextTable::num(low.avgMpki, 2),
                      TextTable::num(low.fallbacksPerMegaAccess, 1),
                      TextTable::num(xored.avgMpki, 2),
                      TextTable::num(xored.fallbacksPerMegaAccess,
                                     1)});
        std::printf("... %u bits done\n", bits);
    }
    table.print();
    std::printf("(fb/Ma = arbitrary-victim fallbacks per million L2 "
                "accesses, the Sec. 3.1 aliasing escape hatch)\n");
    return 0;
}
