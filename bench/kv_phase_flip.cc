/**
 * @file
 * The kv-subsystem headline experiment: does the adaptive selector
 * shape the software cache's replacement to the workload the way the
 * paper's engine shapes a hardware cache's?
 *
 * Each schedule drives one single-shard cache per selector mode —
 * adaptive, fixed-LRU, fixed-LFU — with the same seeded key stream
 * and compares hit rates. The schedules are chosen so neither fixed
 * policy wins everywhere: static Zipf popularity rewards frequency,
 * a drifting hot set rewards recency, and the phase-flip schedules
 * alternate Zipf and scan regimes at different cadences. The
 * adaptive configuration must match (within a small tolerance) or
 * beat the better fixed policy on every schedule.
 */

#include <algorithm>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "kv/adaptive_kv_cache.hh"
#include "obs/session.hh"
#include "obs/snapshot.hh"
#include "sim/report.hh"
#include "workloads/key_stream.hh"

using namespace adcache;
using namespace adcache::kv;

namespace
{

constexpr std::uint64_t kOps = 300'000;
constexpr std::uint64_t kCapacity = 4'096;

struct Schedule
{
    std::string name;
    KeyStreamSpec spec;
};

std::vector<Schedule>
schedules()
{
    std::vector<Schedule> out;

    KeyStreamSpec zipf;
    zipf.pattern = KeyPattern::Zipf;
    zipf.keySpace = 1 << 16;
    zipf.skew = 1.0;
    zipf.seed = 11;
    out.push_back({"zipf_static", zipf});

    KeyStreamSpec drift = zipf;
    drift.driftEvery = 50'000;
    drift.seed = 12;
    out.push_back({"zipf_drift", drift});

    KeyStreamSpec flip_slow = zipf;
    flip_slow.pattern = KeyPattern::PhaseFlip;
    flip_slow.phasePeriod = 75'000;
    flip_slow.scanSpan = 4 * kCapacity;
    flip_slow.seed = 13;
    out.push_back({"flip_slow", flip_slow});

    KeyStreamSpec flip_fast = flip_slow;
    flip_fast.phasePeriod = 20'000;
    flip_fast.seed = 14;
    out.push_back({"flip_fast", flip_fast});

    KeyStreamSpec flip_drift = flip_slow;
    flip_drift.driftEvery = 60'000;
    flip_drift.seed = 15;
    out.push_back({"flip_drift", flip_drift});

    return out;
}

KvConfig
cacheConfig(SelectorMode mode)
{
    KvConfig c;
    c.capacity = kCapacity;
    c.numShards = 1; // policy comparison wants one selection domain
    c.numBuckets = 1'024;
    c.bucketWays = 4; // buckets x ways == capacity: shadows model
                      // exactly the capacity the cache has
    c.leaderEvery = 8;
    c.shadowTagBits = 16;
    c.scope = EvictionScope::Shard;
    c.selector = mode;
    c.keyHash = KeyHashKind::Mix;
    return c;
}

/**
 * The admission duel's contenders: the adapted dimension is the
 * TinyLFU filter itself. Both components evict by recency; one fills
 * through the filter, the other fills unconditionally, and the
 * selection engine imitates whichever wastes fewer fills. The fixed
 * baselines pin the filter always-on / always-off.
 */
KvConfig
admissionConfig(bool adaptive, bool filter_on)
{
    KvConfig c = cacheConfig(adaptive ? SelectorMode::Adaptive
                                      : SelectorMode::FixedLru);
    c.components[0] = {PolicyType::LRU, adaptive || filter_on};
    c.components[1] = {PolicyType::LRU, false};
    return c;
}

/**
 * One (schedule, selector) cell. When @p series_grid is non-null the
 * run also samples a per-interval snapshot series (hit rate, winner
 * share) on a reference-count cadence and appends the rows.
 */
double
runOne(const Schedule &schedule, const KvConfig &config,
       StatRegistry *stats, ReportGrid *series_grid = nullptr)
{
    AdaptiveKvCache cache(config);
    KeyStream stream(schedule.spec);

    std::optional<obs::SnapshotSeries> series;
    if (series_grid) {
        series.emplace(obs::Session::seriesInterval(kOps / 50),
                       [&](StatRegistry &reg) {
                           cache.registerStats(reg, "kv.");
                       });
        series->derive("interval_miss_rate",
                       obs::SnapshotSeries::share("kv.misses",
                                                  "kv.references"));
        series->derive("winner_lru_share",
                       obs::SnapshotSeries::share("kv.decisions.lru",
                                                  "kv.evictions"));
        series->derive(
            "fallback_rate",
            obs::SnapshotSeries::share("kv.fallback_evictions",
                                       "kv.evictions"));
    }

    constexpr std::uint64_t kChunk = 4'096;
    for (std::uint64_t i = 0; i < kOps;) {
        const std::uint64_t end = std::min(kOps, i + kChunk);
        for (; i < end; ++i)
            cache.fetch(stream.next(),
                        [] { return std::string("v"); });
        if (series)
            series->tick(i);
    }
    if (series) {
        series->finish(kOps);
        series->appendTo(*series_grid, schedule.name);
    }

    cache.registerStats(*stats, "kv.");
    // Admission-rate column: fills the filter refused, per reference
    // (0 when the configuration carries no filter).
    const StatEntry *rejects = stats->find("kv.admit_rejects");
    stats->value("kv.admission_reject_rate",
                 rejects ? rejects->numeric() /
                               stats->numeric("kv.references")
                         : 0.0);
    return stats->numeric("kv.hit_rate");
}

} // namespace

int
main()
{
    obs::Session session("kv_phase_flip");
    const SelectorMode modes[] = {SelectorMode::Adaptive,
                                  SelectorMode::FixedLru,
                                  SelectorMode::FixedLfu};

    ReportGrid grid;
    grid.experiment = "kv_phase_flip";
    grid.benchmarkHeader = "schedule";
    grid.variantHeader = "selector";
    grid.addMeta("ops", std::to_string(kOps));
    grid.addMeta("capacity", std::to_string(kCapacity));

    ReportGrid series_grid;
    series_grid.experiment = "kv_phase_flip adaptive series";
    series_grid.addMeta("ops", std::to_string(kOps));

    bool adaptive_holds = true;
    for (const Schedule &schedule : schedules()) {
        double rate[3] = {};
        for (int m = 0; m < 3; ++m) {
            ReportRow &row = grid.add(schedule.name,
                                      selectorModeName(modes[m]));
            row.stats.text("stream", schedule.spec.describe());
            // Snapshot series only for the adaptive runs: the fixed
            // policies are the flat baselines.
            ReportGrid *series =
                modes[m] == SelectorMode::Adaptive &&
                        session.seriesRequested()
                    ? &series_grid
                    : nullptr;
            rate[m] = runOne(schedule, cacheConfig(modes[m]),
                             &row.stats, series);
        }
        const double best_fixed = std::max(rate[1], rate[2]);
        // "Matching" tolerance: the adaptive cache pays for its
        // learning window; 1% of the better fixed policy's hit rate.
        const bool ok = rate[0] >= best_fixed - 0.01;
        adaptive_holds = adaptive_holds && ok;
        if (reportFormat() == ReportFormat::Table)
            std::printf("[%-11s] adaptive %.4f  lru %.4f  lfu %.4f"
                        "  -> %s best fixed\n",
                        schedule.name.c_str(), rate[0], rate[1],
                        rate[2], ok ? "matches/beats" : "TRAILS");
    }

    // ---- Admission duel ------------------------------------------
    // Adaptive admission (filter-on vs filter-off LRU twins) against
    // the always-on and always-off baselines. On the phase-flip
    // schedules neither baseline wins both regimes: the filter saves
    // the working set during scans but starves a shifting hot set.
    // Adaptivity must match or beat the better baseline on at least
    // one skewed-vs-scan schedule.
    struct Duelist
    {
        const char *name;
        bool adaptive;
        bool filterOn;
    };
    const Duelist duelists[] = {{"adm_adaptive", true, false},
                                {"adm_on", false, true},
                                {"adm_off", false, false}};
    unsigned duel_wins = 0;
    for (const Schedule &schedule : schedules()) {
        if (schedule.spec.pattern != KeyPattern::PhaseFlip)
            continue;
        double rate[3] = {};
        double adm[3] = {};
        for (int d = 0; d < 3; ++d) {
            ReportRow &row =
                grid.add(schedule.name, duelists[d].name);
            row.stats.text("stream", schedule.spec.describe());
            rate[d] = runOne(schedule,
                             admissionConfig(duelists[d].adaptive,
                                             duelists[d].filterOn),
                             &row.stats);
            adm[d] =
                row.stats.numeric("kv.admission_reject_rate");
        }
        const double best_fixed = std::max(rate[1], rate[2]);
        const bool ok = rate[0] >= best_fixed - 0.01;
        duel_wins += ok ? 1 : 0;
        if (reportFormat() == ReportFormat::Table)
            std::printf("[%-11s] adm-adaptive %.4f (rej %.3f)  "
                        "adm-on %.4f (rej %.3f)  adm-off %.4f"
                        "  -> %s best fixed\n",
                        schedule.name.c_str(), rate[0], adm[0],
                        rate[1], adm[1], rate[2],
                        ok ? "matches/beats" : "TRAILS");
    }
    const bool admission_holds = duel_wins >= 1;

    session.writeSeries(series_grid);
    grid.addMeta("adaptive_matches_best_fixed",
                 adaptive_holds ? "true" : "false");
    grid.addMeta("admission_adaptivity_holds",
                 admission_holds ? "true" : "false");
    if (reportFormat() == ReportFormat::Table)
        std::printf("verdict: adaptive %s the better fixed policy on "
                    "every schedule; admission adaptivity %s\n",
                    adaptive_holds ? "matches or beats" : "TRAILS",
                    admission_holds ? "holds" : "FAILS");
    else
        emitReport(grid, reportFormat());
    return adaptive_holds && admission_holds ? 0 : 1;
}
