/**
 * @file
 * Shared harness for the figure/table reproduction binaries. Every
 * driver describes its experiment as a bench::Experiment (title,
 * benchmark list, variant list, metrics) and calls runAndReport(),
 * which executes the grid in parallel (sim/runner.hh, ADCACHE_JOBS)
 * and emits the results in the format selected by ADCACHE_REPORT:
 *
 *   - table (default): the Table 1 banner plus the paper-style
 *     per-benchmark metric tables, exactly as EXPERIMENTS.md records;
 *   - json / csv: one machine-readable document over every
 *     registered statistic of every (benchmark x variant) cell, with
 *     no other output on stdout.
 *
 * Drivers keep their measured-vs-paper analysis prose behind
 * textMode() so structured output stays parseable.
 *
 * Observability: runAndReport() scopes an obs::Session over the grid
 * run (arming the ADCACHE_TRACE* / ADCACHE_LAT knobs and exporting
 * on completion, unless the driver holds its own Session) and an
 * ADCACHE_PROGRESS=1 heartbeat that reports grid progress to stderr.
 */

#ifndef ADCACHE_BENCH_COMMON_HH
#define ADCACHE_BENCH_COMMON_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/session.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"
#include "sim/runner.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace adcache::bench
{

/**
 * Opt-in progress heartbeat (ADCACHE_PROGRESS=1): a monitor thread
 * prints completed jobs, percent complete, and an estimated
 * simulated-accesses/sec figure to stderr roughly once a second
 * while a grid runs. Off by default; when the knob is unset this
 * class does nothing (no thread is started).
 */
class ProgressHeartbeat
{
  public:
    /**
     * @param total_jobs     grid size being executed.
     * @param instrs_per_job instruction budget of each job, used to
     *                       estimate the accesses/sec rate.
     */
    ProgressHeartbeat(std::size_t total_jobs,
                      InstCount instrs_per_job)
        : total_(total_jobs), instrs_(instrs_per_job)
    {
        const char *v = std::getenv("ADCACHE_PROGRESS");
        if (!v || !*v || std::string(v) == "0")
            return;
        base_ = jobsCompleted();
        start_ = Clock::now();
        monitor_ = std::thread([this] { run(); });
    }

    ~ProgressHeartbeat()
    {
        if (!monitor_.joinable())
            return;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        monitor_.join();
    }

    ProgressHeartbeat(const ProgressHeartbeat &) = delete;
    ProgressHeartbeat &operator=(const ProgressHeartbeat &) = delete;

  private:
    using Clock = std::chrono::steady_clock;

    void run()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        while (!stop_) {
            cv_.wait_for(lock, std::chrono::seconds(1));
            if (stop_)
                return;
            report();
        }
    }

    void report() const
    {
        const std::uint64_t done = jobsCompleted() - base_;
        const double secs =
            std::chrono::duration<double>(Clock::now() - start_)
                .count();
        const double pct =
            total_ ? 100.0 * double(done) / double(total_) : 100.0;
        const double rate =
            secs > 0.0 ? double(done) * double(instrs_) / secs : 0.0;
        std::fprintf(stderr,
                     "[progress] %llu/%zu jobs (%.0f%%), "
                     "~%.2fM accesses/s\n",
                     static_cast<unsigned long long>(done), total_,
                     pct, rate / 1e6);
    }

    std::size_t total_;
    InstCount instrs_;
    std::uint64_t base_ = 0;
    Clock::time_point start_{};
    std::thread monitor_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

/** True when prose/tables may be printed (ADCACHE_REPORT=table). */
inline bool
textMode()
{
    return reportFormat() == ReportFormat::Table;
}

/** One metric column of the text-mode per-benchmark tables. */
struct Metric
{
    std::string name;
    double (*fn)(const SimResult &) = nullptr;
    int precision = 2;
};

/** A declarative (benchmark x variant) experiment grid. */
struct Experiment
{
    std::string title;
    std::vector<const BenchmarkDef *> benchmarks;

    /** L2-organisation variants (the common case)... */
    std::vector<L2Spec> variants;
    /** ...or whole-system variants; used instead when non-empty. */
    std::vector<ConfigVariant> configs;

    /** Display label per variant (default: the variant's label()). */
    std::vector<std::string> variantNames;

    bool timed = false;
    /** Base configuration applied to every L2Spec variant. */
    SystemConfig base{};
    /** Per-benchmark tables rendered in text mode (may be empty). */
    std::vector<Metric> metrics;
    /** Instruction budget; 0 selects instrBudget(). */
    InstCount instrs = 0;
};

/** Print per-benchmark metric rows for a set of variants. */
inline void
printSuiteTable(const std::vector<SuiteRow> &rows,
                const std::vector<std::string> &variant_names,
                double (*metric)(const SimResult &),
                const std::string &metric_name, int precision = 2)
{
    std::vector<std::string> header{"benchmark"};
    for (const auto &n : variant_names)
        header.push_back(n + " " + metric_name);
    TextTable table(header);
    for (const auto &row : rows) {
        std::vector<std::string> cells{row.benchmark};
        for (const auto &res : row.results)
            cells.push_back(TextTable::num(metric(res), precision));
        table.addRow(cells);
    }
    const auto avg = averageOf(rows, metric);
    std::vector<std::string> cells{"AVERAGE"};
    for (double a : avg)
        cells.push_back(TextTable::num(a, precision));
    table.addRow(cells);
    table.print();
}

/** Display labels for an experiment's variants. */
inline std::vector<std::string>
variantLabels(const Experiment &e)
{
    if (!e.variantNames.empty())
        return e.variantNames;
    std::vector<std::string> names;
    if (!e.configs.empty()) {
        for (const auto &c : e.configs)
            names.push_back(c.label);
    } else {
        for (const auto &v : e.variants)
            names.push_back(v.label());
    }
    return names;
}

/** Table 1 banner; suppressed in structured-output modes. */
inline void
banner(const std::string &title,
       const SystemConfig &config = SystemConfig{},
       InstCount budget = 0)
{
    if (textMode())
        printConfigBanner(config, title,
                          budget ? budget : instrBudget());
}

/**
 * Emit a custom grid in the selected format (generic table in text
 * mode). Drivers whose text-mode output *is* the generic table call
 * this unconditionally; drivers with bespoke text rendering call it
 * from the non-text path only.
 */
inline void
report(const ReportGrid &grid)
{
    emitReport(grid, reportFormat());
}

/**
 * The single entry point of the harness: banner + parallel grid run +
 * result emission. Returns the suite rows for driver-side analysis
 * (which must stay behind textMode()).
 */
inline std::vector<SuiteRow>
runAndReport(const Experiment &e)
{
    const InstCount instrs = e.instrs ? e.instrs : instrBudget();
    const auto names = variantLabels(e);

    banner(e.title, e.base, instrs);
    // Inert when a driver already holds its own Session (see
    // obs/session.hh); otherwise this exports the job spans when the
    // grid is done.
    obs::Session session(e.title);
    const std::size_t cells =
        e.benchmarks.size() *
        (e.configs.empty() ? e.variants.size() : e.configs.size());
    const auto rows = [&] {
        ProgressHeartbeat heartbeat(cells, instrs);
        return e.configs.empty()
                   ? runSuite(e.benchmarks, e.variants, instrs,
                              e.timed, e.base)
                   : runConfigSuite(e.benchmarks, e.configs, instrs,
                                    e.timed);
    }();

    if (textMode()) {
        for (const Metric &m : e.metrics)
            printSuiteTable(rows, names, m.fn, m.name, m.precision);
    } else {
        ReportGrid grid = gridFromSuite(e.title, rows, names);
        grid.addMeta("instr_budget", std::to_string(instrs));
        grid.addMeta("jobs", std::to_string(runnerJobs()));
        grid.addMeta("timed", e.timed ? "true" : "false");
        report(grid);
    }
    return rows;
}

/** "paper: X, measured: Y" summary line. */
inline void
paperVsMeasured(const std::string &what, const std::string &paper,
                double measured, const std::string &unit)
{
    std::printf("[paper-vs-measured] %s: paper %s, measured %.2f%s\n",
                what.c_str(), paper.c_str(), measured, unit.c_str());
}

/** Worst per-benchmark deterioration of variant b vs variant a. */
inline std::pair<std::string, double>
worstDeterioration(const std::vector<SuiteRow> &rows, std::size_t a,
                   std::size_t b, double (*metric)(const SimResult &))
{
    std::string bench = "-";
    double worst = -1e300;
    for (const auto &row : rows) {
        const double base = metric(row.results[a]);
        const double val = metric(row.results[b]);
        if (base <= 0.0)
            continue;
        const double delta = 100.0 * (val - base) / base;
        if (delta > worst) {
            worst = delta;
            bench = row.benchmark;
        }
    }
    return {bench, worst};
}

} // namespace adcache::bench

#endif // ADCACHE_BENCH_COMMON_HH
