/**
 * @file
 * Shared plumbing for the figure/table reproduction harness. Every
 * binary prints the Table 1 banner, runs its experiment at the
 * ADCACHE_INSTRS budget, prints the paper-style rows, and closes with
 * a paper-vs-measured summary line EXPERIMENTS.md records.
 */

#ifndef ADCACHE_BENCH_COMMON_HH
#define ADCACHE_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace adcache::bench
{

/** Print per-benchmark metric rows for a set of variants. */
inline void
printSuiteTable(const std::vector<SuiteRow> &rows,
                const std::vector<std::string> &variant_names,
                double (*metric)(const SimResult &),
                const std::string &metric_name, int precision = 2)
{
    std::vector<std::string> header{"benchmark"};
    for (const auto &n : variant_names)
        header.push_back(n + " " + metric_name);
    TextTable table(header);
    for (const auto &row : rows) {
        std::vector<std::string> cells{row.benchmark};
        for (const auto &res : row.results)
            cells.push_back(TextTable::num(metric(res), precision));
        table.addRow(cells);
    }
    const auto avg = averageOf(rows, metric);
    std::vector<std::string> cells{"AVERAGE"};
    for (double a : avg)
        cells.push_back(TextTable::num(a, precision));
    table.addRow(cells);
    table.print();
}

/** "paper: X, measured: Y" summary line. */
inline void
paperVsMeasured(const std::string &what, const std::string &paper,
                double measured, const std::string &unit)
{
    std::printf("[paper-vs-measured] %s: paper %s, measured %.2f%s\n",
                what.c_str(), paper.c_str(), measured, unit.c_str());
}

/** Worst per-benchmark deterioration of variant b vs variant a. */
inline std::pair<std::string, double>
worstDeterioration(const std::vector<SuiteRow> &rows, std::size_t a,
                   std::size_t b, double (*metric)(const SimResult &))
{
    std::string bench = "-";
    double worst = -1e300;
    for (const auto &row : rows) {
        const double base = metric(row.results[a]);
        const double val = metric(row.results[b]);
        if (base <= 0.0)
            continue;
        const double delta = 100.0 * (val - base) / base;
        if (delta > worst) {
            worst = delta;
            bench = row.benchmark;
        }
    }
    return {bench, worst};
}

} // namespace adcache::bench

#endif // ADCACHE_BENCH_COMMON_HH
