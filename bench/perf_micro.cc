/**
 * @file
 * google-benchmark micro suite: raw throughput of the simulator's
 * hot paths. Useful for judging the cost of the adaptive machinery
 * itself (shadow updates, victim search) against a conventional
 * cache model, and for catching performance regressions.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "cache/cache.hh"
#include "core/adaptive_cache.hh"
#include "core/sbar_cache.hh"
#include "cpu/branch_predictor.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"

using namespace adcache;

namespace
{

/** Pre-generated pseudo-random block addresses. */
const std::vector<Addr> &
addressStream()
{
    static const std::vector<Addr> stream = [] {
        std::vector<Addr> v(1 << 18);
        Rng rng(42);
        for (auto &a : v)
            a = rng.below(1 << 15) * 64;
        return v;
    }();
    return stream;
}

void
BM_ConventionalCacheAccess(benchmark::State &state)
{
    CacheConfig conf;
    conf.policy = static_cast<PolicyType>(state.range(0));
    Cache cache(conf);
    const auto &stream = addressStream();
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(stream[i++ & (stream.size() - 1)], false));
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_AdaptiveCacheAccess(benchmark::State &state)
{
    AdaptiveConfig conf =
        AdaptiveConfig::dual(PolicyType::LRU, PolicyType::LFU);
    conf.partialTagBits = unsigned(state.range(0));
    AdaptiveCache cache(conf);
    const auto &stream = addressStream();
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(stream[i++ & (stream.size() - 1)], false));
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_FivePolicyAccess(benchmark::State &state)
{
    AdaptiveCache cache(AdaptiveConfig::fivePolicy());
    const auto &stream = addressStream();
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(stream[i++ & (stream.size() - 1)], false));
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_SbarCacheAccess(benchmark::State &state)
{
    SbarCache cache(SbarConfig{});
    const auto &stream = addressStream();
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(stream[i++ & (stream.size() - 1)], false));
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_BranchPredictorUpdate(benchmark::State &state)
{
    BranchPredictor bp;
    Rng rng(7);
    Addr pc = 0x1000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(bp.update(pc, rng.chance(0.7)));
        pc += 4;
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_WorkloadGeneration(benchmark::State &state)
{
    auto src = makeBenchmark(*findBenchmark("art-1"));
    TraceInstr instr;
    for (auto _ : state) {
        src->next(instr);
        benchmark::DoNotOptimize(instr);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_TimedSimulation(benchmark::State &state)
{
    // End-to-end simulated instructions per second.
    for (auto _ : state) {
        SystemConfig cfg;
        cfg.l2 = L2Spec::adaptiveLruLfu();
        System sys(cfg);
        auto src = makeBenchmark(*findBenchmark("parser"));
        benchmark::DoNotOptimize(sys.runTimed(*src, 200'000));
    }
    state.SetItemsProcessed(state.iterations() * 200'000);
}

BENCHMARK(BM_ConventionalCacheAccess)
    ->Arg(int(PolicyType::LRU))
    ->Arg(int(PolicyType::LFU))
    ->Arg(int(PolicyType::Random));
BENCHMARK(BM_AdaptiveCacheAccess)->Arg(0)->Arg(8);
BENCHMARK(BM_FivePolicyAccess);
BENCHMARK(BM_SbarCacheAccess);
BENCHMARK(BM_BranchPredictorUpdate);
BENCHMARK(BM_WorkloadGeneration);
BENCHMARK(BM_TimedSimulation);

} // namespace

/**
 * Honour ADCACHE_REPORT by injecting the matching google-benchmark
 * format flag, so `ADCACHE_REPORT=json ./perf_micro` emits a JSON
 * document just like the figure drivers. Explicit command-line flags
 * still win (they are parsed after the injected one).
 */
int
main(int argc, char **argv)
{
    std::vector<char *> args;
    args.push_back(argv[0]);
    std::string format_flag;
    switch (reportFormat()) {
    case ReportFormat::Json:
        format_flag = "--benchmark_format=json";
        break;
    case ReportFormat::Csv:
        format_flag = "--benchmark_format=csv";
        break;
    case ReportFormat::Table:
        break;
    }
    if (!format_flag.empty())
        args.push_back(format_flag.data());
    for (int i = 1; i < argc; ++i)
        args.push_back(argv[i]);

    int injected_argc = int(args.size());
    benchmark::Initialize(&injected_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(injected_argc,
                                               args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
