/**
 * @file
 * Hit-rate sweep of the kv cache across the key-stream families:
 * Zipf at several skews, uniform, and a capacity-exceeding scan,
 * each run against the adaptive selector and both fixed policies.
 * The companion to kv_phase_flip — where that bench asks "does
 * adaptation win when the workload shifts", this one maps how each
 * policy behaves on the stationary patterns the shifts are built
 * from.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "kv/adaptive_kv_cache.hh"
#include "sim/report.hh"
#include "workloads/key_stream.hh"

using namespace adcache;
using namespace adcache::kv;

namespace
{

constexpr std::uint64_t kOps = 250'000;
constexpr std::uint64_t kCapacity = 4'096;

KvConfig
cacheConfig(SelectorMode mode)
{
    KvConfig c;
    c.capacity = kCapacity;
    c.numShards = 1;
    c.numBuckets = 1'024;
    c.bucketWays = 4;
    c.leaderEvery = 8;
    c.shadowTagBits = 16;
    c.scope = EvictionScope::Shard;
    c.selector = mode;
    c.keyHash = KeyHashKind::Mix;
    return c;
}

/** The benchmarked variants: the three shard-scope selector modes,
 *  the bucket-scope LRU-vs-CMS-LFU pairing (the sketch policy has no
 *  shard-wide intrusive order), and admission adaptivity over
 *  filter-on/filter-off LRU twins. */
std::vector<std::pair<std::string, KvConfig>>
variants()
{
    std::vector<std::pair<std::string, KvConfig>> out;
    out.emplace_back("adaptive", cacheConfig(SelectorMode::Adaptive));
    out.emplace_back("lru", cacheConfig(SelectorMode::FixedLru));
    out.emplace_back("lfu", cacheConfig(SelectorMode::FixedLfu));

    KvConfig cms = KvConfig::lockstep(1'024, 4, 16);
    cms.keyHash = KeyHashKind::Mix;
    cms.exactCounters = false;
    cms.components[1] = {PolicyType::CmsLfu, false};
    out.emplace_back("cmslfu", cms);

    KvConfig adm = cacheConfig(SelectorMode::Adaptive);
    adm.components[0] = {PolicyType::LRU, true};
    adm.components[1] = {PolicyType::LRU, false};
    out.emplace_back("adm", adm);
    return out;
}

std::vector<std::pair<std::string, KeyStreamSpec>>
streams()
{
    std::vector<std::pair<std::string, KeyStreamSpec>> out;
    for (const double skew : {0.6, 0.9, 1.2}) {
        KeyStreamSpec spec;
        spec.pattern = KeyPattern::Zipf;
        spec.keySpace = 1 << 16;
        spec.skew = skew;
        spec.seed = 21;
        char name[32];
        std::snprintf(name, sizeof name, "zipf_%.1f", skew);
        out.emplace_back(name, spec);
    }

    KeyStreamSpec uniform;
    uniform.pattern = KeyPattern::Uniform;
    uniform.keySpace = 1 << 14;
    uniform.seed = 22;
    out.emplace_back("uniform_16k", uniform);

    KeyStreamSpec scan;
    scan.pattern = KeyPattern::Scan;
    scan.keySpace = 1 << 16;
    scan.scanSpan = 2 * kCapacity;
    scan.seed = 23;
    out.emplace_back("scan_2xcap", scan);

    return out;
}

} // namespace

int
main()
{
    const auto configs = variants();

    ReportGrid grid;
    grid.experiment = "kv_workloads";
    grid.benchmarkHeader = "stream";
    grid.variantHeader = "selector";
    grid.addMeta("ops", std::to_string(kOps));
    grid.addMeta("capacity", std::to_string(kCapacity));

    for (const auto &[name, spec] : streams()) {
        std::vector<double> rate(configs.size());
        for (std::size_t m = 0; m < configs.size(); ++m) {
            AdaptiveKvCache cache(configs[m].second);
            KeyStream stream(spec);
            for (std::uint64_t i = 0; i < kOps; ++i)
                cache.fetch(stream.next(),
                            [] { return std::string("v"); });
            ReportRow &row = grid.add(name, configs[m].first);
            row.stats.text("stream", spec.describe());
            cache.registerStats(row.stats, "kv.");
            rate[m] = row.stats.numeric("kv.hit_rate");
        }
        if (reportFormat() == ReportFormat::Table)
            std::printf("[%-11s] adaptive %.4f  lru %.4f  lfu %.4f"
                        "  cmslfu %.4f  adm %.4f\n",
                        name.c_str(), rate[0], rate[1], rate[2],
                        rate[3], rate[4]);
    }

    if (reportFormat() != ReportFormat::Table)
        emitReport(grid, reportFormat());
    return 0;
}
