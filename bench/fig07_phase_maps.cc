/**
 * @file
 * Figure 7: time- and space-varying replacement behaviour of ammp
 * (phase switches) and mgrid (spatially receding transition). For
 * every sampling quantum we record, per cache set, which component
 * the adaptive cache imitated for the majority of its replacement
 * decisions, and render the map with one row per set group and one
 * column per quantum:  'L' = mostly LRU, 'f' = mostly LFU,
 * '.' = no replacement decisions in the quantum.
 *
 * In json/csv mode each set-group row is emitted as a text stat
 * ("map" = the row string) so downstream tooling can reconstruct the
 * full map.
 *
 * Observability: this driver is the reference consumer of the obs
 * stack. With ADCACHE_TRACE_OUT / ADCACHE_TRACE_CHROME /
 * ADCACHE_SERIES_OUT set, one run emits the JSONL decision trace
 * (winner flips land at the phase boundaries visible in the map),
 * a Chrome trace of per-quantum spans, and a time-series CSV of
 * per-interval MPKI, winner share, and fallback rate.
 */

#include "common.hh"
#include "core/adaptive_cache.hh"
#include "obs/snapshot.hh"
#include "obs/trace.hh"

using namespace adcache;

namespace
{

void
phaseMap(const char *bench_name, ReportGrid &grid,
         const obs::Session &session, ReportGrid &series_grid)
{
    const auto *def = findBenchmark(bench_name);
    if (!def) {
        if (bench::textMode())
            std::printf("missing benchmark %s\n", bench_name);
        return;
    }

    SystemConfig cfg;
    cfg.l2 = L2Spec::adaptiveLruLfu();
    System sys(cfg);
    auto &l2 = dynamic_cast<AdaptiveCache &>(sys.l2());
    auto source = makeBenchmark(*def);

    const InstCount total = instrBudget();
    const unsigned quanta = 48;
    const InstCount quantum = total / quanta;
    const unsigned sets = l2.geometry().numSets;
    const unsigned groups = 32;
    const unsigned per_group = sets / groups;

    // map[group][quantum]
    std::vector<std::string> map(groups, std::string(quanta, '.'));

    // Cumulative decision totals for the snapshot sampler (the map
    // machinery clears the per-set counters each quantum, so the
    // series keeps its own monotone view).
    std::uint64_t cum_lru = 0, cum_lfu = 0;
    obs::SnapshotSeries series(
        obs::Session::seriesInterval(quantum),
        [&](StatRegistry &reg) {
            l2.registerStats(reg, "l2.");
            reg.counter("decisions.lru", cum_lru);
            reg.counter("decisions.lfu", cum_lfu);
            reg.counter("decisions.total", cum_lru + cum_lfu);
        });
    series.derive("mpki",
                  obs::SnapshotSeries::rate("l2.misses", 1000.0));
    series.derive("winner_lru_share",
                  obs::SnapshotSeries::share("decisions.lru",
                                             "decisions.total"));
    series.derive("fallback_rate",
                  obs::SnapshotSeries::share("l2.fallback_evictions",
                                             "l2.evictions"));

    for (unsigned q = 0; q < quanta; ++q) {
        {
            obs::ScopedSpan span(std::string(bench_name) + "/q" +
                                 std::to_string(q));
            sys.runFunctional(*source, quantum);
        }
        for (unsigned g = 0; g < groups; ++g) {
            std::uint64_t lru = 0, lfu = 0;
            for (unsigned s = g * per_group; s < (g + 1) * per_group;
                 ++s) {
                const auto &d = l2.decisionsFor(s);
                lru += d[0];
                lfu += d[1];
            }
            cum_lru += lru;
            cum_lfu += lfu;
            if (lru + lfu == 0)
                map[g][q] = '.';
            else
                map[g][q] = lru >= lfu ? 'L' : 'f';
        }
        series.tick(std::uint64_t(q + 1) * quantum);
        l2.clearDecisions();
    }
    series.finish(std::uint64_t(quanta) * quantum);
    if (session.seriesRequested())
        series.appendTo(series_grid, bench_name);

    if (bench::textMode()) {
        std::printf("\n%s: per-set-group majority decision over time\n",
                    bench_name);
        std::printf("(rows: set groups 0..%u of %u sets each; columns: "
                    "%u quanta of %llu instructions)\n",
                    groups - 1, per_group, quanta,
                    static_cast<unsigned long long>(quantum));
        for (unsigned g = 0; g < groups; ++g)
            std::printf("set %4u-%4u |%s|\n", g * per_group,
                        (g + 1) * per_group - 1, map[g].c_str());
    } else {
        for (unsigned g = 0; g < groups; ++g) {
            ReportRow &row = grid.add(
                bench_name, "sets " + std::to_string(g * per_group) +
                                "-" +
                                std::to_string((g + 1) * per_group - 1));
            row.stats.text("map", map[g]);
        }
    }
}

} // namespace

int
main()
{
    obs::Session session("fig07_phase_maps");
    bench::banner("Fig. 7 - ammp/mgrid replacement phase maps");
    if (bench::textMode())
        std::printf("legend: 'L' = majority-LRU quantum, 'f' = "
                    "majority-LFU, '.' = no decisions\n");

    ReportGrid grid;
    grid.experiment = "Fig. 7 - ammp/mgrid replacement phase maps";
    grid.variantHeader = "set_group";
    grid.addMeta("instr_budget", std::to_string(instrBudget()));

    ReportGrid series_grid;
    series_grid.experiment = "Fig. 7 - per-interval decision series";
    series_grid.addMeta("instr_budget",
                        std::to_string(instrBudget()));

    // Paper expectations: ammp shows a mottled prologue (spatial
    // split), an LFU-dominant middle epoch and an LRU-dominant tail;
    // mgrid's LFU-favourable region recedes across the set space.
    phaseMap("ammp", grid, session, series_grid);
    phaseMap("mgrid", grid, session, series_grid);

    session.writeSeries(series_grid);
    if (!bench::textMode())
        bench::report(grid);
    return 0;
}
