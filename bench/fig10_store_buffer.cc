/**
 * @file
 * Figure 10: sensitivity of the adaptive benefit to store buffer
 * capacity. Part of the CPI win comes from fewer store-buffer-full
 * retirement stalls; growing the buffer removes those stalls, so the
 * benefit decays gracefully — but over half of it remains even at an
 * unrealistically large 256 entries (paper).
 */

#include "common.hh"

using namespace adcache;

int
main()
{
    printConfigBanner(SystemConfig{},
                      "Fig. 10 - store buffer size sensitivity");

    TextTable table({"entries", "LRU CPI", "Adapt CPI", "impr %",
                     "stall kcycles"});
    double impr_at_4 = 0, impr_at_256 = 0;

    for (unsigned entries : {1u, 2u, 4u, 16u, 64u, 256u}) {
        SystemConfig base;
        base.core.storeBufferEntries = entries;
        const std::vector<L2Spec> variants = {
            L2Spec::lru(), L2Spec::adaptiveLruLfu()};
        const auto rows = runSuite(primaryBenchmarks(), variants,
                                   instrBudget(), /*timed=*/true,
                                   base);
        const auto cpi = averageOf(rows, metricCpi);
        const double impr = percentImprovement(cpi[0], cpi[1]);
        std::uint64_t stall_cycles = 0;
        for (const auto &row : rows)
            stall_cycles += row.results[0].core.storeBuffer.stallCycles;
        table.addRow({std::to_string(entries),
                      TextTable::num(cpi[0], 3),
                      TextTable::num(cpi[1], 3),
                      TextTable::num(impr, 2),
                      TextTable::num(double(stall_cycles) / 1000.0,
                                     0)});
        if (entries == 4)
            impr_at_4 = impr;
        if (entries == 256)
            impr_at_256 = impr;
        std::printf("... %u entries done\n", entries);
    }
    table.print();

    bench::paperVsMeasured(
        "fraction of the 4-entry benefit left at 256 entries", ">50%",
        impr_at_4 > 0 ? 100.0 * impr_at_256 / impr_at_4 : 0.0, "%");
    std::printf("note: the synthetic suite exposes less store-buffer "
                "pressure than MASE's SPEC runs — retirement stalls "
                "concentrate at 1-2 entries here (see the stall "
                "column), so the paper's gentle 4->256 decay shows up "
                "compressed at the small end while the adaptive "
                "benefit itself persists at every size.\n");
    return 0;
}
