/**
 * @file
 * Figure 10: sensitivity of the adaptive benefit to store buffer
 * capacity. Part of the CPI win comes from fewer store-buffer-full
 * retirement stalls; growing the buffer removes those stalls, so the
 * benefit decays gracefully — but over half of it remains even at an
 * unrealistically large 256 entries (paper).
 */

#include "common.hh"

using namespace adcache;

int
main()
{
    const std::vector<unsigned> sizes = {1u, 2u, 4u, 16u, 64u, 256u};

    bench::Experiment e;
    e.title = "Fig. 10 - store buffer size sensitivity";
    e.benchmarks = primaryBenchmarks();
    for (unsigned entries : sizes) {
        SystemConfig base;
        base.core.storeBufferEntries = entries;
        SystemConfig lru = base;
        lru.l2 = L2Spec::lru();
        SystemConfig adapt = base;
        adapt.l2 = L2Spec::adaptiveLruLfu();
        e.configs.push_back(
            {"LRU-sb" + std::to_string(entries), lru});
        e.configs.push_back(
            {"Ad-sb" + std::to_string(entries), adapt});
    }
    e.timed = true;
    const auto rows = bench::runAndReport(e);
    if (!bench::textMode())
        return 0;

    const auto cpi = averageOf(rows, metricCpi);

    TextTable table({"entries", "LRU CPI", "Adapt CPI", "impr %",
                     "stall kcycles"});
    double impr_at_4 = 0, impr_at_256 = 0;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        const std::size_t lru = 2 * i, ad = 2 * i + 1;
        const double impr = percentImprovement(cpi[lru], cpi[ad]);
        std::uint64_t stall_cycles = 0;
        for (const auto &row : rows)
            stall_cycles +=
                row.results[lru].core.storeBuffer.stallCycles;
        table.addRow({std::to_string(sizes[i]),
                      TextTable::num(cpi[lru], 3),
                      TextTable::num(cpi[ad], 3),
                      TextTable::num(impr, 2),
                      TextTable::num(double(stall_cycles) / 1000.0,
                                     0)});
        if (sizes[i] == 4)
            impr_at_4 = impr;
        if (sizes[i] == 256)
            impr_at_256 = impr;
    }
    table.print();

    bench::paperVsMeasured(
        "fraction of the 4-entry benefit left at 256 entries", ">50%",
        impr_at_4 > 0 ? 100.0 * impr_at_256 / impr_at_4 : 0.0, "%");
    std::printf("note: the synthetic suite exposes less store-buffer "
                "pressure than MASE's SPEC runs — retirement stalls "
                "concentrate at 1-2 entries here (see the stall "
                "column), so the paper's gentle 4->256 decay shows up "
                "compressed at the small end while the adaptive "
                "benefit itself persists at every size.\n");
    return 0;
}
