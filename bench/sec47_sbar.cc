/**
 * @file
 * Sec. 4.7: eliminating the shadow overheads with set sampling (the
 * SBAR-like design). Paper: 12.5 % average CPI improvement vs the
 * full mechanism's 12.9 %, at 0.16 % (full-tag leaders) or ~0.09 %
 * (8-bit leaders) storage overhead; slightly less robust per
 * benchmark (ammp/xanim favour the full mechanism, twolf SBAR).
 */

#include "common.hh"
#include "core/overhead.hh"

using namespace adcache;

int
main()
{
    SbarConfig sbar_full;
    SbarConfig sbar_partial;
    sbar_partial.partialTagBits = 8;

    bench::Experiment e;
    e.title = "Sec. 4.7 - SBAR-like set sampling";
    e.benchmarks = primaryBenchmarks();
    e.variants = {
        L2Spec::lru(),
        L2Spec::adaptiveLruLfu(),
        L2Spec::fromSbar(sbar_full),
        L2Spec::fromSbar(sbar_partial),
    };
    e.variantNames = {"LRU", "Adaptive", "SBAR", "SBAR-8b"};
    e.timed = true;
    e.metrics = {{"CPI", metricCpi, 3}};
    const auto rows = bench::runAndReport(e);
    if (!bench::textMode())
        return 0;

    const auto cpi = averageOf(rows, metricCpi);
    bench::paperVsMeasured("full adaptive CPI improvement", "12.9%",
                           percentImprovement(cpi[0], cpi[1]), "%");
    bench::paperVsMeasured("SBAR-like CPI improvement", "12.5%",
                           percentImprovement(cpi[0], cpi[2]), "%");
    bench::paperVsMeasured("SBAR-like with 8-bit leaders", "~12.5%",
                           percentImprovement(cpi[0], cpi[3]), "%");

    // Robustness comparison (paper: adaptive wins big on ammp/xanim,
    // SBAR at most ~4.4% better on twolf).
    std::printf("\nbenchmarks where full adaptive beats SBAR by >2%% "
                "CPI:\n");
    for (const auto &row : rows) {
        const double delta =
            percentImprovement(row.results[2].cpi, row.results[1].cpi);
        if (delta > 2.0)
            std::printf("  %-12s %+.2f%%\n", row.benchmark.c_str(),
                        delta);
    }
    std::printf("benchmarks where SBAR beats full adaptive by >2%% "
                "CPI:\n");
    for (const auto &row : rows) {
        const double delta =
            percentImprovement(row.results[1].cpi, row.results[2].cpi);
        if (delta > 2.0)
            std::printf("  %-12s %+.2f%%\n", row.benchmark.c_str(),
                        delta);
    }

    const auto g = CacheGeometry::fromSize(512 * 1024, 8, 64);
    const auto base = conventionalStorage(g);
    std::printf("\nstorage overhead: full adaptive %+.2f%%, 8-bit "
                "adaptive %+.2f%%, SBAR %+.3f%%, SBAR-8b %+.3f%%\n",
                overheadPercent(base, adaptiveStorage(g, 2, 0, 8)),
                overheadPercent(base, adaptiveStorage(g, 2, 8, 8)),
                overheadPercent(base, sbarStorage(g, 32, 0, 8)),
                overheadPercent(base, sbarStorage(g, 32, 8, 8)));
    return 0;
}
