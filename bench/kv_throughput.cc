/**
 * @file
 * Concurrent throughput of the sharded kv cache: a fixed operation
 * budget is split across each thread count in {1, 2, 4,
 * hardware_concurrency}, every thread driving its own seeded
 * Zipf(0.99) read-mostly stream (90% get / 10% put) against one
 * shared, prepopulated cache — the workload the lock-free read path
 * is shaped for. Each row reports ops/sec, the scaling factor versus
 * single-threaded, and the lock-free path's observable counters:
 * optimistic retry rate and slow-probe (mutex fallback) rate per
 * get. The machine's hardware concurrency is recorded so results
 * from core-starved CI containers read honestly.
 *
 * With ADCACHE_LAT=1 each round additionally reports merged latency
 * percentiles (p50/p95/p99/p999, log-bucketed) across all worker
 * threads,
 * split per op — including "get_slow", the gets that fell off the
 * lock-free path — so fast-path and fallback distributions are
 * separately visible. The timing cost itself lands inside the
 * measured region, so latency mode and throughput mode are separate
 * runs by design.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "kv/adaptive_kv_cache.hh"
#include "obs/latency.hh"
#include "obs/session.hh"
#include "obs/trace.hh"
#include "sim/report.hh"
#include "sim/runner.hh"
#include "workloads/key_stream.hh"

using namespace adcache;
using namespace adcache::kv;

namespace
{

constexpr std::uint64_t kTotalOps = 1'600'000;
constexpr std::uint64_t kKeySpace = 1 << 17;

KvConfig
cacheConfig()
{
    KvConfig c;
    c.capacity = 64 * 1024;
    c.numShards = 16;
    c.numBuckets = 1'024;
    c.bucketWays = 4;
    c.leaderEvery = 8;
    c.shadowTagBits = 16;
    c.scope = EvictionScope::Shard;
    c.selector = SelectorMode::Adaptive;
    c.keyHash = KeyHashKind::Mix;
    return c;
}

struct RoundResult
{
    double opsPerSec = 0.0;
    double retryPerGet = 0.0;    //!< optimistic re-walks / get
    double slowProbePerGet = 0.0; //!< mutex-fallback gets / get
    double getHitRate = 0.0;
};

/** One measured run over a fresh, prepopulated cache. */
RoundResult
runOne(unsigned threads)
{
    AdaptiveKvCache cache(cacheConfig());
    // Prepopulate the hot head of the Zipf distribution so the
    // read-mostly phase measures the hit path, not cold misses.
    {
        KeyStreamSpec spec;
        spec.pattern = KeyPattern::Zipf;
        spec.keySpace = kKeySpace;
        spec.skew = 0.99;
        spec.seed = 7;
        KeyStream stream(spec);
        for (std::uint64_t i = 0; i < cache.capacity(); ++i) {
            const KvKey key = stream.next();
            cache.put(key, "v");
        }
    }

    const std::uint64_t per_thread = kTotalOps / threads;
    // Every worker draws the same full Zipf distribution from its
    // own salted seed (KeyStreamSpec::forClient, non-disjoint) — the
    // shared-population contention profile the lock-free read path
    // is shaped for.
    KeyStreamSpec base;
    base.pattern = KeyPattern::Zipf;
    base.keySpace = kKeySpace;
    base.skew = 0.99;
    base.seed = 71;
    const auto start = std::chrono::steady_clock::now();
    runIndexed(threads, threads, [&](std::size_t t) {
        KeyStream stream(base.forClient(unsigned(t), threads));
        for (std::uint64_t i = 0; i < per_thread; ++i) {
            const KvKey key = stream.next();
            if (i % 10 == 0)
                cache.put(key, "v");
            else
                cache.get(key);
        }
    });
    const auto elapsed =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();

    RoundResult r;
    r.opsPerSec = double(per_thread * threads) / elapsed;
    KvShardStats total;
    for (unsigned s = 0; s < cache.numShards(); ++s)
        total.add(cache.shard(s).stats());
    if (total.gets > 0) {
        r.retryPerGet =
            double(total.readRetries) / double(total.gets);
        r.slowProbePerGet =
            double(total.slowProbes) / double(total.gets);
        r.getHitRate = double(total.getHits) / double(total.gets);
    }
    return r;
}

} // namespace

int
main()
{
    obs::Session session("kv_throughput");
    const unsigned hw = std::thread::hardware_concurrency();
    const bool latency = obs::latencyEnabled();

    // 1/2/4/hardware_concurrency, deduplicated and sorted — on a
    // 2-core box this is {1, 2, 4}; on a 32-core box {1, 2, 4, 32}.
    std::vector<unsigned> rounds = {1, 2, 4};
    if (hw > 0)
        rounds.push_back(hw);
    std::sort(rounds.begin(), rounds.end());
    rounds.erase(std::unique(rounds.begin(), rounds.end()),
                 rounds.end());

    ReportGrid grid;
    grid.experiment = "kv_throughput";
    grid.benchmarkHeader = "threads";
    grid.variantHeader = "cache";
    grid.addMeta("total_ops", std::to_string(kTotalOps));
    grid.addMeta("hardware_concurrency", std::to_string(hw));
    grid.addMeta("shards", "16");
    grid.addMeta("mix", "zipf0.99 90/10 get/put");
    grid.addMeta("latency_sampled", latency ? "true" : "false");

    // Warm-up run outside the measurement (page cache, allocator).
    runOne(1);

    double base = 0.0;
    for (const unsigned threads : rounds) {
        obs::resetLatency(); // per-round distributions
        const RoundResult r = runOne(threads);
        if (threads == 1)
            base = r.opsPerSec;
        const double scaling = base > 0.0 ? r.opsPerSec / base : 0.0;
        ReportRow &row =
            grid.add(std::to_string(threads), "adaptive16");
        row.stats.value("ops_per_sec", r.opsPerSec);
        row.stats.value("scaling_vs_1t", scaling);
        row.stats.value("get_hit_rate", r.getHitRate);
        row.stats.value("read_retries_per_get", r.retryPerGet);
        row.stats.value("slow_probes_per_get", r.slowProbePerGet);
        if (latency) {
            // Workers are joined, so the merge is race-free.
            for (unsigned op = 0; op < obs::kNumKvOps; ++op) {
                const auto o = static_cast<obs::KvOp>(op);
                const auto hist = obs::latencySnapshot(o);
                hist.registerInto(row.stats,
                                  std::string("lat.") +
                                      obs::kvOpName(o) + ".");
                if (reportFormat() == ReportFormat::Table &&
                    hist.count() > 0)
                    std::printf(
                        "  %u thread(s) %-8s p50 %6.0fns  p95 "
                        "%6.0fns  p99 %6.0fns  p999 %6.0fns  "
                        "(n=%llu)\n",
                        threads, obs::kvOpName(o),
                        hist.percentileNs(0.50),
                        hist.percentileNs(0.95),
                        hist.percentileNs(0.99),
                        hist.percentileNs(0.999),
                        static_cast<unsigned long long>(
                            hist.count()));
            }
        }
        if (reportFormat() == ReportFormat::Table)
            std::printf("%u thread(s): %10.0f ops/s  (%.2fx vs 1t, "
                        "%.4f retries/get, %.4f slow/get)\n",
                        threads, r.opsPerSec, scaling,
                        r.retryPerGet, r.slowProbePerGet);
    }

    if (reportFormat() == ReportFormat::Table) {
        std::printf("hardware concurrency: %u\n", hw);
        if (hw < 4)
            std::printf("note: fewer than 4 hardware cores — "
                        "thread scaling is bounded by the core "
                        "count, not by shard contention.\n");
    } else {
        emitReport(grid, reportFormat());
    }
    return 0;
}
