/**
 * @file
 * Concurrent throughput of the sharded kv cache: a fixed operation
 * budget is split across 1..8 threads (runIndexed pool), each thread
 * driving its own seeded Zipf stream of mixed gets and puts against
 * one shared cache. Shards are independent mutex domains, so
 * scaling is bounded by min(threads, shards, hardware cores); the
 * report records ops/sec per thread count, the scaling factor
 * versus single-threaded, and the machine's hardware concurrency so
 * results from core-starved CI containers read honestly.
 *
 * With ADCACHE_LAT=1 each round additionally reports merged
 * get/fetch/put latency percentiles (p50/p95/p99, log-bucketed)
 * across all worker threads; the timing cost itself lands inside the
 * measured region, so latency mode and throughput mode are separate
 * runs by design.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "kv/adaptive_kv_cache.hh"
#include "obs/latency.hh"
#include "obs/session.hh"
#include "obs/trace.hh"
#include "sim/report.hh"
#include "sim/runner.hh"
#include "workloads/key_stream.hh"

using namespace adcache;
using namespace adcache::kv;

namespace
{

constexpr std::uint64_t kTotalOps = 1'600'000;

KvConfig
cacheConfig()
{
    KvConfig c;
    c.capacity = 64 * 1024;
    c.numShards = 16;
    c.numBuckets = 1'024;
    c.bucketWays = 4;
    c.leaderEvery = 8;
    c.shadowTagBits = 16;
    c.scope = EvictionScope::Shard;
    c.selector = SelectorMode::Adaptive;
    c.keyHash = KeyHashKind::Mix;
    return c;
}

/** One measured run; @return ops per second. */
double
runOne(unsigned threads)
{
    AdaptiveKvCache cache(cacheConfig());
    const std::uint64_t per_thread = kTotalOps / threads;

    const auto start = std::chrono::steady_clock::now();
    runIndexed(threads, threads, [&](std::size_t t) {
        KeyStreamSpec spec;
        spec.pattern = KeyPattern::Zipf;
        spec.keySpace = 1 << 18;
        spec.skew = 0.9;
        spec.seed = 71 + t;
        KeyStream stream(spec);
        for (std::uint64_t i = 0; i < per_thread; ++i) {
            const KvKey key = stream.next();
            if (i % 4 == 0)
                cache.put(key, "v");
            else
                cache.get(key);
        }
    });
    const auto elapsed =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    return double(per_thread * threads) / elapsed;
}

} // namespace

int
main()
{
    obs::Session session("kv_throughput");
    const unsigned hw = std::thread::hardware_concurrency();
    const bool latency = obs::latencyEnabled();

    ReportGrid grid;
    grid.experiment = "kv_throughput";
    grid.benchmarkHeader = "threads";
    grid.variantHeader = "cache";
    grid.addMeta("total_ops", std::to_string(kTotalOps));
    grid.addMeta("hardware_concurrency", std::to_string(hw));
    grid.addMeta("shards", "16");
    grid.addMeta("latency_sampled", latency ? "true" : "false");

    // Warm-up run outside the measurement (page cache, allocator).
    runOne(1);

    double base = 0.0;
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
        obs::resetLatency(); // per-round distributions
        const double ops = runOne(threads);
        if (threads == 1)
            base = ops;
        const double scaling = base > 0.0 ? ops / base : 0.0;
        ReportRow &row =
            grid.add(std::to_string(threads), "adaptive16");
        row.stats.value("ops_per_sec", ops);
        row.stats.value("scaling_vs_1t", scaling);
        if (latency) {
            // Workers are joined, so the merge is race-free.
            for (unsigned op = 0; op < obs::kNumKvOps; ++op) {
                const auto o = static_cast<obs::KvOp>(op);
                const auto hist = obs::latencySnapshot(o);
                hist.registerInto(row.stats,
                                  std::string("lat.") +
                                      obs::kvOpName(o) + ".");
                if (reportFormat() == ReportFormat::Table &&
                    hist.count() > 0)
                    std::printf(
                        "  %u thread(s) %-5s p50 %6.0fns  p95 "
                        "%6.0fns  p99 %6.0fns  (n=%llu)\n",
                        threads, obs::kvOpName(o),
                        hist.percentileNs(0.50),
                        hist.percentileNs(0.95),
                        hist.percentileNs(0.99),
                        static_cast<unsigned long long>(
                            hist.count()));
            }
        }
        if (reportFormat() == ReportFormat::Table)
            std::printf("%u thread(s): %10.0f ops/s  (%.2fx vs 1t)\n",
                        threads, ops, scaling);
    }

    if (reportFormat() == ReportFormat::Table) {
        std::printf("hardware concurrency: %u\n", hw);
        if (hw < 8)
            std::printf("note: fewer than 8 hardware cores — "
                        "thread scaling is bounded by the core "
                        "count, not by shard contention.\n");
    } else {
        emitReport(grid, reportFormat());
    }
    return 0;
}
