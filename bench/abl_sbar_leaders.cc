/**
 * @file
 * Ablation: number of SBAR leader sets. More leaders give the global
 * selector more evidence (and per-set adaptivity in more sets) at a
 * proportional storage cost.
 */

#include "common.hh"
#include "core/overhead.hh"

using namespace adcache;

int
main()
{
    const std::vector<unsigned> leader_counts = {8, 16, 32, 64, 128};

    bench::Experiment e;
    e.title = "Ablation - SBAR leader count";
    e.benchmarks = primaryBenchmarks();
    for (unsigned n : leader_counts) {
        SbarConfig c;
        c.numLeaders = n;
        e.variants.push_back(L2Spec::fromSbar(c));
        e.variantNames.push_back("sbar-" + std::to_string(n));
    }
    e.variants.push_back(L2Spec::lru());
    e.variantNames.push_back("LRU");
    e.variants.push_back(L2Spec::adaptiveLruLfu());
    e.variantNames.push_back("Adaptive");

    const auto rows = bench::runAndReport(e);
    if (!bench::textMode())
        return 0;

    const auto avg = averageOf(rows, metricL2Mpki);
    const double lru = avg[leader_counts.size()];
    const double full = avg[leader_counts.size() + 1];

    const auto g = CacheGeometry::fromSize(512 * 1024, 8, 64);
    const auto base = conventionalStorage(g);

    TextTable table(
        {"leaders", "avg MPKI", "red vs LRU %", "storage +%"});
    for (std::size_t v = 0; v < leader_counts.size(); ++v) {
        table.addRow(
            {std::to_string(leader_counts[v]),
             TextTable::num(avg[v], 2),
             TextTable::num(percentImprovement(lru, avg[v]), 2),
             TextTable::num(
                 overheadPercent(base,
                                 sbarStorage(g, leader_counts[v], 0,
                                             8)),
                 3)});
    }
    table.print();
    std::printf("reference: LRU %.2f MPKI, full adaptive %.2f MPKI "
                "(paper uses 32 leaders)\n",
                lru, full);
    return 0;
}
