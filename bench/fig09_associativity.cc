/**
 * @file
 * Figure 9: benefit of LRU/LFU adaptivity versus associativity at a
 * fixed 512KB capacity (4/8/16/32 ways). Paper: the benefit persists
 * across the range and grows slightly for highly-associative caches.
 */

#include "common.hh"

using namespace adcache;

int
main()
{
    const std::vector<unsigned> assocs = {4u, 8u, 16u, 32u};

    bench::Experiment e;
    e.title = "Fig. 9 - benefit vs associativity (512KB)";
    e.benchmarks = primaryBenchmarks();
    for (unsigned assoc : assocs) {
        e.variants.push_back(L2Spec::lru(512 * 1024, assoc));
        e.variants.push_back(
            L2Spec::adaptiveLruLfu(0, 512 * 1024, assoc));
        e.variantNames.push_back("LRU-" + std::to_string(assoc) + "w");
        e.variantNames.push_back("Ad-" + std::to_string(assoc) + "w");
    }
    e.timed = true;
    const auto rows = bench::runAndReport(e);
    if (!bench::textMode())
        return 0;

    const auto cpi = averageOf(rows, metricCpi);
    const auto mpki = averageOf(rows, metricL2Mpki);

    TextTable table({"assoc", "LRU CPI", "Adapt CPI", "CPI impr %",
                     "LRU MPKI", "Adapt MPKI", "miss red %"});
    for (std::size_t i = 0; i < assocs.size(); ++i) {
        const std::size_t lru = 2 * i, ad = 2 * i + 1;
        table.addRow({std::to_string(assocs[i]),
                      TextTable::num(cpi[lru], 3),
                      TextTable::num(cpi[ad], 3),
                      TextTable::num(
                          percentImprovement(cpi[lru], cpi[ad]), 2),
                      TextTable::num(mpki[lru], 2),
                      TextTable::num(mpki[ad], 2),
                      TextTable::num(
                          percentImprovement(mpki[lru], mpki[ad]),
                          2)});
    }
    table.print();
    std::printf("(paper: ~12-15%% CPI and ~19-23%% miss reduction, "
                "rising slightly at 16/32 ways)\n");
    return 0;
}
