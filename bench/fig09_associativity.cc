/**
 * @file
 * Figure 9: benefit of LRU/LFU adaptivity versus associativity at a
 * fixed 512KB capacity (4/8/16/32 ways). Paper: the benefit persists
 * across the range and grows slightly for highly-associative caches.
 */

#include "common.hh"

using namespace adcache;

int
main()
{
    printConfigBanner(SystemConfig{},
                      "Fig. 9 - benefit vs associativity (512KB)");

    TextTable table({"assoc", "LRU CPI", "Adapt CPI", "CPI impr %",
                     "LRU MPKI", "Adapt MPKI", "miss red %"});

    for (unsigned assoc : {4u, 8u, 16u, 32u}) {
        const std::vector<L2Spec> variants = {
            L2Spec::lru(512 * 1024, assoc),
            L2Spec::adaptiveLruLfu(0, 512 * 1024, assoc),
        };
        const auto rows = runSuite(primaryBenchmarks(), variants,
                                   instrBudget(), /*timed=*/true);
        const auto cpi = averageOf(rows, metricCpi);
        const auto mpki = averageOf(rows, metricL2Mpki);
        table.addRow({std::to_string(assoc),
                      TextTable::num(cpi[0], 3),
                      TextTable::num(cpi[1], 3),
                      TextTable::num(percentImprovement(cpi[0], cpi[1]),
                                     2),
                      TextTable::num(mpki[0], 2),
                      TextTable::num(mpki[1], 2),
                      TextTable::num(
                          percentImprovement(mpki[0], mpki[1]), 2)});
        std::printf("... %u-way done\n", assoc);
    }
    table.print();
    std::printf("(paper: ~12-15%% CPI and ~19-23%% miss reduction, "
                "rising slightly at 16/32 ways)\n");
    return 0;
}
