/**
 * @file
 * Figure 6: is adaptivity better than just buying a bigger cache?
 * Compares the partially-tagged adaptive 512KB cache (+4.0 % storage)
 * against conventional LRU caches grown to 9 ways (576KB, +12.5 %)
 * and 10 ways (640KB, +25 %). Paper: the adaptive cache beats even
 * the 10-way cache by ~2.8 % average CPI at a sixth of the overhead.
 */

#include "common.hh"
#include "core/overhead.hh"

using namespace adcache;

int
main()
{
    bench::Experiment e;
    e.title = "Fig. 6 - adaptive vs larger conventional caches";
    e.benchmarks = primaryBenchmarks();
    e.variants = {
        L2Spec::adaptiveLruLfu(0),
        L2Spec::adaptiveLruLfu(8),
        L2Spec::lru(512 * 1024, 8),
        L2Spec::lru(576 * 1024, 9),
        L2Spec::lru(640 * 1024, 10),
    };
    e.variantNames = {"Ad-full", "Ad-8bit", "LRU-512K/8w",
                      "LRU-576K/9w", "LRU-640K/10w"};
    e.timed = true;
    e.metrics = {{"CPI", metricCpi, 3}};
    const auto rows = bench::runAndReport(e);
    if (!bench::textMode())
        return 0;

    // Storage context per organisation.
    const auto base =
        conventionalStorage(CacheGeometry::fromSize(512 * 1024, 8, 64));
    std::printf("\nstorage overhead vs conventional 512KB: adaptive "
                "8-bit %+.1f%%, 9-way %+.1f%%, 10-way %+.1f%%\n",
                overheadPercent(base,
                                adaptiveStorage(
                                    CacheGeometry::fromSize(512 * 1024,
                                                            8, 64),
                                    2, 8, 8)),
                overheadPercent(base,
                                conventionalStorage(
                                    CacheGeometry::fromSize(576 * 1024,
                                                            9, 64))),
                overheadPercent(base,
                                conventionalStorage(
                                    CacheGeometry::fromSize(640 * 1024,
                                                            10, 64))));

    const auto avg = averageOf(rows, metricCpi);
    bench::paperVsMeasured(
        "8-bit adaptive CPI advantage over 640KB 10-way LRU", "2.8%",
        percentImprovement(avg[4], avg[1]), "%");
    bench::paperVsMeasured(
        "8-bit adaptive CPI advantage over 576KB 9-way LRU", ">0%",
        percentImprovement(avg[3], avg[1]), "%");
    return 0;
}
