/**
 * @file
 * Figure 3: L2 misses-per-thousand-instructions for every primary-set
 * benchmark under the adaptive LRU/LFU policy and its components
 * (512KB, 8-way, full tags). Paper headline: adaptive cuts the
 * average MPKI by ~19 % vs LRU and tracks the better component
 * per benchmark.
 */

#include "common.hh"

using namespace adcache;

int
main()
{
    bench::Experiment e;
    e.title = "Fig. 3 - L2 MPKI, adaptive vs LRU vs LFU";
    e.benchmarks = primaryBenchmarks();
    e.variants = {
        L2Spec::adaptiveLruLfu(),
        L2Spec::policy(PolicyType::LFU),
        L2Spec::lru(),
    };
    e.variantNames = {"Adaptive", "LFU", "LRU"};
    e.metrics = {{"MPKI", metricL2Mpki, 2}};
    const auto rows = bench::runAndReport(e);
    if (!bench::textMode())
        return 0;

    const auto avg = averageOf(rows, metricL2Mpki);
    bench::paperVsMeasured(
        "avg MPKI reduction, adaptive vs LRU (primary set)", "-19.0%",
        -percentImprovement(avg[2], avg[0]), "%");

    // Tracking quality: adaptive vs the per-benchmark better policy.
    double worst_overshoot = 0;
    std::string worst_bench = "-";
    for (const auto &row : rows) {
        const double best = std::min(row.results[1].l2Mpki,
                                     row.results[2].l2Mpki);
        if (best <= 0)
            continue;
        const double overshoot =
            100.0 * (row.results[0].l2Mpki - best) / best;
        if (overshoot > worst_overshoot) {
            worst_overshoot = overshoot;
            worst_bench = row.benchmark;
        }
    }
    std::printf("worst adaptive overshoot over min(LRU,LFU): %.1f%% "
                "(%s)\n",
                worst_overshoot, worst_bench.c_str());
    return 0;
}
