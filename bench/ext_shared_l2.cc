/**
 * @file
 * Extension (paper future work, Sec. 6): adaptive replacement in a
 * shared last-level cache under multi-programmed mixes. "The
 * combination of memory traffic from dissimilar threads or
 * applications will provide even more opportunities for the adaptive
 * mechanism to help performance." Mixes pair LRU-friendly,
 * LFU-friendly and neutral programs on a shared 512KB L2. The
 * (mix x variant) grid runs in parallel via runIndexed.
 */

#include "common.hh"
#include "sim/multicore.hh"

using namespace adcache;

int
main()
{
    bench::banner("Extension - shared L2, multi-programmed mixes");

    struct Mix
    {
        const char *name;
        std::vector<std::string> workloads;
    };
    const std::vector<Mix> mixes = {
        {"lfu+lru   (art-1, lucas)", {"art-1", "lucas"}},
        {"lfu+lfu   (art-1, x11quake-1)", {"art-1", "x11quake-1"}},
        {"lru+lru   (lucas, bzip2)", {"lucas", "bzip2"}},
        {"mixed x4  (art-1, lucas, mcf, parser)",
         {"art-1", "lucas", "mcf", "parser"}},
        {"neutral   (swim, parser)", {"swim", "parser"}},
    };
    const std::vector<L2Spec> variants = {
        L2Spec::lru(), L2Spec::policy(PolicyType::LFU),
        L2Spec::adaptiveLruLfu()};
    const std::vector<std::string> variant_names = {"LRU", "LFU",
                                                    "Adaptive"};

    // Flatten the (mix x variant) grid and run it in parallel; cell
    // i covers mix i / variants.size(), variant i % variants.size().
    std::vector<SharedL2Result> cells(mixes.size() * variants.size());
    runIndexed(cells.size(), effectiveJobs(cells.size(), runnerJobs()),
               [&](std::size_t i) {
                   SharedL2Config config;
                   config.workloads =
                       mixes[i / variants.size()].workloads;
                   config.l2 = variants[i % variants.size()];
                   cells[i] = runSharedL2(config, instrBudget());
               });
    auto cell = [&](std::size_t mix, std::size_t v)
        -> const SharedL2Result & {
        return cells[mix * variants.size() + v];
    };

    if (!bench::textMode()) {
        ReportGrid grid;
        grid.experiment =
            "Extension - shared L2, multi-programmed mixes";
        grid.benchmarkHeader = "mix";
        grid.addMeta("instr_budget", std::to_string(instrBudget()));
        grid.addMeta("jobs", std::to_string(runnerJobs()));
        for (std::size_t m = 0; m < mixes.size(); ++m) {
            for (std::size_t v = 0; v < variants.size(); ++v) {
                const auto &res = cell(m, v);
                ReportRow &row =
                    grid.add(mixes[m].name, variant_names[v]);
                row.stats.text("l2_label", res.l2Label);
                row.stats.counter("total_instructions",
                                  res.totalInstructions);
                row.stats.value("l2_mpki", res.l2Mpki);
                res.l2.registerInto(row.stats, "l2.");
                for (std::size_t c = 0; c < res.cores.size(); ++c) {
                    const std::string p =
                        "core" + std::to_string(c) + ".";
                    row.stats.text(p + "workload",
                                   res.cores[c].workload);
                    row.stats.counter(p + "instructions",
                                      res.cores[c].instructions);
                    row.stats.value(p + "l2_mpki",
                                    res.cores[c].l2Mpki);
                }
            }
        }
        bench::report(grid);
        return 0;
    }

    TextTable table({"mix", "LRU MPKI", "LFU MPKI", "Adapt MPKI",
                     "red vs LRU %"});
    RunningStat reductions;
    for (std::size_t m = 0; m < mixes.size(); ++m) {
        const double red = percentImprovement(cell(m, 0).l2Mpki,
                                              cell(m, 2).l2Mpki);
        reductions.add(red);
        table.addRow({mixes[m].name,
                      TextTable::num(cell(m, 0).l2Mpki, 2),
                      TextTable::num(cell(m, 1).l2Mpki, 2),
                      TextTable::num(cell(m, 2).l2Mpki, 2),
                      TextTable::num(red, 2)});
    }
    table.print();
    std::printf("\naverage shared-L2 miss reduction across mixes: "
                "%.1f%% (hypothesis: at least the single-core "
                "benefit)\n",
                reductions.mean());

    // Per-core fairness view of the headline mix (grid cell 0 under
    // the adaptive variant).
    const auto &res = cell(0, 2);
    std::printf("\nper-core view of art-1 + lucas on %s:\n",
                res.l2Label.c_str());
    for (const auto &core : res.cores)
        std::printf("  %-10s %8llu instrs, L2 MPKI %.2f\n",
                    core.workload.c_str(),
                    static_cast<unsigned long long>(
                        core.instructions),
                    core.l2Mpki);
    return 0;
}
