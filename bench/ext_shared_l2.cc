/**
 * @file
 * Extension (paper future work, Sec. 6): adaptive replacement in a
 * shared last-level cache under multi-programmed mixes. "The
 * combination of memory traffic from dissimilar threads or
 * applications will provide even more opportunities for the adaptive
 * mechanism to help performance." Mixes pair LRU-friendly,
 * LFU-friendly and neutral programs on a shared 512KB L2.
 */

#include "common.hh"
#include "sim/multicore.hh"

using namespace adcache;

int
main()
{
    printConfigBanner(SystemConfig{},
                      "Extension - shared L2, multi-programmed mixes");

    struct Mix
    {
        const char *name;
        std::vector<std::string> workloads;
    };
    const Mix mixes[] = {
        {"lfu+lru   (art-1, lucas)", {"art-1", "lucas"}},
        {"lfu+lfu   (art-1, x11quake-1)", {"art-1", "x11quake-1"}},
        {"lru+lru   (lucas, bzip2)", {"lucas", "bzip2"}},
        {"mixed x4  (art-1, lucas, mcf, parser)",
         {"art-1", "lucas", "mcf", "parser"}},
        {"neutral   (swim, parser)", {"swim", "parser"}},
    };

    TextTable table({"mix", "LRU MPKI", "LFU MPKI", "Adapt MPKI",
                     "red vs LRU %"});
    RunningStat reductions;
    for (const auto &mix : mixes) {
        SharedL2Config config;
        config.workloads = mix.workloads;
        double vals[3] = {0, 0, 0};
        const L2Spec variants[] = {
            L2Spec::lru(), L2Spec::policy(PolicyType::LFU),
            L2Spec::adaptiveLruLfu()};
        for (int v = 0; v < 3; ++v) {
            config.l2 = variants[v];
            vals[v] =
                runSharedL2(config, instrBudget()).l2Mpki;
        }
        const double red = percentImprovement(vals[0], vals[2]);
        reductions.add(red);
        table.addRow({mix.name, TextTable::num(vals[0], 2),
                      TextTable::num(vals[1], 2),
                      TextTable::num(vals[2], 2),
                      TextTable::num(red, 2)});
        std::printf("... %s done\n", mix.name);
    }
    table.print();
    std::printf("\naverage shared-L2 miss reduction across mixes: "
                "%.1f%% (hypothesis: at least the single-core "
                "benefit)\n",
                reductions.mean());

    // Per-core fairness view of the headline mix.
    SharedL2Config config;
    config.workloads = {"art-1", "lucas"};
    config.l2 = L2Spec::adaptiveLruLfu();
    const auto res = runSharedL2(config, instrBudget());
    std::printf("\nper-core view of art-1 + lucas on %s:\n",
                res.l2Label.c_str());
    for (const auto &core : res.cores)
        std::printf("  %-10s %8llu instrs, L2 MPKI %.2f\n",
                    core.workload.c_str(),
                    static_cast<unsigned long long>(
                        core.instructions),
                    core.l2Mpki);
    return 0;
}
