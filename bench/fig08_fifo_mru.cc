/**
 * @file
 * Figure 8: generality of the scheme — adapting between FIFO and MRU.
 * MRU alone is usually terrible but wins on linear-loop behaviour
 * (art, one gcc input); the adaptive policy must tightly track the
 * better of the two everywhere.
 */

#include "common.hh"

using namespace adcache;

int
main()
{
    bench::Experiment e;
    e.title = "Fig. 8 - FIFO/MRU adaptivity, L2 MPKI";
    e.benchmarks = primaryBenchmarks();
    e.variants = {
        L2Spec::adaptiveDual(PolicyType::FIFO, PolicyType::MRU),
        L2Spec::policy(PolicyType::FIFO),
        L2Spec::policy(PolicyType::MRU),
    };
    e.variantNames = {"FMAdaptive", "FIFO", "MRU"};
    e.metrics = {{"MPKI", metricL2Mpki, 2}};
    const auto rows = bench::runAndReport(e);
    if (!bench::textMode())
        return 0;

    // Where does MRU win, and does the adaptive policy follow?
    std::printf("\nbenchmarks where MRU beats FIFO (paper: art and one"
                " gcc input):\n");
    double worst_overshoot = 0;
    std::string worst_bench = "-";
    for (const auto &row : rows) {
        const double fifo = row.results[1].l2Mpki;
        const double mru = row.results[2].l2Mpki;
        const double adaptive = row.results[0].l2Mpki;
        if (mru < fifo * 0.98)
            std::printf("  %-12s FIFO %.2f  MRU %.2f  adaptive %.2f\n",
                        row.benchmark.c_str(), fifo, mru, adaptive);
        const double best = std::min(fifo, mru);
        if (best > 0) {
            const double overshoot = 100.0 * (adaptive - best) / best;
            if (overshoot > worst_overshoot) {
                worst_overshoot = overshoot;
                worst_bench = row.benchmark;
            }
        }
    }
    std::printf("worst adaptive overshoot over min(FIFO,MRU): %.1f%% "
                "(%s)\n",
                worst_overshoot, worst_bench.c_str());

    const auto avg = averageOf(rows, metricL2Mpki);
    std::printf("averages: FMAdaptive %.2f  FIFO %.2f  MRU %.2f "
                "(paper: adaptive tracks the better component; "
                "LRU+LFU remains the best combination overall)\n",
                avg[0], avg[1], avg[2]);
    return 0;
}
