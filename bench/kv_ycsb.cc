/**
 * @file
 * YCSB A–F over the serving subsystem: hosts a KvService in-process
 * and drives it with the multi-client ycsb driver over either
 * transport — the deterministic loopback (default) or a real
 * KvServer socket round-trip (--transport socket: the server binds
 * an ephemeral port on 127.0.0.1 and every client speaks the wire
 * protocol through its own KvClient). One report row per workload
 * with ops/s and per-op-class p50/p95/p99/p999, via the standard
 * report path (ADCACHE_REPORT=json|csv|table).
 *
 * Scenario injection rides the same flag surface the SLO gate uses:
 *   kv_ycsb --workload b --scenario backend_slowdown
 * arms the read-through loader stall halfway through the run and the
 * read p99 shows the backend's trouble — the demonstration wired
 * into perf_regress --slo.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common.hh"
#include "net/server.hh"
#include "net/service.hh"
#include "sim/report.hh"
#include "ycsb/ycsb.hh"

using namespace adcache;

namespace
{

struct Options
{
    std::string workloads = "abcdef";
    std::string transport = "loopback";
    std::vector<unsigned> pipelineDepths = {1};
    unsigned clients = 4;
    std::uint64_t opsPerClient = 50'000;
    std::uint64_t records = 1 << 20;
    double zipfSkew = 0.99;
    std::size_t valueMin = 64;
    std::size_t valueMax = 256;
    std::uint32_t ttl = 0;
    double deleteRatio = 0.0;
    ycsb::Scenario scenario = ycsb::Scenario::None;
    std::uint32_t slowdownUs = 1000;
    unsigned serverWorkers = 2;
    std::uint64_t seed = 1;
};

int
usage()
{
    std::fprintf(
        stderr,
        "usage: kv_ycsb [--workload a..f|abcdef] "
        "[--transport loopback|socket]\n"
        "               [--clients N] [--ops N] [--records N] "
        "[--skew S]\n"
        "               [--value-min B] [--value-max B] [--ttl T] "
        "[--deletes R]\n"
        "               [--scenario none|hot_key_storm|"
        "backend_slowdown|shard_loss]\n"
        "               [--slowdown-us N] [--workers N] "
        "[--seed N] [--pipeline D1,D2,...]\n");
    return 2;
}

/** "1,4,16" -> {1, 4, 16}; empty on malformed input. */
std::vector<unsigned>
parseDepths(const std::string &spec)
{
    std::vector<unsigned> depths;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        char *end = nullptr;
        const unsigned long d =
            std::strtoul(spec.c_str() + pos, &end, 10);
        if (end == spec.c_str() + pos || d == 0)
            return {};
        depths.push_back(unsigned(d));
        pos = std::size_t(end - spec.c_str());
        if (pos < spec.size()) {
            if (spec[pos] != ',')
                return {};
            ++pos;
        }
    }
    return depths;
}

ycsb::YcsbResult
runWorkload(char workload, unsigned depth, const Options &opt)
{
    net::KvServiceConfig sc;
    sc.readThrough = true;
    sc.loaderValues = ValueSpec{opt.valueMin, opt.valueMax};
    sc.loaderTtl = opt.ttl;
    net::KvService service(sc);

    ycsb::YcsbConfig yc;
    yc.workload = workload;
    yc.records = opt.records;
    yc.opsPerClient = opt.opsPerClient;
    yc.clients = opt.clients;
    yc.zipfSkew = opt.zipfSkew;
    yc.values = ValueSpec{opt.valueMin, opt.valueMax};
    yc.ttl = opt.ttl;
    yc.deleteRatio = opt.deleteRatio;
    yc.pipelineDepth = depth;
    yc.scenario = opt.scenario;
    yc.slowdownUs = opt.slowdownUs;
    yc.seed = opt.seed;

    if (opt.transport == "socket") {
        net::KvServerConfig server_conf;
        server_conf.workers = opt.serverWorkers;
        net::KvServer server(service, server_conf);
        if (!server.start()) {
            std::fprintf(stderr, "kv_ycsb: server start failed: %s\n",
                         server.lastError().c_str());
            std::exit(1);
        }
        ycsb::YcsbDriver driver(
            yc, &service, [&server](unsigned) {
                return ycsb::makeSocketConnection("127.0.0.1",
                                                  server.port());
            });
        ycsb::YcsbResult result = driver.run();
        server.stop();
        return result;
    }
    ycsb::YcsbDriver driver(yc, &service, [&service](unsigned) {
        return ycsb::makeLoopbackConnection(service);
    });
    return driver.run();
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_next = i + 1 < argc;
        if (arg == "--workload" && has_next) {
            opt.workloads = argv[++i];
        } else if (arg == "--transport" && has_next) {
            opt.transport = argv[++i];
        } else if (arg == "--clients" && has_next) {
            opt.clients = unsigned(std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--ops" && has_next) {
            opt.opsPerClient = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--records" && has_next) {
            opt.records = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--skew" && has_next) {
            opt.zipfSkew = std::strtod(argv[++i], nullptr);
        } else if (arg == "--value-min" && has_next) {
            opt.valueMin = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--value-max" && has_next) {
            opt.valueMax = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--ttl" && has_next) {
            opt.ttl =
                std::uint32_t(std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--deletes" && has_next) {
            opt.deleteRatio = std::strtod(argv[++i], nullptr);
        } else if (arg == "--scenario" && has_next) {
            const std::string s = argv[++i];
            if (s == "none")
                opt.scenario = ycsb::Scenario::None;
            else if (s == "hot_key_storm")
                opt.scenario = ycsb::Scenario::HotKeyStorm;
            else if (s == "backend_slowdown")
                opt.scenario = ycsb::Scenario::BackendSlowdown;
            else if (s == "shard_loss")
                opt.scenario = ycsb::Scenario::ShardLoss;
            else
                return usage();
        } else if (arg == "--slowdown-us" && has_next) {
            opt.slowdownUs =
                std::uint32_t(std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--workers" && has_next) {
            opt.serverWorkers =
                unsigned(std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--seed" && has_next) {
            opt.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--pipeline" && has_next) {
            opt.pipelineDepths = parseDepths(argv[++i]);
            if (opt.pipelineDepths.empty())
                return usage();
        } else {
            return usage();
        }
    }
    if (opt.transport != "loopback" && opt.transport != "socket")
        return usage();
    for (const char w : opt.workloads)
        if (w < 'a' || w > 'f')
            return usage();

    ReportGrid grid;
    grid.experiment = "kv_ycsb";
    grid.benchmarkHeader = "workload";
    grid.variantHeader = "transport";
    grid.addMeta("clients", std::to_string(opt.clients));
    grid.addMeta("ops_per_client", std::to_string(opt.opsPerClient));
    grid.addMeta("records", std::to_string(opt.records));
    grid.addMeta("scenario", ycsb::scenarioName(opt.scenario));

    for (const char w : opt.workloads) {
        for (const unsigned depth : opt.pipelineDepths) {
            const ycsb::YcsbResult r = runWorkload(w, depth, opt);
            const std::string variant =
                depth > 1 ? opt.transport + "-p" +
                                std::to_string(depth)
                          : opt.transport;
            ReportRow &row = grid.add(std::string(1, w), variant);
            r.registerInto(row.stats);
            if (bench::textMode()) {
                // The read-dominated class: Read, MGet under
                // pipelining, or Scan for workload E (same fallback
                // readP99Ns uses).
                const ycsb::OpClassResult &read =
                    r.of(ycsb::OpClass::Read).latency.count()
                        ? r.of(ycsb::OpClass::Read)
                    : r.of(ycsb::OpClass::MGet).latency.count()
                        ? r.of(ycsb::OpClass::MGet)
                        : r.of(ycsb::OpClass::Scan);
                std::printf(
                    "workload %c (%s): %10.0f ops/s  "
                    "read p50 %.0fns p99 %.0fns p999 %.0fns  "
                    "errors %llu\n",
                    w, variant.c_str(), r.opsPerSec(),
                    read.latency.percentileNs(0.50), r.readP99Ns(),
                    read.latency.percentileNs(0.999),
                    static_cast<unsigned long long>(r.errors));
            }
        }
    }
    if (!bench::textMode())
        bench::report(grid);
    return 0;
}
