/**
 * @file
 * Reproduces the storage accounting of Sec. 3.1-3.2 and Sec. 4.7:
 * conventional vs adaptive (full / partial tags) vs SBAR overheads,
 * and the cost of simply growing a conventional cache (Fig. 6's
 * premise). Pure arithmetic — no simulation — so the grid is built
 * directly and emitted in every format via the common report path.
 */

#include "common.hh"
#include "core/overhead.hh"

using namespace adcache;

int
main()
{
    bench::banner("Sec. 3 storage overhead model");

    const auto g64 = CacheGeometry::fromSize(512 * 1024, 8, 64);
    const auto g128 = CacheGeometry::fromSize(512 * 1024, 8, 128);
    const auto base64 = conventionalStorage(g64);
    const auto base128 = conventionalStorage(g128);

    ReportGrid grid;
    grid.experiment = "Sec. 3 storage overhead model";
    grid.benchmarkHeader = "organisation";
    auto row = [&](const std::string &name, const StorageBits &s,
                   const StorageBits &base) {
        ReportRow &r = grid.add(name, "");
        r.stats.value("total_kb", s.totalKB());
        r.stats.value("overhead_pct", overheadPercent(base, s));
    };

    row("conventional 512KB 8-way (64B lines)", base64, base64);
    row("adaptive, full tags, m=8", adaptiveStorage(g64, 2, 0, 8),
        base64);
    for (unsigned bits : {12u, 10u, 8u, 6u, 4u})
        row("adaptive, " + std::to_string(bits) + "-bit partial tags",
            adaptiveStorage(g64, 2, bits, 8), base64);
    row("adaptive, 8-bit tags, 128B lines",
        adaptiveStorage(g128, 2, 8, 8), base128);
    row("5-policy adaptive, 8-bit tags, m=16",
        adaptiveStorage(g64, 5, 8, 16), base64);
    row("conventional 576KB 9-way",
        conventionalStorage(CacheGeometry::fromSize(576 * 1024, 9, 64)),
        base64);
    row("conventional 640KB 10-way",
        conventionalStorage(CacheGeometry::fromSize(640 * 1024, 10, 64)),
        base64);
    row("SBAR, 32 full-tag leaders", sbarStorage(g64, 32, 0, 8),
        base64);
    row("SBAR, 32 8-bit leaders", sbarStorage(g64, 32, 8, 8), base64);
    bench::report(grid);

    if (!bench::textMode())
        return 0;

    const auto full = adaptiveStorage(g64, 2, 0, 8);
    const auto partial = adaptiveStorage(g64, 2, 8, 8);
    bench::paperVsMeasured("full-tag adaptive overhead", "+9.9%",
                           overheadPercent(base64, full), "%");
    bench::paperVsMeasured("8-bit adaptive overhead", "+4.0%",
                           overheadPercent(base64, partial), "%");
    bench::paperVsMeasured("8-bit adaptive overhead, 128B lines",
                           "+2.1%",
                           overheadPercent(base128,
                                           adaptiveStorage(g128, 2, 8,
                                                           8)),
                           "%");
    bench::paperVsMeasured("SBAR full-tag overhead", "+0.16%",
                           overheadPercent(base64,
                                           sbarStorage(g64, 32, 0, 8)),
                           "%");
    return 0;
}
