/**
 * @file
 * Sec. 4.6: adaptivity at the L1 level. Paper: an adaptive 16KB
 * I-cache cuts its MPKI by ~12 %, the adaptive L1 data cache moves
 * by less than 1 % (capacity-dominated), and neither translates into
 * a meaningful CPI change (<0.1 %) because the out-of-order core
 * hides the short L1 miss latencies.
 */

#include "common.hh"

using namespace adcache;

int
main()
{
    SystemConfig baseline;
    SystemConfig adaptive_l1 = baseline;
    adaptive_l1.adaptiveL1i = true;
    adaptive_l1.adaptiveL1d = true;

    bench::Experiment e;
    e.title = "Sec. 4.6 - adaptive L1 caches";
    e.benchmarks = primaryBenchmarks();
    e.configs = {{"baseline", baseline},
                 {"adaptive-L1", adaptive_l1}};
    e.timed = true;
    const auto rows = bench::runAndReport(e);
    if (!bench::textMode())
        return 0;

    RunningStat l1i_base, l1i_adapt, l1d_base, l1d_adapt;
    RunningStat cpi_base, cpi_adapt;
    for (const auto &row : rows) {
        l1i_base.add(row.results[0].l1iMpki);
        l1i_adapt.add(row.results[1].l1iMpki);
        l1d_base.add(row.results[0].l1dMpki);
        l1d_adapt.add(row.results[1].l1dMpki);
        cpi_base.add(row.results[0].cpi);
        cpi_adapt.add(row.results[1].cpi);
    }

    TextTable table({"cache", "LRU MPKI", "adaptive MPKI", "red %"});
    table.addRow({"L1 instruction", TextTable::num(l1i_base.mean(), 3),
                  TextTable::num(l1i_adapt.mean(), 3),
                  TextTable::num(percentImprovement(l1i_base.mean(),
                                                    l1i_adapt.mean()),
                                 2)});
    table.addRow({"L1 data", TextTable::num(l1d_base.mean(), 3),
                  TextTable::num(l1d_adapt.mean(), 3),
                  TextTable::num(percentImprovement(l1d_base.mean(),
                                                    l1d_adapt.mean()),
                                 2)});
    table.print();

    bench::paperVsMeasured("L1I MPKI reduction", "~12%",
                           percentImprovement(l1i_base.mean(),
                                              l1i_adapt.mean()),
                           "%");
    bench::paperVsMeasured("L1D MPKI reduction", "<1%",
                           percentImprovement(l1d_base.mean(),
                                              l1d_adapt.mean()),
                           "%");
    bench::paperVsMeasured("CPI change from adaptive L1s", "<0.1%",
                           percentImprovement(cpi_base.mean(),
                                              cpi_adapt.mean()),
                           "%");
    return 0;
}
