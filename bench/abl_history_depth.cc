/**
 * @file
 * Ablation: miss-history window depth m. The paper sets m to the
 * associativity (8) "or a small multiple of it" (Sec. 2.2); this
 * sweep shows how shallow windows dither and deep windows adapt
 * sluggishly across phase changes.
 */

#include "common.hh"

using namespace adcache;

int
main()
{
    bench::Experiment e;
    e.title = "Ablation - miss history depth m";
    e.benchmarks = primaryBenchmarks();
    for (unsigned m : {2u, 4u, 8u, 16u, 32u, 64u}) {
        AdaptiveConfig c =
            AdaptiveConfig::dual(PolicyType::LRU, PolicyType::LFU);
        c.historyDepth = m;
        e.variants.push_back(L2Spec::fromAdaptive(c));
        e.variantNames.push_back("m=" + std::to_string(m));
    }
    {
        AdaptiveConfig c =
            AdaptiveConfig::dual(PolicyType::LRU, PolicyType::LFU);
        c.exactCounters = true;
        e.variants.push_back(L2Spec::fromAdaptive(c));
        e.variantNames.push_back("exact");
    }
    e.variants.push_back(L2Spec::lru());
    e.variantNames.push_back("LRU");

    const auto rows = bench::runAndReport(e);
    if (!bench::textMode())
        return 0;

    const auto avg = averageOf(rows, metricL2Mpki);
    TextTable table({"history", "avg MPKI", "red vs LRU %"});
    const double lru = avg.back();
    for (std::size_t v = 0; v < e.variantNames.size(); ++v)
        table.addRow({e.variantNames[v], TextTable::num(avg[v], 2),
                      TextTable::num(percentImprovement(lru, avg[v]),
                                     2)});
    table.print();
    std::printf("(paper default m = associativity = 8)\n");
    return 0;
}
