/**
 * @file
 * Ablation: miss-history window depth m. The paper sets m to the
 * associativity (8) "or a small multiple of it" (Sec. 2.2); this
 * sweep shows how shallow windows dither and deep windows adapt
 * sluggishly across phase changes.
 */

#include "common.hh"

using namespace adcache;

int
main()
{
    printConfigBanner(SystemConfig{},
                      "Ablation - miss history depth m");

    std::vector<L2Spec> variants;
    std::vector<std::string> names;
    for (unsigned m : {2u, 4u, 8u, 16u, 32u, 64u}) {
        AdaptiveConfig c =
            AdaptiveConfig::dual(PolicyType::LRU, PolicyType::LFU);
        c.historyDepth = m;
        variants.push_back(L2Spec::fromAdaptive(c));
        names.push_back("m=" + std::to_string(m));
    }
    {
        AdaptiveConfig c =
            AdaptiveConfig::dual(PolicyType::LRU, PolicyType::LFU);
        c.exactCounters = true;
        variants.push_back(L2Spec::fromAdaptive(c));
        names.push_back("exact");
    }
    variants.push_back(L2Spec::lru());
    names.push_back("LRU");

    const auto rows = runSuite(primaryBenchmarks(), variants,
                               instrBudget(), /*timed=*/false);
    const auto avg = averageOf(rows, metricL2Mpki);

    TextTable table({"history", "avg MPKI", "red vs LRU %"});
    const double lru = avg.back();
    for (std::size_t v = 0; v < names.size(); ++v)
        table.addRow({names[v], TextTable::num(avg[v], 2),
                      TextTable::num(percentImprovement(lru, avg[v]),
                                     2)});
    table.print();
    std::printf("(paper default m = associativity = 8)\n");
    return 0;
}
