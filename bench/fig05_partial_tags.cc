/**
 * @file
 * Figure 5: effect of partial shadow-tag width on the primary-set
 * average MPKI and CPI, relative to full tags. Paper: under 1 %
 * increase for 6 bits and wider; 4-bit tags degrade visibly; with
 * 8-bit tags the overall CPI win drops only from 12.9 % to 12.7 %.
 */

#include "common.hh"

using namespace adcache;

int
main()
{
    bench::Experiment e;
    e.title = "Fig. 5 - impact of partial tags";
    e.benchmarks = primaryBenchmarks();
    e.variants = {L2Spec::adaptiveLruLfu(0)};
    e.variantNames = {"full"};
    for (unsigned bits : {12u, 10u, 8u, 6u, 4u}) {
        e.variants.push_back(L2Spec::adaptiveLruLfu(bits));
        e.variantNames.push_back(std::to_string(bits) + "-bit");
    }
    e.variants.push_back(L2Spec::lru());
    e.variantNames.push_back("LRU");
    e.timed = true;
    const auto rows = bench::runAndReport(e);
    if (!bench::textMode())
        return 0;

    const auto avg_mpki = averageOf(rows, metricL2Mpki);
    const auto avg_cpi = averageOf(rows, metricCpi);

    TextTable table({"tag width", "avg MPKI", "MPKI +%", "avg CPI",
                     "CPI +%"});
    for (std::size_t v = 0; v + 1 < e.variants.size(); ++v) {
        table.addRow({e.variantNames[v],
                      TextTable::num(avg_mpki[v], 2),
                      TextTable::num(
                          percentDelta(avg_mpki[0], avg_mpki[v]), 2),
                      TextTable::num(avg_cpi[v], 3),
                      TextTable::num(
                          percentDelta(avg_cpi[0], avg_cpi[v]), 2)});
    }
    table.print();

    const std::size_t lru = e.variants.size() - 1;
    const std::size_t bit8 = 3;  // full, 12, 10, [8]
    bench::paperVsMeasured("CPI increase of 8-bit tags vs full",
                           "<1%",
                           percentDelta(avg_cpi[0], avg_cpi[bit8]),
                           "%");
    bench::paperVsMeasured(
        "avg CPI improvement with 8-bit tags vs LRU", "12.7%",
        percentImprovement(avg_cpi[lru], avg_cpi[bit8]), "%");

    // Per-benchmark variation of narrow tags (paper: 6-bit tags give
    // up to ~4 % CPI deterioration on lucas).
    const auto [b6, worst6] =
        bench::worstDeterioration(rows, 0, 4, metricCpi);
    const auto [b4, worst4] =
        bench::worstDeterioration(rows, 0, 5, metricCpi);
    std::printf("worst per-benchmark CPI increase: 6-bit %+.2f%% (%s),"
                " 4-bit %+.2f%% (%s)\n",
                worst6, b6.c_str(), worst4, b4.c_str());
    return 0;
}
