#include "cpu/btb.hh"

#include <gtest/gtest.h>

namespace adcache
{
namespace
{

TEST(Btb, MissOnCold)
{
    Btb btb;
    EXPECT_FALSE(btb.lookup(0x1000).has_value());
    EXPECT_EQ(btb.stats().lookups, 1u);
    EXPECT_EQ(btb.stats().hits, 0u);
}

TEST(Btb, HitAfterUpdate)
{
    Btb btb;
    btb.update(0x1000, 0x2000);
    auto t = btb.lookup(0x1000);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(*t, 0x2000u);
}

TEST(Btb, UpdateOverwritesTarget)
{
    Btb btb;
    btb.update(0x1000, 0x2000);
    btb.update(0x1000, 0x3000);
    EXPECT_EQ(btb.lookup(0x1000).value(), 0x3000u);
}

TEST(Btb, SetConflictEvictsLru)
{
    BtbConfig c;
    c.entries = 8;
    c.assoc = 2;  // 4 sets
    Btb btb(c);
    // Three branches mapping to the same set (pc >> 2 mod 4 equal).
    const Addr a = 0x0, b = 0x10, d = 0x20;
    btb.update(a, 1);
    btb.update(b, 2);
    btb.lookup(a);  // refresh a
    btb.update(d, 3);  // evicts b (LRU)
    EXPECT_TRUE(btb.lookup(a).has_value());
    EXPECT_FALSE(btb.lookup(b).has_value());
    EXPECT_TRUE(btb.lookup(d).has_value());
}

TEST(Btb, DistinctSetsDoNotConflict)
{
    BtbConfig c;
    c.entries = 8;
    c.assoc = 2;
    Btb btb(c);
    for (Addr pc = 0; pc < 16 * 4; pc += 4)
        btb.update(pc, pc + 100);
    // 16 branches over 4 sets x 2 ways: only the 8 most recent per
    // set survive; the last two per set must be present.
    EXPECT_TRUE(btb.lookup(15 * 4).has_value());
    EXPECT_TRUE(btb.lookup(14 * 4).has_value());
}

TEST(Btb, StatsTrackHits)
{
    Btb btb;
    btb.update(0x40, 0x80);
    btb.lookup(0x40);
    btb.lookup(0x44);
    EXPECT_EQ(btb.stats().lookups, 2u);
    EXPECT_EQ(btb.stats().hits, 1u);
}

} // namespace
} // namespace adcache
