#include "cpu/branch_predictor.hh"

#include <gtest/gtest.h>

#include "util/rng.hh"

namespace adcache
{
namespace
{

TEST(BranchPredictor, LearnsAlwaysTaken)
{
    BranchPredictor bp;
    const Addr pc = 0x4000;
    for (int i = 0; i < 8; ++i)
        bp.update(pc, true);
    EXPECT_TRUE(bp.predict(pc));
    EXPECT_FALSE(bp.update(pc, true));
}

TEST(BranchPredictor, LearnsAlwaysNotTaken)
{
    BranchPredictor bp;
    const Addr pc = 0x4000;
    for (int i = 0; i < 8; ++i)
        bp.update(pc, false);
    EXPECT_FALSE(bp.predict(pc));
}

TEST(BranchPredictor, GshareLearnsAlternatingPattern)
{
    // T,N,T,N... is hopeless for bimodal but trivial for gshare with
    // global history; the hybrid must converge to high accuracy.
    BranchPredictor bp;
    const Addr pc = 0x1234;
    bool taken = false;
    // Warm up.
    for (int i = 0; i < 200; ++i) {
        bp.update(pc, taken);
        taken = !taken;
    }
    int mispredicts = 0;
    for (int i = 0; i < 200; ++i) {
        if (bp.update(pc, taken))
            ++mispredicts;
        taken = !taken;
    }
    EXPECT_LT(mispredicts, 10);
}

TEST(BranchPredictor, LearnsHistoryCorrelatedPattern)
{
    // Outcome = outcome three branches ago: pure history correlation.
    BranchPredictor bp;
    const Addr pc = 0x8888;
    const bool pattern[] = {true, true, false};
    for (int i = 0; i < 300; ++i)
        bp.update(pc, pattern[i % 3]);
    int mispredicts = 0;
    for (int i = 300; i < 600; ++i)
        mispredicts += bp.update(pc, pattern[i % 3]) ? 1 : 0;
    EXPECT_LT(mispredicts, 15);
}

TEST(BranchPredictor, RandomBranchesNearFiftyPercent)
{
    BranchPredictor bp;
    Rng rng(5);
    const Addr pc = 0x2000;
    std::uint64_t mispredicts = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        mispredicts += bp.update(pc, rng.chance(0.5)) ? 1 : 0;
    EXPECT_NEAR(double(mispredicts) / n, 0.5, 0.08);
}

TEST(BranchPredictor, BiasedBranchesBeatCoinFlip)
{
    BranchPredictor bp;
    Rng rng(6);
    const Addr pc = 0x3000;
    std::uint64_t mispredicts = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        mispredicts += bp.update(pc, rng.chance(0.9)) ? 1 : 0;
    EXPECT_LT(double(mispredicts) / n, 0.2);
}

TEST(BranchPredictor, StatsAccumulate)
{
    BranchPredictor bp;
    for (int i = 0; i < 10; ++i)
        bp.update(0x100, true);
    EXPECT_EQ(bp.stats().lookups, 10u);
    EXPECT_LE(bp.stats().mispredicts, 10u);
    EXPECT_GE(bp.stats().accuracy(), 0.0);
    EXPECT_LE(bp.stats().accuracy(), 1.0);
}

TEST(BranchPredictor, DistinctPcsIndependentInBimodal)
{
    BranchPredictor bp;
    for (int i = 0; i < 20; ++i) {
        bp.update(0x1000, true);
        bp.update(0x2000, false);
    }
    EXPECT_TRUE(bp.predict(0x1000));
    EXPECT_FALSE(bp.predict(0x2000));
}

} // namespace
} // namespace adcache
