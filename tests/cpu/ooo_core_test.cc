#include "cpu/ooo_core.hh"

#include <gtest/gtest.h>

#include "util/rng.hh"

namespace adcache
{
namespace
{

/** Fixed-latency memory stub. */
class FakeMem : public MemoryInterface
{
  public:
    Cycle loadLat = 10;
    Cycle storeLat = 10;
    Cycle fetchPenalty = 0;
    std::uint64_t fetches = 0;

    Cycle
    fetch(Addr, Cycle now) override
    {
        ++fetches;
        return now + fetchPenalty;
    }

    Cycle load(Addr, Cycle now) override { return now + loadLat; }
    Cycle store(Addr, Cycle now) override { return now + storeLat; }
};

TraceInstr
alu(Addr pc, std::uint8_t dst = noReg, std::uint8_t src = noReg)
{
    TraceInstr i;
    i.pc = pc;
    i.cls = InstrClass::IntAlu;
    i.dst = dst;
    i.src1 = src;
    return i;
}

/** n independent single-cycle ALU ops. */
std::vector<TraceInstr>
independentAlus(int n)
{
    std::vector<TraceInstr> v;
    for (int i = 0; i < n; ++i)
        v.push_back(alu(0x1000 + 4 * (i % 8),
                        std::uint8_t(1 + i % 32)));
    return v;
}

double
cpiOf(std::vector<TraceInstr> instrs, FakeMem &mem,
      CoreConfig config = {})
{
    OooCore core(config);
    VectorSource src(std::move(instrs));
    const auto stats = core.run(src, mem, UINT64_MAX);
    return stats.cpi();
}

TEST(OooCore, IndependentAlusBoundByAluCount)
{
    FakeMem mem;
    const double cpi = cpiOf(independentAlus(20000), mem);
    // 4 ALUs: best case 0.25 CPI; allow pipeline slack.
    EXPECT_GT(cpi, 0.2);
    EXPECT_LT(cpi, 0.5);
}

TEST(OooCore, DependentChainSerialises)
{
    FakeMem mem;
    std::vector<TraceInstr> v;
    for (int i = 0; i < 5000; ++i)
        v.push_back(alu(0x1000, 5, 5));  // each reads its precursor
    const double cpi = cpiOf(std::move(v), mem);
    EXPECT_NEAR(cpi, 1.0, 0.15);
}

TEST(OooCore, FpDivChainCostsItsLatency)
{
    FakeMem mem;
    std::vector<TraceInstr> v;
    for (int i = 0; i < 2000; ++i) {
        TraceInstr instr = alu(0x1000, 7, 7);
        instr.cls = InstrClass::FpDiv;
        v.push_back(instr);
    }
    const double cpi = cpiOf(std::move(v), mem);
    EXPECT_NEAR(cpi, 16.0, 1.0);
}

TEST(OooCore, DependentLoadsExposeLatency)
{
    FakeMem mem;
    mem.loadLat = 50;
    std::vector<TraceInstr> v;
    for (int i = 0; i < 2000; ++i) {
        TraceInstr instr;
        instr.pc = 0x1000;
        instr.cls = InstrClass::Load;
        instr.memAddr = 0x100000 + 64 * i;
        instr.dst = 9;
        instr.src1 = 9;  // pointer chase
        v.push_back(instr);
    }
    const double cpi = cpiOf(std::move(v), mem);
    EXPECT_NEAR(cpi, 50.0, 5.0);
}

TEST(OooCore, IndependentLoadsOverlap)
{
    FakeMem mem;
    mem.loadLat = 50;
    std::vector<TraceInstr> v;
    for (int i = 0; i < 2000; ++i) {
        TraceInstr instr;
        instr.pc = 0x1000;
        instr.cls = InstrClass::Load;
        instr.memAddr = 0x100000 + 64 * i;
        instr.dst = std::uint8_t(1 + i % 32);
        v.push_back(instr);
    }
    const double cpi = cpiOf(std::move(v), mem);
    // Two ports and a 64-entry window: misses overlap heavily.
    EXPECT_LT(cpi, 5.0);
    EXPECT_GE(cpi, 0.5);
}

TEST(OooCore, RobLimitsOverlapOfVeryLongMisses)
{
    // With loads taking 400 cycles and only 64 ROB entries, at most
    // ~64 instructions (≈32 loads here) can be in flight, bounding
    // the achievable overlap.
    FakeMem mem;
    mem.loadLat = 400;
    std::vector<TraceInstr> v;
    for (int i = 0; i < 4000; ++i) {
        if (i % 2 == 0) {
            TraceInstr instr;
            instr.pc = 0x1000;
            instr.cls = InstrClass::Load;
            instr.memAddr = 0x100000 + 64 * i;
            instr.dst = std::uint8_t(1 + i % 32);
            v.push_back(instr);
        } else {
            v.push_back(alu(0x1004, std::uint8_t(33 + i % 16)));
        }
    }
    CoreConfig small, big;
    small.robSize = 16;
    big.robSize = 256;
    FakeMem mem2;
    mem2.loadLat = 400;
    const double cpi_small = cpiOf(v, mem, small);
    const double cpi_big = cpiOf(v, mem2, big);
    EXPECT_GT(cpi_small, 1.5 * cpi_big)
        << "a bigger window must expose more MLP";
}

TEST(OooCore, StoreBufferSizeMatters)
{
    // Slow-draining stores: a 1-entry buffer stalls retirement, a
    // large buffer hides the drain (Fig. 10's mechanism).
    auto make = [] {
        std::vector<TraceInstr> v;
        for (int i = 0; i < 3000; ++i) {
            if (i % 4 == 0) {
                TraceInstr instr;
                instr.pc = 0x1000;
                instr.cls = InstrClass::Store;
                instr.memAddr = 0x200000 + 64 * i;
                v.push_back(instr);
            } else {
                v.push_back(alu(0x1004, std::uint8_t(1 + i % 32)));
            }
        }
        return v;
    };
    CoreConfig tiny, roomy;
    tiny.storeBufferEntries = 1;
    roomy.storeBufferEntries = 64;
    FakeMem mem1, mem2;
    mem1.storeLat = 200;
    mem2.storeLat = 200;
    const double cpi_tiny = cpiOf(make(), mem1, tiny);
    const double cpi_roomy = cpiOf(make(), mem2, roomy);
    EXPECT_GT(cpi_tiny, 1.3 * cpi_roomy);
}

TEST(OooCore, MispredictsSlowExecution)
{
    auto branches = [](bool predictable) {
        std::vector<TraceInstr> v;
        Rng rng(3);
        for (int i = 0; i < 8000; ++i) {
            TraceInstr instr;
            instr.pc = 0x1000 + 4 * (i % 4);
            instr.cls = InstrClass::Branch;
            instr.taken = predictable ? true : rng.chance(0.5);
            instr.target = 0x1000;
            v.push_back(instr);
        }
        return v;
    };
    FakeMem mem1, mem2;
    const double cpi_pred = cpiOf(branches(true), mem1);
    const double cpi_rand = cpiOf(branches(false), mem2);
    EXPECT_GT(cpi_rand, 2.0 * cpi_pred);
}

TEST(OooCore, MispredictStatsCounted)
{
    FakeMem mem;
    OooCore core{CoreConfig{}};
    std::vector<TraceInstr> v;
    Rng rng(4);
    for (int i = 0; i < 2000; ++i) {
        TraceInstr instr;
        instr.pc = 0x1000;
        instr.cls = InstrClass::Branch;
        instr.taken = rng.chance(0.5);
        instr.target = 0x1000;
        v.push_back(instr);
    }
    VectorSource src(std::move(v));
    const auto stats = core.run(src, mem, UINT64_MAX);
    EXPECT_EQ(stats.branches, 2000u);
    EXPECT_GT(stats.mispredicts, 500u);
    EXPECT_LT(stats.mispredicts, 1500u);
}

TEST(OooCore, ICacheStallsReduceFetch)
{
    FakeMem fast, slow;
    slow.fetchPenalty = 30;
    // Instructions spread across many lines to force line fetches.
    auto spread = [] {
        std::vector<TraceInstr> v;
        for (int i = 0; i < 4000; ++i)
            v.push_back(alu(Addr(i) * 64, std::uint8_t(1 + i % 32)));
        return v;
    };
    const double cpi_fast = cpiOf(spread(), fast);
    const double cpi_slow = cpiOf(spread(), slow);
    EXPECT_GT(cpi_slow, 5.0 * cpi_fast);
}

TEST(OooCore, FetchOncePerLine)
{
    FakeMem mem;
    std::vector<TraceInstr> v;
    for (int i = 0; i < 16; ++i)
        v.push_back(alu(0x1000 + 4 * i, std::uint8_t(i + 1)));
    OooCore core{CoreConfig{}};
    VectorSource src(std::move(v));
    core.run(src, mem, UINT64_MAX);
    EXPECT_EQ(mem.fetches, 1u) << "16 sequential 4B instrs = 1 line";
}

TEST(OooCore, RespectsInstructionLimit)
{
    FakeMem mem;
    OooCore core{CoreConfig{}};
    VectorSource src(independentAlus(1000));
    const auto stats = core.run(src, mem, 123);
    EXPECT_EQ(stats.instructions, 123u);
}

TEST(OooCore, CyclesMonotoneWithWork)
{
    FakeMem mem1, mem2;
    OooCore core{CoreConfig{}};
    VectorSource small(independentAlus(100));
    VectorSource large(independentAlus(10000));
    const auto s1 = core.run(small, mem1, UINT64_MAX);
    OooCore core2{CoreConfig{}};
    const auto s2 = core2.run(large, mem2, UINT64_MAX);
    EXPECT_GT(s2.cycles, s1.cycles);
}

} // namespace
} // namespace adcache
