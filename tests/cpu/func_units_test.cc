#include "cpu/func_units.hh"

#include <gtest/gtest.h>

namespace adcache
{
namespace
{

TEST(FuncUnits, Latencies)
{
    FuncUnits fus;
    EXPECT_EQ(fus.latency(InstrClass::IntAlu), 1u);
    EXPECT_EQ(fus.latency(InstrClass::IntMult), 8u);
    EXPECT_EQ(fus.latency(InstrClass::FpAdd), 4u);
    EXPECT_EQ(fus.latency(InstrClass::FpDiv), 16u);
    EXPECT_EQ(fus.latency(InstrClass::Load), 1u);
    EXPECT_EQ(fus.latency(InstrClass::Branch), 1u);
}

TEST(FuncUnits, IssuesAtReadyWhenIdle)
{
    FuncUnits fus;
    EXPECT_EQ(fus.issue(InstrClass::IntAlu, 10), 10u);
}

TEST(FuncUnits, FourAluOpsPerCycleThenStall)
{
    FuncUnits fus;
    // Four ALUs: four ops issue at cycle 5; the fifth waits a cycle.
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(fus.issue(InstrClass::IntAlu, 5), 5u);
    EXPECT_EQ(fus.issue(InstrClass::IntAlu, 5), 6u);
}

TEST(FuncUnits, TwoMemoryPorts)
{
    FuncUnits fus;
    EXPECT_EQ(fus.issue(InstrClass::Load, 0), 0u);
    EXPECT_EQ(fus.issue(InstrClass::Store, 0), 0u);
    EXPECT_EQ(fus.issue(InstrClass::Load, 0), 1u)
        << "third memory op must wait for a port";
}

TEST(FuncUnits, PoolsAreIndependent)
{
    FuncUnits fus;
    for (int i = 0; i < 4; ++i)
        fus.issue(InstrClass::IntAlu, 0);
    // ALUs saturated at cycle 0, but FP units are free.
    EXPECT_EQ(fus.issue(InstrClass::FpAdd, 0), 0u);
    EXPECT_EQ(fus.issue(InstrClass::IntMult, 0), 0u);
}

TEST(FuncUnits, PipelinedUnitsAcceptNextCycle)
{
    FuncUnitConfig c;
    c.intMultCount = 1;
    FuncUnits fus(c);
    EXPECT_EQ(fus.issue(InstrClass::IntMult, 0), 0u);
    // Pipelined: the single multiplier takes a new op next cycle,
    // not after its full 8-cycle latency.
    EXPECT_EQ(fus.issue(InstrClass::IntMult, 0), 1u);
}

TEST(FuncUnits, CustomCounts)
{
    FuncUnitConfig c;
    c.memPortCount = 1;
    FuncUnits fus(c);
    EXPECT_EQ(fus.issue(InstrClass::Load, 0), 0u);
    EXPECT_EQ(fus.issue(InstrClass::Load, 0), 1u);
}

} // namespace
} // namespace adcache
