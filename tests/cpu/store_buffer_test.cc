#include "cpu/store_buffer.hh"

#include <gtest/gtest.h>

namespace adcache
{
namespace
{

TEST(StoreBuffer, EmptyBufferGrantsImmediately)
{
    StoreBuffer sb(4);
    EXPECT_EQ(sb.earliestSlot(100), 100u);
    EXPECT_EQ(sb.capacity(), 4u);
}

TEST(StoreBuffer, FullBufferStallsUntilDrain)
{
    StoreBuffer sb(2);
    sb.push(0, 50);
    sb.push(0, 80);
    // Both entries busy: a store retiring at 10 must wait to 50.
    EXPECT_EQ(sb.earliestSlot(10), 50u);
    sb.push(50, 120);
    EXPECT_EQ(sb.earliestSlot(60), 80u);
}

TEST(StoreBuffer, SlotReuseAfterDrain)
{
    StoreBuffer sb(1);
    sb.push(0, 30);
    EXPECT_EQ(sb.earliestSlot(100), 100u) << "drained by cycle 100";
    sb.push(100, 130);
    EXPECT_EQ(sb.earliestSlot(101), 130u);
}

TEST(StoreBuffer, BiggerBufferAbsorbsBursts)
{
    StoreBuffer small(2), big(8);
    Cycle small_stall = 0, big_stall = 0;
    for (int i = 0; i < 8; ++i) {
        const Cycle retire = Cycle(i);
        const Cycle s_slot = small.earliestSlot(retire);
        small_stall += s_slot - retire;
        small.push(s_slot, s_slot + 100);
        const Cycle b_slot = big.earliestSlot(retire);
        big_stall += b_slot - retire;
        big.push(b_slot, b_slot + 100);
    }
    EXPECT_GT(small_stall, big_stall);
    EXPECT_EQ(big_stall, 0u);
}

TEST(StoreBuffer, StatsMutable)
{
    StoreBuffer sb(4);
    sb.stats().fullStalls = 3;
    sb.stats().stallCycles = 99;
    EXPECT_EQ(sb.stats().fullStalls, 3u);
    EXPECT_EQ(sb.stats().stallCycles, 99u);
}

TEST(StoreBuffer, PushCountsStores)
{
    StoreBuffer sb(4);
    sb.push(0, 10);
    sb.push(1, 12);
    EXPECT_EQ(sb.stats().stores, 2u);
}

} // namespace
} // namespace adcache
