#include "adapt/imitation.hh"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace adcache::adapt
{
namespace
{

/** Scripted view: each case returns a preset handle. */
struct ScriptView {
    using Handle = int;
    static constexpr Handle kNone = -1;

    Handle displacedMatch = kNone;
    Handle outsideWinner = kNone;
    Handle fallbackHandle = kNone;
    mutable int displacedCalls = 0;
    mutable int fallbackCalls = 0;

    Handle
    findDisplacedMatch(std::uint64_t) const
    {
        ++displacedCalls;
        return displacedMatch;
    }

    Handle findOutsideWinner() const { return outsideWinner; }

    Handle
    fallback() const
    {
        ++fallbackCalls;
        return fallbackHandle;
    }
};

TEST(ImitateVictim, Case1WinsWhenWinnerDisplacedAndMatchExists)
{
    ScriptView v;
    v.displacedMatch = 3;
    v.outsideWinner = 5;
    const auto c = imitateVictim(v, true, 0xAB);
    EXPECT_EQ(c.kind, VictimCase::VictimMatch);
    EXPECT_EQ(c.handle, 3);
}

TEST(ImitateVictim, Case1SkippedWhenWinnerDidNotDisplace)
{
    ScriptView v;
    v.displacedMatch = 3; // would match, but must not be consulted
    v.outsideWinner = 5;
    const auto c = imitateVictim(v, false, 0xAB);
    EXPECT_EQ(c.kind, VictimCase::ShadowAbsent);
    EXPECT_EQ(c.handle, 5);
    EXPECT_EQ(v.displacedCalls, 0);
}

TEST(ImitateVictim, Case2WhenNoDisplacedMatch)
{
    ScriptView v;
    v.outsideWinner = 7;
    const auto c = imitateVictim(v, true, 0xAB);
    EXPECT_EQ(c.kind, VictimCase::ShadowAbsent);
    EXPECT_EQ(c.handle, 7);
}

TEST(ImitateVictim, Case3FallbackWhenBothSearchesFail)
{
    ScriptView v;
    v.fallbackHandle = 1;
    const auto c = imitateVictim(v, true, 0xAB);
    EXPECT_EQ(c.kind, VictimCase::Fallback);
    EXPECT_EQ(c.handle, 1);
    EXPECT_EQ(v.fallbackCalls, 1);
}

TEST(ImitateVictim, RejectWhenNothingIsEvictable)
{
    ScriptView v;
    const auto c = imitateVictim(v, false, 0);
    EXPECT_EQ(c.kind, VictimCase::Reject);
    EXPECT_EQ(c.handle, ScriptView::kNone);
}

// ---------------------------------------------------------------- //

/** Minimal tag-array stand-in for WaySetView. */
struct FakeTags {
    std::vector<std::uint64_t> tags;
    std::uint64_t valid = 0;

    std::uint64_t validMask(unsigned) const { return valid; }
    std::uint64_t tag(unsigned, unsigned w) const { return tags[w]; }
};

/** Shadow stand-in: folds to low 4 bits, fixed membership set. */
struct FakeShadow {
    std::vector<std::uint64_t> resident;

    std::uint64_t foldTag(std::uint64_t t) const { return t & 0xF; }

    bool
    containsTag(unsigned, std::uint64_t stored) const
    {
        for (std::uint64_t r : resident)
            if (r == stored)
                return true;
        return false;
    }
};

TEST(WaySetView, FindsDisplacedMatchByFoldedTag)
{
    FakeTags tags{{0x12, 0x23, 0x34, 0x45}, 0xF};
    FakeShadow shadow;
    unsigned fb = 0;
    WaySetView<FakeTags, FakeShadow> view(tags, shadow, 0, 4, &fb);
    // 0x23 folds to 0x3.
    EXPECT_EQ(view.findDisplacedMatch(0x3), 1u);
    EXPECT_EQ(view.findDisplacedMatch(0x9),
              (WaySetView<FakeTags, FakeShadow>::kNone));
}

TEST(WaySetView, SkipsInvalidWaysAndFindsOutsideWinner)
{
    FakeTags tags{{0x12, 0x23, 0x34, 0x45}, 0b1010}; // ways 1 and 3
    FakeShadow shadow{{0x3}}; // way 1's folded tag is resident
    unsigned fb = 0;
    WaySetView<FakeTags, FakeShadow> view(tags, shadow, 0, 4, &fb);
    EXPECT_EQ(view.findOutsideWinner(), 3u); // way 3 not in shadow
}

TEST(WaySetView, FallbackRotatesThroughWays)
{
    FakeTags tags{{0, 0, 0, 0}, 0xF};
    FakeShadow shadow;
    unsigned fb = 2;
    WaySetView<FakeTags, FakeShadow> view(tags, shadow, 0, 4, &fb);
    EXPECT_EQ(view.fallback(), 2u);
    EXPECT_EQ(view.fallback(), 3u);
    EXPECT_EQ(view.fallback(), 0u); // wraps
    EXPECT_EQ(fb, 1u);
}

} // namespace
} // namespace adcache::adapt
