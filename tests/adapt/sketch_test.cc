#include "adapt/sketch.hh"

#include <gtest/gtest.h>

namespace adcache::adapt
{
namespace
{

SketchParams
tinyParams()
{
    SketchParams p;
    p.width = 64;
    p.rows = 4;
    p.counterMax = 15;
    p.decayEvery = 1000; // keep scheduled decay out of small tests
    return p;
}

TEST(CountMinSketch, CountsAndNeverUnderestimates)
{
    CountMinSketch s(tinyParams());
    EXPECT_EQ(s.estimate(42), 0u);
    for (int i = 0; i < 5; ++i)
        s.add(42);
    // Collisions can only inflate: estimate >= true count.
    EXPECT_GE(s.estimate(42), 5u);
    EXPECT_LE(s.estimate(42), 15u);
}

TEST(CountMinSketch, SaturatesAtCounterMax)
{
    CountMinSketch s(tinyParams());
    for (int i = 0; i < 100; ++i)
        s.add(7);
    EXPECT_EQ(s.estimate(7), 15u);
}

TEST(CountMinSketch, DecayHalvesEstimates)
{
    CountMinSketch s(tinyParams());
    for (int i = 0; i < 8; ++i)
        s.add(7);
    const std::uint32_t before = s.estimate(7);
    s.decayHalf();
    EXPECT_EQ(s.estimate(7), before / 2);
}

TEST(CountMinSketch, DecaySchedulingByAdds)
{
    SketchParams p = tinyParams();
    p.decayEvery = 10;
    CountMinSketch s(p);
    for (int i = 0; i < 9; ++i)
        s.add(3);
    EXPECT_EQ(s.decays(), 0u);
    s.add(3); // 10th add triggers the halving
    EXPECT_EQ(s.decays(), 1u);
    EXPECT_EQ(s.estimate(3), 5u); // the 10th increment decays too
    EXPECT_EQ(s.adds(), 10u);
}

TEST(SketchParams, GeometrySizingClampsAndScales)
{
    // 4 * 16 * 4 = 256 entries -> width 256, decay every 16*256.
    SketchParams p = SketchParams::forGeometry(16, 4);
    EXPECT_EQ(p.width, 256u);
    EXPECT_EQ(p.decayEvery, 16u * 256u);
    // Tiny geometry clamps to the 64 floor.
    EXPECT_EQ(SketchParams::forGeometry(1, 1).width, 64u);
    // Huge geometry clamps to the 4096 ceiling.
    EXPECT_EQ(SketchParams::forGeometry(1u << 16, 16).width, 4096u);
}

TEST(SketchEntryKey, ComposesSetIntoTheKey)
{
    EXPECT_EQ(sketchEntryKey(0x5, 3, 4), (0x5ull << 4) | 3);
    EXPECT_EQ(sketchEntryKey(0x5, 0, 0), 0x5ull);
    // Same tag in different sets counts as distinct keys.
    EXPECT_NE(sketchEntryKey(1, 0, 2), sketchEntryKey(1, 1, 2));
}

TEST(TinyLfuAdmission, AdmitsOnlyStrictlyHotterCandidates)
{
    TinyLfuAdmission adm(tinyParams());
    for (int i = 0; i < 4; ++i)
        adm.touch(100); // incumbent
    adm.touch(200);     // candidate, colder

    EXPECT_FALSE(adm.admit(200, 100));
    EXPECT_TRUE(adm.admit(100, 200));
    // Ties keep the incumbent.
    EXPECT_FALSE(adm.admit(100, 100));

    for (int i = 0; i < 10; ++i)
        adm.touch(200);
    EXPECT_TRUE(adm.admit(200, 100));
}

} // namespace
} // namespace adcache::adapt
