#include "adapt/selector.hh"

#include <gtest/gtest.h>

namespace adcache::adapt
{
namespace
{

TEST(Selector, IgnoresNonDifferentiatingMasks)
{
    Selector s = Selector::makeAdaptive(1, 2, true, 0);
    EXPECT_FALSE(s.record(0, 0b00));
    EXPECT_FALSE(s.record(0, 0b11));
    EXPECT_EQ(s.count(0, 0), 0u);
    EXPECT_EQ(s.count(0, 1), 0u);
    EXPECT_EQ(s.flips(), 0u);
}

TEST(Selector, FlipsWhenTheBetterComponentChanges)
{
    Selector s = Selector::makeAdaptive(1, 2, true, 0);
    EXPECT_EQ(s.winner(0), 0u);
    // Component 0 misses: 1 now has fewer misses... but ties break
    // toward 0, so one miss by 0 already flips to 1.
    EXPECT_TRUE(s.record(0, 0b01));
    EXPECT_EQ(s.winner(0), 1u);
    EXPECT_FALSE(s.record(0, 0b01)); // still 1, no flip
    // Two misses by component 1: tie at 2-2 flips back to 0.
    EXPECT_FALSE(s.record(0, 0b10));
    EXPECT_TRUE(s.record(0, 0b10));
    EXPECT_EQ(s.winner(0), 0u);
    EXPECT_EQ(s.flips(), 2u);
}

TEST(Selector, WindowModeMatchesHistoryBest)
{
    Selector s = Selector::makeAdaptive(2, 2, false, 4);
    for (int i = 0; i < 6; ++i)
        s.record(0, 0b01);
    EXPECT_EQ(s.winner(0), 1u);
    EXPECT_EQ(s.count(0, 0), 4u); // window-bounded
    EXPECT_EQ(s.winner(1), 0u);   // other domain untouched
}

TEST(Selector, FixedModePinsTheWinner)
{
    Selector s = Selector::makeFixed(4, 2, 1);
    EXPECT_FALSE(s.adaptive());
    EXPECT_FALSE(s.record(2, 0b01));
    EXPECT_EQ(s.winner(2), 1u);
    EXPECT_EQ(s.count(2, 0), 0u);
    EXPECT_EQ(s.flips(), 0u);
}

TEST(PselSelector, StartsAtMidpointChoosingB)
{
    // Midpoint of a 4-bit counter is 8, which is "high": component 1.
    PselSelector p(4);
    EXPECT_EQ(p.value(), 8u);
    EXPECT_EQ(p.choice(), 1u);
}

TEST(PselSelector, CrossesAndCountsFlips)
{
    PselSelector p(2); // starts at 2 (high)
    EXPECT_TRUE(p.record(false));  // B missed -> drift to A: 1, low
    EXPECT_EQ(p.choice(), 0u);
    EXPECT_FALSE(p.record(false)); // 0, still low
    EXPECT_FALSE(p.record(true));  // 1, still low
    EXPECT_TRUE(p.record(true));   // 2, high again
    EXPECT_EQ(p.flips(), 2u);
}

TEST(PselSelector, Saturates)
{
    PselSelector p(2);
    for (int i = 0; i < 10; ++i)
        p.record(true);
    EXPECT_EQ(p.value(), 3u);
    for (int i = 0; i < 10; ++i)
        p.record(false);
    EXPECT_EQ(p.value(), 0u);
    EXPECT_EQ(p.choice(), 0u);
}

} // namespace
} // namespace adcache::adapt
