#include "adapt/history.hh"

#include <gtest/gtest.h>

namespace adcache::adapt
{
namespace
{

TEST(HistorySet, FreshBufferTiesTowardComponentZero)
{
    HistorySet h(false, 4, 2, 2);
    EXPECT_EQ(h.best(0), 0u);
    EXPECT_EQ(h.best(1), 0u);
    EXPECT_EQ(h.count(0, 0), 0u);
    EXPECT_EQ(h.count(0, 1), 0u);
}

TEST(HistorySet, CountsPerComponentPerDomain)
{
    HistorySet h(false, 8, 2, 2);
    h.record(0, 0b01); // component 0 missed in domain 0
    h.record(0, 0b01);
    h.record(1, 0b10); // component 1 missed in domain 1
    EXPECT_EQ(h.count(0, 0), 2u);
    EXPECT_EQ(h.count(0, 1), 0u);
    EXPECT_EQ(h.count(1, 0), 0u);
    EXPECT_EQ(h.count(1, 1), 1u);
    EXPECT_EQ(h.best(0), 1u);
    EXPECT_EQ(h.best(1), 0u);
}

TEST(HistorySet, WindowEvictsOldestMask)
{
    HistorySet h(false, 2, 1, 2);
    h.record(0, 0b01);
    h.record(0, 0b01);
    EXPECT_EQ(h.count(0, 0), 2u);
    // Third record overwrites the oldest component-0 miss.
    h.record(0, 0b10);
    EXPECT_EQ(h.count(0, 0), 1u);
    EXPECT_EQ(h.count(0, 1), 1u);
    h.record(0, 0b10);
    EXPECT_EQ(h.count(0, 0), 0u);
    EXPECT_EQ(h.count(0, 1), 2u);
    EXPECT_EQ(h.best(0), 0u);
}

TEST(HistorySet, ExactModeNeverForgets)
{
    HistorySet h(true, 0, 1, 2);
    for (int i = 0; i < 1000; ++i)
        h.record(0, 0b01);
    h.record(0, 0b10);
    EXPECT_EQ(h.count(0, 0), 1000u);
    EXPECT_EQ(h.count(0, 1), 1u);
    EXPECT_EQ(h.best(0), 1u);
}

TEST(HistorySet, WideComponentMasksUseWordRing)
{
    // > 8 components exercises the 32-bit ring representation.
    HistorySet h(false, 3, 1, 12);
    h.record(0, 1u << 11);
    h.record(0, 1u << 11);
    EXPECT_EQ(h.count(0, 11), 2u);
    EXPECT_EQ(h.best(0), 0u); // ties toward the lowest index
    h.record(0, 1u << 3);
    h.record(0, 1u << 3); // evicts one of the component-11 masks
    EXPECT_EQ(h.count(0, 11), 1u);
    EXPECT_EQ(h.count(0, 3), 2u);
}

TEST(HistorySet, DomainsAreIndependent)
{
    HistorySet h(false, 4, 3, 2);
    h.record(0, 0b01);
    h.record(2, 0b10);
    EXPECT_EQ(h.best(0), 1u);
    EXPECT_EQ(h.best(1), 0u);
    EXPECT_EQ(h.best(2), 0u);
}

} // namespace
} // namespace adcache::adapt
