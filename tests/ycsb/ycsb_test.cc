/**
 * @file
 * YCSB driver tests over the loopback transport: every workload mix
 * (A–F) completes with exact op accounting and zero validation
 * failures, per-class op sums match the configured totals, identical
 * seeds give identical op-class splits (determinism), the latency
 * histograms actually fill (readP99Ns > 0), scenario injection is
 * observable (shard loss produces Error responses; hot-key storm
 * still validates), TTL runs lapse entries without validation
 * failures, and registerInto emits the standard report stats.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "net/service.hh"
#include "util/stat_registry.hh"
#include "ycsb/ycsb.hh"

using namespace adcache;
using namespace adcache::ycsb;

namespace
{

net::KvServiceConfig
smallService()
{
    net::KvServiceConfig c;
    c.cache.capacity = 4096;
    c.cache.numShards = 4;
    c.cache.numBuckets = 256;
    c.cache.bucketWays = 4;
    c.readThrough = true;
    c.loaderValues = ValueSpec{24, 48};
    return c;
}

YcsbConfig
smallRun(char workload)
{
    YcsbConfig c;
    c.workload = workload;
    c.records = 4096;
    c.opsPerClient = 2'000;
    c.clients = 2;
    c.values = ValueSpec{24, 48};
    c.scanLen = 4;
    c.seed = 7;
    return c;
}

YcsbResult
runLoopback(const YcsbConfig &config, net::KvService &service)
{
    YcsbDriver driver(config, &service, [&](unsigned) {
        return makeLoopbackConnection(service);
    });
    return driver.run();
}

std::uint64_t
totalClassOps(const YcsbResult &r)
{
    std::uint64_t total = 0;
    for (const auto &c : r.classes)
        total += c.ops;
    return total;
}

TEST(Ycsb, EveryWorkloadCompletesCleanly)
{
    for (char w : {'a', 'b', 'c', 'd', 'e', 'f'}) {
        net::KvService service(smallService());
        const YcsbConfig config = smallRun(w);
        const YcsbResult r = runLoopback(config, service);

        EXPECT_EQ(r.runOps,
                  std::uint64_t(config.clients) *
                      config.opsPerClient)
            << "workload " << w;
        EXPECT_EQ(totalClassOps(r), r.runOps) << "workload " << w;
        EXPECT_EQ(r.validationFailures, 0u) << "workload " << w;
        EXPECT_EQ(r.errors, 0u) << "workload " << w;
        EXPECT_GT(r.loadOps, 0u) << "workload " << w;
        EXPECT_GT(r.opsPerSec(), 0.0) << "workload " << w;
        EXPECT_GT(r.readP99Ns(), 0.0) << "workload " << w;
    }
}

TEST(Ycsb, MixesLandInTheRightOpClasses)
{
    net::KvService service_c(smallService());
    const YcsbResult c = runLoopback(smallRun('c'), service_c);
    EXPECT_EQ(c.of(OpClass::Read).ops, c.runOps); // C: 100% read
    EXPECT_EQ(c.of(OpClass::Update).ops, 0u);

    net::KvService service_a(smallService());
    const YcsbResult a = runLoopback(smallRun('a'), service_a);
    // A: 50/50 read/update — both sides must be substantial.
    EXPECT_GT(a.of(OpClass::Read).ops, a.runOps / 3);
    EXPECT_GT(a.of(OpClass::Update).ops, a.runOps / 3);
    EXPECT_EQ(a.of(OpClass::Insert).ops, 0u);

    net::KvService service_d(smallService());
    const YcsbResult d = runLoopback(smallRun('d'), service_d);
    EXPECT_GT(d.of(OpClass::Insert).ops, 0u); // D: 5% inserts
    EXPECT_GT(d.of(OpClass::Read).ops, d.of(OpClass::Insert).ops);

    net::KvService service_e(smallService());
    const YcsbResult e = runLoopback(smallRun('e'), service_e);
    EXPECT_GT(e.of(OpClass::Scan).ops, 0u); // E: 95% scans
    EXPECT_EQ(e.of(OpClass::Update).ops, 0u);

    net::KvService service_f(smallService());
    const YcsbResult f = runLoopback(smallRun('f'), service_f);
    EXPECT_GT(f.of(OpClass::ReadModifyWrite).ops, f.runOps / 3);
}

TEST(Ycsb, PipelinedDepthBatchesReadsIntoMGet)
{
    net::KvService service(smallService());
    YcsbConfig config = smallRun('c'); // 100% read
    config.pipelineDepth = 16;
    const YcsbResult r = runLoopback(config, service);

    // Every read draw is served through the batch path.
    EXPECT_EQ(r.of(OpClass::Read).ops, 0u);
    EXPECT_EQ(r.of(OpClass::MGet).ops, r.runOps);
    EXPECT_EQ(r.runOps,
              std::uint64_t(config.clients) * config.opsPerClient);
    EXPECT_EQ(totalClassOps(r), r.runOps);
    EXPECT_EQ(r.validationFailures, 0u);
    EXPECT_EQ(r.errors, 0u);
    EXPECT_GT(r.readP99Ns(), 0.0); // falls back to the MGet class
}

TEST(Ycsb, PipelinedMixedWorkloadKeepsExactAccounting)
{
    net::KvService service(smallService());
    YcsbConfig config = smallRun('b'); // 95% read, 5% update
    config.pipelineDepth = 7;          // deliberately odd depth
    const YcsbResult r = runLoopback(config, service);

    EXPECT_GT(r.of(OpClass::MGet).ops, 0u);
    EXPECT_EQ(r.of(OpClass::Read).ops, 0u);
    EXPECT_GT(r.of(OpClass::Update).ops, 0u);
    EXPECT_EQ(r.runOps,
              std::uint64_t(config.clients) * config.opsPerClient);
    EXPECT_EQ(totalClassOps(r), r.runOps);
    EXPECT_EQ(r.validationFailures, 0u);
    EXPECT_EQ(r.errors, 0u);
}

TEST(Ycsb, DepthOneIsIdenticalToUnpipelined)
{
    net::KvService s1(smallService());
    const YcsbResult plain = runLoopback(smallRun('b'), s1);

    net::KvService s2(smallService());
    YcsbConfig config = smallRun('b');
    config.pipelineDepth = 1;
    const YcsbResult depth1 = runLoopback(config, s2);

    EXPECT_EQ(depth1.of(OpClass::MGet).ops, 0u);
    for (std::size_t i = 0; i < plain.classes.size(); ++i)
        EXPECT_EQ(depth1.classes[i].ops, plain.classes[i].ops)
            << "class " << i;
    EXPECT_EQ(depth1.validationFailures, 0u);
}

TEST(Ycsb, DeleteRatioCarvesDeletes)
{
    net::KvService service(smallService());
    YcsbConfig config = smallRun('b');
    config.deleteRatio = 0.10;
    const YcsbResult r = runLoopback(config, service);
    EXPECT_GT(r.of(OpClass::Delete).ops, 0u);
    EXPECT_EQ(r.validationFailures, 0u);
    EXPECT_EQ(totalClassOps(r), r.runOps);
}

TEST(Ycsb, SameSeedGivesIdenticalOpSplits)
{
    net::KvService s1(smallService());
    net::KvService s2(smallService());
    const YcsbResult r1 = runLoopback(smallRun('a'), s1);
    const YcsbResult r2 = runLoopback(smallRun('a'), s2);
    for (unsigned c = 0; c < kNumOpClasses; ++c) {
        EXPECT_EQ(r1.classes[c].ops, r2.classes[c].ops)
            << opClassName(OpClass(c));
        EXPECT_EQ(r1.classes[c].failures, r2.classes[c].failures)
            << opClassName(OpClass(c));
    }
    EXPECT_EQ(r1.errors, r2.errors);
}

TEST(Ycsb, ShardLossScenarioSurfacesErrors)
{
    net::KvService service(smallService());
    YcsbConfig config = smallRun('b');
    config.scenario = Scenario::ShardLoss;
    config.scenarioAt = 0.25;
    config.deadShardMask = 1;
    const YcsbResult r = runLoopback(config, service);
    EXPECT_GT(r.errors, 0u) << "dead shard produced no errors";
    EXPECT_EQ(r.runOps,
              std::uint64_t(config.clients) * config.opsPerClient)
        << "clients must survive the scenario";
    EXPECT_EQ(r.validationFailures, 0u);
}

TEST(Ycsb, HotKeyStormStillValidates)
{
    net::KvService service(smallService());
    YcsbConfig config = smallRun('c');
    config.scenario = Scenario::HotKeyStorm;
    config.scenarioAt = 0.5;
    config.hotFraction = 0.8;
    const YcsbResult r = runLoopback(config, service);
    EXPECT_EQ(r.validationFailures, 0u);
    EXPECT_EQ(r.errors, 0u);
    EXPECT_EQ(r.of(OpClass::Read).ops, r.runOps);
}

TEST(Ycsb, BackendSlowdownArmsTheLoaderStall)
{
    net::KvService service(smallService());
    YcsbConfig config = smallRun('c');
    config.opsPerClient = 200; // slow ops: keep the run tiny
    config.scenario = Scenario::BackendSlowdown;
    config.scenarioAt = 0.0; // armed from the first op
    config.slowdownUs = 200;
    const YcsbResult r = runLoopback(config, service);
    EXPECT_GT(service.fetchDelayUs(), 0u)
        << "scenario never armed the service knob";
    EXPECT_EQ(r.validationFailures, 0u);
    EXPECT_GT(r.readP99Ns(), 0.0);
}

TEST(Ycsb, TtlRunsLapseEntriesWithoutValidationFailures)
{
    net::KvService service(smallService());
    YcsbConfig config = smallRun('a');
    config.ttl = 2;
    config.clockEvery = 32;
    const YcsbResult r = runLoopback(config, service);
    EXPECT_EQ(r.validationFailures, 0u);
    EXPECT_GT(service.cache().clockNow(), 0u)
        << "driver never advanced the logical clock";
}

TEST(Ycsb, RegisterIntoEmitsTheStandardStats)
{
    net::KvService service(smallService());
    const YcsbResult r = runLoopback(smallRun('a'), service);
    StatRegistry reg;
    r.registerInto(reg);

    bool saw_ops_per_sec = false, saw_read_p99 = false,
         saw_update_ops = false;
    for (const StatEntry &e : reg.entries()) {
        if (e.name == "ops_per_sec")
            saw_ops_per_sec = true;
        if (e.name.find("read") != std::string::npos &&
            e.name.find("p99") != std::string::npos)
            saw_read_p99 = true;
        if (e.name.find("update") != std::string::npos &&
            e.name.find("ops") != std::string::npos)
            saw_update_ops = true;
    }
    EXPECT_TRUE(saw_ops_per_sec);
    EXPECT_TRUE(saw_read_p99);
    EXPECT_TRUE(saw_update_ops);
}

TEST(Ycsb, ConfigDescribeNamesTheWorkload)
{
    YcsbConfig config = smallRun('b');
    const std::string text = config.describe();
    EXPECT_NE(text.find('B'), std::string::npos);
    config.scenario = Scenario::BackendSlowdown;
    EXPECT_NE(config.describe().find("backend_slowdown"),
              std::string::npos);
}

} // namespace
