#include "util/stats.hh"

#include <gtest/gtest.h>

namespace adcache
{
namespace
{

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
}

TEST(RunningStatDeathTest, EmptyMinMaxAssert)
{
    // min()/max() of an empty accumulator are meaningless; they must
    // trip adcache_assert instead of silently returning 0.0.
    RunningStat s;
    EXPECT_DEATH(s.min(), "assertion 'count_ > 0' failed");
    EXPECT_DEATH(s.max(), "assertion 'count_ > 0' failed");
}

TEST(RunningStat, TracksMinMaxMean)
{
    RunningStat s;
    s.add(2.0);
    s.add(4.0);
    s.add(9.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, NegativeValues)
{
    RunningStat s;
    s.add(-3.0);
    s.add(1.0);
    EXPECT_DOUBLE_EQ(s.min(), -3.0);
    EXPECT_DOUBLE_EQ(s.mean(), -1.0);
}

TEST(RunningStat, MergeCombinesMomentsAndExtrema)
{
    RunningStat a, b;
    a.add(2.0);
    a.add(4.0);
    b.add(-1.0);
    b.add(9.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_DOUBLE_EQ(a.sum(), 14.0);
    EXPECT_DOUBLE_EQ(a.min(), -1.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
}

TEST(RunningStat, MergeEmptySideIsIdentityForMinMax)
{
    // An empty accumulator's 0-valued min/max fields must never leak
    // into the merged result in either direction.
    RunningStat filled, empty;
    filled.add(5.0);
    filled.add(7.0);

    filled.merge(empty);
    EXPECT_EQ(filled.count(), 2u);
    EXPECT_DOUBLE_EQ(filled.min(), 5.0);
    EXPECT_DOUBLE_EQ(filled.max(), 7.0);

    RunningStat target;
    target.merge(filled);
    EXPECT_EQ(target.count(), 2u);
    EXPECT_DOUBLE_EQ(target.min(), 5.0);
    EXPECT_DOUBLE_EQ(target.max(), 7.0);
}

TEST(RunningStat, PercentileEstimatesWithinBucketError)
{
    RunningStat s;
    for (int i = 1; i <= 1'000; ++i)
        s.add(double(i));
    const double p50 = s.percentile(0.50);
    EXPECT_GE(p50, 500.0);
    EXPECT_LE(p50, 500.0 * 1.125);
    const double p95 = s.percentile(0.95);
    EXPECT_GE(p95, 950.0);
    EXPECT_LE(p95, 950.0 * 1.125);
    // Percentiles survive a merge (buckets are mergeable).
    RunningStat other;
    other.add(2'000.0);
    s.merge(other);
    EXPECT_GE(s.percentile(1.0), 2'000.0);
}

TEST(LogBuckets, SmallValuesGetExactBuckets)
{
    for (std::uint64_t v = 0; v < 8; ++v) {
        EXPECT_EQ(LogBuckets::bucketIndex(v), unsigned(v));
        EXPECT_EQ(LogBuckets::bucketUpperEdge(unsigned(v)), v);
    }
}

TEST(LogBuckets, OctavesSplitIntoSubBuckets)
{
    // Every value lands in a bucket whose upper edge is >= the value
    // and within 12.5% of it.
    for (std::uint64_t v = 8; v < 100'000; v = v * 9 / 8 + 1) {
        const unsigned idx = LogBuckets::bucketIndex(v);
        const std::uint64_t edge = LogBuckets::bucketUpperEdge(idx);
        EXPECT_GE(edge, v) << "v=" << v;
        EXPECT_LE(double(edge), double(v) * 1.125) << "v=" << v;
        // Bucket indexing is consistent: the edge maps to itself.
        EXPECT_EQ(LogBuckets::bucketIndex(edge), idx) << "v=" << v;
    }
}

TEST(LogBuckets, NegativeSamplesClampToBucketZero)
{
    LogBuckets b;
    b.add(-5.0);
    b.add(0.0);
    EXPECT_EQ(b.total(), 2u);
    EXPECT_DOUBLE_EQ(b.percentile(1.0), 0.0);
}

TEST(LogBuckets, MergeSumsCounts)
{
    LogBuckets a, b;
    a.addValue(3);
    b.addValue(1'000);
    a.merge(b);
    EXPECT_EQ(a.total(), 2u);
    EXPECT_DOUBLE_EQ(a.percentile(0.5), 3.0);
    EXPECT_GE(a.percentile(1.0), 1'000.0);
}

TEST(Percent, Delta)
{
    EXPECT_DOUBLE_EQ(percentDelta(10.0, 12.0), 20.0);
    EXPECT_DOUBLE_EQ(percentDelta(10.0, 8.0), -20.0);
    EXPECT_DOUBLE_EQ(percentDelta(0.0, 5.0), 0.0);
}

TEST(Percent, Improvement)
{
    // Lower cost is an improvement: 10 -> 8 is +20 %.
    EXPECT_DOUBLE_EQ(percentImprovement(10.0, 8.0), 20.0);
    EXPECT_DOUBLE_EQ(percentImprovement(10.0, 12.0), -20.0);
}

TEST(Mean, Vector)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({3.0}), 3.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Mpki, Computation)
{
    EXPECT_DOUBLE_EQ(mpki(5000, 1'000'000), 5.0);
    EXPECT_DOUBLE_EQ(mpki(0, 1'000'000), 0.0);
    EXPECT_DOUBLE_EQ(mpki(5, 0), 0.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-1.0);
    h.add(0.0);
    h.add(5.5);
    h.add(9.999);
    h.add(10.0);
    h.add(42.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(5), 1u);
    EXPECT_EQ(h.bucketCount(9), 1u);
    EXPECT_EQ(h.total(), 6u);
}

} // namespace
} // namespace adcache
