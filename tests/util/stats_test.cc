#include "util/stats.hh"

#include <gtest/gtest.h>

namespace adcache
{
namespace
{

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
}

TEST(RunningStatDeathTest, EmptyMinMaxAssert)
{
    // min()/max() of an empty accumulator are meaningless; they must
    // trip adcache_assert instead of silently returning 0.0.
    RunningStat s;
    EXPECT_DEATH(s.min(), "assertion 'count_ > 0' failed");
    EXPECT_DEATH(s.max(), "assertion 'count_ > 0' failed");
}

TEST(RunningStat, TracksMinMaxMean)
{
    RunningStat s;
    s.add(2.0);
    s.add(4.0);
    s.add(9.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, NegativeValues)
{
    RunningStat s;
    s.add(-3.0);
    s.add(1.0);
    EXPECT_DOUBLE_EQ(s.min(), -3.0);
    EXPECT_DOUBLE_EQ(s.mean(), -1.0);
}

TEST(Percent, Delta)
{
    EXPECT_DOUBLE_EQ(percentDelta(10.0, 12.0), 20.0);
    EXPECT_DOUBLE_EQ(percentDelta(10.0, 8.0), -20.0);
    EXPECT_DOUBLE_EQ(percentDelta(0.0, 5.0), 0.0);
}

TEST(Percent, Improvement)
{
    // Lower cost is an improvement: 10 -> 8 is +20 %.
    EXPECT_DOUBLE_EQ(percentImprovement(10.0, 8.0), 20.0);
    EXPECT_DOUBLE_EQ(percentImprovement(10.0, 12.0), -20.0);
}

TEST(Mean, Vector)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({3.0}), 3.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Mpki, Computation)
{
    EXPECT_DOUBLE_EQ(mpki(5000, 1'000'000), 5.0);
    EXPECT_DOUBLE_EQ(mpki(0, 1'000'000), 0.0);
    EXPECT_DOUBLE_EQ(mpki(5, 0), 0.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-1.0);
    h.add(0.0);
    h.add(5.5);
    h.add(9.999);
    h.add(10.0);
    h.add(42.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(5), 1u);
    EXPECT_EQ(h.bucketCount(9), 1u);
    EXPECT_EQ(h.total(), 6u);
}

} // namespace
} // namespace adcache
