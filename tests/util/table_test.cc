#include "util/table.hh"

#include <gtest/gtest.h>

namespace adcache
{
namespace
{

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable t({"bench", "mpki"});
    t.addRow({"art", "12.3"});
    t.addRow({"mcf", "55.0"});
    const std::string out = t.render();
    EXPECT_NE(out.find("bench"), std::string::npos);
    EXPECT_NE(out.find("mpki"), std::string::npos);
    EXPECT_NE(out.find("art"), std::string::npos);
    EXPECT_NE(out.find("55.0"), std::string::npos);
}

TEST(TextTable, ColumnsAligned)
{
    TextTable t({"a", "b"});
    t.addRow({"longname", "1"});
    const std::string out = t.render();
    // Every line has the same length (columns are padded).
    std::size_t first = out.find('\n');
    std::size_t prev = 0, len = first;
    while (prev < out.size()) {
        std::size_t next = out.find('\n', prev);
        if (next == std::string::npos)
            break;
        EXPECT_EQ(next - prev, len);
        prev = next + 1;
    }
}

TEST(TextTable, NumFormatting)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::num(1.0, 0), "1");
    EXPECT_EQ(TextTable::num(-2.5, 1), "-2.5");
}

TEST(TextTable, EmptyTableRenders)
{
    TextTable t({"only", "header"});
    const std::string out = t.render();
    EXPECT_NE(out.find("only"), std::string::npos);
}

} // namespace
} // namespace adcache
