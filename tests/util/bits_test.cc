#include "util/bits.hh"

#include <gtest/gtest.h>

namespace adcache
{
namespace
{

TEST(Bits, IsPowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1024));
    EXPECT_FALSE(isPowerOfTwo(1023));
    EXPECT_TRUE(isPowerOfTwo(std::uint64_t{1} << 63));
}

TEST(Bits, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4), 2u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(1025), 10u);
    EXPECT_EQ(floorLog2(std::uint64_t{1} << 40), 40u);
}

TEST(Bits, LowMask)
{
    EXPECT_EQ(lowMask(0), 0u);
    EXPECT_EQ(lowMask(1), 1u);
    EXPECT_EQ(lowMask(8), 0xFFu);
    EXPECT_EQ(lowMask(64), ~std::uint64_t{0});
}

TEST(Bits, ExtractBits)
{
    EXPECT_EQ(bits(0xABCD, 0, 4), 0xDu);
    EXPECT_EQ(bits(0xABCD, 4, 4), 0xCu);
    EXPECT_EQ(bits(0xABCD, 8, 8), 0xABu);
}

TEST(Bits, XorFoldKnownValues)
{
    // 0xABCD folded to 8 bits: 0xCD ^ 0xAB = 0x66.
    EXPECT_EQ(xorFold(0xABCD, 8), 0x66u);
    // Folding a value that already fits is the identity.
    EXPECT_EQ(xorFold(0x3F, 8), 0x3Fu);
    EXPECT_EQ(xorFold(0, 8), 0u);
    EXPECT_EQ(xorFold(0x1234, 0), 0u);
}

TEST(Bits, XorFoldStaysInWidth)
{
    const std::uint64_t values[] = {0x123456789ABCDEFull,
                                    ~std::uint64_t{0}};
    for (std::uint64_t v : values) {
        for (unsigned n : {4u, 6u, 8u, 10u, 12u})
            EXPECT_LE(xorFold(v, n), lowMask(n));
    }
}

TEST(Bits, XorFoldDiffersFromLowBits)
{
    // The two partial-tag hashes must actually differ for tags with
    // entropy above the fold width (the abl_tag_hash bench relies on
    // this).
    const std::uint64_t tag = 0x5A3C;
    EXPECT_NE(xorFold(tag, 8), tag & lowMask(8));
}

} // namespace
} // namespace adcache
