#include "util/sat_counter.hh"

#include <gtest/gtest.h>

namespace adcache
{
namespace
{

TEST(SatCounter, StartsAtInitial)
{
    SatCounter c(3, 5);
    EXPECT_EQ(c.value(), 5u);
    EXPECT_EQ(c.max(), 7u);
}

TEST(SatCounter, SaturatesHigh)
{
    SatCounter c(2, 0);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 3u);
    EXPECT_TRUE(c.saturated());
}

TEST(SatCounter, SaturatesLow)
{
    SatCounter c(2, 3);
    for (int i = 0; i < 10; ++i)
        c.decrement();
    EXPECT_EQ(c.value(), 0u);
}

TEST(SatCounter, HighThreshold)
{
    // 2-bit counter: values 2 and 3 are "high" (taken).
    SatCounter c(2, 0);
    EXPECT_FALSE(c.high());
    c.increment();  // 1
    EXPECT_FALSE(c.high());
    c.increment();  // 2
    EXPECT_TRUE(c.high());
    c.increment();  // 3
    EXPECT_TRUE(c.high());
}

TEST(SatCounter, Halve)
{
    SatCounter c(5, 0);
    c.set(21);
    c.halve();
    EXPECT_EQ(c.value(), 10u);
    c.halve();
    EXPECT_EQ(c.value(), 5u);
}

TEST(SatCounter, FiveBitLfuRange)
{
    // The paper's LFU counters are 5-bit (Table 1).
    SatCounter c(5, 0);
    EXPECT_EQ(c.max(), 31u);
    for (int i = 0; i < 100; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 31u);
}

TEST(SatCounter, SetWithinRange)
{
    SatCounter c(4, 0);
    c.set(15);
    EXPECT_EQ(c.value(), 15u);
}

} // namespace
} // namespace adcache
