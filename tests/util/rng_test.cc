#include "util/rng.hh"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace adcache
{
namespace
{

TEST(Rng, DeterministicFromSeed)
{
    Rng a(12345), b(12345);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next64() == b.next64() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowOneIsAlwaysZero)
{
    Rng rng(9);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng rng(17);
    std::vector<int> buckets(8, 0);
    const int n = 80000;
    for (int i = 0; i < n; ++i)
        ++buckets[rng.below(8)];
    for (int b : buckets)
        EXPECT_NEAR(b, n / 8, n / 80);
}

TEST(ZipfSampler, RanksInRange)
{
    Rng rng(19);
    ZipfSampler zipf(100, 0.9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(zipf(rng), 100u);
}

TEST(ZipfSampler, HeadDominatesTail)
{
    Rng rng(23);
    ZipfSampler zipf(1000, 1.0);
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 50000; ++i)
        ++counts[zipf(rng)];
    // Rank 0 should be drawn far more often than rank 500.
    EXPECT_GT(counts[0], 20 * (counts[500] + 1));
}

TEST(ZipfSampler, SingleElement)
{
    Rng rng(29);
    ZipfSampler zipf(1, 0.8);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(zipf(rng), 0u);
}

TEST(ZipfSampler, ZeroExponentIsUniform)
{
    Rng rng(31);
    ZipfSampler zipf(4, 0.0);
    std::vector<int> counts(4, 0);
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        ++counts[zipf(rng)];
    for (int c : counts)
        EXPECT_NEAR(c, n / 4, n / 40);
}

} // namespace
} // namespace adcache
