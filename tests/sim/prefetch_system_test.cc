/**
 * @file
 * System-level integration of the L2 prefetchers (extension): demand
 * accounting must stay exact, and sequential workloads must benefit.
 */

#include <gtest/gtest.h>

#include "sim/system.hh"
#include "workloads/workload.hh"

namespace adcache
{
namespace
{

/** A strongly sequential (streaming) workload. */
WorkloadSpec
streamingSpec()
{
    WorkloadSpec spec;
    spec.name = "stream";
    spec.seed = 9;
    PhaseSpec p;
    p.instructions = 100'000;
    p.loadFrac = 0.35;
    p.storeFrac = 0.05;
    p.kernels.push_back(
        KernelSpec::linearLoop(0x1000'0000, 8 << 20, 64));
    spec.phases.push_back(p);
    return spec;
}

/** A random-access workload no prefetcher can predict. */
WorkloadSpec
randomSpec()
{
    WorkloadSpec spec;
    spec.name = "random";
    spec.seed = 11;
    PhaseSpec p;
    p.instructions = 100'000;
    p.loadFrac = 0.35;
    p.storeFrac = 0.05;
    p.kernels.push_back(
        KernelSpec::uniformRandom(0x1000'0000, 8 << 20));
    spec.phases.push_back(p);
    return spec;
}

SimResult
run(PrefetcherType type, const WorkloadSpec &spec)
{
    SystemConfig cfg;
    cfg.l2Prefetcher = type;
    System sys(cfg);
    WorkloadGenerator gen(spec);
    return sys.runFunctional(gen, 400'000);
}

TEST(PrefetchSystem, NoPrefetcherMeansDemandEqualsRaw)
{
    const auto res = run(PrefetcherType::None, streamingSpec());
    EXPECT_EQ(res.prefetchesIssued, 0u);
    EXPECT_EQ(res.l2DemandAccesses, res.l2.accesses);
    EXPECT_EQ(res.l2DemandMisses, res.l2.misses);
    EXPECT_DOUBLE_EQ(res.l2DemandMpki, res.l2Mpki);
}

TEST(PrefetchSystem, NextLineHelpsStreaming)
{
    const auto none = run(PrefetcherType::None, streamingSpec());
    const auto next = run(PrefetcherType::NextLine, streamingSpec());
    EXPECT_GT(next.prefetchesIssued, 0u);
    EXPECT_LT(next.l2DemandMisses, none.l2DemandMisses / 2)
        << "sequential misses should be largely covered";
}

TEST(PrefetchSystem, StrideHelpsStreaming)
{
    const auto none = run(PrefetcherType::None, streamingSpec());
    const auto stride = run(PrefetcherType::Stride, streamingSpec());
    EXPECT_LT(stride.l2DemandMisses, none.l2DemandMisses);
}

TEST(PrefetchSystem, AdaptiveHybridHelpsStreaming)
{
    const auto none = run(PrefetcherType::None, streamingSpec());
    const auto hybrid =
        run(PrefetcherType::AdaptiveHybrid, streamingSpec());
    EXPECT_LT(hybrid.l2DemandMisses, none.l2DemandMisses);
}

TEST(PrefetchSystem, RandomTrafficGainsLittle)
{
    const auto none = run(PrefetcherType::None, randomSpec());
    const auto next = run(PrefetcherType::NextLine, randomSpec());
    // Useless prefetches may even pollute; demand misses must not
    // drop meaningfully on unpredictable traffic.
    EXPECT_GT(double(next.l2DemandMisses),
              0.9 * double(none.l2DemandMisses));
}

TEST(PrefetchSystem, DemandStatsExcludePrefetchTraffic)
{
    const auto res = run(PrefetcherType::NextLine, streamingSpec());
    EXPECT_GT(res.prefetchesIssued, 0u);
    // Raw cache accesses include the prefetch probes; demand ones
    // do not.
    EXPECT_EQ(res.l2.accesses,
              res.l2DemandAccesses + res.prefetchesIssued);
}

TEST(PrefetchSystem, WorksWithAdaptiveL2)
{
    SystemConfig cfg;
    cfg.l2 = L2Spec::adaptiveLruLfu();
    cfg.l2Prefetcher = PrefetcherType::AdaptiveHybrid;
    System sys(cfg);
    WorkloadGenerator gen(streamingSpec());
    const auto res = sys.runFunctional(gen, 200'000);
    EXPECT_GT(res.prefetchesIssued, 0u);
    EXPECT_GT(res.l2DemandAccesses, 0u);
}

TEST(PrefetchSystem, TimedRunBenefitsFromPrefetching)
{
    SystemConfig none_cfg, pf_cfg;
    pf_cfg.l2Prefetcher = PrefetcherType::Stride;
    System none_sys(none_cfg), pf_sys(pf_cfg);
    WorkloadGenerator g1(streamingSpec()), g2(streamingSpec());
    const auto none = none_sys.runTimed(g1, 300'000);
    const auto pf = pf_sys.runTimed(g2, 300'000);
    EXPECT_LT(pf.cpi, none.cpi);
}

} // namespace
} // namespace adcache
