#include "sim/report.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>

#include "sim/experiment.hh"

namespace adcache
{
namespace
{

ReportGrid
sampleGrid()
{
    ReportGrid grid;
    grid.experiment = "unit \"grid\"";
    grid.addMeta("instr_budget", "1000");
    ReportRow &a = grid.add("parser", "LRU");
    a.stats.counter("l2.misses", 1234);
    a.stats.value("cpi", 1.5);
    a.stats.text("label", "LRU (512KB, 8-way)");
    ReportRow &b = grid.add("mcf", "Adaptive");
    b.stats.counter("l2.misses", 99);
    b.stats.value("cpi", 0.125);
    // 'extra' exists only in this row: CSV must leave the other
    // row's cell empty, JSON simply omits it there.
    b.stats.counter("extra", 7);
    return grid;
}

TEST(Report, ParseFormat)
{
    EXPECT_EQ(parseReportFormat("json", ReportFormat::Table),
              ReportFormat::Json);
    EXPECT_EQ(parseReportFormat("csv", ReportFormat::Table),
              ReportFormat::Csv);
    EXPECT_EQ(parseReportFormat("table", ReportFormat::Json),
              ReportFormat::Table);
    EXPECT_EQ(parseReportFormat("JSON", ReportFormat::Table),
              ReportFormat::Json);
    EXPECT_EQ(parseReportFormat(nullptr, ReportFormat::Csv),
              ReportFormat::Csv);
    EXPECT_EQ(parseReportFormat("bogus", ReportFormat::Table),
              ReportFormat::Table);
}

TEST(Report, FormatNames)
{
    EXPECT_STREQ(reportFormatName(ReportFormat::Table), "table");
    EXPECT_STREQ(reportFormatName(ReportFormat::Json), "json");
    EXPECT_STREQ(reportFormatName(ReportFormat::Csv), "csv");
}

TEST(Report, JsonCarriesNamesAndValues)
{
    const std::string json = renderJson(sampleGrid());
    // Escaped experiment title.
    EXPECT_NE(json.find("\"unit \\\"grid\\\"\""), std::string::npos);
    EXPECT_NE(json.find("\"instr_budget\": \"1000\""),
              std::string::npos);
    // Counters emit as integers, values as doubles, text as strings.
    EXPECT_NE(json.find("\"l2.misses\": 1234"), std::string::npos);
    EXPECT_NE(json.find("\"cpi\": 1.5"), std::string::npos);
    EXPECT_NE(json.find("\"label\": \"LRU (512KB, 8-way)\""),
              std::string::npos);
    EXPECT_NE(json.find("\"benchmark\": \"parser\""),
              std::string::npos);
    EXPECT_NE(json.find("\"variant\": \"Adaptive\""),
              std::string::npos);
    EXPECT_NE(json.find("\"cpi\": 0.125"), std::string::npos);
    EXPECT_EQ(json.back(), '\n');
}

TEST(Report, JsonRoundTripsDoublePrecision)
{
    ReportGrid grid;
    grid.experiment = "precision";
    grid.add("b", "v").stats.value("pi", 3.141592653589793);
    const std::string json = renderJson(grid);
    const auto pos = json.find("\"pi\": ");
    ASSERT_NE(pos, std::string::npos);
    const double parsed = std::strtod(json.c_str() + pos + 6, nullptr);
    EXPECT_EQ(parsed, 3.141592653589793);  // bit-exact round trip
}

TEST(Report, JsonNonFiniteBecomesNull)
{
    ReportGrid grid;
    grid.experiment = "nonfinite";
    ReportRow &row = grid.add("b", "v");
    row.stats.value("bad", std::numeric_limits<double>::quiet_NaN());
    row.stats.value("inf", std::numeric_limits<double>::infinity());
    const std::string json = renderJson(grid);
    EXPECT_NE(json.find("\"bad\": null"), std::string::npos);
    EXPECT_NE(json.find("\"inf\": null"), std::string::npos);
}

TEST(Report, CsvShape)
{
    const std::string csv = renderCsv(sampleGrid());
    // Metadata rides ahead of the header as '#' comment lines.
    const auto eol0 = csv.find('\n');
    ASSERT_NE(eol0, std::string::npos);
    EXPECT_EQ(csv.substr(0, eol0), "# instr_budget: 1000");
    // Header: label columns then the union of stat names in
    // first-seen order.
    const auto eol = csv.find('\n', eol0 + 1);
    ASSERT_NE(eol, std::string::npos);
    EXPECT_EQ(csv.substr(eol0 + 1, eol - eol0 - 1),
              "benchmark,variant,l2.misses,cpi,label,extra");
    // Row 1 has no 'extra' (trailing cell left empty); the label
    // contains a comma so it must arrive quoted.
    const auto eol2 = csv.find('\n', eol + 1);
    EXPECT_EQ(csv.substr(eol + 1, eol2 - eol - 1),
              "parser,LRU,1234,1.5,\"LRU (512KB, 8-way)\",");
    // Row 2 has no 'label'.
    EXPECT_NE(csv.find("mcf,Adaptive,99,0.125,,7"),
              std::string::npos);
}

TEST(Report, JsonMetaIsOnePairPerLine)
{
    ReportGrid grid;
    grid.experiment = "meta";
    grid.addMeta("alpha", "1");
    grid.addMeta("beta", "2");
    const std::string json = renderJson(grid);
    // Each pair on its own line so line-oriented filters can match
    // individual keys (the verify recipe greps out "run." lines).
    EXPECT_NE(json.find("\n    \"alpha\": \"1\",\n"),
              std::string::npos);
    EXPECT_NE(json.find("\n    \"beta\": \"2\"\n"),
              std::string::npos);
}

TEST(Report, EmitReportStampsRunMetadata)
{
    std::FILE *tmp = std::tmpfile();
    ASSERT_NE(tmp, nullptr);
    emitReport(sampleGrid(), ReportFormat::Json, tmp);
    std::fseek(tmp, 0, SEEK_SET);
    std::string text(1 << 16, '\0');
    text.resize(std::fread(text.data(), 1, text.size(), tmp));
    std::fclose(tmp);

    // Machine-readable artifacts are self-describing.
    EXPECT_NE(text.find("\"run.build_type\""), std::string::npos);
    EXPECT_NE(text.find("\"run.compiler\""), std::string::npos);
    EXPECT_NE(text.find("\"run.timestamp\""), std::string::npos);
    EXPECT_NE(text.find("\"run.trace_compiled\""),
              std::string::npos);
    // The grid's own metadata is preserved ahead of it.
    EXPECT_NE(text.find("\"instr_budget\": \"1000\""),
              std::string::npos);

    // CSV gets the same pairs as comment lines.
    std::FILE *tmp2 = std::tmpfile();
    ASSERT_NE(tmp2, nullptr);
    emitReport(sampleGrid(), ReportFormat::Csv, tmp2);
    std::fseek(tmp2, 0, SEEK_SET);
    std::string csv(1 << 16, '\0');
    csv.resize(std::fread(csv.data(), 1, csv.size(), tmp2));
    std::fclose(tmp2);
    EXPECT_NE(csv.find("# run.build_type: "), std::string::npos);
    EXPECT_NE(csv.find("# instr_budget: 1000"), std::string::npos);

    // Tables stay human-sized: no run metadata.
    EXPECT_EQ(renderTable(sampleGrid()).find("run.build_type"),
              std::string::npos);
}

TEST(Report, TableListsEveryRow)
{
    const std::string table = renderTable(sampleGrid());
    EXPECT_NE(table.find("parser"), std::string::npos);
    EXPECT_NE(table.find("mcf"), std::string::npos);
    EXPECT_NE(table.find("l2.misses"), std::string::npos);
}

TEST(Report, GridFromSuiteRoundTripsStats)
{
    const auto *bench = findBenchmark("parser");
    ASSERT_NE(bench, nullptr);
    const std::vector<L2Spec> variants = {L2Spec::lru(),
                                          L2Spec::adaptiveLruLfu()};
    const auto rows = runSuite({bench}, variants, 40'000, false);
    const ReportGrid grid =
        gridFromSuite("suite", rows, {"LRU", "Adaptive"});

    ASSERT_EQ(grid.rows.size(), 2u);
    EXPECT_EQ(grid.rows[0].benchmark, "parser");
    EXPECT_EQ(grid.rows[0].variant, "LRU");
    EXPECT_EQ(grid.rows[1].variant, "Adaptive");

    // The registry must carry the exact values of the SimResult.
    const auto &res = rows[0].results[0];
    const StatRegistry &stats = grid.rows[0].stats;
    EXPECT_EQ(stats.numeric("l2.misses"), double(res.l2.misses));
    EXPECT_EQ(stats.numeric("core.instructions"),
              double(res.core.instructions));
    EXPECT_EQ(stats.numeric("l2_mpki"), res.l2Mpki);
    const StatEntry *label = stats.find("l2_label");
    ASSERT_NE(label, nullptr);
    EXPECT_EQ(label->text, res.l2Label);

    // And the JSON rendering of the grid names both variants.
    const std::string json = renderJson(grid);
    EXPECT_NE(json.find("\"variant\": \"LRU\""), std::string::npos);
    EXPECT_NE(json.find("\"variant\": \"Adaptive\""),
              std::string::npos);
}

} // namespace
} // namespace adcache
