#include "sim/system.hh"

#include <gtest/gtest.h>

namespace adcache
{
namespace
{

/** A tiny deterministic workload exercising all instruction types. */
std::vector<TraceInstr>
mixedProgram(int n)
{
    std::vector<TraceInstr> v;
    Rng rng(5);
    for (int i = 0; i < n; ++i) {
        TraceInstr instr;
        instr.pc = 0x400000 + 4 * (i % 512);
        const double u = rng.uniform();
        if (u < 0.25) {
            instr.cls = InstrClass::Load;
            instr.memAddr = rng.below(1 << 16) * 8;
            instr.dst = std::uint8_t(1 + i % 32);
        } else if (u < 0.35) {
            instr.cls = InstrClass::Store;
            instr.memAddr = rng.below(1 << 16) * 8;
        } else if (u < 0.45) {
            instr.cls = InstrClass::Branch;
            instr.taken = rng.chance(0.8);
            instr.target = 0x400000;
        } else {
            instr.cls = InstrClass::IntAlu;
            instr.dst = std::uint8_t(1 + i % 32);
            instr.src1 = std::uint8_t(1 + (i + 7) % 32);
        }
        v.push_back(instr);
    }
    return v;
}

TEST(System, TimedRunProducesSaneCpi)
{
    SystemConfig cfg;
    System sys(cfg);
    VectorSource src(mixedProgram(50'000));
    const auto res = sys.runTimed(src, UINT64_MAX);
    EXPECT_EQ(res.core.instructions, 50'000u);
    EXPECT_GT(res.cpi, 0.1);
    EXPECT_LT(res.cpi, 50.0);
    EXPECT_GT(res.l1d.accesses, 0u);
    EXPECT_GT(res.l2.accesses, 0u);
}

TEST(System, FunctionalAndTimedSeeSameL1DStream)
{
    // The reference stream is program-order in both modes, so the
    // data-side miss counts must agree exactly.
    SystemConfig cfg;
    System timed_sys(cfg), func_sys(cfg);
    VectorSource s1(mixedProgram(30'000)), s2(mixedProgram(30'000));
    const auto timed = timed_sys.runTimed(s1, UINT64_MAX);
    const auto func = func_sys.runFunctional(s2, UINT64_MAX);
    EXPECT_EQ(timed.l1d.misses, func.l1d.misses);
    EXPECT_EQ(timed.l1d.accesses, func.l1d.accesses);
}

TEST(System, L2TrafficIsL1MissesPlusWritebacks)
{
    SystemConfig cfg;
    System sys(cfg);
    VectorSource src(mixedProgram(30'000));
    const auto res = sys.runFunctional(src, UINT64_MAX);
    EXPECT_EQ(res.l2.accesses, res.l1d.misses + res.l1i.misses +
                                   res.l1d.writebacks +
                                   res.l1i.writebacks);
}

TEST(System, HigherMemoryLatencyRaisesCpi)
{
    SystemConfig fast_cfg, slow_cfg;
    fast_cfg.memory.accessLatency = 20;
    slow_cfg.memory.accessLatency = 500;
    System fast(fast_cfg), slow(slow_cfg);
    VectorSource s1(mixedProgram(30'000)), s2(mixedProgram(30'000));
    const double fast_cpi = fast.runTimed(s1, UINT64_MAX).cpi;
    const double slow_cpi = slow.runTimed(s2, UINT64_MAX).cpi;
    EXPECT_GT(slow_cpi, fast_cpi);
}

TEST(System, AdaptiveL2Pluggable)
{
    SystemConfig cfg;
    cfg.l2 = L2Spec::adaptiveLruLfu();
    System sys(cfg);
    VectorSource src(mixedProgram(30'000));
    const auto res = sys.runFunctional(src, UINT64_MAX);
    EXPECT_NE(res.l2Label.find("Adaptive"), std::string::npos);
    EXPECT_GT(res.l2.accesses, 0u);
}

TEST(System, SbarL2Pluggable)
{
    SystemConfig cfg;
    cfg.l2 = L2Spec::fromSbar(SbarConfig{});
    System sys(cfg);
    VectorSource src(mixedProgram(30'000));
    const auto res = sys.runFunctional(src, UINT64_MAX);
    EXPECT_NE(res.l2Label.find("SBAR"), std::string::npos);
}

TEST(System, AdaptiveL1Supported)
{
    SystemConfig cfg;
    cfg.adaptiveL1i = true;
    cfg.adaptiveL1d = true;
    System sys(cfg);
    VectorSource src(mixedProgram(30'000));
    const auto res = sys.runFunctional(src, UINT64_MAX);
    EXPECT_GT(res.l1d.accesses, 0u);
    EXPECT_GT(res.l1i.accesses, 0u);
}

TEST(System, MpkiAccounting)
{
    SystemConfig cfg;
    System sys(cfg);
    VectorSource src(mixedProgram(40'000));
    const auto res = sys.runFunctional(src, UINT64_MAX);
    EXPECT_DOUBLE_EQ(res.l2Mpki,
                     1000.0 * double(res.l2.misses) / 40'000.0);
}

TEST(System, InstructionBudgetHonoured)
{
    SystemConfig cfg;
    System sys(cfg);
    VectorSource src(mixedProgram(50'000));
    const auto res = sys.runTimed(src, 12'345);
    EXPECT_EQ(res.core.instructions, 12'345u);
}

TEST(SystemConfig, DescribeMentionsTableOneEntries)
{
    const std::string d = SystemConfig{}.describe();
    EXPECT_NE(d.find("16KB"), std::string::npos);
    EXPECT_NE(d.find("512KB"), std::string::npos);
    EXPECT_NE(d.find("store buffer"), std::string::npos);
    EXPECT_NE(d.find("gshare"), std::string::npos);
}

} // namespace
} // namespace adcache
