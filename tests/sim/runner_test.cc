#include "sim/runner.hh"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/experiment.hh"

namespace adcache
{
namespace
{

/** The 3x3 grid used by the determinism tests. */
std::vector<RunJob>
testGrid(InstCount instrs)
{
    const std::vector<const BenchmarkDef *> benchmarks = {
        findBenchmark("parser"), findBenchmark("art-1"),
        findBenchmark("mcf")};
    const std::vector<L2Spec> variants = {
        L2Spec::lru(), L2Spec::policy(PolicyType::LFU),
        L2Spec::adaptiveLruLfu()};
    std::vector<RunJob> jobs;
    for (const auto *def : benchmarks) {
        for (const auto &spec : variants) {
            RunJob job;
            job.benchmark = def;
            job.config.l2 = spec;
            job.instrs = instrs;
            job.timed = true;
            job.sourceSeed = def->spec.seed;
            jobs.push_back(job);
        }
    }
    return jobs;
}

/** Every observable of a and b must match bit for bit. */
void
expectIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.benchmark, b.benchmark);
    EXPECT_EQ(a.l2Label, b.l2Label);
    EXPECT_EQ(a.core.instructions, b.core.instructions);
    EXPECT_EQ(a.core.cycles, b.core.cycles);
    EXPECT_EQ(a.l2.accesses, b.l2.accesses);
    EXPECT_EQ(a.l2.misses, b.l2.misses);
    EXPECT_EQ(a.l1d.misses, b.l1d.misses);
    EXPECT_EQ(a.cpi, b.cpi);  // bitwise: both sides same arithmetic
    EXPECT_EQ(a.l2Mpki, b.l2Mpki);

    // The registries must agree entry-by-entry, names and values.
    ASSERT_EQ(a.stats.size(), b.stats.size());
    for (std::size_t i = 0; i < a.stats.size(); ++i) {
        const auto &ea = a.stats.entries()[i];
        const auto &eb = b.stats.entries()[i];
        EXPECT_EQ(ea.name, eb.name);
        EXPECT_EQ(ea.kind, eb.kind);
        EXPECT_EQ(ea.counter, eb.counter);
        EXPECT_EQ(ea.value, eb.value);
        EXPECT_EQ(ea.text, eb.text);
    }
}

TEST(Runner, ParallelMatchesSerialBitForBit)
{
    const auto jobs = testGrid(60'000);
    const auto serial = runGrid(jobs, 1);
    const auto parallel = runGrid(jobs, 4);
    ASSERT_EQ(serial.size(), jobs.size());
    ASSERT_EQ(parallel.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        expectIdentical(serial[i], parallel[i]);
}

TEST(Runner, ResultOrderFollowsJobOrder)
{
    const auto jobs = testGrid(30'000);
    const auto results = runGrid(jobs, 3);
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(results[i].benchmark, jobs[i].benchmark->name);
}

TEST(Runner, ParseJobs)
{
    EXPECT_EQ(parseJobs(nullptr, 7), 7u);
    EXPECT_EQ(parseJobs("", 7), 7u);
    EXPECT_EQ(parseJobs("1", 7), 1u);
    EXPECT_EQ(parseJobs("16", 7), 16u);
    EXPECT_EQ(parseJobs("bogus", 7), 7u);
    EXPECT_EQ(parseJobs("0", 7), 7u);
    EXPECT_EQ(parseJobs("-3", 7), 7u);
    EXPECT_EQ(parseJobs("4x", 7), 7u);
    EXPECT_EQ(parseJobs("1000000", 7), 7u);
}

TEST(Runner, EffectiveJobsDegradesToSerial)
{
    // ADCACHE_JOBS=1 must select the in-thread serial path.
    EXPECT_EQ(effectiveJobs(9, 1), 1u);
    // Never more workers than jobs.
    EXPECT_EQ(effectiveJobs(2, 8), 2u);
    EXPECT_EQ(effectiveJobs(0, 8), 1u);
    EXPECT_EQ(effectiveJobs(9, 4), 4u);
}

TEST(Runner, RunnerJobsReadsEnvironment)
{
    setenv("ADCACHE_JOBS", "3", 1);
    EXPECT_EQ(runnerJobs(), 3u);
    unsetenv("ADCACHE_JOBS");
    EXPECT_GE(runnerJobs(), 1u);
}

TEST(Runner, SerialWorkerCountRunsInCallingThread)
{
    // With one worker no thread is spawned: the body observes the
    // calling thread's id.
    const auto caller = std::this_thread::get_id();
    bool same_thread = false;
    runIndexed(1, 1, [&](std::size_t) {
        same_thread = std::this_thread::get_id() == caller;
    });
    EXPECT_TRUE(same_thread);
}

TEST(Runner, RunIndexedVisitsEveryIndexOnce)
{
    constexpr std::size_t n = 57;
    std::vector<std::atomic<int>> hits(n);
    runIndexed(n, 4, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(Runner, PropagatesBodyException)
{
    EXPECT_THROW(runIndexed(8, 3,
                            [](std::size_t i) {
                                if (i == 5)
                                    throw std::runtime_error("boom");
                            }),
                 std::runtime_error);
}

TEST(Runner, ExecuteJobMatchesRunTimed)
{
    const auto *def = findBenchmark("parser");
    ASSERT_NE(def, nullptr);
    RunJob job;
    job.benchmark = def;
    job.config.l2 = L2Spec::adaptiveLruLfu();
    job.instrs = 40'000;
    job.timed = true;
    job.sourceSeed = def->spec.seed;
    const auto direct = runTimed(job.config, *def, 40'000);
    const auto viaJob = executeJob(job);
    expectIdentical(direct, viaJob);
}

} // namespace
} // namespace adcache
