#include "sim/experiment.hh"

#include <gtest/gtest.h>

#include <cstdlib>

namespace adcache
{
namespace
{

TEST(Experiment, ParseBudgetDefaultsWithoutEnv)
{
    EXPECT_EQ(parseInstrBudget(nullptr, 3'000'000), 3'000'000u);
}

TEST(Experiment, ParseBudgetReadsText)
{
    EXPECT_EQ(parseInstrBudget("42000", 3'000'000), 42'000u);
}

TEST(Experiment, ParseBudgetRejectsMalformed)
{
    EXPECT_EQ(parseInstrBudget("bogus", 3'000'000), 3'000'000u);
    EXPECT_EQ(parseInstrBudget("12x", 3'000'000), 3'000'000u);
    EXPECT_EQ(parseInstrBudget("0", 3'000'000), 3'000'000u);
    // strtoull would wrap these to huge positive budgets.
    EXPECT_EQ(parseInstrBudget("-5", 3'000'000), 3'000'000u);
    EXPECT_EQ(parseInstrBudget("+5", 3'000'000), 3'000'000u);
    EXPECT_EQ(parseInstrBudget(" 5", 3'000'000), 3'000'000u);
}

TEST(Experiment, BudgetIsParsedOnce)
{
    // The suite-wide budget is cached on first use; later environment
    // changes must not shift it mid-suite.
    const InstCount first = instrBudget();
    setenv("ADCACHE_INSTRS", "123456", 1);
    EXPECT_EQ(instrBudget(), first);
    unsetenv("ADCACHE_INSTRS");
    EXPECT_EQ(instrBudget(), first);
}

TEST(Experiment, RunSuiteShape)
{
    const auto *bench = findBenchmark("parser");
    ASSERT_NE(bench, nullptr);
    const std::vector<L2Spec> variants = {
        L2Spec::lru(), L2Spec::adaptiveLruLfu()};
    const auto rows = runSuite({bench}, variants, 50'000, false);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].benchmark, "parser");
    ASSERT_EQ(rows[0].results.size(), 2u);
    EXPECT_GT(rows[0].results[0].l2.accesses, 0u);
}

TEST(Experiment, AverageOfMetric)
{
    const auto *a = findBenchmark("parser");
    const auto *b = findBenchmark("gap");
    const std::vector<L2Spec> variants = {L2Spec::lru()};
    const auto rows = runSuite({a, b}, variants, 50'000, false);
    const auto avg = averageOf(rows, metricL2Mpki);
    ASSERT_EQ(avg.size(), 1u);
    const double expect = (rows[0].results[0].l2Mpki +
                           rows[1].results[0].l2Mpki) /
                          2.0;
    EXPECT_DOUBLE_EQ(avg[0], expect);
}

TEST(Experiment, TimedRunsFillCpi)
{
    const auto *bench = findBenchmark("parser");
    const auto res = runTimed(SystemConfig{}, *bench, 50'000);
    EXPECT_GT(res.cpi, 0.0);
    EXPECT_EQ(res.benchmark, "parser");
}

TEST(Experiment, FunctionalRunsSkipCpi)
{
    const auto *bench = findBenchmark("parser");
    const auto res = runFunctional(SystemConfig{}, *bench, 50'000);
    EXPECT_EQ(res.cpi, 0.0);
    EXPECT_GT(res.l2Mpki, 0.0);
}

TEST(Experiment, MetricExtractors)
{
    SimResult r;
    r.cpi = 1.5;
    r.l2Mpki = 7.0;
    r.l1iMpki = 0.5;
    r.l1dMpki = 20.0;
    EXPECT_DOUBLE_EQ(metricCpi(r), 1.5);
    EXPECT_DOUBLE_EQ(metricL2Mpki(r), 7.0);
    EXPECT_DOUBLE_EQ(metricL1iMpki(r), 0.5);
    EXPECT_DOUBLE_EQ(metricL1dMpki(r), 20.0);
}

} // namespace
} // namespace adcache
