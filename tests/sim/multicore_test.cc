#include "sim/multicore.hh"

#include <gtest/gtest.h>

namespace adcache
{
namespace
{

TEST(SharedL2, RunsTwoWorkloads)
{
    SharedL2Config config;
    config.workloads = {"parser", "gap"};
    const auto res = runSharedL2(config, 200'000);
    EXPECT_EQ(res.totalInstructions, 200'000u);
    ASSERT_EQ(res.cores.size(), 2u);
    // Round-robin: the cores split the budget evenly.
    EXPECT_NEAR(double(res.cores[0].instructions), 100'000.0, 2.0);
    EXPECT_NEAR(double(res.cores[1].instructions), 100'000.0, 2.0);
    EXPECT_GT(res.l2.accesses, 0u);
    EXPECT_GT(res.l2Mpki, 0.0);
}

TEST(SharedL2, PerCoreMissesSumToTotal)
{
    SharedL2Config config;
    config.workloads = {"parser", "swim", "gap"};
    const auto res = runSharedL2(config, 300'000);
    std::uint64_t sum_accesses = 0, sum_misses = 0;
    for (const auto &core : res.cores) {
        sum_accesses += core.l2Accesses;
        sum_misses += core.l2Misses;
    }
    EXPECT_EQ(sum_accesses, res.l2.accesses);
    EXPECT_EQ(sum_misses, res.l2.misses);
}

TEST(SharedL2, AddressSpacesDisjoint)
{
    // The same benchmark twice: with offset address spaces the two
    // copies double the combined working set, so the shared cache
    // misses more than a single copy would per instruction.
    SharedL2Config one;
    one.workloads = {"parser"};
    SharedL2Config two;
    two.workloads = {"parser", "parser"};
    const auto r1 = runSharedL2(one, 400'000);
    const auto r2 = runSharedL2(two, 400'000);
    EXPECT_GT(r2.l2Mpki, r1.l2Mpki * 1.05)
        << "co-running copies must contend";
}

TEST(SharedL2, AdaptiveHelpsDissimilarMix)
{
    // The future-work hypothesis: dissimilar co-runners (one LFU-
    // friendly, one LRU-friendly) give per-set adaptivity room to
    // help. The adaptive shared L2 must beat the LRU shared L2.
    SharedL2Config lru;
    lru.workloads = {"art-1", "lucas"};
    SharedL2Config adaptive = lru;
    adaptive.l2 = L2Spec::adaptiveLruLfu();
    const auto r_lru = runSharedL2(lru, 2'000'000);
    const auto r_ad = runSharedL2(adaptive, 2'000'000);
    EXPECT_LT(r_ad.l2Mpki, r_lru.l2Mpki);
}

TEST(SharedL2, UnknownWorkloadDies)
{
    SharedL2Config config;
    config.workloads = {"no-such-program"};
    EXPECT_DEATH(runSharedL2(config, 1000), "unknown benchmark");
}

TEST(SharedL2, LabelReflectsL2)
{
    SharedL2Config config;
    config.workloads = {"gap"};
    config.l2 = L2Spec::adaptiveLruLfu(8);
    const auto res = runSharedL2(config, 50'000);
    EXPECT_NE(res.l2Label.find("Adaptive"), std::string::npos);
}

} // namespace
} // namespace adcache
