/**
 * @file
 * End-to-end properties of the full reproduction: the adaptive L2
 * must track the better component policy on the headline workloads,
 * and the whole-suite averages must show the paper's qualitative
 * result (adaptive below LRU, near or below the best component).
 * Budgets are kept small so the suite stays fast; the bench harness
 * reproduces the full-scale numbers.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/experiment.hh"

namespace adcache
{
namespace
{

constexpr InstCount testBudget = 1'500'000;

struct TrackingCase
{
    const char *bench;
    /** Tolerated overshoot of adaptive over min(LRU, LFU). */
    double envelope;
};

class AdaptiveTracking : public ::testing::TestWithParam<TrackingCase>
{
};

TEST_P(AdaptiveTracking, LandsNearBetterComponent)
{
    const auto c = GetParam();
    const auto *bench = findBenchmark(c.bench);
    ASSERT_NE(bench, nullptr);
    const std::vector<L2Spec> variants = {
        L2Spec::lru(), L2Spec::policy(PolicyType::LFU),
        L2Spec::adaptiveLruLfu()};
    const auto rows = runSuite({bench}, variants, testBudget, false);
    const double lru = rows[0].results[0].l2Mpki;
    const double lfu = rows[0].results[1].l2Mpki;
    const double adaptive = rows[0].results[2].l2Mpki;
    const double best = std::min(lru, lfu);
    EXPECT_LE(adaptive, best * (1.0 + c.envelope))
        << "LRU=" << lru << " LFU=" << lfu << " adaptive=" << adaptive;
}

INSTANTIATE_TEST_SUITE_P(
    Headliners, AdaptiveTracking,
    ::testing::Values(
        // LFU-favoured programs: warmup costs a mid-teens overshoot
        // at this reduced budget, shrinking with run length.
        TrackingCase{"art-1", 0.25}, TrackingCase{"art-2", 0.25},
        TrackingCase{"x11quake-1", 0.25},
        TrackingCase{"tiff2rgba", 0.25},
        // LRU-favoured programs: adaptive must sit on LRU tightly.
        TrackingCase{"lucas", 0.06}, TrackingCase{"bzip2", 0.06},
        TrackingCase{"fma3d", 0.06}, TrackingCase{"gcc-2", 0.06},
        // Near-neutral programs.
        TrackingCase{"parser", 0.05}, TrackingCase{"swim", 0.02}),
    [](const auto &info) {
        std::string n = info.param.bench;
        for (auto &ch : n)
            if (ch == '-')
                ch = '_';
        return n;
    });

TEST(Integration, ArtPrefersLfuAndAdaptiveFollows)
{
    const auto *bench = findBenchmark("art-1");
    const std::vector<L2Spec> variants = {
        L2Spec::lru(), L2Spec::policy(PolicyType::LFU),
        L2Spec::adaptiveLruLfu()};
    const auto rows = runSuite({bench}, variants, testBudget, false);
    const double lru = rows[0].results[0].l2Mpki;
    const double lfu = rows[0].results[1].l2Mpki;
    const double adaptive = rows[0].results[2].l2Mpki;
    EXPECT_LT(lfu, 0.75 * lru) << "art must be strongly LFU-friendly";
    EXPECT_LT(adaptive, 0.8 * lru);
}

TEST(Integration, LucasPrefersLruAndAdaptiveFollows)
{
    const auto *bench = findBenchmark("lucas");
    const std::vector<L2Spec> variants = {
        L2Spec::lru(), L2Spec::policy(PolicyType::LFU),
        L2Spec::adaptiveLruLfu()};
    const auto rows = runSuite({bench}, variants, testBudget, false);
    const double lru = rows[0].results[0].l2Mpki;
    const double lfu = rows[0].results[1].l2Mpki;
    const double adaptive = rows[0].results[2].l2Mpki;
    EXPECT_GT(lfu, 1.15 * lru) << "lucas must be LRU-friendly";
    EXPECT_LT(adaptive, 1.06 * lru);
}

TEST(Integration, AmmpAdaptiveBeatsBothComponents)
{
    // Sec. 4.4: ammp's spatial/phase variation lets the adaptive
    // cache outperform both LRU and LFU.
    const auto *bench = findBenchmark("ammp");
    const std::vector<L2Spec> variants = {
        L2Spec::lru(), L2Spec::policy(PolicyType::LFU),
        L2Spec::adaptiveLruLfu()};
    const auto rows =
        runSuite({bench}, variants, 3'000'000, false);
    const double lru = rows[0].results[0].l2Mpki;
    const double lfu = rows[0].results[1].l2Mpki;
    const double adaptive = rows[0].results[2].l2Mpki;
    EXPECT_LT(adaptive, lru);
    EXPECT_LT(adaptive, lfu);
}

TEST(Integration, SubsetAverageShowsHeadlineResult)
{
    // A representative slice of the primary set: adaptive must cut
    // the average MPKI versus LRU (Fig. 3's direction) and stay at or
    // below the better single policy.
    std::vector<const BenchmarkDef *> subset;
    for (const char *name : {"art-1", "lucas", "gcc-1", "x11quake-1",
                             "parser", "mcf"})
        subset.push_back(findBenchmark(name));
    const std::vector<L2Spec> variants = {
        L2Spec::lru(), L2Spec::policy(PolicyType::LFU),
        L2Spec::adaptiveLruLfu()};
    const auto rows = runSuite(subset, variants, testBudget, false);
    const auto avg = averageOf(rows, metricL2Mpki);
    EXPECT_LT(avg[2], 0.95 * avg[0])
        << "adaptive must clearly beat the LRU average";
    EXPECT_LT(avg[2], avg[1] * 1.05);
}

TEST(Integration, PartialTagsPreserveBenefitOnArt)
{
    const auto *bench = findBenchmark("art-1");
    const std::vector<L2Spec> variants = {
        L2Spec::lru(), L2Spec::adaptiveLruLfu(0),
        L2Spec::adaptiveLruLfu(8)};
    const auto rows = runSuite({bench}, variants, testBudget, false);
    const double lru = rows[0].results[0].l2Mpki;
    const double full = rows[0].results[1].l2Mpki;
    const double partial = rows[0].results[2].l2Mpki;
    EXPECT_LT(partial, 0.9 * lru)
        << "8-bit tags must retain most of the benefit";
    EXPECT_LT(std::abs(partial - full) / full, 0.2);
}

TEST(Integration, FifoMruAdaptivityTracksMruOnArt)
{
    // Fig. 8: MRU wins on art; FIFO/MRU adaptivity follows it.
    const auto *bench = findBenchmark("art-1");
    const std::vector<L2Spec> variants = {
        L2Spec::policy(PolicyType::FIFO),
        L2Spec::policy(PolicyType::MRU),
        L2Spec::adaptiveDual(PolicyType::FIFO, PolicyType::MRU)};
    const auto rows = runSuite({bench}, variants, testBudget, false);
    const double fifo = rows[0].results[0].l2Mpki;
    const double mru = rows[0].results[1].l2Mpki;
    const double adaptive = rows[0].results[2].l2Mpki;
    EXPECT_LT(mru, fifo);
    EXPECT_LT(adaptive, fifo);
}

TEST(Integration, TimedRunOrdersCpiLikeMpki)
{
    // CPI improvements follow miss reductions (Fig. 4 vs Fig. 3).
    const auto *bench = findBenchmark("x11quake-1");
    const std::vector<L2Spec> variants = {
        L2Spec::lru(), L2Spec::adaptiveLruLfu()};
    const auto rows = runSuite({bench}, variants, 800'000, true);
    EXPECT_LT(rows[0].results[1].l2Mpki, rows[0].results[0].l2Mpki);
    EXPECT_LT(rows[0].results[1].cpi, rows[0].results[0].cpi);
}

TEST(Integration, ResidentBenchmarksBarelyMiss)
{
    // Extended-set programs with cache-resident working sets must
    // show negligible L2 MPKI — they exist to prove stability. At
    // this reduced budget the cold (compulsory) misses still weigh
    // noticeably, so the threshold is scaled accordingly.
    for (const char *name : {"crafty", "adpcm-enc", "sha"}) {
        const auto *bench = findBenchmark(name);
        ASSERT_NE(bench, nullptr);
        const auto res =
            runFunctional(SystemConfig{}, *bench, 2'000'000);
        EXPECT_LT(res.l2Mpki, 3.0) << name;
    }
}

} // namespace
} // namespace adcache
