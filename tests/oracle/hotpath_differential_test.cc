/**
 * @file
 * Hot-path differential sweep: lockstep-runs the SoA/packed tag
 * structures and devirtualized policy sets against the PR-2 reference
 * models across every fuzz motif (thrash/scan/phase-flip/
 * alias-cluster/store-mix via TraceFuzzer) and every partial-tag
 * width 4..12 — the widths that engage the packed 8-bit-lane (4..7)
 * and 16-bit-lane (8..12) SWAR probes at the paper's 8-way
 * associativity. Every per-access observable (hit/miss, writeback
 * identity, shadow misses, selector decisions, fallbacks, psel) must
 * be unchanged; divergences shrink to a replayable repro.
 */

#include <gtest/gtest.h>

#include "oracle/corpus.hh"
#include "oracle/trace_fuzzer.hh"

namespace adcache
{
namespace
{

void
fuzzPair(const PairFactory &factory, const FuzzShape &shape,
         const std::string &config_line, std::uint64_t seed_offset)
{
    const std::size_t iters = fuzzIters(6000);
    const std::uint64_t base = fuzzSeed(1) + 77000 + seed_offset * 1000;
    DifferentialChecker checker(factory);

    const std::size_t kStreams = 2;
    const std::size_t per = (iters + kStreams - 1) / kStreams;
    for (std::size_t s = 0; s < kStreams; ++s) {
        TraceFuzzer fuzzer(base + s, shape);
        const auto stream = fuzzer.generate(per);
        const auto mismatch = checker.run(stream);
        if (!mismatch)
            continue;
        const auto repro = TraceFuzzer::shrink(checker, stream);
        FAIL() << checker.describePair() << " diverged (seed "
               << (base + s) << "): " << mismatch->format()
               << "\nShrunk repro ( " << repro.size()
               << " accesses):\n"
               << TraceFuzzer::toLiteral(repro)
               << "\nCorpus trace (save under "
                  "tests/data/regressions/):\n"
               << formatTrace(config_line, repro);
    }
}

FuzzShape
shapeFor(unsigned sets, unsigned assoc, unsigned partial_bits = 0)
{
    FuzzShape shape;
    shape.numSets = sets;
    shape.assoc = assoc;
    shape.partialTagBits = partial_bits;
    return shape;
}

/**
 * 8-way conventional caches: full tags exercise the SoA scan probe
 * and the valid-bitmask invalid-way/setFull fast paths under every
 * motif, per devirtualized policy.
 */
TEST(HotpathDifferential, ConventionalEightWay)
{
    std::uint64_t offset = 0;
    for (PolicyType p : {PolicyType::LRU, PolicyType::FIFO,
                         PolicyType::MRU, PolicyType::LFU}) {
        CacheConfig config;
        config.sizeBytes = 16 * 64 * 8;
        config.assoc = 8;
        config.lineSize = 64;
        config.policy = p;
        fuzzPair(makeCachePair(config), shapeFor(16, 8),
                 cacheConfigLine(config), ++offset);
    }
}

/**
 * Adaptive LRU+LFU at 8 ways for every partial-tag width 4..12, both
 * fold functions: each width uses the packed probe in all shadow
 * arrays, and alias-cluster motifs force the case-3 fallback.
 */
TEST(HotpathDifferential, AdaptiveAllPartialTagWidths)
{
    std::uint64_t offset = 10;
    for (unsigned bits = 4; bits <= 12; ++bits) {
        for (bool xf : {false, true}) {
            AdaptiveConfig config = AdaptiveConfig::dual(
                PolicyType::LRU, PolicyType::LFU, 16 * 64 * 8, 8);
            config.partialTagBits = bits;
            config.xorFoldTags = xf;
            fuzzPair(makeAdaptivePair(config), shapeFor(16, 8, bits),
                     adaptiveConfigLine(config), ++offset);
        }
    }
}

/** Full-tag adaptive at 8 ways: the scan path of the same structures. */
TEST(HotpathDifferential, AdaptiveFullTagsEightWay)
{
    AdaptiveConfig config = AdaptiveConfig::dual(
        PolicyType::LRU, PolicyType::LFU, 16 * 64 * 8, 8);
    fuzzPair(makeAdaptivePair(config), shapeFor(16, 8),
             adaptiveConfigLine(config), 40);
}

/**
 * SBAR leaders at the lane-width extremes: 4-bit (8-bit lanes) and
 * 12-bit (16-bit lanes) leader shadows, with psel/selection-flip
 * observables diffed throughout.
 */
TEST(HotpathDifferential, SbarPartialTagLaneWidths)
{
    std::uint64_t offset = 50;
    for (unsigned bits : {4u, 12u}) {
        SbarConfig config;
        config.sizeBytes = 32 * 64 * 8;
        config.assoc = 8;
        config.lineSize = 64;
        config.numLeaders = 4;
        config.partialTagBits = bits;
        config.pselBits = 6;
        fuzzPair(makeSbarPair(config), shapeFor(32, 8, bits),
                 sbarConfigLine(config), ++offset);
    }
}

} // namespace
} // namespace adcache
