/**
 * @file
 * Randomized differential soak: every production organisation is
 * lockstep-verified against its oracle over >= 10k fuzzed accesses
 * per configuration (deterministic by default; scalable via env):
 *
 *   ADCACHE_FUZZ_ITERS  accesses per configuration (default 12000)
 *   ADCACHE_FUZZ_SEED   base seed (default 1)
 *
 * On divergence the failure message prints the shrunk minimal stream
 * both as a replayable C++ literal and as a corpus trace ready to be
 * dropped into tests/data/regressions/ (see docs/TESTING.md).
 */

#include <gtest/gtest.h>

#include "oracle/corpus.hh"
#include "oracle/trace_fuzzer.hh"

namespace adcache
{
namespace
{

/**
 * Fuzz @p factory with streams shaped for the cache under test; on
 * mismatch, shrink and fail with a replayable repro.
 */
void
fuzzPair(const PairFactory &factory, const FuzzShape &shape,
         const std::string &config_line, std::uint64_t seed_offset)
{
    const std::size_t iters = fuzzIters(12000);
    const std::uint64_t base = fuzzSeed(1) + seed_offset * 1000;
    DifferentialChecker checker(factory);

    // Several shorter streams beat one long one: each re-runs the
    // pair from a cold cache, covering warm-up behaviour too.
    const std::size_t kStreams = 4;
    const std::size_t per = (iters + kStreams - 1) / kStreams;
    for (std::size_t s = 0; s < kStreams; ++s) {
        TraceFuzzer fuzzer(base + s, shape);
        const auto stream = fuzzer.generate(per);
        const auto mismatch = checker.run(stream);
        if (!mismatch)
            continue;
        const auto repro = TraceFuzzer::shrink(checker, stream);
        FAIL() << checker.describePair() << " diverged (seed "
               << (base + s) << "): " << mismatch->format()
               << "\nShrunk repro ( " << repro.size()
               << " accesses):\n"
               << TraceFuzzer::toLiteral(repro)
               << "\nCorpus trace (save under "
                  "tests/data/regressions/):\n"
               << formatTrace(config_line, repro);
    }
}

FuzzShape
shapeFor(unsigned sets, unsigned assoc, unsigned partial_bits = 0)
{
    FuzzShape shape;
    shape.numSets = sets;
    shape.assoc = assoc;
    shape.partialTagBits = partial_bits;
    return shape;
}

TEST(FuzzDifferential, PlainCaches)
{
    std::uint64_t offset = 0;
    for (PolicyType p : {PolicyType::LRU, PolicyType::FIFO,
                         PolicyType::MRU, PolicyType::LFU,
                         PolicyType::CmsLfu}) {
        CacheConfig config;
        config.sizeBytes = 16 * 64 * 4;
        config.assoc = 4;
        config.lineSize = 64;
        config.policy = p;
        fuzzPair(makeCachePair(config), shapeFor(16, 4),
                 cacheConfigLine(config), ++offset);
    }
}

TEST(FuzzDifferential, AdaptiveFullTags)
{
    std::uint64_t offset = 10;
    const std::pair<PolicyType, PolicyType> duals[] = {
        {PolicyType::LRU, PolicyType::LFU},
        {PolicyType::LRU, PolicyType::MRU},
        {PolicyType::FIFO, PolicyType::LFU},
        {PolicyType::MRU, PolicyType::LFU},
    };
    for (const auto &[a, b] : duals) {
        AdaptiveConfig config =
            AdaptiveConfig::dual(a, b, 16 * 64 * 4, 4);
        fuzzPair(makeAdaptivePair(config), shapeFor(16, 4),
                 adaptiveConfigLine(config), ++offset);
    }
}

TEST(FuzzDifferential, AdaptivePartialTags)
{
    // Narrow stored tags so alias-cluster motifs actually collide;
    // case-3 fallback paths get real coverage here.
    std::uint64_t offset = 20;
    for (unsigned bits : {4u, 8u}) {
        for (bool xf : {false, true}) {
            AdaptiveConfig config = AdaptiveConfig::dual(
                PolicyType::LRU, PolicyType::LFU, 16 * 64 * 4, 4);
            config.partialTagBits = bits;
            config.xorFoldTags = xf;
            fuzzPair(makeAdaptivePair(config),
                     shapeFor(16, 4, bits),
                     adaptiveConfigLine(config), ++offset);
        }
    }
}

TEST(FuzzDifferential, AdaptiveMultiPolicy)
{
    AdaptiveConfig config = AdaptiveConfig::dual(
        PolicyType::LRU, PolicyType::LFU, 8 * 64 * 4, 4);
    config.policies = {PolicyType::LRU, PolicyType::LFU,
                       PolicyType::FIFO, PolicyType::MRU};
    fuzzPair(makeAdaptivePair(config), shapeFor(8, 4),
             adaptiveConfigLine(config), 30);
}

TEST(FuzzDifferential, SketchPoliciesAndAdmission)
{
    // Sketch-backed configs: CMS-LFU eviction and TinyLFU admission
    // ride the frequency-phase-shift motif hard enough to cross decay
    // epochs many times per stream.
    std::uint64_t offset = 50;

    AdaptiveConfig cms = AdaptiveConfig::dual(
        PolicyType::LRU, PolicyType::CmsLfu, 16 * 64 * 4, 4);
    fuzzPair(makeAdaptivePair(cms), shapeFor(16, 4),
             adaptiveConfigLine(cms), ++offset);

    AdaptiveConfig admit = AdaptiveConfig::dual(
        PolicyType::LRU, PolicyType::LFU, 16 * 64 * 4, 4);
    admit.admission = {0, 1};
    fuzzPair(makeAdaptivePair(admit), shapeFor(16, 4),
             adaptiveConfigLine(admit), ++offset);

    AdaptiveConfig both = AdaptiveConfig::dual(
        PolicyType::LRU, PolicyType::CmsLfu, 16 * 64 * 4, 4);
    both.admission = {1, 1};
    both.partialTagBits = 8;
    fuzzPair(makeAdaptivePair(both), shapeFor(16, 4, 8),
             adaptiveConfigLine(both), ++offset);
}

TEST(FuzzDifferential, Sbar)
{
    std::uint64_t offset = 40;
    for (unsigned partial : {0u, 8u}) {
        SbarConfig config;
        config.sizeBytes = 32 * 64 * 4;
        config.assoc = 4;
        config.lineSize = 64;
        config.numLeaders = 4;
        config.partialTagBits = partial;
        config.pselBits = 6;
        fuzzPair(makeSbarPair(config), shapeFor(32, 4, partial),
                 sbarConfigLine(config), ++offset);
    }
}

} // namespace
} // namespace adcache
