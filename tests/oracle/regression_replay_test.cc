/**
 * @file
 * Replays every shrunk repro trace in tests/data/regressions/
 * through the differential harness. Each file is a previously-failing
 * (since fixed) or representative stream; the suite guards against
 * those divergences coming back. docs/TESTING.md explains the file
 * format and how to add a new trace.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <vector>

#include "oracle/corpus.hh"

#ifndef ADCACHE_REGRESSION_DIR
#error "build must define ADCACHE_REGRESSION_DIR"
#endif

namespace adcache
{
namespace
{

namespace fs = std::filesystem;

std::vector<fs::path>
regressionFiles()
{
    std::vector<fs::path> files;
    for (const auto &entry :
         fs::directory_iterator(ADCACHE_REGRESSION_DIR)) {
        if (entry.path().extension() == ".trace")
            files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    return files;
}

TEST(RegressionReplay, CorpusIsPresent)
{
    ASSERT_TRUE(fs::is_directory(ADCACHE_REGRESSION_DIR))
        << "missing " << ADCACHE_REGRESSION_DIR;
    EXPECT_FALSE(regressionFiles().empty())
        << "regression corpus is empty";
}

TEST(RegressionReplay, AllTracesPass)
{
    for (const fs::path &path : regressionFiles()) {
        SCOPED_TRACE(path.filename().string());
        std::ifstream in(path);
        ASSERT_TRUE(in.good());
        const RegressionTrace trace = parseTrace(in);
        ASSERT_FALSE(trace.stream.empty());
        DifferentialChecker checker(trace.factory);
        const auto mismatch = checker.run(trace.stream);
        EXPECT_FALSE(mismatch.has_value())
            << "regressed on " << trace.configLine << ": "
            << mismatch->format();
    }
}

} // namespace
} // namespace adcache
