/**
 * @file
 * Unit tests of the oracle's reference models themselves: the stack
 * policies, the counter LFU, the literal history window, the naive
 * reference cache, and the corpus text format. The oracle is only
 * trustworthy if these hand-traced scenarios hold.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "oracle/corpus.hh"
#include "oracle/ref_cache.hh"
#include "oracle/ref_history.hh"
#include "oracle/ref_policy.hh"
#include "oracle/trace_fuzzer.hh"

namespace adcache
{
namespace
{

TEST(RefPolicy, SupportMatrix)
{
    EXPECT_TRUE(refPolicySupported(PolicyType::LRU));
    EXPECT_TRUE(refPolicySupported(PolicyType::LFU));
    EXPECT_TRUE(refPolicySupported(PolicyType::FIFO));
    EXPECT_TRUE(refPolicySupported(PolicyType::MRU));
    EXPECT_FALSE(refPolicySupported(PolicyType::Random));
    EXPECT_FALSE(refPolicySupported(PolicyType::TreePLRU));
    EXPECT_FALSE(refPolicySupported(PolicyType::SRRIP));
}

TEST(RefPolicy, LruStackOrder)
{
    auto p = makeRefPolicy(PolicyType::LRU, 4);
    for (unsigned w = 0; w < 4; ++w)
        p->onFill(w);
    EXPECT_EQ(p->victim(), 0u) << "way 0 is least recent";
    p->onHit(0);
    EXPECT_EQ(p->victim(), 1u) << "hit refreshed way 0";
    p->onHit(1);
    p->onHit(2);
    EXPECT_EQ(p->victim(), 3u);
}

TEST(RefPolicy, MruStackOrder)
{
    auto p = makeRefPolicy(PolicyType::MRU, 4);
    for (unsigned w = 0; w < 4; ++w)
        p->onFill(w);
    EXPECT_EQ(p->victim(), 3u) << "way 3 is most recent";
    p->onHit(1);
    EXPECT_EQ(p->victim(), 1u);
}

TEST(RefPolicy, FifoIgnoresHits)
{
    auto p = makeRefPolicy(PolicyType::FIFO, 4);
    for (unsigned w = 0; w < 4; ++w)
        p->onFill(w);
    p->onHit(0);
    p->onHit(0);
    EXPECT_EQ(p->victim(), 0u) << "hits must not refresh FIFO order";
    p->onInvalidate(0);
    p->onFill(0);
    EXPECT_EQ(p->victim(), 1u) << "refill made way 0 youngest";
}

TEST(RefPolicy, LfuCountsAndTieBreak)
{
    auto p = makeRefPolicy(PolicyType::LFU, 4);
    for (unsigned w = 0; w < 4; ++w)
        p->onFill(w);
    p->onHit(0);
    p->onHit(1);
    p->onHit(3);
    // Way 2 is the only count-1 entry.
    EXPECT_EQ(p->victim(), 2u);
    p->onHit(2);
    // All tied at 2: oldest fill (way 0) loses.
    EXPECT_EQ(p->victim(), 0u);
}

TEST(RefHistory, WindowEvictsOldestMask)
{
    RefWindowHistory h(2, 2);
    h.record(0b01);
    h.record(0b01);
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.best(), 1u) << "policy 1 has no recorded misses";
    h.record(0b10);
    h.record(0b10);
    // The two 0b01 entries have scrolled out of the 2-deep window.
    EXPECT_EQ(h.count(0), 0u);
    EXPECT_EQ(h.count(1), 2u);
    EXPECT_EQ(h.best(), 0u);
}

TEST(RefHistory, ExactCountersNeverForget)
{
    RefExactCounters c(3);
    c.record(0b011);
    c.record(0b001);
    c.record(0b100);
    EXPECT_EQ(c.count(0), 2u);
    EXPECT_EQ(c.count(1), 1u);
    EXPECT_EQ(c.count(2), 1u);
    EXPECT_EQ(c.best(), 1u) << "ties break to the lowest index";
}

TEST(RefCache, HitMissAndEviction)
{
    RefGeometry g{64, 2, 2};  // 2 sets x 2 ways
    RefCache cache(g, PolicyType::LRU);
    EXPECT_FALSE(cache.access(0x000, false).hit);
    EXPECT_FALSE(cache.access(0x100, false).hit);
    EXPECT_TRUE(cache.access(0x000, false).hit);
    // Set 0 now holds tags for 0x000 (recent) and 0x100; a third
    // block evicts the LRU one, 0x100.
    const RefOutcome out = cache.access(0x200, false);
    EXPECT_FALSE(out.hit);
    EXPECT_TRUE(out.evicted);
    EXPECT_FALSE(cache.contains(0x100));
    EXPECT_TRUE(cache.contains(0x000));
    EXPECT_TRUE(cache.contains(0x200));
}

TEST(RefCache, DirtyTrackingDrivesWritebacks)
{
    RefGeometry g{64, 1, 1};  // direct-mapped single set
    RefCache cache(g, PolicyType::LRU);
    cache.access(0x00, true);
    const RefOutcome out = cache.access(0x40, false);
    EXPECT_TRUE(out.evicted);
    EXPECT_TRUE(out.evictedDirty);
    EXPECT_EQ(cache.writebacks(), 1u);
}

TEST(RefCache, PartialTagAliasingHitsLikeTheShadow)
{
    RefGeometry g{64, 1, 2};
    RefCache cache(g, PolicyType::LRU, /*partial_bits=*/2);
    // Tags 0x1 and 0x5 fold to the same 2-bit stored tag.
    cache.access(Addr(0x1) << 6, false);
    EXPECT_TRUE(cache.access(Addr(0x5) << 6, false).hit)
        << "aliased partial tags must count as hits (Sec. 3.1)";
}

TEST(Corpus, RoundTripsStreamsAndConfigs)
{
    CacheConfig c;
    c.sizeBytes = 4096;
    c.assoc = 4;
    c.lineSize = 64;
    c.policy = PolicyType::FIFO;
    const std::vector<Access> stream = {
        {0x40, false}, {0x80, true}, {0x40, false}};

    const std::string text =
        formatTrace(cacheConfigLine(c), stream);
    std::istringstream in(text);
    const RegressionTrace trace = parseTrace(in);
    EXPECT_EQ(trace.stream, stream);
    EXPECT_NE(trace.configLine.find("policy=fifo"),
              std::string::npos);
    // The parsed factory must build a runnable pair.
    DifferentialChecker checker(trace.factory);
    EXPECT_FALSE(checker.run(trace.stream).has_value());
}

TEST(Corpus, ParsesAdaptiveAndSbarKinds)
{
    AdaptiveConfig a = AdaptiveConfig::dual(
        PolicyType::LRU, PolicyType::LFU, 4096, 4, 64);
    a.partialTagBits = 8;
    const PairFactory fa = pairFactoryFor(adaptiveConfigLine(a));
    EXPECT_NE(fa()->describe().find("Adaptive"), std::string::npos);

    SbarConfig s;
    s.sizeBytes = 8192;
    s.assoc = 4;
    s.numLeaders = 4;
    const PairFactory fs = pairFactoryFor(sbarConfigLine(s));
    EXPECT_NE(fs()->describe().find("Sbar"), std::string::npos);
}

TEST(TraceFuzzer, DeterministicFromSeed)
{
    FuzzShape shape;
    shape.numSets = 8;
    shape.assoc = 4;
    TraceFuzzer a(42, shape), b(42, shape), c(43, shape);
    const auto sa = a.generate(2000);
    const auto sb = b.generate(2000);
    const auto sc = c.generate(2000);
    EXPECT_EQ(sa, sb) << "same seed, same stream";
    EXPECT_NE(sa, sc) << "different seed, different stream";
}

TEST(TraceFuzzer, StreamsAreBlockAligned)
{
    FuzzShape shape;
    shape.numSets = 16;
    shape.assoc = 4;
    shape.lineSize = 64;
    TraceFuzzer fuzzer(7, shape);
    for (const Access &a : fuzzer.generate(5000))
        EXPECT_EQ(a.addr % 64, 0u);
}

TEST(TraceFuzzer, LiteralIsReplayable)
{
    const std::vector<Access> stream = {{0x40, true}, {0x80, false}};
    const std::string lit = TraceFuzzer::toLiteral(stream);
    EXPECT_NE(lit.find("{0x40ull, true}"), std::string::npos);
    EXPECT_NE(lit.find("{0x80ull, false}"), std::string::npos);
}

} // namespace
} // namespace adcache
