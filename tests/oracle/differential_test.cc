/**
 * @file
 * Differential harness behaviour tests: fixed seeded streams run each
 * production organisation in lockstep with its oracle, and the
 * deliberately-broken pair proves the harness both catches a
 * replacement bug and shrinks it to a tiny replayable repro.
 *
 * Long randomized soaks live in fuzz_differential_test.cc; these
 * tests pin down the harness's own contract.
 */

#include <gtest/gtest.h>

#include "core/sbar_cache.hh"
#include "oracle/differential.hh"
#include "oracle/trace_fuzzer.hh"

namespace adcache
{
namespace
{

std::vector<Access>
fuzzedStream(std::uint64_t seed, const FuzzShape &shape,
             std::size_t length)
{
    TraceFuzzer fuzzer(seed, shape);
    return fuzzer.generate(length);
}

void
expectAgreement(const PairFactory &factory, const FuzzShape &shape,
                std::size_t length = 4000)
{
    DifferentialChecker checker(factory);
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const auto stream = fuzzedStream(seed, shape, length);
        const auto mismatch = checker.run(stream);
        ASSERT_FALSE(mismatch.has_value())
            << checker.describePair() << " seed " << seed << ": "
            << mismatch->format();
    }
}

TEST(Differential, PlainCachesMatchTheirOracles)
{
    for (PolicyType p : {PolicyType::LRU, PolicyType::FIFO,
                         PolicyType::MRU, PolicyType::LFU,
                         PolicyType::CmsLfu}) {
        CacheConfig config;
        config.sizeBytes = 16 * 64 * 4;  // 16 sets x 4 ways
        config.assoc = 4;
        config.lineSize = 64;
        config.policy = p;
        FuzzShape shape;
        shape.numSets = 16;
        shape.assoc = 4;
        expectAgreement(makeCachePair(config), shape);
    }
}

TEST(Differential, AdaptiveDualsMatchAlgorithmOne)
{
    struct Case
    {
        PolicyType a, b;
        unsigned partial;
        bool xorFold;
    };
    const Case cases[] = {
        {PolicyType::LRU, PolicyType::LFU, 0, false},
        {PolicyType::LRU, PolicyType::MRU, 0, false},
        {PolicyType::FIFO, PolicyType::LFU, 0, false},
        {PolicyType::LRU, PolicyType::LFU, 8, false},
        {PolicyType::LRU, PolicyType::LFU, 4, true},
    };
    for (const Case &c : cases) {
        AdaptiveConfig config = AdaptiveConfig::dual(
            c.a, c.b, /*size_bytes=*/16 * 64 * 4, /*assoc=*/4);
        config.partialTagBits = c.partial;
        config.xorFoldTags = c.xorFold;
        FuzzShape shape;
        shape.numSets = 16;
        shape.assoc = 4;
        shape.partialTagBits = c.partial;
        expectAgreement(makeAdaptivePair(config), shape);
    }
}

TEST(Differential, MultiPolicyAdaptiveMatches)
{
    // Three- and four-policy configs; Random/PLRU/SRRIP have no
    // reference model, so the five-policy paper config is excluded.
    AdaptiveConfig three = AdaptiveConfig::dual(
        PolicyType::LRU, PolicyType::LFU, 8 * 64 * 4, 4);
    three.policies = {PolicyType::LRU, PolicyType::LFU,
                      PolicyType::FIFO};
    AdaptiveConfig four = three;
    four.policies = {PolicyType::LRU, PolicyType::LFU,
                     PolicyType::FIFO, PolicyType::MRU};
    FuzzShape shape;
    shape.numSets = 8;
    shape.assoc = 4;
    expectAgreement(makeAdaptivePair(three), shape);
    expectAgreement(makeAdaptivePair(four), shape);
}

TEST(Differential, SketchLfuAdaptiveMatches)
{
    // CMS-LFU as an adaptive component: the shared sketch's decay
    // schedule and fill-stamp tie-breaks must agree bit-for-bit.
    for (unsigned partial : {0u, 8u}) {
        AdaptiveConfig config = AdaptiveConfig::dual(
            PolicyType::LRU, PolicyType::CmsLfu, 16 * 64 * 4, 4);
        config.partialTagBits = partial;
        FuzzShape shape;
        shape.numSets = 16;
        shape.assoc = 4;
        shape.partialTagBits = partial;
        expectAgreement(makeAdaptivePair(config), shape);
    }
}

TEST(Differential, TinyLfuAdmissionMatches)
{
    // Admission changes what enters the cache, not just what leaves:
    // bypass verdicts, imitated rejects, and the shared filter's
    // decay schedule must all stay in lockstep.
    struct Case
    {
        std::vector<std::uint8_t> admission;
        unsigned partial;
    };
    const Case cases[] = {
        {{0, 1}, 0}, // admission on the LFU component only
        {{1, 1}, 0}, // admission everywhere
        {{0, 1}, 8}, // folded keys feed the filter
    };
    for (const Case &c : cases) {
        AdaptiveConfig config = AdaptiveConfig::dual(
            PolicyType::LRU, PolicyType::LFU, 16 * 64 * 4, 4);
        config.admission = c.admission;
        config.partialTagBits = c.partial;
        FuzzShape shape;
        shape.numSets = 16;
        shape.assoc = 4;
        shape.partialTagBits = c.partial;
        expectAgreement(makeAdaptivePair(config), shape);
    }
}

TEST(Differential, SketchPolicyWithAdmissionMatches)
{
    // Both sketch consumers at once: CMS-LFU eviction plus TinyLFU
    // admission, each with its own sketch instance.
    AdaptiveConfig config = AdaptiveConfig::dual(
        PolicyType::LRU, PolicyType::CmsLfu, 16 * 64 * 4, 4);
    config.admission = {0, 1};
    FuzzShape shape;
    shape.numSets = 16;
    shape.assoc = 4;
    expectAgreement(makeAdaptivePair(config), shape);
}

TEST(Differential, SbarLeadersAndFollowersMatch)
{
    SbarConfig config;
    config.sizeBytes = 32 * 64 * 4;  // 32 sets x 4 ways
    config.assoc = 4;
    config.lineSize = 64;
    config.numLeaders = 4;
    config.pselBits = 6;
    FuzzShape shape;
    shape.numSets = 32;
    shape.assoc = 4;
    expectAgreement(makeSbarPair(config), shape, 8000);

    // Same pairing with partial-tag leader shadows.
    config.partialTagBits = 8;
    shape.partialTagBits = 8;
    expectAgreement(makeSbarPair(config), shape, 8000);
}

TEST(Differential, SbarStreamActuallyExercisesSelectionFlips)
{
    // The follower lockstep test above is only meaningful if the
    // global selection changes sides mid-stream, forcing followers to
    // switch policies over inherited contents. Prove the fuzzed
    // stream does that on the production cache.
    SbarConfig config;
    config.sizeBytes = 32 * 64 * 4;
    config.assoc = 4;
    config.numLeaders = 4;
    config.pselBits = 6;
    SbarCache cache(config);
    FuzzShape shape;
    shape.numSets = 32;
    shape.assoc = 4;
    for (const Access &a : fuzzedStream(1, shape, 8000))
        cache.access(a.addr, a.write);
    EXPECT_GT(cache.selectionFlips(), 0u)
        << "stream never flipped the global selection; the follower "
           "policy-switch path went untested";
}

TEST(Differential, InjectedBugIsCaughtAndShrunkToTinyRepro)
{
    // Production runs MRU while the oracle expects LRU — an
    // inverted-recency replacement bug.
    CacheConfig config;
    config.sizeBytes = 4 * 64 * 4;  // 4 sets x 4 ways
    config.assoc = 4;
    config.lineSize = 64;
    config.policy = PolicyType::MRU;
    DifferentialChecker checker(
        makeBuggyCachePair(config, PolicyType::LRU));

    FuzzShape shape;
    shape.numSets = 4;
    shape.assoc = 4;
    TraceFuzzer fuzzer(fuzzSeed(99), shape);
    const auto stream = fuzzer.generate(4000);
    const auto mismatch = checker.run(stream);
    ASSERT_TRUE(mismatch.has_value())
        << "harness failed to notice an inverted-LRU bug";

    const auto repro = TraceFuzzer::shrink(checker, stream);
    ASSERT_TRUE(checker.run(repro).has_value())
        << "shrunk stream no longer reproduces";
    EXPECT_LE(repro.size(), 50u)
        << "shrink left a bloated repro:\n"
        << TraceFuzzer::toLiteral(repro);
    // A minimal inverted-recency repro needs at least assoc+1 blocks.
    EXPECT_GE(repro.size(), config.assoc + 1);
}

TEST(Differential, ShrinkPreservesFirstMismatchReachability)
{
    // Shrinking a correct pair's stream is a contract violation the
    // harness should never hide: run() on the original must fail.
    CacheConfig config;
    config.sizeBytes = 2 * 64 * 2;
    config.assoc = 2;
    config.lineSize = 64;
    config.policy = PolicyType::FIFO;
    DifferentialChecker checker(
        makeBuggyCachePair(config, PolicyType::LRU));
    // FIFO and LRU diverge once a hit refreshes a block that FIFO
    // still evicts: fill 2 ways, touch the oldest, then miss.
    const std::vector<Access> stream = {
        {0x000, false}, {0x080, false}, {0x000, false},
        {0x100, false}, {0x000, false}};
    ASSERT_TRUE(checker.run(stream).has_value());
    const auto repro = TraceFuzzer::shrink(checker, stream);
    EXPECT_TRUE(checker.run(repro).has_value());
    EXPECT_LE(repro.size(), stream.size());
}

TEST(Differential, MismatchFormatNamesFieldAndIndex)
{
    CacheConfig config;
    config.sizeBytes = 2 * 64 * 2;
    config.assoc = 2;
    config.lineSize = 64;
    config.policy = PolicyType::MRU;
    DifferentialChecker checker(
        makeBuggyCachePair(config, PolicyType::LRU));
    FuzzShape shape;
    shape.numSets = 2;
    shape.assoc = 2;
    TraceFuzzer fuzzer(5, shape);
    const auto mismatch = checker.run(fuzzer.generate(2000));
    ASSERT_TRUE(mismatch.has_value());
    const std::string msg = mismatch->format();
    EXPECT_NE(msg.find("access"), std::string::npos) << msg;
    EXPECT_FALSE(mismatch->field.empty());
}

} // namespace
} // namespace adcache
