#include "cache/replacement.hh"

#include <gtest/gtest.h>

#include <set>

#include "util/bits.hh"

namespace adcache
{
namespace
{

TEST(PolicyFactory, ParseNames)
{
    EXPECT_EQ(parsePolicyType("lru"), PolicyType::LRU);
    EXPECT_EQ(parsePolicyType("LFU"), PolicyType::LFU);
    EXPECT_EQ(parsePolicyType("Fifo"), PolicyType::FIFO);
    EXPECT_EQ(parsePolicyType("mru"), PolicyType::MRU);
    EXPECT_EQ(parsePolicyType("random"), PolicyType::Random);
    EXPECT_EQ(parsePolicyType("plru"), PolicyType::TreePLRU);
    EXPECT_EQ(parsePolicyType("srrip"), PolicyType::SRRIP);
}

TEST(PolicyFactory, Names)
{
    EXPECT_STREQ(policyName(PolicyType::LRU), "LRU");
    EXPECT_STREQ(policyName(PolicyType::LFU), "LFU");
    EXPECT_STREQ(policyName(PolicyType::Random), "Random");
}

TEST(PolicyFactory, MetaBits)
{
    EXPECT_EQ(policyMetaBits(PolicyType::LRU, 8), 3u);
    EXPECT_EQ(policyMetaBits(PolicyType::LFU, 8), 5u);
    EXPECT_EQ(policyMetaBits(PolicyType::Random, 8), 0u);
    EXPECT_EQ(policyMetaBits(PolicyType::SRRIP, 8), 2u);
    EXPECT_EQ(policyMetaBits(PolicyType::FIFO, 16), 4u);
}

TEST(Lru, EvictsLeastRecentlyUsed)
{
    Rng rng(1);
    auto p = makePolicy(PolicyType::LRU, 4, &rng);
    for (unsigned w = 0; w < 4; ++w)
        p->onFill(w);
    // Touch 0 and 2; oldest is now 1.
    p->onHit(0);
    p->onHit(2);
    EXPECT_EQ(p->victim(), 1u);
    p->onHit(1);
    EXPECT_EQ(p->victim(), 3u);
}

TEST(Lru, FillCountsAsUse)
{
    Rng rng(1);
    auto p = makePolicy(PolicyType::LRU, 2, &rng);
    p->onFill(0);
    p->onFill(1);
    EXPECT_EQ(p->victim(), 0u);
}

TEST(Mru, EvictsMostRecentlyUsed)
{
    Rng rng(1);
    auto p = makePolicy(PolicyType::MRU, 4, &rng);
    for (unsigned w = 0; w < 4; ++w)
        p->onFill(w);
    p->onHit(1);
    EXPECT_EQ(p->victim(), 1u);
    p->onHit(3);
    EXPECT_EQ(p->victim(), 3u);
}

TEST(Fifo, IgnoresHits)
{
    Rng rng(1);
    auto p = makePolicy(PolicyType::FIFO, 4, &rng);
    for (unsigned w = 0; w < 4; ++w)
        p->onFill(w);
    p->onHit(0);
    p->onHit(0);
    // Way 0 is still the oldest fill.
    EXPECT_EQ(p->victim(), 0u);
}

TEST(Fifo, RefillMovesToBack)
{
    Rng rng(1);
    auto p = makePolicy(PolicyType::FIFO, 3, &rng);
    p->onFill(0);
    p->onFill(1);
    p->onFill(2);
    p->onInvalidate(0);
    p->onFill(0);  // way 0 refilled: now the newest
    EXPECT_EQ(p->victim(), 1u);
}

TEST(Lfu, EvictsLeastFrequent)
{
    Rng rng(1);
    auto p = makePolicy(PolicyType::LFU, 4, &rng);
    for (unsigned w = 0; w < 4; ++w)
        p->onFill(w);
    p->onHit(0);
    p->onHit(0);
    p->onHit(1);
    p->onHit(2);
    // Way 3 has count 1 (fill only); all others have more.
    EXPECT_EQ(p->victim(), 3u);
}

TEST(Lfu, TieBreaksByOldestFill)
{
    Rng rng(1);
    auto p = makePolicy(PolicyType::LFU, 4, &rng);
    p->onFill(2);
    p->onFill(0);
    p->onFill(1);
    p->onFill(3);
    // All counts equal: way 2 was filled first.
    EXPECT_EQ(p->victim(), 2u);
}

TEST(Lfu, CountersSaturate)
{
    Rng rng(1);
    auto p = makePolicy(PolicyType::LFU, 2, &rng);
    p->onFill(0);
    p->onFill(1);
    for (int i = 0; i < 100; ++i)
        p->onHit(1);
    p->onHit(0);
    p->onHit(0);
    // Way 0 (count 3) still below way 1 (saturated at 31).
    EXPECT_EQ(p->victim(), 0u);
}

TEST(Random, VictimWithinRange)
{
    Rng rng(42);
    auto p = makePolicy(PolicyType::Random, 8, &rng);
    for (unsigned w = 0; w < 8; ++w)
        p->onFill(w);
    std::set<unsigned> seen;
    for (int i = 0; i < 200; ++i) {
        const unsigned v = p->victim();
        ASSERT_LT(v, 8u);
        seen.insert(v);
    }
    // Over 200 draws all ways should appear.
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Random, PeekMatchesNextVictim)
{
    Rng rng(43);
    auto p = makePolicy(PolicyType::Random, 8, &rng);
    for (int i = 0; i < 50; ++i) {
        const unsigned peek = p->peekVictim();
        EXPECT_EQ(p->victim(), peek);
    }
}

TEST(TreePlru, VictimAvoidsRecentlyTouchedHalf)
{
    Rng rng(1);
    auto p = makePolicy(PolicyType::TreePLRU, 4, &rng);
    for (unsigned w = 0; w < 4; ++w)
        p->onFill(w);
    p->onHit(0);
    // Way 0's half was just touched: victim must be in 2..3.
    EXPECT_GE(p->victim(), 2u);
    p->onHit(3);
    EXPECT_LT(p->victim(), 2u);
}

TEST(TreePlru, CyclesThroughAllWays)
{
    Rng rng(1);
    auto p = makePolicy(PolicyType::TreePLRU, 8, &rng);
    for (unsigned w = 0; w < 8; ++w)
        p->onFill(w);
    std::set<unsigned> victims;
    for (int i = 0; i < 8; ++i) {
        const unsigned v = p->victim();
        victims.insert(v);
        p->onFill(v);  // refill -> becomes most recent
    }
    EXPECT_EQ(victims.size(), 8u);
}

TEST(Srrip, EvictsDistantRrpvFirst)
{
    Rng rng(1);
    auto p = makePolicy(PolicyType::SRRIP, 4, &rng);
    for (unsigned w = 0; w < 4; ++w)
        p->onFill(w);
    p->onHit(1);  // way 1 -> RRPV 0
    const unsigned v = p->victim();
    EXPECT_NE(v, 1u);
}

TEST(Srrip, PeekDoesNotMutate)
{
    Rng rng(1);
    auto p = makePolicy(PolicyType::SRRIP, 4, &rng);
    for (unsigned w = 0; w < 4; ++w)
        p->onFill(w);
    p->onHit(2);
    const unsigned peek1 = p->peekVictim();
    const unsigned peek2 = p->peekVictim();
    EXPECT_EQ(peek1, peek2);
    EXPECT_EQ(p->victim(), peek1);
}

// Every deterministic policy: peekVictim agrees with victim.
class PeekParity : public ::testing::TestWithParam<PolicyType>
{
};

TEST_P(PeekParity, PeekEqualsVictim)
{
    Rng rng(7);
    auto p = makePolicy(GetParam(), 8, &rng);
    Rng stim(8);
    for (unsigned w = 0; w < 8; ++w)
        p->onFill(w);
    for (int i = 0; i < 500; ++i) {
        if (stim.chance(0.7)) {
            p->onHit(unsigned(stim.below(8)));
        } else {
            const unsigned peek = p->peekVictim();
            const unsigned v = p->victim();
            EXPECT_EQ(v, peek);
            p->onInvalidate(v);
            p->onFill(v);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PeekParity,
    ::testing::Values(PolicyType::LRU, PolicyType::LFU, PolicyType::FIFO,
                      PolicyType::MRU, PolicyType::Random,
                      PolicyType::TreePLRU, PolicyType::SRRIP),
    [](const auto &info) { return policyName(info.param); });

// Victims are always valid way indices across random stimulus.
class VictimRange
    : public ::testing::TestWithParam<std::tuple<PolicyType, unsigned>>
{
};

TEST_P(VictimRange, InBounds)
{
    const auto [type, assoc] = GetParam();
    if (type == PolicyType::TreePLRU && !isPowerOfTwo(assoc))
        GTEST_SKIP() << "tree PLRU requires power-of-two ways";
    Rng rng(11);
    auto p = makePolicy(type, assoc, &rng);
    Rng stim(12);
    for (unsigned w = 0; w < assoc; ++w)
        p->onFill(w);
    for (int i = 0; i < 300; ++i) {
        if (stim.chance(0.6)) {
            p->onHit(unsigned(stim.below(assoc)));
        } else {
            const unsigned v = p->victim();
            ASSERT_LT(v, assoc);
            p->onInvalidate(v);
            p->onFill(v);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VictimRange,
    ::testing::Combine(
        ::testing::Values(PolicyType::LRU, PolicyType::LFU,
                          PolicyType::FIFO, PolicyType::MRU,
                          PolicyType::Random, PolicyType::SRRIP),
        ::testing::Values(1u, 2u, 4u, 8u, 9u, 16u)),
    [](const auto &info) {
        return std::string(policyName(std::get<0>(info.param))) + "_w" +
               std::to_string(std::get<1>(info.param));
    });

} // namespace
} // namespace adcache
