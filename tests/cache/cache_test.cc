#include "cache/cache.hh"

#include <gtest/gtest.h>

namespace adcache
{
namespace
{

CacheConfig
tinyConfig(PolicyType policy = PolicyType::LRU)
{
    CacheConfig c;
    c.sizeBytes = 4 * 1024;  // 16 sets x 4 ways x 64B
    c.assoc = 4;
    c.lineSize = 64;
    c.policy = policy;
    return c;
}

TEST(CacheGeometry, Derivation)
{
    const auto g = CacheGeometry::fromSize(512 * 1024, 8, 64);
    EXPECT_EQ(g.numSets, 1024u);
    EXPECT_EQ(g.offsetBits(), 6u);
    EXPECT_EQ(g.indexBits(), 10u);
    EXPECT_EQ(g.tagBits(), physAddrBits - 16);
    EXPECT_EQ(g.sizeBytes(), 512u * 1024);
}

TEST(CacheGeometry, NonPowerOfTwoAssoc)
{
    // The 9-way 576KB cache of Fig. 6.
    const auto g = CacheGeometry::fromSize(576 * 1024, 9, 64);
    EXPECT_EQ(g.numSets, 1024u);
    EXPECT_EQ(g.assoc, 9u);
}

TEST(CacheGeometry, AddressRoundTrip)
{
    const auto g = CacheGeometry::fromSize(512 * 1024, 8, 64);
    const Addr addr = 0x12345678;
    const Addr block = g.blockAddr(addr);
    EXPECT_EQ(block % 64, 0u);
    const Addr rebuilt = g.reconstruct(g.setIndex(addr), g.tag(addr));
    EXPECT_EQ(rebuilt, block);
}

TEST(Cache, ColdMissThenHit)
{
    Cache cache(tinyConfig());
    auto r1 = cache.access(0x1000, false);
    EXPECT_FALSE(r1.hit);
    auto r2 = cache.access(0x1000, false);
    EXPECT_TRUE(r2.hit);
    // Same line, different word: still a hit.
    auto r3 = cache.access(0x1008, false);
    EXPECT_TRUE(r3.hit);
    EXPECT_EQ(cache.stats().accesses, 3u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(Cache, EvictionAfterAssocExceeded)
{
    Cache cache(tinyConfig());
    const auto &g = cache.geometry();
    // 5 distinct blocks mapping to set 0 in a 4-way cache.
    for (int i = 0; i < 5; ++i)
        cache.access(Addr(i) * g.numSets * g.lineSize, false);
    EXPECT_EQ(cache.stats().misses, 5u);
    EXPECT_EQ(cache.stats().evictions, 1u);
    // LRU: block 0 was evicted, blocks 1..4 remain.
    EXPECT_FALSE(cache.contains(0));
    EXPECT_TRUE(cache.contains(1ull * g.numSets * g.lineSize));
}

TEST(Cache, WritebackOnDirtyEviction)
{
    Cache cache(tinyConfig());
    const auto &g = cache.geometry();
    const Addr conflict = Addr(g.numSets) * g.lineSize;
    cache.access(0x0, true);  // dirty fill of set 0
    for (int i = 1; i <= 4; ++i) {
        auto r = cache.access(Addr(i) * conflict, false);
        if (i < 4) {
            EXPECT_FALSE(r.writeback);
        } else {
            // Fifth block evicts the dirty block 0.
            EXPECT_TRUE(r.writeback);
            EXPECT_EQ(r.writebackAddr, 0u);
        }
    }
    EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, CleanEvictionNoWriteback)
{
    Cache cache(tinyConfig());
    const auto &g = cache.geometry();
    for (int i = 0; i <= 4; ++i) {
        auto r = cache.access(Addr(i) * g.numSets * g.lineSize, false);
        EXPECT_FALSE(r.writeback);
    }
    EXPECT_EQ(cache.stats().writebacks, 0u);
}

TEST(Cache, WriteAllocates)
{
    Cache cache(tinyConfig());
    auto r = cache.access(0x40, true);
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(cache.contains(0x40));
    EXPECT_EQ(cache.stats().writeMisses, 1u);
    EXPECT_EQ(cache.stats().readMisses, 0u);
}

TEST(Cache, WriteHitMarksDirty)
{
    Cache cache(tinyConfig());
    const auto &g = cache.geometry();
    cache.access(0x0, false);  // clean fill
    cache.access(0x0, true);   // write hit -> dirty
    // Evict it and expect a writeback.
    bool saw_writeback = false;
    for (int i = 1; i <= 4; ++i) {
        auto r = cache.access(Addr(i) * g.numSets * g.lineSize, false);
        saw_writeback |= r.writeback;
    }
    EXPECT_TRUE(saw_writeback);
}

TEST(Cache, InvalidateBlock)
{
    Cache cache(tinyConfig());
    cache.access(0x1000, true);
    EXPECT_TRUE(cache.contains(0x1000));
    cache.invalidateBlock(0x1000);
    EXPECT_FALSE(cache.contains(0x1000));
    auto r = cache.access(0x1000, false);
    EXPECT_FALSE(r.hit);
}

TEST(Cache, SetsAreIndependent)
{
    Cache cache(tinyConfig());
    // Fill set 0 far past capacity; set 1 must be untouched.
    const auto &g = cache.geometry();
    cache.access(g.lineSize, false);  // set 1
    for (int i = 0; i < 20; ++i)
        cache.access(Addr(i) * g.numSets * g.lineSize, false);
    EXPECT_TRUE(cache.contains(g.lineSize));
}

TEST(Cache, LruStackProperty)
{
    // Inclusion: an 8-way LRU set contains everything a 4-way LRU set
    // holds under the same reference stream (per-set stack property).
    CacheConfig small = tinyConfig();
    small.sizeBytes = 2 * 1024;  // 8 sets x 4 ways
    small.assoc = 4;
    CacheConfig big = tinyConfig();
    big.sizeBytes = 4 * 1024;  // 8 sets x 8 ways
    big.assoc = 8;
    Cache small_cache(small), big_cache(big);
    ASSERT_EQ(small_cache.geometry().numSets,
              big_cache.geometry().numSets);

    Rng rng(3);
    std::vector<Addr> blocks;
    for (int i = 0; i < 64; ++i)
        blocks.push_back(Addr(i) * 64);
    for (int i = 0; i < 5000; ++i) {
        const Addr a = blocks[rng.below(blocks.size())];
        small_cache.access(a, false);
        big_cache.access(a, false);
    }
    for (const Addr a : blocks) {
        if (small_cache.contains(a))
            EXPECT_TRUE(big_cache.contains(a)) << "block " << a;
    }
    EXPECT_LE(big_cache.stats().misses, small_cache.stats().misses);
}

TEST(Cache, MruKeepsLoopResident)
{
    // A cyclic loop of 6 blocks through a 4-way set: LRU misses every
    // reference in steady state while MRU retains 3 of the blocks
    // (Sec. 2.1's linear-loop motivation).
    CacheConfig lru_conf = tinyConfig(PolicyType::LRU);
    lru_conf.sizeBytes = 256;  // 1 set x 4 ways
    lru_conf.assoc = 4;
    CacheConfig mru_conf = lru_conf;
    mru_conf.policy = PolicyType::MRU;
    Cache lru(lru_conf), mru(mru_conf);
    for (int cycle = 0; cycle < 50; ++cycle) {
        for (int b = 0; b < 6; ++b) {
            lru.access(Addr(b) * 64, false);
            mru.access(Addr(b) * 64, false);
        }
    }
    EXPECT_GT(double(mru.stats().hits), 0.0);
    EXPECT_LT(mru.stats().misses, lru.stats().misses);
    // LRU thrashs: hits only during the first pass warmup.
    EXPECT_EQ(lru.stats().hits, 0u);
}

TEST(Cache, DescribeMentionsPolicyAndSize)
{
    Cache cache(tinyConfig(PolicyType::LFU));
    const std::string d = cache.describe();
    EXPECT_NE(d.find("LFU"), std::string::npos);
    EXPECT_NE(d.find("4KB"), std::string::npos);
}

TEST(Cache, StatsMissBreakdown)
{
    Cache cache(tinyConfig());
    cache.access(0x0, false);
    cache.access(0x40, true);
    cache.access(0x80, false);
    EXPECT_EQ(cache.stats().readMisses, 2u);
    EXPECT_EQ(cache.stats().writeMisses, 1u);
    EXPECT_DOUBLE_EQ(cache.stats().missRate(), 1.0);
}

} // namespace
} // namespace adcache
