/**
 * @file
 * Locks the devirtualized contiguous policy sets (cache/policy_sets.hh)
 * in step with the per-set virtual policies (cache/policies.cc): the
 * same event sequence must produce the same victims, peeks included.
 */

#include "cache/policy_sets.hh"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cache/replacement.hh"
#include "util/rng.hh"

namespace adcache
{
namespace
{

class PolicySetEquivalence
    : public ::testing::TestWithParam<PolicyType>
{
};

TEST_P(PolicySetEquivalence, MatchesVirtualPolicies)
{
    const PolicyType type = GetParam();
    constexpr unsigned numSets = 4;
    constexpr unsigned assoc = 8;

    // Both sides share one Rng each, seeded identically; mirrored
    // call sequences must then produce identical stochastic draws.
    Rng setRng(99), virtRng(99);
    PolicySet sets(type, numSets, assoc, &setRng);
    std::vector<std::unique_ptr<ReplacementPolicy>> virt;
    for (unsigned s = 0; s < numSets; ++s)
        virt.push_back(makePolicy(type, assoc, &virtRng));

    Rng ops(7);
    std::vector<std::uint64_t> filled(numSets, 0);
    for (unsigned step = 0; step < 4000; ++step) {
        const unsigned set = unsigned(ops.below(numSets));
        const unsigned way = unsigned(ops.below(assoc));
        switch (ops.below(5)) {
          case 0:
            sets.onFill(set, way);
            virt[set]->onFill(way);
            filled[set] |= std::uint64_t{1} << way;
            break;
          case 1:
            sets.onHit(set, way);
            virt[set]->onHit(way);
            break;
          case 2:
            sets.onInvalidate(set, way);
            virt[set]->onInvalidate(way);
            break;
          case 3:
            // victim() is only meaningful on a full set; mirror the
            // production precondition by filling first.
            for (unsigned w = 0; w < assoc; ++w) {
                if (!((filled[set] >> w) & 1)) {
                    sets.onFill(set, w);
                    virt[set]->onFill(w);
                }
            }
            filled[set] = (std::uint64_t{1} << assoc) - 1;
            ASSERT_EQ(sets.victim(set), virt[set]->victim())
                << "step " << step;
            break;
          default:
            ASSERT_EQ(sets.peekVictim(set), virt[set]->peekVictim())
                << "step " << step;
            break;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicySetEquivalence,
    ::testing::Values(PolicyType::LRU, PolicyType::MRU,
                      PolicyType::FIFO, PolicyType::LFU,
                      PolicyType::Random, PolicyType::TreePLRU,
                      PolicyType::SRRIP),
    [](const ::testing::TestParamInfo<PolicyType> &info) {
        return policyName(info.param);
    });

} // namespace
} // namespace adcache
