#include "cache/tag_array.hh"

#include <gtest/gtest.h>

namespace adcache
{
namespace
{

TEST(TagArray, StartsInvalid)
{
    TagArray tags(4, 2);
    EXPECT_EQ(tags.validCount(), 0u);
    for (unsigned s = 0; s < 4; ++s) {
        EXPECT_FALSE(tags.setFull(s));
        EXPECT_EQ(tags.findInvalidWay(s).value(), 0u);
    }
}

TEST(TagArray, FillAndFind)
{
    TagArray tags(4, 2);
    tags.fill(1, 0, 0xAB);
    EXPECT_TRUE(tags.findWay(1, 0xAB).has_value());
    EXPECT_EQ(tags.findWay(1, 0xAB).value(), 0u);
    EXPECT_FALSE(tags.findWay(0, 0xAB).has_value());
    EXPECT_FALSE(tags.findWay(1, 0xAC).has_value());
}

TEST(TagArray, SetFull)
{
    TagArray tags(2, 2);
    tags.fill(0, 0, 1);
    EXPECT_FALSE(tags.setFull(0));
    tags.fill(0, 1, 2);
    EXPECT_TRUE(tags.setFull(0));
    EXPECT_FALSE(tags.findInvalidWay(0).has_value());
}

TEST(TagArray, FillClearsDirty)
{
    TagArray tags(1, 1);
    tags.fill(0, 0, 7);
    tags.entry(0, 0).dirty = true;
    tags.fill(0, 0, 8);
    EXPECT_FALSE(tags.entry(0, 0).dirty);
    EXPECT_EQ(tags.entry(0, 0).tag, 8u);
}

TEST(TagArray, Invalidate)
{
    TagArray tags(2, 2);
    tags.fill(1, 1, 5);
    tags.entry(1, 1).dirty = true;
    tags.invalidate(1, 1);
    EXPECT_FALSE(tags.findWay(1, 5).has_value());
    EXPECT_FALSE(tags.entry(1, 1).dirty);
    EXPECT_EQ(tags.validCount(), 0u);
}

TEST(TagArray, InvalidEntryNeverMatches)
{
    TagArray tags(1, 2);
    tags.fill(0, 0, 0);
    tags.invalidate(0, 0);
    // Tag value 0 on an invalid entry must not match.
    EXPECT_FALSE(tags.findWay(0, 0).has_value());
}

TEST(TagArray, ValidCount)
{
    TagArray tags(4, 4);
    for (unsigned s = 0; s < 4; ++s)
        for (unsigned w = 0; w < s; ++w)
            tags.fill(s, w, w + 1);
    EXPECT_EQ(tags.validCount(), 0u + 1 + 2 + 3);
}

TEST(TagArray, DuplicateTagReturnsLowestWay)
{
    TagArray tags(1, 4);
    tags.fill(0, 2, 9);
    tags.fill(0, 1, 9);
    EXPECT_EQ(tags.findWay(0, 9).value(), 1u);
}

} // namespace
} // namespace adcache
