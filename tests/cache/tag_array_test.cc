#include "cache/tag_array.hh"

#include <gtest/gtest.h>

#include "util/bits.hh"
#include "util/rng.hh"

namespace adcache
{
namespace
{

TEST(TagArray, StartsInvalid)
{
    TagArray tags(4, 2);
    EXPECT_EQ(tags.validCount(), 0u);
    for (unsigned s = 0; s < 4; ++s) {
        EXPECT_FALSE(tags.setFull(s));
        EXPECT_EQ(tags.invalidWay(s), 0u);
        EXPECT_EQ(tags.validMask(s), 0u);
    }
}

TEST(TagArray, FillAndFind)
{
    TagArray tags(4, 2);
    tags.fill(1, 0, 0xAB);
    EXPECT_EQ(tags.lookup(1, 0xAB), 0u);
    EXPECT_EQ(tags.lookup(0, 0xAB), TagArray::kNoWay);
    EXPECT_EQ(tags.lookup(1, 0xAC), TagArray::kNoWay);
    EXPECT_TRUE(tags.valid(1, 0));
    EXPECT_FALSE(tags.valid(1, 1));
}

TEST(TagArray, SetFull)
{
    TagArray tags(2, 2);
    tags.fill(0, 0, 1);
    EXPECT_FALSE(tags.setFull(0));
    tags.fill(0, 1, 2);
    EXPECT_TRUE(tags.setFull(0));
    EXPECT_EQ(tags.invalidWay(0), TagArray::kNoWay);
}

TEST(TagArray, InvalidWayIsLowestHole)
{
    TagArray tags(1, 4);
    tags.fill(0, 0, 1);
    tags.fill(0, 1, 2);
    tags.fill(0, 2, 3);
    tags.fill(0, 3, 4);
    tags.invalidate(0, 1);
    tags.invalidate(0, 3);
    // Valid mask 0b0101: the lowest invalid way is 1, not 3.
    EXPECT_EQ(tags.invalidWay(0), 1u);
}

TEST(TagArray, FillClearsDirty)
{
    TagArray tags(1, 1);
    tags.fill(0, 0, 7);
    tags.markDirty(0, 0);
    tags.fill(0, 0, 8);
    EXPECT_FALSE(tags.dirty(0, 0));
    EXPECT_EQ(tags.tag(0, 0), 8u);
}

TEST(TagArray, Invalidate)
{
    TagArray tags(2, 2);
    tags.fill(1, 1, 5);
    tags.markDirty(1, 1);
    tags.invalidate(1, 1);
    EXPECT_EQ(tags.lookup(1, 5), TagArray::kNoWay);
    EXPECT_FALSE(tags.dirty(1, 1));
    EXPECT_EQ(tags.validCount(), 0u);
}

TEST(TagArray, InvalidEntryNeverMatches)
{
    TagArray tags(1, 2);
    tags.fill(0, 0, 0);
    tags.invalidate(0, 0);
    // Tag value 0 on an invalid entry must not match.
    EXPECT_EQ(tags.lookup(0, 0), TagArray::kNoWay);
}

TEST(TagArray, ValidCount)
{
    TagArray tags(4, 4);
    for (unsigned s = 0; s < 4; ++s)
        for (unsigned w = 0; w < s; ++w)
            tags.fill(s, w, w + 1);
    EXPECT_EQ(tags.validCount(), 0u + 1 + 2 + 3);
}

TEST(TagArray, DuplicateTagReturnsLowestWay)
{
    TagArray tags(1, 4);
    tags.fill(0, 2, 9);
    tags.fill(0, 1, 9);
    EXPECT_EQ(tags.lookup(0, 9), 1u);
}

// ---------------------------------------------------------------------
// Packed partial-tag probe path (SWAR compare over 8/16-bit lanes).
// ---------------------------------------------------------------------

TEST(PackedTagArray, EnabledOnlyForNarrowTags)
{
    EXPECT_FALSE(TagArray(8, 8).packedProbe());        // full tags
    EXPECT_TRUE(TagArray(8, 8, 4).packedProbe());      // 8-bit lanes
    EXPECT_TRUE(TagArray(8, 8, 7).packedProbe());      // 8-bit lanes
    EXPECT_TRUE(TagArray(8, 8, 8).packedProbe());      // 16-bit lanes
    EXPECT_TRUE(TagArray(8, 8, 12).packedProbe());     // 16-bit lanes
    EXPECT_TRUE(TagArray(8, 8, 15).packedProbe());
    EXPECT_FALSE(TagArray(8, 8, 16).packedProbe());    // lane too wide
    EXPECT_FALSE(TagArray(8, 16, 8).packedProbe());    // assoc > 8
}

TEST(PackedTagArray, AliasingBoundaryReturnsLowestWay)
{
    // Two ways holding the same folded tag: the packed compare must
    // return the lowest matching way, exactly like the linear scan.
    for (unsigned tag_bits : {4u, 7u, 8u, 12u}) {
        TagArray tags(2, 8, tag_bits);
        ASSERT_TRUE(tags.packedProbe());
        const Addr alias = lowMask(tag_bits);  // widest folded value
        tags.fill(0, 6, alias);
        EXPECT_EQ(tags.lookup(0, alias), 6u) << tag_bits;
        tags.fill(0, 3, alias);
        EXPECT_EQ(tags.lookup(0, alias), 3u) << tag_bits;
        tags.fill(0, 0, alias);
        EXPECT_EQ(tags.lookup(0, alias), 0u) << tag_bits;
        tags.invalidate(0, 0);
        EXPECT_EQ(tags.lookup(0, alias), 3u) << tag_bits;
    }
}

TEST(PackedTagArray, LaneStraddleMatchesIn16BitMode)
{
    // 16-bit lanes span two words (ways 0-3 and 4-7); matches must be
    // found on both sides of the boundary.
    TagArray tags(1, 8, 12);
    ASSERT_TRUE(tags.packedProbe());
    tags.fill(0, 3, 0x123);
    tags.fill(0, 4, 0x456);
    EXPECT_EQ(tags.lookup(0, 0x123), 3u);
    EXPECT_EQ(tags.lookup(0, 0x456), 4u);
    EXPECT_EQ(tags.lookup(0, 0x789), TagArray::kNoWay);
}

TEST(PackedTagArray, ProbeWiderThanStoredTagsNeverMatches)
{
    TagArray tags(1, 8, 6);
    tags.fill(0, 0, 0x2A);
    // A probe above the folded-tag domain cannot match any stored
    // tag, exactly as in the scan representation.
    EXPECT_EQ(tags.lookup(0, 0x12A), TagArray::kNoWay);
    EXPECT_EQ(tags.lookup(0, 0x2A), 0u);
}

TEST(PackedTagArray, InvalidLanesNeverMatchAnyProbe)
{
    for (unsigned tag_bits : {5u, 11u}) {
        TagArray tags(1, 8, tag_bits);
        // No fill at all: every probe value must miss.
        for (Addr t = 0; t <= lowMask(tag_bits); ++t)
            ASSERT_EQ(tags.lookup(0, t), TagArray::kNoWay) << tag_bits;
        // After fill+invalidate the lane must be unmatchable again.
        tags.fill(0, 2, 1);
        tags.invalidate(0, 2);
        for (Addr t = 0; t <= lowMask(tag_bits); ++t)
            ASSERT_EQ(tags.lookup(0, t), TagArray::kNoWay) << tag_bits;
    }
}

/** Exhaustive packed-vs-scan equivalence over random fill patterns. */
TEST(PackedTagArray, AgreesWithScanRepresentation)
{
    Rng rng(2026);
    for (unsigned tag_bits = 1; tag_bits <= 15; ++tag_bits) {
        for (unsigned assoc : {1u, 3u, 4u, 8u}) {
            TagArray packed(4, assoc, tag_bits);
            TagArray scan(4, assoc);  // same contents, scan probe
            ASSERT_TRUE(packed.packedProbe());
            ASSERT_FALSE(scan.packedProbe());
            for (unsigned step = 0; step < 300; ++step) {
                const unsigned set = unsigned(rng.below(4));
                const unsigned way = unsigned(rng.below(assoc));
                const Addr tag = rng.below(lowMask(tag_bits) + 1);
                switch (rng.below(3)) {
                  case 0:
                    packed.fill(set, way, tag);
                    scan.fill(set, way, tag);
                    break;
                  case 1:
                    packed.invalidate(set, way);
                    scan.invalidate(set, way);
                    break;
                  default: {
                    const Addr probe =
                        rng.below(lowMask(tag_bits) + 1);
                    ASSERT_EQ(packed.lookup(set, probe),
                              scan.lookup(set, probe))
                        << "bits=" << tag_bits << " assoc=" << assoc;
                    break;
                  }
                }
            }
            for (unsigned s = 0; s < 4; ++s)
                for (Addr t = 0; t <= lowMask(tag_bits);
                     t += (tag_bits > 8 ? 37 : 1))
                    ASSERT_EQ(packed.lookup(s, t), scan.lookup(s, t));
        }
    }
}

} // namespace
} // namespace adcache
