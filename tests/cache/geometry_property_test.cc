/**
 * @file
 * Property sweeps over cache geometry: address decomposition must be
 * lossless and consistent for every (size, assoc, line) combination
 * the experiments use — including the non-power-of-two
 * associativities of Fig. 6 and the 128-byte lines of Sec. 3.2.
 */

#include <gtest/gtest.h>

#include "cache/cache_model.hh"
#include "util/rng.hh"

namespace adcache
{
namespace
{

struct GeomCase
{
    std::uint64_t size;
    unsigned assoc;
    unsigned line;
};

class GeometrySweep : public ::testing::TestWithParam<GeomCase>
{
};

TEST_P(GeometrySweep, DecompositionRoundTrips)
{
    const auto c = GetParam();
    const auto g = CacheGeometry::fromSize(c.size, c.assoc, c.line);
    EXPECT_EQ(g.sizeBytes(), c.size);

    Rng rng(123);
    for (int i = 0; i < 2000; ++i) {
        const Addr addr = rng.below(Addr(1) << physAddrBits);
        const unsigned set = g.setIndex(addr);
        const Addr tag = g.tag(addr);
        ASSERT_LT(set, g.numSets);
        const Addr rebuilt = g.reconstruct(set, tag);
        EXPECT_EQ(rebuilt, g.blockAddr(addr));
        // Two addresses in one block agree on (set, tag).
        const Addr sibling = g.blockAddr(addr) + (addr % g.lineSize);
        EXPECT_EQ(g.setIndex(sibling), set);
        EXPECT_EQ(g.tag(sibling), tag);
    }
}

TEST_P(GeometrySweep, TagBitsConsistent)
{
    const auto c = GetParam();
    const auto g = CacheGeometry::fromSize(c.size, c.assoc, c.line);
    EXPECT_EQ(g.tagBits() + g.indexBits() + g.offsetBits(),
              physAddrBits);
}

INSTANTIATE_TEST_SUITE_P(
    PaperConfigs, GeometrySweep,
    ::testing::Values(GeomCase{512 * 1024, 8, 64},    // Table 1 L2
                      GeomCase{512 * 1024, 8, 128},   // Sec. 3.2
                      GeomCase{576 * 1024, 9, 64},    // Fig. 6
                      GeomCase{640 * 1024, 10, 64},   // Fig. 6
                      GeomCase{512 * 1024, 4, 64},    // Fig. 9
                      GeomCase{512 * 1024, 16, 64},   // Fig. 9
                      GeomCase{512 * 1024, 32, 64},   // Fig. 9
                      GeomCase{16 * 1024, 4, 64},     // L1s
                      GeomCase{64, 1, 64},            // degenerate
                      GeomCase{8 * 1024 * 1024, 16, 128}),
    [](const auto &info) {
        const auto &c = info.param;
        return std::to_string(c.size / 1024) + "K_w" +
               std::to_string(c.assoc) + "_l" +
               std::to_string(c.line);
    });

} // namespace
} // namespace adcache
