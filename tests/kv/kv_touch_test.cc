/**
 * @file
 * Unit tests of the lock-free read path's deferred-touch protocol
 * (KvShard's TouchRing): drain ordering, the bounded-staleness
 * invariant, the full-ring slow path, and an order-preservation
 * check against StampLanes8 used as a rank oracle across its
 * renormalization boundary. All cases are single-threaded — the
 * point is that deferral changes *when* promotions apply, never
 * *what* they apply (docs/KVCACHE.md "Concurrency model").
 */

#include "kv/adaptive_kv_cache.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "cache/policy_sets.hh"

namespace adcache::kv
{
namespace
{

/** Deterministic single-shard LRU config with lock-free reads. */
KvConfig
touchConfig(std::uint64_t capacity, unsigned touch_capacity)
{
    KvConfig c;
    c.capacity = capacity;
    c.numShards = 1;
    c.numBuckets = 8;
    c.bucketWays = 4;
    c.leaderEvery = 1;
    c.shadowTagBits = 0;
    c.scope = EvictionScope::Shard;
    c.selector = SelectorMode::FixedLru;
    c.keyHash = KeyHashKind::Identity;
    c.lockFreeReads = true;
    c.touchCapacity = touch_capacity;
    return c;
}

/** Sum of a counter over all shards. */
KvShardStats
totalStats(const AdaptiveKvCache &cache)
{
    KvShardStats total;
    for (unsigned s = 0; s < cache.numShards(); ++s)
        total.add(cache.shard(s).stats());
    return total;
}

TEST(KvTouchTest, DrainOnMissPromotesBeforeVictimSelection)
{
    AdaptiveKvCache cache(touchConfig(4, 256));
    for (KvKey k = 1; k <= 4; ++k)
        cache.put(k, "v");

    // The lock-free hit only queues the promotion; key 1 is still at
    // the recency tail until something drains.
    ASSERT_TRUE(cache.get(1).has_value());

    // The filling miss drains first, so the promotion lands before
    // the victim scan: key 2 is evicted, not the just-read key 1.
    const KvOutcome out = cache.put(5, "v");
    EXPECT_TRUE(out.evicted);
    EXPECT_EQ(out.evictedKey, 2u);
    EXPECT_TRUE(cache.contains(1));
}

TEST(KvTouchTest, DrainAppliesTouchesInFifoOrder)
{
    AdaptiveKvCache cache(touchConfig(4, 256));
    for (KvKey k = 1; k <= 4; ++k)
        cache.put(k, "v");

    // Queue two touches; FIFO drain must promote 3 then 1, leaving
    // recency (front to back): 1, 3, 4, 2.
    ASSERT_TRUE(cache.get(3).has_value());
    ASSERT_TRUE(cache.get(1).has_value());

    std::vector<KvKey> evicted;
    for (KvKey k = 5; k <= 8; ++k) {
        const KvOutcome out = cache.put(k, "v");
        ASSERT_TRUE(out.evicted);
        evicted.push_back(out.evictedKey);
    }
    // A LIFO drain would swap the final two.
    EXPECT_EQ(evicted, (std::vector<KvKey>{2, 4, 3, 1}));
}

TEST(KvTouchTest, FullRingFallsBackToEagerPromotion)
{
    // Ring capacity 2: the third buffered read cannot queue and must
    // take the mutex slow path, which drains the ring and promotes
    // eagerly — reads never get lost, only serialized.
    AdaptiveKvCache cache(touchConfig(8, 2));
    for (KvKey k = 1; k <= 8; ++k)
        cache.put(k, "v");

    for (KvKey k = 1; k <= 5; ++k)
        ASSERT_TRUE(cache.get(k).has_value());

    const KvShardStats st = totalStats(cache);
    EXPECT_EQ(st.gets, 5u);
    EXPECT_EQ(st.getHits, 5u);
    EXPECT_GE(st.slowProbes, 1u);

    // Whatever mix of buffered and eager promotion served the reads,
    // the resulting recency order is the access order: evictions go
    // 6, 7, 8, then 1..5.
    std::vector<KvKey> evicted;
    for (KvKey k = 100; k < 108; ++k) {
        const KvOutcome out = cache.put(k, "v");
        ASSERT_TRUE(out.evicted);
        evicted.push_back(out.evictedKey);
    }
    EXPECT_EQ(evicted, (std::vector<KvKey>{6, 7, 8, 1, 2, 3, 4, 5}));
}

TEST(KvTouchTest, StalenessBoundedByRingCapacity)
{
    // The invariant behind the relaxed-LRU story: a read's promotion
    // can be deferred by at most touchCapacity ring slots — once the
    // ring holds R touches the next read promotes eagerly, so an
    // entry's perceived recency never lags its true recency by more
    // than R queued events. With R = 4 and 5 reads, every read is
    // either in the ring (drained before any eviction) or already
    // applied; no interleaving of deferral can rank a touched entry
    // below an untouched one.
    const unsigned ring = 4;
    AdaptiveKvCache cache(touchConfig(8, ring));
    for (KvKey k = 1; k <= 8; ++k)
        cache.put(k, "v");

    for (KvKey k = 1; k <= 5; ++k)
        ASSERT_TRUE(cache.get(k).has_value());

    // First three victims must come from the untouched keys {6,7,8}:
    // a staleness violation would evict a touched key first.
    for (int i = 0; i < 3; ++i) {
        const KvOutcome out = cache.put(KvKey(200 + i), "v");
        ASSERT_TRUE(out.evicted);
        EXPECT_GE(out.evictedKey, 6u);
        EXPECT_LE(out.evictedKey, 8u);
    }
    for (KvKey k = 1; k <= 5; ++k)
        EXPECT_TRUE(cache.contains(k)) << "touched key " << k;
}

TEST(KvTouchTest, DrainMatchesStampLanesRankOracle)
{
    // StampLanes8 is the simulator's order-preserving recency
    // compression (cache/policy_sets.hh); here it serves as an
    // independent rank oracle for the kv shard's LRU under deferred
    // touches. Eight resident keys map to lanes 0..7; every get
    // bumps the lane. 400 touches force the 8-bit clock through its
    // renormalization boundary, and the interleaved erase of a
    // missing key forces periodic ring drains mid-sequence — the
    // final eviction order must still equal the oracle's ascending
    // stamp order.
    const unsigned kKeys = 8;
    AdaptiveKvCache cache(touchConfig(kKeys, 16));
    for (KvKey k = 0; k < kKeys; ++k)
        cache.put(k, "v");
    StampLanes8 oracle(1, kKeys);
    for (unsigned w = 0; w < kKeys; ++w)
        oracle.bump(0, w); // insertion order, matching the puts

    std::uint64_t x = 0x2545f4914f6cdd1dull;
    for (int i = 0; i < 400; ++i) {
        // xorshift so the touch sequence is fixed but unpatterned.
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const KvKey k = KvKey(x % kKeys);
        ASSERT_TRUE(cache.get(k).has_value());
        oracle.bump(0, unsigned(k));
        if (i % 7 == 0)
            cache.erase(1000); // mutation path: drains the ring
    }

    // Expected eviction order: resident keys by ascending stamp.
    std::vector<unsigned> ways(kKeys);
    std::iota(ways.begin(), ways.end(), 0u);
    std::sort(ways.begin(), ways.end(),
              [&](unsigned a, unsigned b) {
                  return oracle.stamp(0, a) < oracle.stamp(0, b);
              });

    std::vector<KvKey> evicted;
    for (KvKey k = 500; k < 500 + kKeys; ++k) {
        const KvOutcome out = cache.put(k, "v");
        ASSERT_TRUE(out.evicted);
        evicted.push_back(out.evictedKey);
    }
    std::vector<KvKey> expected(ways.begin(), ways.end());
    EXPECT_EQ(evicted, expected);
}

TEST(KvTouchTest, LockFreeReadsOffIsByteIdenticalSingleThreaded)
{
    // Drain-equals-eager: with one thread, the deferred-touch path
    // must be observationally identical to classic locked reads —
    // same stats, same evictions, same residents.
    KvConfig on = touchConfig(16, 8);
    KvConfig off = on;
    off.lockFreeReads = false;
    AdaptiveKvCache a(on), b(off);

    auto run = [](AdaptiveKvCache &cache) {
        std::uint64_t x = 88172645463325252ull;
        for (int i = 0; i < 4000; ++i) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            const KvKey k = KvKey(x % 48);
            switch (x % 5) {
              case 0:
              case 1:
                cache.get(k);
                break;
              case 2:
                cache.put(k, "v" + std::to_string(k));
                break;
              case 3:
                cache.fetch(k, [&] {
                    return "v" + std::to_string(k);
                });
                break;
              default:
                if (x % 10 == 4)
                    cache.erase(k);
                else
                    cache.get(k);
                break;
            }
        }
    };
    run(a);
    run(b);

    const KvShardStats sa = totalStats(a);
    const KvShardStats sb = totalStats(b);
    EXPECT_EQ(sa.references, sb.references);
    EXPECT_EQ(sa.hits, sb.hits);
    EXPECT_EQ(sa.misses, sb.misses);
    EXPECT_EQ(sa.gets, sb.gets);
    EXPECT_EQ(sa.getHits, sb.getHits);
    EXPECT_EQ(sa.inserts, sb.inserts);
    EXPECT_EQ(sa.evictions, sb.evictions);
    EXPECT_EQ(sa.erases, sb.erases);
    EXPECT_EQ(a.size(), b.size());

    std::vector<KvKey> ra = a.shard(0).residentKeys();
    std::vector<KvKey> rb = b.shard(0).residentKeys();
    std::sort(ra.begin(), ra.end());
    std::sort(rb.begin(), rb.end());
    EXPECT_EQ(ra, rb);
}

TEST(KvTouchTest, ProbeCountersFlowThroughStats)
{
    AdaptiveKvCache cache(touchConfig(8, 256));
    cache.put(1, "one");
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(cache.get(1).has_value());
    for (int i = 0; i < 5; ++i)
        EXPECT_FALSE(cache.get(99).has_value());

    const KvShardStats st = totalStats(cache);
    EXPECT_EQ(st.gets, 15u);
    EXPECT_EQ(st.getHits, 10u);
    EXPECT_EQ(st.readRetries, 0u); // no concurrent writers
}

} // namespace
} // namespace adcache::kv
