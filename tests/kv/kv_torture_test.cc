/**
 * @file
 * Concurrency-torture tier of the lock-free kv read path
 * (ctest -L kvtorture; run under the asan and tsan presets — see
 * docs/TESTING.md).
 *
 * Three proof shapes:
 *  - Determinism: threads that partition operations by shard
 *    preserve per-shard order, so every counter and the resident
 *    set must equal a serial replay with the same drain schedule.
 *  - Identity under contention: readers racing a thrashing writer
 *    may see any resident snapshot, but a hit must return the value
 *    written for that key — the seqlock/reclamation failure mode is
 *    a torn or recycled entry, caught by value identity.
 *  - Quiescent accounting: after the storm, the per-shard identities
 *    (references = hits + misses, size = inserts - evictions -
 *    erases, ...) must balance exactly.
 */

#include "kv/adaptive_kv_cache.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <vector>

#include "oracle/kv_fuzzer.hh"
#include "sim/runner.hh"
#include "util/rng.hh"

namespace adcache::kv
{
namespace
{

KvConfig
tortureConfig(unsigned shards, std::uint64_t capacity)
{
    KvConfig c;
    c.capacity = capacity;
    c.numShards = shards;
    c.numBuckets = 128;
    c.bucketWays = 4;
    c.leaderEvery = 4;
    c.shadowTagBits = 12;
    c.scope = EvictionScope::Shard;
    c.selector = SelectorMode::Adaptive;
    c.keyHash = KeyHashKind::Mix;
    return c;
}

/** Mixed-op record for the partitioned determinism tests. */
struct Op
{
    KvFuzzOpKind kind;
    KvKey key;
};

void
applyOp(AdaptiveKvCache &cache, const Op &op)
{
    switch (op.kind) {
      case KvFuzzOpKind::Get:
        cache.get(op.key);
        break;
      case KvFuzzOpKind::Put:
        cache.put(op.key, kvExpectedValue(op.key));
        break;
      case KvFuzzOpKind::Fetch:
        cache.fetch(op.key,
                    [&] { return kvExpectedValue(op.key); });
        break;
      case KvFuzzOpKind::Erase:
        cache.erase(op.key);
        break;
      case KvFuzzOpKind::Pin:
        cache.pin(op.key);
        break;
      case KvFuzzOpKind::Unpin:
        cache.unpin(op.key);
        break;
    }
}

/** Every externally visible per-shard counter, read path included. */
void
expectShardsEqual(const AdaptiveKvCache &a, const AdaptiveKvCache &b)
{
    ASSERT_EQ(a.numShards(), b.numShards());
    for (unsigned s = 0; s < a.numShards(); ++s) {
        const KvShardStats x = a.shard(s).stats();
        const KvShardStats y = b.shard(s).stats();
        EXPECT_EQ(x.references, y.references) << "shard " << s;
        EXPECT_EQ(x.hits, y.hits) << "shard " << s;
        EXPECT_EQ(x.misses, y.misses) << "shard " << s;
        EXPECT_EQ(x.gets, y.gets) << "shard " << s;
        EXPECT_EQ(x.getHits, y.getHits) << "shard " << s;
        EXPECT_EQ(x.inserts, y.inserts) << "shard " << s;
        EXPECT_EQ(x.updates, y.updates) << "shard " << s;
        EXPECT_EQ(x.evictions, y.evictions) << "shard " << s;
        EXPECT_EQ(x.erases, y.erases) << "shard " << s;
        std::vector<KvKey> ra = a.shard(s).residentKeys();
        std::vector<KvKey> rb = b.shard(s).residentKeys();
        std::sort(ra.begin(), ra.end());
        std::sort(rb.begin(), rb.end());
        EXPECT_EQ(ra, rb) << "shard " << s;
    }
}

/** The quiescent accounting identities over every shard. */
void
expectAccountingBalanced(const AdaptiveKvCache &cache)
{
    std::size_t resident = 0;
    for (unsigned s = 0; s < cache.numShards(); ++s) {
        const KvShardStats st = cache.shard(s).stats();
        EXPECT_EQ(st.references, st.hits + st.misses)
            << "shard " << s;
        EXPECT_EQ(st.misses,
                  st.inserts + st.rejected + st.admitRejects)
            << "shard " << s;
        EXPECT_GE(st.gets, st.getHits) << "shard " << s;
        EXPECT_EQ(cache.shard(s).size(),
                  st.inserts - st.evictions - st.erases)
            << "shard " << s;
        EXPECT_LE(cache.shard(s).pinnedCount(),
                  cache.shard(s).size())
            << "shard " << s;
        resident += cache.shard(s).residentKeys().size();
    }
    EXPECT_EQ(resident, cache.size());
    EXPECT_LE(cache.size(), cache.capacity());
}

TEST(KvTortureTest, ReadersPlusWriterPartitionedMatchSerialReplay)
{
    // Satellite of the shard-partitioned-equals-serial family: three
    // reader threads plus one mutator, partitioned by shard so each
    // shard sees a single thread. Per-shard operation order — and
    // therefore the drain schedule of every touch ring — is
    // identical in the serial replay, so equality is exact,
    // lock-free reads included.
    const unsigned shards = 4;
    const std::size_t ops = 50'000;
    Rng rng(20260808);

    // Shards 0..2 are read-mostly (their ops come from "readers");
    // shard 3 is the mutator's (puts and erases).
    std::vector<Op> flat;
    flat.reserve(ops);
    AdaptiveKvCache probe_only(tortureConfig(shards, 2048));
    while (flat.size() < ops) {
        const KvKey key = rng.zipfApprox(1 << 13, 0.99);
        const unsigned s = probe_only.shardOf(key);
        Op op{KvFuzzOpKind::Get, key};
        if (s == 3) {
            op.kind = rng.chance(0.3) ? KvFuzzOpKind::Erase
                                      : KvFuzzOpKind::Put;
        } else {
            // Readers still need residents: seed occasional puts.
            op.kind = rng.chance(0.15) ? KvFuzzOpKind::Put
                                       : KvFuzzOpKind::Get;
        }
        flat.push_back(op);
    }

    AdaptiveKvCache serial(tortureConfig(shards, 2048));
    for (const Op &op : flat)
        applyOp(serial, op);

    AdaptiveKvCache parallel(tortureConfig(shards, 2048));
    std::vector<std::vector<Op>> byShard(shards);
    for (const Op &op : flat)
        byShard[parallel.shardOf(op.key)].push_back(op);
    runIndexed(shards, shards, [&](std::size_t t) {
        for (const Op &op : byShard[t])
            applyOp(parallel, op);
    });

    expectShardsEqual(serial, parallel);
    EXPECT_EQ(serial.size(), parallel.size());
    expectAccountingBalanced(parallel);
}

TEST(KvTortureTest, MixedOpsPartitionedMatchSerialReplay)
{
    // The full operation surface (get/put/fetch/erase/pin/unpin)
    // through the same partitioned-determinism lens.
    const unsigned shards = 4;
    const std::size_t ops = 40'000;
    Rng rng(7);

    std::vector<Op> flat;
    flat.reserve(ops);
    for (std::size_t i = 0; i < ops; ++i) {
        const KvKey key = rng.zipfApprox(1 << 12, 0.9);
        KvFuzzOpKind kind = KvFuzzOpKind::Get;
        const double r = rng.uniform();
        if (r < 0.25)
            kind = KvFuzzOpKind::Put;
        else if (r < 0.32)
            kind = KvFuzzOpKind::Fetch;
        else if (r < 0.40)
            kind = KvFuzzOpKind::Erase;
        else if (r < 0.44)
            kind = KvFuzzOpKind::Pin;
        else if (r < 0.52)
            kind = KvFuzzOpKind::Unpin;
        flat.push_back({kind, key});
    }

    AdaptiveKvCache serial(tortureConfig(shards, 1024));
    for (const Op &op : flat)
        applyOp(serial, op);

    AdaptiveKvCache parallel(tortureConfig(shards, 1024));
    std::vector<std::vector<Op>> byShard(shards);
    for (const Op &op : flat)
        byShard[parallel.shardOf(op.key)].push_back(op);
    runIndexed(shards, shards, [&](std::size_t t) {
        for (const Op &op : byShard[t])
            applyOp(parallel, op);
    });

    expectShardsEqual(serial, parallel);
    expectAccountingBalanced(parallel);
}

TEST(KvTortureTest, ReadersVsThrashingWriterKeepValueIdentity)
{
    // The core torture: three readers hammer Zipf gets while one
    // writer thrashes puts over a keyspace far beyond capacity,
    // forcing continuous eviction, unlink, and epoch reclamation
    // under the readers' feet. Every hit must return that key's
    // value; a torn read or recycled entry surfaces as a mismatch
    // (and as a TSan report under the tsan preset).
    AdaptiveKvCache cache(tortureConfig(4, 512));
    const std::uint64_t keyspace = 4096;
    const unsigned threads = 4;
    std::atomic<std::uint64_t> mismatches{0};

    runIndexed(threads, threads, [&](std::size_t t) {
        Rng rng(1000 + t);
        if (t == 0) {
            for (int i = 0; i < 60'000; ++i) {
                const KvKey k = rng.below(keyspace);
                cache.put(k, kvExpectedValue(k));
                if (i % 17 == 0)
                    cache.erase(rng.below(keyspace));
            }
        } else {
            for (int i = 0; i < 60'000; ++i) {
                const KvKey k = rng.zipfApprox(keyspace, 0.99);
                if (auto v = cache.get(k)) {
                    if (*v != kvExpectedValue(k))
                        mismatches.fetch_add(1);
                }
            }
        }
    });

    EXPECT_EQ(mismatches.load(), 0u);
    expectAccountingBalanced(cache);

    // The retry/slow-path counters are the observable trace of the
    // optimistic protocol; they must at least be self-consistent.
    KvShardStats total;
    for (unsigned s = 0; s < cache.numShards(); ++s)
        total.add(cache.shard(s).stats());
    EXPECT_GT(total.gets, 0u);
    EXPECT_GT(total.getHits, 0u);
}

TEST(KvTortureTest, PinnedKeysAlwaysHitUnderThrash)
{
    // Pins are atomic on the lock-free path; a pinned key must
    // survive any eviction storm and every concurrent read of it
    // must hit with the right value.
    AdaptiveKvCache cache(tortureConfig(4, 256));
    const std::vector<KvKey> pinned = {3, 1'000'003, 2'000'003,
                                       3'000'003};
    for (const KvKey k : pinned)
        cache.put(k, kvExpectedValue(k), /*pinned=*/true);

    const unsigned threads = 4;
    std::atomic<std::uint64_t> lost{0};
    runIndexed(threads, threads, [&](std::size_t t) {
        Rng rng(77 + t);
        if (t == 0) {
            for (int i = 0; i < 50'000; ++i) {
                const KvKey k = 10'000 + rng.below(8192);
                cache.put(k, kvExpectedValue(k));
            }
        } else {
            for (int i = 0; i < 50'000; ++i) {
                const KvKey k = pinned[rng.below(pinned.size())];
                auto v = cache.get(k);
                if (!v || *v != kvExpectedValue(k))
                    lost.fetch_add(1);
            }
        }
    });

    EXPECT_EQ(lost.load(), 0u);
    for (const KvKey k : pinned) {
        EXPECT_TRUE(cache.contains(k)) << "pinned key " << k;
        EXPECT_EQ(*cache.get(k), kvExpectedValue(k));
    }
    expectAccountingBalanced(cache);
}

TEST(KvTortureTest, PinUnpinRacesKeepAccounting)
{
    // Threads race pin/unpin cycles on a small key set against an
    // eviction storm: the atomic pin word must linearize every
    // transition (no pinned-count drift, no dying entry resurrected
    // by a pin).
    AdaptiveKvCache cache(tortureConfig(2, 128));
    const unsigned threads = 4;
    runIndexed(threads, threads, [&](std::size_t t) {
        Rng rng(31 + t);
        for (int i = 0; i < 40'000; ++i) {
            const KvKey k = rng.below(64);
            switch (rng.below(4)) {
              case 0:
                cache.pin(k);
                break;
              case 1:
                cache.unpin(k);
                break;
              case 2: {
                const KvKey f = 1'000 + rng.below(512);
                cache.put(f, kvExpectedValue(f));
                break;
              }
              default:
                cache.get(k);
                break;
            }
        }
    });

    expectAccountingBalanced(cache);

    // Unpin everything; afterwards inserts must always succeed.
    for (unsigned s = 0; s < cache.numShards(); ++s)
        for (const KvKey k : cache.shard(s).residentKeys())
            cache.unpin(k);
    for (unsigned s = 0; s < cache.numShards(); ++s)
        EXPECT_EQ(cache.shard(s).pinnedCount(), 0u) << "shard " << s;
    const KvOutcome out = cache.put(0xfeed, "alive");
    EXPECT_TRUE(out.inserted);
    EXPECT_EQ(*cache.get(0xfeed), "alive");
}

TEST(KvTortureTest, ContainsRacesNeverMisreportValueIdentity)
{
    // contains() rides the same seqlock-validated walk; interleave
    // it with gets and writes to cross-check the two read surfaces.
    AdaptiveKvCache cache(tortureConfig(2, 256));
    std::atomic<std::uint64_t> mismatches{0};
    runIndexed(3, 3, [&](std::size_t t) {
        Rng rng(5 + t);
        if (t == 0) {
            for (int i = 0; i < 50'000; ++i) {
                const KvKey k = rng.below(1024);
                if (rng.chance(0.8))
                    cache.put(k, kvExpectedValue(k));
                else
                    cache.erase(k);
            }
        } else {
            for (int i = 0; i < 50'000; ++i) {
                const KvKey k = rng.below(1024);
                // Membership may legitimately change between the
                // two calls; only the value binding is invariant.
                if (cache.contains(k)) {
                    if (auto v = cache.get(k)) {
                        if (*v != kvExpectedValue(k))
                            mismatches.fetch_add(1);
                    }
                }
            }
        }
    });
    EXPECT_EQ(mismatches.load(), 0u);
    expectAccountingBalanced(cache);
}

} // namespace
} // namespace adcache::kv
