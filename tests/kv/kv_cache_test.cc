/**
 * @file
 * Behavioural tests of the adaptive key-value cache: API semantics
 * (get/fetch/put/erase/pin), capacity enforcement, fixed-policy
 * eviction order, pinned-entry protection including the all-pinned
 * rejection path, and stats plumbing.
 */

#include "kv/adaptive_kv_cache.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/stat_registry.hh"

namespace adcache::kv
{
namespace
{

/** Small deterministic single-shard config (Shard scope). */
KvConfig
smallConfig(SelectorMode selector, std::uint64_t capacity = 4)
{
    KvConfig c;
    c.capacity = capacity;
    c.numShards = 1;
    c.numBuckets = 8;
    c.bucketWays = 4;
    c.leaderEvery = 1;
    c.shadowTagBits = 0;
    c.scope = EvictionScope::Shard;
    c.selector = selector;
    c.keyHash = KeyHashKind::Identity;
    return c;
}

TEST(KvCacheTest, PutGetEraseRoundTrip)
{
    AdaptiveKvCache cache(smallConfig(SelectorMode::FixedLru, 16));
    EXPECT_FALSE(cache.get(1).has_value());

    const KvOutcome put = cache.put(1, "one");
    EXPECT_TRUE(put.inserted);
    EXPECT_FALSE(put.hit);
    ASSERT_TRUE(cache.get(1).has_value());
    EXPECT_EQ(*cache.get(1), "one");
    EXPECT_TRUE(cache.contains(1));
    EXPECT_EQ(cache.size(), 1u);

    EXPECT_TRUE(cache.erase(1));
    EXPECT_FALSE(cache.contains(1));
    EXPECT_FALSE(cache.erase(1));
    EXPECT_EQ(cache.size(), 0u);
}

TEST(KvCacheTest, PutOverwritesFetchDoesNot)
{
    AdaptiveKvCache cache(smallConfig(SelectorMode::FixedLru, 16));
    cache.put(7, "first");
    const KvOutcome second = cache.put(7, "second");
    EXPECT_TRUE(second.hit);
    EXPECT_TRUE(second.updated);
    EXPECT_EQ(*cache.get(7), "second");

    // fetch on a hit returns the resident value, loader unused.
    bool loaded = false;
    const std::string got = cache.fetch(7, [&] {
        loaded = true;
        return std::string("third");
    });
    EXPECT_EQ(got, "second");
    EXPECT_FALSE(loaded);
}

TEST(KvCacheTest, FetchLoadsExactlyOnceOnMiss)
{
    AdaptiveKvCache cache(smallConfig(SelectorMode::FixedLru, 16));
    int calls = 0;
    const std::string got = cache.fetch(9, [&] {
        ++calls;
        return std::string("loaded");
    });
    EXPECT_EQ(got, "loaded");
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(*cache.get(9), "loaded");
}

TEST(KvCacheTest, CapacityIsEnforced)
{
    AdaptiveKvCache cache(smallConfig(SelectorMode::FixedLru, 4));
    for (KvKey k = 0; k < 100; ++k)
        cache.put(k, "v");
    EXPECT_EQ(cache.size(), 4u);
    EXPECT_EQ(cache.capacity(), 4u);
}

TEST(KvCacheTest, FixedLruEvictsLeastRecentlyUsed)
{
    AdaptiveKvCache cache(smallConfig(SelectorMode::FixedLru, 3));
    cache.put(1, "a");
    cache.put(2, "b");
    cache.put(3, "c");
    cache.get(1); // 2 is now the least recently used
    const KvOutcome out = cache.put(4, "d");
    EXPECT_TRUE(out.evicted);
    EXPECT_EQ(out.evictedKey, 2u);
    EXPECT_TRUE(cache.contains(1));
    EXPECT_FALSE(cache.contains(2));
}

TEST(KvCacheTest, FixedLfuEvictsLeastFrequentlyUsed)
{
    AdaptiveKvCache cache(smallConfig(SelectorMode::FixedLfu, 3));
    cache.put(1, "a");
    cache.put(2, "b");
    cache.put(3, "c");
    // Raise 1 and 3 to higher frequencies; 2 stays at 1 reference.
    cache.get(1);
    cache.get(1);
    cache.get(3);
    const KvOutcome out = cache.put(4, "d");
    EXPECT_TRUE(out.evicted);
    EXPECT_EQ(out.evictedKey, 2u);
}

TEST(KvCacheTest, LfuBreaksTiesByInsertionAge)
{
    AdaptiveKvCache cache(smallConfig(SelectorMode::FixedLfu, 3));
    cache.put(1, "a");
    cache.put(2, "b");
    cache.put(3, "c");
    // All at frequency 1: the oldest (key 1) goes first.
    const KvOutcome out = cache.put(4, "d");
    EXPECT_TRUE(out.evicted);
    EXPECT_EQ(out.evictedKey, 1u);
}

TEST(KvCacheTest, PinnedEntriesSurviveEvictionPressure)
{
    AdaptiveKvCache cache(smallConfig(SelectorMode::FixedLru, 4));
    cache.put(1000, "keep", /*pinned=*/true);
    for (KvKey k = 0; k < 200; ++k)
        cache.put(k, "v");
    EXPECT_TRUE(cache.contains(1000));
    EXPECT_EQ(*cache.get(1000), "keep");
}

TEST(KvCacheTest, AllPinnedRejectsAdmission)
{
    AdaptiveKvCache cache(smallConfig(SelectorMode::FixedLru, 2));
    cache.put(1, "a", /*pinned=*/true);
    cache.put(2, "b", /*pinned=*/true);
    const KvOutcome out = cache.put(3, "c");
    EXPECT_TRUE(out.rejected);
    EXPECT_FALSE(out.inserted);
    EXPECT_FALSE(cache.contains(3));
    EXPECT_EQ(cache.size(), 2u);

    // fetch still produces the value for the caller even when the
    // cache refuses to keep it.
    const std::string got =
        cache.fetch(4, [] { return std::string("transient"); });
    EXPECT_EQ(got, "transient");
    EXPECT_FALSE(cache.contains(4));
}

TEST(KvCacheTest, UnpinReadmitsToEviction)
{
    AdaptiveKvCache cache(smallConfig(SelectorMode::FixedLru, 2));
    cache.put(1, "a", /*pinned=*/true);
    cache.put(2, "b", /*pinned=*/true);
    EXPECT_TRUE(cache.unpin(1));
    const KvOutcome out = cache.put(3, "c");
    EXPECT_TRUE(out.evicted);
    EXPECT_EQ(out.evictedKey, 1u);
    EXPECT_FALSE(cache.pin(99)); // absent keys cannot be pinned
}

TEST(KvCacheTest, AdaptiveShardScopeRunsLeadersAndSelectors)
{
    KvConfig c = smallConfig(SelectorMode::Adaptive, 32);
    c.numBuckets = 16;
    c.leaderEvery = 2;
    AdaptiveKvCache cache(c);
    for (KvKey k = 0; k < 500; ++k)
        cache.put(k % 70, "v");
    const KvShard &shard = cache.shard(0);
    EXPECT_TRUE(shard.isLeader(0));
    EXPECT_FALSE(shard.isLeader(1));
    // Leaders trained the shadows and decisions were made.
    EXPECT_GT(shard.shadowMisses(kvComponentLru), 0u);
    EXPECT_GT(shard.stats().decisions[kvComponentLru] +
                  shard.stats().decisions[kvComponentLfu],
              0u);
    EXPECT_EQ(cache.size(), 32u);
}

TEST(KvCacheTest, BucketScopeFillsAndEvictsPerBucket)
{
    // The verification shape: 4 buckets x 2 ways, identity hash.
    AdaptiveKvCache cache(KvConfig::lockstep(4, 2));
    // Keys 0, 4, 8 all land in bucket 0 (key & 3 == 0).
    cache.put(0, "a");
    cache.put(4, "b");
    const KvOutcome out = cache.put(8, "c");
    EXPECT_TRUE(out.evicted);
    EXPECT_TRUE(out.replaced);
    EXPECT_EQ(cache.size(), 2u);
    // Other buckets are untouched.
    cache.put(1, "d");
    EXPECT_EQ(cache.size(), 3u);
}

TEST(KvCacheTest, ShardRoutingCoversAllShards)
{
    KvConfig c = smallConfig(SelectorMode::FixedLru, 64);
    c.numShards = 4;
    c.keyHash = KeyHashKind::Mix;
    AdaptiveKvCache cache(c);
    EXPECT_EQ(cache.numShards(), 4u);
    bool seen[4] = {};
    for (KvKey k = 0; k < 256; ++k)
        seen[cache.shardOf(k)] = true;
    EXPECT_TRUE(seen[0] && seen[1] && seen[2] && seen[3]);
}

TEST(KvCacheTest, StatsAggregateAcrossShards)
{
    KvConfig c = smallConfig(SelectorMode::FixedLru, 64);
    c.numShards = 4;
    c.keyHash = KeyHashKind::Mix;
    AdaptiveKvCache cache(c);
    for (KvKey k = 0; k < 100; ++k)
        cache.put(k, "v");
    for (KvKey k = 0; k < 100; ++k)
        cache.get(k);

    StatRegistry reg;
    cache.registerStats(reg, "kv.");
    EXPECT_EQ(reg.numeric("kv.references"), 100.0);
    EXPECT_EQ(reg.numeric("kv.gets"), 100.0);
    EXPECT_EQ(reg.numeric("kv.inserts"), 100.0);
    EXPECT_EQ(reg.numeric("kv.size"), double(cache.size()));
    EXPECT_EQ(reg.numeric("kv.evictions"),
              double(100 - cache.size()));
}

/** Multi-shard lock-free-reads config for the getMany tests. */
KvConfig
mgetConfig(unsigned touch_capacity = 256)
{
    KvConfig c;
    c.capacity = 64;
    c.numShards = 4;
    c.numBuckets = 16;
    c.bucketWays = 4;
    c.leaderEvery = 1;
    c.shadowTagBits = 0;
    c.scope = EvictionScope::Shard;
    c.selector = SelectorMode::FixedLru;
    c.keyHash = KeyHashKind::Mix;
    c.lockFreeReads = true;
    c.touchCapacity = touch_capacity;
    return c;
}

/** Deterministic key program over [0, keyspace). */
std::vector<KvKey>
keyProgram(std::uint64_t seed, std::size_t n, KvKey keyspace)
{
    std::vector<KvKey> keys;
    keys.reserve(n);
    std::uint64_t x = seed;
    for (std::size_t i = 0; i < n; ++i)
    {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        keys.push_back(KvKey((x >> 33) % keyspace));
    }
    return keys;
}

/**
 * Drives two identically populated caches through the same key
 * program — one via getMany batches of @p depth, one via serial
 * get() calls — and checks that results, per-shard residency, and
 * the gets/getHits counters all converge. (slowProbes/readRetries
 * may legitimately diverge: a batch pays one slow-path entry per
 * shard group.)
 */
void
expectGetManyMatchesSerial(const KvConfig &config, std::size_t depth)
{
    AdaptiveKvCache batched(config);
    AdaptiveKvCache serial(config);
    const std::vector<KvKey> warm = keyProgram(7, 128, 96);
    for (const KvKey k : warm)
    {
        batched.put(k, "v" + std::to_string(k));
        serial.put(k, "v" + std::to_string(k));
    }

    const std::vector<KvKey> program = keyProgram(71, 256, 96);
    std::vector<std::optional<std::string>> out(depth);
    std::size_t batched_hits = 0;
    std::size_t serial_hits = 0;
    for (std::size_t i = 0; i < program.size(); i += depth)
    {
        const std::size_t n = std::min(depth, program.size() - i);
        const std::span<const KvKey> keys(program.data() + i, n);
        batched_hits += batched.getMany(keys, out.data());
        for (std::size_t j = 0; j < n; ++j)
        {
            const std::optional<std::string> got =
                serial.get(keys[j]);
            if (got.has_value())
                ++serial_hits;
            ASSERT_EQ(out[j], got) << "key " << keys[j]
                                   << " at batch offset " << j;
        }
    }
    EXPECT_EQ(batched_hits, serial_hits);

    ASSERT_EQ(batched.numShards(), serial.numShards());
    for (unsigned s = 0; s < batched.numShards(); ++s)
    {
        std::vector<KvKey> br = batched.shard(s).residentKeys();
        std::vector<KvKey> sr = serial.shard(s).residentKeys();
        std::sort(br.begin(), br.end());
        std::sort(sr.begin(), sr.end());
        EXPECT_EQ(br, sr) << "shard " << s << " residency";
        EXPECT_EQ(batched.shard(s).stats().gets,
                  serial.shard(s).stats().gets)
            << "shard " << s;
        EXPECT_EQ(batched.shard(s).stats().getHits,
                  serial.shard(s).stats().getHits)
            << "shard " << s;
    }
}

TEST(KvCacheTest, GetManyMatchesSerialGetsLockstep)
{
    expectGetManyMatchesSerial(mgetConfig(), 16);
}

TEST(KvCacheTest, GetManyOddBatchSizesMatchSerial)
{
    expectGetManyMatchesSerial(mgetConfig(), 1);
    expectGetManyMatchesSerial(mgetConfig(), 3);
    expectGetManyMatchesSerial(mgetConfig(), 64);
}

TEST(KvCacheTest, GetManyTinyTouchRingMatchesSerial)
{
    // touchCapacity 2 forces the deferred-touch ring to overflow
    // inside a single batch, exercising the NeedTouchDrain slow
    // path on the grouped walk.
    expectGetManyMatchesSerial(mgetConfig(2), 16);
}

TEST(KvCacheTest, GetManyLockedReadsMatchSerial)
{
    KvConfig c = mgetConfig();
    c.lockFreeReads = false;
    expectGetManyMatchesSerial(c, 16);
}

TEST(KvCacheTest, GetManyHandlesDuplicatesAndMisses)
{
    AdaptiveKvCache cache(mgetConfig());
    cache.put(1, "one");
    cache.put(5, "five");

    const KvKey keys[] = {1, 2, 5, 1, 1, 99};
    std::optional<std::string> out[6];
    EXPECT_EQ(cache.getMany(std::span<const KvKey>(keys), out), 4u);
    EXPECT_EQ(out[0], std::optional<std::string>("one"));
    EXPECT_FALSE(out[1].has_value());
    EXPECT_EQ(out[2], std::optional<std::string>("five"));
    EXPECT_EQ(out[3], std::optional<std::string>("one"));
    EXPECT_EQ(out[4], std::optional<std::string>("one"));
    EXPECT_FALSE(out[5].has_value());
}

TEST(KvCacheTest, GetManyVectorOverloadAndEmptyBatch)
{
    AdaptiveKvCache cache(mgetConfig());
    cache.put(3, "three");

    EXPECT_TRUE(
        cache.getMany(std::span<const KvKey>()).empty());

    const KvKey keys[] = {3, 4};
    const std::vector<std::optional<std::string>> got =
        cache.getMany(std::span<const KvKey>(keys));
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], std::optional<std::string>("three"));
    EXPECT_FALSE(got[1].has_value());
}

TEST(KvCacheTest, DescribeNamesTheConfiguration)
{
    AdaptiveKvCache adaptive(smallConfig(SelectorMode::Adaptive, 8));
    EXPECT_NE(adaptive.describe().find("adaptive"),
              std::string::npos);
    AdaptiveKvCache lru(smallConfig(SelectorMode::FixedLru, 8));
    EXPECT_NE(lru.describe().find("lru"), std::string::npos);
}

} // namespace
} // namespace adcache::kv
