/**
 * @file
 * TTL / lazy-expiry semantics of the kv cache: the facade-owned
 * logical clock, expiry stamping on put/fetch/overwrite, validated
 * misses on both probe paths, the expirations counter's place in the
 * conservation identity, and a randomized reference-model
 * cross-check against a map+expiry oracle. (TTL ops are NOT folded
 * into the adaptive lockstep suite on purpose: an expiry unlink
 * perturbs victim state the RefAdaptiveCache oracle does not model;
 * the map oracle here checks exactly the visibility contract
 * instead.)
 */

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>

#include "kv/adaptive_kv_cache.hh"
#include "util/rng.hh"

using namespace adcache;
using namespace adcache::kv;

namespace
{

KvConfig
smallConfig(bool lock_free)
{
    KvConfig c;
    c.capacity = 256;
    c.numShards = 2;
    c.numBuckets = 32;
    c.bucketWays = 4;
    c.lockFreeReads = lock_free;
    return c;
}

KvShardStats
totalStats(const AdaptiveKvCache &cache)
{
    KvShardStats total;
    for (unsigned s = 0; s < cache.numShards(); ++s)
        total.add(cache.shard(s).stats());
    return total;
}

class KvTtlTest : public ::testing::TestWithParam<bool>
{
};

TEST_P(KvTtlTest, EntryExpiresAfterItsTtl)
{
    AdaptiveKvCache cache(smallConfig(GetParam()));
    cache.put(1, "one", false, /*ttl=*/3);
    EXPECT_TRUE(cache.get(1).has_value());

    cache.clockAdvance(2); // now = 2 < expiry = 3: still alive
    EXPECT_TRUE(cache.get(1).has_value());
    EXPECT_TRUE(cache.contains(1));

    cache.clockAdvance(1); // now = 3 = expiry: lapsed
    EXPECT_FALSE(cache.get(1).has_value());
    EXPECT_FALSE(cache.contains(1));
}

TEST_P(KvTtlTest, ZeroTtlNeverExpires)
{
    AdaptiveKvCache cache(smallConfig(GetParam()));
    cache.put(1, "forever");
    cache.clockAdvance(1'000'000);
    EXPECT_TRUE(cache.get(1).has_value());
}

TEST_P(KvTtlTest, OverwriteRefreshesTheTtl)
{
    AdaptiveKvCache cache(smallConfig(GetParam()));
    cache.put(1, "v1", false, 2);
    cache.clockAdvance(1);
    cache.put(1, "v2", false, 2); // expiry moves to now+2 = 3
    cache.clockAdvance(1);        // now = 2 < 3
    ASSERT_TRUE(cache.get(1).has_value());
    EXPECT_EQ(*cache.get(1), "v2");
    cache.clockAdvance(1); // now = 3: lapsed
    EXPECT_FALSE(cache.get(1).has_value());
}

TEST_P(KvTtlTest, OverwriteCanClearTheTtl)
{
    AdaptiveKvCache cache(smallConfig(GetParam()));
    cache.put(1, "v1", false, 2);
    cache.put(1, "v2"); // ttl 0: never expires again
    cache.clockAdvance(100);
    EXPECT_TRUE(cache.get(1).has_value());
}

TEST_P(KvTtlTest, EraseOfExpiredEntryReportsAbsent)
{
    AdaptiveKvCache cache(smallConfig(GetParam()));
    cache.put(1, "v", false, 1);
    cache.clockAdvance(1);
    // The key is logically absent, so erase says false — but the
    // purge still happens and is accounted as an expiration.
    EXPECT_FALSE(cache.erase(1));
    EXPECT_EQ(totalStats(cache).expirations, 1u);
    EXPECT_EQ(cache.size(), 0u);
}

TEST_P(KvTtlTest, FetchReloadsAnExpiredEntry)
{
    AdaptiveKvCache cache(smallConfig(GetParam()));
    int loads = 0;
    auto loader = [&] {
        ++loads;
        return std::string("fresh");
    };
    EXPECT_EQ(cache.fetch(1, loader, 2), "fresh");
    EXPECT_EQ(cache.fetch(1, loader, 2), "fresh"); // hit, no load
    EXPECT_EQ(loads, 1);
    cache.clockAdvance(2);
    EXPECT_EQ(cache.fetch(1, loader, 2), "fresh"); // lapsed: reload
    EXPECT_EQ(loads, 2);
    EXPECT_TRUE(cache.get(1).has_value()); // re-admitted, fresh TTL
}

TEST_P(KvTtlTest, ExpirationsEnterTheConservationIdentity)
{
    AdaptiveKvCache cache(smallConfig(GetParam()));
    for (KvKey k = 0; k < 64; ++k)
        cache.put(k, "v", false, 1 + k % 3);
    cache.clockAdvance(2); // keys with ttl 1 or 2 lapse
    // Locked contact purges lazily; reference() on every key forces
    // the contact (and reinserts, which is fine for the identity).
    for (KvKey k = 0; k < 64; ++k)
        cache.reference(k, "v2");
    const KvShardStats st = totalStats(cache);
    EXPECT_GT(st.expirations, 0u);
    EXPECT_EQ(cache.size(), st.inserts - st.evictions - st.erases -
                                st.expirations);
}

TEST_P(KvTtlTest, ClockNeverMovesBackwards)
{
    AdaptiveKvCache cache(smallConfig(GetParam()));
    cache.clockAdvanceTo(10);
    EXPECT_EQ(cache.clockNow(), 10u);
    cache.clockAdvanceTo(5); // ignored: monotonic
    EXPECT_EQ(cache.clockNow(), 10u);
    cache.clockAdvance(3);
    EXPECT_EQ(cache.clockNow(), 13u);
}

/**
 * Reference-model cross-check: a deterministic random op stream
 * (put-with-ttl / put / get / erase / advance) runs against the
 * cache and a map+expiry oracle. The oracle only tracks keys the
 * cache has NOT evicted for capacity (evictions are policy business,
 * not TTL business), so the checked contract is one-sided and exact:
 *  - a get that HITS must match the oracle's live value — the cache
 *    may never serve an expired or stale value;
 *  - a get on a key the oracle holds EXPIRED must miss.
 */
TEST_P(KvTtlTest, RandomOpsAgreeWithMapOracle)
{
    KvConfig config = smallConfig(GetParam());
    // Big enough that the working set rarely capacity-evicts (the
    // checks stay one-sided regardless): a hit must match the live
    // oracle value, and an oracle-expired key must miss.
    config.capacity = 4096;
    config.numBuckets = 512;
    AdaptiveKvCache cache(config);

    struct RefEntry
    {
        std::string value;
        std::uint64_t expiry = 0; // 0 = never
    };
    std::unordered_map<KvKey, RefEntry> oracle;
    std::uint64_t now = 0;

    Rng rng(20260809);
    constexpr KvKey kKeys = 512;
    for (int i = 0; i < 20'000; ++i) {
        const KvKey key = rng.below(kKeys);
        const double r = rng.uniform();
        if (r < 0.35) { // put with ttl
            const std::uint64_t ttl = 1 + rng.below(5);
            const std::string value =
                "v" + std::to_string(key) + "@" + std::to_string(i);
            cache.put(key, value, false, ttl);
            oracle[key] = {value, now + ttl};
        } else if (r < 0.45) { // put forever
            const std::string value =
                "p" + std::to_string(key) + "@" + std::to_string(i);
            cache.put(key, value);
            oracle[key] = {value, 0};
        } else if (r < 0.55) { // erase
            cache.erase(key);
            oracle.erase(key);
        } else if (r < 0.65) { // advance
            cache.clockAdvance();
            ++now;
        } else { // get, cross-checked
            const auto got = cache.get(key);
            const auto ref = oracle.find(key);
            const bool ref_live =
                ref != oracle.end() && (ref->second.expiry == 0 ||
                                        ref->second.expiry > now);
            if (got.has_value()) {
                ASSERT_TRUE(ref_live)
                    << "op " << i << ": get(" << key
                    << ") returned \"" << *got
                    << "\" but the oracle says "
                    << (ref == oracle.end() ? "absent" : "expired");
                ASSERT_EQ(*got, ref->second.value) << "op " << i;
            } else if (ref != oracle.end() && !ref_live) {
                // Expired in the oracle: the cache must miss too —
                // it did. (A miss on a live oracle key would be a
                // capacity eviction; config rules those out, but
                // stay one-sided anyway.)
                SUCCEED();
            }
        }
    }
    // Quiescent sweep: every oracle-expired key must be invisible.
    for (KvKey k = 0; k < kKeys; ++k) {
        const auto ref = oracle.find(k);
        if (ref != oracle.end() && ref->second.expiry != 0 &&
            ref->second.expiry <= now)
            EXPECT_FALSE(cache.get(k).has_value())
                << "expired key " << k << " still visible";
    }
    const KvShardStats st = totalStats(cache);
    EXPECT_EQ(cache.size(), st.inserts - st.evictions - st.erases -
                                st.expirations);
}

INSTANTIATE_TEST_SUITE_P(LockedAndLockFree, KvTtlTest,
                         ::testing::Values(false, true),
                         [](const auto &info) {
                             return info.param ? "lockfree"
                                               : "locked";
                         });

} // namespace
