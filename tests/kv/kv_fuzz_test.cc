/**
 * @file
 * Seeded concurrency fuzzing of the lock-free kv read path
 * (oracle/kv_fuzzer.hh). Random get/put/fetch/erase/pin/unpin
 * schedules run across 2-4 threads; a failure ddmin-shrinks to a
 * minimal schedule whose literal is printed for committing to
 * tests/data/regressions/ as a <name>.sched file, which this suite
 * replays on every run (serially as the witness, then concurrently).
 *
 * Knobs: ADCACHE_FUZZ_ITERS scales the number of seeds,
 * ADCACHE_FUZZ_SEED rebases them (same knobs as the differential
 * trace fuzzer).
 */

#include "oracle/kv_fuzzer.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "oracle/trace_fuzzer.hh"

#ifndef ADCACHE_REGRESSION_DIR
#error "build must define ADCACHE_REGRESSION_DIR"
#endif

namespace adcache
{
namespace
{

namespace fs = std::filesystem;

/** Small, eviction-heavy config so short schedules reach every
 *  path: 2 shards, lock-free reads, a tiny touch ring. */
kv::KvConfig
fuzzConfig()
{
    kv::KvConfig c;
    c.capacity = 256;
    c.numShards = 2;
    c.numBuckets = 64;
    c.bucketWays = 4;
    c.leaderEvery = 4;
    c.shadowTagBits = 12;
    c.scope = kv::EvictionScope::Shard;
    c.selector = kv::SelectorMode::Adaptive;
    c.keyHash = kv::KeyHashKind::Mix;
    c.touchCapacity = 16;
    return c;
}

/** Shrink with a flake-tolerant predicate, then FAIL with the
 *  replayable literal and the serial witness verdict. */
void
reportFailure(const KvFuzzSchedule &failing, unsigned threads,
              const std::string &first_error)
{
    const auto still_fails = [&](const KvFuzzSchedule &cand) {
        // Interleaving-dependent failures are flaky by nature:
        // keep a candidate only if some rerun still fails.
        for (int rep = 0; rep < 8; ++rep) {
            if (!KvConcurrencyFuzzer::runOnce(cand, fuzzConfig(),
                                              threads)
                     .empty())
                return true;
        }
        return false;
    };
    KvFuzzSchedule shrunk = failing;
    if (still_fails(shrunk))
        shrunk = KvConcurrencyFuzzer::shrink(still_fails, shrunk);
    const std::string serial =
        KvConcurrencyFuzzer::runSerial(shrunk, fuzzConfig());
    ADD_FAILURE()
        << "concurrent schedule failed: " << first_error
        << "\nserial witness: "
        << (serial.empty() ? "passes (concurrency-only failure)"
                           : serial)
        << "\nshrunk to " << shrunk.size() << "/" << failing.size()
        << " ops; commit to tests/data/regressions/ as .sched:\n"
        << KvConcurrencyFuzzer::toLiteral(shrunk);
}

TEST(KvFuzzTest, RandomSchedulesRunCleanConcurrently)
{
    const std::size_t iters = fuzzIters(6);
    const std::uint64_t base = fuzzSeed(0x5eed);
    for (std::size_t i = 0; i < iters; ++i) {
        const std::uint64_t seed = base + i;
        const unsigned threads = 2 + unsigned(seed % 3);
        SCOPED_TRACE("seed " + std::to_string(seed) + ", " +
                     std::to_string(threads) + " threads");
        KvConcurrencyFuzzer fuzzer(seed, threads, 1024);
        const KvFuzzSchedule sched = fuzzer.generate(3000);
        const std::string err = KvConcurrencyFuzzer::runOnce(
            sched, fuzzConfig(), threads);
        if (!err.empty()) {
            reportFailure(sched, threads, err);
            return;
        }
    }
}

TEST(KvFuzzTest, SerialWitnessRunsClean)
{
    // The serial replay is the shrunken-failure witness format; it
    // must be clean on generated schedules or every shrink would
    // "reproduce" spuriously.
    const std::uint64_t base = fuzzSeed(0x5eed);
    for (std::size_t i = 0; i < 3; ++i) {
        KvConcurrencyFuzzer fuzzer(base + 100 + i, 3, 1024);
        const KvFuzzSchedule sched = fuzzer.generate(2000);
        EXPECT_EQ(KvConcurrencyFuzzer::runSerial(sched,
                                                 fuzzConfig()),
                  "")
            << "seed " << base + 100 + i;
    }
}

TEST(KvFuzzTest, GeneratorIsDeterministicPerSeed)
{
    KvConcurrencyFuzzer a(42, 3, 512), b(42, 3, 512);
    const KvFuzzSchedule sa = a.generate(500);
    const KvFuzzSchedule sb = b.generate(500);
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t i = 0; i < sa.size(); ++i) {
        EXPECT_EQ(sa[i].thread, sb[i].thread) << "op " << i;
        EXPECT_EQ(int(sa[i].kind), int(sb[i].kind)) << "op " << i;
        EXPECT_EQ(sa[i].key, sb[i].key) << "op " << i;
    }
    // Schedules cover more than one thread and op kind.
    bool multi_thread = false, multi_kind = false;
    for (const KvFuzzOp &op : sa) {
        multi_thread |= op.thread != sa[0].thread;
        multi_kind |= op.kind != sa[0].kind;
    }
    EXPECT_TRUE(multi_thread);
    EXPECT_TRUE(multi_kind);
}

TEST(KvFuzzTest, ShrinkIsolatesEssentialOps)
{
    // ddmin self-test with a deterministic predicate: only two ops
    // of a 64-op schedule matter; the shrink must isolate exactly
    // those two.
    KvConcurrencyFuzzer fuzzer(9, 2, 64);
    KvFuzzSchedule sched = fuzzer.generate(62);
    sched.insert(sched.begin() + 20,
                 {0, KvFuzzOpKind::Put, 7777});
    sched.insert(sched.begin() + 40,
                 {1, KvFuzzOpKind::Erase, 8888});

    const auto needs_both = [](const KvFuzzSchedule &cand) {
        bool put = false, erase = false;
        for (const KvFuzzOp &op : cand) {
            put |= op.kind == KvFuzzOpKind::Put && op.key == 7777;
            erase |=
                op.kind == KvFuzzOpKind::Erase && op.key == 8888;
        }
        return put && erase;
    };
    const KvFuzzSchedule shrunk =
        KvConcurrencyFuzzer::shrink(needs_both, sched);
    ASSERT_EQ(shrunk.size(), 2u);
    EXPECT_EQ(shrunk[0].key, 7777u);
    EXPECT_EQ(shrunk[1].key, 8888u);
}

TEST(KvFuzzTest, LiteralNamesEveryOp)
{
    const KvFuzzSchedule sched = {
        {0, KvFuzzOpKind::Get, 1},   {1, KvFuzzOpKind::Put, 2},
        {2, KvFuzzOpKind::Fetch, 3}, {0, KvFuzzOpKind::Erase, 4},
        {1, KvFuzzOpKind::Pin, 5},   {2, KvFuzzOpKind::Unpin, 6},
    };
    const std::string lit = KvConcurrencyFuzzer::toLiteral(sched);
    for (const char *kind :
         {"Get", "Put", "Fetch", "Erase", "Pin", "Unpin"})
        EXPECT_NE(lit.find(std::string("KvFuzzOpKind::") + kind),
                  std::string::npos)
            << kind;
    EXPECT_NE(lit.find("// 6 ops"), std::string::npos);
}

/**
 * Committed shrunken failures replay on every run: one
 * "<thread> <op> <key>" op per line, '#' comments. The serial
 * witness must stay clean AND the concurrent rerun must stay clean
 * (a regression flips one of them).
 */
KvFuzzSchedule
parseSchedule(std::istream &in, unsigned *threads_out)
{
    KvFuzzSchedule sched;
    unsigned max_thread = 0;
    std::string line;
    while (std::getline(in, line)) {
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream fields(line);
        unsigned thread;
        std::string op;
        kv::KvKey key;
        if (!(fields >> thread >> op >> key))
            continue;
        KvFuzzOpKind kind = KvFuzzOpKind::Get;
        if (op == "get")
            kind = KvFuzzOpKind::Get;
        else if (op == "put")
            kind = KvFuzzOpKind::Put;
        else if (op == "fetch")
            kind = KvFuzzOpKind::Fetch;
        else if (op == "erase")
            kind = KvFuzzOpKind::Erase;
        else if (op == "pin")
            kind = KvFuzzOpKind::Pin;
        else if (op == "unpin")
            kind = KvFuzzOpKind::Unpin;
        else
            ADD_FAILURE() << "unknown op \"" << op
                          << "\" (treated as get)";
        sched.push_back({std::uint8_t(thread), kind, key});
        max_thread = std::max(max_thread, thread);
    }
    *threads_out = max_thread + 1;
    return sched;
}

TEST(KvFuzzTest, CommittedSchedulesReplayClean)
{
    std::vector<fs::path> files;
    for (const auto &entry :
         fs::directory_iterator(ADCACHE_REGRESSION_DIR)) {
        if (entry.path().extension() == ".sched")
            files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    for (const fs::path &path : files) {
        SCOPED_TRACE(path.filename().string());
        std::ifstream in(path);
        ASSERT_TRUE(in.good());
        unsigned threads = 1;
        const KvFuzzSchedule sched = parseSchedule(in, &threads);
        ASSERT_FALSE(sched.empty());
        EXPECT_EQ(KvConcurrencyFuzzer::runSerial(sched,
                                                 fuzzConfig()),
                  "");
        for (int rep = 0; rep < 4; ++rep)
            EXPECT_EQ(KvConcurrencyFuzzer::runOnce(
                          sched, fuzzConfig(), threads),
                      "")
                << "rep " << rep;
    }
}

} // namespace
} // namespace adcache
