/**
 * @file
 * Differential verification of the kv cache against the reference
 * Algorithm 1 model: the single-shard Bucket-scope AdaptiveKvCache is
 * lockstep-diffed (hit/miss, victim identity, winner, fallbacks,
 * per-set counters, full residency) across the standard workload
 * motifs, with full and partial shadow tags.
 */

#include "oracle/kv_lockstep.hh"

#include <gtest/gtest.h>

#include "support/access_streams.hh"

namespace adcache
{
namespace
{

std::vector<Access>
makeStream(teststream::Pattern pattern, std::size_t n,
           std::uint64_t seed)
{
    teststream::StreamParams params =
        teststream::StreamParams::forCache(4, 16);
    Rng rng(seed);
    std::vector<Access> stream;
    stream.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        stream.push_back(
            {teststream::patternAddr(pattern, params, rng, i), false});
    return stream;
}

void
expectAgreement(const KvLockstepParams &params,
                teststream::Pattern pattern, std::uint64_t seed)
{
    DifferentialChecker checker(makeKvAdaptivePair(params));
    const auto mismatch =
        checker.run(makeStream(pattern, 20'000, seed));
    EXPECT_FALSE(mismatch.has_value())
        << checker.describePair() << ": " << mismatch->format();
}

TEST(KvLockstepTest, FullTagsAgreeOnEveryMotif)
{
    KvLockstepParams params;
    params.numBuckets = 16;
    params.bucketWays = 4;
    for (const auto pattern :
         {teststream::Pattern::Uniform, teststream::Pattern::Loop,
          teststream::Pattern::HotCold,
          teststream::Pattern::PhaseSwitch})
        expectAgreement(params, pattern, 7 + unsigned(pattern));
}

TEST(KvLockstepTest, PartialTagsAgreeDespiteAliasing)
{
    // 6-bit low-order folding aliases heavily at this footprint,
    // exercising false-positive partial hits and case-3 fallbacks.
    KvLockstepParams params;
    params.numBuckets = 16;
    params.bucketWays = 4;
    params.partialBits = 6;
    for (const auto pattern :
         {teststream::Pattern::Uniform, teststream::Pattern::HotCold,
          teststream::Pattern::PhaseSwitch})
        expectAgreement(params, pattern, 31 + unsigned(pattern));
}

TEST(KvLockstepTest, XorFoldedTagsAgree)
{
    KvLockstepParams params;
    params.numBuckets = 8;
    params.bucketWays = 4;
    params.partialBits = 6;
    params.xorFold = true;
    expectAgreement(params, teststream::Pattern::Uniform, 101);
    expectAgreement(params, teststream::Pattern::HotCold, 102);
}

TEST(KvLockstepTest, SmallDirectMappedShapeAgrees)
{
    // 1-way buckets stress the degenerate case: every miss evicts.
    KvLockstepParams params;
    params.numBuckets = 8;
    params.bucketWays = 1;
    params.sweepEvery = 64;
    expectAgreement(params, teststream::Pattern::Uniform, 5);
    expectAgreement(params, teststream::Pattern::Loop, 6);
}

TEST(KvLockstepTest, CmsLfuComponentAgrees)
{
    // CMS-LFU as a bucket-scope component: eviction order lives in
    // the shadow directories' shared sketch, so decay epochs and
    // fill-stamp tie-breaks must match the oracle bit-for-bit.
    KvLockstepParams params;
    params.numBuckets = 16;
    params.bucketWays = 4;
    params.components[0] = {PolicyType::LRU, false};
    params.components[1] = {PolicyType::CmsLfu, false};
    for (const auto pattern :
         {teststream::Pattern::Uniform, teststream::Pattern::HotCold,
          teststream::Pattern::PhaseSwitch})
        expectAgreement(params, pattern, 211 + unsigned(pattern));
}

TEST(KvLockstepTest, TinyLfuAdmissionAgrees)
{
    // Admission-on vs admission-off twins: the adapted dimension is
    // the filter itself, and the production cache must imitate the
    // winner's bypass verdicts exactly.
    KvLockstepParams params;
    params.numBuckets = 16;
    params.bucketWays = 4;
    params.components[0] = {PolicyType::LRU, true};
    params.components[1] = {PolicyType::LRU, false};
    for (const auto pattern :
         {teststream::Pattern::Uniform, teststream::Pattern::HotCold,
          teststream::Pattern::PhaseSwitch})
        expectAgreement(params, pattern, 223 + unsigned(pattern));
}

TEST(KvLockstepTest, SketchPolicyWithAdmissionAndPartialTagsAgrees)
{
    // Everything at once: CMS-LFU eviction, TinyLFU admission, and
    // folded shadow keys feeding both sketches.
    KvLockstepParams params;
    params.numBuckets = 8;
    params.bucketWays = 4;
    params.partialBits = 6;
    params.components[0] = {PolicyType::LRU, false};
    params.components[1] = {PolicyType::CmsLfu, true};
    expectAgreement(params, teststream::Pattern::HotCold, 307);
    expectAgreement(params, teststream::Pattern::PhaseSwitch, 308);
}

TEST(KvLockstepTest, TinySweepPeriodCatchesNothingExtra)
{
    // Sweeping every step is the strongest form of the check; it
    // must still find total agreement.
    KvLockstepParams params;
    params.numBuckets = 4;
    params.bucketWays = 2;
    params.sweepEvery = 1;
    DifferentialChecker checker(makeKvAdaptivePair(params));
    const auto mismatch = checker.run(
        makeStream(teststream::Pattern::HotCold, 2'000, 13));
    EXPECT_FALSE(mismatch.has_value())
        << checker.describePair() << ": " << mismatch->format();
}

} // namespace
} // namespace adcache
