/**
 * @file
 * Concurrency tests of the sharded kv cache. Shards are independent
 * lock domains, so a parallel run whose threads partition the
 * operation sequence by shard preserves each shard's operation order
 * — its stats must therefore equal a serial replay exactly. A chaos
 * test then hammers one cache from many threads with mixed operations
 * and checks the global accounting invariants (and, under
 * -DADCACHE_SANITIZE=thread, gives TSan a dense interleaving to
 * chew on).
 */

#include "kv/adaptive_kv_cache.hh"

#include <gtest/gtest.h>

#include <vector>

#include "sim/runner.hh"
#include "workloads/key_stream.hh"

namespace adcache::kv
{
namespace
{

KvConfig
concurrentConfig(unsigned shards)
{
    KvConfig c;
    c.capacity = 2048;
    c.numShards = shards;
    c.numBuckets = 256;
    c.bucketWays = 4;
    c.leaderEvery = 4;
    c.shadowTagBits = 12;
    c.scope = EvictionScope::Shard;
    c.selector = SelectorMode::Adaptive;
    c.keyHash = KeyHashKind::Mix;
    return c;
}

/** Compare every externally visible per-shard counter. */
void
expectShardStatsEqual(const AdaptiveKvCache &a,
                      const AdaptiveKvCache &b)
{
    ASSERT_EQ(a.numShards(), b.numShards());
    for (unsigned s = 0; s < a.numShards(); ++s) {
        const KvShardStats &x = a.shard(s).stats();
        const KvShardStats &y = b.shard(s).stats();
        EXPECT_EQ(x.references, y.references) << "shard " << s;
        EXPECT_EQ(x.hits, y.hits) << "shard " << s;
        EXPECT_EQ(x.misses, y.misses) << "shard " << s;
        EXPECT_EQ(x.evictions, y.evictions) << "shard " << s;
        EXPECT_EQ(x.fallbackEvictions, y.fallbackEvictions)
            << "shard " << s;
        for (unsigned k = 0; k < kvNumComponents; ++k)
            EXPECT_EQ(x.decisions[k], y.decisions[k])
                << "shard " << s << " component " << k;
        EXPECT_EQ(a.shard(s).size(), b.shard(s).size())
            << "shard " << s;
        EXPECT_EQ(a.shard(s).shadowMisses(kvComponentLru),
                  b.shard(s).shadowMisses(kvComponentLru))
            << "shard " << s;
        EXPECT_EQ(a.shard(s).shadowMisses(kvComponentLfu),
                  b.shard(s).shadowMisses(kvComponentLfu))
            << "shard " << s;
    }
}

TEST(KvConcurrencyTest, ShardPartitionedRunMatchesSerialReplay)
{
    const unsigned shards = 4;
    const std::size_t ops = 60'000;

    KeyStreamSpec spec;
    spec.pattern = KeyPattern::PhaseFlip;
    spec.keySpace = 1 << 14;
    spec.phasePeriod = 7'000;
    spec.scanSpan = 4'096;
    spec.seed = 99;
    KeyStream stream(spec);
    std::vector<KvKey> keys;
    keys.reserve(ops);
    for (std::size_t i = 0; i < ops; ++i)
        keys.push_back(stream.next());

    // Serial reference run.
    AdaptiveKvCache serial(concurrentConfig(shards));
    for (const KvKey key : keys)
        serial.put(key, "v");

    // Parallel run: thread t applies, in order, exactly the ops that
    // route to shard t — per-shard order equals the serial replay.
    AdaptiveKvCache parallel(concurrentConfig(shards));
    std::vector<std::vector<KvKey>> byShard(shards);
    for (const KvKey key : keys)
        byShard[parallel.shardOf(key)].push_back(key);
    runIndexed(shards, shards, [&](std::size_t t) {
        for (const KvKey key : byShard[t])
            parallel.put(key, "v");
    });

    expectShardStatsEqual(serial, parallel);
    EXPECT_EQ(serial.size(), parallel.size());
}

TEST(KvConcurrencyTest, ChaosMixedOpsKeepInvariants)
{
    const unsigned threads = 8;
    const std::size_t opsPerThread = 20'000;
    AdaptiveKvCache cache(concurrentConfig(8));

    // All threads hammer overlapping keys: gets, puts, fetches,
    // erases and pin cycling on the same cache.
    runIndexed(threads, threads, [&](std::size_t t) {
        KeyStreamSpec spec;
        spec.pattern = KeyPattern::Zipf;
        spec.keySpace = 1 << 12;
        spec.skew = 1.0;
        spec.seed = 1000 + t;
        KeyStream stream(spec);
        for (std::size_t i = 0; i < opsPerThread; ++i) {
            const KvKey key = stream.next();
            switch (i % 8) {
              case 0:
              case 1:
              case 2:
                cache.get(key);
                break;
              case 3:
              case 4:
                cache.put(key, "v");
                break;
              case 5:
                cache.fetch(key, [] { return std::string("f"); });
                break;
              case 6:
                if (i % 16 == 6)
                    cache.pin(key);
                else
                    cache.unpin(key);
                break;
              default:
                cache.erase(key);
                break;
            }
        }
    });

    EXPECT_LE(cache.size(), cache.capacity());

    // Per-shard accounting must balance exactly.
    std::uint64_t inserts = 0, evictions = 0, erases = 0,
                  rejected = 0;
    for (unsigned s = 0; s < cache.numShards(); ++s) {
        const KvShardStats &st = cache.shard(s).stats();
        EXPECT_EQ(st.references, st.hits + st.misses)
            << "shard " << s;
        EXPECT_EQ(st.misses, st.inserts + st.rejected)
            << "shard " << s;
        EXPECT_EQ(cache.shard(s).size(),
                  st.inserts - st.evictions - st.erases)
            << "shard " << s;
        inserts += st.inserts;
        evictions += st.evictions;
        erases += st.erases;
        rejected += st.rejected;
    }
    EXPECT_EQ(cache.size(), inserts - evictions - erases);
    EXPECT_GT(inserts, 0u);

    // The cache still works after the storm (unpin survivors first so
    // the insertion cannot hit an all-pinned shard).
    for (unsigned s = 0; s < cache.numShards(); ++s)
        for (const KvKey key : cache.shard(s).residentKeys())
            cache.unpin(key);
    cache.put(0xdead, "alive");
    EXPECT_EQ(*cache.get(0xdead), "alive");
    (void)rejected;
}

TEST(KvConcurrencyTest, ConcurrentReadersSeePinnedEntry)
{
    AdaptiveKvCache cache(concurrentConfig(4));
    cache.put(42, "anchor", /*pinned=*/true);
    runIndexed(8, 8, [&](std::size_t t) {
        KeyStreamSpec spec;
        spec.pattern = KeyPattern::Uniform;
        spec.keySpace = 1 << 13;
        spec.seed = t + 1;
        KeyStream stream(spec);
        for (int i = 0; i < 10'000; ++i) {
            cache.put(stream.next(), "v");
            if (i % 64 == 0) {
                const auto v = cache.get(42);
                ASSERT_TRUE(v.has_value());
                EXPECT_EQ(*v, "anchor");
            }
        }
    });
    EXPECT_TRUE(cache.contains(42));
}

} // namespace
} // namespace adcache::kv
