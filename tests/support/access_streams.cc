#include "support/access_streams.hh"

namespace adcache::teststream
{

StreamParams
StreamParams::forCache(unsigned assoc, unsigned sets,
                       unsigned line_size)
{
    const std::uint64_t capacity = std::uint64_t(assoc) * sets;
    StreamParams p;
    p.blocks = 8 * capacity;
    p.loopDepth = std::uint64_t(assoc + 2) * sets;
    p.hotBlocks = capacity / 2 + 1;
    p.coldBase = p.blocks;
    p.coldSpan = 4 * p.blocks;
    p.phasePeriod = 10000;
    p.lineSize = line_size;
    return p;
}

Addr
uniformAddr(Rng &rng, std::uint64_t blocks, unsigned line_size)
{
    return rng.below(blocks) * line_size;
}

Addr
loopAddr(std::uint64_t i, std::uint64_t depth, unsigned line_size)
{
    return (i % depth) * line_size;
}

Addr
hotColdAddr(Rng &rng, std::uint64_t i, std::uint64_t hot,
            std::uint64_t cold_base, std::uint64_t cold_span,
            unsigned line_size)
{
    if (rng.chance(0.5))
        return rng.below(hot) * line_size;
    return (cold_base + i % cold_span) * line_size;
}

Addr
patternAddr(Pattern pattern, const StreamParams &params, Rng &rng,
            std::uint64_t i)
{
    switch (pattern) {
      case Pattern::Loop:
        return loopAddr(i, params.loopDepth, params.lineSize);
      case Pattern::HotCold:
        return hotColdAddr(rng, i, params.hotBlocks, params.coldBase,
                           params.coldSpan, params.lineSize);
      case Pattern::PhaseSwitch:
        if ((i / params.phasePeriod) % 2 == 0)
            return uniformAddr(rng, params.blocks, params.lineSize);
        return loopAddr(i, params.loopDepth, params.lineSize);
      case Pattern::Uniform:
      default:
        return uniformAddr(rng, params.blocks, params.lineSize);
    }
}

} // namespace adcache::teststream
