/**
 * @file
 * Shared synthetic access-stream generators for tests.
 *
 * Before this library every suite hand-rolled its own hot/cold,
 * loop, and phase-switch address formulas; the motifs are collected
 * here once so property tests, differential tests, and behavioural
 * tests drive caches with the same, named patterns.
 *
 * All generators are pure functions of (Rng, index, params) and emit
 * block-aligned addresses.
 */

#ifndef ADCACHE_TESTS_SUPPORT_ACCESS_STREAMS_HH
#define ADCACHE_TESTS_SUPPORT_ACCESS_STREAMS_HH

#include <cstdint>

#include "util/rng.hh"
#include "util/types.hh"

namespace adcache::teststream
{

/** The classic workload motifs used across the test suite. */
enum class Pattern
{
    Uniform,      //!< uniform random over a working set
    Loop,         //!< cyclic loop (MRU-friendly when deeper than assoc)
    HotCold,      //!< 50/50 hot working set vs streaming cold blocks
    PhaseSwitch,  //!< alternating Uniform and Loop phases
};

/** Knobs for the pattern generators. */
struct StreamParams
{
    std::uint64_t blocks = 1024;      //!< Uniform working set size
    std::uint64_t loopDepth = 16;     //!< Loop cycle length
    std::uint64_t hotBlocks = 512;    //!< HotCold hot-set size
    std::uint64_t coldBase = 512;     //!< HotCold stream start block
    std::uint64_t coldSpan = 8192;    //!< HotCold stream wrap length
    std::uint64_t phasePeriod = 10000; //!< PhaseSwitch half-period
    unsigned lineSize = 64;

    /**
     * The parameterisation the adaptive-bound property tests use for
     * an assoc x sets cache: a working set of 8x capacity, loops just
     * deeper than the associativity, and a hot set of half capacity.
     */
    static StreamParams forCache(unsigned assoc, unsigned sets,
                                 unsigned line_size = 64);
};

/** Next address of @p pattern at stream position @p i. */
Addr patternAddr(Pattern pattern, const StreamParams &params,
                 Rng &rng, std::uint64_t i);

/** Uniform random block in [0, blocks). */
Addr uniformAddr(Rng &rng, std::uint64_t blocks,
                 unsigned line_size = 64);

/** Position @p i of a cyclic loop over @p depth blocks. */
Addr loopAddr(std::uint64_t i, std::uint64_t depth,
              unsigned line_size = 64);

/**
 * 50/50 mix of a hot set [0, hot) and a streaming window
 * [cold_base, cold_base + cold_span) advanced by @p i.
 */
Addr hotColdAddr(Rng &rng, std::uint64_t i, std::uint64_t hot,
                 std::uint64_t cold_base, std::uint64_t cold_span,
                 unsigned line_size = 64);

} // namespace adcache::teststream

#endif // ADCACHE_TESTS_SUPPORT_ACCESS_STREAMS_HH
