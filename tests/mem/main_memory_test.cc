#include "mem/main_memory.hh"

#include <gtest/gtest.h>

namespace adcache
{
namespace
{

MemoryConfig
defaultConfig()
{
    MemoryConfig c;
    c.accessLatency = 120;
    c.bus = {8, 8};
    return c;
}

TEST(MainMemory, ReadLatencyBreakdown)
{
    MainMemory mem(defaultConfig());
    // Idle system: 8 (address beat) + 120 (DRAM) + 64 (line transfer).
    EXPECT_EQ(mem.readLine(0, 64), 8u + 120 + 64);
}

TEST(MainMemory, ReadAtLaterTimeShifts)
{
    MainMemory mem(defaultConfig());
    EXPECT_EQ(mem.readLine(1000, 64), 1000u + 8 + 120 + 64);
}

TEST(MainMemory, BackToBackReadsQueueOnBus)
{
    MainMemory mem(defaultConfig());
    const Cycle first = mem.readLine(0, 64);
    const Cycle second = mem.readLine(0, 64);
    EXPECT_GT(second, first) << "bus contention must serialise data";
}

TEST(MainMemory, OverlappingReadsExposeMlp)
{
    // Two simultaneous misses: the second finishes soon after the
    // first (DRAM latency overlapped), not a full latency later.
    MainMemory mem(defaultConfig());
    const Cycle first = mem.readLine(0, 64);
    const Cycle second = mem.readLine(0, 64);
    EXPECT_LT(second - first, 120u)
        << "latencies should overlap (memory-level parallelism)";
}

TEST(MainMemory, WritebackTrafficDelaysReads)
{
    MainMemory a(defaultConfig()), b(defaultConfig());
    // Enough writeback traffic to outlast the DRAM latency window
    // must push the demand fill's data phase out.
    for (int i = 0; i < 3; ++i)
        b.writeLine(0, 64);
    const Cycle clean = a.readLine(0, 64);
    const Cycle contended = b.readLine(0, 64);
    EXPECT_GT(contended, clean);
    // A single writeback hides under the DRAM latency.
    MainMemory c(defaultConfig());
    c.writeLine(0, 64);
    EXPECT_EQ(c.readLine(0, 64), clean);
}

TEST(MainMemory, StatsCountReadsWrites)
{
    MainMemory mem(defaultConfig());
    mem.readLine(0, 64);
    mem.readLine(100, 64);
    mem.writeLine(200, 64);
    const auto s = mem.stats();
    EXPECT_EQ(s.reads, 2u);
    EXPECT_EQ(s.writes, 1u);
    EXPECT_GT(s.busBusyCycles, 0u);
}

TEST(MainMemory, LargerLinesTakeLonger)
{
    MainMemory mem(defaultConfig());
    MainMemory mem2(defaultConfig());
    EXPECT_GT(mem2.readLine(0, 128), mem.readLine(0, 64));
}

} // namespace
} // namespace adcache
