#include "mem/bus.hh"

#include <gtest/gtest.h>

namespace adcache
{
namespace
{

TEST(Bus, TransferCycles)
{
    SplitTransactionBus bus({8, 8});
    // 64 bytes over an 8B bus at 8 CPU cycles per beat = 64 cycles.
    EXPECT_EQ(bus.transferCycles(64), 64u);
    EXPECT_EQ(bus.transferCycles(8), 8u);
    // Partial beats round up.
    EXPECT_EQ(bus.transferCycles(9), 16u);
    EXPECT_EQ(bus.transferCycles(1), 8u);
}

TEST(Bus, GrantsImmediatelyWhenIdle)
{
    SplitTransactionBus bus({8, 8});
    EXPECT_EQ(bus.acquire(100, 64), 100u);
    EXPECT_EQ(bus.freeAt(), 164u);
}

TEST(Bus, QueuesWhenBusy)
{
    SplitTransactionBus bus({8, 8});
    bus.acquire(0, 64);  // busy until 64
    EXPECT_EQ(bus.acquire(10, 64), 64u) << "second request waits";
    EXPECT_EQ(bus.freeAt(), 128u);
    EXPECT_EQ(bus.queueCycles(), 54u);
}

TEST(Bus, NoQueueDelayAfterIdleGap)
{
    SplitTransactionBus bus({8, 8});
    bus.acquire(0, 8);
    EXPECT_EQ(bus.acquire(1000, 8), 1000u);
    EXPECT_EQ(bus.queueCycles(), 0u);
}

TEST(Bus, TracksBusyCyclesAndTransactions)
{
    SplitTransactionBus bus({8, 8});
    bus.acquire(0, 64);
    bus.acquire(0, 32);
    EXPECT_EQ(bus.transactions(), 2u);
    EXPECT_EQ(bus.busyCycles(), 64u + 32u);
}

TEST(Bus, WiderBusIsFaster)
{
    SplitTransactionBus narrow({8, 8});
    SplitTransactionBus wide({16, 8});
    EXPECT_GT(narrow.transferCycles(64), wide.transferCycles(64));
}

} // namespace
} // namespace adcache
