/**
 * @file
 * Property tests of the theoretical guarantee (Sec. 2.5 and the
 * Appendix): with exact per-set miss counters, the adaptive policy
 * suffers at most 2x the misses of the better component policy, up
 * to an additive start-up term (the initial fills and the first
 * adaptation on each set).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/adaptive_cache.hh"

namespace adcache
{
namespace
{

struct BoundCase
{
    const char *name;
    PolicyType a;
    PolicyType b;
    unsigned assoc;
    unsigned sets;
    int pattern;  // 0 random, 1 loop, 2 hot/cold, 3 phase-switch
};

class AdaptiveBound : public ::testing::TestWithParam<BoundCase>
{
  protected:
    /** Generate the next address of the parameterised stream. */
    Addr
    next(Rng &rng, const BoundCase &c, std::uint64_t i)
    {
        const std::uint64_t blocks = 8ull * c.assoc * c.sets;
        switch (c.pattern) {
          case 1:  // cyclic loop slightly deeper than the cache
            return (i % (std::uint64_t(c.assoc + 2) * c.sets)) * 64;
          case 2:  // hot/cold
            if (rng.chance(0.5))
                return rng.below(c.assoc * c.sets / 2 + 1) * 64;
            return (blocks + (i % (4 * blocks))) * 64;
          case 3:  // phase switch every 10k references
            if ((i / 10000) % 2 == 0)
                return rng.below(blocks) * 64;
            return (i % (std::uint64_t(c.assoc + 3) * c.sets)) * 64;
          default:
            return rng.below(blocks) * 64;
        }
    }
};

TEST_P(AdaptiveBound, TwoTimesBetterComponentPlusStartup)
{
    const BoundCase c = GetParam();
    AdaptiveConfig conf = AdaptiveConfig::dual(
        c.a, c.b, std::uint64_t(64) * c.assoc * c.sets, c.assoc, 64);
    conf.exactCounters = true;
    AdaptiveCache cache(conf);

    Rng rng(0xC0FFEE);
    const std::uint64_t refs = 200'000;
    for (std::uint64_t i = 0; i < refs; ++i)
        cache.access(next(rng, c, i), false);

    const std::uint64_t best =
        std::min(cache.shadowMisses(0), cache.shadowMisses(1));
    // Start-up slack: the compulsory fills plus one adaptation round
    // per set (a small constant per set in the Appendix's proof).
    const std::uint64_t slack = 4ull * c.assoc * c.sets;
    EXPECT_LE(cache.stats().misses, 2 * best + slack)
        << "adaptive=" << cache.stats().misses << " bestComponent="
        << best;
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, AdaptiveBound,
    ::testing::Values(
        BoundCase{"lru_lfu_random", PolicyType::LRU, PolicyType::LFU,
                  4, 16, 0},
        BoundCase{"lru_lfu_loop", PolicyType::LRU, PolicyType::LFU, 4,
                  16, 1},
        BoundCase{"lru_lfu_hotcold", PolicyType::LRU, PolicyType::LFU,
                  4, 16, 2},
        BoundCase{"lru_lfu_phases", PolicyType::LRU, PolicyType::LFU,
                  4, 16, 3},
        BoundCase{"lru_mru_loop", PolicyType::LRU, PolicyType::MRU, 4,
                  16, 1},
        BoundCase{"lru_mru_phases", PolicyType::LRU, PolicyType::MRU,
                  8, 8, 3},
        BoundCase{"fifo_mru_loop", PolicyType::FIFO, PolicyType::MRU,
                  4, 16, 1},
        BoundCase{"fifo_lfu_random", PolicyType::FIFO, PolicyType::LFU,
                  8, 8, 0},
        BoundCase{"lru_fifo_hotcold", PolicyType::LRU, PolicyType::FIFO,
                  2, 32, 2},
        BoundCase{"lfu_mru_loop", PolicyType::LFU, PolicyType::MRU, 4,
                  4, 1}),
    [](const auto &info) { return info.param.name; });

TEST(AdaptiveBoundSingleSet, AdversarialPingPong)
{
    // Alternate between an LRU-optimal and an MRU-optimal pattern on
    // one set, trying to fool the adaptivity as hard as possible; the
    // 2x + startup bound must still hold with exact counters.
    AdaptiveConfig conf = AdaptiveConfig::dual(
        PolicyType::LRU, PolicyType::MRU, 64 * 4, 4, 64);
    conf.exactCounters = true;
    AdaptiveCache cache(conf);
    Rng rng(99);
    for (int round = 0; round < 400; ++round) {
        if (round % 2 == 0) {
            for (int i = 0; i < 40; ++i)
                cache.access(rng.below(4) * 64, false);
        } else {
            for (int i = 0; i < 40; ++i)
                cache.access(Addr(i % 6) * 64, false);
        }
    }
    const std::uint64_t best =
        std::min(cache.shadowMisses(0), cache.shadowMisses(1));
    EXPECT_LE(cache.stats().misses, 2 * best + 16);
}

TEST(AdaptiveBoundWindow, WindowHistoryStaysNearComponents)
{
    // The m-bit window (the hardware design) loses the formal 2x
    // guarantee but must stay within a loose envelope of the best
    // component on stationary streams.
    AdaptiveConfig conf = AdaptiveConfig::dual(
        PolicyType::LRU, PolicyType::LFU, 16 * 1024, 8, 64);
    AdaptiveCache cache(conf);
    Rng rng(7);
    for (int i = 0; i < 300'000; ++i) {
        const Addr a = rng.chance(0.5)
                           ? rng.below(128) * 64
                           : (128 + (std::uint64_t(i) % 2048)) * 64;
        cache.access(a, false);
    }
    const std::uint64_t best =
        std::min(cache.shadowMisses(0), cache.shadowMisses(1));
    EXPECT_LE(cache.stats().misses, 2 * best + 4096);
}

} // namespace
} // namespace adcache
