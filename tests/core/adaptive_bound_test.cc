/**
 * @file
 * Property tests of the theoretical guarantee (Sec. 2.5 and the
 * Appendix): with exact per-set miss counters, the adaptive policy
 * suffers at most 2x the misses of the better component policy, up
 * to an additive start-up term (the initial fills and the first
 * adaptation on each set).
 *
 * The bound is checked for every pair of reference-modelled policies
 * {LRU, LFU, FIFO, MRU} and for three- and four-policy configs. The
 * "best component" miss counts come from the oracle's independent
 * RefCache models, and the production shadow arrays are
 * cross-checked against them reference-for-reference — so a bug in
 * the production shadows cannot quietly loosen the bound.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/adaptive_cache.hh"
#include "oracle/ref_cache.hh"
#include "support/access_streams.hh"

namespace adcache
{
namespace
{

using teststream::Pattern;
using teststream::StreamParams;

struct BoundCase
{
    const char *name;
    std::vector<PolicyType> policies;
    unsigned assoc;
    unsigned sets;
    Pattern pattern;
};

class AdaptiveBound : public ::testing::TestWithParam<BoundCase>
{
};

TEST_P(AdaptiveBound, TwoTimesBetterComponentPlusStartup)
{
    const BoundCase c = GetParam();
    AdaptiveConfig conf;
    conf.sizeBytes = std::uint64_t(64) * c.assoc * c.sets;
    conf.assoc = c.assoc;
    conf.lineSize = 64;
    conf.policies = c.policies;
    conf.exactCounters = true;
    AdaptiveCache cache(conf);

    // Independent oracle models of each component cache.
    const RefGeometry geom{64, c.sets, c.assoc};
    std::vector<std::unique_ptr<RefCache>> components;
    for (PolicyType p : c.policies)
        components.push_back(std::make_unique<RefCache>(geom, p));

    const StreamParams params = StreamParams::forCache(c.assoc, c.sets);
    Rng rng(0xC0FFEE);
    const std::uint64_t refs = 150'000;
    for (std::uint64_t i = 0; i < refs; ++i) {
        const Addr a = patternAddr(c.pattern, params, rng, i);
        cache.access(a, false);
        for (auto &ref : components)
            ref->access(a, false);
    }

    // The production shadow arrays must agree with the naive models.
    std::uint64_t best = ~0ull;
    for (unsigned k = 0; k < components.size(); ++k) {
        ASSERT_EQ(cache.shadowMisses(k), components[k]->misses())
            << "production shadow " << k << " ("
            << policyName(c.policies[k])
            << ") diverged from its oracle";
        best = std::min(best, components[k]->misses());
    }

    // Start-up slack: the compulsory fills plus one adaptation round
    // per set (a small constant per set in the Appendix's proof).
    const std::uint64_t slack = 4ull * c.assoc * c.sets;
    EXPECT_LE(cache.stats().misses, 2 * best + slack)
        << "adaptive=" << cache.stats().misses << " bestComponent="
        << best;
}

constexpr PolicyType kLru = PolicyType::LRU;
constexpr PolicyType kLfu = PolicyType::LFU;
constexpr PolicyType kFifo = PolicyType::FIFO;
constexpr PolicyType kMru = PolicyType::MRU;

INSTANTIATE_TEST_SUITE_P(
    AllPairs, AdaptiveBound,
    ::testing::Values(
        // Every pair of modelled policies, each on the pattern that
        // stresses its disagreement hardest.
        BoundCase{"lru_lfu_loop", {kLru, kLfu}, 4, 16, Pattern::Loop},
        BoundCase{"lru_lfu_hotcold", {kLru, kLfu}, 4, 16,
                  Pattern::HotCold},
        BoundCase{"lru_fifo_hotcold", {kLru, kFifo}, 2, 32,
                  Pattern::HotCold},
        BoundCase{"lru_fifo_loop", {kLru, kFifo}, 4, 16,
                  Pattern::Loop},
        BoundCase{"lru_mru_loop", {kLru, kMru}, 4, 16, Pattern::Loop},
        BoundCase{"lru_mru_phases", {kLru, kMru}, 8, 8,
                  Pattern::PhaseSwitch},
        BoundCase{"lfu_fifo_random", {kLfu, kFifo}, 8, 8,
                  Pattern::Uniform},
        BoundCase{"lfu_fifo_loop", {kLfu, kFifo}, 4, 16,
                  Pattern::Loop},
        BoundCase{"lfu_mru_loop", {kLfu, kMru}, 4, 4, Pattern::Loop},
        BoundCase{"lfu_mru_hotcold", {kLfu, kMru}, 4, 16,
                  Pattern::HotCold},
        BoundCase{"fifo_mru_loop", {kFifo, kMru}, 4, 16,
                  Pattern::Loop},
        BoundCase{"fifo_mru_phases", {kFifo, kMru}, 4, 16,
                  Pattern::PhaseSwitch},
        // Remaining single-pattern coverage of the headline pair.
        BoundCase{"lru_lfu_random", {kLru, kLfu}, 4, 16,
                  Pattern::Uniform},
        BoundCase{"lru_lfu_phases", {kLru, kLfu}, 4, 16,
                  Pattern::PhaseSwitch}),
    [](const auto &info) { return info.param.name; });

INSTANTIATE_TEST_SUITE_P(
    MultiPolicy, AdaptiveBound,
    ::testing::Values(
        // The bound argument (Appendix) is per *best component*, so
        // it must also hold with three and four components.
        BoundCase{"lru_lfu_fifo_loop", {kLru, kLfu, kFifo}, 4, 16,
                  Pattern::Loop},
        BoundCase{"lru_lfu_mru_hotcold", {kLru, kLfu, kMru}, 4, 16,
                  Pattern::HotCold},
        BoundCase{"lru_fifo_mru_phases", {kLru, kFifo, kMru}, 8, 8,
                  Pattern::PhaseSwitch},
        BoundCase{"all_four_loop", {kLru, kLfu, kFifo, kMru}, 4, 16,
                  Pattern::Loop},
        BoundCase{"all_four_random", {kLru, kLfu, kFifo, kMru}, 4, 16,
                  Pattern::Uniform}),
    [](const auto &info) { return info.param.name; });

TEST(AdaptiveBoundSingleSet, AdversarialPingPong)
{
    // Alternate between an LRU-optimal and an MRU-optimal pattern on
    // one set, trying to fool the adaptivity as hard as possible; the
    // 2x + startup bound must still hold with exact counters.
    AdaptiveConfig conf = AdaptiveConfig::dual(
        PolicyType::LRU, PolicyType::MRU, 64 * 4, 4, 64);
    conf.exactCounters = true;
    AdaptiveCache cache(conf);
    Rng rng(99);
    for (int round = 0; round < 400; ++round) {
        if (round % 2 == 0) {
            for (int i = 0; i < 40; ++i)
                cache.access(teststream::uniformAddr(rng, 4), false);
        } else {
            for (int i = 0; i < 40; ++i)
                cache.access(teststream::loopAddr(i, 6), false);
        }
    }
    const std::uint64_t best =
        std::min(cache.shadowMisses(0), cache.shadowMisses(1));
    EXPECT_LE(cache.stats().misses, 2 * best + 16);
}

TEST(AdaptiveBoundWindow, WindowHistoryStaysNearComponents)
{
    // The m-bit window (the hardware design) loses the formal 2x
    // guarantee but must stay within a loose envelope of the best
    // component on stationary streams.
    AdaptiveConfig conf = AdaptiveConfig::dual(
        PolicyType::LRU, PolicyType::LFU, 16 * 1024, 8, 64);
    AdaptiveCache cache(conf);
    Rng rng(7);
    for (std::uint64_t i = 0; i < 300'000; ++i)
        cache.access(
            teststream::hotColdAddr(rng, i, 128, 128, 2048), false);
    const std::uint64_t best =
        std::min(cache.shadowMisses(0), cache.shadowMisses(1));
    EXPECT_LE(cache.stats().misses, 2 * best + 4096);
}

} // namespace
} // namespace adcache
