#include "core/sbar_cache.hh"

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "core/adaptive_cache.hh"
#include "support/access_streams.hh"

namespace adcache
{
namespace
{

SbarConfig
smallConfig(unsigned leaders = 8)
{
    SbarConfig c;
    c.sizeBytes = 64 * 1024;  // 128 sets x 8 ways
    c.assoc = 8;
    c.lineSize = 64;
    c.numLeaders = leaders;
    return c;
}

TEST(SbarCache, LeaderSpacingIsEven)
{
    SbarCache cache(smallConfig(8));
    unsigned leaders = 0;
    for (unsigned s = 0; s < cache.geometry().numSets; ++s)
        leaders += cache.isLeader(s) ? 1 : 0;
    EXPECT_EQ(leaders, 8u);
    EXPECT_TRUE(cache.isLeader(0));
    EXPECT_TRUE(cache.isLeader(16));
    EXPECT_FALSE(cache.isLeader(1));
}

TEST(SbarCache, BasicHitMiss)
{
    SbarCache cache(smallConfig());
    EXPECT_FALSE(cache.access(0x4000, false).hit);
    EXPECT_TRUE(cache.access(0x4000, false).hit);
    EXPECT_EQ(cache.stats().accesses, 2u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(SbarCache, WritebackOnDirtyEviction)
{
    SbarConfig c = smallConfig();
    c.sizeBytes = 1024;  // 2 sets x 8 ways
    c.numLeaders = 1;
    SbarCache cache(c);
    cache.access(0x0, true);
    bool saw = false;
    for (int i = 1; i <= 8; ++i)
        saw |= cache.access(Addr(i) * 2 * 64, false).writeback;
    EXPECT_TRUE(saw);
    EXPECT_GE(cache.stats().writebacks, 1u);
}

TEST(SbarCache, GlobalSelectorFollowsLeaderEvidence)
{
    // Drive an LFU-favourable pattern (hot blocks + flushing scans):
    // the selection counter should end up preferring LFU (choice 1).
    SbarCache cache(smallConfig(16));
    const unsigned sets = cache.geometry().numSets;
    Rng rng(1);
    for (int cyc = 0; cyc < 200; ++cyc) {
        // Touch 6 hot blocks per set twice (frequency), then scan 8
        // cold lines per set (recency flood).
        for (int rep = 0; rep < 2; ++rep)
            for (unsigned b = 0; b < 6; ++b)
                for (unsigned s = 0; s < sets; s += 4)
                    cache.access((Addr(b) * sets + s) * 64, false);
        for (unsigned b = 0; b < 8; ++b)
            for (unsigned s = 0; s < sets; s += 4)
                cache.access(
                    ((100 + Addr(cyc % 4) * 8 + b) * sets + s) * 64,
                    false);
    }
    EXPECT_EQ(cache.globalChoice(), 1u) << "should prefer LFU";
}

TEST(SbarCache, CompetitiveWithFullAdaptiveOnStationaryStream)
{
    // Sec. 4.7: the SBAR-like cache performs close to the regular
    // adaptive cache on stationary behaviour.
    SbarConfig sc = smallConfig(16);
    SbarCache sbar(sc);
    AdaptiveConfig ac = AdaptiveConfig::dual(
        PolicyType::LRU, PolicyType::LFU, sc.sizeBytes, sc.assoc, 64);
    AdaptiveCache adaptive(ac);
    CacheConfig lc;
    lc.sizeBytes = sc.sizeBytes;
    lc.assoc = sc.assoc;
    lc.policy = PolicyType::LRU;
    Cache lru(lc);

    Rng rng(5);
    for (std::uint64_t i = 0; i < 400'000; ++i) {
        const Addr a =
            teststream::hotColdAddr(rng, i, 1024, 1024, 16384);
        sbar.access(a, false);
        adaptive.access(a, false);
        lru.access(a, false);
    }
    // Both adaptive organisations must beat plain LRU here, and SBAR
    // must be within 15 % of the full mechanism.
    EXPECT_LT(sbar.stats().misses, lru.stats().misses);
    EXPECT_LT(double(sbar.stats().misses),
              1.15 * double(adaptive.stats().misses));
}

TEST(SbarCache, SelectionFlipsOnPhaseChange)
{
    SbarCache cache(smallConfig(16));
    const unsigned sets = cache.geometry().numSets;
    Rng rng(9);
    // Phase 1: LFU-friendly (as above).
    for (int cyc = 0; cyc < 100; ++cyc) {
        for (int rep = 0; rep < 2; ++rep)
            for (unsigned b = 0; b < 6; ++b)
                cache.access((Addr(b) * sets) * 64, false);
        for (unsigned b = 0; b < 10; ++b)
            cache.access(((50 + Addr(cyc) * 10 + b) * sets) * 64,
                         false);
    }
    const auto flips_before = cache.selectionFlips();
    // Phase 2: drifting working set (LRU-friendly, poisons LFU).
    for (int cyc = 0; cyc < 2000; ++cyc) {
        const Addr base = Addr(cyc / 50) * 4;
        for (int b = 0; b < 10; ++b)
            cache.access(((base + b) % 64) * sets * 64 +
                             (Addr(cyc) % sets) * 64,
                         false);
    }
    EXPECT_GE(cache.selectionFlips(), flips_before)
        << "selector must be able to move";
}

TEST(SbarCache, Describe)
{
    SbarCache cache(smallConfig());
    const std::string d = cache.describe();
    EXPECT_NE(d.find("SBAR"), std::string::npos);
    EXPECT_NE(d.find("leaders"), std::string::npos);
}

TEST(SbarCache, PartialTagLeadersWork)
{
    SbarConfig c = smallConfig(16);
    c.partialTagBits = 8;
    SbarCache cache(c);
    Rng rng(11);
    for (int i = 0; i < 50'000; ++i)
        cache.access(teststream::uniformAddr(rng, 8192), false);
    EXPECT_GT(cache.stats().hits, 0u);
    EXPECT_GT(cache.stats().misses, 0u);
}

} // namespace
} // namespace adcache
