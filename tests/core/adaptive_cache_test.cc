#include "core/adaptive_cache.hh"

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "support/access_streams.hh"

namespace adcache
{
namespace
{

/** One-set, 2-way LRU/MRU adaptive cache for hand-traced scenarios. */
AdaptiveConfig
oneSetConfig()
{
    AdaptiveConfig c = AdaptiveConfig::dual(PolicyType::LRU,
                                            PolicyType::MRU, 128, 2, 64);
    c.exactCounters = true;
    return c;
}

constexpr Addr X0 = 0 * 64, X1 = 1 * 64, X2 = 2 * 64;

/**
 * Hand-traced run of Algorithm 1 (the Sec. 2.4 example, instantiated
 * with LRU as policy A and MRU as policy B on a 2-way set):
 *
 *  refs X0, X1      fill the set; all three caches identical.
 *  ref  X2          both components miss (not differentiating);
 *                   history tied -> imitate A (LRU). LRU evicted X0,
 *                   X0 is resident -> adaptive evicts X0.
 *                   adaptive = {X1, X2} = LRU contents.
 *  ref  X0          LRU misses (evicts X1), MRU hits -> history now
 *                   favours B (MRU). B did not evict; adaptive evicts
 *                   a block not in B = {X0, X2}: evicts X1.
 *                   adaptive = {X2, X0} = MRU contents.
 *  ref  X1          both miss; imitate B (MRU), which evicted X0
 *                   (most recently used); X0 resident -> evicted.
 *                   adaptive = {X2, X1} = MRU contents.
 */
TEST(AdaptiveCache, HandTracedAlgorithmOne)
{
    AdaptiveCache cache(oneSetConfig());

    EXPECT_FALSE(cache.access(X0, false).hit);
    EXPECT_FALSE(cache.access(X1, false).hit);
    EXPECT_TRUE(cache.contains(X0));
    EXPECT_TRUE(cache.contains(X1));

    EXPECT_FALSE(cache.access(X2, false).hit);
    EXPECT_FALSE(cache.contains(X0)) << "imitating LRU: X0 evicted";
    EXPECT_TRUE(cache.contains(X1));
    EXPECT_TRUE(cache.contains(X2));

    EXPECT_FALSE(cache.access(X0, false).hit);
    EXPECT_FALSE(cache.contains(X1)) << "imitating MRU: X1 evicted";
    EXPECT_TRUE(cache.contains(X0));
    EXPECT_TRUE(cache.contains(X2));

    EXPECT_FALSE(cache.access(X1, false).hit);
    EXPECT_FALSE(cache.contains(X0)) << "MRU's victim X0 followed";
    EXPECT_TRUE(cache.contains(X1));
    EXPECT_TRUE(cache.contains(X2));

    EXPECT_EQ(cache.stats().misses, 5u);
    EXPECT_EQ(cache.shadowMisses(0), 5u);  // LRU missed every ref
    EXPECT_EQ(cache.shadowMisses(1), 4u);  // MRU hit the 4th ref
}

TEST(AdaptiveCache, HitLeavesContentsAlone)
{
    AdaptiveCache cache(oneSetConfig());
    cache.access(X0, false);
    cache.access(X1, false);
    const auto misses = cache.stats().misses;
    EXPECT_TRUE(cache.access(X1, false).hit);
    EXPECT_TRUE(cache.access(X0, false).hit);
    EXPECT_EQ(cache.stats().misses, misses);
    EXPECT_TRUE(cache.contains(X0));
    EXPECT_TRUE(cache.contains(X1));
}

TEST(AdaptiveCache, NoFallbacksWithFullTags)
{
    // With full tags, Algorithm 1 always finds a legal victim
    // (Sec. 3.1); the arbitrary-eviction fallback must never fire.
    AdaptiveConfig c = AdaptiveConfig::dual(PolicyType::LRU,
                                            PolicyType::LFU,
                                            8 * 1024, 4, 64);
    AdaptiveCache cache(c);
    Rng rng(21);
    for (int i = 0; i < 100000; ++i)
        cache.access(teststream::uniformAddr(rng, 4096),
                     rng.chance(0.3));
    EXPECT_EQ(cache.fallbackEvictions(), 0u);
}

TEST(AdaptiveCache, WritebackOnDirtyEviction)
{
    AdaptiveCache cache(oneSetConfig());
    cache.access(X0, true);  // dirty
    cache.access(X1, false);
    auto r = cache.access(X2, false);  // evicts X0 (imitate LRU)
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.writebackAddr, X0);
    EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(AdaptiveCache, MatchesSingleComponentWhenIdentical)
{
    // Adapting over (LRU, LRU) must behave exactly like plain LRU.
    AdaptiveConfig c = AdaptiveConfig::dual(PolicyType::LRU,
                                            PolicyType::LRU,
                                            8 * 1024, 4, 64);
    AdaptiveCache adaptive(c);
    CacheConfig conf;
    conf.sizeBytes = 8 * 1024;
    conf.assoc = 4;
    conf.lineSize = 64;
    Cache lru(conf);

    Rng rng(31);
    for (int i = 0; i < 50000; ++i) {
        const Addr a = teststream::uniformAddr(rng, 1024);
        adaptive.access(a, false);
        lru.access(a, false);
    }
    EXPECT_EQ(adaptive.stats().misses, lru.stats().misses);
}

TEST(AdaptiveCache, TracksBetterComponentOnLoopWorkload)
{
    // Cyclic loop deeper than the associativity: MRU >> LRU. The
    // adaptive cache must land near MRU, far below LRU.
    const unsigned assoc = 4, depth = 6;
    auto run = [&](PolicyType a, PolicyType b,
                   bool adaptive_run) -> std::uint64_t {
        std::uint64_t misses = 0;
        if (adaptive_run) {
            AdaptiveConfig c =
                AdaptiveConfig::dual(a, b, 64 * assoc, assoc, 64);
            AdaptiveCache cache(c);
            for (int cyc = 0; cyc < 300; ++cyc)
                for (unsigned blk = 0; blk < depth; ++blk)
                    cache.access(teststream::loopAddr(blk, depth),
                                 false);
            misses = cache.stats().misses;
        } else {
            CacheConfig conf;
            conf.sizeBytes = 64 * assoc;
            conf.assoc = assoc;
            conf.lineSize = 64;
            conf.policy = a;
            Cache cache(conf);
            for (int cyc = 0; cyc < 300; ++cyc)
                for (unsigned blk = 0; blk < depth; ++blk)
                    cache.access(teststream::loopAddr(blk, depth),
                                 false);
            misses = cache.stats().misses;
        }
        return misses;
    };
    const auto lru = run(PolicyType::LRU, PolicyType::LRU, false);
    const auto mru = run(PolicyType::MRU, PolicyType::MRU, false);
    const auto adaptive =
        run(PolicyType::LRU, PolicyType::MRU, true);
    ASSERT_LT(mru, lru / 2) << "precondition: MRU must dominate";
    EXPECT_LT(adaptive, (lru + mru) / 2)
        << "adaptive should sit near the better component";
}

TEST(AdaptiveCache, DecisionInstrumentation)
{
    AdaptiveCache cache(oneSetConfig());
    cache.access(X0, false);
    cache.access(X1, false);
    cache.access(X2, false);  // first replacement decision
    const auto &d = cache.decisionsFor(0);
    EXPECT_EQ(d[0] + d[1], 1u);
    cache.clearDecisions();
    EXPECT_EQ(cache.decisionsFor(0)[0], 0u);
    EXPECT_EQ(cache.decisionsFor(0)[1], 0u);
}

TEST(AdaptiveCache, DescribeListsComponents)
{
    AdaptiveCache cache(
        AdaptiveConfig::dual(PolicyType::LRU, PolicyType::LFU));
    const std::string d = cache.describe();
    EXPECT_NE(d.find("LRU"), std::string::npos);
    EXPECT_NE(d.find("LFU"), std::string::npos);
    EXPECT_NE(d.find("full tags"), std::string::npos);
}

TEST(AdaptiveCache, ComponentAccessors)
{
    AdaptiveCache cache(
        AdaptiveConfig::dual(PolicyType::FIFO, PolicyType::MRU));
    EXPECT_EQ(cache.numPolicies(), 2u);
    EXPECT_EQ(cache.componentPolicy(0), PolicyType::FIFO);
    EXPECT_EQ(cache.componentPolicy(1), PolicyType::MRU);
}

TEST(AdaptiveCache, HistoryDepthDefaultsToAssoc)
{
    // Indirect check: a config with historyDepth 0 must construct and
    // behave; the window depth equals the associativity per Sec. 2.2.
    AdaptiveConfig c =
        AdaptiveConfig::dual(PolicyType::LRU, PolicyType::LFU,
                             16 * 1024, 16, 64);
    c.historyDepth = 0;
    AdaptiveCache cache(c);
    Rng rng(41);
    for (int i = 0; i < 10000; ++i)
        cache.access(teststream::uniformAddr(rng, 2048), false);
    EXPECT_GT(cache.stats().misses, 0u);
}

} // namespace
} // namespace adcache
