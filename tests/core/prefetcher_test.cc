#include "core/prefetcher.hh"

#include <gtest/gtest.h>

#include <algorithm>

namespace adcache
{
namespace
{

std::vector<Addr>
observeOne(Prefetcher &p, Addr addr, bool miss)
{
    std::vector<Addr> out;
    p.observe(addr, miss, out);
    return out;
}

TEST(PrefetcherFactory, ParseAndNames)
{
    EXPECT_EQ(parsePrefetcherType("none"), PrefetcherType::None);
    EXPECT_EQ(parsePrefetcherType("nextline"),
              PrefetcherType::NextLine);
    EXPECT_EQ(parsePrefetcherType("stride"), PrefetcherType::Stride);
    EXPECT_EQ(parsePrefetcherType("adaptive"),
              PrefetcherType::AdaptiveHybrid);
    EXPECT_STREQ(prefetcherName(PrefetcherType::Stride), "stride");
    EXPECT_EQ(makePrefetcher(PrefetcherType::None, 64), nullptr);
    EXPECT_NE(makePrefetcher(PrefetcherType::AdaptiveHybrid, 64),
              nullptr);
}

TEST(NextLine, PrefetchesSequentialLinesOnMiss)
{
    NextLinePrefetcher p(64, 2);
    const auto out = observeOne(p, 0x1000, true);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 0x1040u);
    EXPECT_EQ(out[1], 0x1080u);
}

TEST(NextLine, SilentOnHits)
{
    NextLinePrefetcher p(64, 2);
    EXPECT_TRUE(observeOne(p, 0x1000, false).empty());
}

TEST(Stride, DetectsForwardStride)
{
    StridePrefetcher p(64, 64, 1);
    // Three accesses with a +128 stride within one 4KB region.
    observeOne(p, 0x1000, true);
    observeOne(p, 0x1080, true);  // stride learned, confidence 1
    const auto out = observeOne(p, 0x1100, true);  // confirmed
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0x1180u);
}

TEST(Stride, DetectsBackwardStride)
{
    StridePrefetcher p(64, 64, 1);
    observeOne(p, 0x1400, true);
    observeOne(p, 0x1380, true);
    const auto out = observeOne(p, 0x1300, true);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0x1280u);
}

TEST(Stride, NoPrefetchWithoutPattern)
{
    StridePrefetcher p(64, 64, 2);
    observeOne(p, 0x1000, true);
    observeOne(p, 0x1240, true);
    const auto out = observeOne(p, 0x1080, true);
    EXPECT_TRUE(out.empty());
}

TEST(Stride, RegionChangeResets)
{
    StridePrefetcher p(64, 64, 1);
    observeOne(p, 0x1000, true);
    observeOne(p, 0x1040, true);
    // Jump to a different region mapping to the same table entry
    // count: a fresh region must not inherit the old stride.
    const Addr far = 0x1000 + (Addr(64) << 12);
    EXPECT_TRUE(observeOne(p, far, true).empty());
}

TEST(AdaptiveHybrid, IssuesOnlyActiveComponent)
{
    AdaptiveHybridPrefetcher p(64);
    // Fresh history: ties go to component 0 (next-line).
    EXPECT_EQ(p.activeComponent(), 0u);
    const auto out = observeOne(p, 0x2000, true);
    // Active next-line issues its two sequential lines.
    ASSERT_GE(out.size(), 2u);
    EXPECT_TRUE(std::find(out.begin(), out.end(), Addr(0x2040)) !=
                out.end());
}

TEST(AdaptiveHybrid, SwitchesAwayFromUselessComponent)
{
    AdaptiveHybridPrefetcher p(64, 8, 4);
    // A strided stream with a gap larger than next-line's reach:
    // next-line suggestions (addr+64, addr+128) are never used while
    // stride's (+256) are. After the trackers churn, the stride
    // component must become active.
    Addr a = 0x10000;
    for (int i = 0; i < 400; ++i) {
        std::vector<Addr> out;
        p.observe(a, true, out);
        a += 256;
    }
    EXPECT_EQ(p.activeComponent(), 1u)
        << "stride should win a strided stream";
    EXPECT_GT(p.componentStats(1).useful, p.componentStats(1).useless);
    EXPECT_GT(p.componentStats(0).useless, 0u);
}

TEST(AdaptiveHybrid, TracksUsefulness)
{
    AdaptiveHybridPrefetcher p(64, 8, 2);
    // Sequential misses: next-line suggestions are always used.
    Addr a = 0x4000;
    for (int i = 0; i < 100; ++i) {
        std::vector<Addr> out;
        p.observe(a, true, out);
        a += 64;
    }
    EXPECT_GT(p.componentStats(0).useful, 0u);
    EXPECT_EQ(p.activeComponent(), 0u);
}

TEST(AdaptiveHybrid, DescribeMentionsBothComponents)
{
    AdaptiveHybridPrefetcher p(64);
    const std::string d = p.describe();
    EXPECT_NE(d.find("next"), std::string::npos);
    EXPECT_NE(d.find("stride"), std::string::npos);
}

} // namespace
} // namespace adcache
