#include "core/miss_history.hh"

#include <gtest/gtest.h>

#include "util/rng.hh"

namespace adcache
{
namespace
{

TEST(WindowHistory, EmptyCountsZero)
{
    WindowHistory h(8, 2);
    EXPECT_EQ(h.count(0), 0u);
    EXPECT_EQ(h.count(1), 0u);
    EXPECT_EQ(h.best(2), 0u) << "ties break toward policy 0";
}

TEST(WindowHistory, CountsRecordedMisses)
{
    WindowHistory h(8, 2);
    h.record(0b01);
    h.record(0b01);
    h.record(0b10);
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(1), 1u);
    EXPECT_EQ(h.best(2), 1u) << "policy 1 missed less";
}

TEST(WindowHistory, OldEntriesExpire)
{
    WindowHistory h(4, 2);
    for (int i = 0; i < 4; ++i)
        h.record(0b01);
    EXPECT_EQ(h.count(0), 4u);
    // Four newer events push the old ones out.
    for (int i = 0; i < 4; ++i)
        h.record(0b10);
    EXPECT_EQ(h.count(0), 0u);
    EXPECT_EQ(h.count(1), 4u);
    EXPECT_EQ(h.best(2), 0u);
}

TEST(WindowHistory, PartialExpiry)
{
    WindowHistory h(4, 2);
    h.record(0b01);
    h.record(0b01);
    h.record(0b10);
    h.record(0b10);
    h.record(0b10);  // expires the first 0b01
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(1), 3u);
}

TEST(WindowHistory, MultiPolicyMask)
{
    WindowHistory h(8, 4);
    h.record(0b0110);  // policies 1 and 2 missed
    h.record(0b0010);
    EXPECT_EQ(h.count(0), 0u);
    EXPECT_EQ(h.count(1), 2u);
    EXPECT_EQ(h.count(2), 1u);
    EXPECT_EQ(h.count(3), 0u);
    EXPECT_EQ(h.best(4), 0u);
}

TEST(WindowHistory, DepthOne)
{
    WindowHistory h(1, 2);
    h.record(0b01);
    EXPECT_EQ(h.best(2), 1u);
    h.record(0b10);
    EXPECT_EQ(h.best(2), 0u);
}

TEST(CounterHistory, NeverForgets)
{
    CounterHistory h(2);
    for (int i = 0; i < 100; ++i)
        h.record(0b01);
    h.record(0b10);
    EXPECT_EQ(h.count(0), 100u);
    EXPECT_EQ(h.count(1), 1u);
    EXPECT_EQ(h.best(2), 1u);
}

TEST(CounterHistory, TieGoesToFirst)
{
    CounterHistory h(3);
    h.record(0b001);
    h.record(0b010);
    h.record(0b100);
    EXPECT_EQ(h.best(3), 0u);
}

TEST(MakeHistory, SelectsRepresentation)
{
    auto window = makeHistory(false, 8, 2);
    auto counter = makeHistory(true, 8, 2);
    for (int i = 0; i < 20; ++i) {
        window->record(0b01);
        counter->record(0b01);
    }
    EXPECT_EQ(window->count(0), 8u) << "window saturates at depth";
    EXPECT_EQ(counter->count(0), 20u) << "counters are exact";
}

class WindowDepthSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(WindowDepthSweep, CountNeverExceedsDepth)
{
    const unsigned depth = GetParam();
    WindowHistory h(depth, 2);
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        h.record(rng.chance(0.5) ? 0b01 : 0b10);
        EXPECT_LE(h.count(0) + h.count(1), depth);
    }
}

INSTANTIATE_TEST_SUITE_P(Depths, WindowDepthSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 64u));

} // namespace
} // namespace adcache
