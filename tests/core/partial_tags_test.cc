/**
 * @file
 * Partial-tag behaviour (Sec. 3.1): wide partial tags must reproduce
 * full-tag adaptivity almost exactly; narrow ones degrade gracefully
 * and may trigger the arbitrary-eviction fallback, never corruption.
 */

#include <gtest/gtest.h>

#include "core/adaptive_cache.hh"
#include "support/access_streams.hh"

namespace adcache
{
namespace
{

AdaptiveConfig
config(unsigned partial_bits, bool xor_fold = false)
{
    AdaptiveConfig c = AdaptiveConfig::dual(
        PolicyType::LRU, PolicyType::LFU, 64 * 1024, 8, 64);
    c.partialTagBits = partial_bits;
    c.xorFoldTags = xor_fold;
    return c;
}

std::uint64_t
runMisses(const AdaptiveConfig &c, std::uint64_t seed,
          std::uint64_t *fallbacks = nullptr)
{
    AdaptiveCache cache(c);
    Rng rng(seed);
    for (std::uint64_t i = 0; i < 200'000; ++i) {
        const Addr a =
            teststream::hotColdAddr(rng, i, 512, 512, 8192);
        cache.access(a, rng.chance(0.2));
    }
    if (fallbacks)
        *fallbacks = cache.fallbackEvictions();
    return cache.stats().misses;
}

TEST(PartialTags, WideTagsMatchFullTagsClosely)
{
    const auto full = runMisses(config(0), 1);
    for (unsigned bits : {12u, 10u}) {
        const auto partial = runMisses(config(bits), 1);
        const double delta =
            std::abs(double(partial) - double(full)) / double(full);
        EXPECT_LT(delta, 0.02)
            << bits << "-bit tags diverge from full tags";
    }
}

TEST(PartialTags, DegradationIsMonotoneInSpirit)
{
    // 4-bit tags must be no better than a small tolerance below
    // 8-bit tags, and far above them in fallback usage.
    std::uint64_t fb8 = 0, fb4 = 0;
    const auto m8 = runMisses(config(8), 2, &fb8);
    const auto m4 = runMisses(config(4), 2, &fb4);
    EXPECT_GE(double(m4) * 1.02, double(m8))
        << "4-bit tags should not beat 8-bit tags meaningfully";
    EXPECT_GE(fb4, fb8);
}

TEST(PartialTags, FallbackOnlyWithNarrowTags)
{
    std::uint64_t fb_full = 0;
    runMisses(config(0), 3, &fb_full);
    EXPECT_EQ(fb_full, 0u)
        << "full tags guarantee a legal victim (Sec. 3.1)";
}

TEST(PartialTags, XorFoldWorksAsAlternative)
{
    // The XOR-folded hash must be functional and close to the
    // low-order-bits hash in quality at 8 bits.
    const auto low = runMisses(config(8, false), 4);
    const auto xored = runMisses(config(8, true), 4);
    const double rel =
        std::abs(double(low) - double(xored)) / double(low);
    EXPECT_LT(rel, 0.05);
}

TEST(PartialTags, NarrowTagsNeverCorrupt)
{
    // Even 2-bit tags must keep the cache functionally correct: a
    // resident block is always a hit on re-access.
    AdaptiveConfig c = config(2);
    AdaptiveCache cache(c);
    cache.access(0x1234 * 64, false);
    EXPECT_TRUE(cache.access(0x1234 * 64, false).hit);
}

class PartialWidthSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PartialWidthSweep, MissesWithinEnvelopeOfFull)
{
    const auto full = runMisses(config(0), 5);
    const auto partial = runMisses(config(GetParam()), 5);
    // Partial tags may wander either way (aliasing can even hide
    // misses), but must stay within a generous envelope.
    EXPECT_LT(double(partial), 1.35 * double(full));
    EXPECT_GT(double(partial), 0.65 * double(full));
}

INSTANTIATE_TEST_SUITE_P(Widths, PartialWidthSweep,
                         ::testing::Values(4u, 6u, 8u, 10u, 12u),
                         [](const auto &info) {
                             return "bits" +
                                    std::to_string(info.param);
                         });

} // namespace
} // namespace adcache
