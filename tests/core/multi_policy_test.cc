/**
 * @file
 * The generalised N-policy adaptivity of Sec. 4.4 (five components:
 * LRU, LFU, FIFO, MRU, Random).
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "core/adaptive_cache.hh"
#include "support/access_streams.hh"

namespace adcache
{
namespace
{

TEST(MultiPolicy, FivePolicyPresetShape)
{
    const auto c = AdaptiveConfig::fivePolicy();
    EXPECT_EQ(c.policies.size(), 5u);
    EXPECT_EQ(c.policies[0], PolicyType::LRU);
    EXPECT_EQ(c.policies[4], PolicyType::Random);
    AdaptiveCache cache(c);
    EXPECT_EQ(cache.numPolicies(), 5u);
}

TEST(MultiPolicy, RunsAndCounts)
{
    AdaptiveConfig c = AdaptiveConfig::fivePolicy(64 * 1024, 8, 64);
    AdaptiveCache cache(c);
    Rng rng(3);
    for (int i = 0; i < 100'000; ++i)
        cache.access(teststream::uniformAddr(rng, 4096),
                     rng.chance(0.25));
    EXPECT_EQ(cache.stats().accesses, 100'000u);
    for (unsigned k = 0; k < 5; ++k)
        EXPECT_GT(cache.shadowMisses(k), 0u);
}

TEST(MultiPolicy, TracksBestOfFiveOnLoop)
{
    // Cyclic loop: MRU is by far the best of the five; the 5-policy
    // adaptive cache must land well below LRU/FIFO.
    AdaptiveConfig c = AdaptiveConfig::fivePolicy(64 * 4, 4, 64);
    AdaptiveCache cache(c);
    for (int cyc = 0; cyc < 2000; ++cyc)
        for (int b = 0; b < 6; ++b)
            cache.access(teststream::loopAddr(b, 6), false);

    std::uint64_t best = cache.shadowMisses(0);
    std::uint64_t worst = best;
    for (unsigned k = 1; k < 5; ++k) {
        best = std::min(best, cache.shadowMisses(k));
        worst = std::max(worst, cache.shadowMisses(k));
    }
    ASSERT_LT(best, worst / 2) << "precondition: components differ";
    EXPECT_LT(cache.stats().misses, (best + worst) / 2);
}

TEST(MultiPolicy, ThreePolicies)
{
    AdaptiveConfig c;
    c.sizeBytes = 32 * 1024;
    c.assoc = 4;
    c.policies = {PolicyType::LRU, PolicyType::LFU, PolicyType::FIFO};
    AdaptiveCache cache(c);
    Rng rng(7);
    for (int i = 0; i < 50'000; ++i)
        cache.access(teststream::uniformAddr(rng, 2048), false);
    EXPECT_EQ(cache.numPolicies(), 3u);
    EXPECT_GT(cache.stats().hits, 0u);
}

TEST(MultiPolicy, FiveCloseToDualOnMixedStream)
{
    // Sec. 4.4's conclusion: five-way adaptivity is not clearly
    // superior to LRU/LFU adaptivity; they should land in the same
    // neighbourhood on a mixed stream.
    const std::uint64_t size = 64 * 1024;
    AdaptiveCache five(AdaptiveConfig::fivePolicy(size, 8, 64));
    AdaptiveCache dual(AdaptiveConfig::dual(PolicyType::LRU,
                                            PolicyType::LFU, size, 8,
                                            64));
    Rng rng(13);
    for (std::uint64_t i = 0; i < 300'000; ++i) {
        Addr a;
        const int phase = int((i / 30'000) % 2);
        if (phase == 0)
            a = teststream::hotColdAddr(rng, i, 768, 768, 8192);
        else
            a = teststream::uniformAddr(rng, 3072);
        five.access(a, false);
        dual.access(a, false);
    }
    const double ratio =
        double(five.stats().misses) / double(dual.stats().misses);
    EXPECT_GT(ratio, 0.8);
    EXPECT_LT(ratio, 1.25);
}

TEST(MultiPolicy, DescribeListsAllComponents)
{
    AdaptiveCache cache(AdaptiveConfig::fivePolicy());
    const std::string d = cache.describe();
    for (const char *name :
         {"LRU", "LFU", "FIFO", "MRU", "Random"})
        EXPECT_NE(d.find(name), std::string::npos) << name;
}

} // namespace
} // namespace adcache
