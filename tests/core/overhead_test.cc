/**
 * @file
 * The storage model must reproduce the paper's bit accounting
 * exactly: Sec. 3.1's 544/598/566 KB totals, the +9.9 %/+4.0 %/+2.1 %
 * adaptive overheads, Fig. 6's +12.5 %/+25 % conventional growth, and
 * Sec. 4.7's sub-0.2 % SBAR overheads.
 */

#include <gtest/gtest.h>

#include "core/overhead.hh"

namespace adcache
{
namespace
{

CacheGeometry
paperL2(unsigned line = 64)
{
    return CacheGeometry::fromSize(512 * 1024, 8, line);
}

TEST(Overhead, ConventionalBaselineIs544KB)
{
    // 8K lines x (24-bit tag + 8 misc bits) = 32KB of metadata on
    // 512KB of data (footnote 2).
    const auto s = conventionalStorage(paperL2());
    EXPECT_EQ(s.dataBits, 512ull * 1024 * 8);
    EXPECT_EQ(s.tagBits, 8192ull * 32);
    EXPECT_NEAR(s.totalKB(), 544.0, 0.01);
}

TEST(Overhead, FullTagAdaptiveIs598KB)
{
    // Two 28KB parallel arrays + 1KB history - 3KB LRU dedup.
    const auto base = conventionalStorage(paperL2());
    const auto a = adaptiveStorage(paperL2(), 2, 0, 8);
    EXPECT_NEAR(a.totalKB(), 598.0, 0.01);
    EXPECT_NEAR(overheadPercent(base, a), 9.9, 0.05);
}

TEST(Overhead, EightBitPartialTagsIs566KB)
{
    const auto base = conventionalStorage(paperL2());
    const auto a = adaptiveStorage(paperL2(), 2, 8, 8);
    EXPECT_NEAR(a.totalKB(), 566.0, 0.01);
    EXPECT_NEAR(overheadPercent(base, a), 4.0, 0.1);
}

TEST(Overhead, OneTwentyEightByteLinesIsTwoPercent)
{
    const auto g = paperL2(128);
    const auto base = conventionalStorage(g);
    const auto a = adaptiveStorage(g, 2, 8, 8);
    EXPECT_NEAR(overheadPercent(base, a), 2.1, 0.2);
}

TEST(Overhead, BiggerConventionalCaches)
{
    // Fig. 6: 576KB 9-way = 612KB total (+12.5 %), 640KB 10-way =
    // 680KB total (+25 %).
    const auto base = conventionalStorage(paperL2());
    const auto nine =
        conventionalStorage(CacheGeometry::fromSize(576 * 1024, 9, 64));
    const auto ten =
        conventionalStorage(CacheGeometry::fromSize(640 * 1024, 10, 64));
    EXPECT_NEAR(nine.totalKB(), 612.0, 0.01);
    EXPECT_NEAR(ten.totalKB(), 680.0, 0.01);
    EXPECT_NEAR(overheadPercent(base, nine), 12.5, 0.01);
    EXPECT_NEAR(overheadPercent(base, ten), 25.0, 0.01);
}

TEST(Overhead, SbarIsTinyFraction)
{
    // Sec. 4.7: ~0.16 % with full-tag leaders, under 0.1 % with
    // 8-bit partial-tag leaders (32 leader sets).
    const auto base = conventionalStorage(paperL2());
    const auto full = sbarStorage(paperL2(), 32, 0, 8);
    const auto partial = sbarStorage(paperL2(), 32, 8, 8);
    EXPECT_NEAR(overheadPercent(base, full), 0.16, 0.02);
    EXPECT_LT(overheadPercent(base, partial), 0.1);
    EXPECT_GT(overheadPercent(base, partial), 0.0);
}

TEST(Overhead, MoreLeadersCostMore)
{
    const auto g = paperL2();
    const auto s32 = sbarStorage(g, 32, 8, 8);
    const auto s128 = sbarStorage(g, 128, 8, 8);
    EXPECT_GT(s128.totalBits(), s32.totalBits());
}

TEST(Overhead, PartialWidthScalesShadowCost)
{
    const auto g = paperL2();
    const auto a4 = adaptiveStorage(g, 2, 4, 8);
    const auto a12 = adaptiveStorage(g, 2, 12, 8);
    EXPECT_LT(a4.shadowBits, a12.shadowBits);
    // Difference is exactly 2 arrays x 8K lines x 8 bits.
    EXPECT_EQ(a12.shadowBits - a4.shadowBits, 2ull * 8192 * 8);
}

TEST(Overhead, FivePolicyCostsFiveArrays)
{
    const auto g = paperL2();
    const auto two = adaptiveStorage(g, 2, 8, 8);
    const auto five = adaptiveStorage(g, 5, 8, 16);
    EXPECT_GT(five.shadowBits, 2 * two.shadowBits);
}

} // namespace
} // namespace adcache
