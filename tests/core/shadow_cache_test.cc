#include "core/shadow_cache.hh"

#include <gtest/gtest.h>

#include "cache/cache.hh"

namespace adcache
{
namespace
{

CacheGeometry
tinyGeom()
{
    return CacheGeometry::fromSize(4 * 1024, 4, 64);  // 16 sets
}

TEST(ShadowCache, MissThenHit)
{
    Rng rng(1);
    ShadowCache shadow(tinyGeom(), PolicyType::LRU, 0, false, &rng);
    auto o1 = shadow.access(0x1000);
    EXPECT_TRUE(o1.miss);
    EXPECT_FALSE(o1.evicted);
    auto o2 = shadow.access(0x1000);
    EXPECT_FALSE(o2.miss);
    EXPECT_EQ(shadow.misses(), 1u);
    EXPECT_EQ(shadow.accesses(), 2u);
}

TEST(ShadowCache, EvictionReportsDisplacedTag)
{
    Rng rng(1);
    const auto g = tinyGeom();
    ShadowCache shadow(g, PolicyType::LRU, 0, false, &rng);
    // Fill set 0 with 4 blocks, then a 5th forces an LRU eviction.
    for (int i = 0; i < 4; ++i) {
        auto o = shadow.access(Addr(i) * g.numSets * g.lineSize);
        EXPECT_FALSE(o.evicted);
    }
    auto o = shadow.access(Addr(4) * g.numSets * g.lineSize);
    EXPECT_TRUE(o.miss);
    EXPECT_TRUE(o.evicted);
    EXPECT_EQ(o.evictedTag, shadow.transformTag(0));
}

TEST(ShadowCache, MirrorsConventionalCacheMisses)
{
    // With full tags, a shadow cache is a conventional cache minus
    // the data: identical miss counts under any reference stream.
    Rng rng(1);
    const auto g = tinyGeom();
    ShadowCache shadow(g, PolicyType::LRU, 0, false, &rng);
    CacheConfig conf;
    conf.sizeBytes = g.sizeBytes();
    conf.assoc = g.assoc;
    conf.lineSize = g.lineSize;
    conf.policy = PolicyType::LRU;
    Cache real(conf);

    Rng stim(17);
    for (int i = 0; i < 20000; ++i) {
        const Addr a = stim.below(256) * 64;
        shadow.access(a);
        real.access(a, false);
    }
    EXPECT_EQ(shadow.misses(), real.stats().misses);
}

TEST(ShadowCache, ContainsTag)
{
    Rng rng(1);
    const auto g = tinyGeom();
    ShadowCache shadow(g, PolicyType::LRU, 0, false, &rng);
    shadow.access(0x2000);
    const unsigned set = g.setIndex(0x2000);
    EXPECT_TRUE(shadow.containsTag(set, shadow.transformTag(0x2000)));
    EXPECT_FALSE(shadow.containsTag(set, shadow.transformTag(0x2000) + 1));
}

TEST(ShadowCache, PartialTagFolding)
{
    Rng rng(1);
    const auto g = tinyGeom();
    ShadowCache low(g, PolicyType::LRU, 8, false, &rng);
    ShadowCache xored(g, PolicyType::LRU, 8, true, &rng);
    EXPECT_LE(low.transformTag(0xFFFFFFFF), 0xFFu);
    EXPECT_LE(xored.transformTag(0xFFFFFFFF), 0xFFu);
    // Low-order folding truncates; XOR folding mixes high bits in.
    const Addr tag = g.tag(0x5A3C0000);
    ASSERT_GT(tag, 0xFFu);  // enough entropy to differ
    EXPECT_NE(low.foldTag(tag), xored.foldTag(tag));
}

TEST(ShadowCache, PartialTagAliasingCausesFalseHits)
{
    // Two blocks whose tags agree in the low 4 bits alias in a 4-bit
    // shadow: the second access is (incorrectly but harmlessly)
    // treated as a hit.
    Rng rng(1);
    const auto g = tinyGeom();
    ShadowCache shadow(g, PolicyType::LRU, 4, false, &rng);
    const Addr a = 0;  // tag 0
    const Addr b =
        (Addr(16) << (g.offsetBits() + g.indexBits()));  // tag 16
    ASSERT_EQ(shadow.transformTag(a), shadow.transformTag(b));
    auto o1 = shadow.access(a);
    EXPECT_TRUE(o1.miss);
    auto o2 = shadow.access(b);
    EXPECT_FALSE(o2.miss) << "aliased block must report a (false) hit";
}

TEST(ShadowCache, FullTagNeverAliases)
{
    Rng rng(1);
    const auto g = tinyGeom();
    ShadowCache shadow(g, PolicyType::LRU, 0, false, &rng);
    const Addr a = 0;
    const Addr b = Addr(16) << (g.offsetBits() + g.indexBits());
    shadow.access(a);
    auto o = shadow.access(b);
    EXPECT_TRUE(o.miss);
}

TEST(ShadowCache, LfuPolicyRespected)
{
    Rng rng(1);
    const auto g = tinyGeom();
    ShadowCache shadow(g, PolicyType::LFU, 0, false, &rng);
    const Addr stride = Addr(g.numSets) * g.lineSize;
    // Blocks 0..3 fill set 0; block 0 becomes frequent.
    for (int i = 0; i < 4; ++i)
        shadow.access(Addr(i) * stride);
    for (int i = 0; i < 5; ++i)
        shadow.access(0);
    // New block evicts a count-1 block, not block 0.
    auto o = shadow.access(4 * stride);
    EXPECT_TRUE(o.evicted);
    EXPECT_NE(o.evictedTag, shadow.transformTag(0));
    EXPECT_FALSE(shadow.access(0).miss);
}

} // namespace
} // namespace adcache
