/**
 * @file
 * In-process transport tests: request/response semantics through
 * KvChannel + KvService without sockets — typed round-trips, chunked
 * ingest (partial-read coverage), the two-tier error contract
 * (undecodable body answers Error and the channel lives; corrupt
 * framing kills it), scenario injection (dead shard, read-through
 * identity under backend value derivation), TTL over the logical
 * clock, stats payloads, and a multi-thread loopback concurrency
 * test on one shared service (the TSan target that needs no
 * sockets).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "net/loopback.hh"
#include "net/protocol.hh"
#include "net/service.hh"
#include "workloads/key_stream.hh"

using namespace adcache;
using namespace adcache::net;

namespace
{

KvServiceConfig
smallService(bool read_through = false)
{
    KvServiceConfig c;
    c.cache.capacity = 1024;
    c.cache.numShards = 2;
    c.cache.numBuckets = 128;
    c.cache.bucketWays = 4;
    c.readThrough = read_through;
    c.loaderValues = ValueSpec{32, 64};
    return c;
}

TEST(Loopback, PutGetDelRoundTrip)
{
    KvService service(smallService());
    LoopbackConnection conn(service);

    EXPECT_FALSE(conn.get(1).has_value());
    EXPECT_TRUE(conn.put(1, "hello"));
    const auto got = conn.get(1);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, "hello");
    EXPECT_TRUE(conn.del(1));
    EXPECT_FALSE(conn.del(1)); // second delete: NotFound
    EXPECT_FALSE(conn.get(1).has_value());
    EXPECT_TRUE(conn.ping());
    EXPECT_FALSE(conn.dead());
}

TEST(Loopback, ChunkedIngestMatchesWholeFrames)
{
    // Byte-at-a-time delivery must produce byte-identical behavior:
    // the channel is the same partial-read state machine the socket
    // server runs.
    KvService service(smallService());
    LoopbackConnection conn(service);

    Message r = conn.call(Message::put(9, "chunked value"), 1);
    EXPECT_EQ(r.kind, MsgKind::Ok);
    r = conn.call(Message::get(9), 1);
    ASSERT_EQ(r.kind, MsgKind::Value);
    EXPECT_EQ(r.payload, "chunked value");
    r = conn.call(Message::get(9), 3);
    ASSERT_EQ(r.kind, MsgKind::Value);
    EXPECT_EQ(r.payload, "chunked value");
}

TEST(Loopback, MalformedBodyAnswersErrorAndChannelLives)
{
    KvService service(smallService());
    KvChannel channel(service);

    // Well-framed, undecodable body: Get with a truncated key.
    std::string body(1, '\x01');
    body += "abc";
    std::string frame;
    frame.push_back(char(body.size()));
    frame.push_back('\0');
    frame.push_back('\0');
    frame.push_back('\0');
    frame += body;

    std::string out;
    EXPECT_TRUE(channel.ingest(frame, &out)); // channel stays alive
    EXPECT_FALSE(channel.dead());

    FrameReader responses;
    responses.feed(out);
    std::string resp_body;
    ASSERT_EQ(responses.next(&resp_body),
              FrameReader::Status::Frame);
    Message resp;
    ASSERT_TRUE(decodeBody(resp_body, &resp));
    EXPECT_EQ(resp.kind, MsgKind::Error);

    // The same channel keeps serving real requests afterwards.
    out.clear();
    EXPECT_TRUE(channel.ingest(encodedFrame(Message::ping()), &out));
    responses.feed(out);
    ASSERT_EQ(responses.next(&resp_body),
              FrameReader::Status::Frame);
    ASSERT_TRUE(decodeBody(resp_body, &resp));
    EXPECT_EQ(resp.kind, MsgKind::Ok);
}

TEST(Loopback, ResponseKindIsRejectedAsRequest)
{
    // A client sending a response kind is a protocol violation on a
    // valid frame: request-fatal, not connection-fatal.
    KvService service(smallService());
    KvChannel channel(service);
    std::string out;
    EXPECT_TRUE(channel.ingest(encodedFrame(Message::ok()), &out));
    EXPECT_FALSE(channel.dead());
    FrameReader responses;
    responses.feed(out);
    std::string body;
    ASSERT_EQ(responses.next(&body), FrameReader::Status::Frame);
    Message resp;
    ASSERT_TRUE(decodeBody(body, &resp));
    EXPECT_EQ(resp.kind, MsgKind::Error);
}

TEST(Loopback, CorruptFramingKillsTheChannel)
{
    KvService service(smallService());
    KvChannel channel(service);
    std::string out;
    // Length prefix far beyond kMaxFrameBytes.
    const std::string garbage = "\xff\xff\xff\xff then noise";
    EXPECT_FALSE(channel.ingest(garbage, &out));
    EXPECT_TRUE(channel.dead());
    // Dead is dead: further bytes never dispatch.
    const std::uint64_t before = channel.requestsHandled();
    EXPECT_FALSE(
        channel.ingest(encodedFrame(Message::ping()), &out));
    EXPECT_EQ(channel.requestsHandled(), before);
}

TEST(Loopback, DeadShardAnswersErrorOthersServe)
{
    KvService service(smallService());
    LoopbackConnection conn(service);

    // Find one key per shard.
    const unsigned shards = service.cache().numShards();
    std::vector<std::uint64_t> key_for(shards, 0);
    std::vector<bool> found(shards, false);
    for (std::uint64_t k = 0; k < 10'000; ++k) {
        const unsigned s = service.cache().shardOf(k);
        if (!found[s]) {
            found[s] = true;
            key_for[s] = k;
        }
    }
    ASSERT_TRUE(found[0] && found[1]);

    service.setDeadShardMask(1); // shard 0 down
    Message r = conn.call(Message::put(key_for[0], "x"));
    EXPECT_EQ(r.kind, MsgKind::Error);
    EXPECT_TRUE(conn.put(key_for[1], "y")); // shard 1 healthy
    EXPECT_GT(service.errorsAnswered(), 0u);

    service.setDeadShardMask(0); // recovery
    EXPECT_TRUE(conn.put(key_for[0], "x"));
}

TEST(Loopback, ReadThroughServesDerivedValuesAndCaches)
{
    KvService service(smallService(/*read_through=*/true));
    LoopbackConnection conn(service);

    const std::uint64_t key = 1234;
    const auto got = conn.get(key);
    ASSERT_TRUE(got.has_value()); // miss loaded from the "backend"
    EXPECT_EQ(*got,
              valueFor(key, service.config().loaderValues));

    // Second read is a cache hit: identical bytes, no reload.
    const auto again = conn.get(key);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(*again, *got);
    EXPECT_GE(service.cache().shard(service.cache().shardOf(key))
                  .stats()
                  .hits,
              1u);
}

TEST(Loopback, TtlExpiresOverTheLogicalClock)
{
    KvService service(smallService());
    LoopbackConnection conn(service);
    EXPECT_TRUE(conn.put(5, "short-lived", /*ttl=*/2));
    EXPECT_TRUE(conn.get(5).has_value());
    service.cache().clockAdvance(2);
    EXPECT_FALSE(conn.get(5).has_value());
}

TEST(Loopback, StatsPayloadCarriesServiceCounters)
{
    KvService service(smallService());
    LoopbackConnection conn(service);
    conn.put(1, "a");
    conn.get(1);
    const std::string text = conn.stats();
    EXPECT_NE(text.find("net.requests"), std::string::npos);
    EXPECT_NE(text.find("net.errors"), std::string::npos);
    EXPECT_NE(text.find("kv.hits"), std::string::npos);
}

TEST(Loopback, MGetMixesHitsAndMisses)
{
    KvService service(smallService());
    LoopbackConnection conn(service);
    EXPECT_TRUE(conn.put(1, "one"));
    EXPECT_TRUE(conn.put(3, "three"));

    const auto got = conn.mget({1, 2, 3, 1});
    ASSERT_EQ(got.size(), 4u);
    ASSERT_TRUE(got[0].has_value());
    EXPECT_EQ(*got[0], "one");
    EXPECT_FALSE(got[1].has_value());
    ASSERT_TRUE(got[2].has_value());
    EXPECT_EQ(*got[2], "three");
    ASSERT_TRUE(got[3].has_value()); // duplicate key answers twice
    EXPECT_EQ(*got[3], "one");
    EXPECT_FALSE(conn.dead());
}

TEST(Loopback, MGetByteAtATimeMatchesWholeFrame)
{
    KvService service(smallService());
    LoopbackConnection conn(service);
    EXPECT_TRUE(conn.put(7, "chunky"));

    const Message whole = conn.call(Message::mget({7, 8}));
    const Message split = conn.call(Message::mget({7, 8}), 1);
    ASSERT_EQ(whole.kind, MsgKind::Values);
    ASSERT_EQ(split.kind, MsgKind::Values);
    ASSERT_EQ(whole.entries.size(), 2u);
    ASSERT_EQ(split.entries.size(), 2u);
    EXPECT_EQ(split.entries[0].status, MGetStatus::Found);
    EXPECT_EQ(split.entries[0].value, whole.entries[0].value);
    EXPECT_EQ(split.entries[1].status, MGetStatus::Miss);
}

TEST(Loopback, CallManyPipelinesConcatenatedFramesByteAtATime)
{
    // K frames of mixed kinds delivered one byte at a time: the
    // channel must decode every complete frame per feed and answer
    // all of them in request order — the pipelined hot path the
    // socket server runs per readable event.
    KvService service(smallService());
    LoopbackConnection conn(service);

    const std::vector<Message> requests = {
        Message::put(1, "a"),  Message::put(2, "bb"),
        Message::get(1),       Message::mget({1, 2, 3}),
        Message::del(2),       Message::get(2),
        Message::ping(),
    };
    const std::vector<Message> resps = conn.callMany(requests, 1);
    ASSERT_EQ(resps.size(), requests.size());
    EXPECT_EQ(resps[0].kind, MsgKind::Ok);
    EXPECT_EQ(resps[1].kind, MsgKind::Ok);
    ASSERT_EQ(resps[2].kind, MsgKind::Value);
    EXPECT_EQ(resps[2].payload, "a");
    ASSERT_EQ(resps[3].kind, MsgKind::Values);
    ASSERT_EQ(resps[3].entries.size(), 3u);
    EXPECT_EQ(resps[3].entries[0].value, "a");
    EXPECT_EQ(resps[3].entries[1].value, "bb");
    EXPECT_EQ(resps[3].entries[2].status, MGetStatus::Miss);
    EXPECT_EQ(resps[4].kind, MsgKind::Ok);
    EXPECT_EQ(resps[5].kind, MsgKind::NotFound);
    EXPECT_EQ(resps[6].kind, MsgKind::Ok);
    EXPECT_FALSE(conn.dead());
}

TEST(Loopback, MGetDeadShardAnswersPerKeyErrors)
{
    KvService service(smallService());
    LoopbackConnection conn(service);

    const unsigned shards = service.cache().numShards();
    std::vector<std::uint64_t> key_for(shards, 0);
    std::vector<bool> found(shards, false);
    for (std::uint64_t k = 0; k < 10'000; ++k) {
        const unsigned s = service.cache().shardOf(k);
        if (!found[s]) {
            found[s] = true;
            key_for[s] = k;
        }
    }
    ASSERT_TRUE(found[0] && found[1]);
    EXPECT_TRUE(conn.put(key_for[1], "alive"));

    service.setDeadShardMask(1); // shard 0 down
    const Message r =
        conn.call(Message::mget({key_for[0], key_for[1]}));
    ASSERT_EQ(r.kind, MsgKind::Values);
    ASSERT_EQ(r.entries.size(), 2u);
    EXPECT_EQ(r.entries[0].status, MGetStatus::Error);
    EXPECT_EQ(r.entries[1].status, MGetStatus::Found);
    EXPECT_EQ(r.entries[1].value, "alive");
    EXPECT_GT(service.errorsAnswered(), 0u);
}

TEST(Loopback, MGetReadThroughBackfillsMisses)
{
    KvService service(smallService(/*read_through=*/true));
    LoopbackConnection conn(service);

    const std::vector<std::uint64_t> keys = {100, 200, 300};
    const auto got = conn.mget(keys);
    ASSERT_EQ(got.size(), keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
        ASSERT_TRUE(got[i].has_value()) << "key " << keys[i];
        EXPECT_EQ(*got[i],
                  valueFor(keys[i],
                           service.config().loaderValues));
    }
    // Backfilled: the same batch now hits in cache.
    const auto again = conn.mget(keys);
    for (std::size_t i = 0; i < keys.size(); ++i) {
        ASSERT_TRUE(again[i].has_value());
        EXPECT_EQ(*again[i], *got[i]);
    }
}

TEST(Loopback, OversizedMGetResponseAnswersErrorNotCorruption)
{
    // kMaxMGetKeys keys of read-through values big enough that the
    // Values response would blow kMaxFrameBytes: the service must
    // answer a request-fatal Error frame (the connection and its
    // framing survive), never emit an unframeable response.
    KvServiceConfig cfg = smallService(/*read_through=*/true);
    cfg.loaderValues = ValueSpec{512, 512};
    KvService service(cfg);
    LoopbackConnection conn(service);

    std::vector<std::uint64_t> keys(kMaxMGetKeys);
    for (std::size_t i = 0; i < keys.size(); ++i)
        keys[i] = i;
    const Message r = conn.call(Message::mget(keys));
    EXPECT_EQ(r.kind, MsgKind::Error);
    EXPECT_FALSE(conn.dead());
    EXPECT_TRUE(conn.ping()); // still serving
}

TEST(Loopback, ConcurrentConnectionsShareOneService)
{
    // The loopback concurrency test: N threads, each with its own
    // connection (channels are per-connection state), hammering one
    // shared service. Run under TSan this checks the whole
    // channel->service->cache stack without a socket.
    KvServiceConfig cfg = smallService(/*read_through=*/true);
    cfg.cache.lockFreeReads = true;
    KvService service(cfg);

    constexpr unsigned kThreads = 4;
    constexpr int kOpsPerThread = 4'000;
    constexpr std::uint64_t kKeys = 512;
    std::atomic<std::uint64_t> mismatches{0};

    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            LoopbackConnection conn(service);
            std::uint64_t x = 0x9e3779b97f4a7c15ULL * (t + 1);
            for (int i = 0; i < kOpsPerThread; ++i) {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                const std::uint64_t key = x % kKeys;
                switch (x % 16) {
                  case 0:
                    conn.put(key,
                             valueFor(key,
                                      service.config().loaderValues));
                    break;
                  case 1:
                    conn.del(key);
                    break;
                  default: {
                    // Read-through gets always produce the derived
                    // value: any other payload is a torn read.
                    const auto got = conn.get(key);
                    if (!got.has_value() ||
                        *got != valueFor(
                                    key,
                                    service.config().loaderValues))
                        mismatches.fetch_add(
                            1, std::memory_order_relaxed);
                    break;
                  }
                }
            }
            EXPECT_FALSE(conn.dead());
        });
    }
    for (auto &w : workers)
        w.join();

    EXPECT_EQ(mismatches.load(), 0u);
    EXPECT_EQ(service.requestsServed(),
              std::uint64_t(kThreads) * kOpsPerThread);
}

} // namespace
