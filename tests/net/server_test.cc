/**
 * @file
 * Socket-transport tests against a real KvServer on an ephemeral
 * 127.0.0.1 port: client round-trips, many concurrent clients on a
 * shared service, byte-at-a-time partial sends over a raw socket,
 * per-connection error isolation (garbage framing kills only the
 * offending connection), and graceful shutdown (stop() while clients
 * are connected; idempotent stop; restartability of a fresh server).
 * These run under the `server` ctest label and must pass under asan.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hh"
#include "net/loopback.hh"
#include "net/protocol.hh"
#include "net/server.hh"
#include "net/service.hh"
#include "workloads/key_stream.hh"

using namespace adcache;
using namespace adcache::net;

namespace
{

KvServiceConfig
smallService(bool read_through = false)
{
    KvServiceConfig c;
    c.cache.capacity = 1024;
    c.cache.numShards = 2;
    c.cache.numBuckets = 128;
    c.cache.bucketWays = 4;
    c.readThrough = read_through;
    c.loaderValues = ValueSpec{32, 64};
    return c;
}

/** Raw blocking client socket to 127.0.0.1:@p port (-1 on failure). */
int
rawConnect(std::uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    int rc;
    do {
        rc = ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr));
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
rawSendAll(int fd, std::string_view bytes)
{
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n =
            ::send(fd, bytes.data() + off, bytes.size() - off, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += std::size_t(n);
    }
    return true;
}

/** Read frames off @p fd until one full response arrives. */
bool
rawReadResponse(int fd, Message *out)
{
    FrameReader reader;
    std::string body;
    char buf[4096];
    for (;;) {
        switch (reader.next(&body)) {
          case FrameReader::Status::Frame:
            return decodeBody(body, out);
          case FrameReader::Status::Corrupt:
            return false;
          case FrameReader::Status::NeedMore:
            break;
        }
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false; // EOF mid-response
        reader.feed(std::string_view(buf, std::size_t(n)));
    }
}

class ServerTest : public ::testing::Test
{
  protected:
    void
    startServer(bool read_through = false, unsigned workers = 2)
    {
        service_ =
            std::make_unique<KvService>(smallService(read_through));
        KvServerConfig cfg;
        cfg.workers = workers;
        server_ = std::make_unique<KvServer>(*service_, cfg);
        ASSERT_TRUE(server_->start()) << server_->lastError();
        ASSERT_NE(server_->port(), 0);
    }

    void
    TearDown() override
    {
        if (server_)
            server_->stop();
    }

    std::unique_ptr<KvService> service_;
    std::unique_ptr<KvServer> server_;
};

TEST_F(ServerTest, ClientRoundTrip)
{
    startServer();
    KvClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server_->port()))
        << client.lastError();

    EXPECT_TRUE(client.ping());
    EXPECT_FALSE(client.get(1).has_value());
    EXPECT_TRUE(client.put(1, "over the wire"));
    const auto got = client.get(1);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, "over the wire");
    EXPECT_TRUE(client.del(1));
    EXPECT_FALSE(client.del(1));
    const std::string stats = client.stats();
    EXPECT_NE(stats.find("net.requests"), std::string::npos);
    client.close();
    EXPECT_GE(server_->connectionsAccepted(), 1u);
}

TEST_F(ServerTest, ManyConcurrentClients)
{
    startServer(/*read_through=*/true, /*workers=*/3);
    constexpr unsigned kClients = 8;
    constexpr int kOpsPerClient = 500;
    std::vector<std::thread> threads;
    std::atomic<std::uint64_t> failures{0};
    threads.reserve(kClients);
    for (unsigned c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
            KvClient client;
            if (!client.connect("127.0.0.1", server_->port())) {
                failures.fetch_add(1);
                return;
            }
            for (int i = 0; i < kOpsPerClient; ++i) {
                const std::uint64_t key =
                    (c * kOpsPerClient + i) % 256;
                // Read-through get: the response must be the
                // key-derived backend value, from any thread.
                const auto got = client.get(key);
                if (!got.has_value() ||
                    *got != valueFor(
                                key,
                                service_->config().loaderValues))
                    failures.fetch_add(1,
                                       std::memory_order_relaxed);
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(failures.load(), 0u);
    EXPECT_GE(server_->connectionsAccepted(), kClients);
    EXPECT_GE(service_->requestsServed(),
              std::uint64_t(kClients) * kOpsPerClient);
}

TEST_F(ServerTest, ByteAtATimePartialSends)
{
    // Dribble a request one byte at a time over a raw socket: the
    // server's partial-read path must reassemble it exactly.
    startServer();
    const int fd = rawConnect(server_->port());
    ASSERT_GE(fd, 0);

    const std::string put =
        encodedFrame(Message::put(77, "dribbled", 0));
    for (char b : put) {
        ASSERT_TRUE(rawSendAll(fd, std::string_view(&b, 1)));
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    Message resp;
    ASSERT_TRUE(rawReadResponse(fd, &resp));
    EXPECT_EQ(resp.kind, MsgKind::Ok);

    const std::string get = encodedFrame(Message::get(77));
    ASSERT_TRUE(rawSendAll(fd, get.substr(0, 3)));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ASSERT_TRUE(rawSendAll(fd, get.substr(3)));
    ASSERT_TRUE(rawReadResponse(fd, &resp));
    EXPECT_EQ(resp.kind, MsgKind::Value);
    EXPECT_EQ(resp.payload, "dribbled");
    ::close(fd);
}

TEST_F(ServerTest, GarbageFramingKillsOnlyThatConnection)
{
    startServer();
    KvClient healthy;
    ASSERT_TRUE(healthy.connect("127.0.0.1", server_->port()));
    ASSERT_TRUE(healthy.put(1, "survives"));

    // A second connection sends an impossible length prefix; the
    // server must close it (recv sees EOF) without disturbing the
    // healthy one.
    const int bad = rawConnect(server_->port());
    ASSERT_GE(bad, 0);
    ASSERT_TRUE(rawSendAll(bad, "\xff\xff\xff\xff junk"));
    char buf[64];
    ssize_t n;
    do {
        n = ::recv(bad, buf, sizeof(buf), 0);
    } while (n < 0 && errno == EINTR);
    EXPECT_EQ(n, 0) << "server should close the corrupt connection";
    ::close(bad);

    const auto got = healthy.get(1);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, "survives");
}

TEST_F(ServerTest, MalformedBodyGetsErrorConnectionSurvives)
{
    startServer();
    const int fd = rawConnect(server_->port());
    ASSERT_GE(fd, 0);

    // Well-framed Get with a short key: request-fatal only.
    std::string body(1, '\x01');
    body += "xy";
    std::string frame;
    frame.push_back(char(body.size()));
    frame.append(3, '\0');
    frame += body;
    ASSERT_TRUE(rawSendAll(fd, frame));
    Message resp;
    ASSERT_TRUE(rawReadResponse(fd, &resp));
    EXPECT_EQ(resp.kind, MsgKind::Error);

    // Same socket keeps working.
    ASSERT_TRUE(rawSendAll(fd, encodedFrame(Message::ping())));
    ASSERT_TRUE(rawReadResponse(fd, &resp));
    EXPECT_EQ(resp.kind, MsgKind::Ok);
    ::close(fd);
}

TEST_F(ServerTest, GracefulShutdownWithLiveClients)
{
    startServer();
    KvClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server_->port()));
    ASSERT_TRUE(client.put(1, "x"));

    server_->stop();
    EXPECT_FALSE(server_->running());
    server_->stop(); // idempotent

    // The client's next call fails cleanly (closed socket), not by
    // hanging.
    client.get(1);
    EXPECT_FALSE(client.connected());

    // And the port is genuinely released: a fresh server can start.
    KvService service2(smallService());
    KvServer server2(service2, KvServerConfig{});
    ASSERT_TRUE(server2.start()) << server2.lastError();
    KvClient again;
    EXPECT_TRUE(again.connect("127.0.0.1", server2.port()));
    EXPECT_TRUE(again.ping());
    server2.stop();
}

TEST_F(ServerTest, PipelinedSendManyMatchesSerialCalls)
{
    // The same mixed request program through sendMany (one gathered
    // write, responses in order) and through one-at-a-time call()s
    // on a second connection must answer identically — and both must
    // match the loopback transport, the socket server's oracle.
    startServer();
    std::vector<Message> requests;
    for (std::uint64_t k = 0; k < 24; ++k)
        requests.push_back(
            Message::put(k, "v" + std::to_string(k)));
    for (std::uint64_t k = 0; k < 24; ++k)
        requests.push_back(Message::get(k * 2)); // half miss
    requests.push_back(Message::mget({1, 2, 3, 99}));
    requests.push_back(Message::ping());

    KvClient pipelined;
    ASSERT_TRUE(pipelined.connect("127.0.0.1", server_->port()));
    std::vector<Message> piped;
    ASSERT_EQ(pipelined.sendMany(requests, &piped),
              requests.size());

    KvClient serial;
    ASSERT_TRUE(serial.connect("127.0.0.1", server_->port()));
    LoopbackConnection loop(*service_);
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const Message s = serial.call(requests[i]);
        const Message l = loop.call(requests[i]);
        EXPECT_EQ(piped[i].kind, s.kind) << "request " << i;
        EXPECT_EQ(piped[i].payload, s.payload) << "request " << i;
        EXPECT_EQ(piped[i].kind, l.kind) << "request " << i;
        EXPECT_EQ(piped[i].payload, l.payload) << "request " << i;
        ASSERT_EQ(piped[i].entries.size(), l.entries.size());
        for (std::size_t e = 0; e < piped[i].entries.size(); ++e) {
            EXPECT_EQ(piped[i].entries[e].status,
                      l.entries[e].status);
            EXPECT_EQ(piped[i].entries[e].value,
                      l.entries[e].value);
        }
    }
}

TEST_F(ServerTest, MGetOverTheWire)
{
    startServer(/*read_through=*/true);
    KvClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server_->port()));
    const std::vector<std::uint64_t> keys = {5, 6, 7, 8};
    const auto got = client.mget(keys);
    ASSERT_EQ(got.size(), keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
        ASSERT_TRUE(got[i].has_value());
        EXPECT_EQ(*got[i],
                  valueFor(keys[i],
                           service_->config().loaderValues));
    }
}

TEST_F(ServerTest, BackpressuredFlushDeliversEverything)
{
    // Short-write injection: a client with a tiny receive buffer
    // pipelines many large-value reads and only starts reading after
    // the whole burst is sent. The server's flush hits EAGAIN, parks
    // the tail in the per-connection output buffer, and drains it
    // under POLLOUT — every response must still arrive, in order.
    startServer();
    KvClient writer;
    ASSERT_TRUE(writer.connect("127.0.0.1", server_->port()));
    const std::string big(8 * 1024, 'B');
    ASSERT_TRUE(writer.put(42, big));

    const int fd = rawConnect(server_->port());
    ASSERT_GE(fd, 0);
    {
        const int tiny = 4096;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &tiny,
                     sizeof tiny);
    }
    constexpr int kRequests = 128; // ~1MB of responses
    std::string burst;
    for (int i = 0; i < kRequests; ++i)
        encodeFrame(Message::get(42), &burst);
    ASSERT_TRUE(rawSendAll(fd, burst));
    // Let the server read the burst and jam against the socket.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    // One FrameReader across the whole stream: a recv can deliver
    // bytes of several frames, and none may be dropped.
    FrameReader reader;
    std::string body;
    char buf[4096];
    int seen = 0;
    while (seen < kRequests) {
        switch (reader.next(&body)) {
          case FrameReader::Status::Frame: {
            Message resp;
            ASSERT_TRUE(decodeBody(body, &resp));
            ASSERT_EQ(resp.kind, MsgKind::Value)
                << "response " << seen;
            EXPECT_EQ(resp.payload, big) << "response " << seen;
            ++seen;
            continue;
          }
          case FrameReader::Status::Corrupt:
            FAIL() << "corrupt framing at response " << seen;
          case FrameReader::Status::NeedMore:
            break;
        }
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR)
            continue;
        ASSERT_GT(n, 0) << "EOF/error at response " << seen;
        reader.feed(std::string_view(buf, std::size_t(n)));
    }
    ::close(fd);
}

TEST_F(ServerTest, PeerHangupMidFlushKillsOnlyThatConnection)
{
    // A peer that pipelines a burst and vanishes without reading
    // forces the flush into EPIPE/ECONNRESET territory. With one
    // worker, that same thread must keep serving other connections.
    startServer(/*read_through=*/false, /*workers=*/1);
    KvClient writer;
    ASSERT_TRUE(writer.connect("127.0.0.1", server_->port()));
    const std::string big(8 * 1024, 'B');
    ASSERT_TRUE(writer.put(42, big));

    const int fd = rawConnect(server_->port());
    ASSERT_GE(fd, 0);
    {
        const int tiny = 4096;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &tiny,
                     sizeof tiny);
        // RST on close, so the server's flush errors rather than
        // quietly draining into a closed-but-lingering socket.
        struct linger lg{1, 0};
        ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
    }
    std::string burst;
    for (int i = 0; i < 128; ++i)
        encodeFrame(Message::get(42), &burst);
    ASSERT_TRUE(rawSendAll(fd, burst));
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ::close(fd); // vanish mid-flush

    // The lone worker survives and keeps serving.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    for (int i = 0; i < 5; ++i) {
        const auto got = writer.get(42);
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, big);
    }
    KvClient fresh;
    ASSERT_TRUE(fresh.connect("127.0.0.1", server_->port()));
    EXPECT_TRUE(fresh.ping());
}

TEST_F(ServerTest, EofMidFrameClosesTheConnection)
{
    startServer();
    const int fd = rawConnect(server_->port());
    ASSERT_GE(fd, 0);
    const std::string frame = encodedFrame(Message::get(1));
    // Send half a frame, then disappear.
    ASSERT_TRUE(rawSendAll(fd, frame.substr(0, frame.size() / 2)));
    ::close(fd);

    // The server must absorb that without harm: a new client works.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    KvClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server_->port()));
    EXPECT_TRUE(client.ping());
}

} // namespace
