/**
 * @file
 * Wire-protocol unit tests: frame encoding goldens (exact byte
 * layout, so accidental format changes fail loudly), body
 * round-trips for every message kind, FrameReader reassembly under
 * arbitrary chunking, and the rejection contract — oversized or
 * truncated frames are connection-fatal, undecodable bodies are not
 * (that tier lives in the channel, tested in loopback_test).
 */

#include <gtest/gtest.h>

#include <string>

#include "net/protocol.hh"

using namespace adcache::net;

namespace
{

TEST(Protocol, GetFrameGolden)
{
    // [len=9 LE][kind=1][key=0x0102030405060708 LE]
    const std::string frame =
        encodedFrame(Message::get(0x0102030405060708ULL));
    const std::string expected{
        '\x09', '\x00', '\x00', '\x00', // length
        '\x01',                         // MsgKind::Get
        '\x08', '\x07', '\x06', '\x05', // key, little-endian
        '\x04', '\x03', '\x02', '\x01',
    };
    EXPECT_EQ(frame, expected);
}

TEST(Protocol, PutFrameGolden)
{
    // [len][kind=2][key LE][ttl LE][payload]
    const std::string frame =
        encodedFrame(Message::put(7, "ab", /*ttl=*/5));
    const std::string expected{
        '\x0f', '\x00', '\x00', '\x00', // length = 1 + 8 + 4 + 2
        '\x02',                         // MsgKind::Put
        '\x07', '\x00', '\x00', '\x00', '\x00', '\x00', '\x00',
        '\x00',                         // key
        '\x05', '\x00', '\x00', '\x00', // ttl
        'a',    'b',
    };
    EXPECT_EQ(frame, expected);
}

TEST(Protocol, EveryKindRoundTrips)
{
    const Message cases[] = {
        Message::get(42),
        Message::put(7, "value bytes", 123),
        Message::put(0, "", 0),
        Message::del(99),
        Message::ping(),
        Message::stats(),
        Message::ok(),
        Message::value("payload"),
        Message::value(""),
        Message::notFound(),
        Message::error("oops"),
    };
    for (const Message &m : cases) {
        const std::string frame = encodedFrame(m);
        FrameReader reader;
        reader.feed(frame);
        std::string body;
        ASSERT_EQ(reader.next(&body), FrameReader::Status::Frame)
            << "kind " << unsigned(m.kind);
        Message back;
        ASSERT_TRUE(decodeBody(body, &back))
            << "kind " << unsigned(m.kind);
        EXPECT_EQ(back.kind, m.kind);
        EXPECT_EQ(back.key, m.key);
        EXPECT_EQ(back.ttl, m.ttl);
        EXPECT_EQ(back.payload, m.payload);
        EXPECT_EQ(reader.next(&body),
                  FrameReader::Status::NeedMore);
    }
}

TEST(Protocol, ReaderReassemblesByteAtATime)
{
    const std::string frame =
        encodedFrame(Message::put(11, "split across reads", 0));
    FrameReader reader;
    std::string body;
    for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
        reader.feed(std::string_view(&frame[i], 1));
        ASSERT_EQ(reader.next(&body),
                  FrameReader::Status::NeedMore)
            << "completed early at byte " << i;
    }
    reader.feed(std::string_view(&frame[frame.size() - 1], 1));
    ASSERT_EQ(reader.next(&body), FrameReader::Status::Frame);
    Message back;
    ASSERT_TRUE(decodeBody(body, &back));
    EXPECT_EQ(back.payload, "split across reads");
}

TEST(Protocol, ReaderYieldsMultipleFramesFromOneFeed)
{
    std::string bytes = encodedFrame(Message::get(1));
    bytes += encodedFrame(Message::del(2));
    bytes += encodedFrame(Message::ping());
    FrameReader reader;
    reader.feed(bytes);
    std::string body;
    Message m;
    ASSERT_EQ(reader.next(&body), FrameReader::Status::Frame);
    ASSERT_TRUE(decodeBody(body, &m));
    EXPECT_EQ(m.kind, MsgKind::Get);
    ASSERT_EQ(reader.next(&body), FrameReader::Status::Frame);
    ASSERT_TRUE(decodeBody(body, &m));
    EXPECT_EQ(m.kind, MsgKind::Del);
    ASSERT_EQ(reader.next(&body), FrameReader::Status::Frame);
    ASSERT_TRUE(decodeBody(body, &m));
    EXPECT_EQ(m.kind, MsgKind::Ping);
    EXPECT_EQ(reader.next(&body), FrameReader::Status::NeedMore);
    EXPECT_EQ(reader.buffered(), 0u);
}

TEST(Protocol, OversizedLengthIsCorrupt)
{
    // Length prefix claims more than kMaxFrameBytes: fatal, and the
    // reader stays dead.
    const std::uint32_t huge = kMaxFrameBytes + 1;
    std::string bytes;
    bytes.push_back(char(huge & 0xff));
    bytes.push_back(char((huge >> 8) & 0xff));
    bytes.push_back(char((huge >> 16) & 0xff));
    bytes.push_back(char((huge >> 24) & 0xff));
    FrameReader reader;
    reader.feed(bytes);
    std::string body;
    EXPECT_EQ(reader.next(&body), FrameReader::Status::Corrupt);
    EXPECT_TRUE(reader.corrupt());
    reader.feed(encodedFrame(Message::ping()));
    EXPECT_EQ(reader.next(&body), FrameReader::Status::Corrupt);
}

TEST(Protocol, TruncatedFrameStaysIncomplete)
{
    // A partial frame never yields; buffered() exposes the leftover
    // bytes so transports can tell "clean EOF" from "died mid-frame".
    const std::string frame = encodedFrame(Message::get(5));
    FrameReader reader;
    reader.feed(frame.substr(0, frame.size() - 2));
    std::string body;
    EXPECT_EQ(reader.next(&body), FrameReader::Status::NeedMore);
    EXPECT_GT(reader.buffered(), 0u);
}

TEST(Protocol, UndecodableBodiesAreRejected)
{
    Message m;
    // Empty body.
    EXPECT_FALSE(decodeBody("", &m));
    // Unknown kind byte.
    EXPECT_FALSE(decodeBody(std::string(1, '\x7f'), &m));
    // Get with a short key.
    std::string short_get(1, '\x01');
    short_get += "abc";
    EXPECT_FALSE(decodeBody(short_get, &m));
    // Get with trailing garbage (fixed-size kinds are exact).
    std::string long_get(1, '\x01');
    long_get += std::string(9, 'x');
    EXPECT_FALSE(decodeBody(long_get, &m));
    // Put shorter than its fixed header.
    std::string short_put(1, '\x02');
    short_put += std::string(8, 'k');
    EXPECT_FALSE(decodeBody(short_put, &m));
    // Ping carrying a payload.
    std::string fat_ping(1, '\x04');
    fat_ping += "x";
    EXPECT_FALSE(decodeBody(fat_ping, &m));
}

TEST(Protocol, RequestKindPredicate)
{
    EXPECT_TRUE(isRequestKind(MsgKind::Get));
    EXPECT_TRUE(isRequestKind(MsgKind::Put));
    EXPECT_TRUE(isRequestKind(MsgKind::Del));
    EXPECT_TRUE(isRequestKind(MsgKind::Ping));
    EXPECT_TRUE(isRequestKind(MsgKind::Stats));
    EXPECT_TRUE(isRequestKind(MsgKind::MGet));
    EXPECT_FALSE(isRequestKind(MsgKind::Ok));
    EXPECT_FALSE(isRequestKind(MsgKind::Value));
    EXPECT_FALSE(isRequestKind(MsgKind::NotFound));
    EXPECT_FALSE(isRequestKind(MsgKind::Error));
    EXPECT_FALSE(isRequestKind(MsgKind::Values));
}

TEST(Protocol, MGetFrameGolden)
{
    // [len=13 LE][kind=6][count=2 LE][key0 LE][key1 LE]
    const std::string frame =
        encodedFrame(Message::mget({0x01, 0x0203}));
    const std::string expected{
        '\x15', '\x00', '\x00', '\x00', // length = 1 + 4 + 16
        '\x06',                         // MsgKind::MGet
        '\x02', '\x00', '\x00', '\x00', // count
        '\x01', '\x00', '\x00', '\x00', '\x00', '\x00', '\x00',
        '\x00',                         // key 0
        '\x03', '\x02', '\x00', '\x00', '\x00', '\x00', '\x00',
        '\x00',                         // key 1
    };
    EXPECT_EQ(frame, expected);
}

TEST(Protocol, MGetAndValuesRoundTrip)
{
    {
        const Message m = Message::mget({1, 2, 0xffffffffffffffffULL});
        const std::string frame = encodedFrame(m);
        FrameReader reader;
        reader.feed(frame);
        std::string body;
        ASSERT_EQ(reader.next(&body), FrameReader::Status::Frame);
        Message back;
        ASSERT_TRUE(decodeBody(body, &back));
        EXPECT_EQ(back.kind, MsgKind::MGet);
        EXPECT_EQ(back.keys, m.keys);
    }
    {
        std::vector<MGetEntry> entries(3);
        entries[0] = {MGetStatus::Found, "hello"};
        entries[1] = {MGetStatus::Miss, ""};
        entries[2] = {MGetStatus::Error, "shard down"};
        const std::string frame =
            encodedFrame(Message::values(entries));
        FrameReader reader;
        reader.feed(frame);
        std::string body;
        ASSERT_EQ(reader.next(&body), FrameReader::Status::Frame);
        Message back;
        ASSERT_TRUE(decodeBody(body, &back));
        EXPECT_EQ(back.kind, MsgKind::Values);
        ASSERT_EQ(back.entries.size(), 3u);
        EXPECT_EQ(back.entries[0].status, MGetStatus::Found);
        EXPECT_EQ(back.entries[0].value, "hello");
        EXPECT_EQ(back.entries[1].status, MGetStatus::Miss);
        EXPECT_EQ(back.entries[2].status, MGetStatus::Error);
        EXPECT_EQ(back.entries[2].value, "shard down");
    }
    // Empty batches are legal in both directions.
    {
        const std::string frame = encodedFrame(Message::mget({}));
        FrameReader reader;
        reader.feed(frame);
        std::string body;
        ASSERT_EQ(reader.next(&body), FrameReader::Status::Frame);
        Message back;
        ASSERT_TRUE(decodeBody(body, &back));
        EXPECT_EQ(back.kind, MsgKind::MGet);
        EXPECT_TRUE(back.keys.empty());
    }
}

TEST(Protocol, MGetBodyRejections)
{
    Message m;
    // Count larger than the keys actually present.
    std::string short_keys(1, '\x06');
    short_keys += std::string("\x02\x00\x00\x00", 4); // count = 2
    short_keys += std::string(8, '\0');               // one key only
    EXPECT_FALSE(decodeBody(short_keys, &m));

    // Trailing bytes beyond count * 8.
    std::string fat(1, '\x06');
    fat += std::string("\x01\x00\x00\x00", 4);
    fat += std::string(8, '\0');
    fat += "x";
    EXPECT_FALSE(decodeBody(fat, &m));

    // Count beyond kMaxMGetKeys is rejected before any allocation.
    std::string huge(1, '\x06');
    const std::uint32_t over = kMaxMGetKeys + 1;
    huge.push_back(char(over & 0xff));
    huge.push_back(char((over >> 8) & 0xff));
    huge.push_back(char((over >> 16) & 0xff));
    huge.push_back(char((over >> 24) & 0xff));
    EXPECT_FALSE(decodeBody(huge, &m));

    // Truncated header: kind byte + partial count.
    EXPECT_FALSE(decodeBody(std::string("\x06\x01", 2), &m));
}

TEST(Protocol, ValuesBodyRejections)
{
    Message m;
    const std::string good =
        encodedFrame(Message::values({{MGetStatus::Found, "ab"}}));
    // Strip the 4-byte length prefix to get the body.
    std::string body = good.substr(4);
    ASSERT_TRUE(decodeBody(body, &m));

    // Entry value length pointing past the end of the body. The
    // body is [kind][count u32][status][len u32]["ab"]; index 9 is
    // the high byte of len.
    std::string overrun = body;
    overrun[9] = '\x7f';
    EXPECT_FALSE(decodeBody(overrun, &m));

    // Unknown status byte.
    std::string bad_status = body;
    bad_status[5] = '\x03'; // first entry's status
    EXPECT_FALSE(decodeBody(bad_status, &m));

    // Trailing bytes after the last entry.
    std::string fat = body;
    // Count says 1 entry; append a stray byte.
    fat += "z";
    EXPECT_FALSE(decodeBody(fat, &m));
}

} // namespace
