/**
 * @file
 * Stats-v2 tests: codec round trip (incl. unknown-tag preservation
 * and truncation rejection), the versioned Stats request dispatch —
 * empty body stays byte-golden v1 text, 0x02 answers the structured
 * blob, out-of-range versions are request-fatal only — and the
 * service-level sample set kv_top renders (per-shard winner/flips,
 * opcode counters, latency percentiles, provider extension rows).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "net/loopback.hh"
#include "net/service.hh"
#include "net/stats_v2.hh"

using namespace adcache;
using namespace adcache::net;

namespace
{

KvServiceConfig
smallConfig()
{
    KvServiceConfig config;
    config.cache.capacity = 1024;
    config.cache.numShards = 2;
    config.readThrough = false;
    return config;
}

std::uint64_t
valueOf(const std::vector<StatSample> &samples, StatTag tag,
        std::uint16_t shard = kStatsGlobalShard)
{
    for (const StatSample &s : samples)
        if (s.tag == tag && s.shard == shard)
            return s.value;
    ADD_FAILURE() << "missing tag " << statTagName(tag) << " shard "
                  << shard;
    return 0;
}

bool
hasTag(const std::vector<StatSample> &samples, StatTag tag,
       std::uint16_t shard)
{
    for (const StatSample &s : samples)
        if (s.tag == tag && s.shard == shard)
            return true;
    return false;
}

} // namespace

TEST(StatsV2Codec, RoundTripsSamplesVerbatim)
{
    const std::vector<StatSample> in{
        {StatTag::ShardCount, kStatsGlobalShard, 4},
        {StatTag::Hits, 0, 123},
        {StatTag::Hits, 3, 0},
        {StatTag::Winner, 2, 1},
        {StatTag::BytesOut, kStatsGlobalShard,
         0xFFFF'FFFF'FFFF'FFFFull},
    };
    const std::string blob = encodeStatsV2(4, in);

    std::uint16_t shards = 0;
    std::vector<StatSample> out;
    ASSERT_TRUE(decodeStatsV2(blob, &shards, &out));
    EXPECT_EQ(shards, 4);
    EXPECT_EQ(out, in);
}

TEST(StatsV2Codec, PreservesUnknownTags)
{
    // A tag from the future: decoders must carry it, not drop it.
    const std::vector<StatSample> in{
        {StatTag(999), 7, 42},
    };
    std::uint16_t shards = 0;
    std::vector<StatSample> out;
    ASSERT_TRUE(decodeStatsV2(encodeStatsV2(1, in), &shards, &out));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(std::uint16_t(out[0].tag), 999);
    EXPECT_EQ(out[0].value, 42u);
    EXPECT_STREQ(statTagName(out[0].tag), "?");
}

TEST(StatsV2Codec, RejectsWrongVersionAndTruncation)
{
    const std::string blob = encodeStatsV2(
        1, {{StatTag::Hits, kStatsGlobalShard, 1}});
    std::uint16_t shards = 0;
    std::vector<StatSample> out;

    std::string wrong = blob;
    wrong[0] = 3;
    EXPECT_FALSE(decodeStatsV2(wrong, &shards, &out));

    EXPECT_FALSE(decodeStatsV2(
        std::string_view(blob).substr(0, blob.size() - 1), &shards,
        &out));
    EXPECT_FALSE(decodeStatsV2(blob + "x", &shards, &out));
    EXPECT_FALSE(decodeStatsV2("", &shards, &out));
}

TEST(StatsV2Service, CarriesTheServingPicture)
{
    KvService service(smallConfig());
    LoopbackConnection conn(service);
    ASSERT_TRUE(conn.put(1, "a"));
    ASSERT_TRUE(conn.put(2, "bb"));
    EXPECT_TRUE(conn.get(1).has_value());
    EXPECT_FALSE(conn.get(3).has_value());
    conn.ping();

    std::uint16_t shards = 0;
    std::vector<StatSample> samples;
    ASSERT_TRUE(conn.stats2(&shards, &samples));
    EXPECT_EQ(shards, 2);

    EXPECT_EQ(valueOf(samples, StatTag::ShardCount), 2u);
    EXPECT_EQ(valueOf(samples, StatTag::Capacity), 1024u);
    EXPECT_EQ(valueOf(samples, StatTag::Size), 2u);
    EXPECT_EQ(valueOf(samples, StatTag::Gets), 2u);
    EXPECT_EQ(valueOf(samples, StatTag::GetHits), 1u);
    // Requests: 2 puts + 2 gets + ping + this stats2 itself.
    EXPECT_EQ(valueOf(samples, StatTag::Requests), 6u);
    EXPECT_EQ(valueOf(samples, StatTag::Errors), 0u);
    EXPECT_EQ(valueOf(samples, StatTag::OpGet), 2u);
    EXPECT_EQ(valueOf(samples, StatTag::OpPut), 2u);
    EXPECT_EQ(valueOf(samples, StatTag::OpPing), 1u);
    EXPECT_EQ(valueOf(samples, StatTag::OpStats), 1u);
    // Latency histogram saw every request.
    EXPECT_GT(valueOf(samples, StatTag::RequestP99Ns), 0u);

    // Per-shard rows exist for every shard, winner included.
    for (std::uint16_t s = 0; s < shards; ++s) {
        EXPECT_TRUE(hasTag(samples, StatTag::Winner, s));
        EXPECT_TRUE(hasTag(samples, StatTag::SelectionFlips, s));
        EXPECT_TRUE(hasTag(samples, StatTag::DiffMisses, s));
        EXPECT_TRUE(hasTag(samples, StatTag::HitRatePpm, s));
    }
    // Per-shard sizes sum to the global size.
    EXPECT_EQ(valueOf(samples, StatTag::Size, 0) +
                  valueOf(samples, StatTag::Size, 1),
              valueOf(samples, StatTag::Size));

    // Trace-plane health rides along.
    EXPECT_TRUE(hasTag(samples, StatTag::TraceCompiled,
                       kStatsGlobalShard));
    EXPECT_TRUE(hasTag(samples, StatTag::TraceEnabled,
                       kStatsGlobalShard));
}

TEST(StatsV2Service, ProvidersExtendTheSampleSet)
{
    KvService service(smallConfig());
    service.addStatsProvider([](std::vector<StatSample> &samples) {
        samples.push_back(
            {StatTag::Connections, kStatsGlobalShard, 17});
    });
    LoopbackConnection conn(service);
    std::uint16_t shards = 0;
    std::vector<StatSample> samples;
    ASSERT_TRUE(conn.stats2(&shards, &samples));
    EXPECT_EQ(valueOf(samples, StatTag::Connections), 17u);
}

TEST(StatsV2Service, UnsupportedVersionIsRequestFatalOnly)
{
    KvService service(smallConfig());
    LoopbackConnection conn(service);

    Message request = Message::stats();
    request.statsVersion = 9; // from the future
    const Message response = conn.call(request);
    EXPECT_EQ(response.kind, MsgKind::Error);

    // The connection (and the service) survive it.
    EXPECT_FALSE(conn.dead());
    EXPECT_TRUE(conn.ping());
    EXPECT_EQ(service.errorsAnswered(), 1u);
}

TEST(StatsV1, TextPathStaysByteGolden)
{
    KvService service(smallConfig());
    LoopbackConnection conn(service);
    ASSERT_TRUE(conn.put(1, "a"));
    ASSERT_TRUE(conn.put(2, "bb"));
    EXPECT_TRUE(conn.get(1).has_value());
    EXPECT_FALSE(conn.get(3).has_value());
    conn.ping();

    const std::string text = conn.stats();

    // Run metadata leads, but its values are build/time dependent:
    // assert presence + position, then compare the payload exactly.
    std::istringstream in(text);
    std::string line;
    std::size_t metaLines = 0;
    std::string payload;
    bool inMeta = true;
    while (std::getline(in, line)) {
        if (inMeta && line.rfind("run.", 0) == 0) {
            ++metaLines;
            continue;
        }
        inMeta = false;
        EXPECT_NE(line.rfind("run.", 0), 0u)
            << "run.* after payload: " << line;
        payload += line;
        payload += '\n';
    }
    EXPECT_GE(metaLines, 4u); // timestamp, sha, build type, ...

    const std::string golden = "kv.shard00.references 1\n"
                               "kv.shard00.hits 0\n"
                               "kv.shard00.misses 1\n"
                               "kv.shard00.gets 0\n"
                               "kv.shard00.get_hits 0\n"
                               "kv.shard00.inserts 1\n"
                               "kv.shard00.updates 0\n"
                               "kv.shard00.evictions 0\n"
                               "kv.shard00.directed_evictions 0\n"
                               "kv.shard00.fallback_evictions 0\n"
                               "kv.shard00.rejected_puts 0\n"
                               "kv.shard00.erases 0\n"
                               "kv.shard00.expirations 0\n"
                               "kv.shard00.read_retries 0\n"
                               "kv.shard00.slow_probes 0\n"
                               "kv.shard00.diff_misses 0\n"
                               "kv.shard00.decisions.lru 0\n"
                               "kv.shard00.shadow.lru.misses 0\n"
                               "kv.shard00.decisions.lfu 0\n"
                               "kv.shard00.shadow.lfu.misses 0\n"
                               "kv.shard00.selection_flips 0\n"
                               "kv.shard00.size 1\n"
                               "kv.shard00.pinned 0\n"
                               "kv.shard00.hit_rate 0\n"
                               "kv.shard01.references 1\n"
                               "kv.shard01.hits 0\n"
                               "kv.shard01.misses 1\n"
                               "kv.shard01.gets 2\n"
                               "kv.shard01.get_hits 1\n"
                               "kv.shard01.inserts 1\n"
                               "kv.shard01.updates 0\n"
                               "kv.shard01.evictions 0\n"
                               "kv.shard01.directed_evictions 0\n"
                               "kv.shard01.fallback_evictions 0\n"
                               "kv.shard01.rejected_puts 0\n"
                               "kv.shard01.erases 0\n"
                               "kv.shard01.expirations 0\n"
                               "kv.shard01.read_retries 0\n"
                               "kv.shard01.slow_probes 0\n"
                               "kv.shard01.diff_misses 0\n"
                               "kv.shard01.decisions.lru 0\n"
                               "kv.shard01.shadow.lru.misses 1\n"
                               "kv.shard01.decisions.lfu 0\n"
                               "kv.shard01.shadow.lfu.misses 1\n"
                               "kv.shard01.selection_flips 0\n"
                               "kv.shard01.size 1\n"
                               "kv.shard01.pinned 0\n"
                               "kv.shard01.hit_rate 0.333333\n"
                               "kv.references 2\n"
                               "kv.hits 0\n"
                               "kv.misses 2\n"
                               "kv.gets 2\n"
                               "kv.get_hits 1\n"
                               "kv.inserts 2\n"
                               "kv.updates 0\n"
                               "kv.evictions 0\n"
                               "kv.directed_evictions 0\n"
                               "kv.fallback_evictions 0\n"
                               "kv.rejected_puts 0\n"
                               "kv.erases 0\n"
                               "kv.expirations 0\n"
                               "kv.read_retries 0\n"
                               "kv.slow_probes 0\n"
                               "kv.diff_misses 0\n"
                               "kv.decisions.lru 0\n"
                               "kv.shadow.lru.misses 1\n"
                               "kv.decisions.lfu 0\n"
                               "kv.shadow.lfu.misses 1\n"
                               "kv.selection_flips 0\n"
                               "kv.size 2\n"
                               "kv.pinned 0\n"
                               "kv.capacity 1024\n"
                               "kv.hit_rate 0.25\n"
                               "net.requests 6\n"
                               "net.errors 0\n"
                               "net.op.get 2\n"
                               "net.op.put 2\n"
                               "net.op.del 0\n"
                               "net.op.ping 1\n"
                               "net.op.stats 1\n"
                               "net.op.mget 0\n";
    EXPECT_EQ(payload, golden);
}

TEST(StatsV1, EmptyBodyRequestEncodesExactlyAsBefore)
{
    // The pre-v2 Stats request was kind byte + empty body; the
    // version byte must only appear when a version is asked for.
    const std::string v1 = encodedFrame(Message::stats());
    const std::string v2 = encodedFrame(Message::stats2());
    EXPECT_EQ(v1.size() + 1, v2.size());
    Message decoded;
    ASSERT_TRUE(decodeBody(
        std::string_view(v1).substr(4), &decoded));
    EXPECT_EQ(decoded.kind, MsgKind::Stats);
    EXPECT_EQ(decoded.statsVersion, 1);
    ASSERT_TRUE(decodeBody(
        std::string_view(v2).substr(4), &decoded));
    EXPECT_EQ(decoded.statsVersion, 2);
}

TEST(SlowRequestLog, FiresPastTheBudgetWithOpAndDuration)
{
    KvServiceConfig config = smallConfig();
    config.slowRequestBudgetNs = 1; // everything is "slow"
    std::vector<std::string> lines;
    config.logSink = [&lines](const std::string &line) {
        lines.push_back(line);
    };
    KvService service(config);
    LoopbackConnection conn(service);
    conn.put(1, "a");
    ASSERT_FALSE(lines.empty());
    EXPECT_NE(lines[0].find("slow_request op=put"),
              std::string::npos)
        << lines[0];
    EXPECT_NE(lines[0].find("dur_us="), std::string::npos);
    EXPECT_NE(lines[0].find("budget_us="), std::string::npos);
}

TEST(SlowRequestLog, SilentUnderBudget)
{
    KvServiceConfig config = smallConfig();
    config.slowRequestBudgetNs = 60ull * 1000 * 1000 * 1000;
    std::vector<std::string> lines;
    config.logSink = [&lines](const std::string &line) {
        lines.push_back(line);
    };
    KvService service(config);
    LoopbackConnection conn(service);
    conn.put(1, "a");
    conn.get(1);
    EXPECT_TRUE(lines.empty());
}

TEST(OpCounters, TrackEveryRequestKind)
{
    KvService service(smallConfig());
    LoopbackConnection conn(service);
    conn.put(1, "a");
    conn.get(1);
    conn.get(1);
    conn.del(1);
    conn.ping();
    conn.mget({1, 2});
    EXPECT_EQ(service.opCount(MsgKind::Put), 1u);
    EXPECT_EQ(service.opCount(MsgKind::Get), 2u);
    EXPECT_EQ(service.opCount(MsgKind::Del), 1u);
    EXPECT_EQ(service.opCount(MsgKind::Ping), 1u);
    EXPECT_EQ(service.opCount(MsgKind::MGet), 1u);
    EXPECT_EQ(service.opCount(MsgKind::Stats), 0u);
}
