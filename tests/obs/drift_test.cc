/**
 * @file
 * DriftMonitor + TelemetryPump tests with synthetic flip storms:
 * warmup suppression, edge-triggered crossings, cooldown latching,
 * idle-period EWMA freezing, and the pump loop end to end —
 * driftSampler deltas in, kv_drift log lines + registry gauges out.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/drift.hh"
#include "obs/metrics.hh"
#include "obs/pump.hh"

using namespace adcache::obs;

namespace
{

DriftConfig
fastConfig()
{
    DriftConfig config;
    config.alpha = 0.5;
    config.flipRateThreshold = 1e-2; // one flip per 100 ops
    config.diffMissRateThreshold = 1e-1;
    config.warmupSamples = 2;
    config.cooldownSamples = 3;
    return config;
}

} // namespace

TEST(DriftMonitor, WarmupSuppressesEarlyStorms)
{
    DriftMonitor monitor(fastConfig());
    // A violent flip storm from the first period: rate 0.5 per op,
    // 50x the threshold — but the shard is not warm yet.
    DriftVerdict v = monitor.sample(0, 500, 0, 1000);
    EXPECT_FALSE(v.flipDrift);
    v = monitor.sample(0, 500, 0, 1000);
    EXPECT_FALSE(v.flipDrift);
    // Warm now (warmupSamples = 2 observed): third period fires.
    v = monitor.sample(0, 500, 0, 1000);
    EXPECT_TRUE(v.flipDrift);
    EXPECT_GT(v.flipEwma, 0.4);
}

TEST(DriftMonitor, CooldownLatchesRepeatCrossings)
{
    DriftMonitor monitor(fastConfig());
    for (int i = 0; i < 3; ++i)
        monitor.sample(0, 100, 0, 1000); // warm up + first fire
    // Still above threshold: latched for cooldownSamples periods.
    EXPECT_FALSE(monitor.sample(0, 100, 0, 1000).flipDrift);
    EXPECT_FALSE(monitor.sample(0, 100, 0, 1000).flipDrift);
    EXPECT_FALSE(monitor.sample(0, 100, 0, 1000).flipDrift);
    // Cooldown expired and the rate is still high: fresh crossing.
    EXPECT_TRUE(monitor.sample(0, 100, 0, 1000).flipDrift);
}

TEST(DriftMonitor, QuietShardsNeverFire)
{
    DriftMonitor monitor(fastConfig());
    for (int i = 0; i < 20; ++i) {
        const DriftVerdict v = monitor.sample(0, 0, 0, 1000);
        EXPECT_FALSE(v.flipDrift);
        EXPECT_FALSE(v.diffMissDrift);
        EXPECT_EQ(v.flipEwma, 0.0);
    }
}

TEST(DriftMonitor, IdlePeriodsLeaveTheEwmaUntouched)
{
    DriftMonitor monitor(fastConfig());
    monitor.sample(0, 100, 0, 1000);
    const double ewma = monitor.sample(0, 100, 0, 1000).flipEwma;
    EXPECT_GT(ewma, 0.0);
    // No ops at all: unobserved, not calm — EWMA must not decay.
    const DriftVerdict idle = monitor.sample(0, 0, 0, 0);
    EXPECT_EQ(idle.flipEwma, ewma);
}

TEST(DriftMonitor, StormDecaysAfterTheWorkloadSettles)
{
    DriftMonitor monitor(fastConfig());
    for (int i = 0; i < 4; ++i)
        monitor.sample(0, 200, 0, 1000);
    double ewma = monitor.sample(0, 200, 0, 1000).flipEwma;
    // Settled workload: flips stop, EWMA halves each period
    // (alpha = 0.5) until it is below threshold again.
    for (int i = 0; i < 6; ++i) {
        const DriftVerdict v = monitor.sample(0, 0, 0, 1000);
        EXPECT_LT(v.flipEwma, ewma);
        ewma = v.flipEwma;
    }
    EXPECT_LT(ewma, fastConfig().flipRateThreshold);
}

TEST(DriftMonitor, SignalsAreIndependentPerShard)
{
    DriftMonitor monitor(fastConfig());
    for (int i = 0; i < 3; ++i) {
        // Shard 0 storms flips; shard 1 storms diff-misses.
        const DriftVerdict v0 = monitor.sample(0, 100, 0, 1000);
        const DriftVerdict v1 = monitor.sample(1, 0, 500, 1000);
        if (i == 2) {
            EXPECT_TRUE(v0.flipDrift);
            EXPECT_FALSE(v0.diffMissDrift);
            EXPECT_TRUE(v1.diffMissDrift);
            EXPECT_FALSE(v1.flipDrift);
        }
    }
}

TEST(TelemetryPump, TurnsCumulativeCountersIntoCrossings)
{
    MetricsRegistry reg;
    std::vector<std::string> lines;
    std::uint64_t flips = 0;
    std::uint64_t ops = 0;

    TelemetryPumpConfig config;
    config.drift = fastConfig();
    config.metrics = &reg;
    config.logSink = [&lines](const std::string &line) {
        lines.push_back(line);
    };
    // Cumulative counters, as a live cache would expose them.
    config.driftSampler = [&]() {
        std::vector<DriftShardSample> out(1);
        out[0].flips = flips;
        out[0].diffMisses = 0;
        out[0].ops = ops;
        return out;
    };
    TelemetryPump pump(std::move(config));

    // Baseline tick, then a sustained storm: +100 flips per +1000
    // ops each period.
    for (int i = 0; i < 4; ++i) {
        flips += 100;
        ops += 1000;
        pump.tickOnce();
    }
    EXPECT_EQ(pump.periods(), 4u);
    ASSERT_GE(pump.driftEvents(), 1u);
    ASSERT_FALSE(lines.empty());
    EXPECT_NE(lines[0].find("kv_drift shard=0"),
              std::string::npos);
    EXPECT_NE(lines[0].find("signal=winner_flips"),
              std::string::npos);

    // The EWMA gauge and crossing counter landed in the registry.
    const MetricsSnapshot snap = reg.scrape();
    const MetricSample *gauge = snap.find(
        "adcache_kv_drift_flip_ewma", "shard", "0");
    ASSERT_NE(gauge, nullptr);
    EXPECT_GT(gauge->value, 0.0);
    const MetricSample *events =
        snap.find("adcache_kv_drift_events_total", "", "");
    ASSERT_NE(events, nullptr);
    EXPECT_GE(events->value, 1.0);
}

TEST(TelemetryPump, QuietSamplersProduceNoEvents)
{
    TelemetryPumpConfig config;
    config.drift = fastConfig();
    std::vector<std::string> lines;
    config.logSink = [&lines](const std::string &line) {
        lines.push_back(line);
    };
    config.driftSampler = [] {
        return std::vector<DriftShardSample>(2);
    };
    TelemetryPump pump(std::move(config));
    for (int i = 0; i < 10; ++i)
        pump.tickOnce();
    EXPECT_EQ(pump.periods(), 10u);
    EXPECT_EQ(pump.driftEvents(), 0u);
    EXPECT_TRUE(lines.empty());
}

TEST(TelemetryPump, StartStopIsIdempotentAndTicks)
{
    TelemetryPumpConfig config;
    config.period = std::chrono::milliseconds(5);
    config.driftSampler = [] {
        return std::vector<DriftShardSample>(1);
    };
    TelemetryPump pump(std::move(config));
    pump.start();
    pump.start();
    // The thread ticks on its own cadence; just verify liveness.
    for (int spins = 0; spins < 400 && pump.periods() == 0; ++spins)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_GT(pump.periods(), 0u);
    pump.stop();
    pump.stop();
}
