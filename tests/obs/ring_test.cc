#include "obs/ring.hh"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace adcache::obs
{
namespace
{

TraceEvent
event(std::uint64_t t)
{
    return diffMissEvent(t, unsigned(t % 64), 0b01);
}

TEST(EventRing, CapacityRoundsUpToPowerOfTwo)
{
    // Minimum capacity is 2 (a 1-slot ring cannot distinguish empty
    // from full); below-minimum requests trip the assert instead.
    EXPECT_EQ(EventRing(2).capacity(), 2u);
    EXPECT_EQ(EventRing(5).capacity(), 8u);
    EXPECT_EQ(EventRing(64).capacity(), 64u);
    EXPECT_EQ(EventRing(65).capacity(), 128u);
}

TEST(EventRing, FifoOrder)
{
    EventRing ring(8);
    for (std::uint64_t t = 0; t < 5; ++t)
        EXPECT_TRUE(ring.tryPush(event(t)));
    EXPECT_EQ(ring.size(), 5u);

    std::vector<TraceEvent> out;
    EXPECT_EQ(ring.drain(out), 5u);
    ASSERT_EQ(out.size(), 5u);
    for (std::uint64_t t = 0; t < 5; ++t)
        EXPECT_EQ(out[t].t, t);
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_EQ(ring.dropped(), 0u);
}

TEST(EventRing, DrainAppends)
{
    EventRing ring(4);
    std::vector<TraceEvent> out;
    ring.tryPush(event(1));
    ring.drain(out);
    ring.tryPush(event(2));
    ring.drain(out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].t, 1u);
    EXPECT_EQ(out[1].t, 2u);
}

TEST(EventRing, WraparoundKeepsOrderAcrossManyCycles)
{
    EventRing ring(4); // indices wrap many times over 100 events
    std::vector<TraceEvent> out;
    std::uint64_t t = 0;
    for (unsigned cycle = 0; cycle < 25; ++cycle) {
        for (unsigned i = 0; i < 4; ++i)
            EXPECT_TRUE(ring.tryPush(event(t++)));
        ring.drain(out);
    }
    ASSERT_EQ(out.size(), 100u);
    for (std::uint64_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i].t, i);
    EXPECT_EQ(ring.dropped(), 0u);
}

TEST(EventRing, FullRingDropsAndCountsNeverOverwrites)
{
    EventRing ring(4);
    for (std::uint64_t t = 0; t < 4; ++t)
        EXPECT_TRUE(ring.tryPush(event(t)));
    // Ring is full: pushes fail, old events must survive untouched.
    EXPECT_FALSE(ring.tryPush(event(100)));
    EXPECT_FALSE(ring.tryPush(event(101)));
    EXPECT_EQ(ring.dropped(), 2u);

    std::vector<TraceEvent> out;
    EXPECT_EQ(ring.drain(out), 4u);
    for (std::uint64_t t = 0; t < 4; ++t)
        EXPECT_EQ(out[t].t, t);

    // Space freed: pushes work again and the drop count is sticky.
    EXPECT_TRUE(ring.tryPush(event(200)));
    EXPECT_EQ(ring.dropped(), 2u);
}

// One producer, one consumer, live interleaving. Run under TSan
// (preset asan/tsan) this validates the acquire/release protocol;
// everywhere it validates that nothing is lost or reordered.
TEST(EventRing, SpscInterleavedProducerConsumer)
{
    constexpr std::uint64_t kEvents = 100'000;
    EventRing ring(64);
    std::vector<TraceEvent> got;
    std::uint64_t pushed = 0;

    std::thread producer([&] {
        for (std::uint64_t t = 0; t < kEvents; ++t)
            if (ring.tryPush(event(t)))
                ++pushed;
    });

    // Consume until the producer is done and the ring is empty.
    std::atomic<bool> done{false};
    std::thread consumer([&] {
        while (!done.load(std::memory_order_acquire) ||
               ring.size() > 0)
            ring.drain(got);
    });
    producer.join();
    done.store(true, std::memory_order_release);
    consumer.join();

    EXPECT_EQ(got.size(), pushed);
    EXPECT_EQ(pushed + ring.dropped(), kEvents);
    EXPECT_GT(pushed, 0u);
    // Delivered events keep the producer's order (t monotone).
    for (std::size_t i = 1; i < got.size(); ++i)
        EXPECT_LT(got[i - 1].t, got[i].t);
}

} // namespace
} // namespace adcache::obs
