#include "obs/export.hh"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace adcache::obs
{
namespace
{

TEST(JsonEscape, EscapesControlAndQuoteCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

// Byte-exact golden: every event kind renders with its own field
// names, header line first. If this changes, downstream consumers
// of the JSONL stream break — update docs/OBSERVABILITY.md too.
TEST(EventsToJsonl, GoldenCoversEveryKind)
{
    const std::vector<TraceEvent> events = {
        diffMissEvent(5, 3, 0b01),
        winnerFlipEvent(6, 3, 0, 1),
        evictionEvent(7, 3, 1, EvictCase::VictimMatch, 0xABC),
        shadowEvictEvent(8, 4, 1, 0xFF),
        sbarPselEvent(9, 512, 0, 1),
        kvEvictionEvent(10, 2, 0, EvictCase::AliasingFallback, 0x10),
        kvWinnerFlipEvent(11, 2, 1, 0),
        kvAdmitRejectEvent(12, 2, 1, 0x2F),
    };
    const MetaPairs meta = {{"session", "unit"}};

    const std::string expected =
        "{\"kind\":\"header\",\"events\":8,\"dropped\":2,"
        "\"session\":\"unit\"}\n"
        "{\"kind\":\"diff_miss\",\"t\":5,\"set\":3,\"miss_mask\":1}\n"
        "{\"kind\":\"winner_flip\",\"t\":6,\"set\":3,\"from\":0,"
        "\"to\":1}\n"
        "{\"kind\":\"eviction\",\"t\":7,\"set\":3,\"winner\":1,"
        "\"case\":\"victim_match\",\"victim_tag\":\"0xabc\"}\n"
        "{\"kind\":\"shadow_evict\",\"t\":8,\"set\":4,"
        "\"component\":1,\"victim_tag\":\"0xff\"}\n"
        "{\"kind\":\"sbar_psel_cross\",\"t\":9,\"psel\":512,"
        "\"from\":0,\"to\":1}\n"
        "{\"kind\":\"kv_eviction\",\"t\":10,\"shard\":2,"
        "\"winner\":0,\"case\":\"aliasing_fallback\","
        "\"key\":\"0x10\"}\n"
        "{\"kind\":\"kv_winner_flip\",\"t\":11,\"shard\":2,"
        "\"from\":1,\"to\":0}\n"
        "{\"kind\":\"kv_admit_reject\",\"t\":12,\"shard\":2,"
        "\"winner\":1,\"key\":\"0x2f\"}\n";

    EXPECT_EQ(eventsToJsonl(events, meta, 2), expected);
}

TEST(EventsToJsonl, EmptyStreamIsJustTheHeader)
{
    EXPECT_EQ(eventsToJsonl({}, {}, 0),
              "{\"kind\":\"header\",\"events\":0,\"dropped\":0}\n");
}

// Byte-exact golden for the Chrome trace_event document: timestamps
// in microseconds with 3 decimals, relative to the earliest span.
TEST(SpansToChromeTrace, GoldenRelativeMicroseconds)
{
    const std::vector<Span> spans = {
        {"grid/a", 0, 1'000, 2'500},
        {"grid/b", 1, 1'500, 4'000},
    };
    const std::string expected =
        "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
        "{\"name\":\"grid/a\",\"cat\":\"job\",\"ph\":\"X\","
        "\"ts\":0.000,\"dur\":1.500,\"pid\":1,\"tid\":0},\n"
        "{\"name\":\"grid/b\",\"cat\":\"job\",\"ph\":\"X\","
        "\"ts\":0.500,\"dur\":2.500,\"pid\":1,\"tid\":1}\n"
        "]}\n";
    EXPECT_EQ(spansToChromeTrace(spans), expected);
}

TEST(SpansToChromeTrace, EmptyDocumentIsStillLoadable)
{
    EXPECT_EQ(spansToChromeTrace({}),
              "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n]}\n");
}

TEST(WriteFile, RoundTripsAndReportsFailure)
{
    const std::string path =
        ::testing::TempDir() + "obs_export_test.txt";
    EXPECT_TRUE(writeFile(path, "hello\n"));
    std::ifstream in(path);
    std::stringstream content;
    content << in.rdbuf();
    EXPECT_EQ(content.str(), "hello\n");

    // Unwritable destination: returns false, never throws.
    EXPECT_FALSE(writeFile("/nonexistent-dir/x/y.txt", "x"));
}

} // namespace
} // namespace adcache::obs
