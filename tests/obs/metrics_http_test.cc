/**
 * @file
 * MetricsHttpServer tests over real sockets: a Prometheus-style GET
 * /metrics scrape, /healthz, partial (byte-dribbled) requests, 404
 * on unknown paths, 400 on non-GET — all against an ephemeral-port
 * listener, raw write()/read() so no HTTP client library shapes the
 * bytes.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <string>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/metrics.hh"
#include "obs/metrics_http.hh"

using namespace adcache::obs;

namespace
{

int
connectTo(std::uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

void
writeAll(int fd, std::string_view bytes)
{
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n =
            ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n < 0 && errno == EINTR)
            continue;
        ASSERT_GT(n, 0);
        off += std::size_t(n);
    }
}

/** Read until the server closes (Connection: close semantics). */
std::string
readAll(int fd)
{
    std::string out;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof buf);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        out.append(buf, std::size_t(n));
    }
    return out;
}

std::string
roundTrip(std::uint16_t port, std::string_view request)
{
    const int fd = connectTo(port);
    EXPECT_GE(fd, 0);
    if (fd < 0)
        return {};
    writeAll(fd, request);
    const std::string response = readAll(fd);
    ::close(fd);
    return response;
}

} // namespace

TEST(MetricsHttp, ServesMetricsInExpositionFormat)
{
    MetricsRegistry reg;
    reg.counter("up_total", "Up").inc(3);
    MetricsHttpServer server(reg);
    ASSERT_TRUE(server.start()) << server.lastError();
    ASSERT_NE(server.port(), 0);

    const std::string response = roundTrip(
        server.port(), "GET /metrics HTTP/1.0\r\n\r\n");
    EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos)
        << response;
    EXPECT_NE(response.find(
                  "Content-Type: text/plain; version=0.0.4"),
              std::string::npos);
    EXPECT_NE(response.find("# TYPE up_total counter\n"),
              std::string::npos);
    EXPECT_NE(response.find("up_total 3\n"), std::string::npos);
    // Body length matches the Content-Length header's promise.
    const std::size_t split = response.find("\r\n\r\n");
    ASSERT_NE(split, std::string::npos);
    const std::string head = response.substr(0, split);
    const std::size_t cl = head.find("Content-Length: ");
    ASSERT_NE(cl, std::string::npos);
    EXPECT_EQ(std::stoul(head.substr(cl + 16)),
              response.size() - split - 4);
    server.stop();
}

TEST(MetricsHttp, HealthzAnswersOk)
{
    MetricsRegistry reg;
    MetricsHttpServer server(reg);
    ASSERT_TRUE(server.start()) << server.lastError();
    const std::string response =
        roundTrip(server.port(), "GET /healthz HTTP/1.0\r\n\r\n");
    EXPECT_NE(response.find("200 OK"), std::string::npos);
    EXPECT_NE(response.find("ok\n"), std::string::npos);
    server.stop();
    EXPECT_GE(server.requestsServed(), 1u);
}

TEST(MetricsHttp, ReassemblesPartialRequests)
{
    MetricsRegistry reg;
    reg.gauge("g_now", "G").set(9);
    MetricsHttpServer server(reg);
    ASSERT_TRUE(server.start()) << server.lastError();

    const int fd = connectTo(server.port());
    ASSERT_GE(fd, 0);
    const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
    // Dribble the request one byte at a time: the listener must
    // buffer until the blank line lands.
    for (const char ch : request) {
        writeAll(fd, std::string_view(&ch, 1));
        // A naive server would answer (or 400) a torn prefix.
    }
    const std::string response = readAll(fd);
    ::close(fd);
    EXPECT_NE(response.find("200 OK"), std::string::npos);
    EXPECT_NE(response.find("g_now 9\n"), std::string::npos);
    server.stop();
}

TEST(MetricsHttp, UnknownPathIs404)
{
    MetricsRegistry reg;
    MetricsHttpServer server(reg);
    ASSERT_TRUE(server.start()) << server.lastError();
    const std::string response = roundTrip(
        server.port(), "GET /favicon.ico HTTP/1.0\r\n\r\n");
    EXPECT_NE(response.find("404"), std::string::npos);
    server.stop();
}

TEST(MetricsHttp, NonGetIs400)
{
    MetricsRegistry reg;
    MetricsHttpServer server(reg);
    ASSERT_TRUE(server.start()) << server.lastError();
    const std::string response = roundTrip(
        server.port(),
        "POST /metrics HTTP/1.0\r\nContent-Length: 0\r\n\r\n");
    EXPECT_NE(response.find("400"), std::string::npos);
    server.stop();
}

TEST(MetricsHttp, ScrapeSeesLiveCollectorValues)
{
    MetricsRegistry reg;
    std::uint64_t sampled = 100;
    reg.addCollector([&sampled](MetricsSink &sink) {
        sink.counter("live_total", {}, double(sampled));
    });
    MetricsHttpServer server(reg);
    ASSERT_TRUE(server.start()) << server.lastError();

    std::string response = roundTrip(
        server.port(), "GET /metrics HTTP/1.0\r\n\r\n");
    EXPECT_NE(response.find("live_total 100\n"),
              std::string::npos);
    sampled = 250;
    response = roundTrip(server.port(),
                         "GET /metrics HTTP/1.0\r\n\r\n");
    EXPECT_NE(response.find("live_total 250\n"),
              std::string::npos);
    server.stop();
}
