/**
 * @file
 * MetricsRegistry tests: handle semantics (counters, gauges,
 * histograms, label sets), scrape-time collectors, the Prometheus
 * text exposition (family ordering, HELP/TYPE announcement, label
 * escaping, bucket cumulativity), and the concurrency contract —
 * any number of threads incrementing through handles while another
 * thread scrapes (the TSan tier of the obstel label).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hh"
#include "obs/trace.hh"

using namespace adcache::obs;

namespace
{

const MetricSample *
find(const MetricsSnapshot &snap, const std::string &name,
     const MetricLabels &labels = {})
{
    for (const MetricSample &s : snap.samples)
        if (s.name == name && s.labels == labels)
            return &s;
    return nullptr;
}

} // namespace

TEST(Metrics, CounterAccumulatesAcrossHandlesAndThreads)
{
    MetricsRegistry reg;
    Counter c = reg.counter("requests_total", "Requests");
    c.inc();
    c.inc(4);

    // Re-registering the same (name, labels) yields the same family.
    Counter same = reg.counter("requests_total", "Requests");
    same.inc(5);

    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([&c] {
            for (int i = 0; i < 1000; ++i)
                c.inc();
        });
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(c.value(), 10u + 4000u);
    const MetricsSnapshot snap = reg.scrape();
    const MetricSample *s = find(snap, "requests_total");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->value, 4010.0);
}

TEST(Metrics, DefaultConstructedHandlesAreInert)
{
    Counter c;
    Gauge g;
    HistogramHandle h;
    EXPECT_FALSE(c.attached());
    c.inc();
    g.set(5);
    h.observe(100);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0.0);
}

TEST(Metrics, LabelSetsAreDistinctFamilies)
{
    MetricsRegistry reg;
    Counter a = reg.counter("ops_total", "Ops", {{"op", "get"}});
    Counter b = reg.counter("ops_total", "Ops", {{"op", "put"}});
    a.inc(3);
    b.inc(7);

    const MetricsSnapshot snap = reg.scrape();
    const MetricSample *ga = find(snap, "ops_total", {{"op", "get"}});
    const MetricSample *gb = find(snap, "ops_total", {{"op", "put"}});
    ASSERT_NE(ga, nullptr);
    ASSERT_NE(gb, nullptr);
    EXPECT_EQ(ga->value, 3.0);
    EXPECT_EQ(gb->value, 7.0);
}

TEST(Metrics, GaugeIsLastWriterWins)
{
    MetricsRegistry reg;
    Gauge g = reg.gauge("temperature", "Now");
    g.set(1.5);
    g.set(-3.25);
    EXPECT_EQ(g.value(), -3.25);
    const MetricsSnapshot snap = reg.scrape();
    const MetricSample *s = find(snap, "temperature");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->value, -3.25);
}

TEST(Metrics, HistogramBucketsCountAndSum)
{
    MetricsRegistry reg;
    HistogramHandle h = reg.histogram("lat_ns", "Latency");
    // 1st bucket boundary is 2^kHistLoBit; observe below, inside,
    // and beyond the top boundary (+Inf bucket).
    h.observe(1);                   // bucket 0
    h.observe(1ull << kHistLoBit);  // bucket 0 (le is inclusive)
    h.observe((1ull << kHistLoBit) + 1); // bucket 1
    h.observe(1ull << (kHistHiBit + 2)); // +Inf

    const MetricsSnapshot snap = reg.scrape();
    const MetricSample *s = find(snap, "lat_ns");
    ASSERT_NE(s, nullptr);
    ASSERT_EQ(s->buckets.size(), std::size_t(kHistBuckets) + 1);
    EXPECT_EQ(s->buckets[0], 2u);
    EXPECT_EQ(s->buckets[1], 1u);
    EXPECT_EQ(s->buckets[kHistBuckets], 1u); // +Inf
    EXPECT_EQ(s->count, 4u);
    EXPECT_EQ(s->sum, double(1 + (1ull << kHistLoBit) +
                             ((1ull << kHistLoBit) + 1) +
                             (1ull << (kHistHiBit + 2))));

    // Percentile estimate returns a bucket upper edge.
    EXPECT_GE(snap.percentileNs("lat_ns", 0.5),
              double(1ull << kHistLoBit));
}

TEST(Metrics, CollectorsRunAtScrapeTime)
{
    MetricsRegistry reg;
    int calls = 0;
    reg.addCollector([&calls](MetricsSink &sink) {
        ++calls;
        sink.counter("sampled_total", {}, 42.0, "Sampled");
        sink.gauge("sampled_now", {{"k", "v"}}, 7.0);
    });

    const MetricsSnapshot snap = reg.scrape();
    EXPECT_EQ(calls, 1);
    const MetricSample *c = find(snap, "sampled_total");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->value, 42.0);
    EXPECT_EQ(c->kind, MetricKind::Counter);
    const MetricSample *g =
        find(snap, "sampled_now", {{"k", "v"}});
    ASSERT_NE(g, nullptr);
    EXPECT_EQ(g->kind, MetricKind::Gauge);
}

TEST(Metrics, PrometheusExpositionGolden)
{
    MetricsRegistry reg;
    reg.counter("a_total", "First counter").inc(3);
    reg.gauge("b_now", "A gauge", {{"shard", "0"}}).set(1.5);
    reg.counter("a_total", "First counter", {{"op", "get"}}).inc();

    const std::string text = renderPrometheus(reg.scrape());
    const std::string expect =
        "# HELP a_total First counter\n"
        "# TYPE a_total counter\n"
        "a_total 3\n"
        "# HELP b_now A gauge\n"
        "# TYPE b_now gauge\n"
        "b_now{shard=\"0\"} 1.5\n"
        "a_total{op=\"get\"} 1\n";
    EXPECT_EQ(text, expect);
}

TEST(Metrics, PrometheusEscapesLabelValues)
{
    MetricsRegistry reg;
    reg.counter("esc_total", "Escapes",
                {{"path", "a\\b\"c\nd"}})
        .inc();
    const std::string text = renderPrometheus(reg.scrape());
    EXPECT_NE(
        text.find("esc_total{path=\"a\\\\b\\\"c\\nd\"} 1\n"),
        std::string::npos)
        << text;
}

TEST(Metrics, PrometheusHistogramBucketsAreCumulative)
{
    MetricsRegistry reg;
    HistogramHandle h = reg.histogram("h_ns", "H");
    h.observe(1);                        // first bucket
    h.observe((1ull << kHistLoBit) + 1); // second bucket
    h.observe(1ull << (kHistHiBit + 2)); // +Inf

    const std::string text = renderPrometheus(reg.scrape());
    // le="1024" sees 1, le="2048" sees 2 (cumulative), +Inf sees 3.
    EXPECT_NE(text.find("h_ns_bucket{le=\"1024\"} 1\n"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("h_ns_bucket{le=\"2048\"} 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("h_ns_bucket{le=\"+Inf\"} 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("h_ns_count 3\n"), std::string::npos);
    EXPECT_NE(text.find("h_ns_sum"), std::string::npos);
}

TEST(Metrics, ScrapeUnderConcurrentIncrementIsConsistent)
{
    MetricsRegistry reg;
    Counter c = reg.counter("torn_total", "Torn reads check");
    HistogramHandle h = reg.histogram("torn_ns", "Torn histogram");
    std::atomic<bool> stop{false};

    std::vector<std::thread> writers;
    for (int t = 0; t < 3; ++t)
        writers.emplace_back([&] {
            while (!stop.load(std::memory_order_relaxed)) {
                c.inc();
                h.observe(2000);
            }
        });

    std::uint64_t last = 0;
    for (int i = 0; i < 50; ++i) {
        const MetricsSnapshot snap = reg.scrape();
        const MetricSample *s = find(snap, "torn_total");
        ASSERT_NE(s, nullptr);
        // Monotone under concurrent increments: no torn/shrinking
        // reads across scrapes.
        EXPECT_GE(std::uint64_t(s->value), last);
        last = std::uint64_t(s->value);
        const MetricSample *hs = find(snap, "torn_ns");
        ASSERT_NE(hs, nullptr);
        std::uint64_t bucketTotal = 0;
        for (const std::uint64_t b : hs->buckets)
            bucketTotal += b;
        EXPECT_EQ(bucketTotal, hs->count);
    }
    stop.store(true, std::memory_order_relaxed);
    for (std::thread &t : writers)
        t.join();

    const MetricsSnapshot final_snap = reg.scrape();
    const MetricSample *s = find(final_snap, "torn_total");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(std::uint64_t(s->value), c.value());
}

TEST(Metrics, ThreadShardsOutliveTheirThreads)
{
    MetricsRegistry reg;
    Counter c = reg.counter("ghost_total", "From dead threads");
    std::thread([&c] { c.inc(11); }).join();
    std::thread([&c] { c.inc(31); }).join();
    EXPECT_EQ(c.value(), 42u);
}

TEST(Metrics, TwoRegistriesDoNotAlias)
{
    auto first = std::make_unique<MetricsRegistry>();
    Counter a = first->counter("x_total", "X");
    a.inc(5);
    first.reset(); // TLS entries for it become stale

    MetricsRegistry second;
    Counter b = second.counter("x_total", "X");
    b.inc(2);
    EXPECT_EQ(b.value(), 2u);
}

TEST(Metrics, KindMismatchAsserts)
{
    MetricsRegistry reg;
    reg.counter("dual", "As counter");
    EXPECT_DEATH((void)reg.gauge("dual", "As gauge"), "");
}

TEST(Metrics, TraceMetricsReportRingStateAndDrops)
{
    MetricsRegistry reg;
    registerTraceMetrics(reg);
    const MetricsSnapshot snap = reg.scrape();
    const MetricSample *compiled =
        find(snap, "adcache_trace_compiled");
    ASSERT_NE(compiled, nullptr);
    EXPECT_EQ(compiled->value, kTraceCompiled ? 1.0 : 0.0);
    ASSERT_NE(find(snap, "adcache_trace_enabled"), nullptr);
    // Per-ring drop counters appear once rings exist; the registry
    // call itself must not require any.
    for (const MetricSample &s : snap.samples)
        if (s.name == "adcache_trace_dropped_total")
            EXPECT_EQ(s.labels.at(0).first, "ring");
}
