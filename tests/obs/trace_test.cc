#include "obs/trace.hh"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace adcache::obs
{
namespace
{

/** Restores the trace facade to its pristine state around a test. */
class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        if (!kTraceCompiled)
            GTEST_SKIP() << "tracing compiled out";
        resetTrace();
        setTraceEnabled(false);
    }

    void
    TearDown() override
    {
        setTraceEnabled(false);
        setLatencyEnabled(false);
        setRingCapacity(1 << 16);
        resetTrace();
    }
};

TEST_F(TraceTest, GatesDefaultOffAndToggle)
{
    EXPECT_FALSE(traceEnabled());
    EXPECT_FALSE(latencyEnabled());
    setTraceEnabled(true);
    EXPECT_TRUE(traceEnabled());
    EXPECT_FALSE(latencyEnabled()); // independent gates
    setLatencyEnabled(true);
    EXPECT_TRUE(latencyEnabled());
    setTraceEnabled(false);
    EXPECT_FALSE(traceEnabled());
    EXPECT_TRUE(latencyEnabled());
}

TEST_F(TraceTest, EmitAndDrainSortedByLogicalTime)
{
    setTraceEnabled(true);
    // Emit out of logical order; drainAll must sort by t.
    emit(diffMissEvent(30, 1, 0b10));
    emit(diffMissEvent(10, 2, 0b01));
    emit(winnerFlipEvent(20, 3, 0, 1));

    const auto events = drainAll();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].t, 10u);
    EXPECT_EQ(events[1].t, 20u);
    EXPECT_EQ(events[2].t, 30u);
    EXPECT_EQ(events[1].kind, EventKind::WinnerFlip);

    // Draining consumes.
    EXPECT_TRUE(drainAll().empty());
}

TEST_F(TraceTest, RingCapacityBoundsBufferingAndCountsDrops)
{
    setRingCapacity(4);
    setTraceEnabled(true);
    for (std::uint64_t t = 0; t < 10; ++t)
        emit(diffMissEvent(t, 0, 0b01));
    const auto events = drainAll();
    EXPECT_EQ(events.size(), 4u);
    EXPECT_EQ(droppedTotal(), 6u);
    // The surviving events are the oldest, never overwritten.
    for (std::uint64_t t = 0; t < events.size(); ++t)
        EXPECT_EQ(events[t].t, t);
}

TEST_F(TraceTest, ResetForgetsEventsAndDrops)
{
    setRingCapacity(2);
    setTraceEnabled(true);
    for (std::uint64_t t = 0; t < 5; ++t)
        emit(diffMissEvent(t, 0, 0b01));
    EXPECT_GT(droppedTotal(), 0u);
    resetTrace();
    EXPECT_EQ(droppedTotal(), 0u);
    EXPECT_TRUE(drainAll().empty());
    // Emitting after a reset re-attaches the thread's ring.
    emit(diffMissEvent(7, 0, 0b01));
    EXPECT_EQ(drainAll().size(), 1u);
}

// Four producer threads interleaving with the gate live; under TSan
// this exercises ring attach, emit, and drain for races.
TEST_F(TraceTest, MultiThreadEmitCollectsEverything)
{
    constexpr unsigned kThreads = 4;
    constexpr std::uint64_t kPerThread = 1'000;
    setTraceEnabled(true);

    std::vector<std::thread> threads;
    for (unsigned w = 0; w < kThreads; ++w)
        threads.emplace_back([w] {
            for (std::uint64_t i = 0; i < kPerThread; ++i)
                emit(diffMissEvent(i, w, 0b01));
        });
    for (auto &t : threads)
        t.join();

    const auto events = drainAll();
    EXPECT_EQ(events.size() + droppedTotal(),
              kThreads * kPerThread);
    // Stable sort by t: per-set (= per-thread here) order survives.
    std::vector<std::uint64_t> last(kThreads, 0);
    for (const auto &ev : events) {
        ASSERT_LT(ev.a, kThreads);
        EXPECT_GE(ev.t, last[ev.a]);
        last[ev.a] = ev.t;
    }
}

TEST_F(TraceTest, SpansDrainOrderedByStart)
{
    setTraceEnabled(true);
    recordSpan({"late", 0, 2'000, 3'000});
    recordSpan({"early", 1, 1'000, 1'500});
    const auto spans = drainSpans();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0].name, "early");
    EXPECT_EQ(spans[1].name, "late");
    EXPECT_TRUE(drainSpans().empty());
}

TEST_F(TraceTest, ScopedSpanRecordsOnlyWhenEnabled)
{
    {
        ScopedSpan off("off");
    }
    EXPECT_TRUE(drainSpans().empty());

    setTraceEnabled(true);
    {
        ScopedSpan on("on");
    }
    const auto spans = drainSpans();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].name, "on");
    EXPECT_GE(spans[0].t1Ns, spans[0].t0Ns);
}

TEST_F(TraceTest, CurrentTidIsDenseAndStable)
{
    const std::uint32_t main_tid = currentTid();
    EXPECT_EQ(currentTid(), main_tid);
    std::uint32_t other = main_tid;
    std::thread([&] { other = currentTid(); }).join();
    EXPECT_NE(other, main_tid);
}

TEST_F(TraceTest, GateCostIsMeasurableAndTiny)
{
    const double ns = measureGateCostNs();
    EXPECT_GE(ns, 0.0);
    // A relaxed atomic load is single-digit ns on any machine this
    // runs on; 50ns would mean the gate is not the code we think.
    EXPECT_LT(ns, 50.0);
}

} // namespace
} // namespace adcache::obs
