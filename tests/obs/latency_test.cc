#include "obs/latency.hh"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/trace.hh"
#include "util/stat_registry.hh"

namespace adcache::obs
{
namespace
{

TEST(KvOpName, CanonicalNames)
{
    EXPECT_STREQ(kvOpName(KvOp::Get), "get");
    EXPECT_STREQ(kvOpName(KvOp::Fetch), "fetch");
    EXPECT_STREQ(kvOpName(KvOp::Put), "put");
}

TEST(LatencyHistogram, TracksExactExtremaAndMean)
{
    LatencyHistogram h;
    h.add(100);
    h.add(300);
    h.add(200);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sumNs(), 600u);
    EXPECT_EQ(h.minNs(), 100u);
    EXPECT_EQ(h.maxNs(), 300u);
    EXPECT_DOUBLE_EQ(h.meanNs(), 200.0);
}

TEST(LatencyHistogram, PercentileWithinLogBucketError)
{
    LatencyHistogram h;
    for (std::uint64_t ns = 1; ns <= 1'000; ++ns)
        h.add(ns);
    // Bucket upper edges overestimate by at most 12.5%.
    const double p50 = h.percentileNs(0.50);
    EXPECT_GE(p50, 500.0);
    EXPECT_LE(p50, 500.0 * 1.125);
    const double p99 = h.percentileNs(0.99);
    EXPECT_GE(p99, 990.0);
    EXPECT_LE(p99, 990.0 * 1.125);
}

TEST(LatencyHistogram, P999ExactCountSanity)
{
    // Exact-count check for the tail quantile: with 10'000 samples,
    // p999 must land at or above the 9'990th smallest sample and
    // within one log-bucket (12.5%) of it; p9999 likewise covers the
    // single largest sample.
    LatencyHistogram h;
    for (std::uint64_t ns = 1; ns <= 10'000; ++ns)
        h.add(ns);
    const double p999 = h.percentileNs(0.999);
    EXPECT_GE(p999, 9'990.0);
    EXPECT_LE(p999, 9'990.0 * 1.125);
    // The tail orders correctly and p=1 is the exact max.
    EXPECT_GE(p999, h.percentileNs(0.99));
    EXPECT_GE(h.percentileNs(1.0), 10'000.0);

    // One outlier in an otherwise tight distribution: p999 must see
    // it once the outlier crosses the 0.1% population threshold.
    LatencyHistogram spiky;
    for (int i = 0; i < 999; ++i)
        spiky.add(100);
    spiky.add(1'000'000); // sample 1000 of 1000 => rank 0.999
    EXPECT_GE(spiky.percentileNs(0.999), 100.0);
    EXPECT_GE(spiky.percentileNs(1.0), 1'000'000.0);
    EXPECT_EQ(spiky.maxNs(), 1'000'000u);
}

TEST(LatencyHistogram, RegisterIntoEmitsP999)
{
    LatencyHistogram h;
    for (std::uint64_t ns = 1; ns <= 10'000; ++ns)
        h.add(ns);
    StatRegistry reg;
    h.registerInto(reg, "lat.");
    EXPECT_GE(reg.numeric("lat.p999_ns"),
              reg.numeric("lat.p99_ns"));
    // p999 is a bucket upper edge, so it may overestimate the exact
    // max by at most one sub-bucket (12.5%).
    EXPECT_LE(reg.numeric("lat.p999_ns"),
              reg.numeric("lat.max_ns") * 1.125);
}

TEST(LatencyHistogram, MergeCombinesCountsAndExtrema)
{
    LatencyHistogram a, b, empty;
    a.add(10);
    a.add(20);
    b.add(5);
    b.add(40);

    a.merge(empty); // identity
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.minNs(), 10u);

    empty.merge(b); // empty side adopts the other's extrema
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_EQ(empty.minNs(), 5u);
    EXPECT_EQ(empty.maxNs(), 40u);

    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_EQ(a.minNs(), 5u);
    EXPECT_EQ(a.maxNs(), 40u);
    EXPECT_EQ(a.sumNs(), 75u);
}

TEST(LatencyHistogram, RegisterIntoEmitsPercentileStats)
{
    LatencyHistogram h;
    for (std::uint64_t ns = 1; ns <= 100; ++ns)
        h.add(ns);
    StatRegistry reg;
    h.registerInto(reg, "lat.get.");
    EXPECT_EQ(reg.numeric("lat.get.count"), 100.0);
    EXPECT_GT(reg.numeric("lat.get.p50_ns"), 0.0);
    EXPECT_GE(reg.numeric("lat.get.p99_ns"),
              reg.numeric("lat.get.p50_ns"));
    EXPECT_EQ(reg.numeric("lat.get.max_ns"), 100.0);

    // Empty histograms register nothing rather than zeros.
    StatRegistry empty_reg;
    LatencyHistogram().registerInto(empty_reg, "lat.put.");
    EXPECT_EQ(empty_reg.find("lat.put.count"), nullptr);
}

TEST(LatencyRecording, SnapshotMergesAcrossJoinedThreads)
{
    if (!kTraceCompiled)
        GTEST_SKIP() << "tracing compiled out";
    resetLatency();

    constexpr unsigned kThreads = 4;
    constexpr std::uint64_t kPerThread = 250;
    std::vector<std::thread> threads;
    for (unsigned w = 0; w < kThreads; ++w)
        threads.emplace_back([w] {
            for (std::uint64_t i = 1; i <= kPerThread; ++i)
                recordLatency(KvOp::Get, i * (w + 1));
        });
    for (auto &t : threads)
        t.join();
    recordLatency(KvOp::Put, 77);

    const LatencyHistogram get = latencySnapshot(KvOp::Get);
    EXPECT_EQ(get.count(), kThreads * kPerThread);
    EXPECT_EQ(get.minNs(), 1u);
    EXPECT_EQ(get.maxNs(), kPerThread * kThreads);

    const LatencyHistogram put = latencySnapshot(KvOp::Put);
    EXPECT_EQ(put.count(), 1u);
    EXPECT_EQ(put.minNs(), 77u);
    EXPECT_EQ(latencySnapshot(KvOp::Fetch).count(), 0u);

    resetLatency();
    EXPECT_EQ(latencySnapshot(KvOp::Get).count(), 0u);
}

} // namespace
} // namespace adcache::obs
