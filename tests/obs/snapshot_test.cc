#include "obs/snapshot.hh"

#include <gtest/gtest.h>

#include <cstdint>

#include "sim/report.hh"

namespace adcache::obs
{
namespace
{

TEST(SnapshotSeries, FiresAtExactBoundariesRegardlessOfTickGrain)
{
    std::uint64_t counter = 0;
    SnapshotSeries series(100, [&](StatRegistry &reg) {
        reg.counter("c", counter);
    });

    counter = 5;
    series.tick(50); // before the first boundary: nothing
    EXPECT_TRUE(series.rows().empty());

    counter = 12;
    series.tick(250); // one coarse tick crosses two boundaries
    ASSERT_EQ(series.rows().size(), 2u);
    EXPECT_EQ(series.rows()[0].at, 100u);
    EXPECT_EQ(series.rows()[1].at, 200u);
    EXPECT_EQ(series.rows()[0].index, 0u);
    EXPECT_EQ(series.rows()[1].index, 1u);
    EXPECT_FALSE(series.rows()[0].partial);
    // Both rows sampled the state at drain time (coarse ticking is
    // honest about its resolution: the sampler runs when tick runs).
    EXPECT_EQ(series.rows()[0].stats.numeric("c"), 12.0);

    counter = 40;
    series.tick(400);
    ASSERT_EQ(series.rows().size(), 4u);
    EXPECT_EQ(series.rows()[3].at, 400u);
}

TEST(SnapshotSeries, FinishEmitsPartialTailOnlyWhenPastLastBoundary)
{
    std::uint64_t counter = 0;
    SnapshotSeries exact(100, [&](StatRegistry &reg) {
        reg.counter("c", counter);
    });
    exact.tick(200);
    exact.finish(200); // now == last boundary: no partial row
    ASSERT_EQ(exact.rows().size(), 2u);
    EXPECT_FALSE(exact.rows().back().partial);

    SnapshotSeries tail(100, [&](StatRegistry &reg) {
        reg.counter("c", counter);
    });
    tail.finish(250); // fires 100, 200, then a partial row at 250
    ASSERT_EQ(tail.rows().size(), 3u);
    EXPECT_EQ(tail.rows()[2].at, 250u);
    EXPECT_TRUE(tail.rows()[2].partial);
}

TEST(SnapshotSeries, AppendToEmitsDeltasAndDerivedColumns)
{
    std::uint64_t misses = 0, wins = 0, total = 0;
    SnapshotSeries series(1'000, [&](StatRegistry &reg) {
        reg.counter("misses", misses);
        reg.counter("wins", wins);
        reg.counter("total", total);
        reg.text("label", "adaptive");
    });
    series.derive("mpki", SnapshotSeries::rate("misses", 1000.0));
    series.derive("win_share",
                  SnapshotSeries::share("wins", "total"));

    misses = 10;
    wins = 4;
    total = 8;
    series.tick(1'000);
    misses = 16; // +6 this interval
    wins = 5;    // +1 of +2 decisions
    total = 10;
    series.tick(2'000);

    ReportGrid grid;
    series.appendTo(grid, "ammp");
    EXPECT_EQ(grid.benchmarkHeader, "interval_end");
    ASSERT_EQ(grid.rows.size(), 2u);

    const ReportRow &r0 = grid.rows[0];
    EXPECT_EQ(r0.benchmark, "1000");
    EXPECT_EQ(r0.variant, "ammp");
    EXPECT_EQ(r0.stats.numeric("d_misses"), 10.0);
    EXPECT_EQ(r0.stats.numeric("mpki"), 10.0); // 10 * 1000 / 1000
    EXPECT_EQ(r0.stats.numeric("win_share"), 0.5);
    ASSERT_NE(r0.stats.find("label"), nullptr);
    EXPECT_EQ(r0.stats.find("label")->text, "adaptive");

    const ReportRow &r1 = grid.rows[1];
    EXPECT_EQ(r1.benchmark, "2000");
    EXPECT_EQ(r1.stats.numeric("d_misses"), 6.0);
    EXPECT_EQ(r1.stats.numeric("mpki"), 6.0);
    EXPECT_EQ(r1.stats.numeric("win_share"), 0.5); // 1 of 2
    EXPECT_EQ(r1.stats.find("partial"), nullptr);
}

TEST(SnapshotSeries, AppendToMarksPartialRows)
{
    std::uint64_t c = 0;
    SnapshotSeries series(100, [&](StatRegistry &reg) {
        reg.counter("c", c);
    });
    c = 3;
    series.finish(150);
    ReportGrid grid;
    series.appendTo(grid, "x");
    ASSERT_EQ(grid.rows.size(), 2u);
    EXPECT_EQ(grid.rows[1].benchmark, "150");
    ASSERT_NE(grid.rows[1].stats.find("partial"), nullptr);
    EXPECT_EQ(grid.rows[1].stats.find("partial")->text, "yes");
}

TEST(SnapshotSeries, RateAndShareGuardZeroDenominators)
{
    StatRegistry cur;
    cur.counter("n", 5);
    cur.counter("d", 0);
    EXPECT_EQ(SnapshotSeries::rate("n", 1.0)(cur, nullptr, 0), 0.0);
    EXPECT_EQ(SnapshotSeries::share("n", "d")(cur, nullptr, 100),
              0.0);
}

} // namespace
} // namespace adcache::obs
