/**
 * @file
 * Regression tests for the recoverable trace-read path: every way a
 * trace file can be malformed must surface as a TraceStatus, never
 * terminate the process, and preserve the records decoded before the
 * failure point.
 */

#include "trace/trace_io.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

namespace adcache
{
namespace
{

class TraceRecoverTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = (std::filesystem::temp_directory_path() /
                 ("adcache_trace_recover_" +
                  std::to_string(::getpid()) + ".trc"))
                    .string();
    }

    void TearDown() override { std::remove(path_.c_str()); }

    /** Overwrite the file with @p bytes verbatim. */
    void
    writeRaw(const std::vector<unsigned char> &bytes)
    {
        std::ofstream out(path_, std::ios::binary | std::ios::trunc);
        out.write(reinterpret_cast<const char *>(bytes.data()),
                  std::streamsize(bytes.size()));
    }

    /** Read the file back as raw bytes. */
    std::vector<unsigned char>
    readRaw()
    {
        std::ifstream in(path_, std::ios::binary);
        return std::vector<unsigned char>(
            std::istreambuf_iterator<char>(in), {});
    }

    std::vector<TraceInstr>
    sampleTrace(int n)
    {
        std::vector<TraceInstr> out;
        for (int i = 0; i < n; ++i) {
            TraceInstr instr;
            instr.pc = 0x1000 + 4u * unsigned(i);
            instr.cls = InstrClass::Load;
            instr.memAddr = 64ull * unsigned(i);
            out.push_back(instr);
        }
        return out;
    }

    std::string path_;
};

TEST_F(TraceRecoverTest, ValidFileReadsOk)
{
    ASSERT_TRUE(writeTrace(path_, sampleTrace(5)));
    std::vector<TraceInstr> out;
    EXPECT_EQ(tryReadTrace(path_, &out), TraceStatus::Ok);
    EXPECT_EQ(out.size(), 5u);
}

TEST_F(TraceRecoverTest, MissingFile)
{
    std::vector<TraceInstr> out;
    EXPECT_EQ(tryReadTrace(path_ + ".nope", &out),
              TraceStatus::OpenFailed);
    EXPECT_TRUE(out.empty());
}

TEST_F(TraceRecoverTest, TruncatedHeader)
{
    writeRaw({'A', 'D', 'C', 'T', 1, 0});
    std::vector<TraceInstr> out;
    EXPECT_EQ(tryReadTrace(path_, &out),
              TraceStatus::TruncatedHeader);
    EXPECT_TRUE(out.empty());
}

TEST_F(TraceRecoverTest, BadMagic)
{
    ASSERT_TRUE(writeTrace(path_, sampleTrace(2)));
    auto bytes = readRaw();
    bytes[0] = 'X';
    writeRaw(bytes);
    std::vector<TraceInstr> out;
    EXPECT_EQ(tryReadTrace(path_, &out), TraceStatus::BadMagic);
    EXPECT_TRUE(out.empty());
}

TEST_F(TraceRecoverTest, BadVersion)
{
    ASSERT_TRUE(writeTrace(path_, sampleTrace(2)));
    auto bytes = readRaw();
    bytes[4] = 0xEE; // version field, little-endian low byte
    writeRaw(bytes);
    std::vector<TraceInstr> out;
    EXPECT_EQ(tryReadTrace(path_, &out), TraceStatus::BadVersion);
}

TEST_F(TraceRecoverTest, TruncatedRecordKeepsPrefix)
{
    ASSERT_TRUE(writeTrace(path_, sampleTrace(3)));
    auto bytes = readRaw();
    bytes.resize(bytes.size() - 7); // clip into the last record
    writeRaw(bytes);
    std::vector<TraceInstr> out;
    EXPECT_EQ(tryReadTrace(path_, &out),
              TraceStatus::TruncatedRecord);
    EXPECT_EQ(out.size(), 2u);
    EXPECT_EQ(out[1].pc, 0x1004u);
}

TEST_F(TraceRecoverTest, CorruptRecordKeepsPrefix)
{
    ASSERT_TRUE(writeTrace(path_, sampleTrace(3)));
    auto bytes = readRaw();
    // Byte 24 of the second record is the instruction class.
    bytes[16 + 32 + 24] = 0xFF;
    writeRaw(bytes);
    std::vector<TraceInstr> out;
    EXPECT_EQ(tryReadTrace(path_, &out), TraceStatus::CorruptRecord);
    EXPECT_EQ(out.size(), 1u);
}

TEST_F(TraceRecoverTest, RecoverableSourceReportsStatus)
{
    ASSERT_TRUE(writeTrace(path_, sampleTrace(3)));
    auto bytes = readRaw();
    bytes.resize(bytes.size() - 1);
    writeRaw(bytes);

    TraceStatus status = TraceStatus::Ok;
    FileTraceSource src(path_, status);
    ASSERT_EQ(status, TraceStatus::Ok); // header itself is fine
    TraceInstr instr;
    std::size_t n = 0;
    while (src.next(instr))
        ++n;
    EXPECT_EQ(n, 2u);
    EXPECT_EQ(src.status(), TraceStatus::TruncatedRecord);
}

TEST_F(TraceRecoverTest, RecoverableSourceFailedOpenYieldsNothing)
{
    TraceStatus status = TraceStatus::Ok;
    FileTraceSource src(path_ + ".nope", status);
    EXPECT_EQ(status, TraceStatus::OpenFailed);
    TraceInstr instr;
    EXPECT_FALSE(src.next(instr));
    src.reset(); // must not crash on a never-opened file
    EXPECT_FALSE(src.next(instr));
}

TEST_F(TraceRecoverTest, ResetClearsRecordError)
{
    ASSERT_TRUE(writeTrace(path_, sampleTrace(2)));
    auto bytes = readRaw();
    bytes.resize(bytes.size() - 1);
    writeRaw(bytes);

    TraceStatus status = TraceStatus::Ok;
    FileTraceSource src(path_, status);
    TraceInstr instr;
    while (src.next(instr)) {
    }
    EXPECT_EQ(src.status(), TraceStatus::TruncatedRecord);
    src.reset();
    EXPECT_EQ(src.status(), TraceStatus::Ok);
    EXPECT_TRUE(src.next(instr)); // first record is intact again
}

TEST_F(TraceRecoverTest, StatusNamesAreStable)
{
    EXPECT_STREQ(traceStatusName(TraceStatus::Ok), "ok");
    EXPECT_STREQ(traceStatusName(TraceStatus::BadMagic), "bad magic");
    EXPECT_STREQ(traceStatusName(TraceStatus::CorruptRecord),
                 "corrupt record");
}

} // namespace
} // namespace adcache
