#include "trace/trace_io.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace adcache
{
namespace
{

class TraceIoTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = (std::filesystem::temp_directory_path() /
                 ("adcache_trace_io_" +
                  std::to_string(::getpid()) + ".trc"))
                    .string();
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
};

std::vector<TraceInstr>
sampleTrace()
{
    std::vector<TraceInstr> out;
    for (int i = 0; i < 17; ++i) {
        TraceInstr instr;
        instr.pc = 0x400000 + 4 * i;
        instr.cls = static_cast<InstrClass>(
            i % int(InstrClass::NumClasses));
        instr.memAddr = 0x10000000ull + 64 * i;
        instr.target = instr.pc + 32;
        instr.src1 = std::uint8_t(i);
        instr.src2 = std::uint8_t(63 - i);
        instr.dst = std::uint8_t(i * 2 % 64);
        instr.memSize = 8;
        instr.taken = (i % 3) == 0;
        out.push_back(instr);
    }
    return out;
}

TEST_F(TraceIoTest, RoundTrip)
{
    const auto original = sampleTrace();
    ASSERT_TRUE(writeTrace(path_, original));
    const auto loaded = readTrace(path_);
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(loaded[i].pc, original[i].pc);
        EXPECT_EQ(loaded[i].memAddr, original[i].memAddr);
        EXPECT_EQ(loaded[i].target, original[i].target);
        EXPECT_EQ(loaded[i].cls, original[i].cls);
        EXPECT_EQ(loaded[i].src1, original[i].src1);
        EXPECT_EQ(loaded[i].src2, original[i].src2);
        EXPECT_EQ(loaded[i].dst, original[i].dst);
        EXPECT_EQ(loaded[i].memSize, original[i].memSize);
        EXPECT_EQ(loaded[i].taken, original[i].taken);
    }
}

TEST_F(TraceIoTest, EmptyTrace)
{
    ASSERT_TRUE(writeTrace(path_, {}));
    EXPECT_TRUE(readTrace(path_).empty());
}

TEST_F(TraceIoTest, StreamingReaderMatchesBulk)
{
    const auto original = sampleTrace();
    ASSERT_TRUE(writeTrace(path_, original));
    FileTraceSource src(path_);
    EXPECT_EQ(src.recordCount(), original.size());
    TraceInstr instr;
    std::size_t n = 0;
    while (src.next(instr)) {
        ASSERT_LT(n, original.size());
        EXPECT_EQ(instr.pc, original[n].pc);
        ++n;
    }
    EXPECT_EQ(n, original.size());
}

TEST_F(TraceIoTest, StreamingReaderReset)
{
    ASSERT_TRUE(writeTrace(path_, sampleTrace()));
    FileTraceSource src(path_);
    TraceInstr instr;
    while (src.next(instr)) {
    }
    src.reset();
    std::size_t n = 0;
    while (src.next(instr))
        ++n;
    EXPECT_EQ(n, sampleTrace().size());
}

TEST_F(TraceIoTest, WriteToUnwritablePathFails)
{
    EXPECT_FALSE(writeTrace("/nonexistent-dir/x/y.trc", sampleTrace()));
}

TEST_F(TraceIoTest, LargeAddressesSurvive)
{
    TraceInstr instr;
    instr.pc = 0xFFFFFFFFFFFFULL;
    instr.memAddr = (std::uint64_t{1} << 39) | 0x3F;
    instr.cls = InstrClass::Store;
    ASSERT_TRUE(writeTrace(path_, {instr}));
    const auto loaded = readTrace(path_);
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_EQ(loaded[0].pc, instr.pc);
    EXPECT_EQ(loaded[0].memAddr, instr.memAddr);
}

} // namespace
} // namespace adcache
