#include "trace/source.hh"

#include <gtest/gtest.h>

namespace adcache
{
namespace
{

std::vector<TraceInstr>
threeInstrs()
{
    TraceInstr a, b, c;
    a.pc = 0x100;
    a.cls = InstrClass::IntAlu;
    b.pc = 0x104;
    b.cls = InstrClass::Load;
    b.memAddr = 0x2000;
    c.pc = 0x108;
    c.cls = InstrClass::Branch;
    c.taken = true;
    return {a, b, c};
}

TEST(VectorSource, ReplaysInOrder)
{
    VectorSource src(threeInstrs());
    TraceInstr instr;
    ASSERT_TRUE(src.next(instr));
    EXPECT_EQ(instr.pc, 0x100u);
    ASSERT_TRUE(src.next(instr));
    EXPECT_EQ(instr.pc, 0x104u);
    ASSERT_TRUE(src.next(instr));
    EXPECT_TRUE(instr.isBranch());
    EXPECT_FALSE(src.next(instr));
}

TEST(VectorSource, ResetRestarts)
{
    VectorSource src(threeInstrs());
    TraceInstr instr;
    while (src.next(instr)) {
    }
    src.reset();
    ASSERT_TRUE(src.next(instr));
    EXPECT_EQ(instr.pc, 0x100u);
}

TEST(LimitSource, CapsCount)
{
    auto inner = std::make_unique<VectorSource>(threeInstrs());
    LimitSource src(std::move(inner), 2);
    TraceInstr instr;
    EXPECT_TRUE(src.next(instr));
    EXPECT_TRUE(src.next(instr));
    EXPECT_FALSE(src.next(instr));
}

TEST(LimitSource, ResetResetsBudget)
{
    auto inner = std::make_unique<VectorSource>(threeInstrs());
    LimitSource src(std::move(inner), 1);
    TraceInstr instr;
    EXPECT_TRUE(src.next(instr));
    EXPECT_FALSE(src.next(instr));
    src.reset();
    EXPECT_TRUE(src.next(instr));
    EXPECT_EQ(instr.pc, 0x100u);
}

TEST(Drain, CollectsAll)
{
    VectorSource src(threeInstrs());
    auto all = drain(src);
    EXPECT_EQ(all.size(), 3u);
}

TEST(Drain, RespectsMax)
{
    VectorSource src(threeInstrs());
    auto some = drain(src, 2);
    EXPECT_EQ(some.size(), 2u);
}

TEST(Instr, Classification)
{
    TraceInstr instr;
    instr.cls = InstrClass::Load;
    EXPECT_TRUE(instr.isMem());
    EXPECT_TRUE(instr.isLoad());
    EXPECT_FALSE(instr.isStore());
    instr.cls = InstrClass::Store;
    EXPECT_TRUE(instr.isMem());
    EXPECT_TRUE(instr.isStore());
    instr.cls = InstrClass::FpAdd;
    EXPECT_FALSE(instr.isMem());
    EXPECT_FALSE(instr.isBranch());
}

TEST(Instr, ClassNames)
{
    EXPECT_STREQ(instrClassName(InstrClass::Load), "Load");
    EXPECT_STREQ(instrClassName(InstrClass::Branch), "Branch");
    EXPECT_STREQ(instrClassName(InstrClass::IntAlu), "IntAlu");
}

} // namespace
} // namespace adcache
