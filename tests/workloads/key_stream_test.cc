#include "workloads/key_stream.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

namespace adcache
{
namespace
{

std::vector<std::uint64_t>
drawMany(KeyStream &stream, std::size_t n)
{
    std::vector<std::uint64_t> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(stream.next());
    return out;
}

TEST(KeyStreamTest, SameSeedSameStream)
{
    KeyStreamSpec spec;
    spec.pattern = KeyPattern::Zipf;
    spec.keySpace = 4096;
    spec.seed = 42;
    KeyStream a(spec), b(spec);
    EXPECT_EQ(drawMany(a, 2000), drawMany(b, 2000));
}

TEST(KeyStreamTest, DifferentSeedsDiverge)
{
    KeyStreamSpec spec;
    spec.pattern = KeyPattern::Uniform;
    spec.keySpace = 1 << 16;
    spec.seed = 1;
    KeyStream a(spec);
    spec.seed = 2;
    KeyStream b(spec);
    EXPECT_NE(drawMany(a, 100), drawMany(b, 100));
}

TEST(KeyStreamTest, ResetReplaysExactly)
{
    KeyStreamSpec spec;
    spec.pattern = KeyPattern::PhaseFlip;
    spec.keySpace = 1024;
    spec.phasePeriod = 50;
    spec.driftEvery = 300;
    KeyStream stream(spec);
    const auto first = drawMany(stream, 1000);
    stream.reset();
    EXPECT_EQ(stream.position(), 0u);
    EXPECT_EQ(drawMany(stream, 1000), first);
}

TEST(KeyStreamTest, ZipfSkewFavorsLowRanks)
{
    KeyStreamSpec spec;
    spec.pattern = KeyPattern::Zipf;
    spec.keySpace = 1000;
    spec.skew = 1.0;
    spec.scramble = false; // rank r -> key r
    KeyStream stream(spec);
    std::map<std::uint64_t, unsigned> freq;
    for (int i = 0; i < 20000; ++i)
        ++freq[stream.next()];
    // Rank 0 must dominate any mid-popularity rank by a wide margin.
    EXPECT_GT(freq[0], 10 * freq[100]);
}

TEST(KeyStreamTest, ScanSweepsSequentiallyAndWraps)
{
    KeyStreamSpec spec;
    spec.pattern = KeyPattern::Scan;
    spec.keySpace = 1 << 20;
    spec.scanSpan = 8;
    spec.scramble = false;
    KeyStream stream(spec);
    const auto keys = drawMany(stream, 20);
    for (std::size_t i = 0; i < keys.size(); ++i)
        EXPECT_EQ(keys[i], i % 8) << "position " << i;
}

TEST(KeyStreamTest, PhaseFlipAlternatesRegimes)
{
    KeyStreamSpec spec;
    spec.pattern = KeyPattern::PhaseFlip;
    spec.keySpace = 1 << 16;
    spec.phasePeriod = 100;
    spec.scanSpan = 16;
    spec.scramble = false;
    KeyStream stream(spec);

    EXPECT_FALSE(stream.scanPhase());
    drawMany(stream, 100);
    EXPECT_TRUE(stream.scanPhase());
    // The scan regime emits only ranks below the span.
    for (const std::uint64_t key : drawMany(stream, 100))
        EXPECT_LT(key, 16u);
    EXPECT_FALSE(stream.scanPhase());
}

TEST(KeyStreamTest, DriftRelocatesHotSet)
{
    KeyStreamSpec spec;
    spec.pattern = KeyPattern::Zipf;
    spec.keySpace = 256;
    spec.skew = 1.2;
    spec.driftEvery = 5000;
    KeyStream stream(spec);

    std::set<std::uint64_t> before, after;
    for (int i = 0; i < 5000; ++i)
        before.insert(stream.next());
    for (int i = 0; i < 5000; ++i)
        after.insert(stream.next());

    // With the mapping salted by the rotation count, the two epochs
    // share no keys at all.
    std::vector<std::uint64_t> overlap;
    std::set_intersection(before.begin(), before.end(), after.begin(),
                          after.end(), std::back_inserter(overlap));
    EXPECT_TRUE(overlap.empty());
}

TEST(KeyStreamTest, FootprintBoundedByKeySpace)
{
    KeyStreamSpec spec;
    spec.pattern = KeyPattern::Uniform;
    spec.keySpace = 64;
    KeyStream stream(spec);
    std::set<std::uint64_t> distinct;
    for (int i = 0; i < 10000; ++i)
        distinct.insert(stream.next());
    EXPECT_LE(distinct.size(), 64u);
    EXPECT_GT(distinct.size(), 32u); // and it actually covers it
}

TEST(KeyStreamTest, ScrambleIsCollisionFree)
{
    KeyStreamSpec spec;
    spec.pattern = KeyPattern::Scan;
    spec.keySpace = 4096;
    spec.scramble = true;
    KeyStream stream(spec);
    std::set<std::uint64_t> distinct;
    for (int i = 0; i < 4096; ++i)
        distinct.insert(stream.next());
    EXPECT_EQ(distinct.size(), 4096u);
}

TEST(KeyStreamTest, Describe)
{
    KeyStreamSpec spec;
    spec.pattern = KeyPattern::Zipf;
    spec.keySpace = 1024;
    spec.skew = 0.9;
    EXPECT_EQ(spec.describe(), "zipf(0.9)@1024");
    spec.pattern = KeyPattern::Uniform;
    EXPECT_EQ(spec.describe(), "uniform@1024");
}

} // namespace
} // namespace adcache
