#include "workloads/kernels.hh"

#include <gtest/gtest.h>

#include <set>

namespace adcache
{
namespace
{

unsigned
setOf(Addr a)
{
    return unsigned((a / referenceLineSize) % referenceNumSets);
}

TEST(LinearLoop, SweepsAndWraps)
{
    Rng rng(1);
    auto k = makeKernel(KernelSpec::linearLoop(0x1000, 256, 64), rng);
    EXPECT_EQ(k->next(rng), 0x1000u);
    EXPECT_EQ(k->next(rng), 0x1040u);
    EXPECT_EQ(k->next(rng), 0x1080u);
    EXPECT_EQ(k->next(rng), 0x10C0u);
    EXPECT_EQ(k->next(rng), 0x1000u) << "wraps to base";
}

TEST(LinearLoop, CustomStride)
{
    Rng rng(1);
    auto k = makeKernel(KernelSpec::linearLoop(0, 64, 8), rng);
    for (Addr expect = 0; expect < 64; expect += 8)
        EXPECT_EQ(k->next(rng), expect);
    EXPECT_EQ(k->next(rng), 0u);
}

TEST(SetColoredLoop, ConfinesToSetRange)
{
    Rng rng(1);
    auto k = makeKernel(KernelSpec::setColoredLoop(0, 100, 50, 12),
                        rng);
    for (int i = 0; i < 5000; ++i) {
        const unsigned s = setOf(k->next(rng));
        EXPECT_GE(s, 100u);
        EXPECT_LT(s, 150u);
    }
}

TEST(SetColoredLoop, PerSetCycleDepth)
{
    Rng rng(1);
    const unsigned depth = 5;
    auto k = makeKernel(KernelSpec::setColoredLoop(0, 0, 4, depth),
                        rng);
    // Collect the distinct blocks observed for one set over full
    // cycles: must be exactly `depth`.
    std::set<Addr> blocks_of_set0;
    for (int i = 0; i < 4 * 5 * 3; ++i) {
        const Addr a = k->next(rng);
        if (setOf(a) == 0)
            blocks_of_set0.insert(a / referenceLineSize);
    }
    EXPECT_EQ(blocks_of_set0.size(), depth);
}

TEST(HotCold, BernoulliMixesRegions)
{
    Rng rng(2);
    auto spec = KernelSpec::hotCold(0, 64 * 1024, 1 << 20, 0.5);
    auto k = makeKernel(spec, rng);
    int hot = 0, cold = 0;
    for (int i = 0; i < 10000; ++i) {
        const Addr a = k->next(rng);
        (a < 64 * 1024 ? hot : cold) += 1;
    }
    EXPECT_NEAR(hot, 5000, 500);
    EXPECT_NEAR(cold, 5000, 500);
}

TEST(HotCold, BurstModeAlternatesRuns)
{
    Rng rng(3);
    auto spec = KernelSpec::burstyHotCold(0, 64 * 1024, 1 << 20, 10,
                                          20, 64);
    auto k = makeKernel(spec, rng);
    // First 10 refs hot, next 20 cold, repeating.
    for (int cycle = 0; cycle < 5; ++cycle) {
        for (int i = 0; i < 10; ++i)
            EXPECT_LT(k->next(rng), 64u * 1024) << "hot run";
        for (int i = 0; i < 20; ++i)
            EXPECT_GE(k->next(rng), 64u * 1024) << "cold run";
    }
}

TEST(HotCold, SequentialHotSweepsUniformly)
{
    Rng rng(4);
    auto spec = KernelSpec::burstyHotCold(0, 8 * 64, 1 << 20, 8, 1, 64);
    spec.hotSequential = true;
    auto k = makeKernel(spec, rng);
    std::set<Addr> hot_blocks;
    for (int i = 0; i < 9 * 4; ++i) {
        const Addr a = k->next(rng);
        if (a < 8 * 64)
            hot_blocks.insert(a / 64);
    }
    EXPECT_EQ(hot_blocks.size(), 8u) << "every hot block visited";
}

TEST(HotCold, ColdStrideControlsLineReuse)
{
    Rng rng(5);
    auto spec = KernelSpec::burstyHotCold(0, 64, 1 << 20, 1, 16, 8);
    auto k = makeKernel(spec, rng);
    k->next(rng);  // hot ref
    // 8-byte cold stride: 8 consecutive cold refs share a 64B line.
    std::set<Addr> lines;
    for (int i = 0; i < 8; ++i)
        lines.insert(k->next(rng) / 64);
    EXPECT_EQ(lines.size(), 1u);
}

TEST(HotCold, SetRestrictedHotStaysInSpan)
{
    Rng rng(6);
    auto spec = KernelSpec::burstyHotCold(0, 256 * 7 * 64, 1 << 20,
                                          100, 1, 64);
    spec.hotSequential = true;
    spec.spanSets = 256;
    auto k = makeKernel(spec, rng);
    for (int i = 0; i < 2000; ++i) {
        const Addr a = k->next(rng);
        // Hot refs (the vast majority) must stay in sets [0, 256).
        if (i % 101 != 100)
            EXPECT_LT(setOf(a), 256u);
    }
}

TEST(Zipf, StaysInFootprint)
{
    Rng rng(7);
    auto k = makeKernel(KernelSpec::zipf(0x4000, 64 * 1024, 0.9), rng);
    for (int i = 0; i < 5000; ++i) {
        const Addr a = k->next(rng);
        EXPECT_GE(a, 0x4000u);
        EXPECT_LT(a, 0x4000u + 64 * 1024);
    }
}

TEST(Zipf, SetConfinement)
{
    Rng rng(8);
    auto spec = KernelSpec::zipf(0, 128 * 1024, 0.9);
    spec.firstSet = 512;
    spec.spanSets = 256;
    auto k = makeKernel(spec, rng);
    for (int i = 0; i < 5000; ++i) {
        const unsigned s = setOf(k->next(rng));
        EXPECT_GE(s, 512u);
        EXPECT_LT(s, 768u);
    }
}

TEST(DriftingZipf, HotSetMovesOverTime)
{
    Rng rng(9);
    auto spec = KernelSpec::driftingZipf(0, 64 * 1024, 1.2, 1000,
                                         16 * 1024);
    auto k = makeKernel(spec, rng);
    std::set<Addr> early, late;
    for (int i = 0; i < 500; ++i)
        early.insert(k->next(rng) / 64);
    for (int i = 0; i < 10000; ++i)
        k->next(rng);
    for (int i = 0; i < 500; ++i)
        late.insert(k->next(rng) / 64);
    // The dominant blocks must differ substantially after drifting.
    int common = 0;
    for (Addr b : early)
        common += late.count(b) ? 1 : 0;
    EXPECT_LT(common, int(early.size()))
        << "hot set should have moved";
}

TEST(PointerChase, VisitsAllNodesInOneCycle)
{
    Rng rng(10);
    const std::uint64_t bytes = 32 * 64;
    auto k = makeKernel(KernelSpec::pointerChase(0, bytes), rng);
    std::set<Addr> seen;
    for (int i = 0; i < 32; ++i)
        seen.insert(k->next(rng));
    EXPECT_EQ(seen.size(), 32u)
        << "Sattolo cycle visits every node exactly once";
}

TEST(PointerChase, Deterministic)
{
    Rng rng1(11), rng2(11);
    auto k1 = makeKernel(KernelSpec::pointerChase(0, 2048), rng1);
    auto k2 = makeKernel(KernelSpec::pointerChase(0, 2048), rng2);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(k1->next(rng1), k2->next(rng2));
}

TEST(UniformRandom, CoversRegion)
{
    Rng rng(12);
    auto k = makeKernel(KernelSpec::uniformRandom(0, 16 * 64), rng);
    std::set<Addr> seen;
    for (int i = 0; i < 2000; ++i) {
        const Addr a = k->next(rng);
        ASSERT_LT(a, 16u * 64);
        seen.insert(a / 64);
    }
    EXPECT_EQ(seen.size(), 16u);
}

TEST(StridedSweep, TouchesNeighbours)
{
    Rng rng(13);
    auto k = makeKernel(KernelSpec::stridedSweep(0, 1 << 20, 192, 2),
                        rng);
    // Pattern per element: +64 and -64 neighbours, then the pivot,
    // then the next element's neighbours.
    EXPECT_EQ(k->next(rng), 64u);
    EXPECT_EQ(k->next(rng), (std::uint64_t(1) << 20) - 64);
    EXPECT_EQ(k->next(rng), 0u);
    EXPECT_EQ(k->next(rng), 192u + 64);
}

} // namespace
} // namespace adcache
