#include "workloads/suite.hh"

#include <gtest/gtest.h>

#include <set>

namespace adcache
{
namespace
{

TEST(Suite, TwentySixPrimaryBenchmarks)
{
    // The paper's primary evaluation set has 26 programs (Sec. 4.1).
    EXPECT_EQ(primaryBenchmarks().size(), 26u);
}

TEST(Suite, AroundOneHundredTotal)
{
    // "We simulated 100 applications (our extended set)".
    const auto all = allBenchmarks();
    EXPECT_GE(all.size(), 95u);
    EXPECT_LE(all.size(), 110u);
}

TEST(Suite, NamesUnique)
{
    std::set<std::string> names;
    for (const auto *b : allBenchmarks())
        EXPECT_TRUE(names.insert(b->name).second)
            << "duplicate benchmark name " << b->name;
}

TEST(Suite, PaperProgramsPresent)
{
    for (const char *name :
         {"ammp", "art-1", "art-2", "lucas", "mcf", "mgrid", "unepic",
          "gcc-1", "gcc-2", "x11quake-1", "xanim", "tigr"})
        EXPECT_NE(findBenchmark(name), nullptr) << name;
}

TEST(Suite, FindUnknownReturnsNull)
{
    EXPECT_EQ(findBenchmark("not-a-benchmark"), nullptr);
}

TEST(Suite, EveryBenchmarkGenerates)
{
    for (const auto *b : allBenchmarks()) {
        auto gen = makeBenchmark(*b);
        TraceInstr instr;
        for (int i = 0; i < 200; ++i)
            ASSERT_TRUE(gen->next(instr)) << b->name;
    }
}

TEST(Suite, SeedsDifferAcrossBenchmarks)
{
    std::set<std::uint64_t> seeds;
    for (const auto *b : allBenchmarks())
        seeds.insert(b->spec.seed);
    EXPECT_GT(seeds.size(), allBenchmarks().size() - 3)
        << "benchmarks should not share generator seeds";
}

TEST(Suite, PrimaryBenchmarksHaveMemoryTraffic)
{
    for (const auto *b : primaryBenchmarks()) {
        auto gen = makeBenchmark(*b);
        TraceInstr instr;
        int mem = 0;
        for (int i = 0; i < 5000; ++i) {
            ASSERT_TRUE(gen->next(instr));
            mem += instr.isMem() ? 1 : 0;
        }
        EXPECT_GT(mem, 1000) << b->name;
    }
}

TEST(Suite, GeneratorsAreIndependentInstances)
{
    const auto *b = findBenchmark("mcf");
    ASSERT_NE(b, nullptr);
    auto g1 = makeBenchmark(*b);
    auto g2 = makeBenchmark(*b);
    TraceInstr i1, i2;
    for (int i = 0; i < 100; ++i) {
        ASSERT_TRUE(g1->next(i1));
        ASSERT_TRUE(g2->next(i2));
        EXPECT_EQ(i1.pc, i2.pc);
        EXPECT_EQ(i1.memAddr, i2.memAddr);
    }
}

TEST(Suite, PhaseSwitchersHaveMultiplePhases)
{
    EXPECT_GE(findBenchmark("ammp")->spec.phases.size(), 3u);
    EXPECT_GE(findBenchmark("mgrid")->spec.phases.size(), 4u);
    EXPECT_EQ(findBenchmark("xanim")->spec.phases.size(), 2u);
    EXPECT_EQ(findBenchmark("unepic")->spec.phases.size(), 2u);
}

} // namespace
} // namespace adcache
