#include "workloads/workload.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

namespace adcache
{
namespace
{

WorkloadSpec
simpleSpec(std::uint64_t phase_len = 10'000)
{
    WorkloadSpec spec;
    spec.name = "test";
    spec.seed = 7;
    PhaseSpec p;
    p.instructions = phase_len;
    p.kernels.push_back(KernelSpec::zipf(0x100000, 64 * 1024, 0.8));
    spec.phases.push_back(p);
    return spec;
}

TEST(Workload, Deterministic)
{
    WorkloadGenerator a(simpleSpec()), b(simpleSpec());
    TraceInstr ia, ib;
    for (int i = 0; i < 5000; ++i) {
        ASSERT_TRUE(a.next(ia));
        ASSERT_TRUE(b.next(ib));
        EXPECT_EQ(ia.pc, ib.pc);
        EXPECT_EQ(ia.cls, ib.cls);
        EXPECT_EQ(ia.memAddr, ib.memAddr);
        EXPECT_EQ(ia.taken, ib.taken);
    }
}

TEST(Workload, ResetReproducesStream)
{
    WorkloadGenerator gen(simpleSpec());
    const auto first = drain(gen, 2000);
    gen.reset();
    const auto second = drain(gen, 2000);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].pc, second[i].pc);
        EXPECT_EQ(first[i].memAddr, second[i].memAddr);
    }
}

TEST(Workload, InstructionMixMatchesSpec)
{
    auto spec = simpleSpec(50'000);
    spec.phases[0].loadFrac = 0.30;
    spec.phases[0].storeFrac = 0.10;
    spec.phases[0].branchFrac = 0.10;
    WorkloadGenerator gen(spec);
    std::map<InstrClass, int> counts;
    TraceInstr instr;
    const int n = 50'000;
    for (int i = 0; i < n; ++i) {
        ASSERT_TRUE(gen.next(instr));
        ++counts[instr.cls];
    }
    EXPECT_NEAR(counts[InstrClass::Load], 0.30 * n, 0.02 * n);
    EXPECT_NEAR(counts[InstrClass::Store], 0.10 * n, 0.02 * n);
    // Branches include the forced loop-closing ones.
    EXPECT_GT(counts[InstrClass::Branch], int(0.08 * n));
}

TEST(Workload, MemOpsCarryAddresses)
{
    WorkloadGenerator gen(simpleSpec());
    TraceInstr instr;
    for (int i = 0; i < 10'000; ++i) {
        ASSERT_TRUE(gen.next(instr));
        if (instr.isMem()) {
            EXPECT_GE(instr.memAddr, 0x100000u);
            EXPECT_LT(instr.memAddr, 0x100000u + 64 * 1024);
            EXPECT_EQ(instr.memAddr % 8, 0u) << "word aligned";
            EXPECT_EQ(instr.memSize, 8);
        }
    }
}

TEST(Workload, PcStaysInCodeFootprint)
{
    auto spec = simpleSpec();
    spec.phases[0].codeFootprint = 4096;
    WorkloadGenerator gen(spec);
    TraceInstr instr;
    Addr min_pc = ~Addr(0), max_pc = 0;
    for (int i = 0; i < 20'000; ++i) {
        ASSERT_TRUE(gen.next(instr));
        min_pc = std::min(min_pc, instr.pc);
        max_pc = std::max(max_pc, instr.pc);
    }
    EXPECT_LT(max_pc - min_pc, 4096u);
}

TEST(Workload, PhasesAdvanceAndLoop)
{
    WorkloadSpec spec;
    spec.name = "phased";
    spec.seed = 3;
    PhaseSpec p1;
    p1.instructions = 1000;
    p1.kernels.push_back(KernelSpec::zipf(0x0, 4096, 0.8));
    PhaseSpec p2 = p1;
    p2.kernels.clear();
    p2.kernels.push_back(KernelSpec::zipf(0x40000000, 4096, 0.8));
    spec.phases = {p1, p2};
    WorkloadGenerator gen(spec);
    TraceInstr instr;
    int phase2_mem_in_first_1000 = 0, phase2_mem_in_second_1000 = 0;
    for (int i = 0; i < 2000; ++i) {
        ASSERT_TRUE(gen.next(instr));
        if (instr.isMem() && instr.memAddr >= 0x40000000) {
            (i < 1000 ? phase2_mem_in_first_1000
                      : phase2_mem_in_second_1000) += 1;
        }
    }
    EXPECT_EQ(phase2_mem_in_first_1000, 0);
    EXPECT_GT(phase2_mem_in_second_1000, 50);
    // Looping: instructions keep coming past the phase list.
    for (int i = 0; i < 5000; ++i)
        ASSERT_TRUE(gen.next(instr));
}

TEST(Workload, NonLoopingSpecEnds)
{
    auto spec = simpleSpec(500);
    spec.loopPhases = false;
    WorkloadGenerator gen(spec);
    TraceInstr instr;
    int n = 0;
    while (gen.next(instr))
        ++n;
    EXPECT_EQ(n, 500);
}

TEST(Workload, BranchesHaveTargets)
{
    WorkloadGenerator gen(simpleSpec());
    TraceInstr instr;
    int branches = 0;
    for (int i = 0; i < 20'000 && branches < 500; ++i) {
        ASSERT_TRUE(gen.next(instr));
        if (instr.isBranch()) {
            ++branches;
            EXPECT_NE(instr.target, 0u);
        }
    }
    EXPECT_GE(branches, 500);
}

TEST(Workload, DependenciesReferenceRecentDsts)
{
    auto spec = simpleSpec();
    spec.phases[0].depWindow = 4;
    WorkloadGenerator gen(spec);
    TraceInstr instr;
    std::vector<std::uint8_t> recent;
    for (int i = 0; i < 5000; ++i) {
        ASSERT_TRUE(gen.next(instr));
        if (instr.src1 != noReg && recent.size() >= 8) {
            // src must be one of the recent destinations (or noReg
            // from warmup).
            const auto begin = recent.end() - 8;
            EXPECT_TRUE(std::find(begin, recent.end(), instr.src1) !=
                        recent.end())
                << "src1 outside the dependence window";
        }
        if (instr.dst != noReg)
            recent.push_back(instr.dst);
    }
}

} // namespace
} // namespace adcache
