/**
 * @file
 * The synthetic benchmark suite standing in for the paper's 100+
 * traces (SPECcpu2000, MediaBench, MiBench, BioBench, pointer-
 * intensive and graphics programs; Sec. 4.1).
 *
 * Each benchmark is a WorkloadSpec whose kernels were chosen to match
 * the qualitative replacement-policy preference the paper reports for
 * the program of the same name (e.g. lucas: strongly LRU-friendly;
 * art: strongly LFU-friendly; ammp/mgrid: phase- and set-varying).
 * The *primary set* mirrors the paper's 26 programs with > 1 MPKI in
 * a 512 KB LRU L2; the *extended set* adds the cache-resident
 * programs used to demonstrate stability.
 */

#ifndef ADCACHE_WORKLOADS_SUITE_HH
#define ADCACHE_WORKLOADS_SUITE_HH

#include <memory>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace adcache
{

/** One named benchmark of the suite. */
struct BenchmarkDef
{
    std::string name;
    bool primary = false;  //!< in the paper's 26-program primary set
    WorkloadSpec spec;
};

/** The full suite (primary first, then extended), built once. */
const std::vector<BenchmarkDef> &benchmarkSuite();

/** Pointers to the 26 primary-set benchmarks, in paper order. */
std::vector<const BenchmarkDef *> primaryBenchmarks();

/** Pointers to every benchmark (the extended evaluation set). */
std::vector<const BenchmarkDef *> allBenchmarks();

/** Find a benchmark by name; nullptr if absent. */
const BenchmarkDef *findBenchmark(const std::string &name);

/** Instantiate the generator for @p def. */
std::unique_ptr<TraceSource> makeBenchmark(const BenchmarkDef &def);

/**
 * Instantiate the generator for @p def with an explicit RNG seed.
 * Used by the experiment runner, which carries every run's seed in
 * its job description so the generated stream is a pure function of
 * the job, never of scheduling order.
 */
std::unique_ptr<TraceSource> makeBenchmark(const BenchmarkDef &def,
                                           std::uint64_t seed);

} // namespace adcache

#endif // ADCACHE_WORKLOADS_SUITE_HH
