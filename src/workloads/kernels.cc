#include "workloads/kernels.hh"

#include <algorithm>
#include <numeric>

#include "util/logging.hh"

namespace adcache
{

namespace
{

constexpr unsigned line = referenceLineSize;

/** Sequential wrap-around sweep. */
class LinearLoopKernel : public AccessKernel
{
  public:
    LinearLoopKernel(Addr base, std::uint64_t bytes,
                     std::uint64_t stride)
        : base_(base), bytes_(bytes), stride_(stride)
    {
        adcache_assert(bytes >= stride && stride >= 1);
    }

    Addr
    next(Rng &) override
    {
        const Addr a = base_ + pos_;
        pos_ += stride_;
        if (pos_ >= bytes_)
            pos_ = 0;
        return a;
    }

  private:
    Addr base_;
    std::uint64_t bytes_, stride_;
    std::uint64_t pos_ = 0;
};

/**
 * Cyclic loop that gives each set in [firstSet, firstSet+spanSets) a
 * private reuse cycle of `depth` blocks. With depth > associativity
 * the per-set reference stream 0,1,..,depth-1,0,1,.. makes LRU (and
 * FIFO) miss on every access while MRU retains assoc-1 blocks.
 */
class SetColoredLoopKernel : public AccessKernel
{
  public:
    SetColoredLoopKernel(Addr base, unsigned first_set,
                         unsigned span_sets, unsigned depth)
        : base_(base), firstSet_(first_set), spanSets_(span_sets),
          depth_(depth)
    {
        adcache_assert(span_sets >= 1 && depth >= 1);
    }

    Addr
    next(Rng &) override
    {
        const unsigned set = firstSet_ + unsigned(k_ % spanSets_);
        const unsigned d = unsigned((k_ / spanSets_) % depth_);
        ++k_;
        return base_ + Addr(d) * referenceSetPeriod +
               Addr(set % referenceNumSets) * line;
    }

  private:
    Addr base_;
    unsigned firstSet_, spanSets_, depth_;
    std::uint64_t k_ = 0;
};

/**
 * Zipf-reused hot region plus a one-touch cold stream. In Bernoulli
 * mode each reference is hot with probability hotProb; in burst mode
 * deterministic runs of hot and cold references alternate, so cold
 * bursts can flush an entire LRU set between hot reuses.
 */
class HotColdKernel : public AccessKernel
{
  public:
    HotColdKernel(Addr base, std::uint64_t hot_bytes,
                  std::uint64_t cold_bytes, double hot_prob,
                  double zipf_s, std::uint64_t hot_run,
                  std::uint64_t cold_run, std::uint64_t cold_stride,
                  bool hot_sequential, unsigned span_sets, Rng &rng)
        : hotBase_(base), coldBase_(base + hot_bytes),
          coldBytes_(cold_bytes), coldStride_(cold_stride),
          hotProb_(hot_prob), hotRun_(hot_run), coldRun_(cold_run),
          hotSequential_(hot_sequential),
          spanSets_(std::min<unsigned>(span_sets, referenceNumSets)),
          hotBlocks_(std::max<std::uint64_t>(1, hot_bytes / line)),
          zipf_(hotBlocks_, zipf_s), perm_(hotBlocks_)
    {
        // Scatter zipf ranks over the region so the hottest blocks
        // spread across cache sets instead of clustering at the base.
        std::iota(perm_.begin(), perm_.end(), std::uint64_t{0});
        for (std::uint64_t i = hotBlocks_ - 1; i > 0; --i)
            std::swap(perm_[i], perm_[rng.below(i + 1)]);
        // A set-restricted hot layout spreads over more address space
        // than hot_bytes; keep the cold stream clear of it.
        if (spanSets_ < referenceNumSets) {
            const std::uint64_t chunks =
                (hotBlocks_ + spanSets_ - 1) / spanSets_;
            coldBase_ = base + chunks * referenceSetPeriod;
        }
    }

    Addr
    next(Rng &rng) override
    {
        bool hot;
        if (hotRun_ > 0 && coldRun_ > 0) {
            hot = inHotRun_;
            if (++runPos_ >= (inHotRun_ ? hotRun_ : coldRun_)) {
                inHotRun_ = !inHotRun_;
                runPos_ = 0;
            }
        } else {
            hot = rng.chance(hotProb_);
        }
        if (hot) {
            std::uint64_t block;
            if (hotSequential_) {
                block = hotPos_;
                hotPos_ = (hotPos_ + 1) % hotBlocks_;
            } else {
                block = perm_[zipf_(rng)];
            }
            return hotBase_ + hotLayout(block);
        }
        const Addr a = coldBase_ + coldLayout(coldPos_);
        coldPos_ += coldStride_;
        if (coldPos_ >= coldBytes_)
            coldPos_ = 0;
        return a;
    }

  private:
    /**
     * Offset of hot block @p idx. With a restricted set span the hot
     * region is laid out in set-coloured chunks so it touches only
     * the first spanSets sets of the reference geometry (used by the
     * mgrid-style spatially varying workloads, Fig. 7b).
     */
    Addr
    hotLayout(std::uint64_t idx) const
    {
        if (spanSets_ >= referenceNumSets)
            return idx * line;
        return Addr(idx % spanSets_) * line +
               Addr(idx / spanSets_) * referenceSetPeriod;
    }

    /** Cold-stream offset mapping under a restricted set span. */
    Addr
    coldLayout(std::uint64_t off) const
    {
        if (spanSets_ >= referenceNumSets)
            return off;
        const std::uint64_t chunk_bytes =
            std::uint64_t(spanSets_) * line;
        return Addr(off / chunk_bytes) * referenceSetPeriod +
               (off % chunk_bytes);
    }

    Addr hotBase_, coldBase_;
    std::uint64_t coldBytes_, coldStride_;
    double hotProb_;
    std::uint64_t hotRun_, coldRun_;
    bool hotSequential_;
    unsigned spanSets_;
    std::uint64_t hotBlocks_;
    ZipfSampler zipf_;
    std::vector<std::uint64_t> perm_;
    std::uint64_t coldPos_ = 0;
    std::uint64_t hotPos_ = 0;
    std::uint64_t runPos_ = 0;
    bool inHotRun_ = true;
};

/** Zipf-distributed blocks, optionally drifting. */
class ZipfKernel : public AccessKernel
{
  public:
    ZipfKernel(Addr base, std::uint64_t bytes, double s,
               std::uint64_t drift_period, std::uint64_t drift_bytes,
               unsigned first_set, unsigned span_sets, Rng &rng)
        : base_(base), bytes_(bytes),
          blocks_(std::max<std::uint64_t>(1, bytes / line)),
          firstSet_(first_set),
          spanSets_(std::min<unsigned>(span_sets, referenceNumSets)),
          zipf_(blocks_, s), perm_(blocks_),
          driftPeriod_(drift_period),
          driftRanks_(std::max<std::uint64_t>(1, drift_bytes / line))
    {
        std::iota(perm_.begin(), perm_.end(), std::uint64_t{0});
        for (std::uint64_t i = blocks_ - 1; i > 0; --i)
            std::swap(perm_[i], perm_[rng.below(i + 1)]);
    }

    Addr
    next(Rng &rng) override
    {
        // Drift rotates the rank->block mapping by a few ranks per
        // step, so the hot set *slides*: a handful of blocks drop out
        // of the head each step (keeping their inflated frequency
        // counts — poison for LFU) while LRU simply stops touching
        // them. Most addresses stay hot across a step, so LRU pays
        // only the small per-step turnover.
        if (driftPeriod_ != 0 && ++refs_ % driftPeriod_ == 0)
            rotation_ = (rotation_ + driftRanks_) % blocks_;
        const std::uint64_t rank = (zipf_(rng) + rotation_) % blocks_;
        const std::uint64_t block = perm_[rank];
        if (spanSets_ >= referenceNumSets)
            return base_ + block * line;
        // Set-confined layout: spread the footprint over chunks one
        // set-period apart so only [firstSet, firstSet+spanSets) of
        // the reference geometry is touched.
        return base_ + Addr(firstSet_ + block % spanSets_) * line +
               Addr(block / spanSets_) * referenceSetPeriod;
    }

  private:
    Addr base_;
    std::uint64_t bytes_, blocks_;
    unsigned firstSet_, spanSets_;
    ZipfSampler zipf_;
    std::vector<std::uint64_t> perm_;
    std::uint64_t driftPeriod_, driftRanks_;
    std::uint64_t refs_ = 0;
    std::uint64_t rotation_ = 0;
};

/** Traversal of a random permutation cycle (dependent chasing). */
class PointerChaseKernel : public AccessKernel
{
  public:
    PointerChaseKernel(Addr base, std::uint64_t bytes, Rng &rng)
        : base_(base),
          nodes_(std::max<std::uint64_t>(2, bytes / line)),
          nextIdx_(nodes_)
    {
        // Sattolo's algorithm: a single cycle through all nodes.
        std::iota(nextIdx_.begin(), nextIdx_.end(), std::uint64_t{0});
        for (std::uint64_t i = nodes_ - 1; i > 0; --i)
            std::swap(nextIdx_[i], nextIdx_[rng.below(i)]);
        cur_ = 0;
    }

    Addr
    next(Rng &) override
    {
        const Addr a = base_ + cur_ * line;
        cur_ = nextIdx_[cur_];
        return a;
    }

  private:
    Addr base_;
    std::uint64_t nodes_;
    std::vector<std::uint64_t> nextIdx_;
    std::uint64_t cur_ = 0;
};

/** Uniform random blocks over a region. */
class UniformRandomKernel : public AccessKernel
{
  public:
    UniformRandomKernel(Addr base, std::uint64_t bytes)
        : base_(base),
          blocks_(std::max<std::uint64_t>(1, bytes / line))
    {
    }

    Addr
    next(Rng &rng) override
    {
        return base_ + rng.below(blocks_) * line;
    }

  private:
    Addr base_;
    std::uint64_t blocks_;
};

/** Strided pass with neighbour touches (mgrid RPRJ3-like). */
class StridedSweepKernel : public AccessKernel
{
  public:
    StridedSweepKernel(Addr base, std::uint64_t bytes,
                       std::uint64_t stride, unsigned neighbours)
        : base_(base), bytes_(bytes), stride_(stride),
          neighbours_(neighbours)
    {
        adcache_assert(stride >= 1 && bytes >= stride);
    }

    Addr
    next(Rng &) override
    {
        if (pendingNeighbour_ < neighbours_) {
            const unsigned k = pendingNeighbour_++;
            // Alternate +line, -line, +2*line, ... around the pivot.
            const std::int64_t delta =
                (k % 2 == 0 ? 1 : -1) * std::int64_t(line) *
                (std::int64_t(k) / 2 + 1);
            const std::int64_t off =
                std::int64_t(pos_) + delta;
            const std::uint64_t wrapped =
                std::uint64_t(off % std::int64_t(bytes_) +
                              std::int64_t(bytes_)) %
                bytes_;
            return base_ + wrapped;
        }
        pendingNeighbour_ = 0;
        const Addr a = base_ + pos_;
        pos_ = (pos_ + stride_) % bytes_;
        return a;
    }

  private:
    Addr base_;
    std::uint64_t bytes_, stride_;
    unsigned neighbours_;
    unsigned pendingNeighbour_ = 0;
    std::uint64_t pos_ = 0;
};

} // namespace

KernelSpec
KernelSpec::linearLoop(Addr base, std::uint64_t bytes,
                       std::uint64_t stride)
{
    KernelSpec s;
    s.type = Type::LinearLoop;
    s.base = base;
    s.bytes = bytes;
    s.stride = stride;
    return s;
}

KernelSpec
KernelSpec::setColoredLoop(Addr base, unsigned first_set,
                           unsigned span_sets, unsigned depth)
{
    KernelSpec s;
    s.type = Type::SetColoredLoop;
    s.base = base;
    s.firstSet = first_set;
    s.spanSets = span_sets;
    s.depth = depth;
    return s;
}

KernelSpec
KernelSpec::hotCold(Addr base, std::uint64_t hot_bytes,
                    std::uint64_t cold_bytes, double hot_prob,
                    double zipf_s)
{
    KernelSpec s;
    s.type = Type::HotCold;
    s.base = base;
    s.hotBytes = hot_bytes;
    s.bytes = cold_bytes;
    s.hotProb = hot_prob;
    s.zipfS = zipf_s;
    return s;
}

KernelSpec
KernelSpec::burstyHotCold(Addr base, std::uint64_t hot_bytes,
                          std::uint64_t cold_bytes,
                          std::uint64_t hot_run, std::uint64_t cold_run,
                          std::uint64_t cold_stride, double zipf_s)
{
    KernelSpec s;
    s.type = Type::HotCold;
    s.base = base;
    s.hotBytes = hot_bytes;
    s.bytes = cold_bytes;
    s.hotRunLen = hot_run;
    s.coldRunLen = cold_run;
    s.coldStride = cold_stride;
    s.zipfS = zipf_s;
    return s;
}

KernelSpec
KernelSpec::zipf(Addr base, std::uint64_t bytes, double s_exp)
{
    KernelSpec s;
    s.type = Type::Zipf;
    s.base = base;
    s.bytes = bytes;
    s.zipfS = s_exp;
    s.driftPeriod = 0;
    return s;
}

KernelSpec
KernelSpec::driftingZipf(Addr base, std::uint64_t bytes, double s_exp,
                         std::uint64_t period, std::uint64_t step)
{
    KernelSpec s;
    s.type = Type::DriftingZipf;
    s.base = base;
    s.bytes = bytes;
    s.zipfS = s_exp;
    s.driftPeriod = period;
    s.driftStep = step;
    return s;
}

KernelSpec
KernelSpec::pointerChase(Addr base, std::uint64_t bytes)
{
    KernelSpec s;
    s.type = Type::PointerChase;
    s.base = base;
    s.bytes = bytes;
    return s;
}

KernelSpec
KernelSpec::uniformRandom(Addr base, std::uint64_t bytes)
{
    KernelSpec s;
    s.type = Type::UniformRandom;
    s.base = base;
    s.bytes = bytes;
    return s;
}

KernelSpec
KernelSpec::stridedSweep(Addr base, std::uint64_t bytes,
                         std::uint64_t stride, unsigned neighbours)
{
    KernelSpec s;
    s.type = Type::StridedSweep;
    s.base = base;
    s.bytes = bytes;
    s.stride = stride;
    s.neighbours = neighbours;
    return s;
}

std::unique_ptr<AccessKernel>
makeKernel(const KernelSpec &spec, Rng &rng)
{
    using Type = KernelSpec::Type;
    switch (spec.type) {
      case Type::LinearLoop:
        return std::make_unique<LinearLoopKernel>(spec.base, spec.bytes,
                                                  spec.stride);
      case Type::SetColoredLoop:
        return std::make_unique<SetColoredLoopKernel>(
            spec.base, spec.firstSet, spec.spanSets, spec.depth);
      case Type::HotCold:
        return std::make_unique<HotColdKernel>(
            spec.base, spec.hotBytes, spec.bytes, spec.hotProb,
            spec.zipfS, spec.hotRunLen, spec.coldRunLen,
            spec.coldStride, spec.hotSequential, spec.spanSets, rng);
      case Type::Zipf:
        return std::make_unique<ZipfKernel>(spec.base, spec.bytes,
                                            spec.zipfS, 0, 0,
                                            spec.firstSet,
                                            spec.spanSets, rng);
      case Type::DriftingZipf:
        return std::make_unique<ZipfKernel>(
            spec.base, spec.bytes, spec.zipfS, spec.driftPeriod,
            spec.driftStep, spec.firstSet, spec.spanSets, rng);
      case Type::PointerChase:
        return std::make_unique<PointerChaseKernel>(spec.base,
                                                    spec.bytes, rng);
      case Type::UniformRandom:
        return std::make_unique<UniformRandomKernel>(spec.base,
                                                     spec.bytes);
      case Type::StridedSweep:
        return std::make_unique<StridedSweepKernel>(
            spec.base, spec.bytes, spec.stride, spec.neighbours);
    }
    panic("unknown kernel type");
}

} // namespace adcache
