/**
 * @file
 * Memory access-pattern kernels: the building blocks from which the
 * synthetic benchmark suite (suite.cc) composes SPEC-like behaviour.
 *
 * Each kernel is a deterministic (seeded) generator of data addresses
 * embodying one archetype the paper calls out in Sec. 2.1:
 *
 *  - LinearLoop / SetColoredLoop: "a linear loop slightly larger than
 *    the cache is bad for a set-associative, LRU-managed cache" —
 *    cyclic per-set reuse at depth > associativity, where MRU shines
 *    and LRU degenerates.
 *  - HotCold: "LFU is ideal for separating large regions of blocks
 *    that are only used once from commonly accessed data — a common
 *    pattern in media-management applications."
 *  - Zipf / DriftingZipf: "traditional code that manipulates
 *    scattered data with good temporal locality performs almost
 *    optimally with LRU ... yet causes LFU to underperform" (drift
 *    makes stale frequency counts poisonous).
 *  - PointerChase: dependent, low-locality traversals (mcf-like).
 *  - StridedSweep: mgrid-like array sweeps that skip elements but
 *    touch neighbours (the RPRJ3 pattern of Sec. 4.4).
 */

#ifndef ADCACHE_WORKLOADS_KERNELS_HH
#define ADCACHE_WORKLOADS_KERNELS_HH

#include <memory>
#include <vector>

#include "util/rng.hh"
#include "util/types.hh"

namespace adcache
{

/**
 * Address period that maps one block to every set of the reference
 * L2 (1024 sets x 64 B). Set-targeted kernels use it to confine
 * their footprint to a set range of the reference geometry.
 */
constexpr std::uint64_t referenceSetPeriod = 1024 * 64;
constexpr unsigned referenceLineSize = 64;
constexpr unsigned referenceNumSets = 1024;

/** A deterministic stream of data addresses. */
class AccessKernel
{
  public:
    virtual ~AccessKernel() = default;

    /** Produce the next data address. */
    virtual Addr next(Rng &rng) = 0;
};

/** Declarative kernel description (so workloads are value types). */
struct KernelSpec
{
    enum class Type
    {
        LinearLoop,     //!< sequential sweep over [base, base+bytes)
        SetColoredLoop, //!< per-set cyclic loop of a given depth
        HotCold,        //!< zipf hot region + one-touch cold stream
        Zipf,           //!< zipf-distributed blocks over a region
        DriftingZipf,   //!< zipf whose hot set slides over time
        PointerChase,   //!< random-permutation cycle traversal
        UniformRandom,  //!< uniform random blocks over a region
        StridedSweep,   //!< strided pass touching neighbours
    };

    Type type = Type::Zipf;
    double weight = 1.0;   //!< mixture weight within a phase

    Addr base = 0;         //!< region base address
    std::uint64_t bytes = 1 << 20;  //!< region footprint

    // LinearLoop / StridedSweep
    std::uint64_t stride = 64;
    unsigned neighbours = 0;  //!< extra +-line touches per element

    // SetColoredLoop; spanSets also confines a HotCold kernel's hot
    // region to the first spanSets sets of the reference geometry.
    unsigned firstSet = 0;
    unsigned spanSets = referenceNumSets;
    unsigned depth = 12;   //!< blocks cycled per set

    // HotCold
    std::uint64_t hotBytes = 256 * 1024;
    double hotProb = 0.5;
    /**
     * Burst mode: > 0 alternates deterministic runs of hot and cold
     * references instead of per-reference Bernoulli draws. Cold
     * bursts long enough to sweep more lines per set than the
     * associativity flush an LRU cache, which LFU's frequency
     * protection survives — the paper's media pattern at its
     * sharpest.
     */
    std::uint64_t hotRunLen = 0;
    std::uint64_t coldRunLen = 0;
    /**
     * Sequential hot mode: sweep the hot region cyclically instead of
     * drawing Zipf samples, so every hot block is reused uniformly —
     * LFU then pins the whole region across cold bursts while LRU
     * refetches all of it after every flush.
     */
    bool hotSequential = false;
    /** Cold-stream stride; word strides (8) touch each line several
     *  times so the L1 filters the stream and L2 MPKI stays real. */
    std::uint64_t coldStride = 64;

    // Zipf family
    double zipfS = 0.8;
    std::uint64_t driftPeriod = 200 * 1000;  //!< refs per drift step
    std::uint64_t driftStep = 128 * 1024;    //!< bytes per step

    // --- convenience factories -------------------------------------
    static KernelSpec linearLoop(Addr base, std::uint64_t bytes,
                                 std::uint64_t stride = 64);
    static KernelSpec setColoredLoop(Addr base, unsigned first_set,
                                     unsigned span_sets, unsigned depth);
    static KernelSpec hotCold(Addr base, std::uint64_t hot_bytes,
                              std::uint64_t cold_bytes, double hot_prob,
                              double zipf_s = 0.6);
    static KernelSpec burstyHotCold(Addr base, std::uint64_t hot_bytes,
                                    std::uint64_t cold_bytes,
                                    std::uint64_t hot_run,
                                    std::uint64_t cold_run,
                                    std::uint64_t cold_stride = 8,
                                    double zipf_s = 0.6);
    static KernelSpec zipf(Addr base, std::uint64_t bytes, double s);
    static KernelSpec driftingZipf(Addr base, std::uint64_t bytes,
                                   double s, std::uint64_t period,
                                   std::uint64_t step);
    static KernelSpec pointerChase(Addr base, std::uint64_t bytes);
    static KernelSpec uniformRandom(Addr base, std::uint64_t bytes);
    static KernelSpec stridedSweep(Addr base, std::uint64_t bytes,
                                   std::uint64_t stride,
                                   unsigned neighbours);
};

/** Instantiate the kernel described by @p spec (seeded via @p rng). */
std::unique_ptr<AccessKernel> makeKernel(const KernelSpec &spec,
                                         Rng &rng);

} // namespace adcache

#endif // ADCACHE_WORKLOADS_KERNELS_HH
