#include "workloads/key_stream.hh"

#include <sstream>

#include "util/logging.hh"

namespace adcache
{

namespace
{

/** splitmix64 finalizer: a 64-bit bijection, so distinct (rank,
 *  drift) pairs always yield distinct keys. */
std::uint64_t
mix64(std::uint64_t v)
{
    std::uint64_t z = v + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

const char *
keyPatternName(KeyPattern pattern)
{
    switch (pattern) {
      case KeyPattern::Uniform:
        return "uniform";
      case KeyPattern::Zipf:
        return "zipf";
      case KeyPattern::Scan:
        return "scan";
      case KeyPattern::PhaseFlip:
        return "phase_flip";
    }
    return "?";
}

std::string
KeyStreamSpec::describe() const
{
    std::ostringstream out;
    out << keyPatternName(pattern);
    if (pattern == KeyPattern::Zipf || pattern == KeyPattern::PhaseFlip)
        out << "(" << skew << ")";
    out << "@" << keySpace;
    if (driftEvery)
        out << " drift/" << driftEvery;
    return out.str();
}

KeyStream::KeyStream(const KeyStreamSpec &spec)
    : spec_(spec), rng_(spec.seed)
{
    adcache_assert(spec_.keySpace > 0);
    if (spec_.pattern == KeyPattern::Zipf ||
        spec_.pattern == KeyPattern::PhaseFlip)
        zipf_ = std::make_unique<ZipfSampler>(spec_.keySpace,
                                              spec_.skew);
    if (spec_.pattern == KeyPattern::PhaseFlip)
        adcache_assert(spec_.phasePeriod > 0);
}

std::uint64_t
KeyStream::rankToKey(std::uint64_t rank) const
{
    // Drift relocates the whole ranking by salting the mix; without
    // scrambling it becomes a plain shift so tests stay predictable.
    if (spec_.scramble)
        return mix64(rank + drift_ * spec_.keySpace);
    return rank + drift_ * spec_.keySpace;
}

std::uint64_t
KeyStream::drawZipf()
{
    return rankToKey((*zipf_)(rng_));
}

std::uint64_t
KeyStream::drawScan()
{
    const std::uint64_t span =
        spec_.scanSpan ? spec_.scanSpan : spec_.keySpace;
    const std::uint64_t rank = scanPos_ % span;
    ++scanPos_;
    return rankToKey(rank);
}

bool
KeyStream::scanPhase() const
{
    return spec_.pattern == KeyPattern::PhaseFlip &&
           (pos_ / spec_.phasePeriod) % 2 == 1;
}

std::uint64_t
KeyStream::next()
{
    if (spec_.driftEvery && pos_ > 0 && pos_ % spec_.driftEvery == 0)
        ++drift_;

    std::uint64_t key = 0;
    switch (spec_.pattern) {
      case KeyPattern::Uniform:
        key = rankToKey(rng_.below(spec_.keySpace));
        break;
      case KeyPattern::Zipf:
        key = drawZipf();
        break;
      case KeyPattern::Scan:
        key = drawScan();
        break;
      case KeyPattern::PhaseFlip:
        key = scanPhase() ? drawScan() : drawZipf();
        break;
    }
    ++pos_;
    return key;
}

void
KeyStream::reset()
{
    rng_ = Rng(spec_.seed);
    pos_ = 0;
    scanPos_ = 0;
    drift_ = 0;
}

} // namespace adcache
