#include "workloads/key_stream.hh"

#include <algorithm>
#include <sstream>

#include "util/logging.hh"

namespace adcache
{

namespace
{

/** splitmix64 finalizer: a 64-bit bijection, so distinct (rank,
 *  drift) pairs always yield distinct keys. */
std::uint64_t
mix64(std::uint64_t v)
{
    std::uint64_t z = v + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

const char *
keyPatternName(KeyPattern pattern)
{
    switch (pattern) {
      case KeyPattern::Uniform:
        return "uniform";
      case KeyPattern::Zipf:
        return "zipf";
      case KeyPattern::Scan:
        return "scan";
      case KeyPattern::PhaseFlip:
        return "phase_flip";
    }
    return "?";
}

KeyStreamSpec
KeyStreamSpec::forClient(unsigned client, unsigned num_clients,
                         bool disjoint_slice) const
{
    adcache_assert(num_clients >= 1 && client < num_clients);
    KeyStreamSpec c = *this;
    c.numClients = num_clients;
    c.clientIndex = client;
    c.disjoint = disjoint_slice;
    c.seed = mix64(seed ^ (std::uint64_t(client) + 1));
    return c;
}

std::string
KeyStreamSpec::describe() const
{
    std::ostringstream out;
    out << keyPatternName(pattern);
    if (pattern == KeyPattern::Zipf || pattern == KeyPattern::PhaseFlip)
        out << "(" << skew << ")";
    out << "@" << keySpace;
    if (driftEvery)
        out << " drift/" << driftEvery;
    if (numClients > 1)
        out << " client " << clientIndex << "/" << numClients
            << (disjoint ? " disjoint" : "");
    return out.str();
}

std::string
ValueSpec::describe() const
{
    std::ostringstream out;
    if (minBytes == maxBytes)
        out << minBytes << "B";
    else
        out << minBytes << "-" << maxBytes << "B";
    return out.str();
}

std::size_t
valueSizeFor(std::uint64_t key, const ValueSpec &spec)
{
    adcache_assert(spec.minBytes <= spec.maxBytes);
    if (spec.minBytes == spec.maxBytes)
        return spec.minBytes;
    const std::uint64_t span = spec.maxBytes - spec.minBytes + 1;
    return spec.minBytes +
           std::size_t(mix64(key ^ 0x517e'5eedULL) % span);
}

std::string
valueFor(std::uint64_t key, const ValueSpec &spec)
{
    std::string v = "v" + std::to_string(key) + ":";
    const std::size_t size =
        std::max(valueSizeFor(key, spec), v.size());
    v.reserve(size);
    std::uint64_t fill = mix64(key);
    while (v.size() < size) {
        // Printable padding keeps report dumps and test failures
        // readable.
        v.push_back(char('a' + (fill & 15)));
        fill = (fill >> 4) | (fill << 60);
    }
    return v;
}

KeyStream::KeyStream(const KeyStreamSpec &spec)
    : spec_(spec), rng_(spec.seed)
{
    adcache_assert(spec_.keySpace > 0);
    adcache_assert(spec_.numClients >= 1 &&
                   spec_.clientIndex < spec_.numClients);
    if (spec_.pattern == KeyPattern::Zipf ||
        spec_.pattern == KeyPattern::PhaseFlip) {
        // Above ~4M ranks the exact sampler's cumulative table costs
        // more memory than the cache under test; switch to the O(1)
        // Gray construction (same shape, bucket-level accuracy).
        constexpr std::uint64_t kTableMax = 1ULL << 22;
        if (rankSpace() <= kTableMax)
            zipf_ = std::make_unique<ZipfSampler>(rankSpace(),
                                                  spec_.skew);
        else
            zipfApprox_ = std::make_unique<ZipfApproxSampler>(
                rankSpace(), spec_.skew);
    }
    if (spec_.pattern == KeyPattern::PhaseFlip)
        adcache_assert(spec_.phasePeriod > 0);
}

std::uint64_t
KeyStream::rankSpace() const
{
    if (!spec_.disjoint || spec_.numClients <= 1)
        return spec_.keySpace;
    const std::uint64_t slice = spec_.keySpace / spec_.numClients;
    return slice > 0 ? slice : 1;
}

std::uint64_t
KeyStream::rankToKey(std::uint64_t rank) const
{
    // A disjoint client's ranks interleave across the key space
    // (global rank % numClients == clientIndex), the Nautilus-style
    // ownership split, before drift and scrambling apply.
    if (spec_.disjoint && spec_.numClients > 1)
        rank = rank * spec_.numClients + spec_.clientIndex;
    // Drift relocates the whole ranking by salting the mix; without
    // scrambling it becomes a plain shift so tests stay predictable.
    if (spec_.scramble)
        return mix64(rank + drift_ * spec_.keySpace);
    return rank + drift_ * spec_.keySpace;
}

std::uint64_t
KeyStream::drawZipf()
{
    return zipf_ ? (*zipf_)(rng_) : (*zipfApprox_)(rng_);
}

std::uint64_t
KeyStream::drawScan()
{
    const std::uint64_t span =
        spec_.scanSpan ? spec_.scanSpan : rankSpace();
    const std::uint64_t rank = scanPos_ % span;
    ++scanPos_;
    return rank;
}

bool
KeyStream::scanPhase() const
{
    return spec_.pattern == KeyPattern::PhaseFlip &&
           (pos_ / spec_.phasePeriod) % 2 == 1;
}

std::uint64_t
KeyStream::nextRank()
{
    if (spec_.driftEvery && pos_ > 0 && pos_ % spec_.driftEvery == 0)
        ++drift_;

    std::uint64_t rank = 0;
    switch (spec_.pattern) {
      case KeyPattern::Uniform:
        rank = rng_.below(rankSpace());
        break;
      case KeyPattern::Zipf:
        rank = drawZipf();
        break;
      case KeyPattern::Scan:
        rank = drawScan();
        break;
      case KeyPattern::PhaseFlip:
        rank = scanPhase() ? drawScan() : drawZipf();
        break;
    }
    ++pos_;
    return rank;
}

std::uint64_t
KeyStream::next()
{
    return rankToKey(nextRank());
}

void
KeyStream::reset()
{
    rng_ = Rng(spec_.seed);
    pos_ = 0;
    scanPos_ = 0;
    drift_ = 0;
}

} // namespace adcache
