#include "workloads/suite.hh"

#include <algorithm>

#include "util/logging.hh"

namespace adcache
{

namespace
{

constexpr std::uint64_t KB = 1024;
constexpr std::uint64_t MB = 1024 * 1024;

/** Instruction-mix archetypes. */
enum class Mix
{
    Int,    //!< SPECint-like: branchy, pointer-ish
    Fp,     //!< SPECfp-like: FP heavy, predictable branches, high ILP
    Media,  //!< streaming media: loads + moderate branching
};

void
applyMix(PhaseSpec &p, Mix mix)
{
    switch (mix) {
      case Mix::Int:
        p.loadFrac = 0.26;
        p.storeFrac = 0.11;
        p.branchFrac = 0.14;
        p.fpAddFrac = 0.0;
        p.fpDivFrac = 0.0;
        p.intMultFrac = 0.02;
        p.branchRandomFrac = 0.08;
        p.depWindow = 12;
        p.codeFootprint = 24 * KB;
        break;
      case Mix::Fp:
        p.loadFrac = 0.30;
        p.storeFrac = 0.12;
        p.branchFrac = 0.06;
        p.fpAddFrac = 0.20;
        p.fpDivFrac = 0.01;
        p.intMultFrac = 0.02;
        p.branchRandomFrac = 0.02;
        p.depWindow = 28;
        p.codeFootprint = 12 * KB;
        break;
      case Mix::Media:
        p.loadFrac = 0.28;
        p.storeFrac = 0.10;
        p.branchFrac = 0.10;
        p.fpAddFrac = 0.05;
        p.fpDivFrac = 0.0;
        p.intMultFrac = 0.03;
        p.branchRandomFrac = 0.04;
        p.depWindow = 20;
        p.codeFootprint = 12 * KB;
        break;
    }
}

/** A region allocator keeping kernels of one workload disjoint. */
class Layout
{
  public:
    /** Reserve @p bytes, aligned to the reference set period so
     *  set-coloured kernels land on set 0 of the reference L2. */
    Addr
    alloc(std::uint64_t bytes)
    {
        const Addr base = cursor_;
        const std::uint64_t aligned =
            (bytes + referenceSetPeriod - 1) / referenceSetPeriod *
            referenceSetPeriod;
        cursor_ += aligned + referenceSetPeriod;
        return base;
    }

  private:
    Addr cursor_ = 0x1000'0000;
};

/**
 * Every program gets a high-locality "stack/locals" region absorbing
 * the bulk of its data references — this is what keeps the synthetic
 * L2 MPKI in the paper's 1–60 range instead of the pathological
 * hundreds an unfiltered miss-kernel would produce.
 */
void
addLocal(PhaseSpec &p, Layout &layout, double weight)
{
    auto local = KernelSpec::zipf(layout.alloc(16 * KB), 16 * KB, 1.2);
    local.weight = weight;
    p.kernels.push_back(local);
}

/** Seed derived from the benchmark name so every program differs. */
std::uint64_t
nameSeed(const std::string &name)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : name) {
        h ^= std::uint8_t(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

BenchmarkDef
newBench(const std::string &name)
{
    BenchmarkDef def;
    def.name = name;
    def.spec.name = name;
    def.spec.seed = nameSeed(name);
    return def;
}

// ---------------------------------------------------------------
// Archetype builders. `main_weight` is the fraction of data
// references going to the distinctive kernels; the rest hit the
// local region.
// ---------------------------------------------------------------

/**
 * Stationary or drifting Zipf temporal locality: LRU-optimal;
 * drifting variants poison LFU's stale frequency counts.
 */
BenchmarkDef
zipfBench(const std::string &name, Mix mix, std::uint64_t bytes,
          double s, double main_weight, bool drifting,
          std::uint64_t drift_period = 6'000,
          std::uint64_t drift_step = 8 * KB)
{
    BenchmarkDef def = newBench(name);
    Layout layout;
    PhaseSpec p;
    applyMix(p, mix);
    p.instructions = 1'000'000;
    KernelSpec k =
        drifting ? KernelSpec::driftingZipf(layout.alloc(bytes), bytes,
                                            s, drift_period, drift_step)
                 : KernelSpec::zipf(layout.alloc(bytes), bytes, s);
    k.weight = main_weight;
    p.kernels.push_back(k);
    addLocal(p, layout, 1.0 - main_weight);
    def.spec.phases.push_back(p);
    return def;
}

/**
 * Media-style hot/cold with bursty cold scans: LFU pins the reused
 * region while periodic scans flush LRU.
 */
BenchmarkDef
burstyBench(const std::string &name, Mix mix, std::uint64_t hot_bytes,
            std::uint64_t hot_run, std::uint64_t cold_run,
            double main_weight, std::uint64_t cold_stride = 64)
{
    BenchmarkDef def = newBench(name);
    Layout layout;
    PhaseSpec p;
    applyMix(p, mix);
    p.instructions = 1'000'000;
    auto hc = KernelSpec::burstyHotCold(
        layout.alloc(hot_bytes + 16 * MB), hot_bytes, 16 * MB, hot_run,
        cold_run, cold_stride, 0.55);
    hc.hotSequential = true;
    hc.weight = main_weight;
    p.kernels.push_back(hc);
    addLocal(p, layout, 1.0 - main_weight);
    def.spec.phases.push_back(p);
    return def;
}

/** Bernoulli hot/cold (gentler LFU preference). */
BenchmarkDef
hotColdBench(const std::string &name, Mix mix, std::uint64_t hot_bytes,
             std::uint64_t cold_bytes, double hot_prob,
             double main_weight, std::uint64_t cold_stride = 64)
{
    BenchmarkDef def = newBench(name);
    Layout layout;
    PhaseSpec p;
    applyMix(p, mix);
    p.instructions = 1'000'000;
    auto hc = KernelSpec::hotCold(layout.alloc(hot_bytes + cold_bytes),
                                  hot_bytes, cold_bytes, hot_prob, 0.5);
    hc.coldStride = cold_stride;
    hc.weight = main_weight;
    p.kernels.push_back(hc);
    addLocal(p, layout, 1.0 - main_weight);
    def.spec.phases.push_back(p);
    return def;
}

/**
 * Pointer-chasing plus background noise (mcf/ft-like). The chase
 * floods every policy equally; a small reused table (hot_weight > 0)
 * is what frequency protection can save from the flood, giving the
 * adaptive cache something to win.
 */
BenchmarkDef
pointerBench(const std::string &name, std::uint64_t chase_bytes,
             double chase_weight, std::uint64_t noise_bytes,
             double noise_weight, double hot_weight = 0.0)
{
    BenchmarkDef def = newBench(name);
    Layout layout;
    PhaseSpec p;
    applyMix(p, Mix::Int);
    p.instructions = 1'000'000;
    p.depWindow = 6;  // dependent chains: little ILP to hide misses
    auto chase =
        KernelSpec::pointerChase(layout.alloc(chase_bytes), chase_bytes);
    chase.weight = chase_weight;
    p.kernels.push_back(chase);
    auto noise =
        KernelSpec::zipf(layout.alloc(noise_bytes), noise_bytes, 0.9);
    noise.weight = noise_weight;
    p.kernels.push_back(noise);
    if (hot_weight > 0.0) {
        auto hot = KernelSpec::burstyHotCold(layout.alloc(17 * MB),
                                             256 * KB, 16 * MB, 12'000,
                                             49'152, 8, 0.5);
        hot.hotSequential = true;
        hot.weight = hot_weight;
        p.kernels.push_back(hot);
    }
    addLocal(p, layout,
             1.0 - chase_weight - noise_weight - hot_weight);
    def.spec.phases.push_back(p);
    return def;
}

/**
 * Linear-loop benchmark: per-set cyclic reuse slightly deeper than
 * the associativity — the pattern where LRU/FIFO collapse and
 * MRU (Fig. 8) or frequency-protection win.
 */
BenchmarkDef
loopBench(const std::string &name, Mix mix, unsigned depth,
          double loop_weight, std::uint64_t hot_bytes,
          double hot_weight)
{
    BenchmarkDef def = newBench(name);
    Layout layout;
    PhaseSpec p;
    applyMix(p, mix);
    p.instructions = 1'000'000;
    auto loop = KernelSpec::setColoredLoop(
        layout.alloc(std::uint64_t(depth) * referenceSetPeriod), 0,
        referenceNumSets, depth);
    loop.weight = loop_weight;
    p.kernels.push_back(loop);
    auto hot = KernelSpec::zipf(layout.alloc(hot_bytes), hot_bytes, 1.0);
    hot.weight = hot_weight;
    p.kernels.push_back(hot);
    addLocal(p, layout, 1.0 - loop_weight - hot_weight);
    def.spec.phases.push_back(p);
    return def;
}

/**
 * ammp-like phase switcher (Fig. 7a): a spatially split prologue,
 * an LFU-dominant middle, an LRU-dominant tail.
 */
BenchmarkDef
ammpBench()
{
    BenchmarkDef def = newBench("ammp");
    Layout layout;
    const Addr hc1 = layout.alloc(17 * MB);
    const Addr dz1 = layout.alloc(2 * MB);
    const Addr lru_region = layout.alloc(2 * MB);
    const Addr local1 = layout.alloc(32 * KB);
    const Addr local2 = layout.alloc(32 * KB);
    const Addr local3 = layout.alloc(32 * KB);

    // Phase 1: the replacement preference is split *spatially* —
    // a bursty reused region confined to the lower half of the sets
    // (LFU territory) runs against drifting temporal locality
    // confined to the upper half (LRU territory), reproducing the
    // mottled prologue of Fig. 7a. Per-set adaptivity wins both
    // halves, which is how the adaptive cache beats either component
    // policy on ammp.
    PhaseSpec p1;
    applyMix(p1, Mix::Fp);
    p1.instructions = 1'600'000;
    {
        auto hc = KernelSpec::burstyHotCold(
            hc1, 512 * 7 * referenceLineSize, 16 * MB, 12'000, 24'576,
            8, 0.5);  // cold confined below -> 6 lines/set per burst
        hc.hotSequential = true;
        hc.spanSets = 512;
        hc.weight = 0.20;
        p1.kernels.push_back(hc);
        auto dz = KernelSpec::driftingZipf(dz1, 1280 * KB, 1.0,
                                           8'000, 64 * KB);
        dz.firstSet = 512;
        dz.spanSets = 512;
        dz.weight = 0.20;
        p1.kernels.push_back(dz);
        auto local = KernelSpec::zipf(local1, 16 * KB, 1.2);
        local.weight = 0.60;
        p1.kernels.push_back(local);
    }
    def.spec.phases.push_back(p1);

    // Phase 2: LFU-dominant. The program keeps working on the same
    // reused array as phase 1 (so the frequency state carries over)
    // but the drifting traffic pauses: the reuse pattern now owns
    // the machine and LFU wins across the touched sets.
    PhaseSpec p2;
    applyMix(p2, Mix::Fp);
    p2.instructions = 700'000;
    {
        auto hc = KernelSpec::burstyHotCold(
            hc1, 512 * 7 * referenceLineSize, 16 * MB, 12'000, 24'576,
            8, 0.5);
        hc.hotSequential = true;
        hc.spanSets = 512;
        hc.weight = 0.30;
        p2.kernels.push_back(hc);
        auto local = KernelSpec::zipf(local2, 16 * KB, 1.2);
        local.weight = 0.70;
        p2.kernels.push_back(local);
    }
    def.spec.phases.push_back(p2);

    // Phase 3: LRU-dominant drifting temporal locality.
    PhaseSpec p3;
    applyMix(p3, Mix::Fp);
    p3.instructions = 600'000;
    {
        auto dz = KernelSpec::driftingZipf(lru_region, 1280 * KB, 1.0,
                                           8'000, 32 * KB);
        dz.weight = 0.26;
        p3.kernels.push_back(dz);
        auto local = KernelSpec::zipf(local3, 16 * KB, 1.2);
        local.weight = 0.74;
        p3.kernels.push_back(local);
    }
    def.spec.phases.push_back(p3);
    return def;
}

/**
 * mgrid-like spatial drift (Fig. 7b): LFU-favourable sweeps whose
 * share recedes phase by phase while LRU-friendly temporal locality
 * takes over.
 */
BenchmarkDef
mgridBench()
{
    BenchmarkDef def = newBench("mgrid");
    Layout layout;
    const Addr hot_region = layout.alloc(17 * MB);
    const Addr scan_region = layout.alloc(16 * MB);
    const Addr lru_region = layout.alloc(3 * MB);
    const Addr local = layout.alloc(32 * KB);

    const unsigned steps = 4;
    for (unsigned step = 0; step < steps; ++step) {
        PhaseSpec p;
        applyMix(p, Mix::Fp);
        p.instructions = 240'000;
        // The LFU-favourable region recedes from all sets toward the
        // low sets (Fig. 7b's spatially varying transition): each
        // step confines the reused array to fewer sets while the
        // LRU-friendly traversal takes over the rest.
        const unsigned span = referenceNumSets - 192 * step;
        const double lfu_share = 0.26 * (1.0 - 0.22 * step);
        auto hc = KernelSpec::burstyHotCold(
            hot_region, std::uint64_t(span) * 7 * referenceLineSize,
            16 * MB, 16'000, 49'152, 8, 0.5);
        hc.hotSequential = true;
        hc.spanSets = span;
        hc.weight = lfu_share * 0.85;
        p.kernels.push_back(hc);
        auto sweep = KernelSpec::stridedSweep(
            scan_region, 8 * MB, 3 * referenceLineSize, 2);
        sweep.weight = lfu_share * 0.15;
        p.kernels.push_back(sweep);
        auto dz = KernelSpec::driftingZipf(lru_region, 1280 * KB, 1.0,
                                           8'000, 64 * KB);
        dz.weight = 0.26 - lfu_share;
        p.kernels.push_back(dz);
        auto loc = KernelSpec::zipf(local, 16 * KB, 1.2);
        loc.weight = 0.74;
        p.kernels.push_back(loc);
        def.spec.phases.push_back(p);
    }
    return def;
}

/**
 * Dithering adversary (unepic/tigr): micro-phases alternate between
 * LRU- and LFU-friendly faster than the miss history can settle, so
 * adaptivity pays a small switching tax — the paper's worst cases
 * (+1.2 % CPI unepic, +2.7 % misses tigr).
 */
BenchmarkDef
ditherBench(const std::string &name, Mix mix,
            std::uint64_t micro_phase, double main_weight)
{
    BenchmarkDef def = newBench(name);
    Layout layout;
    const Addr hc_region = layout.alloc(9 * MB);
    const Addr dz_region = layout.alloc(1 * MB);
    const Addr local = layout.alloc(32 * KB);

    PhaseSpec a;
    applyMix(a, mix);
    a.instructions = micro_phase;
    {
        auto hc = KernelSpec::burstyHotCold(hc_region, 256 * KB, 8 * MB,
                                            12'000, 49'152, 8, 0.5);
        hc.hotSequential = true;
        hc.weight = main_weight;
        a.kernels.push_back(hc);
        auto loc = KernelSpec::zipf(local, 16 * KB, 1.2);
        loc.weight = 1.0 - main_weight;
        a.kernels.push_back(loc);
    }

    PhaseSpec b = a;
    b.kernels.clear();
    {
        auto dz = KernelSpec::driftingZipf(dz_region, 768 * KB, 1.0,
                                           8'000, 64 * KB);
        dz.weight = main_weight;
        b.kernels.push_back(dz);
        auto loc = KernelSpec::zipf(local, 16 * KB, 1.2);
        loc.weight = 1.0 - main_weight;
        b.kernels.push_back(loc);
    }

    def.spec.phases = {a, b};
    return def;
}

/** Streaming sweeps (swim-like): every policy thrashes equally. */
BenchmarkDef
streamBench(const std::string &name, Mix mix, std::uint64_t bytes,
            double main_weight)
{
    BenchmarkDef def = newBench(name);
    Layout layout;
    PhaseSpec p;
    applyMix(p, mix);
    p.instructions = 1'000'000;
    auto a = KernelSpec::linearLoop(layout.alloc(bytes), bytes, 8);
    a.weight = main_weight;
    p.kernels.push_back(a);
    addLocal(p, layout, 1.0 - main_weight);
    def.spec.phases.push_back(p);
    return def;
}

/** Cache-resident extended-set program: negligible L2 misses. */
BenchmarkDef
residentBench(const std::string &name, Mix mix, std::uint64_t bytes)
{
    BenchmarkDef def = newBench(name);
    Layout layout;
    PhaseSpec p;
    applyMix(p, mix);
    p.instructions = 1'000'000;
    auto main = KernelSpec::zipf(layout.alloc(bytes), bytes, 0.9);
    main.weight = 0.4;
    p.kernels.push_back(main);
    addLocal(p, layout, 0.6);
    def.spec.phases.push_back(p);
    return def;
}

std::vector<BenchmarkDef>
buildSuite()
{
    std::vector<BenchmarkDef> suite;
    auto add = [&](BenchmarkDef def, bool primary) {
        def.primary = primary;
        suite.push_back(std::move(def));
    };

    // ---------------- Primary set (26 programs, paper order) -------
    add(ammpBench(), true);
    add(zipfBench("applu", Mix::Fp, 3 * MB, 0.95, 0.16, false),
        true);
    add(burstyBench("art-1", Mix::Fp, 448 * KB, 22'000, 49'152, 0.30,
                    8),
        true);
    add(burstyBench("art-2", Mix::Fp, 384 * KB, 18'000, 49'152, 0.28,
                    8),
        true);
    add(zipfBench("bzip2", Mix::Int, 2 * MB, 1.0, 0.13, true, 12'000,
                  32 * KB),
        true);
    add(zipfBench("equake", Mix::Fp, 3 * MB, 0.95, 0.16, false),
        true);
    add(burstyBench("facerec", Mix::Fp, 320 * KB, 15'000, 49'152,
                    0.18, 8),
        true);
    add(zipfBench("fma3d", Mix::Fp, 2560 * KB, 0.95, 0.16, true,
                  12'000, 32 * KB),
        true);
    add(pointerBench("ft", 1536 * KB, 0.05, 768 * KB, 0.10), true);
    add(zipfBench("gap", Mix::Int, 2 * MB, 1.0, 0.12, false), true);
    add(loopBench("gcc-1", Mix::Int, 12, 0.10, 384 * KB, 0.10), true);
    add(zipfBench("gcc-2", Mix::Int, 2 * MB, 0.95, 0.18, true, 10'000,
                  48 * KB),
        true);
    add(zipfBench("lucas", Mix::Fp, 2560 * KB, 1.0, 0.20, true,
                  10'000, 64 * KB),
        true);
    add(pointerBench("mcf", 6 * MB, 0.08, 2 * MB, 0.08, 0.10), true);
    add(mgridBench(), true);
    add(zipfBench("parser", Mix::Int, 1536 * KB, 1.0, 0.13, false),
        true);
    add(streamBench("swim", Mix::Fp, 2 * MB, 0.35), true);
    add(burstyBench("tiff2rgba", Mix::Media, 320 * KB, 15'000, 49'152,
                    0.22, 8),
        true);
    add(pointerBench("twolf", 1 * MB, 0.03, 768 * KB, 0.08, 0.08), true);
    add(ditherBench("unepic", Mix::Media, 80'000, 0.14), true);
    add(zipfBench("vpr-1", Mix::Int, 2 * MB, 0.95, 0.14, false), true);
    add(zipfBench("vpr-2", Mix::Int, 2560 * KB, 0.95, 0.14, false),
        true);
    add(zipfBench("wupwise", Mix::Fp, 2 * MB, 0.95, 0.12, false), true);
    add(burstyBench("x11quake-1", Mix::Media, 384 * KB, 19'000,
                    49'152, 0.28, 8),
        true);
    add(burstyBench("x11quake-2", Mix::Media, 320 * KB, 16'000,
                    49'152, 0.26, 8),
        true);

    // xanim: a lighter two-phase switcher.
    {
        BenchmarkDef def = newBench("xanim");
        Layout layout;
        const Addr r1 = layout.alloc(9 * MB);
        const Addr r2 = layout.alloc(2 * MB);
        const Addr local = layout.alloc(32 * KB);
        PhaseSpec p1;
        applyMix(p1, Mix::Media);
        p1.instructions = 300'000;
        {
            auto hc = KernelSpec::burstyHotCold(r1, 320 * KB, 8 * MB,
                                                15'000, 49'152, 8, 0.5);
            hc.hotSequential = true;
            hc.weight = 0.24;
            p1.kernels.push_back(hc);
            auto loc = KernelSpec::zipf(local, 16 * KB, 1.2);
            loc.weight = 0.76;
            p1.kernels.push_back(loc);
        }
        PhaseSpec p2 = p1;
        p2.kernels.clear();
        {
            auto dz = KernelSpec::driftingZipf(r2, 1280 * KB, 1.0,
                                               8'000, 64 * KB);
            dz.weight = 0.24;
            p2.kernels.push_back(dz);
            auto loc = KernelSpec::zipf(local, 16 * KB, 1.2);
            loc.weight = 0.76;
            p2.kernels.push_back(loc);
        }
        def.spec.phases = {p1, p2};
        add(std::move(def), true);
    }

    // ---------------- Extended set ---------------------------------
    // Cache-resident and low-intensity programs from the remaining
    // suites; names follow the paper's sources (SPEC 2000 programs
    // not in the primary set, MediaBench, MiBench, BioBench,
    // pointer-intensive and graphics workloads).
    struct Resident
    {
        const char *name;
        Mix mix;
        unsigned kb;
    };
    const Resident residents[] = {
        {"crafty", Mix::Int, 256},    {"eon-1", Mix::Int, 192},
        {"eon-2", Mix::Int, 224},     {"gzip-1", Mix::Int, 320},
        {"gzip-2", Mix::Int, 288},    {"gzip-3", Mix::Int, 352},
        {"gzip-4", Mix::Int, 256},    {"gzip-5", Mix::Int, 384},
        {"perlbmk-1", Mix::Int, 288}, {"perlbmk-2", Mix::Int, 320},
        {"vortex-1", Mix::Int, 416},  {"vortex-2", Mix::Int, 384},
        {"vortex-3", Mix::Int, 448},  {"mesa", Mix::Fp, 320},
        {"galgel", Mix::Fp, 448},     {"sixtrack", Mix::Fp, 384},
        {"apsi", Mix::Fp, 448},       {"mp3dec", Mix::Media, 192},
        {"mp3enc", Mix::Media, 256},  {"adpcm-enc", Mix::Media, 64},
        {"adpcm-dec", Mix::Media, 64},{"g721-enc", Mix::Media, 96},
        {"g721-dec", Mix::Media, 96}, {"gsm-enc", Mix::Media, 128},
        {"gsm-dec", Mix::Media, 128}, {"jpeg-enc", Mix::Media, 224},
        {"jpeg-dec", Mix::Media, 192},{"mpeg2-enc", Mix::Media, 288},
        {"mpeg2-dec", Mix::Media, 256},{"pegwit-enc", Mix::Media, 160},
        {"pegwit-dec", Mix::Media, 160},{"rasta", Mix::Media, 192},
        {"basicmath", Mix::Int, 96},  {"bitcount", Mix::Int, 64},
        {"qsort", Mix::Int, 256},     {"susan-s", Mix::Media, 192},
        {"susan-e", Mix::Media, 224}, {"susan-c", Mix::Media, 208},
        {"dijkstra", Mix::Int, 160},  {"patricia", Mix::Int, 288},
        {"stringsearch", Mix::Int, 96},{"blowfish-enc", Mix::Int, 128},
        {"blowfish-dec", Mix::Int, 128},{"rijndael-enc", Mix::Int, 160},
        {"rijndael-dec", Mix::Int, 160},{"sha", Mix::Int, 96},
        {"crc32", Mix::Int, 64},      {"fft", Mix::Fp, 320},
        {"fft-inv", Mix::Fp, 320},    {"lame", Mix::Media, 352},
        {"typeset", Mix::Int, 416},   {"ispell", Mix::Int, 224},
        {"mummer", Mix::Int, 448},    {"clustalw", Mix::Int, 384},
        {"hmmer", Mix::Int, 416},     {"blastp", Mix::Int, 448},
        {"fasta-dna", Mix::Int, 352}, {"phylip", Mix::Fp, 320},
        {"bc", Mix::Int, 192},        {"yacr2", Mix::Int, 256},
        {"ks", Mix::Int, 224},        {"anagram", Mix::Int, 160},
        {"tsp", Mix::Int, 384},       {"bh", Mix::Fp, 352},
        {"em3d", Mix::Int, 448},      {"perimeter", Mix::Int, 320},
        {"treeadd", Mix::Int, 288},   {"tachyon", Mix::Fp, 416},
        {"povray", Mix::Fp, 448},     {"quake3-demo", Mix::Media, 384},
        {"doom3-timedemo", Mix::Media, 448},
    };
    for (const auto &r : residents)
        add(residentBench(r.name, r.mix, std::uint64_t(r.kb) * KB),
            false);

    // tigr: the extended-set worst case for misses (+2.7 % in the
    // paper) — a mild dithering adversary with modest traffic.
    add(ditherBench("tigr", Mix::Int, 80'000, 0.08), false);

    // A few moderate-traffic extended programs near the 1 MPKI
    // threshold, to keep the extended-set averages honest.
    add(zipfBench("mesa-tex", Mix::Fp, 640 * KB, 0.95, 0.18, false),
        false);
    add(zipfBench("epic", Mix::Media, 704 * KB, 0.95, 0.15, false),
        false);
    add(hotColdBench("ghostscript", Mix::Int, 96 * KB, 2 * MB, 0.55,
                     0.12, 16),
        false);

    return suite;
}

} // namespace

const std::vector<BenchmarkDef> &
benchmarkSuite()
{
    static const std::vector<BenchmarkDef> suite = buildSuite();
    return suite;
}

std::vector<const BenchmarkDef *>
primaryBenchmarks()
{
    std::vector<const BenchmarkDef *> out;
    for (const auto &b : benchmarkSuite())
        if (b.primary)
            out.push_back(&b);
    return out;
}

std::vector<const BenchmarkDef *>
allBenchmarks()
{
    std::vector<const BenchmarkDef *> out;
    for (const auto &b : benchmarkSuite())
        out.push_back(&b);
    return out;
}

const BenchmarkDef *
findBenchmark(const std::string &name)
{
    for (const auto &b : benchmarkSuite())
        if (b.name == name)
            return &b;
    return nullptr;
}

std::unique_ptr<TraceSource>
makeBenchmark(const BenchmarkDef &def)
{
    return std::make_unique<WorkloadGenerator>(def.spec);
}

std::unique_ptr<TraceSource>
makeBenchmark(const BenchmarkDef &def, std::uint64_t seed)
{
    WorkloadSpec spec = def.spec;
    spec.seed = seed;
    return std::make_unique<WorkloadGenerator>(spec);
}

} // namespace adcache
