#include "workloads/workload.hh"

#include "util/logging.hh"

namespace adcache
{

WorkloadGenerator::WorkloadGenerator(WorkloadSpec spec)
    : spec_(std::move(spec)), rng_(spec_.seed)
{
    adcache_assert(!spec_.phases.empty());
    for (const auto &phase : spec_.phases) {
        adcache_assert(phase.instructions > 0);
        adcache_assert(!phase.kernels.empty() ||
                       (phase.loadFrac == 0 && phase.storeFrac == 0));
    }
    enterPhase(0);
}

void
WorkloadGenerator::reset()
{
    rng_ = Rng(spec_.seed);
    pcOffset_ = 0;
    nextDst_ = 1;
    recentPos_ = 0;
    done_ = false;
    enterPhase(0);
}

void
WorkloadGenerator::enterPhase(std::size_t index)
{
    phaseIndex_ = index;
    phaseInstrs_ = 0;
    const PhaseSpec &phase = spec_.phases[index];

    kernels_.clear();
    kernelCdf_.clear();
    double total = 0.0;
    for (const auto &ks : phase.kernels) {
        kernels_.push_back(makeKernel(ks, rng_));
        total += ks.weight;
        kernelCdf_.push_back(total);
    }
    for (auto &c : kernelCdf_)
        c /= total > 0.0 ? total : 1.0;

    recentDst_.assign(std::max(1u, phase.depWindow), noReg);

    // Lay out the phase's static code. The layout generator is
    // seeded from (workload seed, phase index) only, so re-entering
    // a phase reproduces the same program text.
    Rng layout(spec_.seed ^
               (0x9E3779B97F4A7C15ULL * (std::uint64_t(index) + 1)));
    const std::size_t num_slots =
        std::max<std::size_t>(2, phase.codeFootprint / 4);
    slots_.assign(num_slots, CodeSlot{});
    for (auto &slot : slots_) {
        const double u = layout.uniform();
        double acc = phase.loadFrac;
        if (u < acc) {
            slot.cls = InstrClass::Load;
        } else if (u < (acc += phase.storeFrac)) {
            slot.cls = InstrClass::Store;
        } else if (u < (acc += phase.branchFrac)) {
            slot.cls = InstrClass::Branch;
            slot.randomOutcome = layout.chance(phase.branchRandomFrac);
            // Most branches are biased taken (loop-like), some the
            // other way (error paths), mirroring real code.
            slot.takenBias = layout.chance(0.75);
        } else if (u < (acc += phase.fpAddFrac)) {
            slot.cls = InstrClass::FpAdd;
        } else if (u < (acc += phase.fpDivFrac)) {
            slot.cls = InstrClass::FpDiv;
        } else if (u < (acc += phase.intMultFrac)) {
            slot.cls = InstrClass::IntMult;
        } else {
            slot.cls = InstrClass::IntAlu;
        }
    }
    // The final slot closes the loop body.
    slots_.back() = CodeSlot{InstrClass::Branch, true, false, true};
}

Addr
WorkloadGenerator::pickDataAddr()
{
    adcache_assert(!kernels_.empty());
    std::size_t k = 0;
    if (kernels_.size() > 1) {
        const double u = rng_.uniform();
        while (k + 1 < kernelCdf_.size() && u >= kernelCdf_[k])
            ++k;
    }
    // 8-byte-aligned word within the block the kernel selected.
    const Addr block = kernels_[k]->next(rng_) & ~Addr(7);
    return block;
}

bool
WorkloadGenerator::next(TraceInstr &out)
{
    if (done_)
        return false;

    const PhaseSpec &phase = spec_.phases[phaseIndex_];

    out = TraceInstr{};
    out.pc = codeBase_ + pcOffset_;
    const CodeSlot &slot = slots_[pcOffset_ / 4 % slots_.size()];

    // Advance the program counter through the loop body.
    pcOffset_ += 4;
    if (pcOffset_ >= slots_.size() * 4)
        pcOffset_ = 0;

    out.cls = slot.cls;

    // Source operands come from recently produced values.
    auto pick_src = [&]() -> std::uint8_t {
        const auto idx = rng_.below(recentDst_.size());
        return recentDst_[idx];
    };

    switch (out.cls) {
      case InstrClass::Load:
        out.memAddr = pickDataAddr();
        out.memSize = 8;
        out.src1 = pick_src();  // address base register
        break;
      case InstrClass::Store:
        out.memAddr = pickDataAddr();
        out.memSize = 8;
        out.src1 = pick_src();  // address
        out.src2 = pick_src();  // data
        break;
      case InstrClass::Branch:
        out.src1 = pick_src();
        if (slot.loopBack) {
            // The loop-closing backward branch: almost always taken.
            out.taken = !rng_.chance(0.02);
            out.target = codeBase_;
        } else if (slot.randomOutcome) {
            out.taken = rng_.chance(0.5);
            out.target = out.pc + 64;
        } else {
            const double p = slot.takenBias
                                 ? phase.branchTakenProb
                                 : 1.0 - phase.branchTakenProb;
            out.taken = rng_.chance(p);
            out.target = out.pc + 32;
        }
        break;
      default:
        out.src1 = pick_src();
        out.src2 = pick_src();
        break;
    }

    // Destination register (branches and stores write none).
    if (!out.isBranch() && !out.isStore()) {
        out.dst = nextDst_;
        nextDst_ = nextDst_ == numArchRegs - 1
                       ? std::uint8_t{1}
                       : std::uint8_t(nextDst_ + 1);
        recentDst_[recentPos_] = out.dst;
        recentPos_ = (recentPos_ + 1) % recentDst_.size();
    }

    // Phase bookkeeping.
    if (++phaseInstrs_ >= phase.instructions) {
        const std::size_t next_phase = phaseIndex_ + 1;
        if (next_phase < spec_.phases.size()) {
            enterPhase(next_phase);
        } else if (spec_.loopPhases) {
            enterPhase(0);
        } else {
            done_ = true;
        }
    }
    return true;
}

std::unique_ptr<TraceSource>
makeWorkload(const WorkloadSpec &spec)
{
    return std::make_unique<WorkloadGenerator>(spec);
}

} // namespace adcache
