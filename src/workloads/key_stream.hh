/**
 * @file
 * Reusable synthetic key streams for key-value cache experiments:
 * seeded, parameterized generators producing the reference patterns
 * the kv benches and tests share instead of hand-rolling them —
 * uniform, Zipf (with optional hot-set drift), sequential scans, and
 * a phase-flip composition that alternates a Zipf-friendly and a
 * scan-friendly regime to exercise policy adaptation.
 */

#ifndef ADCACHE_WORKLOADS_KEY_STREAM_HH
#define ADCACHE_WORKLOADS_KEY_STREAM_HH

#include <cstdint>
#include <memory>
#include <string>

#include "util/rng.hh"

namespace adcache
{

/** Reference key-stream shapes. */
enum class KeyPattern
{
    Uniform,   //!< uniform over the key space
    Zipf,      //!< Zipf-ranked popularity, optional hot-set drift
    Scan,      //!< sequential sweep over a span, wrapping
    PhaseFlip, //!< alternate Zipf and Scan every phasePeriod draws
};

/** Printable pattern name. */
const char *keyPatternName(KeyPattern pattern);

/** Parameters of a KeyStream. */
struct KeyStreamSpec
{
    KeyPattern pattern = KeyPattern::Zipf;

    /** Distinct key ranks [0, keySpace). */
    std::uint64_t keySpace = 1 << 20;

    /** Zipf exponent (popularity skew). */
    double skew = 0.9;

    /**
     * Hot-set drift: after this many draws the rank-to-key mapping
     * rotates, relocating the entire popularity ranking (0 = static).
     */
    std::uint64_t driftEvery = 0;

    /** Scan length before wrapping (0 = the whole key space). */
    std::uint64_t scanSpan = 0;

    /** PhaseFlip: draws per phase before switching regime. */
    std::uint64_t phasePeriod = 100'000;

    /**
     * Scatter ranks across the key space through a 64-bit mix so
     * popular keys do not cluster in adjacent shards/buckets. Off,
     * rank r maps to key r (deterministic tests).
     */
    bool scramble = true;

    std::uint64_t seed = 1;

    /** "zipf(0.9)@1048576" style description for reports. */
    std::string describe() const;
};

/** Deterministic generator of one key per next() call. */
class KeyStream
{
  public:
    explicit KeyStream(const KeyStreamSpec &spec);

    /** Draw the next key. */
    std::uint64_t next();

    /** Restart the stream from its seed. */
    void reset();

    /** Draws made since construction or reset(). */
    std::uint64_t position() const { return pos_; }

    /** True while a PhaseFlip stream is in its scan regime. */
    bool scanPhase() const;

    const KeyStreamSpec &spec() const { return spec_; }

  private:
    std::uint64_t drawZipf();
    std::uint64_t drawScan();
    std::uint64_t rankToKey(std::uint64_t rank) const;

    KeyStreamSpec spec_;
    Rng rng_;
    std::unique_ptr<ZipfSampler> zipf_; //!< built iff pattern needs it
    std::uint64_t pos_ = 0;
    std::uint64_t scanPos_ = 0;
    std::uint64_t drift_ = 0; //!< completed hot-set rotations
};

} // namespace adcache

#endif // ADCACHE_WORKLOADS_KEY_STREAM_HH
