/**
 * @file
 * Reusable synthetic key streams for key-value cache experiments:
 * seeded, parameterized generators producing the reference patterns
 * the kv benches and tests share instead of hand-rolling them —
 * uniform, Zipf (with optional hot-set drift), sequential scans, and
 * a phase-flip composition that alternates a Zipf-friendly and a
 * scan-friendly regime to exercise policy adaptation.
 */

#ifndef ADCACHE_WORKLOADS_KEY_STREAM_HH
#define ADCACHE_WORKLOADS_KEY_STREAM_HH

#include <cstdint>
#include <memory>
#include <string>

#include "util/rng.hh"

namespace adcache
{

/** Reference key-stream shapes. */
enum class KeyPattern
{
    Uniform,   //!< uniform over the key space
    Zipf,      //!< Zipf-ranked popularity, optional hot-set drift
    Scan,      //!< sequential sweep over a span, wrapping
    PhaseFlip, //!< alternate Zipf and Scan every phasePeriod draws
};

/** Printable pattern name. */
const char *keyPatternName(KeyPattern pattern);

/** Parameters of a KeyStream. */
struct KeyStreamSpec
{
    KeyPattern pattern = KeyPattern::Zipf;

    /** Distinct key ranks [0, keySpace). */
    std::uint64_t keySpace = 1 << 20;

    /** Zipf exponent (popularity skew). */
    double skew = 0.9;

    /**
     * Hot-set drift: after this many draws the rank-to-key mapping
     * rotates, relocating the entire popularity ranking (0 = static).
     */
    std::uint64_t driftEvery = 0;

    /** Scan length before wrapping (0 = the whole key space). */
    std::uint64_t scanSpan = 0;

    /** PhaseFlip: draws per phase before switching regime. */
    std::uint64_t phasePeriod = 100'000;

    /**
     * Scatter ranks across the key space through a 64-bit mix so
     * popular keys do not cluster in adjacent shards/buckets. Off,
     * rank r maps to key r (deterministic tests).
     */
    bool scramble = true;

    std::uint64_t seed = 1;

    /**
     * Per-client partitioning (numClients > 1): this stream is
     * client clientIndex of numClients. With disjoint set, the
     * stream draws only keys whose unscrambled rank satisfies
     * rank % numClients == clientIndex — each client owns a slice of
     * the key space (the YCSB load-phase split). Without disjoint,
     * every client draws the full distribution and only the seed is
     * salted (independent same-shape streams).
     */
    unsigned numClients = 1;
    unsigned clientIndex = 0;
    bool disjoint = false;

    /**
     * Client @p client's slice of an @p num_clients-way run: salts
     * the seed per client and records the partition. This replaces
     * the ad-hoc "seed + thread" copies the kv bench drivers used to
     * hand-roll.
     */
    KeyStreamSpec forClient(unsigned client, unsigned num_clients,
                            bool disjoint_slice = false) const;

    /** "zipf(0.9)@1048576" style description for reports. */
    std::string describe() const;
};

/**
 * Deterministic variable-size value generation: payload bytes and
 * size derive from the key alone, so any client (or the server's
 * read-through loader) can both produce and validate any entry
 * without coordination.
 */
struct ValueSpec
{
    std::size_t minBytes = 16;
    std::size_t maxBytes = 16; //!< inclusive; == minBytes for fixed

    std::string describe() const;
};

/** Size of @p key's value under @p spec (deterministic). */
std::size_t valueSizeFor(std::uint64_t key, const ValueSpec &spec);

/** @p key's value under @p spec: a "v<key>:" identity header padded
 *  with key-derived bytes to valueSizeFor(). */
std::string valueFor(std::uint64_t key, const ValueSpec &spec);

/** Deterministic generator of one key per next() call. */
class KeyStream
{
  public:
    explicit KeyStream(const KeyStreamSpec &spec);

    /** Draw the next key. */
    std::uint64_t next();

    /**
     * Draw the next rank (the popularity index before key mapping);
     * next() is keyAt(nextRank()). Rank-level access is what scan
     * runs and latest-window composition (the YCSB driver) build on.
     */
    std::uint64_t nextRank();

    /**
     * The key of @p rank under this stream's partition, drift and
     * scrambling. Seed-independent: every client of the same spec
     * shape agrees on the mapping, which is what makes cross-client
     * reads of loaded records meaningful.
     */
    std::uint64_t keyAt(std::uint64_t rank) const
    {
        return rankToKey(rank);
    }

    /** Restart the stream from its seed. */
    void reset();

    /** Draws made since construction or reset(). */
    std::uint64_t position() const { return pos_; }

    /** True while a PhaseFlip stream is in its scan regime. */
    bool scanPhase() const;

    const KeyStreamSpec &spec() const { return spec_; }

    /** Ranks this stream draws from: the client's slice when the
     *  partition is disjoint, the whole key space otherwise. */
    std::uint64_t rankSpace() const;

  private:
    std::uint64_t drawZipf();
    std::uint64_t drawScan();
    std::uint64_t rankToKey(std::uint64_t rank) const;

    KeyStreamSpec spec_;
    Rng rng_;
    std::unique_ptr<ZipfSampler> zipf_; //!< small key spaces
    std::unique_ptr<ZipfApproxSampler> zipfApprox_; //!< large ones
    std::uint64_t pos_ = 0;
    std::uint64_t scanPos_ = 0;
    std::uint64_t drift_ = 0; //!< completed hot-set rotations
};

} // namespace adcache

#endif // ADCACHE_WORKLOADS_KEY_STREAM_HH
