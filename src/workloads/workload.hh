/**
 * @file
 * Phase-structured synthetic workload: composes access-pattern
 * kernels with an instruction mix into a full TraceSource carrying
 * register dependences, branch behaviour and code footprint — the
 * information the out-of-order timing model consumes.
 */

#ifndef ADCACHE_WORKLOADS_WORKLOAD_HH
#define ADCACHE_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "trace/source.hh"
#include "util/rng.hh"
#include "workloads/kernels.hh"

namespace adcache
{

/** One phase of execution: kernels + instruction mix. */
struct PhaseSpec
{
    /** Dynamic instructions in this phase before moving on. */
    std::uint64_t instructions = 1'000'000;

    /** Kernel mixture; weights need not sum to 1. */
    std::vector<KernelSpec> kernels;

    // Instruction mix (fractions of all instructions; remainder is
    // plain integer ALU work).
    double loadFrac = 0.25;
    double storeFrac = 0.10;
    double branchFrac = 0.12;
    double fpAddFrac = 0.0;
    double fpDivFrac = 0.0;
    double intMultFrac = 0.02;

    /** Probability a (non-random) branch is taken. */
    double branchTakenProb = 0.88;
    /** Fraction of branches with 50/50 data-dependent outcomes. */
    double branchRandomFrac = 0.06;

    /** Static code footprint in bytes (drives the I-cache). */
    std::uint64_t codeFootprint = 8 * 1024;

    /**
     * Dependence window: each source register is drawn from the
     * destinations of the last `depWindow` instructions. Small
     * windows serialise execution (low ILP); large windows expose
     * parallelism (high ILP / MLP).
     */
    unsigned depWindow = 16;
};

/** A named workload: an (optionally looping) list of phases. */
struct WorkloadSpec
{
    std::string name;
    std::vector<PhaseSpec> phases;
    /** Restart from phase 0 when the last phase ends. */
    bool loopPhases = true;
    std::uint64_t seed = 1;
};

/** Generates the instruction stream described by a WorkloadSpec. */
class WorkloadGenerator : public TraceSource
{
  public:
    explicit WorkloadGenerator(WorkloadSpec spec);

    bool next(TraceInstr &out) override;
    void reset() override;

    const WorkloadSpec &spec() const { return spec_; }

  private:
    /**
     * Static properties of one code slot (one 4-byte instruction
     * position in the phase's loop body). Classes are fixed per slot
     * — as in real code — so the branch predictor sees stable
     * per-PC behaviour; only data addresses and data-dependent
     * branch outcomes vary dynamically.
     */
    struct CodeSlot
    {
        InstrClass cls = InstrClass::IntAlu;
        bool loopBack = false;       //!< closes the loop body
        bool randomOutcome = false;  //!< data-dependent 50/50 branch
        bool takenBias = true;       //!< direction of the usual bias
    };

    void enterPhase(std::size_t index);
    Addr pickDataAddr();

    WorkloadSpec spec_;
    Rng rng_;

    std::size_t phaseIndex_ = 0;
    std::uint64_t phaseInstrs_ = 0;
    std::vector<std::unique_ptr<AccessKernel>> kernels_;
    std::vector<double> kernelCdf_;
    std::vector<CodeSlot> slots_;

    // Code layout: a loop over [codeBase, codeBase+footprint).
    Addr codeBase_ = 0x0040'0000;
    std::uint64_t pcOffset_ = 0;

    // Register allocation state.
    std::uint8_t nextDst_ = 1;
    std::vector<std::uint8_t> recentDst_;
    std::size_t recentPos_ = 0;
    bool done_ = false;
};

/** Convenience: wrap a spec in a generator. */
std::unique_ptr<TraceSource> makeWorkload(const WorkloadSpec &spec);

} // namespace adcache

#endif // ADCACHE_WORKLOADS_WORKLOAD_HH
