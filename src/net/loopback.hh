/**
 * @file
 * The deterministic in-process transport of the serving subsystem.
 *
 * KvChannel is the per-connection protocol engine BOTH transports
 * share: it reassembles frames from arbitrarily chunked bytes,
 * decodes and dispatches each request to the KvService, and appends
 * the encoded responses to an output buffer. The socket server owns
 * one per connection; LoopbackConnection wraps one directly so every
 * protocol/service path is unit-testable — and TSan-checkable —
 * without a single real socket or syscall.
 *
 * Error isolation matches the wire contract (net/protocol.hh): a
 * well-framed but undecodable body answers Error and the channel
 * keeps going; a corrupt length prefix (or a truncated frame at
 * close) kills the channel, mirroring a connection teardown.
 */

#ifndef ADCACHE_NET_LOOPBACK_HH
#define ADCACHE_NET_LOOPBACK_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/protocol.hh"
#include "net/service.hh"

namespace adcache::net
{

/** Per-connection protocol engine (see file comment). */
class KvChannel
{
  public:
    explicit KvChannel(KvService &service) : service_(service) {}

    /**
     * Ingest @p bytes from the peer; responses for every completed
     * request are appended to @p out.
     * @return false when the stream is corrupt and the connection
     *         must be closed (any buffered output should still be
     *         flushed by the transport).
     */
    bool ingest(std::string_view bytes, std::string *out);

    /** True once a framing error killed the channel. */
    bool dead() const { return dead_; }

    /** Bytes of an incomplete trailing frame (nonzero at peer EOF
     *  means the peer died mid-frame). */
    std::size_t pendingBytes() const { return reader_.buffered(); }

    /** Requests dispatched on this channel. */
    std::uint64_t requestsHandled() const { return requests_; }

  private:
    KvService &service_;
    FrameReader reader_;
    bool dead_ = false;
    std::uint64_t requests_ = 0;
};

/**
 * One in-process client "connection": requests go straight through
 * a KvChannel, responses are parsed back out of its output buffer.
 * Strictly sequential and allocation-deterministic — the unit-test
 * and YCSB-loopback transport.
 */
class LoopbackConnection
{
  public:
    explicit LoopbackConnection(KvService &service)
        : channel_(service)
    {
    }

    /**
     * Issue one request and return its response.
     * @param chunk when nonzero, the encoded request is fed to the
     *        channel @p chunk bytes at a time (partial-read path
     *        coverage).
     */
    Message call(const Message &request, std::size_t chunk = 0);

    /**
     * Pipeline: encode every request back-to-back, feed the channel
     * the whole batch (optionally @p chunk bytes at a time), and
     * return the matching responses in request order — the loopback
     * twin of KvClient::sendMany.
     */
    std::vector<Message> callMany(const std::vector<Message> &requests,
                                  std::size_t chunk = 0);

    /** Typed conveniences over call(). */
    std::optional<std::string> get(std::uint64_t key);
    bool put(std::uint64_t key, std::string_view value,
             std::uint32_t ttl = 0);
    bool del(std::uint64_t key);
    bool ping();
    std::string stats();

    /** One Stats-v2 round trip, decoded. @return false on an Error
     *  response or a malformed blob. */
    bool stats2(std::uint16_t *shardCount,
                std::vector<StatSample> *samples);

    /** One MGet round trip: out[i] answers keys[i] (Found maps to a
     *  value; Miss and per-key Error both map to nullopt). */
    std::vector<std::optional<std::string>>
    mget(const std::vector<std::uint64_t> &keys);

    bool dead() const { return channel_.dead(); }

  private:
    KvChannel channel_;
    FrameReader responses_;
};

} // namespace adcache::net

#endif // ADCACHE_NET_LOOPBACK_HH
