/**
 * @file
 * Wire protocol of the kv serving subsystem: length-prefixed binary
 * frames carrying one request or response message each.
 *
 * Frame layout (all integers little-endian):
 *
 *   u32 length       byte count of the body that follows
 *   u8  kind         message kind (MsgKind)
 *   ...              kind-specific fields
 *
 * Requests:
 *   Get   u64 key
 *   Put   u64 key, u32 ttl, value bytes (rest of frame)
 *   Del   u64 key
 *   Ping  (empty)
 *   Stats (empty = v1 text; one byte 0x02 = structured v2)
 *   MGet  u32 count, count x u64 keys (count <= kMaxMGetKeys)
 *
 * Responses:
 *   Ok        (empty)                 put/del/ping acknowledgement
 *   Value     value bytes             get hit / v1 stats text
 *   NotFound  (empty)                 get miss / del of absent key
 *   Error     utf-8 message           per-request failure
 *   Values    u32 count, count x (u8 status, u32 len, len bytes)
 *             MGet answer, one entry per requested key in request
 *             order; status Miss/Error entries carry len == 0 and
 *             error text respectively
 *   StatsV2   tag/value samples       see net/stats_v2.hh
 *
 * The empty-body Stats request predates versioning, so the version
 * byte is optional: an empty body means v1 (old clients keep
 * working byte-for-byte), 0x02 selects the structured response,
 * and any other version answers Error (request-fatal, not
 * connection-fatal).
 *
 * Error handling is two-tiered, mirroring production wire formats:
 * a frame whose declared length exceeds kMaxFrameBytes (or an EOF
 * inside a frame) is CONNECTION-fatal — the peer is desynchronized
 * and the stream cannot be resynchronized safely — while a
 * well-framed body that fails to decode is REQUEST-fatal only: the
 * server answers Error and keeps the connection (per-connection
 * error isolation).
 *
 * FrameReader is the incremental reassembly state machine both
 * transports share: bytes may arrive in arbitrary chunks (partial
 * reads) and frames are surfaced one at a time.
 */

#ifndef ADCACHE_NET_PROTOCOL_HH
#define ADCACHE_NET_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace adcache::net
{

/** Message kinds; requests < 0x80 <= responses. */
enum class MsgKind : std::uint8_t
{
    Get = 1,
    Put = 2,
    Del = 3,
    Ping = 4,
    Stats = 5,
    MGet = 6,

    Ok = 0x80,
    Value = 0x81,
    NotFound = 0x82,
    Error = 0x83,
    Values = 0x84,
    StatsV2 = 0x85,
};

/** Printable kind name ("get", "ok", ...). */
const char *msgKindName(MsgKind kind);

/** True iff @p kind is a request (client -> server) kind. */
bool isRequestKind(MsgKind kind);

/** Largest legal frame body. Bounds per-connection buffering and
 *  makes a desynchronized length prefix detectable. */
inline constexpr std::size_t kMaxFrameBytes = 1u << 20;

/** Largest key count one MGet request may carry (bounds the decode
 *  allocation a hostile count prefix could demand). */
inline constexpr std::size_t kMaxMGetKeys = 4096;

/** Per-key outcome inside a Values response. */
enum class MGetStatus : std::uint8_t
{
    Miss = 0,  //!< absent (value empty)
    Found = 1, //!< value carries the entry
    Error = 2, //!< per-key failure (value carries the error text)
};

/** One Values entry: a key's outcome plus its value / error text. */
struct MGetEntry
{
    MGetStatus status = MGetStatus::Miss;
    std::string value;
};

/** One decoded message (request or response). */
struct Message
{
    MsgKind kind = MsgKind::Ping;
    std::uint64_t key = 0;     //!< Get / Put / Del
    std::uint32_t ttl = 0;     //!< Put: expiry ticks (0 = never)
    std::string payload;       //!< Put value / Value / Error text
                               //!< / StatsV2 blob
    std::vector<std::uint64_t> keys; //!< MGet request keys
    std::vector<MGetEntry> entries;  //!< Values response entries
    std::uint8_t statsVersion = 1;   //!< Stats request: 1 or 2

    static Message get(std::uint64_t key);
    static Message put(std::uint64_t key, std::string_view value,
                       std::uint32_t ttl = 0);
    static Message del(std::uint64_t key);
    static Message ping();
    static Message stats();
    static Message stats2();
    static Message mget(std::vector<std::uint64_t> keys);

    static Message ok();
    static Message value(std::string_view v);
    static Message notFound();
    static Message error(std::string_view text);
    static Message values(std::vector<MGetEntry> entries);
    static Message statsV2Response(std::string blob);
};

/** Append @p m's complete frame (length prefix + body) to @p out. */
void encodeFrame(const Message &m, std::string *out);

/** Convenience: @p m as a fresh frame. */
std::string encodedFrame(const Message &m);

/**
 * Decode one frame body (no length prefix) into @p out.
 * @return false when the body is malformed (unknown kind, short
 *         fields, trailing bytes on a fixed-size message).
 */
bool decodeBody(std::string_view body, Message *out);

/** Incremental frame reassembly over an arbitrary byte stream. */
class FrameReader
{
  public:
    explicit FrameReader(std::size_t max_frame = kMaxFrameBytes)
        : maxFrame_(max_frame)
    {
    }

    /** What next() concluded. */
    enum class Status
    {
        NeedMore, //!< no complete frame buffered yet
        Frame,    //!< one body extracted into *body
        Corrupt,  //!< declared length > max frame: stream is dead
    };

    /** Buffer @p bytes (any chunking, including byte-at-a-time). */
    void feed(std::string_view bytes);

    /**
     * Extract the next complete frame body. Once Corrupt is
     * returned the reader stays dead (the stream cannot be
     * resynchronized).
     */
    Status next(std::string *body);

    /** Bytes buffered but not yet surfaced as frames. A nonzero
     *  value at connection EOF means a truncated frame. */
    std::size_t buffered() const { return buf_.size() - pos_; }

    bool corrupt() const { return corrupt_; }

  private:
    std::size_t maxFrame_;
    std::string buf_;
    std::size_t pos_ = 0; //!< consumed prefix of buf_
    bool corrupt_ = false;
};

} // namespace adcache::net

#endif // ADCACHE_NET_PROTOCOL_HH
