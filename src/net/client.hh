/**
 * @file
 * Blocking TCP client for the serving subsystem's wire protocol —
 * the transport the YCSB driver and examples/kv_server.cpp peers
 * speak. One connection per client; call() writes one request frame
 * and blocks until the matching response frame arrives. sendMany()
 * pipelines: it writes a whole batch of request frames in one
 * gather, then reads the batch's responses back in order (the
 * protocol answers strictly in request order per connection, so no
 * correlation bookkeeping is needed).
 *
 * All syscalls retry on EINTR; short reads/writes loop until the
 * frame completes. A torn connection (peer EOF mid-frame, ECONNRESET)
 * marks the client dead; every later call answers Error locally.
 */

#ifndef ADCACHE_NET_CLIENT_HH
#define ADCACHE_NET_CLIENT_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/protocol.hh"
#include "net/stats_v2.hh"

namespace adcache::net
{

/** Blocking request/response socket client (see file comment). */
class KvClient
{
  public:
    KvClient() = default;
    ~KvClient();

    KvClient(const KvClient &) = delete;
    KvClient &operator=(const KvClient &) = delete;

    /**
     * Connect to @p host:@p port. @p no_delay disables Nagle on the
     * socket (the default: the client writes whole frames / whole
     * pipelines, so delaying them only adds latency).
     * @return false (with the reason in lastError()) on failure.
     */
    bool connect(const std::string &host, std::uint16_t port,
                 bool no_delay = true);

    void close();

    bool connected() const { return fd_ >= 0; }

    /**
     * Issue one request and block for its response. On transport
     * failure the connection is closed and a local Error message is
     * returned (kind == MsgKind::Error, payload = lastError()).
     */
    Message call(const Message &request);

    /**
     * Pipeline @p requests: one gathered write of every frame, then
     * the responses read back in request order into @p responses.
     * On transport failure the connection closes and the unanswered
     * tail is filled with local Error messages, mirroring call().
     * @return the number of real responses received.
     */
    std::size_t sendMany(const std::vector<Message> &requests,
                         std::vector<Message> *responses);

    /** Typed conveniences over call(). */
    std::optional<std::string> get(std::uint64_t key);
    bool put(std::uint64_t key, std::string_view value,
             std::uint32_t ttl = 0);
    bool del(std::uint64_t key);
    bool ping();
    std::string stats();

    /** One Stats-v2 round trip, decoded. @return false on transport
     *  failure, an Error response (pre-v2 server), or a malformed
     *  blob — callers fall back to stats() text. */
    bool stats2(std::uint16_t *shardCount,
                std::vector<StatSample> *samples);

    /** One MGet round trip: out[i] answers keys[i] (Found maps to a
     *  value; Miss, per-key Error, and transport failure all map to
     *  nullopt). */
    std::vector<std::optional<std::string>>
    mget(const std::vector<std::uint64_t> &keys);

    const std::string &lastError() const { return lastError_; }

  private:
    bool writeAll(const char *data, std::size_t size);
    /** Read until the response FrameReader yields one frame. */
    bool readFrame(std::string *body);
    Message fail(const std::string &why);

    int fd_ = -1;
    FrameReader responses_;
    std::string lastError_;
};

} // namespace adcache::net

#endif // ADCACHE_NET_CLIENT_HH
