/**
 * @file
 * Blocking TCP client for the serving subsystem's wire protocol —
 * the transport the YCSB driver and examples/kv_server.cpp peers
 * speak. One connection per client; call() writes one request frame
 * and blocks until the matching response frame arrives (the protocol
 * is strictly request/response per connection, so no pipelining
 * bookkeeping is needed).
 *
 * All syscalls retry on EINTR; short reads/writes loop until the
 * frame completes. A torn connection (peer EOF mid-frame, ECONNRESET)
 * marks the client dead; every later call answers Error locally.
 */

#ifndef ADCACHE_NET_CLIENT_HH
#define ADCACHE_NET_CLIENT_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "net/protocol.hh"

namespace adcache::net
{

/** Blocking request/response socket client (see file comment). */
class KvClient
{
  public:
    KvClient() = default;
    ~KvClient();

    KvClient(const KvClient &) = delete;
    KvClient &operator=(const KvClient &) = delete;

    /**
     * Connect to @p host:@p port.
     * @return false (with the reason in lastError()) on failure.
     */
    bool connect(const std::string &host, std::uint16_t port);

    void close();

    bool connected() const { return fd_ >= 0; }

    /**
     * Issue one request and block for its response. On transport
     * failure the connection is closed and a local Error message is
     * returned (kind == MsgKind::Error, payload = lastError()).
     */
    Message call(const Message &request);

    /** Typed conveniences over call(). */
    std::optional<std::string> get(std::uint64_t key);
    bool put(std::uint64_t key, std::string_view value,
             std::uint32_t ttl = 0);
    bool del(std::uint64_t key);
    bool ping();
    std::string stats();

    const std::string &lastError() const { return lastError_; }

  private:
    bool writeAll(const char *data, std::size_t size);
    /** Read until the response FrameReader yields one frame. */
    bool readFrame(std::string *body);
    Message fail(const std::string &why);

    int fd_ = -1;
    FrameReader responses_;
    std::string lastError_;
};

} // namespace adcache::net

#endif // ADCACHE_NET_CLIENT_HH
