/**
 * @file
 * Stats v2: the versioned, structured form of the STATS opcode.
 *
 * The v1 response is a human-oriented text blob ("name value"
 * lines) with no version marker — fine for a person with netcat,
 * useless for a poller that wants per-shard deltas without parsing
 * free text that changes shape across builds. v2 is a flat list of
 * (tag, shard, u64) samples:
 *
 *   u8  version        == kStatsV2Version
 *   u16 shard_count    shards in the serving cache
 *   u32 count          samples that follow
 *   count x { u16 tag, u16 shard, u64 value }
 *
 * shard == kStatsGlobalShard marks a process/cache-global sample.
 * Tags are append-only: decoders MUST skip unknown tags (that is
 * the whole point of tagging), so old kv_top binaries keep working
 * against newer servers. Integers little-endian like the rest of
 * the protocol; non-integer quantities ride as scaled integers
 * (rates in parts-per-million, latencies in nanoseconds).
 *
 * Requests select the version with an optional body byte on the
 * Stats request: absent = v1 text (byte-compatible with every
 * pre-v2 client), 0x02 = this format.
 */

#ifndef ADCACHE_NET_STATS_V2_HH
#define ADCACHE_NET_STATS_V2_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace adcache::net
{

inline constexpr std::uint8_t kStatsV2Version = 2;
inline constexpr std::uint16_t kStatsGlobalShard = 0xFFFF;

/** Sample tags. APPEND ONLY — never renumber. */
enum class StatTag : std::uint16_t
{
    // Cache shape / identity (global).
    ShardCount = 1,
    Capacity = 2,
    Size = 3,
    Pinned = 4,
    ClockNow = 5,

    // Cache counters (global and per-shard; per-shard Hits/Misses
    // fold filling and non-filling outcomes together).
    References = 16,
    Hits = 17,
    Misses = 18,
    Gets = 19,
    GetHits = 20,
    Evictions = 21,
    AdmitRejects = 22,
    Expirations = 23,
    ReadRetries = 24,
    SlowProbes = 25,
    SelectionFlips = 26,
    DiffMisses = 27,
    Winner = 28,     //!< component ordinal (per-shard)
    HitRatePpm = 29, //!< hit rate x 1e6

    // Service counters (global).
    Requests = 48,
    Errors = 49,
    OpGet = 50,
    OpPut = 51,
    OpDel = 52,
    OpPing = 53,
    OpStats = 54,
    OpMGet = 55,
    RequestP50Ns = 56,
    RequestP99Ns = 57,

    // Transport counters (global; absent on loopback-only setups).
    Connections = 64,
    FramesIn = 65,
    BytesIn = 66,
    BytesOut = 67,
    BackpressureParks = 68,
    OutBufHighWater = 69,

    // Trace-plane health (global; TraceDrops also per-ring with
    // shard = ring index).
    TraceCompiled = 80,
    TraceEnabled = 81,
    TraceDrops = 82,
};

/** Canonical lower-case snake_case name, "?" for unknown tags. */
const char *statTagName(StatTag tag);

/** One sample. */
struct StatSample
{
    StatTag tag = StatTag::ShardCount;
    std::uint16_t shard = kStatsGlobalShard;
    std::uint64_t value = 0;

    friend bool operator==(const StatSample &,
                           const StatSample &) = default;
};

/** Encode @p samples into a v2 blob (rides in a StatsV2 payload). */
std::string encodeStatsV2(std::uint16_t shardCount,
                          const std::vector<StatSample> &samples);

/**
 * Decode a v2 blob. @return false on wrong version or truncation;
 * unknown tags are preserved (callers skip what they don't know).
 */
bool decodeStatsV2(std::string_view blob,
                   std::uint16_t *shardCount,
                   std::vector<StatSample> *samples);

} // namespace adcache::net

#endif // ADCACHE_NET_STATS_V2_HH
