/**
 * @file
 * KvService: the transport-independent request handler of the
 * serving subsystem. Both transports — the loopback channel and the
 * socket server's connections — decode frames into Messages and pass
 * them here; the service maps each request onto the hosted
 * AdaptiveKvCache and produces the response Message.
 *
 * The service is thread-safe by construction: the cache's own
 * shard locking carries the data path, and the scenario knobs are
 * plain atomics, so any number of transport threads may call
 * handle() concurrently.
 *
 * Scenario injection (the failure catalog of docs/SERVING.md):
 *
 *  - backend slowdown: setFetchDelayUs() makes the read-through
 *    loader stall, modelling a slow backing store behind the cache
 *    (this is what drives the SLO gate's fail-closed demonstration);
 *  - shard loss: setDeadShardMask() fails every request routed to a
 *    dead shard with an Error response, without touching the cache —
 *    clients observe partial unavailability while other shards keep
 *    serving.
 */

#ifndef ADCACHE_NET_SERVICE_HH
#define ADCACHE_NET_SERVICE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "kv/adaptive_kv_cache.hh"
#include "net/protocol.hh"
#include "net/stats_v2.hh"
#include "obs/metrics.hh"
#include "workloads/key_stream.hh"

namespace adcache::net
{

/** Configuration of a KvService. */
struct KvServiceConfig
{
    /** Shape of the hosted cache. */
    kv::KvConfig cache;

    /**
     * Serve GET misses through the read-through loader (a miss
     * fetches the backend value derived from the key and admits it
     * per Algorithm 1). Off, a GET miss answers NotFound.
     */
    bool readThrough = true;

    /** Payload shape of read-through loads. */
    ValueSpec loaderValues{};

    /** TTL stamped on read-through loads (clock ticks; 0 = never). */
    std::uint32_t loaderTtl = 0;

    /**
     * Slow-request log: a request whose handle() time exceeds this
     * budget emits one structured line to logSink (0 = disabled).
     * The log is the "which op blew the SLO" companion to the
     * latency histogram's "how often".
     */
    std::uint64_t slowRequestBudgetNs = 0;

    /** Receives slow-request lines; defaults to stderr. */
    std::function<void(const std::string &)> logSink;
};

/** Transport-independent request handler (see file comment). */
class KvService
{
  public:
    explicit KvService(const KvServiceConfig &config);

    KvService(const KvService &) = delete;
    KvService &operator=(const KvService &) = delete;

    /** Serve one request; always returns a response message. */
    Message handle(const Message &request);

    kv::AdaptiveKvCache &cache() { return cache_; }
    const kv::AdaptiveKvCache &cache() const { return cache_; }

    const KvServiceConfig &config() const { return config_; }

    /** Backend-slowdown scenario: read-through loads stall this
     *  long (0 = healthy backend). */
    void
    setFetchDelayUs(std::uint32_t us)
    {
        fetchDelayUs_.store(us, std::memory_order_seq_cst);
    }

    std::uint32_t
    fetchDelayUs() const
    {
        return fetchDelayUs_.load(std::memory_order_seq_cst);
    }

    /** Shard-loss scenario: requests routed to a shard whose bit is
     *  set answer Error (0 = all shards healthy). */
    void
    setDeadShardMask(std::uint64_t mask)
    {
        deadShardMask_.store(mask, std::memory_order_seq_cst);
    }

    std::uint64_t
    deadShardMask() const
    {
        return deadShardMask_.load(std::memory_order_seq_cst);
    }

    /** Requests served, by terminal status. */
    std::uint64_t requestsServed() const;
    std::uint64_t errorsAnswered() const;

    /** Requests served carrying @p kind (request kinds only). */
    std::uint64_t opCount(MsgKind kind) const;

    /**
     * STATS v1 payload: "name value" lines — run metadata first
     * ("run.git_sha" etc., so a captured dump identifies its build),
     * then the cache's aggregate AND per-shard counters, then the
     * service's own.
     */
    std::string statsText() const;

    /** STATS v2 payload (see net/stats_v2.hh). */
    std::string statsV2() const;

    /**
     * Extra Stats-v2 samples from outside the service — the socket
     * server registers its transport counters here so one opcode
     * answers for the whole process. Providers run on every
     * statsV2() call; they must be thread-safe.
     */
    using StatsProvider =
        std::function<void(std::vector<StatSample> &)>;
    void addStatsProvider(StatsProvider fn);

    /**
     * Register the service (and its cache) as scrape-time
     * collectors in @p reg: request/error/per-opcode counters,
     * request latency p50/p99 gauges, cache counters per
     * AdaptiveKvCache::registerMetrics. Hot-path cost is zero — the
     * handle() counters below are plain atomics the collector reads.
     */
    void registerMetrics(obs::MetricsRegistry &reg);

    /** Request-latency percentile over all served requests (ns). */
    std::uint64_t requestPercentileNs(double p) const;

  private:
    bool shardDead(kv::KvKey key) const;
    /** MGet: shard-grouped batch probe + read-through backfill. */
    Message handleMGet(const Message &request);
    Message handleInner(const Message &request);
    void recordLatency(std::uint64_t ns);

    KvServiceConfig config_;
    kv::AdaptiveKvCache cache_;
    std::atomic<std::uint32_t> fetchDelayUs_{0};
    std::atomic<std::uint64_t> deadShardMask_{0};
    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> errors_{0};

    /** Indexed by raw request opcode (Get=1 .. MGet=6). */
    static constexpr unsigned kOpSlots = 8;
    std::atomic<std::uint64_t> opCounts_[kOpSlots] = {};

    /** Shared log-bucket request-latency histogram (same bounds as
     *  obs::MetricsRegistry histograms). One relaxed RMW per
     *  request — request work is microseconds, this is noise. */
    std::atomic<std::uint64_t> latBuckets_[obs::kHistBuckets + 1] =
        {};
    std::atomic<std::uint64_t> latCount_{0};

    mutable std::mutex providersMtx_;
    std::vector<StatsProvider> providers_;
};

} // namespace adcache::net

#endif // ADCACHE_NET_SERVICE_HH
