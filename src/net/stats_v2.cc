#include "net/stats_v2.hh"

namespace adcache::net
{

const char *
statTagName(StatTag tag)
{
    switch (tag) {
      case StatTag::ShardCount:
        return "shard_count";
      case StatTag::Capacity:
        return "capacity";
      case StatTag::Size:
        return "size";
      case StatTag::Pinned:
        return "pinned";
      case StatTag::ClockNow:
        return "clock_now";
      case StatTag::References:
        return "references";
      case StatTag::Hits:
        return "hits";
      case StatTag::Misses:
        return "misses";
      case StatTag::Gets:
        return "gets";
      case StatTag::GetHits:
        return "get_hits";
      case StatTag::Evictions:
        return "evictions";
      case StatTag::AdmitRejects:
        return "admit_rejects";
      case StatTag::Expirations:
        return "expirations";
      case StatTag::ReadRetries:
        return "read_retries";
      case StatTag::SlowProbes:
        return "slow_probes";
      case StatTag::SelectionFlips:
        return "selection_flips";
      case StatTag::DiffMisses:
        return "diff_misses";
      case StatTag::Winner:
        return "winner";
      case StatTag::HitRatePpm:
        return "hit_rate_ppm";
      case StatTag::Requests:
        return "requests";
      case StatTag::Errors:
        return "errors";
      case StatTag::OpGet:
        return "op_get";
      case StatTag::OpPut:
        return "op_put";
      case StatTag::OpDel:
        return "op_del";
      case StatTag::OpPing:
        return "op_ping";
      case StatTag::OpStats:
        return "op_stats";
      case StatTag::OpMGet:
        return "op_mget";
      case StatTag::RequestP50Ns:
        return "request_p50_ns";
      case StatTag::RequestP99Ns:
        return "request_p99_ns";
      case StatTag::Connections:
        return "connections";
      case StatTag::FramesIn:
        return "frames_in";
      case StatTag::BytesIn:
        return "bytes_in";
      case StatTag::BytesOut:
        return "bytes_out";
      case StatTag::BackpressureParks:
        return "backpressure_parks";
      case StatTag::OutBufHighWater:
        return "outbuf_high_water";
      case StatTag::TraceCompiled:
        return "trace_compiled";
      case StatTag::TraceEnabled:
        return "trace_enabled";
      case StatTag::TraceDrops:
        return "trace_drops";
    }
    return "?";
}

namespace
{

void
putU16(std::uint16_t v, std::string *out)
{
    out->push_back(char(v & 0xff));
    out->push_back(char((v >> 8) & 0xff));
}

void
putU32(std::uint32_t v, std::string *out)
{
    putU16(std::uint16_t(v & 0xffff), out);
    putU16(std::uint16_t(v >> 16), out);
}

void
putU64(std::uint64_t v, std::string *out)
{
    putU32(std::uint32_t(v & 0xffffffffu), out);
    putU32(std::uint32_t(v >> 32), out);
}

std::uint16_t
getU16(const unsigned char *p)
{
    return std::uint16_t(p[0] | (p[1] << 8));
}

std::uint32_t
getU32(const unsigned char *p)
{
    return std::uint32_t(getU16(p)) |
           (std::uint32_t(getU16(p + 2)) << 16);
}

std::uint64_t
getU64(const unsigned char *p)
{
    return std::uint64_t(getU32(p)) |
           (std::uint64_t(getU32(p + 4)) << 32);
}

} // namespace

std::string
encodeStatsV2(std::uint16_t shardCount,
              const std::vector<StatSample> &samples)
{
    std::string out;
    out.reserve(1 + 2 + 4 + samples.size() * 12);
    out.push_back(char(kStatsV2Version));
    putU16(shardCount, &out);
    putU32(std::uint32_t(samples.size()), &out);
    for (const StatSample &s : samples) {
        putU16(std::uint16_t(s.tag), &out);
        putU16(s.shard, &out);
        putU64(s.value, &out);
    }
    return out;
}

bool
decodeStatsV2(std::string_view blob, std::uint16_t *shardCount,
              std::vector<StatSample> *samples)
{
    if (blob.size() < 1 + 2 + 4)
        return false;
    const auto *p =
        reinterpret_cast<const unsigned char *>(blob.data());
    if (p[0] != kStatsV2Version)
        return false;
    const std::uint16_t shards = getU16(p + 1);
    const std::size_t count = getU32(p + 3);
    if (blob.size() != 7 + count * 12)
        return false;
    std::vector<StatSample> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const unsigned char *e = p + 7 + i * 12;
        StatSample s;
        s.tag = StatTag(getU16(e));
        s.shard = getU16(e + 2);
        s.value = getU64(e + 4);
        out.push_back(s);
    }
    if (shardCount != nullptr)
        *shardCount = shards;
    *samples = std::move(out);
    return true;
}

} // namespace adcache::net
