/**
 * @file
 * The socket transport of the serving subsystem: a poll(2)-driven
 * TCP server hosting one KvService.
 *
 * Threading model: one acceptor thread owns the listening socket and
 * hands each accepted connection to a worker round-robin; each of N
 * worker threads runs its own poll loop over { its wake pipe, its
 * connections }. Workers share nothing but the KvService (whose data
 * path is the cache's own shard locking), so the transport adds no
 * locks on the request path.
 *
 * Robustness contract (exercised by tests/net/server_test.cc):
 *   - partial reads/writes: per-connection KvChannel reassembly and
 *     a pending-output buffer drained under POLLOUT;
 *   - EINTR: every syscall loop retries;
 *   - per-connection error isolation: a peer that sends garbage
 *     framing, dies mid-frame, or breaks its socket costs only its
 *     own connection;
 *   - graceful shutdown: stop() stops accepting, wakes every
 *     worker, flushes what can be flushed, closes all sockets and
 *     joins all threads.
 *
 * Bind with port 0 to get an ephemeral port (port() reports the
 * real one) — the test-suite and same-process bench default.
 */

#ifndef ADCACHE_NET_SERVER_HH
#define ADCACHE_NET_SERVER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/loopback.hh"
#include "net/service.hh"

namespace adcache::net
{

/** Configuration of a KvServer. */
struct KvServerConfig
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0; //!< 0 = ephemeral (see port())
    unsigned workers = 2;   //!< poll-loop worker threads
    int backlog = 64;
    /** TCP_NODELAY on accepted sockets. The server writes whole
     *  response batches in one flush, so Nagle can only delay them;
     *  off exists for experiments. */
    bool noDelay = true;
};

/** Poll-driven TCP server (see file comment). */
class KvServer
{
  public:
    KvServer(KvService &service, const KvServerConfig &config);
    ~KvServer();

    KvServer(const KvServer &) = delete;
    KvServer &operator=(const KvServer &) = delete;

    /**
     * Bind, listen and spawn the acceptor + workers.
     * @return false (with the reason in lastError()) on bind/listen
     *         failure.
     */
    bool start();

    /** Graceful shutdown; idempotent. */
    void stop();

    /** The bound port (after start(); resolves port 0 binds). */
    std::uint16_t port() const { return port_; }

    bool running() const
    {
        return running_.load(std::memory_order_seq_cst);
    }

    std::uint64_t
    connectionsAccepted() const
    {
        return counters_->accepted.load(std::memory_order_relaxed);
    }

    /** Transport counters, summed over all workers (monotonic for
     *  the server's lifetime; high-water is a running max). */
    std::uint64_t bytesReceived() const;
    std::uint64_t bytesSent() const;
    std::uint64_t framesReceived() const;
    std::uint64_t backpressureParks() const;
    std::uint64_t outBufHighWater() const;

    /**
     * Register the transport counters as a Stats-v2 provider on the
     * hosted service, so one Stats opcode answers for the whole
     * process (tags Connections..OutBufHighWater). Call once per
     * server; the provider shares ownership of the counters and
     * keeps answering (frozen) if the server is destroyed first.
     */
    void installStatsProvider();

    /** Scrape-time transport metrics (adcache_srv_*) in @p reg. The
     *  collector shares the counters like installStatsProvider(). */
    void registerMetrics(obs::MetricsRegistry &reg);

    const std::string &lastError() const { return lastError_; }

  private:
    /**
     * Reused per-connection output accumulator: KvChannel appends
     * response frames to @c data, the flush loop consumes from
     * @c head. A fully drained buffer resets to offset 0 keeping its
     * capacity, so the steady state allocates nothing per flush; a
     * consumed prefix a backpressured peer leaves behind is
     * compacted once it outgrows kCompactAt instead of being
     * memmoved on every partial write.
     */
    struct OutBuf
    {
        static constexpr std::size_t kCompactAt = 256 * 1024;

        std::string data;
        std::size_t head = 0; //!< consumed prefix of data

        bool empty() const { return head == data.size(); }
        std::size_t pending() const { return data.size() - head; }
        const char *front() const { return data.data() + head; }

        void
        consume(std::size_t n)
        {
            head += n;
            if (head == data.size()) {
                data.clear();
                head = 0;
            } else if (head > kCompactAt) {
                data.erase(0, head);
                head = 0;
            }
        }
    };

    struct Conn
    {
        int fd = -1;
        std::unique_ptr<KvChannel> channel;
        OutBuf out; //!< bytes not yet written to the peer
        bool closing = false; //!< flush out, then close
    };

    /**
     * Transport counters, heap-shared so the Stats-v2 provider and
     * metrics collector installed on the (longer-lived) service
     * never dangle. Workers update with relaxed RMWs off the
     * per-event paths — never per byte.
     */
    struct Counters
    {
        std::atomic<std::uint64_t> accepted{0};
        std::atomic<std::uint64_t> bytesIn{0};
        std::atomic<std::uint64_t> bytesOut{0};
        std::atomic<std::uint64_t> framesIn{0};
        /** send() hit EAGAIN: the peer backpressured us and the
         *  response tail parked in OutBuf until the next POLLOUT. */
        std::atomic<std::uint64_t> parks{0};
        std::atomic<std::uint64_t> outHighWater{0};

        void
        noteHighWater(std::uint64_t pending)
        {
            std::uint64_t cur =
                outHighWater.load(std::memory_order_relaxed);
            while (pending > cur &&
                   !outHighWater.compare_exchange_weak(
                       cur, pending, std::memory_order_relaxed)) {
            }
        }
    };

    struct Worker
    {
        std::thread thread;
        int wakeRead = -1; //!< pipe the acceptor pokes
        int wakeWrite = -1;
        std::mutex mtx;
        std::vector<int> inbox; //!< fds handed over by the acceptor
    };

    void acceptLoop();
    void workerLoop(Worker &w);
    /** Pump one connection's socket; @return false to close it. */
    bool serviceConn(Conn &c, short revents);
    static void closeFd(int fd);

    KvService &service_;
    KvServerConfig config_;
    int listenFd_ = -1;
    std::uint16_t port_ = 0;
    std::string lastError_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    std::shared_ptr<Counters> counters_;
    std::thread acceptor_;
    std::vector<std::unique_ptr<Worker>> workers_;
    unsigned nextWorker_ = 0; //!< acceptor-only round-robin cursor
};

} // namespace adcache::net

#endif // ADCACHE_NET_SERVER_HH
