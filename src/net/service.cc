#include "net/service.hh"

#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/run_meta.hh"
#include "obs/trace.hh"
#include "util/stat_registry.hh"

namespace adcache::net
{

KvService::KvService(const KvServiceConfig &config)
    : config_(config), cache_(config.cache)
{
    if (!config_.logSink)
        config_.logSink = [](const std::string &line) {
            std::fprintf(stderr, "%s\n", line.c_str());
        };
}

bool
KvService::shardDead(kv::KvKey key) const
{
    const std::uint64_t mask =
        deadShardMask_.load(std::memory_order_seq_cst);
    if (mask == 0)
        return false;
    return (mask >> cache_.shardOf(key)) & 1;
}

std::uint64_t
KvService::requestsServed() const
{
    return requests_.load(std::memory_order_seq_cst);
}

std::uint64_t
KvService::errorsAnswered() const
{
    return errors_.load(std::memory_order_seq_cst);
}

std::uint64_t
KvService::opCount(MsgKind kind) const
{
    const unsigned op = unsigned(kind);
    if (op >= kOpSlots)
        return 0;
    return opCounts_[op].load(std::memory_order_seq_cst);
}

void
KvService::recordLatency(std::uint64_t ns)
{
    latBuckets_[obs::histBucketOf(ns)].fetch_add(
        1, std::memory_order_relaxed);
    latCount_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t
KvService::requestPercentileNs(double p) const
{
    const std::uint64_t count =
        latCount_.load(std::memory_order_seq_cst);
    if (count == 0)
        return 0;
    const auto rank = std::uint64_t(double(count) * p);
    std::uint64_t cum = 0;
    for (unsigned b = 0; b <= obs::kHistBuckets; ++b) {
        cum += latBuckets_[b].load(std::memory_order_seq_cst);
        if (cum > rank) {
            if (b >= obs::kHistBuckets)
                return std::uint64_t(1)
                       << (obs::kHistHiBit + 1);
            return std::uint64_t(1) << (obs::kHistLoBit + b);
        }
    }
    return std::uint64_t(1) << (obs::kHistHiBit + 1);
}

Message
KvService::handle(const Message &request)
{
    const std::uint64_t t0 = obs::nowNs();
    const unsigned op = unsigned(request.kind);
    if (op < kOpSlots)
        opCounts_[op].fetch_add(1, std::memory_order_relaxed);

    Message response = handleInner(request);

    const std::uint64_t dur = obs::nowNs() - t0;
    recordLatency(dur);
    if (config_.slowRequestBudgetNs != 0 &&
        dur > config_.slowRequestBudgetNs) {
        char line[160];
        std::snprintf(
            line, sizeof line,
            "slow_request op=%s key=%llu dur_us=%llu "
            "budget_us=%llu",
            msgKindName(request.kind),
            (unsigned long long)request.key,
            (unsigned long long)(dur / 1000),
            (unsigned long long)(config_.slowRequestBudgetNs /
                                 1000));
        config_.logSink(line);
    }
    return response;
}

Message
KvService::handleInner(const Message &request)
{
    requests_.fetch_add(1, std::memory_order_relaxed);
    switch (request.kind) {
      case MsgKind::Get: {
        if (shardDead(request.key)) {
            errors_.fetch_add(1, std::memory_order_relaxed);
            return Message::error("shard down");
        }
        if (config_.readThrough) {
            const std::uint32_t delay_us =
                fetchDelayUs_.load(std::memory_order_seq_cst);
            std::string v = cache_.fetch(
                request.key,
                [&] {
                    // The loader body is the "backend": derive the
                    // canonical value, stalled by the slowdown
                    // scenario when it is armed.
                    if (delay_us)
                        std::this_thread::sleep_for(
                            std::chrono::microseconds(delay_us));
                    return valueFor(request.key,
                                    config_.loaderValues);
                },
                config_.loaderTtl);
            return Message::value(v);
        }
        if (auto v = cache_.get(request.key))
            return Message::value(*v);
        return Message::notFound();
      }
      case MsgKind::Put: {
        if (shardDead(request.key)) {
            errors_.fetch_add(1, std::memory_order_relaxed);
            return Message::error("shard down");
        }
        cache_.put(request.key, request.payload, /*pinned=*/false,
                   request.ttl);
        return Message::ok();
      }
      case MsgKind::Del: {
        if (shardDead(request.key)) {
            errors_.fetch_add(1, std::memory_order_relaxed);
            return Message::error("shard down");
        }
        return cache_.erase(request.key) ? Message::ok()
                                         : Message::notFound();
      }
      case MsgKind::MGet:
        return handleMGet(request);
      case MsgKind::Ping:
        return Message::ok();
      case MsgKind::Stats:
        if (request.statsVersion == 1)
            return Message::value(statsText());
        if (request.statsVersion == kStatsV2Version)
            return Message::statsV2Response(statsV2());
        errors_.fetch_add(1, std::memory_order_relaxed);
        return Message::error("unsupported stats version");
      default:
        errors_.fetch_add(1, std::memory_order_relaxed);
        return Message::error("bad request kind");
    }
}

Message
KvService::handleMGet(const Message &request)
{
    const std::size_t n = request.keys.size();
    std::vector<MGetEntry> entries(n);

    // Keys on dead shards answer per-key Error entries, so one lost
    // shard degrades the batch instead of failing it wholesale; the
    // live remainder goes through one shard-grouped getMany, which
    // is the point of the opcode — cache hits stay on the lock-free
    // path even with read-through on (a plain Get under readThrough
    // always takes the shard mutex via fetch()). With every shard
    // alive — the steady state — the keys span probes as-is, with
    // no live-subset copy.
    std::vector<kv::KvKey> live;
    std::vector<std::uint32_t> live_idx;
    const bool all_alive =
        deadShardMask_.load(std::memory_order_seq_cst) == 0;
    if (!all_alive) {
        live.reserve(n);
        live_idx.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            if (shardDead(request.keys[i])) {
                errors_.fetch_add(1, std::memory_order_relaxed);
                entries[i].status = MGetStatus::Error;
                entries[i].value = "shard down";
            } else {
                live.push_back(request.keys[i]);
                live_idx.push_back(std::uint32_t(i));
            }
        }
    }
    const std::span<const kv::KvKey> probe_keys =
        all_alive ? std::span<const kv::KvKey>(request.keys)
                  : std::span<const kv::KvKey>(live);

    std::vector<std::optional<std::string>> got(probe_keys.size());
    cache_.getMany(probe_keys, got.data());

    const std::uint32_t delay_us =
        fetchDelayUs_.load(std::memory_order_seq_cst);
    for (std::size_t j = 0; j < probe_keys.size(); ++j) {
        MGetEntry &e = entries[all_alive ? j : live_idx[j]];
        if (got[j]) {
            e.status = MGetStatus::Found;
            e.value = std::move(*got[j]);
        } else if (config_.readThrough) {
            const kv::KvKey key = probe_keys[j];
            e.status = MGetStatus::Found;
            e.value = cache_.fetch(
                key,
                [&] {
                    if (delay_us)
                        std::this_thread::sleep_for(
                            std::chrono::microseconds(delay_us));
                    return valueFor(key, config_.loaderValues);
                },
                config_.loaderTtl);
        }
        // else: stays MGetStatus::Miss.
    }

    // The response must itself be one legal frame; a batch of fat
    // values that would overflow it is a request-level error (the
    // client should split the batch), not a dead connection.
    std::size_t body = 1 + 4;
    for (const MGetEntry &e : entries)
        body += 5 + e.value.size();
    if (body > kMaxFrameBytes) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        return Message::error("mget response too large");
    }
    return Message::values(std::move(entries));
}

std::string
KvService::statsText() const
{
    StatRegistry reg;
    cache_.registerStats(reg, "kv.", /*per_shard=*/true);
    reg.counter("net.requests", requestsServed());
    reg.counter("net.errors", errorsAnswered());
    for (const MsgKind kind :
         {MsgKind::Get, MsgKind::Put, MsgKind::Del, MsgKind::Ping,
          MsgKind::Stats, MsgKind::MGet})
        reg.counter(std::string("net.op.") + msgKindName(kind),
                    opCount(kind));

    std::ostringstream out;
    // Run metadata first: a captured stats dump should identify the
    // build and configuration that produced it, like every report
    // artifact does.
    for (const auto &[key, value] : obs::collectRunMeta())
        out << key << " " << value << "\n";
    for (const StatEntry &e : reg.entries()) {
        out << e.name << " ";
        switch (e.kind) {
          case StatEntry::Kind::Counter:
            out << e.counter;
            break;
          case StatEntry::Kind::Value:
            out << e.value;
            break;
          case StatEntry::Kind::Text:
            out << e.text;
            break;
        }
        out << "\n";
    }
    return out.str();
}

std::string
KvService::statsV2() const
{
    const std::vector<kv::KvShardTelemetry> shards =
        cache_.shardTelemetry();

    kv::KvShardTelemetry total;
    for (const kv::KvShardTelemetry &t : shards) {
        total.references += t.references;
        total.hits += t.hits;
        total.misses += t.misses;
        total.gets += t.gets;
        total.getHits += t.getHits;
        total.evictions += t.evictions;
        total.admitRejects += t.admitRejects;
        total.expirations += t.expirations;
        total.readRetries += t.readRetries;
        total.slowProbes += t.slowProbes;
        total.selectionFlips += t.selectionFlips;
        total.diffMisses += t.diffMisses;
        total.size += t.size;
        total.pinned += t.pinned;
    }

    std::vector<StatSample> samples;
    samples.reserve(16 + shards.size() * 16);
    auto g = [&](StatTag tag, std::uint64_t v) {
        samples.push_back({tag, kStatsGlobalShard, v});
    };

    g(StatTag::ShardCount, shards.size());
    g(StatTag::Capacity, cache_.capacity());
    g(StatTag::Size, total.size);
    g(StatTag::Pinned, total.pinned);
    g(StatTag::ClockNow, cache_.clockNow());
    g(StatTag::References, total.references);
    g(StatTag::Hits, total.hits + total.getHits);
    g(StatTag::Misses,
      total.misses + (total.gets - total.getHits));
    g(StatTag::Gets, total.gets);
    g(StatTag::GetHits, total.getHits);
    g(StatTag::Evictions, total.evictions);
    g(StatTag::AdmitRejects, total.admitRejects);
    g(StatTag::Expirations, total.expirations);
    g(StatTag::ReadRetries, total.readRetries);
    g(StatTag::SlowProbes, total.slowProbes);
    g(StatTag::SelectionFlips, total.selectionFlips);
    g(StatTag::DiffMisses, total.diffMisses);
    g(StatTag::HitRatePpm,
      std::uint64_t(total.hitRate() * 1e6));

    g(StatTag::Requests, requestsServed());
    g(StatTag::Errors, errorsAnswered());
    g(StatTag::OpGet, opCount(MsgKind::Get));
    g(StatTag::OpPut, opCount(MsgKind::Put));
    g(StatTag::OpDel, opCount(MsgKind::Del));
    g(StatTag::OpPing, opCount(MsgKind::Ping));
    g(StatTag::OpStats, opCount(MsgKind::Stats));
    g(StatTag::OpMGet, opCount(MsgKind::MGet));
    g(StatTag::RequestP50Ns, requestPercentileNs(0.50));
    g(StatTag::RequestP99Ns, requestPercentileNs(0.99));

    g(StatTag::TraceCompiled, obs::kTraceCompiled ? 1 : 0);
    g(StatTag::TraceEnabled, obs::traceEnabled() ? 1 : 0);
    g(StatTag::TraceDrops, obs::droppedTotal());
    const std::vector<std::uint64_t> ringDrops =
        obs::perRingDrops();
    for (std::size_t i = 0;
         i < ringDrops.size() && i < kStatsGlobalShard; ++i)
        if (ringDrops[i] != 0)
            samples.push_back({StatTag::TraceDrops,
                               std::uint16_t(i), ringDrops[i]});

    for (std::size_t s = 0; s < shards.size(); ++s) {
        const kv::KvShardTelemetry &t = shards[s];
        auto ps = [&](StatTag tag, std::uint64_t v) {
            samples.push_back({tag, std::uint16_t(s), v});
        };
        ps(StatTag::References, t.references);
        ps(StatTag::Hits, t.hits + t.getHits);
        ps(StatTag::Misses, t.misses + (t.gets - t.getHits));
        ps(StatTag::Gets, t.gets);
        ps(StatTag::GetHits, t.getHits);
        ps(StatTag::Evictions, t.evictions);
        ps(StatTag::AdmitRejects, t.admitRejects);
        ps(StatTag::Expirations, t.expirations);
        ps(StatTag::ReadRetries, t.readRetries);
        ps(StatTag::SlowProbes, t.slowProbes);
        ps(StatTag::SelectionFlips, t.selectionFlips);
        ps(StatTag::DiffMisses, t.diffMisses);
        ps(StatTag::Winner, t.winner);
        ps(StatTag::Size, t.size);
        ps(StatTag::Pinned, t.pinned);
        ps(StatTag::HitRatePpm, std::uint64_t(t.hitRate() * 1e6));
    }

    {
        std::lock_guard<std::mutex> lock(providersMtx_);
        for (const StatsProvider &p : providers_)
            p(samples);
    }
    return encodeStatsV2(std::uint16_t(shards.size()), samples);
}

void
KvService::addStatsProvider(StatsProvider fn)
{
    std::lock_guard<std::mutex> lock(providersMtx_);
    providers_.push_back(std::move(fn));
}

void
KvService::registerMetrics(obs::MetricsRegistry &reg)
{
    cache_.registerMetrics(reg);
    reg.addCollector([this](obs::MetricsSink &sink) {
        sink.counter("adcache_net_requests_total", {},
                     double(requestsServed()),
                     "Requests served (any status)");
        sink.counter("adcache_net_errors_total", {},
                     double(errorsAnswered()),
                     "Requests answered with Error");
        for (const MsgKind kind :
             {MsgKind::Get, MsgKind::Put, MsgKind::Del,
              MsgKind::Ping, MsgKind::Stats, MsgKind::MGet})
            sink.counter("adcache_net_op_total",
                         {{"op", msgKindName(kind)}},
                         double(opCount(kind)),
                         "Requests by opcode");
        sink.gauge("adcache_net_request_p50_ns", {},
                   double(requestPercentileNs(0.50)),
                   "Request latency median (bucket upper edge)");
        sink.gauge("adcache_net_request_p99_ns", {},
                   double(requestPercentileNs(0.99)),
                   "Request latency p99 (bucket upper edge)");
    });
}

} // namespace adcache::net
