#include "net/service.hh"

#include <chrono>
#include <sstream>
#include <thread>

#include "util/stat_registry.hh"

namespace adcache::net
{

KvService::KvService(const KvServiceConfig &config)
    : config_(config), cache_(config.cache)
{
}

bool
KvService::shardDead(kv::KvKey key) const
{
    const std::uint64_t mask =
        deadShardMask_.load(std::memory_order_seq_cst);
    if (mask == 0)
        return false;
    return (mask >> cache_.shardOf(key)) & 1;
}

std::uint64_t
KvService::requestsServed() const
{
    return requests_.load(std::memory_order_seq_cst);
}

std::uint64_t
KvService::errorsAnswered() const
{
    return errors_.load(std::memory_order_seq_cst);
}

Message
KvService::handle(const Message &request)
{
    requests_.fetch_add(1, std::memory_order_relaxed);
    switch (request.kind) {
      case MsgKind::Get: {
        if (shardDead(request.key)) {
            errors_.fetch_add(1, std::memory_order_relaxed);
            return Message::error("shard down");
        }
        if (config_.readThrough) {
            const std::uint32_t delay_us =
                fetchDelayUs_.load(std::memory_order_seq_cst);
            std::string v = cache_.fetch(
                request.key,
                [&] {
                    // The loader body is the "backend": derive the
                    // canonical value, stalled by the slowdown
                    // scenario when it is armed.
                    if (delay_us)
                        std::this_thread::sleep_for(
                            std::chrono::microseconds(delay_us));
                    return valueFor(request.key,
                                    config_.loaderValues);
                },
                config_.loaderTtl);
            return Message::value(v);
        }
        if (auto v = cache_.get(request.key))
            return Message::value(*v);
        return Message::notFound();
      }
      case MsgKind::Put: {
        if (shardDead(request.key)) {
            errors_.fetch_add(1, std::memory_order_relaxed);
            return Message::error("shard down");
        }
        cache_.put(request.key, request.payload, /*pinned=*/false,
                   request.ttl);
        return Message::ok();
      }
      case MsgKind::Del: {
        if (shardDead(request.key)) {
            errors_.fetch_add(1, std::memory_order_relaxed);
            return Message::error("shard down");
        }
        return cache_.erase(request.key) ? Message::ok()
                                         : Message::notFound();
      }
      case MsgKind::Ping:
        return Message::ok();
      case MsgKind::Stats:
        return Message::value(statsText());
      default:
        errors_.fetch_add(1, std::memory_order_relaxed);
        return Message::error("bad request kind");
    }
}

std::string
KvService::statsText() const
{
    StatRegistry reg;
    cache_.registerStats(reg, "kv.");
    reg.counter("net.requests", requestsServed());
    reg.counter("net.errors", errorsAnswered());
    std::ostringstream out;
    for (const StatEntry &e : reg.entries()) {
        out << e.name << " ";
        switch (e.kind) {
          case StatEntry::Kind::Counter:
            out << e.counter;
            break;
          case StatEntry::Kind::Value:
            out << e.value;
            break;
          case StatEntry::Kind::Text:
            out << e.text;
            break;
        }
        out << "\n";
    }
    return out.str();
}

} // namespace adcache::net
