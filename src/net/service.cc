#include "net/service.hh"

#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

#include "util/stat_registry.hh"

namespace adcache::net
{

KvService::KvService(const KvServiceConfig &config)
    : config_(config), cache_(config.cache)
{
}

bool
KvService::shardDead(kv::KvKey key) const
{
    const std::uint64_t mask =
        deadShardMask_.load(std::memory_order_seq_cst);
    if (mask == 0)
        return false;
    return (mask >> cache_.shardOf(key)) & 1;
}

std::uint64_t
KvService::requestsServed() const
{
    return requests_.load(std::memory_order_seq_cst);
}

std::uint64_t
KvService::errorsAnswered() const
{
    return errors_.load(std::memory_order_seq_cst);
}

Message
KvService::handle(const Message &request)
{
    requests_.fetch_add(1, std::memory_order_relaxed);
    switch (request.kind) {
      case MsgKind::Get: {
        if (shardDead(request.key)) {
            errors_.fetch_add(1, std::memory_order_relaxed);
            return Message::error("shard down");
        }
        if (config_.readThrough) {
            const std::uint32_t delay_us =
                fetchDelayUs_.load(std::memory_order_seq_cst);
            std::string v = cache_.fetch(
                request.key,
                [&] {
                    // The loader body is the "backend": derive the
                    // canonical value, stalled by the slowdown
                    // scenario when it is armed.
                    if (delay_us)
                        std::this_thread::sleep_for(
                            std::chrono::microseconds(delay_us));
                    return valueFor(request.key,
                                    config_.loaderValues);
                },
                config_.loaderTtl);
            return Message::value(v);
        }
        if (auto v = cache_.get(request.key))
            return Message::value(*v);
        return Message::notFound();
      }
      case MsgKind::Put: {
        if (shardDead(request.key)) {
            errors_.fetch_add(1, std::memory_order_relaxed);
            return Message::error("shard down");
        }
        cache_.put(request.key, request.payload, /*pinned=*/false,
                   request.ttl);
        return Message::ok();
      }
      case MsgKind::Del: {
        if (shardDead(request.key)) {
            errors_.fetch_add(1, std::memory_order_relaxed);
            return Message::error("shard down");
        }
        return cache_.erase(request.key) ? Message::ok()
                                         : Message::notFound();
      }
      case MsgKind::MGet:
        return handleMGet(request);
      case MsgKind::Ping:
        return Message::ok();
      case MsgKind::Stats:
        return Message::value(statsText());
      default:
        errors_.fetch_add(1, std::memory_order_relaxed);
        return Message::error("bad request kind");
    }
}

Message
KvService::handleMGet(const Message &request)
{
    const std::size_t n = request.keys.size();
    std::vector<MGetEntry> entries(n);

    // Keys on dead shards answer per-key Error entries, so one lost
    // shard degrades the batch instead of failing it wholesale; the
    // live remainder goes through one shard-grouped getMany, which
    // is the point of the opcode — cache hits stay on the lock-free
    // path even with read-through on (a plain Get under readThrough
    // always takes the shard mutex via fetch()). With every shard
    // alive — the steady state — the keys span probes as-is, with
    // no live-subset copy.
    std::vector<kv::KvKey> live;
    std::vector<std::uint32_t> live_idx;
    const bool all_alive =
        deadShardMask_.load(std::memory_order_seq_cst) == 0;
    if (!all_alive) {
        live.reserve(n);
        live_idx.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            if (shardDead(request.keys[i])) {
                errors_.fetch_add(1, std::memory_order_relaxed);
                entries[i].status = MGetStatus::Error;
                entries[i].value = "shard down";
            } else {
                live.push_back(request.keys[i]);
                live_idx.push_back(std::uint32_t(i));
            }
        }
    }
    const std::span<const kv::KvKey> probe_keys =
        all_alive ? std::span<const kv::KvKey>(request.keys)
                  : std::span<const kv::KvKey>(live);

    std::vector<std::optional<std::string>> got(probe_keys.size());
    cache_.getMany(probe_keys, got.data());

    const std::uint32_t delay_us =
        fetchDelayUs_.load(std::memory_order_seq_cst);
    for (std::size_t j = 0; j < probe_keys.size(); ++j) {
        MGetEntry &e = entries[all_alive ? j : live_idx[j]];
        if (got[j]) {
            e.status = MGetStatus::Found;
            e.value = std::move(*got[j]);
        } else if (config_.readThrough) {
            const kv::KvKey key = probe_keys[j];
            e.status = MGetStatus::Found;
            e.value = cache_.fetch(
                key,
                [&] {
                    if (delay_us)
                        std::this_thread::sleep_for(
                            std::chrono::microseconds(delay_us));
                    return valueFor(key, config_.loaderValues);
                },
                config_.loaderTtl);
        }
        // else: stays MGetStatus::Miss.
    }

    // The response must itself be one legal frame; a batch of fat
    // values that would overflow it is a request-level error (the
    // client should split the batch), not a dead connection.
    std::size_t body = 1 + 4;
    for (const MGetEntry &e : entries)
        body += 5 + e.value.size();
    if (body > kMaxFrameBytes) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        return Message::error("mget response too large");
    }
    return Message::values(std::move(entries));
}

std::string
KvService::statsText() const
{
    StatRegistry reg;
    cache_.registerStats(reg, "kv.");
    reg.counter("net.requests", requestsServed());
    reg.counter("net.errors", errorsAnswered());
    std::ostringstream out;
    for (const StatEntry &e : reg.entries()) {
        out << e.name << " ";
        switch (e.kind) {
          case StatEntry::Kind::Counter:
            out << e.counter;
            break;
          case StatEntry::Kind::Value:
            out << e.value;
            break;
          case StatEntry::Kind::Text:
            out << e.text;
            break;
        }
        out << "\n";
    }
    return out.str();
}

} // namespace adcache::net
