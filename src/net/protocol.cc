#include "net/protocol.hh"

namespace adcache::net
{

namespace
{

void
putU32(std::uint32_t v, std::string *out)
{
    out->push_back(char(v & 0xff));
    out->push_back(char((v >> 8) & 0xff));
    out->push_back(char((v >> 16) & 0xff));
    out->push_back(char((v >> 24) & 0xff));
}

void
putU64(std::uint64_t v, std::string *out)
{
    putU32(std::uint32_t(v & 0xffffffffu), out);
    putU32(std::uint32_t(v >> 32), out);
}

std::uint32_t
getU32(const unsigned char *p)
{
    return std::uint32_t(p[0]) | (std::uint32_t(p[1]) << 8) |
           (std::uint32_t(p[2]) << 16) | (std::uint32_t(p[3]) << 24);
}

std::uint64_t
getU64(const unsigned char *p)
{
    return std::uint64_t(getU32(p)) |
           (std::uint64_t(getU32(p + 4)) << 32);
}

} // namespace

const char *
msgKindName(MsgKind kind)
{
    switch (kind) {
      case MsgKind::Get:
        return "get";
      case MsgKind::Put:
        return "put";
      case MsgKind::Del:
        return "del";
      case MsgKind::Ping:
        return "ping";
      case MsgKind::Stats:
        return "stats";
      case MsgKind::MGet:
        return "mget";
      case MsgKind::Ok:
        return "ok";
      case MsgKind::Value:
        return "value";
      case MsgKind::NotFound:
        return "not_found";
      case MsgKind::Error:
        return "error";
      case MsgKind::Values:
        return "values";
      case MsgKind::StatsV2:
        return "stats_v2";
    }
    return "?";
}

bool
isRequestKind(MsgKind kind)
{
    return std::uint8_t(kind) < 0x80;
}

Message
Message::get(std::uint64_t key)
{
    Message m;
    m.kind = MsgKind::Get;
    m.key = key;
    return m;
}

Message
Message::put(std::uint64_t key, std::string_view value,
             std::uint32_t ttl)
{
    Message m;
    m.kind = MsgKind::Put;
    m.key = key;
    m.ttl = ttl;
    m.payload = value;
    return m;
}

Message
Message::del(std::uint64_t key)
{
    Message m;
    m.kind = MsgKind::Del;
    m.key = key;
    return m;
}

Message
Message::ping()
{
    Message m;
    m.kind = MsgKind::Ping;
    return m;
}

Message
Message::stats()
{
    Message m;
    m.kind = MsgKind::Stats;
    return m;
}

Message
Message::stats2()
{
    Message m;
    m.kind = MsgKind::Stats;
    m.statsVersion = 2;
    return m;
}

Message
Message::mget(std::vector<std::uint64_t> keys)
{
    Message m;
    m.kind = MsgKind::MGet;
    m.keys = std::move(keys);
    return m;
}

Message
Message::ok()
{
    Message m;
    m.kind = MsgKind::Ok;
    return m;
}

Message
Message::value(std::string_view v)
{
    Message m;
    m.kind = MsgKind::Value;
    m.payload = v;
    return m;
}

Message
Message::notFound()
{
    Message m;
    m.kind = MsgKind::NotFound;
    return m;
}

Message
Message::error(std::string_view text)
{
    Message m;
    m.kind = MsgKind::Error;
    m.payload = text;
    return m;
}

Message
Message::values(std::vector<MGetEntry> entries)
{
    Message m;
    m.kind = MsgKind::Values;
    m.entries = std::move(entries);
    return m;
}

Message
Message::statsV2Response(std::string blob)
{
    Message m;
    m.kind = MsgKind::StatsV2;
    m.payload = std::move(blob);
    return m;
}

void
encodeFrame(const Message &m, std::string *out)
{
    std::string body;
    body.push_back(char(m.kind));
    switch (m.kind) {
      case MsgKind::Get:
      case MsgKind::Del:
        putU64(m.key, &body);
        break;
      case MsgKind::Put:
        putU64(m.key, &body);
        putU32(m.ttl, &body);
        body.append(m.payload);
        break;
      case MsgKind::Ping:
      case MsgKind::Ok:
      case MsgKind::NotFound:
        break;
      case MsgKind::Stats:
        // v1 keeps the historical empty body; later versions carry
        // one version byte.
        if (m.statsVersion > 1)
            body.push_back(char(m.statsVersion));
        break;
      case MsgKind::Value:
      case MsgKind::Error:
      case MsgKind::StatsV2:
        body.append(m.payload);
        break;
      case MsgKind::MGet:
        putU32(std::uint32_t(m.keys.size()), &body);
        for (const std::uint64_t k : m.keys)
            putU64(k, &body);
        break;
      case MsgKind::Values: {
        std::size_t bytes = 4;
        for (const MGetEntry &e : m.entries)
            bytes += 5 + e.value.size();
        body.reserve(1 + bytes);
        putU32(std::uint32_t(m.entries.size()), &body);
        for (const MGetEntry &e : m.entries) {
            body.push_back(char(e.status));
            putU32(std::uint32_t(e.value.size()), &body);
            body.append(e.value);
        }
        break;
      }
    }
    putU32(std::uint32_t(body.size()), out);
    out->append(body);
}

std::string
encodedFrame(const Message &m)
{
    std::string out;
    encodeFrame(m, &out);
    return out;
}

bool
decodeBody(std::string_view body, Message *out)
{
    if (body.empty())
        return false;
    const auto *p =
        reinterpret_cast<const unsigned char *>(body.data());
    const auto kind = MsgKind(p[0]);
    Message m;
    m.kind = kind;
    switch (kind) {
      case MsgKind::Get:
      case MsgKind::Del:
        if (body.size() != 1 + 8)
            return false;
        m.key = getU64(p + 1);
        break;
      case MsgKind::Put:
        if (body.size() < 1 + 8 + 4)
            return false;
        m.key = getU64(p + 1);
        m.ttl = getU32(p + 9);
        m.payload.assign(body.substr(13));
        break;
      case MsgKind::Ping:
      case MsgKind::Ok:
      case MsgKind::NotFound:
        if (body.size() != 1)
            return false;
        break;
      case MsgKind::Stats:
        if (body.size() > 2)
            return false;
        // An out-of-range version still decodes (the service
        // answers Error); only the frame shape is validated here.
        m.statsVersion = body.size() == 2 ? p[1] : 1;
        break;
      case MsgKind::Value:
      case MsgKind::Error:
      case MsgKind::StatsV2:
        m.payload.assign(body.substr(1));
        break;
      case MsgKind::MGet: {
        if (body.size() < 1 + 4)
            return false;
        const std::size_t count = getU32(p + 1);
        if (count > kMaxMGetKeys ||
            body.size() != 1 + 4 + 8 * count)
            return false;
        m.keys.reserve(count);
        for (std::size_t i = 0; i < count; ++i)
            m.keys.push_back(getU64(p + 5 + 8 * i));
        break;
      }
      case MsgKind::Values: {
        if (body.size() < 1 + 4)
            return false;
        const std::size_t count = getU32(p + 1);
        if (count > kMaxMGetKeys)
            return false;
        m.entries.reserve(count);
        std::size_t off = 5;
        for (std::size_t i = 0; i < count; ++i) {
            if (body.size() - off < 5)
                return false;
            const std::uint8_t status = p[off];
            if (status > std::uint8_t(MGetStatus::Error))
                return false;
            const std::size_t len = getU32(p + off + 1);
            off += 5;
            if (body.size() - off < len)
                return false;
            MGetEntry e;
            e.status = MGetStatus(status);
            e.value.assign(body.substr(off, len));
            m.entries.push_back(std::move(e));
            off += len;
        }
        if (off != body.size())
            return false;
        break;
      }
      default:
        return false;
    }
    *out = std::move(m);
    return true;
}

void
FrameReader::feed(std::string_view bytes)
{
    if (corrupt_)
        return;
    // Compact the consumed prefix before it outgrows one max frame.
    if (pos_ > maxFrame_) {
        buf_.erase(0, pos_);
        pos_ = 0;
    }
    buf_.append(bytes);
}

FrameReader::Status
FrameReader::next(std::string *body)
{
    if (corrupt_)
        return Status::Corrupt;
    if (buffered() < 4)
        return Status::NeedMore;
    const auto *p = reinterpret_cast<const unsigned char *>(
        buf_.data() + pos_);
    const std::uint32_t len = getU32(p);
    if (len > maxFrame_) {
        corrupt_ = true;
        return Status::Corrupt;
    }
    if (buffered() < 4 + std::size_t(len))
        return Status::NeedMore;
    body->assign(buf_, pos_ + 4, len);
    pos_ += 4 + len;
    return Status::Frame;
}

} // namespace adcache::net
