#include "net/protocol.hh"

namespace adcache::net
{

namespace
{

void
putU32(std::uint32_t v, std::string *out)
{
    out->push_back(char(v & 0xff));
    out->push_back(char((v >> 8) & 0xff));
    out->push_back(char((v >> 16) & 0xff));
    out->push_back(char((v >> 24) & 0xff));
}

void
putU64(std::uint64_t v, std::string *out)
{
    putU32(std::uint32_t(v & 0xffffffffu), out);
    putU32(std::uint32_t(v >> 32), out);
}

std::uint32_t
getU32(const unsigned char *p)
{
    return std::uint32_t(p[0]) | (std::uint32_t(p[1]) << 8) |
           (std::uint32_t(p[2]) << 16) | (std::uint32_t(p[3]) << 24);
}

std::uint64_t
getU64(const unsigned char *p)
{
    return std::uint64_t(getU32(p)) |
           (std::uint64_t(getU32(p + 4)) << 32);
}

} // namespace

const char *
msgKindName(MsgKind kind)
{
    switch (kind) {
      case MsgKind::Get:
        return "get";
      case MsgKind::Put:
        return "put";
      case MsgKind::Del:
        return "del";
      case MsgKind::Ping:
        return "ping";
      case MsgKind::Stats:
        return "stats";
      case MsgKind::Ok:
        return "ok";
      case MsgKind::Value:
        return "value";
      case MsgKind::NotFound:
        return "not_found";
      case MsgKind::Error:
        return "error";
    }
    return "?";
}

bool
isRequestKind(MsgKind kind)
{
    return std::uint8_t(kind) < 0x80;
}

Message
Message::get(std::uint64_t key)
{
    Message m;
    m.kind = MsgKind::Get;
    m.key = key;
    return m;
}

Message
Message::put(std::uint64_t key, std::string_view value,
             std::uint32_t ttl)
{
    Message m;
    m.kind = MsgKind::Put;
    m.key = key;
    m.ttl = ttl;
    m.payload = value;
    return m;
}

Message
Message::del(std::uint64_t key)
{
    Message m;
    m.kind = MsgKind::Del;
    m.key = key;
    return m;
}

Message
Message::ping()
{
    Message m;
    m.kind = MsgKind::Ping;
    return m;
}

Message
Message::stats()
{
    Message m;
    m.kind = MsgKind::Stats;
    return m;
}

Message
Message::ok()
{
    Message m;
    m.kind = MsgKind::Ok;
    return m;
}

Message
Message::value(std::string_view v)
{
    Message m;
    m.kind = MsgKind::Value;
    m.payload = v;
    return m;
}

Message
Message::notFound()
{
    Message m;
    m.kind = MsgKind::NotFound;
    return m;
}

Message
Message::error(std::string_view text)
{
    Message m;
    m.kind = MsgKind::Error;
    m.payload = text;
    return m;
}

void
encodeFrame(const Message &m, std::string *out)
{
    std::string body;
    body.push_back(char(m.kind));
    switch (m.kind) {
      case MsgKind::Get:
      case MsgKind::Del:
        putU64(m.key, &body);
        break;
      case MsgKind::Put:
        putU64(m.key, &body);
        putU32(m.ttl, &body);
        body.append(m.payload);
        break;
      case MsgKind::Ping:
      case MsgKind::Stats:
      case MsgKind::Ok:
      case MsgKind::NotFound:
        break;
      case MsgKind::Value:
      case MsgKind::Error:
        body.append(m.payload);
        break;
    }
    putU32(std::uint32_t(body.size()), out);
    out->append(body);
}

std::string
encodedFrame(const Message &m)
{
    std::string out;
    encodeFrame(m, &out);
    return out;
}

bool
decodeBody(std::string_view body, Message *out)
{
    if (body.empty())
        return false;
    const auto *p =
        reinterpret_cast<const unsigned char *>(body.data());
    const auto kind = MsgKind(p[0]);
    Message m;
    m.kind = kind;
    switch (kind) {
      case MsgKind::Get:
      case MsgKind::Del:
        if (body.size() != 1 + 8)
            return false;
        m.key = getU64(p + 1);
        break;
      case MsgKind::Put:
        if (body.size() < 1 + 8 + 4)
            return false;
        m.key = getU64(p + 1);
        m.ttl = getU32(p + 9);
        m.payload.assign(body.substr(13));
        break;
      case MsgKind::Ping:
      case MsgKind::Stats:
      case MsgKind::Ok:
      case MsgKind::NotFound:
        if (body.size() != 1)
            return false;
        break;
      case MsgKind::Value:
      case MsgKind::Error:
        m.payload.assign(body.substr(1));
        break;
      default:
        return false;
    }
    *out = m;
    return true;
}

void
FrameReader::feed(std::string_view bytes)
{
    if (corrupt_)
        return;
    // Compact the consumed prefix before it outgrows one max frame.
    if (pos_ > maxFrame_) {
        buf_.erase(0, pos_);
        pos_ = 0;
    }
    buf_.append(bytes);
}

FrameReader::Status
FrameReader::next(std::string *body)
{
    if (corrupt_)
        return Status::Corrupt;
    if (buffered() < 4)
        return Status::NeedMore;
    const auto *p = reinterpret_cast<const unsigned char *>(
        buf_.data() + pos_);
    const std::uint32_t len = getU32(p);
    if (len > maxFrame_) {
        corrupt_ = true;
        return Status::Corrupt;
    }
    if (buffered() < 4 + std::size_t(len))
        return Status::NeedMore;
    body->assign(buf_, pos_ + 4, len);
    pos_ += 4 + len;
    return Status::Frame;
}

} // namespace adcache::net
