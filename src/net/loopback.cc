#include "net/loopback.hh"

#include "net/stats_v2.hh"
#include "obs/trace.hh"
#include "util/logging.hh"

namespace adcache::net
{

bool
KvChannel::ingest(std::string_view bytes, std::string *out)
{
    if (dead_)
        return false;
    reader_.feed(bytes);
    std::string body;
    for (;;) {
        switch (reader_.next(&body)) {
          case FrameReader::Status::NeedMore:
            return true;
          case FrameReader::Status::Corrupt:
            dead_ = true;
            return false;
          case FrameReader::Status::Frame: {
            ++requests_;
            Message req;
            bool ok;
            {
                obs::ScopedSpan span("srv.decode");
                ok = decodeBody(body, &req) &&
                     isRequestKind(req.kind);
            }
            if (!ok) {
                // Request-fatal only: answer Error, keep framing.
                encodeFrame(Message::error("malformed request"),
                            out);
                break;
            }
            obs::ScopedSpan span("srv.execute");
            encodeFrame(service_.handle(req), out);
            break;
          }
        }
    }
}

Message
LoopbackConnection::call(const Message &request, std::size_t chunk)
{
    adcache_assert(!channel_.dead());
    const std::string frame = encodedFrame(request);
    std::string out;
    if (chunk == 0) {
        channel_.ingest(frame, &out);
    } else {
        for (std::size_t i = 0; i < frame.size(); i += chunk)
            channel_.ingest(
                std::string_view(frame).substr(i, chunk), &out);
    }
    responses_.feed(out);
    std::string body;
    const auto status = responses_.next(&body);
    adcache_assert(status == FrameReader::Status::Frame);
    Message resp;
    const bool ok = decodeBody(body, &resp);
    adcache_assert(ok);
    return resp;
}

std::vector<Message>
LoopbackConnection::callMany(const std::vector<Message> &requests,
                             std::size_t chunk)
{
    adcache_assert(!channel_.dead());
    std::string frames;
    for (const Message &request : requests)
        encodeFrame(request, &frames);
    std::string out;
    if (chunk == 0) {
        channel_.ingest(frames, &out);
    } else {
        for (std::size_t i = 0; i < frames.size(); i += chunk)
            channel_.ingest(
                std::string_view(frames).substr(i, chunk), &out);
    }
    responses_.feed(out);
    std::vector<Message> resps;
    resps.reserve(requests.size());
    std::string body;
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const auto status = responses_.next(&body);
        adcache_assert(status == FrameReader::Status::Frame);
        Message resp;
        const bool ok = decodeBody(body, &resp);
        adcache_assert(ok);
        resps.push_back(std::move(resp));
    }
    return resps;
}

std::vector<std::optional<std::string>>
LoopbackConnection::mget(const std::vector<std::uint64_t> &keys)
{
    std::vector<std::optional<std::string>> out(keys.size());
    Message r = call(Message::mget(keys));
    if (r.kind != MsgKind::Values ||
        r.entries.size() != keys.size())
        return out;
    for (std::size_t i = 0; i < keys.size(); ++i)
        if (r.entries[i].status == MGetStatus::Found)
            out[i].emplace(std::move(r.entries[i].value));
    return out;
}

std::optional<std::string>
LoopbackConnection::get(std::uint64_t key)
{
    Message r = call(Message::get(key));
    if (r.kind == MsgKind::Value)
        return std::move(r.payload);
    return std::nullopt;
}

bool
LoopbackConnection::put(std::uint64_t key, std::string_view value,
                        std::uint32_t ttl)
{
    return call(Message::put(key, value, ttl)).kind == MsgKind::Ok;
}

bool
LoopbackConnection::del(std::uint64_t key)
{
    return call(Message::del(key)).kind == MsgKind::Ok;
}

bool
LoopbackConnection::ping()
{
    return call(Message::ping()).kind == MsgKind::Ok;
}

std::string
LoopbackConnection::stats()
{
    Message r = call(Message::stats());
    return r.kind == MsgKind::Value ? std::move(r.payload)
                                    : std::string();
}

bool
LoopbackConnection::stats2(std::uint16_t *shardCount,
                           std::vector<StatSample> *samples)
{
    Message r = call(Message::stats2());
    if (r.kind != MsgKind::StatsV2)
        return false;
    return decodeStatsV2(r.payload, shardCount, samples);
}

} // namespace adcache::net
