#include "net/client.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace adcache::net
{

KvClient::~KvClient()
{
    close();
}

void
KvClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    responses_ = FrameReader();
}

bool
KvClient::connect(const std::string &host, std::uint16_t port,
                  bool no_delay)
{
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        lastError_ = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        lastError_ = "bad host address: " + host;
        close();
        return false;
    }
    for (;;) {
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof addr) == 0)
            break;
        if (errno == EINTR)
            continue;
        lastError_ = std::string("connect: ") + std::strerror(errno);
        close();
        return false;
    }
    if (no_delay) {
        int one = 1;
        ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof one);
    }
    return true;
}

bool
KvClient::writeAll(const char *data, std::size_t size)
{
    std::size_t off = 0;
    while (off < size) {
        const ssize_t n = ::write(fd_, data + off, size - off);
        if (n > 0) {
            off += std::size_t(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        lastError_ = std::string("write: ") + std::strerror(errno);
        return false;
    }
    return true;
}

bool
KvClient::readFrame(std::string *body)
{
    for (;;) {
        switch (responses_.next(body)) {
          case FrameReader::Status::Frame:
            return true;
          case FrameReader::Status::Corrupt:
            lastError_ = "corrupt response framing";
            return false;
          case FrameReader::Status::NeedMore:
            break;
        }
        char buf[16 * 1024];
        const ssize_t n = ::read(fd_, buf, sizeof buf);
        if (n > 0) {
            responses_.feed(std::string_view(buf, std::size_t(n)));
            continue;
        }
        if (n == 0) {
            lastError_ = "server closed connection mid-response";
            return false;
        }
        if (errno == EINTR)
            continue;
        lastError_ = std::string("read: ") + std::strerror(errno);
        return false;
    }
}

Message
KvClient::fail(const std::string &why)
{
    close();
    return Message::error(why);
}

Message
KvClient::call(const Message &request)
{
    if (fd_ < 0)
        return Message::error(lastError_.empty() ? "not connected"
                                                 : lastError_);
    const std::string frame = encodedFrame(request);
    if (!writeAll(frame.data(), frame.size()))
        return fail(lastError_);
    std::string body;
    if (!readFrame(&body))
        return fail(lastError_);
    Message resp;
    if (!decodeBody(body, &resp))
        return fail("undecodable response body");
    return resp;
}

std::size_t
KvClient::sendMany(const std::vector<Message> &requests,
                   std::vector<Message> *responses)
{
    responses->clear();
    responses->reserve(requests.size());
    const auto fail_rest = [&](const std::string &why) {
        close();
        lastError_ = why;
        while (responses->size() < requests.size())
            responses->push_back(Message::error(why));
    };
    if (fd_ < 0) {
        fail_rest(lastError_.empty() ? "not connected" : lastError_);
        return 0;
    }
    std::string frames;
    for (const Message &request : requests)
        encodeFrame(request, &frames);
    if (!writeAll(frames.data(), frames.size())) {
        fail_rest(lastError_);
        return 0;
    }
    std::string body;
    for (std::size_t i = 0; i < requests.size(); ++i) {
        if (!readFrame(&body)) {
            fail_rest(lastError_);
            return i;
        }
        Message resp;
        if (!decodeBody(body, &resp)) {
            fail_rest("undecodable response body");
            return i;
        }
        responses->push_back(std::move(resp));
    }
    return requests.size();
}

std::vector<std::optional<std::string>>
KvClient::mget(const std::vector<std::uint64_t> &keys)
{
    std::vector<std::optional<std::string>> out(keys.size());
    Message r = call(Message::mget(keys));
    if (r.kind != MsgKind::Values ||
        r.entries.size() != keys.size())
        return out;
    for (std::size_t i = 0; i < keys.size(); ++i)
        if (r.entries[i].status == MGetStatus::Found)
            out[i].emplace(std::move(r.entries[i].value));
    return out;
}

std::optional<std::string>
KvClient::get(std::uint64_t key)
{
    Message r = call(Message::get(key));
    if (r.kind == MsgKind::Value)
        return std::move(r.payload);
    return std::nullopt;
}

bool
KvClient::put(std::uint64_t key, std::string_view value,
              std::uint32_t ttl)
{
    return call(Message::put(key, value, ttl)).kind == MsgKind::Ok;
}

bool
KvClient::del(std::uint64_t key)
{
    return call(Message::del(key)).kind == MsgKind::Ok;
}

bool
KvClient::ping()
{
    return call(Message::ping()).kind == MsgKind::Ok;
}

std::string
KvClient::stats()
{
    Message r = call(Message::stats());
    return r.kind == MsgKind::Value ? std::move(r.payload)
                                    : std::string();
}

bool
KvClient::stats2(std::uint16_t *shardCount,
                 std::vector<StatSample> *samples)
{
    Message r = call(Message::stats2());
    if (r.kind != MsgKind::StatsV2)
        return false;
    return decodeStatsV2(r.payload, shardCount, samples);
}

} // namespace adcache::net
