#include "net/server.hh"

#include "obs/trace.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace adcache::net
{

namespace
{

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 &&
           ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

} // namespace

KvServer::KvServer(KvService &service, const KvServerConfig &config)
    : service_(service), config_(config),
      counters_(std::make_shared<Counters>())
{
    if (config_.workers == 0)
        config_.workers = 1;
}

std::uint64_t
KvServer::bytesReceived() const
{
    return counters_->bytesIn.load(std::memory_order_relaxed);
}

std::uint64_t
KvServer::bytesSent() const
{
    return counters_->bytesOut.load(std::memory_order_relaxed);
}

std::uint64_t
KvServer::framesReceived() const
{
    return counters_->framesIn.load(std::memory_order_relaxed);
}

std::uint64_t
KvServer::backpressureParks() const
{
    return counters_->parks.load(std::memory_order_relaxed);
}

std::uint64_t
KvServer::outBufHighWater() const
{
    return counters_->outHighWater.load(std::memory_order_relaxed);
}

void
KvServer::installStatsProvider()
{
    service_.addStatsProvider(
        [c = counters_](std::vector<StatSample> &samples) {
            const auto g = kStatsGlobalShard;
            const auto rd = [](const std::atomic<std::uint64_t> &a) {
                return a.load(std::memory_order_relaxed);
            };
            samples.push_back(
                {StatTag::Connections, g, rd(c->accepted)});
            samples.push_back(
                {StatTag::FramesIn, g, rd(c->framesIn)});
            samples.push_back(
                {StatTag::BytesIn, g, rd(c->bytesIn)});
            samples.push_back(
                {StatTag::BytesOut, g, rd(c->bytesOut)});
            samples.push_back(
                {StatTag::BackpressureParks, g, rd(c->parks)});
            samples.push_back(
                {StatTag::OutBufHighWater, g, rd(c->outHighWater)});
        });
}

void
KvServer::registerMetrics(obs::MetricsRegistry &reg)
{
    reg.addCollector([c = counters_](obs::MetricsSink &sink) {
        const auto rd = [](const std::atomic<std::uint64_t> &a) {
            return a.load(std::memory_order_relaxed);
        };
        sink.counter("adcache_srv_connections_total", {},
                     double(rd(c->accepted)),
                     "Connections accepted");
        sink.counter("adcache_srv_frames_in_total", {},
                     double(rd(c->framesIn)),
                     "Request frames decoded off sockets");
        sink.counter("adcache_srv_bytes_in_total", {},
                     double(rd(c->bytesIn)),
                     "Bytes read off sockets");
        sink.counter("adcache_srv_bytes_out_total", {},
                     double(rd(c->bytesOut)),
                     "Bytes written to sockets");
        sink.counter("adcache_srv_backpressure_parks_total", {},
                     double(rd(c->parks)),
                     "Response flushes parked on a full socket");
        sink.gauge("adcache_srv_outbuf_high_water_bytes", {},
                   double(rd(c->outHighWater)),
                   "Largest pending output buffer seen");
    });
}

KvServer::~KvServer()
{
    stop();
}

void
KvServer::closeFd(int fd)
{
    if (fd >= 0)
        ::close(fd);
}

bool
KvServer::start()
{
    if (running_.load(std::memory_order_seq_cst))
        return true;
    stopping_.store(false, std::memory_order_seq_cst);

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        lastError_ = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.host.c_str(),
                    &addr.sin_addr) != 1) {
        lastError_ = "bad host address: " + config_.host;
        closeFd(listenFd_);
        listenFd_ = -1;
        return false;
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0) {
        lastError_ = std::string("bind: ") + std::strerror(errno);
        closeFd(listenFd_);
        listenFd_ = -1;
        return false;
    }
    if (::listen(listenFd_, config_.backlog) != 0) {
        lastError_ = std::string("listen: ") + std::strerror(errno);
        closeFd(listenFd_);
        listenFd_ = -1;
        return false;
    }
    sockaddr_in bound{};
    socklen_t blen = sizeof bound;
    if (::getsockname(listenFd_,
                      reinterpret_cast<sockaddr *>(&bound),
                      &blen) == 0)
        port_ = ntohs(bound.sin_port);
    setNonBlocking(listenFd_);

    workers_.clear();
    for (unsigned i = 0; i < config_.workers; ++i) {
        auto w = std::make_unique<Worker>();
        int pipefd[2];
        if (::pipe(pipefd) != 0) {
            lastError_ =
                std::string("pipe: ") + std::strerror(errno);
            closeFd(listenFd_);
            listenFd_ = -1;
            for (auto &prev : workers_) {
                closeFd(prev->wakeRead);
                closeFd(prev->wakeWrite);
            }
            workers_.clear();
            return false;
        }
        w->wakeRead = pipefd[0];
        w->wakeWrite = pipefd[1];
        setNonBlocking(w->wakeRead);
        workers_.push_back(std::move(w));
    }

    running_.store(true, std::memory_order_seq_cst);
    for (auto &w : workers_) {
        Worker *wp = w.get();
        wp->thread = std::thread([this, wp] { workerLoop(*wp); });
    }
    acceptor_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
KvServer::stop()
{
    if (!running_.exchange(false, std::memory_order_seq_cst))
        return;
    stopping_.store(true, std::memory_order_seq_cst);
    // Wake everyone: the acceptor polls the listen fd with a
    // timeout, the workers block in poll on their wake pipes.
    for (auto &w : workers_) {
        const char byte = 1;
        for (;;) {
            const ssize_t n = ::write(w->wakeWrite, &byte, 1);
            if (n >= 0 || errno != EINTR)
                break;
        }
    }
    if (acceptor_.joinable())
        acceptor_.join();
    for (auto &w : workers_) {
        if (w->thread.joinable())
            w->thread.join();
        closeFd(w->wakeRead);
        closeFd(w->wakeWrite);
        // Undispatched handoffs the worker never saw.
        for (int fd : w->inbox)
            closeFd(fd);
        w->inbox.clear();
    }
    workers_.clear();
    closeFd(listenFd_);
    listenFd_ = -1;
}

void
KvServer::acceptLoop()
{
    while (!stopping_.load(std::memory_order_seq_cst)) {
        pollfd pfd{};
        pfd.fd = listenFd_;
        pfd.events = POLLIN;
        const int n = ::poll(&pfd, 1, 100);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (n == 0 || !(pfd.revents & POLLIN))
            continue;
        for (;;) {
            const int fd = ::accept(listenFd_, nullptr, nullptr);
            if (fd < 0) {
                if (errno == EINTR)
                    continue;
                break; // EAGAIN (or a transient error): re-poll
            }
            setNonBlocking(fd);
            if (config_.noDelay) {
                int one = 1;
                ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                             sizeof one);
            }
            counters_->accepted.fetch_add(
                1, std::memory_order_relaxed);
            Worker &w = *workers_[nextWorker_];
            nextWorker_ = (nextWorker_ + 1) % workers_.size();
            {
                std::lock_guard<std::mutex> lock(w.mtx);
                w.inbox.push_back(fd);
            }
            const char byte = 1;
            for (;;) {
                const ssize_t written =
                    ::write(w.wakeWrite, &byte, 1);
                if (written >= 0 || errno != EINTR)
                    break;
            }
        }
    }
}

bool
KvServer::serviceConn(Conn &c, short revents)
{
    if (revents & (POLLERR | POLLNVAL))
        return false;
    if (revents & (POLLIN | POLLHUP)) {
        // Drain the socket completely per readable event: a
        // pipelining client's whole burst of frames is decoded and
        // serviced here, and every response lands in c.out before
        // the single flush loop below runs.
        obs::ScopedSpan span("srv.read");
        const std::uint64_t framesBefore =
            c.channel->requestsHandled();
        char buf[64 * 1024];
        for (;;) {
            const ssize_t n = ::read(c.fd, buf, sizeof buf);
            if (n > 0) {
                counters_->bytesIn.fetch_add(
                    std::uint64_t(n), std::memory_order_relaxed);
                if (!c.channel->ingest(
                        std::string_view(buf, std::size_t(n)),
                        &c.out.data)) {
                    // Corrupt framing: flush what we owe, then
                    // close (error isolation — only this peer).
                    c.closing = true;
                    break;
                }
                continue;
            }
            if (n == 0) {
                // Peer EOF. A partial trailing frame is a protocol
                // violation but, either way, flush-and-close.
                c.closing = true;
                break;
            }
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                break;
            return false; // connection reset etc.
        }
        counters_->framesIn.fetch_add(
            c.channel->requestsHandled() - framesBefore,
            std::memory_order_relaxed);
    }
    // Drain pending output (partial writes advance the consumed
    // head; the tail waits for the next POLLOUT round). MSG_NOSIGNAL
    // turns a peer that hung up mid-flush into an EPIPE on this
    // connection instead of a process-wide SIGPIPE.
    if (!c.out.empty()) {
        obs::ScopedSpan span("srv.flush");
        counters_->noteHighWater(c.out.pending());
        for (;;) {
            const ssize_t n = ::send(c.fd, c.out.front(),
                                     c.out.pending(), MSG_NOSIGNAL);
            if (n > 0) {
                counters_->bytesOut.fetch_add(
                    std::uint64_t(n), std::memory_order_relaxed);
                c.out.consume(std::size_t(n));
                if (c.out.empty())
                    break;
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            if (n < 0 &&
                (errno == EAGAIN || errno == EWOULDBLOCK)) {
                counters_->parks.fetch_add(
                    1, std::memory_order_relaxed);
                break;
            }
            return false; // EPIPE/ECONNRESET: only this peer dies
        }
    }
    return !(c.closing && c.out.empty());
}

void
KvServer::workerLoop(Worker &w)
{
    std::vector<Conn> conns;
    std::vector<pollfd> pfds;
    const auto close_all = [&] {
        for (Conn &c : conns)
            closeFd(c.fd);
        conns.clear();
    };

    for (;;) {
        const bool stopping =
            stopping_.load(std::memory_order_seq_cst);
        if (stopping && conns.empty())
            break;

        pfds.clear();
        pollfd wake{};
        wake.fd = w.wakeRead;
        wake.events = POLLIN;
        pfds.push_back(wake);
        for (const Conn &c : conns) {
            pollfd p{};
            p.fd = c.fd;
            p.events = POLLIN;
            if (!c.out.empty())
                p.events |= POLLOUT;
            pfds.push_back(p);
        }

        const int n =
            ::poll(pfds.data(), nfds_t(pfds.size()), 100);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            close_all();
            break;
        }

        if (pfds[0].revents & POLLIN) {
            char drain[64];
            for (;;) {
                const ssize_t r =
                    ::read(w.wakeRead, drain, sizeof drain);
                if (r > 0)
                    continue;
                if (r < 0 && errno == EINTR)
                    continue;
                break;
            }
        }
        {
            std::lock_guard<std::mutex> lock(w.mtx);
            for (int fd : w.inbox) {
                Conn c;
                c.fd = fd;
                c.channel = std::make_unique<KvChannel>(service_);
                conns.push_back(std::move(c));
            }
            w.inbox.clear();
        }

        if (stopping_.load(std::memory_order_seq_cst)) {
            // Graceful: stop reading, flush what is owed, close.
            for (Conn &c : conns)
                c.closing = true;
        }

        // pfds[i + 1] pairs conns[i]; iterate backwards so erase()
        // keeps earlier pairings intact.
        for (std::size_t i = conns.size(); i-- > 0;) {
            const short revents =
                i + 1 < pfds.size() ? pfds[i + 1].revents : 0;
            Conn &c = conns[i];
            const bool keep =
                serviceConn(c, stopping ? (revents | POLLOUT)
                                        : revents);
            if (!keep || (stopping && c.out.empty())) {
                closeFd(c.fd);
                conns.erase(conns.begin() + long(i));
            }
        }
    }
    close_all();
}

} // namespace adcache::net
