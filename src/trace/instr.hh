/**
 * @file
 * The instruction record consumed by the timing model.
 *
 * The original paper drives MASE/SimpleScalar with Alpha binaries; our
 * substitute substrate is trace-driven: synthetic workload generators
 * (src/workloads) emit streams of TraceInstr records carrying exactly
 * the information the out-of-order timing model needs — operation
 * class, register dependences, memory address, and branch outcome.
 */

#ifndef ADCACHE_TRACE_INSTR_HH
#define ADCACHE_TRACE_INSTR_HH

#include <cstdint>
#include <string>

#include "util/types.hh"

namespace adcache
{

/** Operation classes, mirroring Table 1's functional-unit mix. */
enum class InstrClass : std::uint8_t
{
    IntAlu,   //!< 1-cycle integer op
    IntMult,  //!< 8-cycle integer multiply/divide
    FpAdd,    //!< 4-cycle FP add/compare
    FpDiv,    //!< 16-cycle FP multiply/divide
    Load,     //!< memory read through the data cache
    Store,    //!< memory write through the store buffer
    Branch,   //!< conditional branch (predicted, may flush)
    NumClasses
};

/** Printable name of an instruction class. */
const char *instrClassName(InstrClass cls);

/** Number of architectural registers in the trace ISA. */
constexpr unsigned numArchRegs = 64;

/** Register id 0 means "no register" and is always ready. */
constexpr std::uint8_t noReg = 0;

/**
 * One dynamic instruction. 32 bytes, fixed layout, suitable for
 * direct binary serialisation (see trace/trace_io.hh).
 */
struct TraceInstr
{
    Addr pc = 0;           //!< instruction address (feeds the I-cache)
    Addr memAddr = 0;      //!< effective address for Load/Store
    Addr target = 0;       //!< branch target for Branch
    InstrClass cls = InstrClass::IntAlu;
    std::uint8_t src1 = noReg;  //!< first source register (0 = none)
    std::uint8_t src2 = noReg;  //!< second source register (0 = none)
    std::uint8_t dst = noReg;   //!< destination register (0 = none)
    std::uint8_t memSize = 0;   //!< access size in bytes for Load/Store
    bool taken = false;         //!< branch outcome for Branch

    bool isMem() const
    {
        return cls == InstrClass::Load || cls == InstrClass::Store;
    }
    bool isLoad() const { return cls == InstrClass::Load; }
    bool isStore() const { return cls == InstrClass::Store; }
    bool isBranch() const { return cls == InstrClass::Branch; }
};

} // namespace adcache

#endif // ADCACHE_TRACE_INSTR_HH
