/**
 * @file
 * Binary trace file format: fixed 32-byte little-endian records behind
 * a small header, so captured synthetic workloads can be stored and
 * replayed (examples/trace_tool.cc).
 *
 * Layout:
 *   bytes 0..3   magic "ADCT"
 *   bytes 4..7   version (uint32)
 *   bytes 8..15  record count (uint64)
 *   then count * 32-byte records:
 *     pc(8) memAddr(8) target(8) cls(1) src1(1) src2(1) dst(1)
 *     memSize(1) taken(1) pad(2)
 */

#ifndef ADCACHE_TRACE_TRACE_IO_HH
#define ADCACHE_TRACE_TRACE_IO_HH

#include <cstdio>
#include <string>
#include <vector>

#include "trace/source.hh"

namespace adcache
{

/** Current trace file format version. */
constexpr std::uint32_t traceFormatVersion = 1;

/** Why opening or reading a trace file failed. */
enum class TraceStatus
{
    Ok,
    OpenFailed,      //!< file could not be opened
    TruncatedHeader, //!< shorter than the 16-byte header
    BadMagic,        //!< header magic is not "ADCT"
    BadVersion,      //!< format version not understood
    TruncatedRecord, //!< fewer records than the header promised
    CorruptRecord,   //!< a record decodes to an invalid instruction
};

/** Human-readable name of @p status. */
const char *traceStatusName(TraceStatus status);

/** Write @p instrs to @p path. @return false on I/O failure. */
bool writeTrace(const std::string &path,
                const std::vector<TraceInstr> &instrs);

/**
 * Read an entire trace file.
 * Calls fatal() on malformed files; returns empty only for an empty
 * (but valid) trace. Callers that must survive malformed input use
 * tryReadTrace().
 */
std::vector<TraceInstr> readTrace(const std::string &path);

/**
 * Recoverable whole-file read: never terminates the process. On
 * error, @p out holds the records decoded before the failure point.
 */
TraceStatus tryReadTrace(const std::string &path,
                         std::vector<TraceInstr> *out);

/** Streaming reader implementing TraceSource. */
class FileTraceSource : public TraceSource
{
  public:
    /** Open @p path; fatal() on missing/malformed file. */
    explicit FileTraceSource(const std::string &path);

    /**
     * Recoverable open: @p status receives the header verdict and the
     * source reports errors through status() instead of fatal().
     * A source that failed to open yields no records.
     */
    FileTraceSource(const std::string &path, TraceStatus &status);

    ~FileTraceSource() override;

    FileTraceSource(const FileTraceSource &) = delete;
    FileTraceSource &operator=(const FileTraceSource &) = delete;

    bool next(TraceInstr &out) override;
    void reset() override;

    std::uint64_t recordCount() const { return count_; }

    /** Ok, or the first error this source encountered. */
    TraceStatus status() const { return status_; }

  private:
    TraceStatus open(const std::string &path);
    [[noreturn]] void failStrict(const std::string &path) const;

    std::FILE *file_ = nullptr;
    std::uint64_t count_ = 0;
    std::uint64_t pos_ = 0;
    TraceStatus status_ = TraceStatus::Ok;
    bool strict_ = true; //!< fatal() on malformed input
};

} // namespace adcache

#endif // ADCACHE_TRACE_TRACE_IO_HH
