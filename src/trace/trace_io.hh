/**
 * @file
 * Binary trace file format: fixed 32-byte little-endian records behind
 * a small header, so captured synthetic workloads can be stored and
 * replayed (examples/trace_tool.cc).
 *
 * Layout:
 *   bytes 0..3   magic "ADCT"
 *   bytes 4..7   version (uint32)
 *   bytes 8..15  record count (uint64)
 *   then count * 32-byte records:
 *     pc(8) memAddr(8) target(8) cls(1) src1(1) src2(1) dst(1)
 *     memSize(1) taken(1) pad(2)
 */

#ifndef ADCACHE_TRACE_TRACE_IO_HH
#define ADCACHE_TRACE_TRACE_IO_HH

#include <cstdio>
#include <string>
#include <vector>

#include "trace/source.hh"

namespace adcache
{

/** Current trace file format version. */
constexpr std::uint32_t traceFormatVersion = 1;

/** Write @p instrs to @p path. @return false on I/O failure. */
bool writeTrace(const std::string &path,
                const std::vector<TraceInstr> &instrs);

/**
 * Read an entire trace file.
 * Calls fatal() on malformed files; returns empty only for an empty
 * (but valid) trace.
 */
std::vector<TraceInstr> readTrace(const std::string &path);

/** Streaming reader implementing TraceSource. */
class FileTraceSource : public TraceSource
{
  public:
    /** Open @p path; fatal() on missing/malformed file. */
    explicit FileTraceSource(const std::string &path);
    ~FileTraceSource() override;

    FileTraceSource(const FileTraceSource &) = delete;
    FileTraceSource &operator=(const FileTraceSource &) = delete;

    bool next(TraceInstr &out) override;
    void reset() override;

    std::uint64_t recordCount() const { return count_; }

  private:
    std::FILE *file_ = nullptr;
    std::uint64_t count_ = 0;
    std::uint64_t pos_ = 0;
};

} // namespace adcache

#endif // ADCACHE_TRACE_TRACE_IO_HH
