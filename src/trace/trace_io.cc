#include "trace/trace_io.hh"

#include <cstring>

#include "util/logging.hh"

namespace adcache
{

namespace
{

constexpr char traceMagic[4] = {'A', 'D', 'C', 'T'};
constexpr std::size_t recordSize = 32;
constexpr std::size_t headerSize = 16;

void
putU32(unsigned char *p, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<unsigned char>(v >> (8 * i));
}

void
putU64(unsigned char *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint32_t
getU32(const unsigned char *p)
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

std::uint64_t
getU64(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

void
encodeRecord(const TraceInstr &instr, unsigned char *p)
{
    putU64(p + 0, instr.pc);
    putU64(p + 8, instr.memAddr);
    putU64(p + 16, instr.target);
    p[24] = static_cast<unsigned char>(instr.cls);
    p[25] = instr.src1;
    p[26] = instr.src2;
    p[27] = instr.dst;
    p[28] = instr.memSize;
    p[29] = instr.taken ? 1 : 0;
    p[30] = 0;
    p[31] = 0;
}

bool
decodeRecord(const unsigned char *p, TraceInstr &instr)
{
    instr.pc = getU64(p + 0);
    instr.memAddr = getU64(p + 8);
    instr.target = getU64(p + 16);
    if (p[24] >= static_cast<unsigned char>(InstrClass::NumClasses))
        return false;
    instr.cls = static_cast<InstrClass>(p[24]);
    instr.src1 = p[25];
    instr.src2 = p[26];
    instr.dst = p[27];
    instr.memSize = p[28];
    instr.taken = p[29] != 0;
    return true;
}

} // namespace

bool
writeTrace(const std::string &path, const std::vector<TraceInstr> &instrs)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;

    unsigned char header[headerSize];
    std::memcpy(header, traceMagic, 4);
    putU32(header + 4, traceFormatVersion);
    putU64(header + 8, instrs.size());
    bool ok = std::fwrite(header, 1, headerSize, f) == headerSize;

    unsigned char rec[recordSize];
    for (const auto &instr : instrs) {
        if (!ok)
            break;
        encodeRecord(instr, rec);
        ok = std::fwrite(rec, 1, recordSize, f) == recordSize;
    }
    ok = (std::fclose(f) == 0) && ok;
    return ok;
}

const char *
traceStatusName(TraceStatus status)
{
    switch (status) {
      case TraceStatus::Ok:
        return "ok";
      case TraceStatus::OpenFailed:
        return "open failed";
      case TraceStatus::TruncatedHeader:
        return "truncated header";
      case TraceStatus::BadMagic:
        return "bad magic";
      case TraceStatus::BadVersion:
        return "unsupported version";
      case TraceStatus::TruncatedRecord:
        return "truncated record";
      case TraceStatus::CorruptRecord:
        return "corrupt record";
    }
    return "?";
}

std::vector<TraceInstr>
readTrace(const std::string &path)
{
    FileTraceSource src(path);
    std::vector<TraceInstr> out;
    out.reserve(src.recordCount());
    TraceInstr instr;
    while (src.next(instr))
        out.push_back(instr);
    return out;
}

TraceStatus
tryReadTrace(const std::string &path, std::vector<TraceInstr> *out)
{
    out->clear();
    TraceStatus status = TraceStatus::Ok;
    FileTraceSource src(path, status);
    if (status != TraceStatus::Ok)
        return status;
    out->reserve(src.recordCount());
    TraceInstr instr;
    while (src.next(instr))
        out->push_back(instr);
    return src.status();
}

TraceStatus
FileTraceSource::open(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_)
        return TraceStatus::OpenFailed;

    unsigned char header[headerSize];
    if (std::fread(header, 1, headerSize, file_) != headerSize)
        return TraceStatus::TruncatedHeader;
    if (std::memcmp(header, traceMagic, 4) != 0)
        return TraceStatus::BadMagic;
    if (getU32(header + 4) != traceFormatVersion)
        return TraceStatus::BadVersion;
    count_ = getU64(header + 8);
    return TraceStatus::Ok;
}

void
FileTraceSource::failStrict(const std::string &path) const
{
    switch (status_) {
      case TraceStatus::OpenFailed:
        fatal("cannot open trace file '%s'", path.c_str());
      case TraceStatus::BadVersion:
        fatal("trace file '%s': unsupported version", path.c_str());
      default:
        fatal("trace file '%s': %s", path.c_str(),
              traceStatusName(status_));
    }
}

FileTraceSource::FileTraceSource(const std::string &path)
{
    status_ = open(path);
    if (status_ != TraceStatus::Ok)
        failStrict(path);
}

FileTraceSource::FileTraceSource(const std::string &path,
                                 TraceStatus &status)
    : strict_(false)
{
    status_ = open(path);
    status = status_;
    // A failed open yields no records; next() returns false.
    if (status_ != TraceStatus::Ok)
        count_ = 0;
}

FileTraceSource::~FileTraceSource()
{
    if (file_)
        std::fclose(file_);
}

bool
FileTraceSource::next(TraceInstr &out)
{
    if (pos_ >= count_ || status_ != TraceStatus::Ok)
        return false;
    unsigned char rec[recordSize];
    if (std::fread(rec, 1, recordSize, file_) != recordSize) {
        status_ = TraceStatus::TruncatedRecord;
        if (strict_)
            fatal("trace file: truncated record %llu",
                  static_cast<unsigned long long>(pos_));
        return false;
    }
    if (!decodeRecord(rec, out)) {
        status_ = TraceStatus::CorruptRecord;
        if (strict_)
            fatal("trace file: corrupt record %llu",
                  static_cast<unsigned long long>(pos_));
        return false;
    }
    ++pos_;
    return true;
}

void
FileTraceSource::reset()
{
    if (!file_)
        return;
    std::fseek(file_, headerSize, SEEK_SET);
    pos_ = 0;
    // Header verdicts are permanent; a mid-stream record error is
    // re-derived on the next pass.
    if (status_ == TraceStatus::TruncatedRecord ||
        status_ == TraceStatus::CorruptRecord)
        status_ = TraceStatus::Ok;
}

} // namespace adcache
