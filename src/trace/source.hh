/**
 * @file
 * Abstract instruction stream plus small composable adapters.
 */

#ifndef ADCACHE_TRACE_SOURCE_HH
#define ADCACHE_TRACE_SOURCE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/instr.hh"

namespace adcache
{

/**
 * A stream of dynamic instructions. Implementations include the
 * synthetic workload generators and the binary trace file reader.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next instruction.
     * @param out filled on success.
     * @return false when the stream is exhausted.
     */
    virtual bool next(TraceInstr &out) = 0;

    /** Restart the stream from the beginning. */
    virtual void reset() = 0;
};

/** Replays a fixed vector of instructions. */
class VectorSource : public TraceSource
{
  public:
    explicit VectorSource(std::vector<TraceInstr> instrs);

    bool next(TraceInstr &out) override;
    void reset() override;

    std::size_t size() const { return instrs_.size(); }

  private:
    std::vector<TraceInstr> instrs_;
    std::size_t pos_ = 0;
};

/** Caps an underlying source at a maximum instruction count. */
class LimitSource : public TraceSource
{
  public:
    LimitSource(std::unique_ptr<TraceSource> inner, std::uint64_t limit);

    bool next(TraceInstr &out) override;
    void reset() override;

  private:
    std::unique_ptr<TraceSource> inner_;
    std::uint64_t limit_;
    std::uint64_t emitted_ = 0;
};

/** Drains a source into a vector (for tests and trace capture). */
std::vector<TraceInstr> drain(TraceSource &src,
                              std::uint64_t max = UINT64_MAX);

} // namespace adcache

#endif // ADCACHE_TRACE_SOURCE_HH
