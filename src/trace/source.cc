#include "trace/source.hh"

namespace adcache
{

const char *
instrClassName(InstrClass cls)
{
    switch (cls) {
      case InstrClass::IntAlu: return "IntAlu";
      case InstrClass::IntMult: return "IntMult";
      case InstrClass::FpAdd: return "FpAdd";
      case InstrClass::FpDiv: return "FpDiv";
      case InstrClass::Load: return "Load";
      case InstrClass::Store: return "Store";
      case InstrClass::Branch: return "Branch";
      default: return "?";
    }
}

VectorSource::VectorSource(std::vector<TraceInstr> instrs)
    : instrs_(std::move(instrs))
{
}

bool
VectorSource::next(TraceInstr &out)
{
    if (pos_ >= instrs_.size())
        return false;
    out = instrs_[pos_++];
    return true;
}

void
VectorSource::reset()
{
    pos_ = 0;
}

LimitSource::LimitSource(std::unique_ptr<TraceSource> inner,
                         std::uint64_t limit)
    : inner_(std::move(inner)), limit_(limit)
{
}

bool
LimitSource::next(TraceInstr &out)
{
    if (emitted_ >= limit_)
        return false;
    if (!inner_->next(out))
        return false;
    ++emitted_;
    return true;
}

void
LimitSource::reset()
{
    inner_->reset();
    emitted_ = 0;
}

std::vector<TraceInstr>
drain(TraceSource &src, std::uint64_t max)
{
    std::vector<TraceInstr> out;
    TraceInstr instr;
    while (out.size() < max && src.next(instr))
        out.push_back(instr);
    return out;
}

} // namespace adcache
