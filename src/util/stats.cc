#include "util/stats.hh"

#include <algorithm>

#include "util/logging.hh"

namespace adcache
{

void
RunningStat::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
}

double
RunningStat::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double
RunningStat::min() const
{
    adcache_assert(count_ > 0);
    return min_;
}

double
RunningStat::max() const
{
    adcache_assert(count_ > 0);
    return max_;
}

double
percentDelta(double base, double value)
{
    if (base == 0.0)
        return 0.0;
    return 100.0 * (value - base) / base;
}

double
percentImprovement(double base, double value)
{
    return -percentDelta(base, value);
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
mpki(std::uint64_t misses, std::uint64_t instructions)
{
    if (instructions == 0)
        return 0.0;
    return 1000.0 * static_cast<double>(misses) /
           static_cast<double>(instructions);
}

Histogram::Histogram(double lo, double hi, unsigned buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0)
{
    adcache_assert(hi > lo && buckets > 0);
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    if (x >= hi_) {
        ++overflow_;
        return;
    }
    const double frac = (x - lo_) / (hi_ - lo_);
    auto idx = static_cast<unsigned>(frac * counts_.size());
    if (idx >= counts_.size())
        idx = unsigned(counts_.size()) - 1;
    ++counts_[idx];
}

} // namespace adcache
