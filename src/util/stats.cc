#include "util/stats.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/logging.hh"

namespace adcache
{

unsigned
LogBuckets::bucketIndex(std::uint64_t v)
{
    if (v < kSubBuckets)
        return unsigned(v);
    // MSB position >= 3; each octave [2^t, 2^(t+1)) contributes 8
    // sub-buckets selected by the 3 bits below the MSB.
    const unsigned top = unsigned(std::bit_width(v)) - 1;
    const unsigned sub = unsigned(v >> (top - 3)) & 7u;
    return kSubBuckets + (top - 3) * kSubBuckets + sub;
}

std::uint64_t
LogBuckets::bucketUpperEdge(unsigned idx)
{
    if (idx < kSubBuckets)
        return idx;
    const unsigned oct = (idx - kSubBuckets) / kSubBuckets + 3;
    const unsigned sub = (idx - kSubBuckets) % kSubBuckets;
    return ((std::uint64_t(kSubBuckets + sub + 1)) << (oct - 3)) - 1;
}

void
LogBuckets::addValue(std::uint64_t v)
{
    const unsigned idx = bucketIndex(v);
    if (idx >= counts_.size())
        counts_.resize(idx + 1, 0);
    ++counts_[idx];
    ++total_;
}

void
LogBuckets::merge(const LogBuckets &other)
{
    if (other.counts_.size() > counts_.size())
        counts_.resize(other.counts_.size(), 0);
    for (std::size_t i = 0; i < other.counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    total_ += other.total_;
}

double
LogBuckets::percentile(double p) const
{
    adcache_assert(total_ > 0 && p > 0.0 && p <= 1.0);
    const auto rank = std::max<std::uint64_t>(
        1, std::uint64_t(std::ceil(p * double(total_))));
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        cum += counts_[i];
        if (cum >= rank)
            return double(bucketUpperEdge(unsigned(i)));
    }
    return double(bucketUpperEdge(unsigned(counts_.size()) - 1));
}

void
RunningStat::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    buckets_.add(x);
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
    buckets_.merge(other.buckets_);
}

double
RunningStat::percentile(double p) const
{
    adcache_assert(count_ > 0);
    return buckets_.percentile(p);
}

double
RunningStat::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double
RunningStat::min() const
{
    adcache_assert(count_ > 0);
    return min_;
}

double
RunningStat::max() const
{
    adcache_assert(count_ > 0);
    return max_;
}

double
percentDelta(double base, double value)
{
    if (base == 0.0)
        return 0.0;
    return 100.0 * (value - base) / base;
}

double
percentImprovement(double base, double value)
{
    return -percentDelta(base, value);
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
mpki(std::uint64_t misses, std::uint64_t instructions)
{
    if (instructions == 0)
        return 0.0;
    return 1000.0 * static_cast<double>(misses) /
           static_cast<double>(instructions);
}

Histogram::Histogram(double lo, double hi, unsigned buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0)
{
    adcache_assert(hi > lo && buckets > 0);
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    if (x >= hi_) {
        ++overflow_;
        return;
    }
    const double frac = (x - lo_) / (hi_ - lo_);
    auto idx = static_cast<unsigned>(frac * counts_.size());
    if (idx >= counts_.size())
        idx = unsigned(counts_.size()) - 1;
    ++counts_[idx];
}

} // namespace adcache
