/**
 * @file
 * Error/status reporting in the gem5 tradition: panic() for internal
 * invariant violations, fatal() for user errors, warn()/inform() for
 * status messages.
 */

#ifndef ADCACHE_UTIL_LOGGING_HH
#define ADCACHE_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace adcache
{

/**
 * Abort with a message. Call when an internal invariant is violated,
 * i.e. a simulator bug regardless of user input.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Exit with an error message. Call when the simulation cannot continue
 * due to a user-visible configuration or input error.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Warn about questionable but survivable conditions. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informative status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * panic() if @p cond is false. Cheap enough to leave on in release
 * builds; used for structural invariants, not per-access hot paths.
 */
#define adcache_assert(cond, ...)                                         \
    do {                                                                  \
        if (!(cond))                                                      \
            ::adcache::panic("assertion '%s' failed at %s:%d", #cond,     \
                             __FILE__, __LINE__);                         \
    } while (0)

} // namespace adcache

#endif // ADCACHE_UTIL_LOGGING_HH
