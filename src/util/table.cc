#include "util/table.hh"

#include <cstdio>
#include <sstream>

#include "util/logging.hh"

namespace adcache
{

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
    adcache_assert(!header_.empty());
}

void
TextTable::addRow(std::vector<std::string> row)
{
    adcache_assert(row.size() == header_.size());
    rows_.push_back(std::move(row));
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &row, bool left_first) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            const auto pad = width[c] - row[c].size();
            if (c == 0 && left_first) {
                out << row[c] << std::string(pad, ' ');
            } else {
                out << std::string(pad, ' ') << row[c];
            }
            out << (c + 1 == row.size() ? "\n" : "  ");
        }
    };
    emit(header_, true);
    std::size_t total = 0;
    for (auto w : width)
        total += w + 2;
    out << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    for (const auto &row : rows_)
        emit(row, true);
    return out.str();
}

void
TextTable::print() const
{
    std::fputs(render().c_str(), stdout);
}

} // namespace adcache
