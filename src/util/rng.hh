/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the simulator (Random replacement,
 * synthetic workload generation) flows through Rng so that every
 * experiment is exactly reproducible from its seed.
 */

#ifndef ADCACHE_UTIL_RNG_HH
#define ADCACHE_UTIL_RNG_HH

#include <cstdint>
#include <vector>

namespace adcache
{

/**
 * xoshiro256** generator seeded via splitmix64. Fast, high quality,
 * and fully deterministic across platforms (unlike std::mt19937
 * paired with std:: distributions, whose outputs are
 * implementation-defined).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; any value (including 0) is fine. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next64();

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with probability @p p of returning true. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Zipf-distributed rank in [0, n) with exponent @p s, via inverted
     * CDF over a precomputed-free rejection-ish scheme (exact inverse
     * is computed lazily by the caller-visible ZipfSampler; this is a
     * cheap approximation suitable only for tests).
     */
    std::uint64_t zipfApprox(std::uint64_t n, double s);

  private:
    std::uint64_t s_[4];
};

/**
 * Exact Zipf sampler over ranks [0, n) with exponent s, using a
 * precomputed cumulative table and binary search. O(log n) per draw.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::uint64_t n, double s);

    /** Draw one rank using @p rng. */
    std::uint64_t operator()(Rng &rng) const;

    std::uint64_t size() const { return n_; }

  private:
    std::uint64_t n_;
    // Cumulative probabilities, cdf_[i] = P(rank <= i).
    std::vector<double> cdf_;
};

/**
 * O(1)-memory Zipf sampler over ranks [0, n) for the large key
 * spaces (~10M) the YCSB-style driver draws from, where
 * ZipfSampler's cumulative table would cost 8 bytes per rank per
 * client. The classic Gray et al. inverted-CDF construction (the one
 * YCSB's ZipfianGenerator uses): a closed-form inverse built from
 * zeta(n, theta), itself approximated by an exact partial sum plus
 * the Euler-Maclaurin integral tail, so construction is O(1024)
 * regardless of n. Requires theta < 1 (clamped); rank 0 is the most
 * popular.
 */
class ZipfApproxSampler
{
  public:
    ZipfApproxSampler(std::uint64_t n, double s);

    /** Draw one rank using @p rng. O(1). */
    std::uint64_t operator()(Rng &rng) const;

    std::uint64_t size() const { return n_; }

  private:
    std::uint64_t n_;
    double theta_;
    double alpha_;
    double zetan_;
    double eta_;
};

} // namespace adcache

#endif // ADCACHE_UTIL_RNG_HH
