/**
 * @file
 * Small bit-manipulation helpers used by tag arrays and predictors.
 */

#ifndef ADCACHE_UTIL_BITS_HH
#define ADCACHE_UTIL_BITS_HH

#include <bit>
#include <cstdint>

namespace adcache
{

/** True iff @p v is a power of two (0 is not). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)). @pre v > 0. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    return unsigned(std::bit_width(v)) - 1;
}

/** A mask with the low @p n bits set (n may be 0..64). */
constexpr std::uint64_t
lowMask(unsigned n)
{
    return n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

/** Extract bits [lo, lo+n) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned lo, unsigned n)
{
    return (v >> lo) & lowMask(n);
}

/**
 * Fold @p v down to @p n bits by XOR-ing successive n-bit groups.
 * Used for the XOR variant of partial tags (Sec. 3.1 mentions "XOR of
 * bit groups" as an alternative to low-order bits).
 */
constexpr std::uint64_t
xorFold(std::uint64_t v, unsigned n)
{
    if (n == 0)
        return 0;
    std::uint64_t r = 0;
    while (v != 0) {
        r ^= v & lowMask(n);
        v >>= n;
    }
    return r;
}

} // namespace adcache

#endif // ADCACHE_UTIL_BITS_HH
