#include "util/rng.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace adcache
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &word : s_)
        word = splitmix64(x);
}

std::uint64_t
Rng::next64()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    adcache_assert(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = next64();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::uniform()
{
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::zipfApprox(std::uint64_t n, double s)
{
    adcache_assert(n > 0);
    // Inverse-power approximation: crude but monotone; fine for tests.
    const double u = uniform();
    const double r = std::pow(u, 1.0 / (1.0 - std::min(s, 0.99)));
    auto rank = static_cast<std::uint64_t>(r * static_cast<double>(n));
    return std::min(rank, n - 1);
}

ZipfSampler::ZipfSampler(std::uint64_t n, double s) : n_(n)
{
    adcache_assert(n > 0);
    cdf_.resize(n);
    double total = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) {
        total += 1.0 / std::pow(static_cast<double>(i + 1), s);
        cdf_[i] = total;
    }
    for (auto &c : cdf_)
        c /= total;
}

std::uint64_t
ZipfSampler::operator()(Rng &rng) const
{
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::uint64_t>(it - cdf_.begin());
}

namespace
{

/**
 * zeta(n, theta) = sum_{i=1..n} i^-theta, via an exact head of up to
 * 1024 terms plus the Euler-Maclaurin tail
 *   integral_k^n x^-theta dx + (k^-theta + n^-theta) / 2,
 * whose relative error at k = 1024 is far below the sampler's own
 * bucket granularity.
 */
double
zetaApprox(std::uint64_t n, double theta)
{
    const std::uint64_t k =
        std::min<std::uint64_t>(n, 1024);
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= k; ++i)
        sum += std::pow(double(i), -theta);
    if (k == n)
        return sum;
    const double a = double(k), b = double(n);
    sum += (std::pow(b, 1.0 - theta) - std::pow(a, 1.0 - theta)) /
           (1.0 - theta);
    sum += 0.5 * (std::pow(a, -theta) + std::pow(b, -theta));
    return sum;
}

} // namespace

ZipfApproxSampler::ZipfApproxSampler(std::uint64_t n, double s)
    : n_(n)
{
    adcache_assert(n > 0);
    // The closed-form inverse needs theta in (0, 1); clamp just
    // inside both ends (theta ~ 1 is the 1/x harmonic edge case).
    theta_ = std::min(std::max(s, 1e-6), 0.999);
    alpha_ = 1.0 / (1.0 - theta_);
    zetan_ = zetaApprox(n, theta_);
    const double zeta2 = zetaApprox(std::min<std::uint64_t>(n, 2),
                                    theta_);
    eta_ = (1.0 - std::pow(2.0 / double(n), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
}

std::uint64_t
ZipfApproxSampler::operator()(Rng &rng) const
{
    const double u = rng.uniform();
    const double uz = u * zetan_;
    if (uz < 1.0 || n_ == 1)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    const double r =
        double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_);
    auto rank = static_cast<std::uint64_t>(r);
    return std::min(rank, n_ - 1);
}

} // namespace adcache
