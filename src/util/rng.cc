#include "util/rng.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace adcache
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &word : s_)
        word = splitmix64(x);
}

std::uint64_t
Rng::next64()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    adcache_assert(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = next64();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::uniform()
{
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::zipfApprox(std::uint64_t n, double s)
{
    adcache_assert(n > 0);
    // Inverse-power approximation: crude but monotone; fine for tests.
    const double u = uniform();
    const double r = std::pow(u, 1.0 / (1.0 - std::min(s, 0.99)));
    auto rank = static_cast<std::uint64_t>(r * static_cast<double>(n));
    return std::min(rank, n - 1);
}

ZipfSampler::ZipfSampler(std::uint64_t n, double s) : n_(n)
{
    adcache_assert(n > 0);
    cdf_.resize(n);
    double total = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) {
        total += 1.0 / std::pow(static_cast<double>(i + 1), s);
        cdf_[i] = total;
    }
    for (auto &c : cdf_)
        c /= total;
}

std::uint64_t
ZipfSampler::operator()(Rng &rng) const
{
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::uint64_t>(it - cdf_.begin());
}

} // namespace adcache
