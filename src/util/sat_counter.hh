/**
 * @file
 * Saturating up/down counter, the workhorse of branch predictors and
 * the paper's 5-bit LFU frequency counters (Table 1).
 */

#ifndef ADCACHE_UTIL_SAT_COUNTER_HH
#define ADCACHE_UTIL_SAT_COUNTER_HH

#include <cstdint>

#include "util/logging.hh"

namespace adcache
{

/** An n-bit saturating counter (n <= 31). */
class SatCounter
{
  public:
    /** @param bits counter width; @param initial starting value. */
    explicit SatCounter(unsigned bits = 2, std::uint32_t initial = 0)
        : max_((1u << bits) - 1), value_(initial)
    {
        adcache_assert(bits >= 1 && bits <= 31);
        adcache_assert(initial <= max_);
    }

    /** Increment, saturating at the maximum. */
    void
    increment()
    {
        if (value_ < max_)
            ++value_;
    }

    /** Decrement, saturating at zero. */
    void
    decrement()
    {
        if (value_ > 0)
            --value_;
    }

    /** Halve the value (used for LFU aging). */
    void halve() { value_ >>= 1; }

    /** Reset to an explicit value. */
    void
    set(std::uint32_t v)
    {
        adcache_assert(v <= max_);
        value_ = v;
    }

    std::uint32_t value() const { return value_; }
    std::uint32_t max() const { return max_; }
    bool saturated() const { return value_ == max_; }

    /** True in the "taken"/upper half of the range. */
    bool high() const { return value_ > max_ / 2; }

  private:
    std::uint32_t max_;
    std::uint32_t value_;
};

} // namespace adcache

#endif // ADCACHE_UTIL_SAT_COUNTER_HH
