/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#ifndef ADCACHE_UTIL_TYPES_HH
#define ADCACHE_UTIL_TYPES_HH

#include <cstdint>

namespace adcache
{

/** A physical/virtual byte address. The paper assumes 40-bit physical. */
using Addr = std::uint64_t;

/** A CPU clock cycle count. */
using Cycle = std::uint64_t;

/** A retired-instruction count. */
using InstCount = std::uint64_t;

/** Width of the modelled physical address space, in bits (Sec. 3.1). */
constexpr unsigned physAddrBits = 40;

} // namespace adcache

#endif // ADCACHE_UTIL_TYPES_HH
