/**
 * @file
 * Named statistics registry: an insertion-ordered collection of
 * (name -> value) entries every simulated component registers its
 * counters into. The registry decouples stat *production* (each
 * component knows its own counters) from stat *consumption* (report
 * emitters enumerate entries by name), so adding a counter to a
 * component no longer requires touching the result-plumbing layer.
 *
 * Entry kinds:
 *   - counter: monotonically counted events (u64, emitted as integer)
 *   - value:   derived measurements (double)
 *   - text:    non-numeric annotations (labels, phase maps)
 *
 * Registering an existing name overwrites its value in place, so a
 * registry can be rebuilt from live components at sampling points.
 */

#ifndef ADCACHE_UTIL_STAT_REGISTRY_HH
#define ADCACHE_UTIL_STAT_REGISTRY_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace adcache
{

class Histogram;

/** One named statistic. */
struct StatEntry
{
    enum class Kind
    {
        Counter,
        Value,
        Text,
    };

    std::string name;
    Kind kind = Kind::Counter;
    std::uint64_t counter = 0;  //!< valid when kind == Counter
    double value = 0.0;         //!< valid when kind == Value
    std::string text;           //!< valid when kind == Text

    /** Numeric view: the counter or the value. @pre kind != Text. */
    double numeric() const;
};

/** Insertion-ordered named statistics. */
class StatRegistry
{
  public:
    /** Register (or overwrite) an event counter. */
    void counter(const std::string &name, std::uint64_t v);

    /** Register (or overwrite) a derived double-valued metric. */
    void value(const std::string &name, double v);

    /** Register (or overwrite) a textual annotation. */
    void text(const std::string &name, std::string v);

    /**
     * Flatten @p h into counters under @p name: "<name>.underflow",
     * "<name>.bucket00".."<name>.bucketNN", "<name>.overflow".
     */
    void histogram(const std::string &name, const Histogram &h);

    /** Append every entry of @p other under "<prefix><name>". */
    void merge(const StatRegistry &other,
               const std::string &prefix = "");

    /** Entries in registration order. */
    const std::vector<StatEntry> &entries() const { return entries_; }

    /** Lookup by exact name; nullptr if absent. */
    const StatEntry *find(const std::string &name) const;

    /** Numeric value of @p name; asserts the entry exists. */
    double numeric(const std::string &name) const;

    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

  private:
    StatEntry &slot(const std::string &name);

    std::vector<StatEntry> entries_;
    std::unordered_map<std::string, std::size_t> index_;
};

} // namespace adcache

#endif // ADCACHE_UTIL_STAT_REGISTRY_HH
