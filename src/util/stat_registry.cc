#include "util/stat_registry.hh"

#include <cstdio>

#include "util/logging.hh"
#include "util/stats.hh"

namespace adcache
{

double
StatEntry::numeric() const
{
    adcache_assert(kind != Kind::Text);
    return kind == Kind::Counter ? double(counter) : value;
}

StatEntry &
StatRegistry::slot(const std::string &name)
{
    auto it = index_.find(name);
    if (it != index_.end())
        return entries_[it->second];
    index_.emplace(name, entries_.size());
    entries_.emplace_back();
    entries_.back().name = name;
    return entries_.back();
}

void
StatRegistry::counter(const std::string &name, std::uint64_t v)
{
    StatEntry &e = slot(name);
    e.kind = StatEntry::Kind::Counter;
    e.counter = v;
}

void
StatRegistry::value(const std::string &name, double v)
{
    StatEntry &e = slot(name);
    e.kind = StatEntry::Kind::Value;
    e.value = v;
}

void
StatRegistry::text(const std::string &name, std::string v)
{
    StatEntry &e = slot(name);
    e.kind = StatEntry::Kind::Text;
    e.text = std::move(v);
}

void
StatRegistry::histogram(const std::string &name, const Histogram &h)
{
    counter(name + ".underflow", h.underflow());
    char buf[24];
    for (unsigned i = 0; i < h.buckets(); ++i) {
        std::snprintf(buf, sizeof(buf), ".bucket%02u", i);
        counter(name + buf, h.bucketCount(i));
    }
    counter(name + ".overflow", h.overflow());
}

void
StatRegistry::merge(const StatRegistry &other,
                    const std::string &prefix)
{
    for (const StatEntry &e : other.entries_) {
        StatEntry &mine = slot(prefix + e.name);
        const std::string name = mine.name;
        mine = e;
        mine.name = name;
    }
}

const StatEntry *
StatRegistry::find(const std::string &name) const
{
    auto it = index_.find(name);
    return it == index_.end() ? nullptr : &entries_[it->second];
}

double
StatRegistry::numeric(const std::string &name) const
{
    const StatEntry *e = find(name);
    adcache_assert(e != nullptr);
    return e->numeric();
}

} // namespace adcache
