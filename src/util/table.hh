/**
 * @file
 * Plain-text table formatting for bench/example output. Every bench
 * binary prints paper-style rows through this so the harness output is
 * uniform and diffable.
 */

#ifndef ADCACHE_UTIL_TABLE_HH
#define ADCACHE_UTIL_TABLE_HH

#include <string>
#include <vector>

namespace adcache
{

/** Column-aligned text table with a header row. */
class TextTable
{
  public:
    /** @param header column titles; defines the column count. */
    explicit TextTable(std::vector<std::string> header);

    /** Append a row; must match the column count. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format doubles with @p precision decimals. */
    static std::string num(double v, int precision = 3);

    /** Render with single-space-padded, right-aligned numeric look. */
    std::string render() const;

    /** Render to stdout. */
    void print() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace adcache

#endif // ADCACHE_UTIL_TABLE_HH
