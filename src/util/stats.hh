/**
 * @file
 * Lightweight statistics accumulators used by every simulated
 * component, plus the averaging helpers the paper's evaluation uses
 * (arithmetic means of linear cost metrics, percent deltas).
 */

#ifndef ADCACHE_UTIL_STATS_HH
#define ADCACHE_UTIL_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace adcache
{

/** Running mean / min / max / count over double samples. */
class RunningStat
{
  public:
    void add(double x);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const;
    /** Smallest sample; asserts that at least one sample was added. */
    double min() const;
    /** Largest sample; asserts that at least one sample was added. */
    double max() const;

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Percentage change from @p base to @p value: positive means @p value
 * is larger. Returns 0 for a zero base.
 */
double percentDelta(double base, double value);

/**
 * Percentage improvement of @p value over @p base for a cost metric
 * (CPI, MPKI): positive means @p value is lower/better.
 */
double percentImprovement(double base, double value);

/** Arithmetic mean of a vector (0 if empty). */
double mean(const std::vector<double> &xs);

/** Misses-per-kilo-instruction. */
double mpki(std::uint64_t misses, std::uint64_t instructions);

/** A fixed-width histogram over [lo, hi) with overflow buckets. */
class Histogram
{
  public:
    Histogram(double lo, double hi, unsigned buckets);

    void add(double x);

    std::uint64_t bucketCount(unsigned i) const { return counts_.at(i); }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    unsigned buckets() const { return unsigned(counts_.size()); }
    std::uint64_t total() const { return total_; }

  private:
    double lo_, hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

} // namespace adcache

#endif // ADCACHE_UTIL_STATS_HH
