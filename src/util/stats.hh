/**
 * @file
 * Lightweight statistics accumulators used by every simulated
 * component, plus the averaging helpers the paper's evaluation uses
 * (arithmetic means of linear cost metrics, percent deltas).
 */

#ifndef ADCACHE_UTIL_STATS_HH
#define ADCACHE_UTIL_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace adcache
{

/**
 * Mergeable log-spaced bucket counts over non-negative samples.
 *
 * Values 0..7 get exact buckets; above that each octave is split
 * into 8 sub-buckets, so any quantile estimate is within 12.5% of
 * the true sample. The bucket array is lazily grown, so an untouched
 * instance costs one empty vector. Used both for RunningStat
 * percentiles and for obs latency histograms.
 */
class LogBuckets
{
  public:
    /** Sub-buckets per octave (also the count of exact buckets). */
    static constexpr unsigned kSubBuckets = 8;

    /** Count one sample (negative values land in bucket 0). */
    void add(double x) { addValue(toValue(x)); }

    /** Count one integral sample. */
    void addValue(std::uint64_t v);

    /** Element-wise sum with @p other. */
    void merge(const LogBuckets &other);

    std::uint64_t total() const { return total_; }
    bool empty() const { return total_ == 0; }

    /**
     * Upper edge of the bucket holding the p-quantile sample, for
     * p in (0, 1]; asserts at least one sample was added.
     */
    double percentile(double p) const;

    /** Map a sample to its bucket index (exposed for tests). */
    static unsigned bucketIndex(std::uint64_t v);

    /** Largest value stored in bucket @p idx. */
    static std::uint64_t bucketUpperEdge(unsigned idx);

  private:
    static std::uint64_t
    toValue(double x)
    {
        return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x);
    }

    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/**
 * Running mean / min / max / count over double samples, with
 * log-bucket percentile estimates, mergeable across threads.
 */
class RunningStat
{
  public:
    void add(double x);

    /**
     * Fold @p other into this accumulator. min/max treat an empty
     * side as an identity (they never absorb the 0-valued fields of
     * a sample-free accumulator).
     */
    void merge(const RunningStat &other);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const;
    /** Smallest sample; asserts that at least one sample was added. */
    double min() const;
    /** Largest sample; asserts that at least one sample was added. */
    double max() const;

    /**
     * Log-bucket estimate of the p-quantile (p in (0, 1], e.g. 0.95)
     * — within 12.5% for non-negative samples; negative samples all
     * count toward the lowest bucket. Asserts count() > 0.
     */
    double percentile(double p) const;

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    LogBuckets buckets_;
};

/**
 * Percentage change from @p base to @p value: positive means @p value
 * is larger. Returns 0 for a zero base.
 */
double percentDelta(double base, double value);

/**
 * Percentage improvement of @p value over @p base for a cost metric
 * (CPI, MPKI): positive means @p value is lower/better.
 */
double percentImprovement(double base, double value);

/** Arithmetic mean of a vector (0 if empty). */
double mean(const std::vector<double> &xs);

/** Misses-per-kilo-instruction. */
double mpki(std::uint64_t misses, std::uint64_t instructions);

/** A fixed-width histogram over [lo, hi) with overflow buckets. */
class Histogram
{
  public:
    Histogram(double lo, double hi, unsigned buckets);

    void add(double x);

    std::uint64_t bucketCount(unsigned i) const { return counts_.at(i); }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    unsigned buckets() const { return unsigned(counts_.size()); }
    std::uint64_t total() const { return total_; }

  private:
    double lo_, hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

} // namespace adcache

#endif // ADCACHE_UTIL_STATS_HH
