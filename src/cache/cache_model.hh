/**
 * @file
 * The common interface every cache organisation implements —
 * conventional set-associative (cache/cache.hh), adaptive
 * (core/adaptive_cache.hh), and SBAR-like (core/sbar_cache.hh) — plus
 * shared geometry and statistics types.
 *
 * Cache models are purely functional hit/miss machines; access
 * latency and bus occupancy are composed on top by sim/system.
 */

#ifndef ADCACHE_CACHE_CACHE_MODEL_HH
#define ADCACHE_CACHE_CACHE_MODEL_HH

#include <cstdint>
#include <string>

#include "util/bits.hh"
#include "util/logging.hh"
#include "util/types.hh"

namespace adcache
{

class StatRegistry;

/** Address decomposition for a numSets x assoc x lineSize cache. */
struct CacheGeometry
{
    unsigned lineSize = 64;
    unsigned numSets = 1024;
    unsigned assoc = 8;

    /** Derive geometry from capacity; numSets = size/(line*assoc). */
    static CacheGeometry fromSize(std::uint64_t size_bytes,
                                  unsigned assoc, unsigned line_size);

    unsigned offsetBits() const { return floorLog2(lineSize); }
    unsigned indexBits() const { return floorLog2(numSets); }

    std::uint64_t
    sizeBytes() const
    {
        return std::uint64_t(lineSize) * numSets * assoc;
    }

    /** Block-aligned address. */
    Addr blockAddr(Addr a) const { return a & ~Addr(lineSize - 1); }

    unsigned
    setIndex(Addr a) const
    {
        return unsigned((a >> offsetBits()) & lowMask(indexBits()));
    }

    /** Full tag: the address above offset+index bits. */
    Addr tag(Addr a) const { return a >> (offsetBits() + indexBits()); }

    /** Reconstruct a block address from (set, full tag). */
    Addr
    reconstruct(unsigned set, Addr tag_value) const
    {
        return (tag_value << (offsetBits() + indexBits())) |
               (Addr(set) << offsetBits());
    }

    /** Width of a full tag given the physical address size. */
    unsigned
    tagBits() const
    {
        return physAddrBits - offsetBits() - indexBits();
    }

    void
    validate() const
    {
        adcache_assert(isPowerOfTwo(lineSize));
        adcache_assert(isPowerOfTwo(numSets));
        adcache_assert(assoc >= 1);
    }
};

/**
 * Precomputed address decomposition for one geometry. Cache hot paths
 * construct this once and reuse it per access, instead of re-deriving
 * the offset/index widths from the geometry on every reference.
 */
class AddrMap
{
  public:
    explicit AddrMap(const CacheGeometry &geom)
        : offBits_(geom.offsetBits()),
          tagShift_(geom.offsetBits() + geom.indexBits()),
          idxMask_(lowMask(geom.indexBits()))
    {
    }

    unsigned
    set(Addr a) const
    {
        return unsigned((a >> offBits_) & idxMask_);
    }

    Addr tag(Addr a) const { return a >> tagShift_; }

  private:
    unsigned offBits_;
    unsigned tagShift_;
    Addr idxMask_;
};

/** Event counters common to all cache organisations. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t readMisses = 0;
    std::uint64_t writeMisses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;

    double
    missRate() const
    {
        return accesses == 0
                   ? 0.0
                   : double(misses) / double(accesses);
    }

    /** Register every counter under "<prefix><name>". */
    void registerInto(StatRegistry &reg,
                      const std::string &prefix) const;
};

/** Outcome of one cache access, as seen by the level above. */
struct AccessResult
{
    bool hit = false;
    /** A dirty victim was evicted and must be written back below. */
    bool writeback = false;
    /** Block address of the dirty victim (valid iff writeback). */
    Addr writebackAddr = 0;
};

/**
 * Abstract cache organisation. access() performs the lookup, updates
 * replacement state, and on a miss performs the fill (allocate-on-
 * miss, write-back, write-allocate for all models).
 */
class CacheModel
{
  public:
    virtual ~CacheModel() = default;

    /** Perform one reference to @p addr. */
    virtual AccessResult access(Addr addr, bool is_write) = 0;

    /** Aggregate counters since construction. */
    virtual const CacheStats &stats() const = 0;

    /**
     * Register this organisation's statistics under @p prefix. The
     * default registers the common CacheStats counters; organisations
     * with extra observable state (shadow misses, selector flips)
     * extend it.
     */
    virtual void registerStats(StatRegistry &reg,
                               const std::string &prefix) const;

    /** Geometry of the real (data-holding) structure. */
    virtual const CacheGeometry &geometry() const = 0;

    /** Human-readable description for bench headers. */
    virtual std::string describe() const = 0;
};

} // namespace adcache

#endif // ADCACHE_CACHE_CACHE_MODEL_HH
