/**
 * @file
 * Conventional set-associative write-back, write-allocate cache with
 * a pluggable replacement policy. This is both the baseline in every
 * experiment and the L1 instruction/data cache substrate.
 */

#ifndef ADCACHE_CACHE_CACHE_HH
#define ADCACHE_CACHE_CACHE_HH

#include "cache/cache_model.hh"
#include "cache/policy_sets.hh"
#include "cache/replacement.hh"
#include "cache/tag_array.hh"
#include "util/rng.hh"

namespace adcache
{

/** Configuration of a conventional cache. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 512 * 1024;
    unsigned assoc = 8;
    unsigned lineSize = 64;
    PolicyType policy = PolicyType::LRU;
    std::uint64_t rngSeed = 1;  //!< only used by stochastic policies

    CacheGeometry
    geometry() const
    {
        return CacheGeometry::fromSize(sizeBytes, assoc, lineSize);
    }
};

/** A conventional set-associative cache. */
class Cache : public CacheModel
{
  public:
    explicit Cache(const CacheConfig &config);

    AccessResult access(Addr addr, bool is_write) override;
    const CacheStats &stats() const override { return stats_; }
    const CacheGeometry &geometry() const override { return geom_; }
    std::string describe() const override;

    /** True iff the block containing @p addr is resident. */
    bool contains(Addr addr) const;

    /** Invalidate the block containing @p addr if resident. */
    void invalidateBlock(Addr addr);

    /** The replacement metadata (exposed for tests). */
    PolicySet &policies() { return policies_; }

    PolicyType policyType() const { return config_.policy; }

  private:
    template <class Policy>
    AccessResult accessImpl(Policy &policy, Addr addr, bool is_write);

    CacheConfig config_;
    CacheGeometry geom_;
    AddrMap map_;
    Rng rng_;
    TagArray tags_;
    PolicySet policies_;
    CacheStats stats_;
};

} // namespace adcache

#endif // ADCACHE_CACHE_CACHE_HH
