#include "cache/cache.hh"

#include <sstream>

namespace adcache
{

CacheGeometry
CacheGeometry::fromSize(std::uint64_t size_bytes, unsigned assoc,
                        unsigned line_size)
{
    adcache_assert(assoc >= 1 && line_size >= 1);
    const std::uint64_t line_capacity =
        std::uint64_t(line_size) * assoc;
    adcache_assert(size_bytes % line_capacity == 0);
    CacheGeometry g;
    g.lineSize = line_size;
    g.assoc = assoc;
    g.numSets = unsigned(size_bytes / line_capacity);
    g.validate();
    return g;
}

Cache::Cache(const CacheConfig &config)
    : config_(config), geom_(config.geometry()), rng_(config.rngSeed),
      tags_(geom_.numSets, geom_.assoc)
{
    policies_.reserve(geom_.numSets);
    for (unsigned s = 0; s < geom_.numSets; ++s)
        policies_.push_back(
            makePolicy(config.policy, geom_.assoc, &rng_));
}

AccessResult
Cache::access(Addr addr, bool is_write)
{
    AccessResult result;
    ++stats_.accesses;

    const unsigned set = geom_.setIndex(addr);
    const Addr tag = geom_.tag(addr);
    auto &policy = *policies_[set];

    if (auto way = tags_.findWay(set, tag)) {
        ++stats_.hits;
        policy.onHit(*way);
        if (is_write)
            tags_.entry(set, *way).dirty = true;
        result.hit = true;
        return result;
    }

    ++stats_.misses;
    if (is_write)
        ++stats_.writeMisses;
    else
        ++stats_.readMisses;

    unsigned fill_way;
    if (auto invalid = tags_.findInvalidWay(set)) {
        fill_way = *invalid;
    } else {
        fill_way = policy.victim();
        const auto &victim = tags_.entry(set, fill_way);
        ++stats_.evictions;
        if (victim.dirty) {
            ++stats_.writebacks;
            result.writeback = true;
            result.writebackAddr =
                geom_.reconstruct(set, victim.tag);
        }
        policy.onInvalidate(fill_way);
    }

    tags_.fill(set, fill_way, tag);
    policy.onFill(fill_way);
    if (is_write)
        tags_.entry(set, fill_way).dirty = true;
    return result;
}

bool
Cache::contains(Addr addr) const
{
    return tags_.findWay(geom_.setIndex(addr), geom_.tag(addr))
        .has_value();
}

void
Cache::invalidateBlock(Addr addr)
{
    const unsigned set = geom_.setIndex(addr);
    if (auto way = tags_.findWay(set, geom_.tag(addr))) {
        tags_.invalidate(set, *way);
        policies_[set]->onInvalidate(*way);
    }
}

ReplacementPolicy &
Cache::policyOf(unsigned set)
{
    return *policies_.at(set);
}

std::string
Cache::describe() const
{
    std::ostringstream out;
    out << policyName(config_.policy) << " ("
        << (geom_.sizeBytes() / 1024) << "KB, " << geom_.assoc
        << "-way, " << geom_.lineSize << "B lines)";
    return out.str();
}

} // namespace adcache
