#include "cache/cache.hh"

#include <sstream>

namespace adcache
{

CacheGeometry
CacheGeometry::fromSize(std::uint64_t size_bytes, unsigned assoc,
                        unsigned line_size)
{
    adcache_assert(assoc >= 1 && line_size >= 1);
    const std::uint64_t line_capacity =
        std::uint64_t(line_size) * assoc;
    adcache_assert(size_bytes % line_capacity == 0);
    CacheGeometry g;
    g.lineSize = line_size;
    g.assoc = assoc;
    g.numSets = unsigned(size_bytes / line_capacity);
    g.validate();
    return g;
}

Cache::Cache(const CacheConfig &config)
    : config_(config), geom_(config.geometry()), map_(geom_),
      rng_(config.rngSeed), tags_(geom_.numSets, geom_.assoc),
      policies_(config.policy, geom_.numSets, geom_.assoc, &rng_)
{
}

template <class Policy>
AccessResult
Cache::accessImpl(Policy &policy, Addr addr, bool is_write)
{
    AccessResult result;
    ++stats_.accesses;

    const unsigned set = map_.set(addr);
    const Addr tag = map_.tag(addr);

    const unsigned way = tags_.lookup(set, tag);
    if (way != TagArray::kNoWay) {
        ++stats_.hits;
        policyOnHit(policy, set, way, tag);
        if (is_write)
            tags_.markDirty(set, way);
        result.hit = true;
        return result;
    }

    ++stats_.misses;
    if (is_write)
        ++stats_.writeMisses;
    else
        ++stats_.readMisses;

    unsigned fill_way = tags_.invalidWay(set);
    if (fill_way == TagArray::kNoWay) {
        fill_way = policyEvictFill(policy, set, tag);
        ++stats_.evictions;
        if (tags_.dirty(set, fill_way)) {
            ++stats_.writebacks;
            result.writeback = true;
            result.writebackAddr =
                geom_.reconstruct(set, tags_.tag(set, fill_way));
        }
    } else {
        policyOnFill(policy, set, fill_way, tag);
    }

    tags_.fill(set, fill_way, tag);
    if (is_write)
        tags_.markDirty(set, fill_way);
    return result;
}

AccessResult
Cache::access(Addr addr, bool is_write)
{
    return policies_.visit([&](auto &policy) {
        return accessImpl(policy, addr, is_write);
    });
}

bool
Cache::contains(Addr addr) const
{
    return tags_.lookup(map_.set(addr), map_.tag(addr)) !=
           TagArray::kNoWay;
}

void
Cache::invalidateBlock(Addr addr)
{
    const unsigned set = map_.set(addr);
    const unsigned way = tags_.lookup(set, map_.tag(addr));
    if (way != TagArray::kNoWay) {
        tags_.invalidate(set, way);
        policies_.onInvalidate(set, way);
    }
}

std::string
Cache::describe() const
{
    std::ostringstream out;
    out << policyName(config_.policy) << " ("
        << (geom_.sizeBytes() / 1024) << "KB, " << geom_.assoc
        << "-way, " << geom_.lineSize << "B lines)";
    return out.str();
}

} // namespace adcache
