#include "cache/tag_array.hh"

#include "util/logging.hh"

namespace adcache
{

TagArray::TagArray(unsigned num_sets, unsigned assoc, unsigned tag_bits)
    : numSets_(num_sets), assoc_(assoc), tagBits_(tag_bits),
      fullMask_(lowMask(assoc)), valid_(num_sets, 0),
      dirty_(num_sets, 0)
{
    adcache_assert(num_sets >= 1 && assoc >= 1 && assoc <= 64);

    // The packed probe wants every way of a set inside one (8-bit
    // lanes) or two (16-bit lanes) words, and a lane strictly wider
    // than the stored tag so the all-ones "empty" lane can never
    // match a probe. In packed mode the lanes are the only tag
    // store; tags_ stays empty.
    if (tag_bits >= 1 && tag_bits <= 15 && assoc <= 8) {
        laneBits_ = tag_bits <= 7 ? 8 : 16;
        emptyLane_ = lowMask(laneBits_);
        const std::size_t words = laneBits_ == 8 ? 1 : 2;
        lanes_.assign(std::size_t(num_sets) * words,
                      ~std::uint64_t{0});
    } else {
        tags_.assign(std::size_t(num_sets) * assoc, 0);
        // Full-width tags still get a packed probe when the set fits
        // in two fingerprint words: the 16-bit low slice of each tag
        // nominates candidate ways and only candidates touch the
        // (much larger) full tag row.
        if (assoc <= 8) {
            fpProbe_ = true;
            fp_.assign(std::size_t(num_sets) * 2, 0);
        }
    }
}

std::uint64_t
TagArray::validCount() const
{
    std::uint64_t n = 0;
    for (const std::uint64_t m : valid_)
        n += unsigned(std::popcount(m));
    return n;
}

} // namespace adcache
