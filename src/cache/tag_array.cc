#include "cache/tag_array.hh"

#include "util/logging.hh"

namespace adcache
{

TagArray::TagArray(unsigned num_sets, unsigned assoc)
    : numSets_(num_sets), assoc_(assoc),
      entries_(std::size_t(num_sets) * assoc)
{
    adcache_assert(num_sets >= 1 && assoc >= 1);
}

std::optional<unsigned>
TagArray::findWay(unsigned set, Addr tag) const
{
    for (unsigned w = 0; w < assoc_; ++w) {
        const auto &e = entries_[index(set, w)];
        if (e.valid && e.tag == tag)
            return w;
    }
    return std::nullopt;
}

std::optional<unsigned>
TagArray::findInvalidWay(unsigned set) const
{
    for (unsigned w = 0; w < assoc_; ++w)
        if (!entries_[index(set, w)].valid)
            return w;
    return std::nullopt;
}

bool
TagArray::setFull(unsigned set) const
{
    return !findInvalidWay(set).has_value();
}

TagEntry &
TagArray::entry(unsigned set, unsigned way)
{
    return entries_.at(index(set, way));
}

const TagEntry &
TagArray::entry(unsigned set, unsigned way) const
{
    return entries_.at(index(set, way));
}

void
TagArray::fill(unsigned set, unsigned way, Addr tag)
{
    auto &e = entries_.at(index(set, way));
    e.tag = tag;
    e.valid = true;
    e.dirty = false;
}

void
TagArray::invalidate(unsigned set, unsigned way)
{
    auto &e = entries_.at(index(set, way));
    e.valid = false;
    e.dirty = false;
    e.tag = 0;
}

std::uint64_t
TagArray::validCount() const
{
    std::uint64_t n = 0;
    for (const auto &e : entries_)
        n += e.valid ? 1 : 0;
    return n;
}

} // namespace adcache
