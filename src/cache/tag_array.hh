/**
 * @file
 * Struct-of-arrays tag store: a contiguous tag-word array plus
 * per-set valid/dirty bitmasks for every numSets x assoc structure.
 * Used by the real cache and (with folded partial tags) by the shadow
 * tag structures of the adaptive scheme.
 *
 * For narrow stored tags (the partial-tag shadow arrays of Sec. 3.1)
 * the array additionally maintains a packed lane image of each set —
 * 8-bit lanes for tag widths up to 7, 16-bit lanes up to 15 — so a
 * whole 8-way set is probed with one or two 64-bit XOR/mask
 * operations instead of a per-way loop. Full-width tag arrays with
 * assoc <= 8 use the same SWAR test on 16-bit fingerprint lanes to
 * nominate candidate ways, verifying candidates against the full tag
 * row only on a fingerprint match. Lookup results are identical to
 * the linear scan: the lowest matching valid way wins.
 */

#ifndef ADCACHE_CACHE_TAG_ARRAY_HH
#define ADCACHE_CACHE_TAG_ARRAY_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "util/bits.hh"
#include "util/types.hh"

namespace adcache
{

/**
 * Tags for a numSets x assoc structure. The array stores whatever tag
 * value the caller provides — full tags or partial (folded) tags —
 * and has no knowledge of address decomposition.
 *
 * Hot-path queries return a way index or kNoWay; no optionals.
 */
class TagArray
{
  public:
    /** Sentinel "no such way" result of lookup()/invalidWay(). */
    static constexpr unsigned kNoWay = ~0u;

    /**
     * @param num_sets number of sets (>= 1).
     * @param assoc    ways per set (1..64; bitmask representation).
     * @param tag_bits width of the stored tags when known to be
     *                 narrow (partial/folded tags); 0 means full
     *                 tags. Widths 1..15 with assoc <= 8 enable the
     *                 packed probe path.
     */
    TagArray(unsigned num_sets, unsigned assoc, unsigned tag_bits = 0);

    /** Way holding @p tag in @p set, or kNoWay. */
    unsigned
    lookup(unsigned set, Addr tag) const
    {
        if (laneBits_ == 8)
            return lookupPacked8(set, tag);
        if (laneBits_ == 16)
            return lookupPacked16(set, tag);
        if (fpProbe_)
            return lookupFp(set, tag);
        return lookupScan(set, tag);
    }

    /** Lowest invalid way in @p set, or kNoWay when the set is full. */
    unsigned
    invalidWay(unsigned set) const
    {
        const unsigned w = unsigned(std::countr_one(valid_[set]));
        return w < assoc_ ? w : kNoWay;
    }

    /** True iff every way in @p set is valid. */
    bool setFull(unsigned set) const { return valid_[set] == fullMask_; }

    /**
     * Stored tag of (set, way). Meaningful only while valid. In
     * packed mode the lane image is the sole tag store (an invalid
     * lane reads back as the all-ones filler, never a stored tag).
     */
    Addr
    tag(unsigned set, unsigned way) const
    {
        if (laneBits_ == 8)
            return (lanes_[set] >> (way * 8)) & 0xFF;
        if (laneBits_ == 16)
            return (lanes_[std::size_t(set) * 2 + way / 4] >>
                    ((way & 3) * 16)) &
                   0xFFFF;
        return tags_[index(set, way)];
    }

    bool
    valid(unsigned set, unsigned way) const
    {
        return (valid_[set] >> way) & 1;
    }

    bool
    dirty(unsigned set, unsigned way) const
    {
        return (dirty_[set] >> way) & 1;
    }

    /** Bitmask of valid ways in @p set (bit w = way w). */
    std::uint64_t validMask(unsigned set) const { return valid_[set]; }

    /** Mark (set, way) dirty. @pre the way is valid. */
    void
    markDirty(unsigned set, unsigned way)
    {
        dirty_[set] |= std::uint64_t{1} << way;
    }

    /** Install @p tag into (set, way), marking it valid and clean. */
    void
    fill(unsigned set, unsigned way, Addr tag)
    {
        valid_[set] |= std::uint64_t{1} << way;
        dirty_[set] &= ~(std::uint64_t{1} << way);
        if (laneBits_ != 0) {
            setLane(set, way, std::uint64_t(tag));
        } else {
            tags_[index(set, way)] = tag;
            if (fpProbe_)
                setFpLane(set, way, tag);
        }
    }

    /** Invalidate (set, way). */
    void
    invalidate(unsigned set, unsigned way)
    {
        valid_[set] &= ~(std::uint64_t{1} << way);
        dirty_[set] &= ~(std::uint64_t{1} << way);
        if (laneBits_ != 0)
            setLane(set, way, emptyLane_);
        else
            tags_[index(set, way)] = 0;
    }

    unsigned numSets() const { return numSets_; }
    unsigned assoc() const { return assoc_; }

    /** True when the packed SWAR probe path is active. */
    bool packedProbe() const { return laneBits_ != 0; }

    /** Count of valid entries across the whole array (popcounts). */
    std::uint64_t validCount() const;

  private:
    std::size_t
    index(unsigned set, unsigned way) const
    {
        return std::size_t(set) * assoc_ + way;
    }

    unsigned
    lookupScan(unsigned set, Addr tag) const
    {
        // Branchless: compare every way (invalid slots hold 0 and are
        // masked out), then pick the lowest match. An early-exit loop
        // mispredicts once per lookup at a random match position;
        // eight flag-setting compares cost less.
        const Addr *t = &tags_[std::size_t(set) * assoc_];
        std::uint64_t match = 0;
        for (unsigned w = 0; w < assoc_; ++w)
            match |= std::uint64_t(t[w] == tag) << w;
        match &= valid_[set];
        return match ? unsigned(std::countr_zero(match)) : kNoWay;
    }

    /*
     * SWAR zero-lane detection. For x = lanes ^ splat(probe), the
     * classic (x - kOnes) & ~x & kHigh expression can flag a nonzero
     * lane only when a borrow propagates into it from a genuinely
     * zero lane below, so the *lowest* flagged lane is always a true
     * match. Invalid (and absent, when assoc < lanes) lanes hold the
     * all-ones lane value, which no probe narrower than the lane can
     * equal, so they never produce a genuine zero.
     */
    unsigned
    lookupPacked8(unsigned set, Addr tag) const
    {
        if (tag >> tagBits_)
            return kNoWay;  // wider than any stored folded tag
        constexpr std::uint64_t ones = 0x0101010101010101ULL;
        constexpr std::uint64_t high = 0x8080808080808080ULL;
        const std::uint64_t x = lanes_[set] ^ (std::uint64_t(tag) * ones);
        const std::uint64_t m = (x - ones) & ~x & high;
        return m ? unsigned(std::countr_zero(m)) >> 3 : kNoWay;
    }

    unsigned
    lookupPacked16(unsigned set, Addr tag) const
    {
        if (tag >> tagBits_)
            return kNoWay;
        constexpr std::uint64_t ones = 0x0001000100010001ULL;
        constexpr std::uint64_t high = 0x8000800080008000ULL;
        const std::uint64_t probe = std::uint64_t(tag) * ones;
        const std::uint64_t *lane = &lanes_[std::size_t(set) * 2];
        std::uint64_t x = lane[0] ^ probe;
        std::uint64_t m = (x - ones) & ~x & high;
        if (m)
            return unsigned(std::countr_zero(m)) >> 4;
        x = lane[1] ^ probe;
        m = (x - ones) & ~x & high;
        if (m)
            return 4 + (unsigned(std::countr_zero(m)) >> 4);
        return kNoWay;
    }

    /*
     * Two-level probe for full-width tags (assoc <= 8): 16-bit
     * fingerprint lanes nominate candidate ways via the same SWAR
     * zero-lane test, then each candidate (ascending, so the lowest
     * true match wins) is verified against the stored full tag.
     * Borrow artifacts and fingerprint aliases are filtered by the
     * verification compare; invalid lanes are filtered by the valid
     * mask, which also keeps the t[w] read in bounds for the unused
     * lanes of sets narrower than 8 ways. On the common miss the
     * probe never touches the full tag row at all.
     */
    unsigned
    lookupFp(unsigned set, Addr tag) const
    {
        constexpr std::uint64_t ones = 0x0001000100010001ULL;
        constexpr std::uint64_t high = 0x8000800080008000ULL;
        const std::uint64_t probe = (std::uint64_t(tag) & 0xFFFF) * ones;
        const std::uint64_t *lane = &fp_[std::size_t(set) * 2];
        const Addr *t = &tags_[std::size_t(set) * assoc_];
        const std::uint64_t valid = valid_[set];
        std::uint64_t x = lane[0] ^ probe;
        std::uint64_t m = (x - ones) & ~x & high;
        while (m) {
            const unsigned w = unsigned(std::countr_zero(m)) >> 4;
            if (((valid >> w) & 1) && t[w] == tag)
                return w;
            m &= m - 1;
        }
        x = lane[1] ^ probe;
        m = (x - ones) & ~x & high;
        while (m) {
            const unsigned w = 4 + (unsigned(std::countr_zero(m)) >> 4);
            if (((valid >> w) & 1) && t[w] == tag)
                return w;
            m &= m - 1;
        }
        return kNoWay;
    }

    void
    setFpLane(unsigned set, unsigned way, Addr tag)
    {
        const unsigned shift = (way & 3) * 16;
        std::uint64_t &w64 = fp_[std::size_t(set) * 2 + way / 4];
        w64 = (w64 & ~(std::uint64_t{0xFFFF} << shift)) |
              ((std::uint64_t(tag) & 0xFFFF) << shift);
    }

    void
    setLane(unsigned set, unsigned way, std::uint64_t value)
    {
        if (laneBits_ == 8) {
            const unsigned shift = way * 8;
            std::uint64_t &w64 = lanes_[set];
            w64 = (w64 & ~(std::uint64_t{0xFF} << shift)) |
                  (value << shift);
        } else {
            const unsigned shift = (way & 3) * 16;
            std::uint64_t &w64 = lanes_[std::size_t(set) * 2 + way / 4];
            w64 = (w64 & ~(std::uint64_t{0xFFFF} << shift)) |
                  (value << shift);
        }
    }

    unsigned numSets_;
    unsigned assoc_;
    unsigned tagBits_;
    unsigned laneBits_ = 0;      //!< 0 (scan), 8, or 16
    bool fpProbe_ = false;       //!< fingerprint probe for full tags
    std::uint64_t emptyLane_ = 0;
    std::uint64_t fullMask_;
    std::vector<Addr> tags_;             // set-major; empty if packed
    std::vector<std::uint64_t> valid_;   // one mask per set
    std::vector<std::uint64_t> dirty_;   // one mask per set
    std::vector<std::uint64_t> lanes_;   // packed tag store (1-2 w/set)
    std::vector<std::uint64_t> fp_;      // fingerprint lanes (2 w/set)
};

} // namespace adcache

#endif // ADCACHE_CACHE_TAG_ARRAY_HH
