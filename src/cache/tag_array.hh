/**
 * @file
 * A plain tag array: per-way tag/valid/dirty for every set. Used by
 * the real cache and (with transformed partial tags) by the shadow
 * tag structures of the adaptive scheme.
 */

#ifndef ADCACHE_CACHE_TAG_ARRAY_HH
#define ADCACHE_CACHE_TAG_ARRAY_HH

#include <optional>
#include <vector>

#include "util/types.hh"

namespace adcache
{

/** State of one cache line's tag entry. */
struct TagEntry
{
    Addr tag = 0;
    bool valid = false;
    bool dirty = false;
};

/**
 * Tags for a numSets x assoc structure. The array stores whatever tag
 * value the caller provides — full tags or partial (folded) tags —
 * and has no knowledge of address decomposition.
 */
class TagArray
{
  public:
    TagArray(unsigned num_sets, unsigned assoc);

    /** Way holding @p tag in @p set, if any. */
    std::optional<unsigned> findWay(unsigned set, Addr tag) const;

    /** Any invalid way in @p set, lowest index first. */
    std::optional<unsigned> findInvalidWay(unsigned set) const;

    /** True iff every way in @p set is valid. */
    bool setFull(unsigned set) const;

    /** Direct entry access. */
    TagEntry &entry(unsigned set, unsigned way);
    const TagEntry &entry(unsigned set, unsigned way) const;

    /** Install @p tag into (set, way), marking it valid and clean. */
    void fill(unsigned set, unsigned way, Addr tag);

    /** Invalidate (set, way). */
    void invalidate(unsigned set, unsigned way);

    unsigned numSets() const { return numSets_; }
    unsigned assoc() const { return assoc_; }

    /** Count of valid entries across the whole array. */
    std::uint64_t validCount() const;

  private:
    unsigned numSets_;
    unsigned assoc_;
    std::vector<TagEntry> entries_;  // set-major

    std::size_t
    index(unsigned set, unsigned way) const
    {
        return std::size_t(set) * assoc_ + way;
    }
};

} // namespace adcache

#endif // ADCACHE_CACHE_TAG_ARRAY_HH
