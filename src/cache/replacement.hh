/**
 * @file
 * Replacement-policy framework: one policy instance manages the
 * metadata of one cache set. The adaptive cache (src/core) composes
 * any two (or more) of these, per Sec. 2 of the paper.
 */

#ifndef ADCACHE_CACHE_REPLACEMENT_HH
#define ADCACHE_CACHE_REPLACEMENT_HH

#include <memory>
#include <string>

#include "util/rng.hh"

namespace adcache
{

/** The component policies evaluated in the paper, plus extensions. */
enum class PolicyType
{
    LRU,      //!< least recently used
    LFU,      //!< least frequently used (5-bit saturating counters)
    FIFO,     //!< first-in first-out
    MRU,      //!< most recently used (bad alone, good for linear loops)
    Random,   //!< uniform random victim
    TreePLRU, //!< tree pseudo-LRU (extension baseline)
    SRRIP,    //!< static RRIP (extension baseline, 2-bit RRPV)
    CmsLfu,   //!< approximate LFU over a Count-Min sketch (O(1) memory)
};

/** Parse a policy name ("lru", "lfu", ...); fatal() on unknown names. */
PolicyType parsePolicyType(const std::string &name);

/** Printable policy name. */
const char *policyName(PolicyType type);

/**
 * Per-entry metadata cost of a policy in bits, for the storage model
 * of Sec. 3 (e.g. log2(assoc) recency bits for LRU, 5 for LFU).
 */
unsigned policyMetaBits(PolicyType type, unsigned assoc);

/**
 * Replacement metadata and victim selection for a single cache set.
 *
 * The owning structure reports block activity through onFill/onHit/
 * onInvalidate and asks for a victim way when the set is full. A
 * policy never sees addresses — only way indices — which is exactly
 * the information a hardware implementation holds.
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** A block was inserted into @p way. */
    virtual void onFill(unsigned way) = 0;

    /** The block in @p way was referenced and hit. */
    virtual void onHit(unsigned way) = 0;

    /** The block in @p way was invalidated/emptied. */
    virtual void onInvalidate(unsigned way) = 0;

    /**
     * Choose the way to evict. Only called when every way is valid;
     * empty ways are filled directly by the owner.
     */
    virtual unsigned victim() = 0;

    /**
     * Preview the victim without mutating internal state. Stateless
     * for every policy except Random, which returns the way its next
     * victim() call would evict.
     */
    virtual unsigned peekVictim() const = 0;

    /** Number of ways this instance manages. */
    virtual unsigned assoc() const = 0;
};

/**
 * Create one set's worth of policy state.
 *
 * @param type  which algorithm.
 * @param assoc set associativity.
 * @param rng   shared generator for stochastic policies (may be null
 *              for deterministic policies).
 */
std::unique_ptr<ReplacementPolicy>
makePolicy(PolicyType type, unsigned assoc, Rng *rng);

} // namespace adcache

#endif // ADCACHE_CACHE_REPLACEMENT_HH
