/**
 * @file
 * Concrete replacement policies. Each instance manages one set.
 */

#include "cache/replacement.hh"

#include <algorithm>
#include <vector>

#include "util/bits.hh"
#include "util/logging.hh"
#include "util/sat_counter.hh"

namespace adcache
{

namespace
{

/**
 * Shared base: keeps associativity and a monotonically increasing
 * event stamp used by stamp-ordered policies.
 */
class BasePolicy : public ReplacementPolicy
{
  public:
    explicit BasePolicy(unsigned assoc) : assoc_(assoc)
    {
        adcache_assert(assoc >= 1);
    }

    unsigned assoc() const override { return assoc_; }

  protected:
    unsigned assoc_;
    std::uint64_t clock_ = 0;
};

/** LRU / MRU via last-use stamps; victim is min (LRU) or max (MRU). */
class RecencyPolicy : public BasePolicy
{
  public:
    RecencyPolicy(unsigned assoc, bool evict_most_recent)
        : BasePolicy(assoc), evictMostRecent_(evict_most_recent),
          stamp_(assoc, 0)
    {
    }

    void onFill(unsigned way) override { stamp_.at(way) = ++clock_; }
    void onHit(unsigned way) override { stamp_.at(way) = ++clock_; }
    void onInvalidate(unsigned way) override { stamp_.at(way) = 0; }

    unsigned victim() override { return peekVictim(); }

    unsigned
    peekVictim() const override
    {
        unsigned best = 0;
        for (unsigned w = 1; w < assoc_; ++w) {
            const bool better = evictMostRecent_
                                    ? stamp_[w] > stamp_[best]
                                    : stamp_[w] < stamp_[best];
            if (better)
                best = w;
        }
        return best;
    }

  private:
    bool evictMostRecent_;
    std::vector<std::uint64_t> stamp_;
};

/** FIFO: victim is the oldest fill; hits do not refresh. */
class FifoPolicy : public BasePolicy
{
  public:
    explicit FifoPolicy(unsigned assoc)
        : BasePolicy(assoc), fillStamp_(assoc, 0)
    {
    }

    void onFill(unsigned way) override { fillStamp_.at(way) = ++clock_; }
    void onHit(unsigned) override {}
    void onInvalidate(unsigned way) override { fillStamp_.at(way) = 0; }

    unsigned victim() override { return peekVictim(); }

    unsigned
    peekVictim() const override
    {
        unsigned best = 0;
        for (unsigned w = 1; w < assoc_; ++w)
            if (fillStamp_[w] < fillStamp_[best])
                best = w;
        return best;
    }

  private:
    std::vector<std::uint64_t> fillStamp_;
};

/**
 * LFU with 5-bit saturating frequency counters (Table 1). A fill
 * resets the counter to 1; hits increment. Victim is the minimum
 * count, tie-broken by oldest fill so that a stream of once-used
 * blocks cycles through a victim way instead of pinning way 0.
 */
class LfuPolicy : public BasePolicy
{
  public:
    static constexpr unsigned counterBits = 5;

    explicit LfuPolicy(unsigned assoc)
        : BasePolicy(assoc), count_(assoc, SatCounter(counterBits, 0)),
          fillStamp_(assoc, 0)
    {
    }

    void
    onFill(unsigned way) override
    {
        count_.at(way).set(1);
        fillStamp_.at(way) = ++clock_;
    }

    void onHit(unsigned way) override { count_.at(way).increment(); }

    void
    onInvalidate(unsigned way) override
    {
        count_.at(way).set(0);
        fillStamp_.at(way) = 0;
    }

    unsigned victim() override { return peekVictim(); }

    unsigned
    peekVictim() const override
    {
        unsigned best = 0;
        for (unsigned w = 1; w < assoc_; ++w) {
            const auto cw = count_[w].value();
            const auto cb = count_[best].value();
            if (cw < cb ||
                (cw == cb && fillStamp_[w] < fillStamp_[best])) {
                best = w;
            }
        }
        return best;
    }

  private:
    std::vector<SatCounter> count_;
    std::vector<std::uint64_t> fillStamp_;
};

/**
 * Random replacement. The upcoming victim is drawn lazily and cached
 * so that peekVictim() agrees with the following victim() call.
 */
class RandomPolicy : public BasePolicy
{
  public:
    RandomPolicy(unsigned assoc, Rng *rng) : BasePolicy(assoc), rng_(rng)
    {
        adcache_assert(rng != nullptr);
    }

    void onFill(unsigned) override {}
    void onHit(unsigned) override {}
    void onInvalidate(unsigned) override {}

    unsigned
    victim() override
    {
        const unsigned v = peekVictim();
        pendingValid_ = false;
        return v;
    }

    unsigned
    peekVictim() const override
    {
        if (!pendingValid_) {
            pending_ = unsigned(rng_->below(assoc_));
            pendingValid_ = true;
        }
        return pending_;
    }

  private:
    Rng *rng_;
    mutable unsigned pending_ = 0;
    mutable bool pendingValid_ = false;
};

/** Tree pseudo-LRU over a power-of-two associativity. */
class TreePlruPolicy : public BasePolicy
{
  public:
    explicit TreePlruPolicy(unsigned assoc)
        : BasePolicy(assoc), bits_(assoc > 1 ? assoc - 1 : 1, false)
    {
        adcache_assert(isPowerOfTwo(assoc));
    }

    void onFill(unsigned way) override { touch(way); }
    void onHit(unsigned way) override { touch(way); }
    void onInvalidate(unsigned) override {}

    unsigned victim() override { return peekVictim(); }

    unsigned
    peekVictim() const override
    {
        if (assoc_ == 1)
            return 0;
        unsigned node = 0;
        unsigned lo = 0, span = assoc_;
        while (span > 1) {
            const bool right = bits_[node];
            span /= 2;
            if (right)
                lo += span;
            node = 2 * node + (right ? 2 : 1);
        }
        return lo;
    }

  private:
    void
    touch(unsigned way)
    {
        if (assoc_ == 1)
            return;
        unsigned node = 0;
        unsigned lo = 0, span = assoc_;
        while (span > 1) {
            span /= 2;
            const bool in_right = way >= lo + span;
            // Point away from the touched half.
            bits_[node] = !in_right;
            if (in_right)
                lo += span;
            node = 2 * node + (in_right ? 2 : 1);
        }
    }

    // Heap-indexed tree bits: true means "victim is in right half".
    mutable std::vector<bool> bits_;
};

/** Static RRIP with 2-bit re-reference prediction values. */
class SrripPolicy : public BasePolicy
{
  public:
    static constexpr unsigned maxRrpv = 3;

    explicit SrripPolicy(unsigned assoc)
        : BasePolicy(assoc), rrpv_(assoc, maxRrpv)
    {
    }

    void onFill(unsigned way) override { rrpv_.at(way) = maxRrpv - 1; }
    void onHit(unsigned way) override { rrpv_.at(way) = 0; }
    void onInvalidate(unsigned way) override { rrpv_.at(way) = maxRrpv; }

    unsigned
    victim() override
    {
        for (;;) {
            for (unsigned w = 0; w < assoc_; ++w)
                if (rrpv_[w] == maxRrpv)
                    return w;
            for (auto &r : rrpv_)
                ++r;
        }
    }

    unsigned
    peekVictim() const override
    {
        // Same search as victim(), but on a scratch copy (SRRIP's
        // aging mutates state; preview must not).
        auto scratch = rrpv_;
        for (;;) {
            for (unsigned w = 0; w < assoc_; ++w)
                if (scratch[w] == maxRrpv)
                    return w;
            for (auto &r : scratch)
                ++r;
        }
    }

  private:
    std::vector<unsigned> rrpv_;
};

} // namespace

std::unique_ptr<ReplacementPolicy>
makePolicy(PolicyType type, unsigned assoc, Rng *rng)
{
    switch (type) {
      case PolicyType::LRU:
        return std::make_unique<RecencyPolicy>(assoc, false);
      case PolicyType::MRU:
        return std::make_unique<RecencyPolicy>(assoc, true);
      case PolicyType::FIFO:
        return std::make_unique<FifoPolicy>(assoc);
      case PolicyType::LFU:
        return std::make_unique<LfuPolicy>(assoc);
      case PolicyType::Random:
        return std::make_unique<RandomPolicy>(assoc, rng);
      case PolicyType::TreePLRU:
        return std::make_unique<TreePlruPolicy>(assoc);
      case PolicyType::SRRIP:
        return std::make_unique<SrripPolicy>(assoc);
      case PolicyType::CmsLfu:
        // The sketch is shared across sets; there is no per-set
        // virtual form. Use PolicySet (cache/policy_sets.hh).
        panic("CmsLfu has no per-set virtual policy");
    }
    panic("unknown policy type %d", int(type));
}

} // namespace adcache
