/**
 * @file
 * Devirtualized replacement-policy state for a whole cache: one
 * concrete *Sets class per algorithm holds the metadata of every set
 * contiguously (no per-set heap objects), and PolicySet wraps them in
 * a variant so the caller pays one dispatch per access — visit() once,
 * then every onFill/onHit/victim call inside the access body is a
 * direct, inlinable call.
 *
 * Semantics are kept bit-identical to the per-set virtual policies in
 * cache/policies.cc (the configuration-boundary interface): same
 * stamp/counter evolution, same tie-breaks, same Rng draw order for
 * Random. tests/cache/policy_sets_test.cc locks the two in step, and
 * the differential oracle verifies the composed caches end to end.
 */

#ifndef ADCACHE_CACHE_POLICY_SETS_HH
#define ADCACHE_CACHE_POLICY_SETS_HH

#include <algorithm>
#include <cstdint>
#include <variant>
#include <vector>

#include "adapt/sketch.hh"
#include "cache/replacement.hh"
#include "util/bits.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace adcache
{

/**
 * Per-set event stamps packed into one 64-bit word of 8-bit lanes
 * (assoc <= 8), with an 8-bit per-set clock. Victim scans only ever
 * compare stamps *within* a set, and nonzero stamps of a set are
 * pairwise distinct, so when the clock would wrap past 255 the lanes
 * renormalize to their ranks — an order-preserving compression that
 * leaves every victim choice identical to unbounded 64-bit stamps
 * (zero lanes, the "never used / invalidated" marker, stay zero).
 *
 * The packing is what makes recency metadata L1-resident: 9 bytes
 * per set instead of 8 * 8 + 8.
 */
class StampLanes8
{
  public:
    StampLanes8(unsigned num_sets, unsigned assoc)
        : assoc_(assoc), lanes_(num_sets, 0), clock_(num_sets, 0)
    {
        adcache_assert(assoc >= 1 && assoc <= 8);
    }

    /** Stamp (set, way) with the set's next event number. */
    void
    bump(unsigned set, unsigned way)
    {
        unsigned c = clock_[set] + 1u;
        if (c > 0xFF)
            c = renormalize(set) + 1u;
        clock_[set] = std::uint8_t(c);
        setLane(set, way, c);
    }

    void clear(unsigned set, unsigned way) { setLane(set, way, 0); }

    std::uint8_t
    stamp(unsigned set, unsigned way) const
    {
        return std::uint8_t(lanes_[set] >> (way * 8));
    }

    /** Lowest way with the strictly smallest stamp. */
    unsigned minWay(unsigned set) const { return minOf(lanes_[set]); }

    /** Lowest way with the strictly largest stamp. */
    unsigned maxWay(unsigned set) const { return maxOf(lanes_[set]); }

    /**
     * Fused victim-select + restamp for the eviction path: pick the
     * min (PickMax false) or max lane and stamp it with the set's
     * next event number, loading and storing the lane word once.
     * Equivalent to minWay/maxWay followed by bump on the result.
     */
    template <bool PickMax>
    unsigned
    evictBump(unsigned set)
    {
        const std::uint64_t w64 = lanes_[set];
        const unsigned way = PickMax ? maxOf(w64) : minOf(w64);
        unsigned c = clock_[set] + 1u;
        if (c > 0xFF) {
            c = renormalize(set) + 1u;
            clock_[set] = std::uint8_t(c);
            setLane(set, way, c);
            return way;
        }
        clock_[set] = std::uint8_t(c);
        const unsigned shift = way * 8;
        lanes_[set] = (w64 & ~(std::uint64_t{0xFF} << shift)) |
                      (std::uint64_t(c) << shift);
        return way;
    }

  private:
    unsigned
    minOf(std::uint64_t w64) const
    {
        if (assoc_ == 8) {
            // Depth-3 cmov tournament over stamp<<3|way keys, fully
            // unrolled so every key lives in a register (a runtime-
            // bounded key array spills to the stack and loses). The
            // way in the low bits makes ties resolve to the lowest
            // way, exactly like the serial first-occurrence scan.
            const auto key = [w64](unsigned w) {
                return ((unsigned(w64 >> (w * 8)) & 0xFFu) << 3) | w;
            };
            const unsigned a = std::min(key(0), key(1));
            const unsigned b = std::min(key(2), key(3));
            const unsigned c = std::min(key(4), key(5));
            const unsigned d = std::min(key(6), key(7));
            return std::min(std::min(a, b), std::min(c, d)) & 7;
        }
        unsigned best = 0;
        std::uint8_t best_v = std::uint8_t(w64);
        for (unsigned w = 1; w < assoc_; ++w) {
            const std::uint8_t v = std::uint8_t(w64 >> (w * 8));
            if (v < best_v) {
                best_v = v;
                best = w;
            }
        }
        return best;
    }

    unsigned
    maxOf(std::uint64_t w64) const
    {
        if (assoc_ == 8) {
            // Max tournament; 7-way in the low bits so equal stamps
            // resolve to the lowest way on a max compare.
            const auto key = [w64](unsigned w) {
                return ((unsigned(w64 >> (w * 8)) & 0xFFu) << 3) |
                       (7 - w);
            };
            const unsigned a = std::max(key(0), key(1));
            const unsigned b = std::max(key(2), key(3));
            const unsigned c = std::max(key(4), key(5));
            const unsigned d = std::max(key(6), key(7));
            return 7 -
                   (std::max(std::max(a, b), std::max(c, d)) & 7);
        }
        unsigned best = 0;
        std::uint8_t best_v = std::uint8_t(w64);
        for (unsigned w = 1; w < assoc_; ++w) {
            const std::uint8_t v = std::uint8_t(w64 >> (w * 8));
            if (v > best_v) {
                best_v = v;
                best = w;
            }
        }
        return best;
    }

  private:
    /** Compress stamps to ranks 1..n; @return the new clock value. */
    unsigned
    renormalize(unsigned set)
    {
        const std::uint64_t w64 = lanes_[set];
        std::uint64_t out = 0;
        unsigned used = 0;
        for (unsigned w = 0; w < assoc_; ++w) {
            const std::uint8_t v = std::uint8_t(w64 >> (w * 8));
            if (v == 0)
                continue;
            unsigned rank = 1;
            for (unsigned o = 0; o < assoc_; ++o) {
                const std::uint8_t ov = std::uint8_t(w64 >> (o * 8));
                rank += unsigned(ov != 0 && ov < v);
            }
            out |= std::uint64_t(rank) << (w * 8);
            ++used;
        }
        lanes_[set] = out;
        return used;
    }

    void
    setLane(unsigned set, unsigned way, unsigned value)
    {
        const unsigned shift = way * 8;
        std::uint64_t &w64 = lanes_[set];
        w64 = (w64 & ~(std::uint64_t{0xFF} << shift)) |
              (std::uint64_t(value) << shift);
    }

    unsigned assoc_;
    std::vector<std::uint64_t> lanes_;
    std::vector<std::uint8_t> clock_;
};

/**
 * LRU / MRU via last-use stamps; victim is min (LRU) or max (MRU).
 * Packed 8-bit stamp lanes for assoc <= 8, wide 64-bit stamps above.
 */
template <bool EvictMostRecent>
class RecencySets
{
  public:
    RecencySets(unsigned num_sets, unsigned assoc, Rng *)
        : assoc_(assoc), packed_(assoc <= 8),
          small_(packed_ ? num_sets : 0, packed_ ? assoc : 1),
          stamp_(packed_ ? 0 : std::size_t(num_sets) * assoc, 0),
          clock_(packed_ ? 0 : num_sets, 0)
    {
    }

    void
    onFill(unsigned set, unsigned way)
    {
        if (packed_)
            small_.bump(set, way);
        else
            stamp_[index(set, way)] = ++clock_[set];
    }

    void
    onHit(unsigned set, unsigned way)
    {
        onFill(set, way);
    }

    void onInvalidate(unsigned set, unsigned way)
    {
        if (packed_)
            small_.clear(set, way);
        else
            stamp_[index(set, way)] = 0;
    }

    unsigned victim(unsigned set) { return peekVictim(set); }

    /** Fused victim + onFill on the chosen way (see PolicySet). */
    unsigned
    evictFill(unsigned set)
    {
        if (packed_)
            return small_.evictBump<EvictMostRecent>(set);
        const unsigned way = peekVictim(set);
        stamp_[index(set, way)] = ++clock_[set];
        return way;
    }

    unsigned
    peekVictim(unsigned set) const
    {
        if (packed_) {
            return EvictMostRecent ? small_.maxWay(set)
                                   : small_.minWay(set);
        }
        const std::uint64_t *s = &stamp_[std::size_t(set) * assoc_];
        unsigned best = 0;
        for (unsigned w = 1; w < assoc_; ++w) {
            const bool better =
                EvictMostRecent ? s[w] > s[best] : s[w] < s[best];
            if (better)
                best = w;
        }
        return best;
    }

  private:
    std::size_t
    index(unsigned set, unsigned way) const
    {
        return std::size_t(set) * assoc_ + way;
    }

    unsigned assoc_;
    bool packed_;
    StampLanes8 small_;
    std::vector<std::uint64_t> stamp_;
    std::vector<std::uint64_t> clock_;  // per-set event stamp
};

/** FIFO: victim is the oldest fill; hits do not refresh. */
class FifoSets
{
  public:
    FifoSets(unsigned num_sets, unsigned assoc, Rng *)
        : assoc_(assoc), packed_(assoc <= 8),
          small_(packed_ ? num_sets : 0, packed_ ? assoc : 1),
          fillStamp_(packed_ ? 0 : std::size_t(num_sets) * assoc, 0),
          clock_(packed_ ? 0 : num_sets, 0)
    {
    }

    void
    onFill(unsigned set, unsigned way)
    {
        if (packed_)
            small_.bump(set, way);
        else
            fillStamp_[index(set, way)] = ++clock_[set];
    }

    void onHit(unsigned, unsigned) {}

    void onInvalidate(unsigned set, unsigned way)
    {
        if (packed_)
            small_.clear(set, way);
        else
            fillStamp_[index(set, way)] = 0;
    }

    unsigned victim(unsigned set) { return peekVictim(set); }

    /** Fused victim + onFill on the chosen way (see PolicySet). */
    unsigned
    evictFill(unsigned set)
    {
        if (packed_)
            return small_.evictBump<false>(set);
        const unsigned way = peekVictim(set);
        fillStamp_[index(set, way)] = ++clock_[set];
        return way;
    }

    unsigned
    peekVictim(unsigned set) const
    {
        if (packed_)
            return small_.minWay(set);
        const std::uint64_t *s = &fillStamp_[std::size_t(set) * assoc_];
        unsigned best = 0;
        for (unsigned w = 1; w < assoc_; ++w)
            if (s[w] < s[best])
                best = w;
        return best;
    }

  private:
    std::size_t
    index(unsigned set, unsigned way) const
    {
        return std::size_t(set) * assoc_ + way;
    }

    unsigned assoc_;
    bool packed_;
    StampLanes8 small_;
    std::vector<std::uint64_t> fillStamp_;
    std::vector<std::uint64_t> clock_;
};

/**
 * LFU with 5-bit saturating frequency counters (Table 1). A fill
 * resets the counter to 1; hits increment. Victim is the minimum
 * count, tie-broken by oldest fill.
 */
class LfuSets
{
  public:
    static constexpr unsigned counterBits = 5;
    static constexpr std::uint8_t counterMax = (1u << counterBits) - 1;

    LfuSets(unsigned num_sets, unsigned assoc, Rng *)
        : assoc_(assoc), packed_(assoc <= 8),
          count_(std::size_t(num_sets) * assoc, 0),
          small_(packed_ ? num_sets : 0, packed_ ? assoc : 1),
          fillStamp_(packed_ ? 0 : std::size_t(num_sets) * assoc, 0),
          clock_(packed_ ? 0 : num_sets, 0)
    {
    }

    void
    onFill(unsigned set, unsigned way)
    {
        count_[index(set, way)] = 1;
        if (packed_)
            small_.bump(set, way);
        else
            fillStamp_[index(set, way)] = ++clock_[set];
    }

    void
    onHit(unsigned set, unsigned way)
    {
        std::uint8_t &c = count_[index(set, way)];
        if (c < counterMax)
            ++c;
    }

    void
    onInvalidate(unsigned set, unsigned way)
    {
        count_[index(set, way)] = 0;
        if (packed_)
            small_.clear(set, way);
        else
            fillStamp_[index(set, way)] = 0;
    }

    unsigned victim(unsigned set) { return peekVictim(set); }

    /** Fused victim + onFill on the chosen way (see PolicySet). */
    unsigned
    evictFill(unsigned set)
    {
        const unsigned way = victim(set);
        onFill(set, way);
        return way;
    }

    unsigned
    peekVictim(unsigned set) const
    {
        const std::uint8_t *c = &count_[std::size_t(set) * assoc_];
        unsigned best = 0;
        if (packed_) {
            // Branchless: (count << 8) | stamp orders exactly like
            // "count, tie-broken by older fill stamp", and a strict-<
            // min scan keeps the lowest way among equals.
            unsigned best_key =
                (unsigned(c[0]) << 8) | small_.stamp(set, 0);
            for (unsigned w = 1; w < assoc_; ++w) {
                const unsigned key =
                    (unsigned(c[w]) << 8) | small_.stamp(set, w);
                if (key < best_key) {
                    best_key = key;
                    best = w;
                }
            }
            return best;
        }
        const std::uint64_t *f = &fillStamp_[std::size_t(set) * assoc_];
        for (unsigned w = 1; w < assoc_; ++w) {
            if (c[w] < c[best] ||
                (c[w] == c[best] && f[w] < f[best])) {
                best = w;
            }
        }
        return best;
    }

  private:
    std::size_t
    index(unsigned set, unsigned way) const
    {
        return std::size_t(set) * assoc_ + way;
    }

    unsigned assoc_;
    bool packed_;
    std::vector<std::uint8_t> count_;
    StampLanes8 small_;
    std::vector<std::uint64_t> fillStamp_;
    std::vector<std::uint64_t> clock_;
};

/**
 * Random replacement. The upcoming victim is drawn lazily per set and
 * cached so peekVictim() agrees with the following victim() call, and
 * the shared-Rng draw order matches the virtual policy exactly.
 */
class RandomSets
{
  public:
    RandomSets(unsigned num_sets, unsigned assoc, Rng *rng)
        : assoc_(assoc), rng_(rng), pending_(num_sets, 0),
          pendingValid_(num_sets, 0)
    {
        adcache_assert(rng != nullptr);
    }

    void onFill(unsigned, unsigned) {}
    void onHit(unsigned, unsigned) {}
    void onInvalidate(unsigned, unsigned) {}

    unsigned
    victim(unsigned set)
    {
        const unsigned v = peekVictim(set);
        pendingValid_[set] = 0;
        return v;
    }

    /** Fused victim + onFill on the chosen way (see PolicySet). */
    unsigned evictFill(unsigned set) { return victim(set); }

    unsigned
    peekVictim(unsigned set) const
    {
        if (!pendingValid_[set]) {
            pending_[set] = std::uint8_t(rng_->below(assoc_));
            pendingValid_[set] = 1;
        }
        return pending_[set];
    }

  private:
    unsigned assoc_;
    Rng *rng_;
    mutable std::vector<std::uint8_t> pending_;
    mutable std::vector<std::uint8_t> pendingValid_;
};

/**
 * Tree pseudo-LRU over a power-of-two associativity; each set's
 * heap-indexed tree bits live in one 64-bit word (bit k = node k,
 * set means "victim is in right half").
 */
class TreePlruSets
{
  public:
    TreePlruSets(unsigned num_sets, unsigned assoc, Rng *)
        : assoc_(assoc), bits_(num_sets, 0)
    {
        adcache_assert(isPowerOfTwo(assoc) && assoc <= 64);
    }

    void onFill(unsigned set, unsigned way) { touch(set, way); }
    void onHit(unsigned set, unsigned way) { touch(set, way); }
    void onInvalidate(unsigned, unsigned) {}

    unsigned victim(unsigned set) { return peekVictim(set); }

    /** Fused victim + onFill on the chosen way (see PolicySet). */
    unsigned
    evictFill(unsigned set)
    {
        const unsigned way = victim(set);
        touch(set, way);
        return way;
    }

    unsigned
    peekVictim(unsigned set) const
    {
        if (assoc_ == 1)
            return 0;
        const std::uint64_t b = bits_[set];
        unsigned node = 0;
        unsigned lo = 0, span = assoc_;
        while (span > 1) {
            const bool right = (b >> node) & 1;
            span /= 2;
            if (right)
                lo += span;
            node = 2 * node + (right ? 2 : 1);
        }
        return lo;
    }

  private:
    void
    touch(unsigned set, unsigned way)
    {
        if (assoc_ == 1)
            return;
        std::uint64_t b = bits_[set];
        unsigned node = 0;
        unsigned lo = 0, span = assoc_;
        while (span > 1) {
            span /= 2;
            const bool in_right = way >= lo + span;
            // Point away from the touched half.
            if (in_right) {
                b &= ~(std::uint64_t{1} << node);
                lo += span;
            } else {
                b |= std::uint64_t{1} << node;
            }
            node = 2 * node + (in_right ? 2 : 1);
        }
        bits_[set] = b;
    }

    unsigned assoc_;
    std::vector<std::uint64_t> bits_;
};

/** Static RRIP with 2-bit re-reference prediction values. */
class SrripSets
{
  public:
    static constexpr std::uint8_t maxRrpv = 3;

    SrripSets(unsigned num_sets, unsigned assoc, Rng *)
        : assoc_(assoc),
          rrpv_(std::size_t(num_sets) * assoc, maxRrpv)
    {
        adcache_assert(assoc <= 64);
    }

    void
    onFill(unsigned set, unsigned way)
    {
        rrpv_[index(set, way)] = maxRrpv - 1;
    }

    void onHit(unsigned set, unsigned way)
    {
        rrpv_[index(set, way)] = 0;
    }

    void
    onInvalidate(unsigned set, unsigned way)
    {
        rrpv_[index(set, way)] = maxRrpv;
    }

    unsigned
    victim(unsigned set)
    {
        std::uint8_t *r = &rrpv_[std::size_t(set) * assoc_];
        for (;;) {
            for (unsigned w = 0; w < assoc_; ++w)
                if (r[w] == maxRrpv)
                    return w;
            for (unsigned w = 0; w < assoc_; ++w)
                ++r[w];
        }
    }

    /** Fused victim + onFill on the chosen way (see PolicySet). */
    unsigned
    evictFill(unsigned set)
    {
        const unsigned way = victim(set);
        onFill(set, way);
        return way;
    }

    unsigned
    peekVictim(unsigned set) const
    {
        // Same search as victim(), but on a scratch copy (SRRIP's
        // aging mutates state; preview must not).
        const std::uint8_t *r = &rrpv_[std::size_t(set) * assoc_];
        std::uint8_t scratch[64];
        for (unsigned w = 0; w < assoc_; ++w)
            scratch[w] = r[w];
        for (;;) {
            for (unsigned w = 0; w < assoc_; ++w)
                if (scratch[w] == maxRrpv)
                    return w;
            for (unsigned w = 0; w < assoc_; ++w)
                ++scratch[w];
        }
    }

  private:
    std::size_t
    index(unsigned set, unsigned way) const
    {
        return std::size_t(set) * assoc_ + way;
    }

    unsigned assoc_;
    std::vector<std::uint8_t> rrpv_;
};

/**
 * Approximate LFU over a shared Count-Min sketch (ROADMAP item 2).
 * Unlike LfuSets' per-way 5-bit counters, the frequency state is one
 * per-cache sketch: O(1) memory in the number of entries, with
 * periodic decay_half aging so popularity estimates track the recent
 * phase. Victim is the way whose stored key has the smallest
 * estimate, tie-broken by oldest fill, then lowest way.
 *
 * This policy is *key-aware*: it must see the (folded) tag of every
 * reference, so owners call the *Tagged hooks via the policyOn*
 * dispatch helpers below; the address-free hooks panic. Sketch keys
 * compose the set index into the tag (adapt::sketchEntryKey) so
 * same-tag blocks in different sets count separately.
 */
class CmsLfuSets
{
  public:
    CmsLfuSets(unsigned num_sets, unsigned assoc, Rng *)
        : assoc_(assoc),
          setBits_(num_sets <= 1 ? 0 : floorLog2(num_sets)),
          sketch_(adapt::SketchParams::forGeometry(num_sets, assoc)),
          key_(std::size_t(num_sets) * assoc, 0),
          fillStamp_(std::size_t(num_sets) * assoc, 0),
          clock_(num_sets, 0)
    {
        adcache_assert(isPowerOfTwo(num_sets) || num_sets == 1);
    }

    void
    onFillTagged(unsigned set, unsigned way, std::uint64_t tag)
    {
        const std::uint64_t k =
            adapt::sketchEntryKey(tag, set, setBits_);
        key_[index(set, way)] = k;
        fillStamp_[index(set, way)] = ++clock_[set];
        sketch_.add(k);
    }

    void
    onHitTagged(unsigned set, unsigned way, std::uint64_t tag)
    {
        (void)way;
        sketch_.add(adapt::sketchEntryKey(tag, set, setBits_));
    }

    /** Fused victim + fill: the victim scan runs strictly before the
     *  candidate's sketch add (the add could inflate a colliding
     *  resident key's estimate and change the choice). */
    unsigned
    evictFillTagged(unsigned set, std::uint64_t tag)
    {
        const unsigned way = peekVictim(set);
        onFillTagged(set, way, tag);
        return way;
    }

    void onFill(unsigned, unsigned)
    {
        panic("CmsLfu requires tagged calls (policyOnFill)");
    }
    void onHit(unsigned, unsigned)
    {
        panic("CmsLfu requires tagged calls (policyOnHit)");
    }
    unsigned evictFill(unsigned)
    {
        panic("CmsLfu requires tagged calls (policyEvictFill)");
    }

    void
    onInvalidate(unsigned set, unsigned way)
    {
        key_[index(set, way)] = 0;
        fillStamp_[index(set, way)] = 0;
    }

    unsigned victim(unsigned set) { return peekVictim(set); }

    unsigned
    peekVictim(unsigned set) const
    {
        const std::uint64_t *k = &key_[std::size_t(set) * assoc_];
        const std::uint64_t *f = &fillStamp_[std::size_t(set) * assoc_];
        unsigned best = 0;
        std::uint32_t best_est = sketch_.estimate(k[0]);
        for (unsigned w = 1; w < assoc_; ++w) {
            const std::uint32_t est = sketch_.estimate(k[w]);
            if (est < best_est ||
                (est == best_est && f[w] < f[best])) {
                best_est = est;
                best = w;
            }
        }
        return best;
    }

    const adapt::CountMinSketch &sketch() const { return sketch_; }

  private:
    std::size_t
    index(unsigned set, unsigned way) const
    {
        return std::size_t(set) * assoc_ + way;
    }

    unsigned assoc_;
    unsigned setBits_;
    adapt::CountMinSketch sketch_;
    std::vector<std::uint64_t> key_;       // stored sketch key per way
    std::vector<std::uint64_t> fillStamp_; // tie-break: oldest fill
    std::vector<std::uint64_t> clock_;
};

/*
 * Key-aware dispatch: policies that track reference frequency by key
 * (CmsLfuSets) implement the *Tagged hooks; address-free policies
 * take the way-only form. Owners that have the tag at hand (Cache,
 * ShadowCache, SbarCache) route every policy event through these so
 * a key-aware policy can slot into any host.
 */
template <class P>
inline void
policyOnFill(P &p, unsigned set, unsigned way, std::uint64_t tag)
{
    if constexpr (requires { p.onFillTagged(set, way, tag); })
        p.onFillTagged(set, way, tag);
    else
        p.onFill(set, way);
}

template <class P>
inline void
policyOnHit(P &p, unsigned set, unsigned way, std::uint64_t tag)
{
    if constexpr (requires { p.onHitTagged(set, way, tag); })
        p.onHitTagged(set, way, tag);
    else
        p.onHit(set, way);
}

template <class P>
inline unsigned
policyEvictFill(P &p, unsigned set, std::uint64_t tag)
{
    if constexpr (requires { p.evictFillTagged(set, tag); })
        return p.evictFillTagged(set, tag);
    else
        return p.evictFill(set);
}

/**
 * Variant over the concrete policy-set implementations. Hot paths
 * call visit() once per access and run a fully static body; the
 * plain member forwarders below are for cold/boundary code.
 */
class PolicySet
{
  public:
    using Variant =
        std::variant<RecencySets<false>, RecencySets<true>, FifoSets,
                     LfuSets, RandomSets, TreePlruSets, SrripSets,
                     CmsLfuSets>;

    PolicySet(PolicyType type, unsigned num_sets, unsigned assoc,
              Rng *rng)
        : type_(type), impl_(make(type, num_sets, assoc, rng))
    {
    }

    /*
     * Hand-rolled visit: a switch on the variant index compiles to a
     * direct (and, with a fixed policy, perfectly predicted) branch
     * whose per-alternative bodies inline into the caller, where
     * std::visit dispatches through a function-pointer table that
     * defeats that inlining. The variant is never valueless: every
     * alternative is nothrow-movable.
     */
    template <class F>
    decltype(auto)
    visit(F &&f)
    {
        static_assert(std::variant_size_v<Variant> == 8,
                      "update the visit() switches");
        switch (impl_.index()) {
          case 0: return f(*std::get_if<0>(&impl_));
          case 1: return f(*std::get_if<1>(&impl_));
          case 2: return f(*std::get_if<2>(&impl_));
          case 3: return f(*std::get_if<3>(&impl_));
          case 4: return f(*std::get_if<4>(&impl_));
          case 5: return f(*std::get_if<5>(&impl_));
          case 6: return f(*std::get_if<6>(&impl_));
          case 7: return f(*std::get_if<7>(&impl_));
        }
        panic("valueless policy variant");
    }

    template <class F>
    decltype(auto)
    visit(F &&f) const
    {
        switch (impl_.index()) {
          case 0: return f(*std::get_if<0>(&impl_));
          case 1: return f(*std::get_if<1>(&impl_));
          case 2: return f(*std::get_if<2>(&impl_));
          case 3: return f(*std::get_if<3>(&impl_));
          case 4: return f(*std::get_if<4>(&impl_));
          case 5: return f(*std::get_if<5>(&impl_));
          case 6: return f(*std::get_if<6>(&impl_));
          case 7: return f(*std::get_if<7>(&impl_));
        }
        panic("valueless policy variant");
    }

    void
    onFill(unsigned set, unsigned way)
    {
        visit([&](auto &p) { p.onFill(set, way); });
    }

    void
    onHit(unsigned set, unsigned way)
    {
        visit([&](auto &p) { p.onHit(set, way); });
    }

    void
    onInvalidate(unsigned set, unsigned way)
    {
        visit([&](auto &p) { p.onInvalidate(set, way); });
    }

    unsigned
    victim(unsigned set)
    {
        return visit([&](auto &p) { return p.victim(set); });
    }

    /**
     * Fused eviction: victim() followed by onFill() on the chosen
     * way, with no intermediate onInvalidate — every policy's onFill
     * fully overwrites the per-way state onInvalidate would clear,
     * and victim choices depend only on the relative order of the
     * surviving ways, so the result is identical to the three-call
     * sequence. Stamp-lane policies additionally fuse the victim
     * scan and the restamp into one load/store of the lane word.
     */
    unsigned
    evictFill(unsigned set)
    {
        return visit([&](auto &p) { return p.evictFill(set); });
    }

    unsigned
    peekVictim(unsigned set) const
    {
        return visit([&](const auto &p) { return p.peekVictim(set); });
    }

    PolicyType type() const { return type_; }

  private:
    static Variant
    make(PolicyType type, unsigned num_sets, unsigned assoc, Rng *rng)
    {
        switch (type) {
          case PolicyType::LRU:
            return RecencySets<false>(num_sets, assoc, rng);
          case PolicyType::MRU:
            return RecencySets<true>(num_sets, assoc, rng);
          case PolicyType::FIFO:
            return FifoSets(num_sets, assoc, rng);
          case PolicyType::LFU:
            return LfuSets(num_sets, assoc, rng);
          case PolicyType::Random:
            return RandomSets(num_sets, assoc, rng);
          case PolicyType::TreePLRU:
            return TreePlruSets(num_sets, assoc, rng);
          case PolicyType::SRRIP:
            return SrripSets(num_sets, assoc, rng);
          case PolicyType::CmsLfu:
            return CmsLfuSets(num_sets, assoc, rng);
        }
        panic("unknown policy type %d", int(type));
    }

    PolicyType type_;
    Variant impl_;
};

} // namespace adcache

#endif // ADCACHE_CACHE_POLICY_SETS_HH
