#include "cache/replacement.hh"

#include <algorithm>
#include <cctype>

#include "util/bits.hh"
#include "util/logging.hh"

namespace adcache
{

PolicyType
parsePolicyType(const std::string &name)
{
    std::string n;
    for (char c : name)
        n.push_back(char(std::tolower(static_cast<unsigned char>(c))));
    if (n == "lru")
        return PolicyType::LRU;
    if (n == "lfu")
        return PolicyType::LFU;
    if (n == "fifo")
        return PolicyType::FIFO;
    if (n == "mru")
        return PolicyType::MRU;
    if (n == "random" || n == "rand")
        return PolicyType::Random;
    if (n == "plru" || n == "treeplru")
        return PolicyType::TreePLRU;
    if (n == "srrip")
        return PolicyType::SRRIP;
    if (n == "cmslfu" || n == "cms-lfu" || n == "cms")
        return PolicyType::CmsLfu;
    fatal("unknown replacement policy '%s'", name.c_str());
}

const char *
policyName(PolicyType type)
{
    switch (type) {
      case PolicyType::LRU: return "LRU";
      case PolicyType::LFU: return "LFU";
      case PolicyType::FIFO: return "FIFO";
      case PolicyType::MRU: return "MRU";
      case PolicyType::Random: return "Random";
      case PolicyType::TreePLRU: return "TreePLRU";
      case PolicyType::SRRIP: return "SRRIP";
      case PolicyType::CmsLfu: return "CmsLfu";
    }
    return "?";
}

unsigned
policyMetaBits(PolicyType type, unsigned assoc)
{
    const unsigned recency_bits =
        assoc <= 1 ? 1 : floorLog2(assoc - 1) + 1;
    switch (type) {
      case PolicyType::LRU:
      case PolicyType::MRU:
      case PolicyType::FIFO:
        return recency_bits;  // full ordering kept as per-way stamps
      case PolicyType::LFU:
        return 5;  // 5-bit frequency counters (Table 1)
      case PolicyType::Random:
        return 0;
      case PolicyType::TreePLRU:
        return 1;  // amortised: assoc-1 tree bits per set
      case PolicyType::SRRIP:
        return 2;
      case PolicyType::CmsLfu:
        // The frequency state is a per-cache sketch (O(1), not per
        // entry); the per-entry cost is the fill stamp used for tie
        // breaking, same as a FIFO ordering.
        return assoc <= 1 ? 1 : floorLog2(assoc - 1) + 1;
    }
    return 0;
}

} // namespace adcache
