#include "cache/cache_model.hh"

#include "util/stat_registry.hh"

namespace adcache
{

void
CacheStats::registerInto(StatRegistry &reg,
                         const std::string &prefix) const
{
    reg.counter(prefix + "accesses", accesses);
    reg.counter(prefix + "hits", hits);
    reg.counter(prefix + "misses", misses);
    reg.counter(prefix + "read_misses", readMisses);
    reg.counter(prefix + "write_misses", writeMisses);
    reg.counter(prefix + "evictions", evictions);
    reg.counter(prefix + "writebacks", writebacks);
    reg.value(prefix + "miss_rate", missRate());
}

void
CacheModel::registerStats(StatRegistry &reg,
                          const std::string &prefix) const
{
    stats().registerInto(reg, prefix);
}

} // namespace adcache
