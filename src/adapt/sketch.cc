#include "adapt/sketch.hh"

#include "util/bits.hh"

namespace adcache::adapt
{

SketchParams
SketchParams::forGeometry(unsigned num_sets, unsigned assoc)
{
    adcache_assert(num_sets >= 1 && assoc >= 1);
    SketchParams p;
    std::uint64_t want = std::uint64_t(4) * num_sets * assoc;
    if (want < 64)
        want = 64;
    if (want > 4096)
        want = 4096;
    unsigned width = 64;
    while (width < want)
        width <<= 1;
    p.width = width;
    p.decayEvery = std::uint64_t(16) * width;
    return p;
}

CountMinSketch::CountMinSketch(const SketchParams &params)
    : params_(params)
{
    adcache_assert(params_.width >= 2 && isPowerOfTwo(params_.width));
    adcache_assert(params_.rows >= 1 && params_.rows <= 8);
    adcache_assert(params_.counterMax >= 1);
    adcache_assert(params_.decayEvery >= 1);
    cells_.assign(std::size_t(params_.rows) * params_.width, 0);
}

void
CountMinSketch::decayHalf()
{
    for (std::uint8_t &cell : cells_)
        cell = std::uint8_t(cell >> 1);
    ++decays_;
}

} // namespace adcache::adapt
