/**
 * @file
 * The Algorithm 1 three-case victim-imitation decision, factored out
 * of the host structures.
 *
 * On a full-domain miss the adaptive structure evicts what the
 * imitated (winning) component would evict:
 *
 *  1. VictimMatch — the winner's simulation also missed and displaced
 *     an entry; if that entry is resident here, evict the same entry.
 *  2. ShadowAbsent — otherwise evict any resident entry that is *not*
 *     in the winner's simulated contents. With full tags such an
 *     entry is guaranteed to exist whenever case 1 did not apply.
 *  3. Fallback — partial-tag aliasing (or a bounded candidate walk in
 *     the kv layer) defeated both searches; evict an arbitrary entry
 *     (Sec. 3.1). Views rotate the arbitrary choice so it cannot pin
 *     a single slot. A view may also report that no entry is
 *     evictable at all (every kv candidate pinned) — Reject.
 *
 * The decision is parameterized by a *view* of one selection domain's
 * resident entries, so a sim cache set (ways + TagArray + shadow) and
 * a kv bucket/shard (intrusive entry chains + shadow directory) run
 * the identical decision procedure. A view models:
 *
 *   using Handle = ...;            // way index, entry pointer, ...
 *   static constexpr Handle kNone; // "no such entry"
 *   Handle findDisplacedMatch(std::uint64_t displaced_tag);
 *   Handle findOutsideWinner();    // resident but not in winner
 *   Handle fallback();             // arbitrary evictable, or kNone
 *
 * Views fold tags and walk candidates however their layer requires;
 * this header owns only the case ordering.
 */

#ifndef ADCACHE_ADAPT_IMITATION_HH
#define ADCACHE_ADAPT_IMITATION_HH

#include <bit>
#include <cstdint>

namespace adcache::adapt
{

/** Which Algorithm 1 case selected the victim. */
enum class VictimCase : std::uint8_t {
    VictimMatch = 0,
    ShadowAbsent = 1,
    Fallback = 2,
    Reject = 3, ///< no evictable entry (kv: all candidates pinned)
};

/** A victim handle plus the case that produced it. */
template <class View>
struct VictimChoice {
    typename View::Handle handle;
    VictimCase kind;
};

/**
 * Run the three-case decision over @p view.
 * @param winner_displaced the winner's simulation displaced an entry
 *        on this reference.
 * @param displaced_tag    that entry's (folded) tag.
 */
template <class View>
VictimChoice<View>
imitateVictim(View &view, bool winner_displaced,
              std::uint64_t displaced_tag)
{
    if (winner_displaced) {
        const auto h = view.findDisplacedMatch(displaced_tag);
        if (h != View::kNone)
            return {h, VictimCase::VictimMatch};
    }
    const auto h = view.findOutsideWinner();
    if (h != View::kNone)
        return {h, VictimCase::ShadowAbsent};
    const auto f = view.fallback();
    return {f, f == View::kNone ? VictimCase::Reject
                                : VictimCase::Fallback};
}

/**
 * The sim-layer view: one TagArray set against one shadow cache,
 * with a per-set rotating fallback pointer. Both AdaptiveCache and
 * SbarCache leader sets instantiate this.
 */
template <class Tags, class Shadow>
class WaySetView
{
  public:
    using Handle = unsigned;
    static constexpr Handle kNone = ~0u;

    WaySetView(const Tags &tags, const Shadow &shadow, unsigned set,
               unsigned assoc, unsigned *fallback_ptr)
        : tags_(tags), shadow_(shadow), set_(set), assoc_(assoc),
          fallbackPtr_(fallback_ptr)
    {
    }

    Handle
    findDisplacedMatch(std::uint64_t displaced_tag) const
    {
        for (std::uint64_t m = tags_.validMask(set_); m != 0;
             m &= m - 1) {
            const unsigned w = unsigned(std::countr_zero(m));
            if (shadow_.foldTag(tags_.tag(set_, w)) == displaced_tag)
                return w;
        }
        return kNone;
    }

    Handle
    findOutsideWinner() const
    {
        for (std::uint64_t m = tags_.validMask(set_); m != 0;
             m &= m - 1) {
            const unsigned w = unsigned(std::countr_zero(m));
            if (!shadow_.containsTag(
                    set_, shadow_.foldTag(tags_.tag(set_, w))))
                return w;
        }
        return kNone;
    }

    Handle
    fallback() const
    {
        const unsigned w = *fallbackPtr_;
        *fallbackPtr_ = (w + 1) % assoc_;
        return w;
    }

  private:
    const Tags &tags_;
    const Shadow &shadow_;
    unsigned set_;
    unsigned assoc_;
    unsigned *fallbackPtr_;
};

} // namespace adcache::adapt

#endif // ADCACHE_ADAPT_IMITATION_HH
