/**
 * @file
 * Differentiating-miss history state of the adaptive selection engine
 * (Sec. 2.2), generalized over *selection domains*. A domain is
 * whatever unit of the host structure carries its own selection
 * state: a cache set (AdaptiveCache), a leader-set ordinal
 * (SbarCache), a kv bucket (EvictionScope::Bucket) or a whole kv
 * shard (EvictionScope::Shard). The engine itself never interprets
 * the domain index.
 *
 * The state of every domain lives in flat arrays — one heap object
 * per host structure instead of per domain, no virtual dispatch on
 * record/best, and the state of neighbouring domains shares cache
 * lines (the PR-4 hot-path layout, now the only representation).
 *
 * Two event semantics are provided:
 *  - window mode: a ring of the last `depth` miss bitmasks per domain
 *    (the hardware design; for two components this is exactly the
 *    paper's m-bit vector) with incrementally maintained counts;
 *  - exact mode: unbounded per-component counters, the form the 2x
 *    bound in the Appendix is proved for.
 * Ties in best() break toward the lowest component index (so
 * component A wins a fresh buffer).
 */

#ifndef ADCACHE_ADAPT_HISTORY_HH
#define ADCACHE_ADAPT_HISTORY_HH

#include <cstdint>
#include <vector>

#include "util/logging.hh"

namespace adcache::adapt
{

/** Miss histories of every selection domain of one host structure. */
class HistorySet
{
  public:
    /**
     * @param exact_counters exact mode (unbounded counters).
     * @param depth          window length m (window mode only).
     * @param num_domains    selection domains covered.
     * @param num_components component policies (1..32).
     */
    HistorySet(bool exact_counters, unsigned depth,
               unsigned num_domains, unsigned num_components)
        : exact_(exact_counters), depth_(depth),
          numComponents_(num_components)
    {
        adcache_assert(num_components >= 1 && num_components <= 32);
        adcache_assert(exact_counters ||
                       (depth >= 1 && depth <= 0xFFFF));
        const std::size_t cells =
            std::size_t(num_domains) * num_components;
        if (exact_counters) {
            exactCounts_.assign(cells, 0);
            return;
        }
        counts_.assign(cells, 0);
        if (num_components <= 8)
            ring8_.assign(std::size_t(num_domains) * depth, 0);
        else
            ring32_.assign(std::size_t(num_domains) * depth, 0);
        head_.assign(num_domains, 0);
        filled_.assign(num_domains, 0);
    }

    /**
     * Record one miss event in @p domain. @p miss_mask has bit k set
     * iff component k missed; callers pass proper non-empty subsets
     * (the differentiating-miss filter lives in Selector).
     */
    void
    record(unsigned domain, std::uint32_t miss_mask)
    {
        if (exact_) {
            std::uint64_t *counts =
                &exactCounts_[std::size_t(domain) * numComponents_];
            for (unsigned p = 0; p < numComponents_; ++p)
                if (miss_mask & (1u << p))
                    ++counts[p];
            return;
        }
        // Window mode: counts are bounded by depth (<= 0xFFFF) and
        // masks by the component count, so the whole per-domain state
        // packs into narrow arrays that stay L1-resident.
        std::uint16_t *counts =
            &counts_[std::size_t(domain) * numComponents_];
        const unsigned head = head_[domain];
        if (filled_[domain] == depth_) {
            const std::uint32_t old = ringOld(domain, head);
            for (unsigned p = 0; p < numComponents_; ++p)
                counts[p] = std::uint16_t(counts[p] -
                                          ((old >> p) & 1));
        } else {
            ++filled_[domain];
        }
        ringStore(domain, head, miss_mask);
        head_[domain] =
            std::uint16_t(head + 1 == depth_ ? 0 : head + 1);
        for (unsigned p = 0; p < numComponents_; ++p)
            counts[p] =
                std::uint16_t(counts[p] + ((miss_mask >> p) & 1));
    }

    /** Recorded miss weight of component @p component in @p domain. */
    std::uint64_t
    count(unsigned domain, unsigned component) const
    {
        if (exact_)
            return exactCounts_[std::size_t(domain) * numComponents_ +
                                component];
        return counts_[std::size_t(domain) * numComponents_ +
                       component];
    }

    /** Component with the fewest recorded misses (ties: low index). */
    unsigned
    best(unsigned domain) const
    {
        unsigned best_component = 0;
        if (exact_) {
            const std::uint64_t *counts =
                &exactCounts_[std::size_t(domain) * numComponents_];
            for (unsigned p = 1; p < numComponents_; ++p)
                if (counts[p] < counts[best_component])
                    best_component = p;
            return best_component;
        }
        const std::uint16_t *counts =
            &counts_[std::size_t(domain) * numComponents_];
        for (unsigned p = 1; p < numComponents_; ++p)
            if (counts[p] < counts[best_component])
                best_component = p;
        return best_component;
    }

    bool exact() const { return exact_; }
    unsigned depth() const { return depth_; }
    unsigned numComponents() const { return numComponents_; }

  private:
    std::uint32_t
    ringOld(unsigned domain, unsigned head) const
    {
        if (!ring8_.empty())
            return ring8_[std::size_t(domain) * depth_ + head];
        return ring32_[std::size_t(domain) * depth_ + head];
    }

    void
    ringStore(unsigned domain, unsigned head, std::uint32_t mask)
    {
        if (!ring8_.empty())
            ring8_[std::size_t(domain) * depth_ + head] =
                std::uint8_t(mask);
        else
            ring32_[std::size_t(domain) * depth_ + head] = mask;
    }

    bool exact_;
    unsigned depth_;
    unsigned numComponents_;
    std::vector<std::uint16_t> counts_;      // window mode
    std::vector<std::uint64_t> exactCounts_; // exact mode
    std::vector<std::uint8_t> ring8_;        // <= 8 components
    std::vector<std::uint32_t> ring32_;
    std::vector<std::uint16_t> head_;
    std::vector<std::uint16_t> filled_;
};

} // namespace adcache::adapt

#endif // ADCACHE_ADAPT_HISTORY_HH
