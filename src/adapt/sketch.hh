/**
 * @file
 * Frequency sketches for the adaptive engine's approximate-LFU
 * component and TinyLFU admission filter (ROADMAP item 2; cf.
 * "Analyzing Adaptive Cache Replacement Strategies" and AWRP in
 * PAPERS.md).
 *
 * A Count-Min sketch estimates per-key reference frequency in O(1)
 * memory: `rows` hash rows of `width` saturating counters; add()
 * increments one counter per row, estimate() takes the row minimum
 * (an over-approximation — collisions only inflate). Every
 * `decayEvery` adds all counters are halved (`decay_half`), so stale
 * popularity ages out and the sketch tracks the *recent* frequency
 * distribution — the property both CMS-LFU eviction and TinyLFU
 * admission depend on under phase changes.
 *
 * The row hash and parameter derivation below are the spec shared
 * with the oracle models in src/oracle/ref_sketch.hh: both sides
 * call sketchRowHash()/SketchParams::forGeometry() so production and
 * reference sketches index the same cells in the same order and stay
 * bit-identical under lockstep.
 */

#ifndef ADCACHE_ADAPT_SKETCH_HH
#define ADCACHE_ADAPT_SKETCH_HH

#include <cstdint>
#include <vector>

#include "util/logging.hh"

namespace adcache::adapt
{

/**
 * Row hash of the sketch spec: splitmix64 finalizer over the key,
 * offset per row so rows are independent. Deterministic and
 * seed-stable across platforms.
 */
constexpr std::uint64_t
sketchRowHash(std::uint64_t key, unsigned row, std::uint64_t seed)
{
    std::uint64_t z =
        key + seed + (std::uint64_t(row) + 1) * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * Sketch key of one resident entry: the set/bucket index composed
 * into the (folded) tag so equal tags in different sets count as
 * distinct keys. Part of the shared spec.
 */
constexpr std::uint64_t
sketchEntryKey(std::uint64_t tag, unsigned set, unsigned set_bits)
{
    return (tag << set_bits) | set;
}

/** Geometry-derived sketch dimensions (the shared spec). */
struct SketchParams {
    unsigned width = 1024;  ///< counters per row; power of two
    unsigned rows = 4;
    std::uint8_t counterMax = 15; ///< saturation ceiling per counter
    std::uint64_t decayEvery = 16 * 1024; ///< adds between decay_half
    std::uint64_t seed = 0x51e7c4a11dULL;

    /**
     * Standard sizing for a structure of @p num_sets x @p assoc
     * entries: width = next power of two >= 4x the entry count,
     * clamped to [64, 4096]; one decay_half per 16*width adds. Small
     * geometries (the lockstep shapes) decay every few thousand
     * accesses, so fuzz runs cross several decay windows.
     */
    static SketchParams forGeometry(unsigned num_sets, unsigned assoc);
};

/** Count-Min sketch with saturating counters and periodic decay. */
class CountMinSketch
{
  public:
    explicit CountMinSketch(const SketchParams &params);

    /** Count one reference to @p key; may trigger decay_half. */
    void
    add(std::uint64_t key)
    {
        for (unsigned r = 0; r < params_.rows; ++r) {
            std::uint8_t &cell = cells_[cellIndex(key, r)];
            if (cell < params_.counterMax)
                ++cell;
        }
        if (++adds_ % params_.decayEvery == 0)
            decayHalf();
    }

    /** Frequency estimate: minimum over the key's row counters. */
    std::uint32_t
    estimate(std::uint64_t key) const
    {
        std::uint32_t est = params_.counterMax;
        for (unsigned r = 0; r < params_.rows; ++r) {
            const std::uint32_t cell = cells_[cellIndex(key, r)];
            if (cell < est)
                est = cell;
        }
        return est;
    }

    /** Halve every counter (aging). Public for tests. */
    void decayHalf();

    const SketchParams &params() const { return params_; }
    std::uint64_t adds() const { return adds_; }
    std::uint64_t decays() const { return decays_; }

  private:
    std::size_t
    cellIndex(std::uint64_t key, unsigned row) const
    {
        return std::size_t(row) * params_.width +
               (sketchRowHash(key, row, params_.seed) &
                (params_.width - 1));
    }

    SketchParams params_;
    std::vector<std::uint8_t> cells_; ///< rows x width, row-major
    std::uint64_t adds_ = 0;
    std::uint64_t decays_ = 0;
};

/**
 * TinyLFU admission filter: a frequency doorkeeper in front of a
 * cache. Every candidate key is touch()ed on access; on a full-set
 * miss the owner asks admit(candidate, victim) and *bypasses* the
 * fill when the candidate's estimated frequency does not strictly
 * exceed the victim's — the incumbent keeps its slot on ties, so a
 * scan cannot displace an established working set.
 */
class TinyLfuAdmission
{
  public:
    explicit TinyLfuAdmission(const SketchParams &params)
        : sketch_(params)
    {
    }

    /** Record one reference to @p key (call once per access). */
    void touch(std::uint64_t key) { sketch_.add(key); }

    /** True iff @p candidate should displace @p victim. */
    bool
    admit(std::uint64_t candidate, std::uint64_t victim) const
    {
        return sketch_.estimate(candidate) > sketch_.estimate(victim);
    }

    const CountMinSketch &sketch() const { return sketch_; }

  private:
    CountMinSketch sketch_;
};

} // namespace adcache::adapt

#endif // ADCACHE_ADAPT_SKETCH_HH
