/**
 * @file
 * Winner selection of the adaptive engine: which component policy a
 * selection domain imitates right now.
 *
 * Two selector forms cover every host structure in the repo:
 *
 *  - Selector: per-domain differentiating-miss voting (Sec. 2.2).
 *    Each domain owns a miss history (window or exact mode, see
 *    adapt/history.hh) and imitates the component with the fewest
 *    recorded misses. AdaptiveCache runs one domain per set, KvShard
 *    one per bucket (EvictionScope::Bucket) or one per shard
 *    (EvictionScope::Shard), SbarCache one per leader ordinal for its
 *    local leader histories. A fixed mode pins the winner for
 *    baseline/fixed-policy configurations without a second code path
 *    in the host.
 *
 *  - PselSelector: the SBAR global policy-selection counter
 *    (Sec. 4.7): a saturating counter fed one up/down step per
 *    leader-set differentiating miss; the high half of the range
 *    selects component 1 ("A has been missing more; prefer B").
 *
 * Both report selection flips so hosts can trace/account them.
 */

#ifndef ADCACHE_ADAPT_SELECTOR_HH
#define ADCACHE_ADAPT_SELECTOR_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "adapt/history.hh"
#include "util/sat_counter.hh"

namespace adcache::adapt
{

/** Differentiating-miss winner selection over domains. */
class Selector
{
  public:
    /**
     * Adaptive form: per-domain miss history drives the winner.
     * @param exact_counters exact since-start counters (theory form).
     * @param depth          window depth m (ignored when exact).
     */
    static Selector
    makeAdaptive(unsigned num_domains, unsigned num_components,
                 bool exact_counters, unsigned depth)
    {
        return Selector(num_domains, num_components, exact_counters,
                        depth, 0, true);
    }

    /** Fixed form: every domain always imitates @p winner. */
    static Selector
    makeFixed(unsigned num_domains, unsigned num_components,
              unsigned winner)
    {
        adcache_assert(winner < num_components);
        return Selector(num_domains, num_components, false, 1, winner,
                        false);
    }

    /**
     * Present one shadow miss mask for @p domain (bit k set iff
     * component k missed). Non-differentiating masks (none/all
     * missed) are ignored, as is everything in fixed mode. Returns
     * true iff this observation changed the domain's selection.
     */
    bool
    record(unsigned domain, std::uint32_t miss_mask)
    {
        if (!history_)
            return false;
        if (miss_mask == 0 || miss_mask == allMask_)
            return false;
        history_->record(domain, miss_mask);
        const unsigned w = history_->best(domain);
        if (w == lastWinner_[domain])
            return false;
        lastWinner_[domain] = std::uint8_t(w);
        ++flips_;
        return true;
    }

    /** The component @p domain imitates right now. */
    unsigned winner(unsigned domain) const { return lastWinner_[domain]; }

    /** Recorded miss weight of component @p k (0 in fixed mode). */
    std::uint64_t
    count(unsigned domain, unsigned k) const
    {
        return history_ ? history_->count(domain, k) : 0;
    }

    /** Times any domain's selection changed sides. */
    std::uint64_t flips() const { return flips_; }

    bool adaptive() const { return history_.has_value(); }
    unsigned numComponents() const { return numComponents_; }

  private:
    Selector(unsigned num_domains, unsigned num_components,
             bool exact_counters, unsigned depth, unsigned winner,
             bool adaptive)
        : numComponents_(num_components),
          allMask_(num_components >= 32 ? ~std::uint32_t{0}
                                        : (1u << num_components) - 1),
          lastWinner_(num_domains, std::uint8_t(winner))
    {
        adcache_assert(num_components >= 1 && num_components <= 32);
        if (adaptive)
            history_.emplace(exact_counters, depth, num_domains,
                             num_components);
    }

    unsigned numComponents_;
    std::uint32_t allMask_;
    std::optional<HistorySet> history_; ///< disengaged in fixed mode
    /** Winner cache per domain; record() keeps it equal to
     *  history_->best(domain), making winner() O(1). */
    std::vector<std::uint8_t> lastWinner_;
    std::uint64_t flips_ = 0;
};

/** SBAR global policy-selection counter (Sec. 4.7). */
class PselSelector
{
  public:
    /** @param bits counter width; starts at the midpoint. */
    explicit PselSelector(unsigned bits)
        : psel_(bits, (1u << bits) / 2)
    {
    }

    /**
     * One leader differentiating miss: component A missing drifts the
     * choice toward B and vice versa. Returns true iff the global
     * choice flipped sides.
     */
    bool
    record(bool a_missed)
    {
        const unsigned before = choice();
        if (a_missed)
            psel_.increment();
        else
            psel_.decrement();
        if (choice() == before)
            return false;
        ++flips_;
        return true;
    }

    /** Globally-selected component (0 = A, 1 = B). */
    unsigned choice() const { return psel_.high() ? 1 : 0; }

    std::uint32_t value() const { return psel_.value(); }
    std::uint64_t flips() const { return flips_; }

  private:
    SatCounter psel_;
    std::uint64_t flips_ = 0;
};

} // namespace adcache::adapt

#endif // ADCACHE_ADAPT_SELECTOR_HH
