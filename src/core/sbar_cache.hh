/**
 * @file
 * SBAR-like set-sampling adaptive cache (Sec. 4.7, after Qureshi,
 * Lynch, Mutlu and Patt).
 *
 * Only a few evenly-spaced *leader* sets carry the duplicate (shadow)
 * tag structures and a local miss history; they behave like the
 * regular adaptive cache. Leader-set differentiating misses also
 * train a global policy-selection counter. The remaining *follower*
 * sets keep both components' replacement metadata on the real blocks
 * at all times (recency order and frequency counts), and on a miss
 * simply evict whichever block the globally-selected policy would
 * evict from the blocks currently in the cache. Followers therefore
 * lose the theoretical guarantee — when the selection flips, the
 * newly-selected policy starts from the current contents rather than
 * its own simulated contents — but the hardware overhead collapses to
 * a fraction of a percent.
 */

#ifndef ADCACHE_CORE_SBAR_CACHE_HH
#define ADCACHE_CORE_SBAR_CACHE_HH

#include <memory>
#include <vector>

#include "adapt/selector.hh"
#include "cache/cache_model.hh"
#include "cache/policy_sets.hh"
#include "cache/replacement.hh"
#include "cache/tag_array.hh"
#include "core/shadow_cache.hh"

namespace adcache
{

/** Configuration of the SBAR-like cache. */
struct SbarConfig
{
    std::uint64_t sizeBytes = 512 * 1024;
    unsigned assoc = 8;
    unsigned lineSize = 64;
    PolicyType policyA = PolicyType::LRU;
    PolicyType policyB = PolicyType::LFU;
    /** Number of leader sets (evenly spaced). */
    unsigned numLeaders = 32;
    /** Partial-tag width for the leader shadows (0 = full). */
    unsigned partialTagBits = 0;
    bool xorFoldTags = false;
    /** Leader-set local history depth; 0 = associativity. */
    unsigned historyDepth = 0;
    /** Width of the global policy-selection counter. */
    unsigned pselBits = 10;
    std::uint64_t rngSeed = 1;

    CacheGeometry
    geometry() const
    {
        return CacheGeometry::fromSize(sizeBytes, assoc, lineSize);
    }
};

/** The SBAR-like adaptive cache. */
class SbarCache : public CacheModel
{
  public:
    explicit SbarCache(const SbarConfig &config);

    AccessResult access(Addr addr, bool is_write) override;
    const CacheStats &stats() const override { return stats_; }
    const CacheGeometry &geometry() const override { return geom_; }
    std::string describe() const override;
    void registerStats(StatRegistry &reg,
                       const std::string &prefix) const override;

    /** True iff @p set is a leader set. */
    bool isLeader(unsigned set) const;

    /** True iff the block containing @p addr is resident. */
    bool contains(Addr addr) const;

    /** Current globally-selected policy (0 = A, 1 = B). */
    unsigned globalChoice() const;

    /** Times the global selection changed sides. */
    std::uint64_t selectionFlips() const { return psel_.flips(); }

    const SbarConfig &config() const { return config_; }

  private:
    template <class PolicyA, class PolicyB>
    AccessResult accessImpl(PolicyA &pa, PolicyB &pb, Addr addr,
                            bool is_write);

    SbarConfig config_;
    CacheGeometry geom_;
    AddrMap map_;
    Rng rng_;
    TagArray tags_;
    // Both components' metadata maintained on the real blocks of
    // every set ("policy-specific meta-data are kept at all times").
    PolicySet policyA_;
    PolicySet policyB_;
    // Leader-only structures, indexed by leader ordinal.
    ShadowCache shadowA_;
    ShadowCache shadowB_;
    adapt::Selector leaderSelector_;  // domains = leader ordinals
    std::vector<int> leaderOrdinal_;  // -1 for followers
    unsigned leaderSpacing_;
    adapt::PselSelector psel_;
    std::vector<unsigned> fallbackPtr_;
    CacheStats stats_;
};

} // namespace adcache

#endif // ADCACHE_CORE_SBAR_CACHE_HH
