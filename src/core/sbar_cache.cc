#include "core/sbar_cache.hh"

#include <sstream>

#include "adapt/imitation.hh"
#include "obs/trace.hh"
#include "util/stat_registry.hh"

namespace adcache
{

SbarCache::SbarCache(const SbarConfig &config)
    : config_(config), geom_(config.geometry()), map_(geom_),
      rng_(config.rngSeed), tags_(geom_.numSets, geom_.assoc),
      policyA_(config.policyA, geom_.numSets, geom_.assoc, &rng_),
      policyB_(config.policyB, geom_.numSets, geom_.assoc, &rng_),
      // Shadow structures are sized for the full set count but only
      // leader sets ever touch them; a hardware implementation would
      // provision numLeaders sets (the overhead model accounts bits
      // that way, see core/overhead.cc).
      shadowA_(geom_, config.policyA, config.partialTagBits,
               config.xorFoldTags, &rng_),
      shadowB_(geom_, config.policyB, config.partialTagBits,
               config.xorFoldTags, &rng_),
      leaderSelector_(adapt::Selector::makeAdaptive(
          config.numLeaders, 2, false,
          config.historyDepth != 0 ? config.historyDepth
                                   : geom_.assoc)),
      psel_(config.pselBits)
{
    adcache_assert(config.numLeaders >= 1 &&
                   config.numLeaders <= geom_.numSets);

    leaderSpacing_ = geom_.numSets / config.numLeaders;
    adcache_assert(leaderSpacing_ >= 1);
    leaderOrdinal_.assign(geom_.numSets, -1);
    unsigned ordinal = 0;
    for (unsigned s = 0; s < geom_.numSets; s += leaderSpacing_) {
        if (ordinal >= config.numLeaders)
            break;
        leaderOrdinal_[s] = int(ordinal++);
    }
    fallbackPtr_.assign(geom_.numSets, 0);
}

bool
SbarCache::isLeader(unsigned set) const
{
    return leaderOrdinal_.at(set) >= 0;
}

bool
SbarCache::contains(Addr addr) const
{
    return tags_.lookup(map_.set(addr), map_.tag(addr)) !=
           TagArray::kNoWay;
}

unsigned
SbarCache::globalChoice() const
{
    // High half of the counter range means "A has been missing more;
    // prefer B".
    return psel_.choice();
}

template <class PolicyA, class PolicyB>
AccessResult
SbarCache::accessImpl(PolicyA &pa, PolicyB &pb, Addr addr,
                      bool is_write)
{
    AccessResult result;
    ++stats_.accesses;

    const unsigned set = map_.set(addr);
    const Addr tag = map_.tag(addr);
    const int ordinal = leaderOrdinal_[set];

    ShadowOutcome out_a, out_b;
    if (ordinal >= 0) {
        out_a = shadowA_.access(addr);
        out_b = shadowB_.access(addr);
        if (out_a.miss != out_b.miss) {
            leaderSelector_.record(unsigned(ordinal),
                                   out_a.miss ? 0b01 : 0b10);
            // A missing drifts the counter toward B and vice versa.
            if (psel_.record(out_a.miss)) {
                if (obs::traceEnabled())
                    obs::emit(obs::sbarPselEvent(
                        stats_.accesses, psel_.value(),
                        psel_.choice() ^ 1u, psel_.choice()));
            }
            if (obs::traceEnabled())
                obs::emit(obs::diffMissEvent(
                    stats_.accesses, set, out_a.miss ? 0b01 : 0b10));
        }
        // Leader shadow displacements; gate only when some shadow
        // missed, never on the all-hit path.
        if ((out_a.miss || out_b.miss) && obs::traceEnabled()) {
            if (out_a.evicted)
                shadowA_.traceEvict(stats_.accesses, set, 0, out_a);
            if (out_b.evicted)
                shadowB_.traceEvict(stats_.accesses, set, 1, out_b);
        }
    }

    const unsigned way = tags_.lookup(set, tag);
    if (way != TagArray::kNoWay) {
        ++stats_.hits;
        policyOnHit(pa, set, way, tag);
        policyOnHit(pb, set, way, tag);
        if (is_write)
            tags_.markDirty(set, way);
        result.hit = true;
        return result;
    }

    ++stats_.misses;
    if (is_write)
        ++stats_.writeMisses;
    else
        ++stats_.readMisses;

    unsigned fill_way = tags_.invalidWay(set);
    if (fill_way == TagArray::kNoWay) {
        unsigned winner;
        if (ordinal >= 0) {
            winner = leaderSelector_.winner(unsigned(ordinal));
            const ShadowOutcome &wo = winner == 0 ? out_a : out_b;
            adapt::WaySetView<TagArray, ShadowCache> view(
                tags_, winner == 0 ? shadowA_ : shadowB_, set,
                geom_.assoc, &fallbackPtr_[set]);
            const auto choice =
                adapt::imitateVictim(view, wo.evicted, wo.evictedTag);
            fill_way = choice.handle;
            if (obs::traceEnabled())
                obs::emit(obs::evictionEvent(
                    stats_.accesses, set, winner,
                    toEvictCase(choice.kind),
                    tags_.tag(set, fill_way)));
        } else {
            winner = globalChoice();
            // The follower runs the selected algorithm on whatever
            // blocks are currently resident (Sec. 4.7).
            fill_way = winner == 0 ? pa.victim(set) : pb.victim(set);
        }

        ++stats_.evictions;
        if (tags_.dirty(set, fill_way)) {
            ++stats_.writebacks;
            result.writeback = true;
            result.writebackAddr =
                geom_.reconstruct(set, tags_.tag(set, fill_way));
        }
        // No onInvalidate: the onFill calls below fully overwrite
        // the victim's per-way policy state.
    }

    tags_.fill(set, fill_way, tag);
    policyOnFill(pa, set, fill_way, tag);
    policyOnFill(pb, set, fill_way, tag);
    if (is_write)
        tags_.markDirty(set, fill_way);
    return result;
}

AccessResult
SbarCache::access(Addr addr, bool is_write)
{
    return policyA_.visit([&](auto &pa) {
        return policyB_.visit([&](auto &pb) {
            return accessImpl(pa, pb, addr, is_write);
        });
    });
}

std::string
SbarCache::describe() const
{
    std::ostringstream out;
    out << "SBAR[" << policyName(config_.policyA) << "+"
        << policyName(config_.policyB) << "] ("
        << (geom_.sizeBytes() / 1024) << "KB, " << geom_.assoc
        << "-way, " << config_.numLeaders << " leaders, ";
    if (config_.partialTagBits == 0)
        out << "full-tag leaders)";
    else
        out << config_.partialTagBits << "-bit leaders)";
    return out.str();
}


void
SbarCache::registerStats(StatRegistry &reg,
                         const std::string &prefix) const
{
    stats_.registerInto(reg, prefix);
    reg.counter(prefix + "selection_flips", psel_.flips());
    reg.counter(prefix + "global_choice", globalChoice());
}

} // namespace adcache
