#include "core/sbar_cache.hh"

#include <sstream>

#include "util/stat_registry.hh"

namespace adcache
{

SbarCache::SbarCache(const SbarConfig &config)
    : config_(config), geom_(config.geometry()), rng_(config.rngSeed),
      tags_(geom_.numSets, geom_.assoc),
      psel_(config.pselBits, (1u << config.pselBits) / 2)
{
    adcache_assert(config.numLeaders >= 1 &&
                   config.numLeaders <= geom_.numSets);

    policyA_.reserve(geom_.numSets);
    policyB_.reserve(geom_.numSets);
    for (unsigned s = 0; s < geom_.numSets; ++s) {
        policyA_.push_back(
            makePolicy(config.policyA, geom_.assoc, &rng_));
        policyB_.push_back(
            makePolicy(config.policyB, geom_.assoc, &rng_));
    }

    // Shadow structures are sized for the full set count but only
    // leader sets ever touch them; a hardware implementation would
    // provision numLeaders sets (the overhead model accounts bits
    // that way, see core/overhead.cc).
    shadowA_ = std::make_unique<ShadowCache>(geom_, config.policyA,
                                             config.partialTagBits,
                                             config.xorFoldTags, &rng_);
    shadowB_ = std::make_unique<ShadowCache>(geom_, config.policyB,
                                             config.partialTagBits,
                                             config.xorFoldTags, &rng_);

    leaderSpacing_ = geom_.numSets / config.numLeaders;
    adcache_assert(leaderSpacing_ >= 1);
    leaderOrdinal_.assign(geom_.numSets, -1);
    const unsigned depth =
        config.historyDepth != 0 ? config.historyDepth : geom_.assoc;
    unsigned ordinal = 0;
    for (unsigned s = 0; s < geom_.numSets; s += leaderSpacing_) {
        if (ordinal >= config.numLeaders)
            break;
        leaderOrdinal_[s] = int(ordinal++);
        leaderHistory_.push_back(makeHistory(false, depth, 2));
    }
    fallbackPtr_.assign(geom_.numSets, 0);
}

bool
SbarCache::isLeader(unsigned set) const
{
    return leaderOrdinal_.at(set) >= 0;
}

bool
SbarCache::contains(Addr addr) const
{
    return tags_.findWay(geom_.setIndex(addr), geom_.tag(addr))
        .has_value();
}

unsigned
SbarCache::globalChoice() const
{
    // High half of the counter range means "A has been missing more;
    // prefer B".
    return psel_.high() ? 1 : 0;
}

unsigned
SbarCache::leaderVictim(unsigned set, unsigned winner,
                        const ShadowOutcome &winner_outcome)
{
    ShadowCache &shadow = winner == 0 ? *shadowA_ : *shadowB_;

    if (winner_outcome.evicted) {
        for (unsigned w = 0; w < geom_.assoc; ++w) {
            const auto &e = tags_.entry(set, w);
            if (e.valid &&
                shadow.foldTag(e.tag) == winner_outcome.evictedTag) {
                return w;
            }
        }
    }
    for (unsigned w = 0; w < geom_.assoc; ++w) {
        const auto &e = tags_.entry(set, w);
        if (e.valid && !shadow.containsTag(set, shadow.foldTag(e.tag)))
            return w;
    }
    const unsigned w = fallbackPtr_[set];
    fallbackPtr_[set] = (w + 1) % geom_.assoc;
    return w;
}

AccessResult
SbarCache::access(Addr addr, bool is_write)
{
    AccessResult result;
    ++stats_.accesses;

    const unsigned set = geom_.setIndex(addr);
    const Addr tag = geom_.tag(addr);
    const int ordinal = leaderOrdinal_[set];

    ShadowOutcome out_a, out_b;
    if (ordinal >= 0) {
        out_a = shadowA_->access(addr);
        out_b = shadowB_->access(addr);
        if (out_a.miss != out_b.miss) {
            leaderHistory_[ordinal]->record(out_a.miss ? 0b01 : 0b10);
            const unsigned before = globalChoice();
            if (out_a.miss)
                psel_.increment();  // A missing -> drift toward B
            else
                psel_.decrement();
            if (globalChoice() != before)
                ++flips_;
        }
    }

    if (auto way = tags_.findWay(set, tag)) {
        ++stats_.hits;
        policyA_[set]->onHit(*way);
        policyB_[set]->onHit(*way);
        if (is_write)
            tags_.entry(set, *way).dirty = true;
        result.hit = true;
        return result;
    }

    ++stats_.misses;
    if (is_write)
        ++stats_.writeMisses;
    else
        ++stats_.readMisses;

    unsigned fill_way;
    if (auto invalid = tags_.findInvalidWay(set)) {
        fill_way = *invalid;
    } else {
        unsigned winner;
        if (ordinal >= 0) {
            winner = leaderHistory_[ordinal]->best(2);
            fill_way = leaderVictim(set, winner,
                                    winner == 0 ? out_a : out_b);
        } else {
            winner = globalChoice();
            // The follower runs the selected algorithm on whatever
            // blocks are currently resident (Sec. 4.7).
            fill_way = winner == 0 ? policyA_[set]->victim()
                                   : policyB_[set]->victim();
        }

        const auto &victim = tags_.entry(set, fill_way);
        ++stats_.evictions;
        if (victim.dirty) {
            ++stats_.writebacks;
            result.writeback = true;
            result.writebackAddr = geom_.reconstruct(set, victim.tag);
        }
        policyA_[set]->onInvalidate(fill_way);
        policyB_[set]->onInvalidate(fill_way);
    }

    tags_.fill(set, fill_way, tag);
    policyA_[set]->onFill(fill_way);
    policyB_[set]->onFill(fill_way);
    if (is_write)
        tags_.entry(set, fill_way).dirty = true;
    return result;
}

std::string
SbarCache::describe() const
{
    std::ostringstream out;
    out << "SBAR[" << policyName(config_.policyA) << "+"
        << policyName(config_.policyB) << "] ("
        << (geom_.sizeBytes() / 1024) << "KB, " << geom_.assoc
        << "-way, " << config_.numLeaders << " leaders, ";
    if (config_.partialTagBits == 0)
        out << "full-tag leaders)";
    else
        out << config_.partialTagBits << "-bit leaders)";
    return out.str();
}


void
SbarCache::registerStats(StatRegistry &reg,
                         const std::string &prefix) const
{
    stats_.registerInto(reg, prefix);
    reg.counter(prefix + "selection_flips", flips_);
    reg.counter(prefix + "global_choice", globalChoice());
}

} // namespace adcache
