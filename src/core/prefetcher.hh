/**
 * @file
 * Hardware prefetchers and the adaptive hybrid the paper sketches as
 * future work (Sec. 6): "Our adaptation technique could possibly be
 * modified to improve hybrid hardware prefetchers as well (hit/miss
 * is replaced with useful/not-useful prefetch)."
 *
 * Two classic component prefetchers are provided — next-N-lines and
 * a stream/stride detector — plus AdaptiveHybridPrefetcher, which
 * trains both components on the demand stream, scores each by the
 * recent *uselessness* of its suggestions (a windowed history, the
 * exact structure the adaptive cache uses for misses), and issues
 * only the currently-better component's prefetches.
 */

#ifndef ADCACHE_CORE_PREFETCHER_HH
#define ADCACHE_CORE_PREFETCHER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "adapt/history.hh"
#include "util/types.hh"

namespace adcache
{

/** Which prefetcher drives the L2 (sim/config.hh plumbs this). */
enum class PrefetcherType
{
    None,
    NextLine,
    Stride,
    AdaptiveHybrid,
};

/** Parse a prefetcher name; fatal() on unknown names. */
PrefetcherType parsePrefetcherType(const std::string &name);

/** Printable prefetcher name. */
const char *prefetcherName(PrefetcherType type);

/** Counters every prefetcher keeps. */
struct PrefetcherStats
{
    std::uint64_t issued = 0;
    std::uint64_t useful = 0;   //!< demand-referenced before expiry
    std::uint64_t useless = 0;  //!< expired without a demand use

    double
    accuracy() const
    {
        const auto judged = useful + useless;
        return judged == 0 ? 0.0 : double(useful) / double(judged);
    }
};

/**
 * A prefetcher observes the demand miss stream of a cache level and
 * suggests block addresses to fetch ahead of time.
 */
class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    /**
     * Observe one demand access.
     * @param block_addr block-aligned demand address.
     * @param miss       whether the demand access missed.
     * @param out        candidate block addresses to prefetch.
     */
    virtual void observe(Addr block_addr, bool miss,
                         std::vector<Addr> &out) = 0;

    /** Short label for reports. */
    virtual std::string describe() const = 0;
};

/** Prefetch the next @p degree sequential lines on a miss. */
class NextLinePrefetcher : public Prefetcher
{
  public:
    explicit NextLinePrefetcher(unsigned line_size, unsigned degree = 1);

    void observe(Addr block_addr, bool miss,
                 std::vector<Addr> &out) override;
    std::string describe() const override;

  private:
    unsigned lineSize_;
    unsigned degree_;
};

/**
 * Region-based stream/stride detector: tracks the last block and
 * delta per 4KB region with a 2-bit confidence counter; a confirmed
 * stride prefetches the next @p degree strided blocks.
 */
class StridePrefetcher : public Prefetcher
{
  public:
    StridePrefetcher(unsigned line_size, unsigned table_entries = 64,
                     unsigned degree = 2);

    void observe(Addr block_addr, bool miss,
                 std::vector<Addr> &out) override;
    std::string describe() const override;

  private:
    struct Entry
    {
        Addr regionTag = 0;
        Addr lastBlock = 0;
        std::int64_t delta = 0;
        unsigned confidence = 0;
        bool valid = false;
    };

    unsigned lineSize_;
    unsigned degree_;
    std::vector<Entry> table_;
};

/**
 * The future-work hybrid: both components train on every access; a
 * windowed uselessness history (per Sec. 2.2's miss history, with
 * "useless prefetch" in place of "miss") selects which component's
 * suggestions are actually issued.
 */
class AdaptiveHybridPrefetcher : public Prefetcher
{
  public:
    /**
     * @param line_size    cache line size.
     * @param window_depth uselessness history depth (default 16).
     * @param tracker_size outstanding-prefetch tracker entries per
     *                     component.
     */
    AdaptiveHybridPrefetcher(unsigned line_size,
                             unsigned window_depth = 16,
                             unsigned tracker_size = 64);

    void observe(Addr block_addr, bool miss,
                 std::vector<Addr> &out) override;
    std::string describe() const override;

    /** Component currently allowed to issue (0 = next-line,
     *  1 = stride). */
    unsigned activeComponent() const;

    /** Per-component usefulness counters. */
    const PrefetcherStats &componentStats(unsigned k) const;

  private:
    struct Tracked
    {
        Addr block;
        bool used;
    };

    void track(unsigned k, Addr block);
    void noteDemand(unsigned k, Addr block);

    std::unique_ptr<Prefetcher> components_[2];
    std::deque<Tracked> outstanding_[2];
    PrefetcherStats stats_[2];
    /** Single-domain window history of recently-useless suggestions
     *  per component (the prefetch analogue of a miss history). */
    adapt::HistorySet uselessness_;
    unsigned trackerSize_;
    std::vector<Addr> scratch_;
};

/** Build a prefetcher; returns nullptr for PrefetcherType::None. */
std::unique_ptr<Prefetcher> makePrefetcher(PrefetcherType type,
                                           unsigned line_size,
                                           unsigned degree = 2);

} // namespace adcache

#endif // ADCACHE_CORE_PREFETCHER_HH
