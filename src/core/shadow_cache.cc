#include "core/shadow_cache.hh"

namespace adcache
{

ShadowCache::ShadowCache(const CacheGeometry &geom, PolicyType policy,
                         unsigned partial_bits, bool xor_fold, Rng *rng)
    : geom_(geom), policyType_(policy), partialBits_(partial_bits),
      xorFold_(xor_fold), tags_(geom.numSets, geom.assoc)
{
    adcache_assert(partial_bits <= geom.tagBits());
    policies_.reserve(geom.numSets);
    for (unsigned s = 0; s < geom.numSets; ++s)
        policies_.push_back(makePolicy(policy, geom.assoc, rng));
}

Addr
ShadowCache::foldTag(Addr full_tag) const
{
    if (partialBits_ == 0)
        return full_tag;
    if (xorFold_)
        return xorFold(full_tag, partialBits_);
    return full_tag & lowMask(partialBits_);
}

Addr
ShadowCache::transformTag(Addr addr) const
{
    return foldTag(geom_.tag(addr));
}

bool
ShadowCache::containsTag(unsigned set, Addr stored_tag) const
{
    return tags_.findWay(set, stored_tag).has_value();
}

ShadowOutcome
ShadowCache::access(Addr addr)
{
    ShadowOutcome out;
    ++accesses_;

    const unsigned set = geom_.setIndex(addr);
    const Addr tag = transformTag(addr);
    auto &policy = *policies_[set];

    if (auto way = tags_.findWay(set, tag)) {
        // With partial tags this may be a false-positive match for a
        // different block; the component simulation simply proceeds
        // as if it were a hit (Sec. 3.1).
        policy.onHit(*way);
        return out;
    }

    out.miss = true;
    ++misses_;

    unsigned fill_way;
    if (auto invalid = tags_.findInvalidWay(set)) {
        fill_way = *invalid;
    } else {
        fill_way = policy.victim();
        out.evicted = true;
        out.evictedTag = tags_.entry(set, fill_way).tag;
        policy.onInvalidate(fill_way);
    }
    tags_.fill(set, fill_way, tag);
    policy.onFill(fill_way);
    return out;
}

} // namespace adcache
