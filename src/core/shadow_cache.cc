#include "core/shadow_cache.hh"

namespace adcache
{

ShadowCache::ShadowCache(const CacheGeometry &geom, PolicyType policy,
                         unsigned partial_bits, bool xor_fold, Rng *rng,
                         const adapt::TinyLfuAdmission *admission)
    : geom_(geom), map_(geom), policyType_(policy),
      partialBits_(partial_bits), xorFold_(xor_fold),
      tags_(geom.numSets, geom.assoc, partial_bits),
      policies_(policy, geom.numSets, geom.assoc, rng),
      admission_(admission)
{
    adcache_assert(partial_bits <= geom.tagBits());
}

} // namespace adcache
