/**
 * @file
 * Per-set miss history buffers (Sec. 2.2). The adaptive algorithm
 * records "differentiating" misses — references missed by a proper,
 * non-empty subset of the component policies — and imitates the
 * policy with the fewest recorded misses.
 *
 * Two representations are provided:
 *  - WindowHistory: the hardware design, an m-entry ring of miss
 *    bitmasks (for two policies this is exactly the paper's m-bit
 *    vector).
 *  - CounterHistory: exact integer counters of all misses so far, the
 *    version used by the theoretical 2x bound in the Appendix.
 */

#ifndef ADCACHE_CORE_MISS_HISTORY_HH
#define ADCACHE_CORE_MISS_HISTORY_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "util/logging.hh"

namespace adcache
{

/** History of component-policy misses for one cache set. */
class MissHistory
{
  public:
    virtual ~MissHistory() = default;

    /**
     * Record one differentiating miss event.
     * @param miss_mask bit k set iff component policy k missed.
     *                  Callers only pass proper non-empty subsets.
     */
    virtual void record(std::uint32_t miss_mask) = 0;

    /** Recorded miss weight of component @p policy. */
    virtual std::uint64_t count(unsigned policy) const = 0;

    /**
     * Index of the policy with the fewest recorded misses; ties break
     * toward the lowest index (so policy A wins a fresh buffer).
     */
    unsigned best(unsigned num_policies) const;
};

/** Ring buffer of the last m differentiating-miss bitmasks. */
class WindowHistory : public MissHistory
{
  public:
    /**
     * @param depth        window length m (paper default: the cache
     *                     associativity, Sec. 2.2).
     * @param num_policies number of component policies.
     */
    WindowHistory(unsigned depth, unsigned num_policies);

    void record(std::uint32_t miss_mask) override;
    std::uint64_t count(unsigned policy) const override;

    unsigned depth() const { return depth_; }

  private:
    unsigned depth_;
    std::vector<std::uint32_t> ring_;
    unsigned head_ = 0;
    unsigned filled_ = 0;
    std::vector<std::uint64_t> counts_;
};

/** Exact since-reset counters (theory variant). */
class CounterHistory : public MissHistory
{
  public:
    explicit CounterHistory(unsigned num_policies);

    void record(std::uint32_t miss_mask) override;
    std::uint64_t count(unsigned policy) const override;

  private:
    std::vector<std::uint64_t> counts_;
};

/** Build the selected representation. */
std::unique_ptr<MissHistory>
makeHistory(bool exact_counters, unsigned depth, unsigned num_policies);

/**
 * Miss histories of every set of a cache in flat arrays — the hot-path
 * counterpart of the per-set MissHistory objects above (which remain
 * the configuration-boundary/reference interface). One heap object
 * per *cache* instead of per set, no virtual dispatch on record/best,
 * and the per-set state of neighbouring sets shares cache lines.
 *
 * Event semantics are identical to WindowHistory (ring of the last
 * depth miss masks) or, with exact_counters, CounterHistory
 * (unbounded counts); ties in best() break toward the lowest index.
 */
class HistorySet
{
  public:
    HistorySet(bool exact_counters, unsigned depth, unsigned num_sets,
               unsigned num_policies)
        : exact_(exact_counters), depth_(depth),
          numPolicies_(num_policies)
    {
        adcache_assert(num_policies >= 1 && num_policies <= 32);
        adcache_assert(exact_counters ||
                       (depth >= 1 && depth <= 0xFFFF));
        const std::size_t cells =
            std::size_t(num_sets) * num_policies;
        if (exact_counters) {
            exactCounts_.assign(cells, 0);
            return;
        }
        counts_.assign(cells, 0);
        if (num_policies <= 8)
            ring8_.assign(std::size_t(num_sets) * depth, 0);
        else
            ring32_.assign(std::size_t(num_sets) * depth, 0);
        head_.assign(num_sets, 0);
        filled_.assign(num_sets, 0);
    }

    void
    record(unsigned set, std::uint32_t miss_mask)
    {
        if (exact_) {
            std::uint64_t *counts =
                &exactCounts_[std::size_t(set) * numPolicies_];
            for (unsigned p = 0; p < numPolicies_; ++p)
                if (miss_mask & (1u << p))
                    ++counts[p];
            return;
        }
        // Window mode: counts are bounded by depth (<= 0xFFFF) and
        // masks by the policy count, so the whole per-set state packs
        // into narrow arrays that stay L1-resident.
        std::uint16_t *counts =
            &counts_[std::size_t(set) * numPolicies_];
        const unsigned head = head_[set];
        if (filled_[set] == depth_) {
            const std::uint32_t old = ringOld(set, head);
            for (unsigned p = 0; p < numPolicies_; ++p)
                counts[p] = std::uint16_t(counts[p] -
                                          ((old >> p) & 1));
        } else {
            ++filled_[set];
        }
        ringStore(set, head, miss_mask);
        head_[set] = std::uint16_t(head + 1 == depth_ ? 0 : head + 1);
        for (unsigned p = 0; p < numPolicies_; ++p)
            counts[p] =
                std::uint16_t(counts[p] + ((miss_mask >> p) & 1));
    }

    std::uint64_t
    count(unsigned set, unsigned policy) const
    {
        if (exact_)
            return exactCounts_[std::size_t(set) * numPolicies_ +
                                policy];
        return counts_[std::size_t(set) * numPolicies_ + policy];
    }

    /** Policy with the fewest recorded misses in @p set (ties: low). */
    unsigned
    best(unsigned set) const
    {
        unsigned best_policy = 0;
        if (exact_) {
            const std::uint64_t *counts =
                &exactCounts_[std::size_t(set) * numPolicies_];
            for (unsigned p = 1; p < numPolicies_; ++p)
                if (counts[p] < counts[best_policy])
                    best_policy = p;
            return best_policy;
        }
        const std::uint16_t *counts =
            &counts_[std::size_t(set) * numPolicies_];
        for (unsigned p = 1; p < numPolicies_; ++p)
            if (counts[p] < counts[best_policy])
                best_policy = p;
        return best_policy;
    }

  private:
    std::uint32_t
    ringOld(unsigned set, unsigned head) const
    {
        if (!ring8_.empty())
            return ring8_[std::size_t(set) * depth_ + head];
        return ring32_[std::size_t(set) * depth_ + head];
    }

    void
    ringStore(unsigned set, unsigned head, std::uint32_t mask)
    {
        if (!ring8_.empty())
            ring8_[std::size_t(set) * depth_ + head] =
                std::uint8_t(mask);
        else
            ring32_[std::size_t(set) * depth_ + head] = mask;
    }

    bool exact_;
    unsigned depth_;
    unsigned numPolicies_;
    std::vector<std::uint16_t> counts_;       // window mode, set-major
    std::vector<std::uint64_t> exactCounts_;  // exact mode, set-major
    std::vector<std::uint8_t> ring8_;         // <= 8 policies
    std::vector<std::uint32_t> ring32_;
    std::vector<std::uint16_t> head_;
    std::vector<std::uint16_t> filled_;
};

} // namespace adcache

#endif // ADCACHE_CORE_MISS_HISTORY_HH
