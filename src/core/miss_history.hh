/**
 * @file
 * Per-set miss history buffers (Sec. 2.2). The adaptive algorithm
 * records "differentiating" misses — references missed by a proper,
 * non-empty subset of the component policies — and imitates the
 * policy with the fewest recorded misses.
 *
 * Two representations are provided:
 *  - WindowHistory: the hardware design, an m-entry ring of miss
 *    bitmasks (for two policies this is exactly the paper's m-bit
 *    vector).
 *  - CounterHistory: exact integer counters of all misses so far, the
 *    version used by the theoretical 2x bound in the Appendix.
 */

#ifndef ADCACHE_CORE_MISS_HISTORY_HH
#define ADCACHE_CORE_MISS_HISTORY_HH

#include <cstdint>
#include <memory>
#include <vector>

namespace adcache
{

/** History of component-policy misses for one cache set. */
class MissHistory
{
  public:
    virtual ~MissHistory() = default;

    /**
     * Record one differentiating miss event.
     * @param miss_mask bit k set iff component policy k missed.
     *                  Callers only pass proper non-empty subsets.
     */
    virtual void record(std::uint32_t miss_mask) = 0;

    /** Recorded miss weight of component @p policy. */
    virtual std::uint64_t count(unsigned policy) const = 0;

    /**
     * Index of the policy with the fewest recorded misses; ties break
     * toward the lowest index (so policy A wins a fresh buffer).
     */
    unsigned best(unsigned num_policies) const;
};

/** Ring buffer of the last m differentiating-miss bitmasks. */
class WindowHistory : public MissHistory
{
  public:
    /**
     * @param depth        window length m (paper default: the cache
     *                     associativity, Sec. 2.2).
     * @param num_policies number of component policies.
     */
    WindowHistory(unsigned depth, unsigned num_policies);

    void record(std::uint32_t miss_mask) override;
    std::uint64_t count(unsigned policy) const override;

    unsigned depth() const { return depth_; }

  private:
    unsigned depth_;
    std::vector<std::uint32_t> ring_;
    unsigned head_ = 0;
    unsigned filled_ = 0;
    std::vector<std::uint64_t> counts_;
};

/** Exact since-reset counters (theory variant). */
class CounterHistory : public MissHistory
{
  public:
    explicit CounterHistory(unsigned num_policies);

    void record(std::uint32_t miss_mask) override;
    std::uint64_t count(unsigned policy) const override;

  private:
    std::vector<std::uint64_t> counts_;
};

/** Build the selected representation. */
std::unique_ptr<MissHistory>
makeHistory(bool exact_counters, unsigned depth, unsigned num_policies);

} // namespace adcache

#endif // ADCACHE_CORE_MISS_HISTORY_HH
