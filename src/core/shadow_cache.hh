/**
 * @file
 * Parallel (shadow) tag structure: tracks what the cache contents
 * would be if a single component policy managed it (Sec. 2.2). Holds
 * tags only — full tags or partial tags of a configurable width
 * (Sec. 3.1) — never data.
 */

#ifndef ADCACHE_CORE_SHADOW_CACHE_HH
#define ADCACHE_CORE_SHADOW_CACHE_HH

#include "adapt/imitation.hh"
#include "adapt/sketch.hh"
#include "cache/cache_model.hh"
#include "cache/policy_sets.hh"
#include "cache/replacement.hh"
#include "cache/tag_array.hh"
#include "obs/event.hh"
#include "obs/trace.hh"

namespace adcache
{

/** Map an engine victim case onto the obs trace encoding. */
inline obs::EvictCase
toEvictCase(adapt::VictimCase c)
{
    switch (c) {
      case adapt::VictimCase::VictimMatch:
        return obs::EvictCase::VictimMatch;
      case adapt::VictimCase::ShadowAbsent:
        return obs::EvictCase::ShadowAbsent;
      default:
        return obs::EvictCase::AliasingFallback;
    }
}

/** Result of presenting one reference to a shadow cache. */
struct ShadowOutcome
{
    bool miss = false;
    /** A (valid) block was displaced to make room. */
    bool evicted = false;
    /** Stored tag of the displaced block, in this shadow's domain. */
    Addr evictedTag = 0;
    /** Full-set miss the admission filter refused to fill. */
    bool bypassed = false;
};

/**
 * A tag-only simulation of one component replacement policy.
 *
 * The shadow shares the real cache's geometry (same sets, same
 * associativity). With partialTagBits > 0 stored tags are folded, so
 * aliasing can make two distinct blocks indistinguishable; the
 * adaptive algorithm tolerates this (Sec. 3.1).
 */
class ShadowCache
{
  public:
    /**
     * @param geom        geometry shared with the real cache.
     * @param policy      the component policy this shadow simulates.
     * @param partial_bits 0 for full tags, else stored tag width.
     * @param xor_fold    fold via XOR of tag groups instead of
     *                    keeping the low-order bits.
     * @param rng         shared generator for stochastic policies.
     * @param admission   optional TinyLFU admission filter; on a
     *                    full-set miss the fill is bypassed when the
     *                    filter refuses the candidate (the outcome
     *                    reports bypassed). Not owned; the owner
     *                    touch()es it once per reference.
     */
    ShadowCache(const CacheGeometry &geom, PolicyType policy,
                unsigned partial_bits, bool xor_fold, Rng *rng,
                const adapt::TinyLfuAdmission *admission = nullptr);

    /** Simulate the component policy for one reference. */
    ShadowOutcome
    access(Addr addr)
    {
        return policies_.visit(
            [&](auto &policy) { return accessImpl(policy, addr); });
    }

    /** Map a full address to this shadow's stored-tag domain. */
    Addr transformTag(Addr addr) const { return foldTag(map_.tag(addr)); }

    /** Fold an already-extracted full tag into the stored domain. */
    Addr
    foldTag(Addr full_tag) const
    {
        if (partialBits_ == 0)
            return full_tag;
        if (xorFold_)
            return xorFold(full_tag, partialBits_);
        return full_tag & lowMask(partialBits_);
    }

    /** Membership test in the stored-tag domain. */
    bool
    containsTag(unsigned set, Addr stored_tag) const
    {
        return tags_.lookup(set, stored_tag) != TagArray::kNoWay;
    }

    /** Total misses this shadow has suffered. */
    std::uint64_t misses() const { return misses_; }

    /** Total accesses presented. */
    std::uint64_t accesses() const { return accesses_; }

    PolicyType policyType() const { return policyType_; }
    unsigned partialTagBits() const { return partialBits_; }

    /**
     * Emit the ShadowEvict event for an access() outcome that
     * displaced a block. Owners call this from their own
     * `obs::traceEnabled()` blocks — the shadow hot path itself
     * carries no tracing gate.
     */
    void
    traceEvict(std::uint64_t t, unsigned set, unsigned component,
               const ShadowOutcome &out) const
    {
        obs::emit(
            obs::shadowEvictEvent(t, set, component, out.evictedTag));
    }

  private:
    template <class Policy>
    ShadowOutcome
    accessImpl(Policy &policy, Addr addr)
    {
        ShadowOutcome out;
        ++accesses_;

        const unsigned set = map_.set(addr);
        const Addr tag = foldTag(map_.tag(addr));

        const unsigned way = tags_.lookup(set, tag);
        if (way != TagArray::kNoWay) {
            // With partial tags this may be a false-positive match
            // for a different block; the component simulation simply
            // proceeds as if it were a hit (Sec. 3.1).
            policyOnHit(policy, set, way, tag);
            return out;
        }

        out.miss = true;
        ++misses_;

        unsigned fill_way = tags_.invalidWay(set);
        if (fill_way == TagArray::kNoWay) {
            if (admission_ != nullptr) {
                const unsigned vw = policy.peekVictim(set);
                if (!admission_->admit(tag, tags_.tag(set, vw))) {
                    out.bypassed = true;
                    return out;
                }
            }
            fill_way = policyEvictFill(policy, set, tag);
            out.evicted = true;
            out.evictedTag = tags_.tag(set, fill_way);
        } else {
            policyOnFill(policy, set, fill_way, tag);
        }
        tags_.fill(set, fill_way, tag);
        return out;
    }

    CacheGeometry geom_;
    AddrMap map_;
    PolicyType policyType_;
    unsigned partialBits_;
    bool xorFold_;
    TagArray tags_;
    PolicySet policies_;
    const adapt::TinyLfuAdmission *admission_;
    std::uint64_t misses_ = 0;
    std::uint64_t accesses_ = 0;
};

} // namespace adcache

#endif // ADCACHE_CORE_SHADOW_CACHE_HH
