#include "core/miss_history.hh"

#include "util/logging.hh"

namespace adcache
{

unsigned
MissHistory::best(unsigned num_policies) const
{
    adcache_assert(num_policies >= 1);
    unsigned best_policy = 0;
    std::uint64_t best_count = count(0);
    for (unsigned p = 1; p < num_policies; ++p) {
        const std::uint64_t c = count(p);
        if (c < best_count) {
            best_count = c;
            best_policy = p;
        }
    }
    return best_policy;
}

WindowHistory::WindowHistory(unsigned depth, unsigned num_policies)
    : depth_(depth), ring_(depth, 0), counts_(num_policies, 0)
{
    adcache_assert(depth >= 1);
    adcache_assert(num_policies >= 1 && num_policies <= 32);
}

void
WindowHistory::record(std::uint32_t miss_mask)
{
    if (filled_ == depth_) {
        const std::uint32_t old = ring_[head_];
        for (unsigned p = 0; p < counts_.size(); ++p)
            if (old & (1u << p))
                --counts_[p];
    } else {
        ++filled_;
    }
    ring_[head_] = miss_mask;
    head_ = (head_ + 1) % depth_;
    for (unsigned p = 0; p < counts_.size(); ++p)
        if (miss_mask & (1u << p))
            ++counts_[p];
}

std::uint64_t
WindowHistory::count(unsigned policy) const
{
    return counts_.at(policy);
}

CounterHistory::CounterHistory(unsigned num_policies)
    : counts_(num_policies, 0)
{
    adcache_assert(num_policies >= 1 && num_policies <= 32);
}

void
CounterHistory::record(std::uint32_t miss_mask)
{
    for (unsigned p = 0; p < counts_.size(); ++p)
        if (miss_mask & (1u << p))
            ++counts_[p];
}

std::uint64_t
CounterHistory::count(unsigned policy) const
{
    return counts_.at(policy);
}

std::unique_ptr<MissHistory>
makeHistory(bool exact_counters, unsigned depth, unsigned num_policies)
{
    if (exact_counters)
        return std::make_unique<CounterHistory>(num_policies);
    return std::make_unique<WindowHistory>(depth, num_policies);
}

} // namespace adcache
